#!/usr/bin/env bash
# Crash-recovery smoke test for the always-on analysis service: start
# cmd/served with fast periodic snapshots, SIGKILL it mid-ingest (no
# graceful shutdown, no final snapshot), restart it against the same
# snapshot directory and require that it restores the newest intact
# generation and reaches ready again. A second round truncates the
# newest generation first, proving restore falls back to an older intact
# one instead of dying on a torn file. CI runs this; locally:
#
#   ./scripts/crash_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:${CRASH_SMOKE_PORT:-18090}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
SNAP="$WORKDIR/snap/window.snap"

echo "==> building cmd/served (-race)"
go build -race -o "$WORKDIR/served" ./cmd/served

start_served() {
  "$WORKDIR/served" -addr "$ADDR" -towers 60 -days 21 -window-days 14 \
    -remodel-interval 2s -snapshot "$SNAP" -snapshot-interval 1s \
    -snapshot-generations 3 -workers 2 \
    >>"$WORKDIR/served.log" 2>&1 &
  PID=$!
}

fail() {
  echo "==> FAIL: $1" >&2
  echo "---- served log:" >&2
  cat "$WORKDIR/served.log" >&2 || true
  kill -9 "$PID" 2>/dev/null || true
  exit 1
}

wait_ready() {
  for _ in $(seq 1 240); do
    kill -0 "$PID" 2>/dev/null || fail "served exited during warm-up ($1)"
    if curl -fsS "http://$ADDR/readyz" 2>/dev/null | grep -q '"status": "ready"'; then
      return 0
    fi
    sleep 0.5
  done
  fail "model never became ready ($1)"
}

echo "==> round 1: start, snapshot, SIGKILL mid-ingest"
start_served
wait_ready "first boot"
# Let at least one periodic generation land, then kill without mercy.
for _ in $(seq 1 60); do
  ls "$SNAP".* >/dev/null 2>&1 && break
  sleep 0.5
done
ls "$SNAP".* >/dev/null 2>&1 || fail "no periodic snapshot generation appeared"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
gens_after_kill="$(ls "$SNAP".* | xargs -n1 basename | sort | tr '\n' ' ')"
echo "==> killed; generations on disk: $gens_after_kill"

echo "==> round 2: restart against the same snapshot dir"
start_served
wait_ready "post-kill restart"
grep -q "restored window snapshot $SNAP" "$WORKDIR/served.log" \
  || fail "restart did not restore a snapshot generation"

echo "==> round 3: truncate the newest generation, restart, expect fallback"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
newest="$(ls "$SNAP".* | sort -t. -k3 -n | tail -1)"
truncate -s 17 "$newest" # a torn header: unusable, detectably so
start_served
wait_ready "restart with torn newest generation"
grep -q "snapshot $newest unusable, trying older" "$WORKDIR/served.log" \
  || fail "torn generation $newest was not detected and skipped"

echo "==> graceful shutdown (SIGTERM)"
kill -TERM "$PID"
code=0
wait "$PID" || code=$?
[ "$code" -eq 0 ] || fail "served exited with code $code after recovery"

echo "==> OK: recovered from SIGKILL and from a torn newest generation"
