#!/usr/bin/env bash
# Smoke test for the always-on analysis service (cmd/served): build the
# binary (race detector on, so leaked-goroutine races surface), start it
# against a synthetic replayed feed, wait for the first model, query one
# tower, shut it down with SIGTERM and require a clean exit plus a window
# snapshot on disk. CI runs this; it is equally useful locally:
#
#   ./scripts/serve_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:${SERVE_SMOKE_PORT:-18080}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

echo "==> building cmd/served (-race)"
go build -race -o "$WORKDIR/served" ./cmd/served

TOKEN="smoke-token"
echo "==> starting served on $ADDR"
"$WORKDIR/served" -addr "$ADDR" -towers 60 -days 21 -window-days 14 \
  -remodel-interval 2s -snapshot "$WORKDIR/window.snap" -workers 2 \
  -min-coverage 0.5 -max-validity-drift 0.5 -max-backtest-regress 0.5 \
  -model-history 4 -auto-rollback 3 -quarantine-z 8 -max-future-skew 24h \
  -api-token "$TOKEN" -rate-limit 2 -rate-burst 20 \
  >"$WORKDIR/served.log" 2>&1 &
PID=$!
AUTH=(-H "Authorization: Bearer $TOKEN")

fail() {
  echo "==> FAIL: $1" >&2
  echo "---- served log:" >&2
  cat "$WORKDIR/served.log" >&2 || true
  kill -9 "$PID" 2>/dev/null || true
  exit 1
}

echo "==> waiting for the first model"
ready=""
for _ in $(seq 1 240); do
  kill -0 "$PID" 2>/dev/null || fail "served exited during warm-up"
  if curl -fsS "http://$ADDR/healthz" 2>/dev/null | grep -q '"ready": true'; then
    ready=yes
    break
  fi
  sleep 0.5
done
[ -n "$ready" ] || fail "model never became ready"

echo "==> querying the API"
curl -fsS "${AUTH[@]}" "http://$ADDR/summary" | grep -q '"clusters"' || fail "/summary has no clusters"
tower=$(curl -fsS "${AUTH[@]}" "http://$ADDR/towers" | grep -o '"tower": [0-9]*' | head -1 | grep -o '[0-9]*')
[ -n "$tower" ] || fail "/towers listed no towers"
curl -fsS "${AUTH[@]}" "http://$ADDR/towers/$tower" | grep -q '"region"' || fail "/towers/$tower has no region"
curl -sS "${AUTH[@]}" -o /dev/null -w '%{http_code}' "http://$ADDR/towers/999999" | grep -q 404 || fail "unknown tower did not 404"
curl -fsS "http://$ADDR/metrics" | grep -q '"cycles"' || fail "/metrics has no model cycles"
curl -fsS "http://$ADDR/readyz" | grep -q '"status": "ready"' || fail "/readyz not ready with a fresh model"
curl -fsS "http://$ADDR/metrics?format=prom" | grep -q '# TYPE repro_model_cycles_total counter' \
  || fail "/metrics?format=prom is not Prometheus text"

echo "==> admission gate and model history"
curl -fsS "${AUTH[@]}" "http://$ADDR/models" | grep -q '"current_seq"' || fail "/models has no current_seq"
curl -fsS "${AUTH[@]}" "http://$ADDR/models" | grep -q '"generations"' || fail "/models has no generations"
curl -fsS "http://$ADDR/metrics" | grep -q '"rejected_by_reason"' || fail "/metrics has no admission block"
curl -fsS "http://$ADDR/metrics?format=prom" -o "$WORKDIR/prom.txt"
grep -q 'repro_model_rejected_total{reason="coverage"}' "$WORKDIR/prom.txt" \
  || fail "prom exposition has no per-reason reject counters"
grep -q 'repro_model_rollback_total{kind="manual"}' "$WORKDIR/prom.txt" \
  || fail "prom exposition has no rollback counters"
grep -q 'repro_window_quarantined_towers' "$WORKDIR/prom.txt" \
  || fail "prom exposition has no quarantine gauge"
# Only one generation is retained this early: rollback must refuse (409)
# rather than serve anything it cannot vouch for.
code=$(curl -sS "${AUTH[@]}" -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/models/rollback")
[ "$code" -eq 409 ] || fail "rollback with a single generation returned $code, want 409"

echo "==> auth and rate limiting"
code=$(curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/summary")
[ "$code" -eq 401 ] || fail "unauthenticated /summary returned $code, want 401"
code=$(curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/healthz")
[ "$code" -eq 200 ] || fail "unauthenticated /healthz returned $code, want 200 (probe exempt)"
limited=""
for _ in $(seq 1 60); do
  code=$(curl -sS "${AUTH[@]}" -o /dev/null -w '%{http_code}' "http://$ADDR/summary")
  if [ "$code" -eq 429 ]; then limited=yes; break; fi
done
[ -n "$limited" ] || fail "burst of queries never hit the rate limit (429)"
curl -fsS "http://$ADDR/metrics?format=prom" -o "$WORKDIR/prom.txt"
grep -q 'repro_requests_ratelimited_total [1-9]' "$WORKDIR/prom.txt" \
  || fail "rate-limit refusals not counted in prom exposition"

echo "==> rejecting bad flags (usage exit code 2)"
code=0
"$WORKDIR/served" -window-days 0 >/dev/null 2>&1 || code=$?
[ "$code" -eq 2 ] || fail "-window-days 0 exited with $code, want 2"

echo "==> graceful shutdown (SIGTERM)"
kill -TERM "$PID"
code=0
wait "$PID" || code=$?
[ "$code" -eq 0 ] || fail "served exited with code $code"
ls "$WORKDIR"/window.snap.* >/dev/null 2>&1 || fail "no window snapshot generation written on shutdown"

echo "==> OK: clean exit, snapshot generations:" "$(ls "$WORKDIR"/window.snap.* | xargs -n1 basename | tr '\n' ' ')"
