// Package repro is a from-scratch Go reproduction of "Understanding Mobile
// Traffic Patterns of Large Scale Cellular Towers in Urban Environment"
// (Wang et al., ACM IMC 2015).
//
// The implementation lives under internal/: the synthetic city and trace
// generator (internal/synth), the batched zero-allocation ingestion and
// vectorisation pipeline (internal/trace, internal/pipeline — a custom
// byte-level CSV scanner with an order-preserving parallel chunk parser
// behind trace.NewIngestSource, moving records downstream through the
// BatchSource interface; see README.md "Ingestion engine"), the
// deterministic parallel
// modeling engine — the pattern identifier and metric tuner
// (internal/cluster, condensed NN-chain hierarchical clustering and a
// chunked k-means baseline) plus NMF basis extraction (internal/nmf) on
// the blocked kernels of internal/linalg: a Gram-matrix distance engine
// (register-tiled, AVX2+FMA assembly micro-kernels on amd64) feeding on
// the contiguous flat matrices behind every pipeline.Dataset, plus tiled
// parallel matrix products, all bit-identical for any
// worker count under a fixed seed (see README.md "Distance engine" for
// the Gram-trick tolerance model) — the geographical labelling
// (internal/poi, internal/label), the time- and frequency-domain analyses
// (internal/timedomain, internal/freqdomain — the latter driven by the
// plan-based FFT engine of internal/dsp, whose dsp.Plan precomputes twiddle
// factors per signal length and batches per-tower spectra across a worker
// pool; see README.md for when to hold a plan vs. use the package-level
// DFT/IDFT/Reconstruct wrappers) and the orchestration model
// (internal/core, with Analyze for in-memory datasets and AnalyzeSource
// for record streams). The benchmark harness that regenerates every table
// and figure of the paper is internal/experiments, driven by
// cmd/experiments and by the benchmarks in bench_test.go at the repository
// root.
//
// The modeling stage runs at one of two numeric tiers, selected by
// core.Options.Precision: Float64 (the default) is the bit-reproducible
// reference, while Float32 runs the linalg distance/matrix kernels —
// generic over float32 | float64 via linalg.Float, with dedicated 8-wide
// AVX2+FMA float32 assembly on amd64 — at half the memory traffic.
// Decisions (merges, labels, cluster counts, NMF bases) are identical
// across tiers on seeded datasets because agglomeration orderings,
// convergence checks and cross-point statistics always reduce in
// float64; scores differ in the last digits. See README.md
// "Numeric tiers".
//
// See README.md for a quickstart, the package map and guidance on the
// streaming vs. slice ingestion APIs.
package repro
