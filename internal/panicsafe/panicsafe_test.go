package panicsafe

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestCallPassesThroughReturns(t *testing.T) {
	if err := Call(func() error { return nil }); err != nil {
		t.Fatalf("nil-returning fn: err = %v", err)
	}
	sentinel := errors.New("boom")
	if err := Call(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error-returning fn: err = %v, want sentinel", err)
	}
}

func TestCallConvertsPanic(t *testing.T) {
	err := Call(func() error { panic("kernel exploded") })
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *panicsafe.Error", err)
	}
	if pe.Value != "kernel exploded" {
		t.Errorf("Value = %v, want the panic value", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panicsafe") {
		t.Errorf("Stack missing or implausible: %q", pe.Stack)
	}
	if !strings.Contains(err.Error(), "kernel exploded") {
		t.Errorf("Error() does not mention the panic value: %s", err)
	}
}

func TestGoAlwaysCallsDone(t *testing.T) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var got []error
	report := func(err error) {
		mu.Lock()
		got = append(got, err)
		mu.Unlock()
	}
	wg.Add(3)
	Go(func() error { return nil }, report, wg.Done)
	Go(func() error { return errors.New("plain") }, report, wg.Done)
	Go(func() error { panic(42) }, report, wg.Done)
	wg.Wait() // deadlocks here if a panicking worker skipped done
	if len(got) != 2 {
		t.Fatalf("report called %d times, want 2 (plain error + panic)", len(got))
	}
	panics := 0
	for _, err := range got {
		var pe *Error
		if errors.As(err, &pe) {
			panics++
			if pe.Value != 42 {
				t.Errorf("panic Value = %v, want 42", pe.Value)
			}
		}
	}
	if panics != 1 {
		t.Fatalf("%d reported errors were panics, want 1", panics)
	}
}
