// Package panicsafe converts panics escaping worker goroutines into
// returned errors. A panic on the main goroutine of a computation
// unwinds to the caller like any other panic; a panic inside a pool
// worker, by contrast, would crash the whole process — no deferred
// recover on the caller's stack can catch it. Every worker pool in the
// pipeline (the blocked distance kernels, the FFT batch pool, the
// ingestion chunk parsers, the vectorizer shards, the k-means restarts)
// therefore runs its worker body through Call and surfaces the resulting
// *panicsafe.Error through its normal error return instead of dying
// mid-analysis.
package panicsafe

import (
	"fmt"
	"runtime/debug"
)

// Error carries a recovered panic value together with the stack of the
// goroutine that panicked, so a converted worker panic remains as
// debuggable as the crash it replaces.
type Error struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted stack trace captured at recovery, from
	// runtime/debug.Stack.
	Stack []byte
}

// Error implements the error interface. The stack is included: a worker
// panic converted to an error typically travels far from the goroutine
// that produced it before being logged.
func (e *Error) Error() string {
	return fmt.Sprintf("panic: %v\n\nworker stack:\n%s", e.Value, e.Stack)
}

// Call runs fn, converting a panic into an *Error carrying the panic
// value and the worker's stack. A nil return means fn returned normally
// with a nil error.
func Call(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Go runs fn on its own goroutine through Call, delivering the converted
// error (or fn's own error) to report. report is only invoked for a
// non-nil error and must be safe for concurrent use; pools typically
// pass a sync.Once-guarded first-error store. done is called exactly
// once when the goroutine finishes, panicked or not — a sync.WaitGroup's
// Done in every current caller — so pools can always drain.
func Go(fn func() error, report func(error), done func()) {
	go func() {
		defer done()
		if err := Call(fn); err != nil && report != nil {
			report(err)
		}
	}()
}
