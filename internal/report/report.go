// Package report renders the tables and data series produced by the
// benchmark harness as aligned ASCII text and as CSV files, so every table
// and figure of the paper can be regenerated as both a human-readable
// artefact and a machine-readable one.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Table is a simple rectangular table with a title, a header row and data
// rows of strings.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row built from arbitrary values formatted with %v
// (floats with FormatFloat).
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = FormatFloat(x)
		case float32:
			row[i] = FormatFloat(float64(x))
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with four significant decimals, large magnitudes in scientific
// notation.
func FormatFloat(x float64) string {
	abs := x
	if abs < 0 {
		abs = -abs
	}
	switch {
	case x == float64(int64(x)) && abs < 1e6:
		return strconv.FormatInt(int64(x), 10)
	case abs >= 1e6 || (abs > 0 && abs < 1e-3):
		return strconv.FormatFloat(x, 'e', 3, 64)
	default:
		return strconv.FormatFloat(x, 'f', 4, 64)
	}
}

// Render writes the table as aligned ASCII text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, ignoring write errors.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the table (header plus rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to a CSV file, creating parent directories.
func (t *Table) SaveCSV(path string) error {
	if path == "" {
		return errors.New("report: empty path")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// Series is a named sequence of (x, y) points backing a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a collection of series sharing an x axis meaning.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddSeries appends a named series; x and y must have equal length.
func (f *Figure) AddSeries(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("report: series %q has %d x values and %d y values", name, len(x), len(y))
	}
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
	return nil
}

// WriteCSV writes the figure in long form: series,x,y.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.XLabel, f.YLabel}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			if err := cw.Write([]string{s.Name, FormatFloat(s.X[i]), FormatFloat(s.Y[i])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the figure to a CSV file, creating parent directories.
func (f *Figure) SaveCSV(path string) error {
	if path == "" {
		return errors.New("report: empty path")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	return file.Close()
}

// Summary renders a compact textual summary of the figure: per series the
// number of points, the y range and the x position of the y maximum.
func (f *Figure) Summary() string {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	for _, s := range f.Series {
		if len(s.Y) == 0 {
			fmt.Fprintf(&b, "  %-20s (empty)\n", s.Name)
			continue
		}
		minY, maxY := s.Y[0], s.Y[0]
		argmax := 0
		for i, y := range s.Y {
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
				argmax = i
			}
		}
		fmt.Fprintf(&b, "  %-20s n=%d  y∈[%s, %s]  peak at %s=%s\n",
			s.Name, len(s.Y), FormatFloat(minY), FormatFloat(maxY), f.XLabel, FormatFloat(s.X[argmax]))
	}
	return b.String()
}
