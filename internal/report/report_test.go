package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		-12:     "-12",
		3.5:     "3.5000",
		1e7:     "1.000e+07",
		0.00001: "1.000e-05",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		Title:   "Table 1: cluster shares",
		Headers: []string{"cluster", "region", "share"},
	}
	tbl.AddRow(1, "resident", 0.1755)
	tbl.AddRow(2, "transport", 0.0258)
	out := tbl.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "resident") {
		t.Errorf("rendered table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered table has %d lines, want 5:\n%s", len(lines), out)
	}
	var csvBuf bytes.Buffer
	if err := tbl.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(csvLines) != 3 {
		t.Errorf("CSV has %d lines, want 3", len(csvLines))
	}
	if csvLines[1] != "1,resident,0.1755" {
		t.Errorf("CSV row = %q", csvLines[1])
	}
}

func TestTableSaveCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := &Table{Headers: []string{"a"}, Rows: [][]string{{"1"}}}
	path := filepath.Join(dir, "sub", "table.csv")
	if err := tbl.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a") {
		t.Error("saved CSV missing header")
	}
	if err := tbl.SaveCSV(""); err == nil {
		t.Error("empty path should fail")
	}
}

func TestFigure(t *testing.T) {
	fig := &Figure{Title: "Figure 1", XLabel: "hour", YLabel: "traffic"}
	if err := fig.AddSeries("aggregate", []float64{0, 1, 2}, []float64{5, 9, 7}); err != nil {
		t.Fatal(err)
	}
	if err := fig.AddSeries("bad", []float64{0}, []float64{1, 2}); err == nil {
		t.Error("mismatched series should fail")
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Errorf("figure CSV has %d lines, want 4", len(lines))
	}
	if lines[0] != "series,hour,traffic" {
		t.Errorf("header = %q", lines[0])
	}
	summary := fig.Summary()
	if !strings.Contains(summary, "aggregate") || !strings.Contains(summary, "peak at hour=1") {
		t.Errorf("summary = %q", summary)
	}
	// Empty series summary does not panic.
	fig.Series = append(fig.Series, Series{Name: "empty"})
	if !strings.Contains(fig.Summary(), "(empty)") {
		t.Error("empty series should be reported")
	}
	dir := t.TempDir()
	if err := fig.SaveCSV(filepath.Join(dir, "fig.csv")); err != nil {
		t.Fatal(err)
	}
	if err := fig.SaveCSV(""); err == nil {
		t.Error("empty path should fail")
	}
}
