package dsp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/panicsafe"
)

// BatchTransform computes the spectrum of every signal (all of length
// p.N()) across a GOMAXPROCS-wide worker pool and calls fn with each result.
// Each worker transforms with its own clone of the plan, so p itself is not
// touched concurrently.
//
// fn is invoked concurrently from the workers, once per signal, with the
// row index and the spectrum. The spectrum slice is the worker's reusable
// buffer: fn must copy anything it wants to retain, and calls for different
// rows must not share mutable state unless fn synchronises. The first error
// returned by fn (or the lowest-index signal of the wrong length) aborts the
// batch.
func (p *Plan) BatchTransform(signals [][]float64, fn func(row int, spectrum []complex128) error) error {
	return p.BatchTransformContext(context.Background(), signals, fn)
}

// BatchTransformContext is BatchTransform with cancellation and worker
// fault isolation: ctx is observed between signals (a Background context
// costs nothing), and a panic in a worker — in the transform or in fn —
// is returned as a *panicsafe.Error instead of crashing the process. On
// either early exit the pool drains fully before the call returns.
func (p *Plan) BatchTransformContext(ctx context.Context, signals [][]float64, fn func(row int, spectrum []complex128) error) error {
	if fn == nil {
		return fmt.Errorf("dsp: BatchTransform requires a callback")
	}
	for i, x := range signals {
		if len(x) != p.n {
			return fmt.Errorf("dsp: signal %d has %d samples, plan expects %d", i, len(x), p.n)
		}
	}
	done := ctx.Done()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(signals) {
		workers = len(signals)
	}
	if workers <= 1 {
		spectrum := make([]complex128, p.n)
		for i, x := range signals {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := p.Transform(spectrum, x); err != nil {
				return err
			}
			if err := fn(i, spectrum); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		aborted atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstEr = err })
		aborted.Store(true)
	}
	for w := 0; w < workers; w++ {
		plan := p
		if w > 0 {
			plan = p.Clone()
		}
		wg.Add(1)
		panicsafe.Go(func() error {
			spectrum := make([]complex128, plan.n)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(signals) || aborted.Load() {
					return nil
				}
				if done != nil && ctx.Err() != nil {
					aborted.Store(true)
					return nil
				}
				if err := plan.Transform(spectrum, signals[i]); err != nil {
					return err
				}
				if err := fn(i, spectrum); err != nil {
					return err
				}
			}
		}, fail, wg.Done)
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	if done != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// BatchSpectra computes and returns the spectrum of every signal, fanning
// the transforms across the worker pool of BatchTransform. Row i of the
// result is the DFT of signals[i].
func (p *Plan) BatchSpectra(signals [][]float64) ([][]complex128, error) {
	return p.BatchSpectraContext(context.Background(), signals)
}

// BatchSpectraContext is BatchSpectra with the cancellation and fault
// isolation of BatchTransformContext.
func (p *Plan) BatchSpectraContext(ctx context.Context, signals [][]float64) ([][]complex128, error) {
	out := make([][]complex128, len(signals))
	err := p.BatchTransformContext(ctx, signals, func(row int, spectrum []complex128) error {
		s := make([]complex128, len(spectrum))
		copy(s, spectrum)
		out[row] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- Package-level plan pool ---------------------------------------------

// planPools holds one sync.Pool of *Plan per length, backing AcquirePlan and
// the DFT/IDFT/Reconstruct compatibility wrappers.
var planPools sync.Map // int -> *sync.Pool

func poolFor(n int) *sync.Pool {
	if v, ok := planPools.Load(n); ok {
		return v.(*sync.Pool)
	}
	v, _ := planPools.LoadOrStore(n, &sync.Pool{})
	return v.(*sync.Pool)
}

// AcquirePlan returns a plan for length n from a package-level pool,
// building one only when the pool is empty. Call Release to hand the plan
// back when done; a released plan's twiddle tables are reused by later
// acquisitions, so steady-state acquire/transform/release cycles allocate
// nothing beyond the caller's output buffers. Callers that transform many
// signals of one length on a hot path should instead hold a plan from
// NewPlan for its whole lifetime.
func AcquirePlan(n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: invalid plan length %d", n)
	}
	if p, ok := poolFor(n).Get().(*Plan); ok {
		return p, nil
	}
	return NewPlan(n)
}

// Release returns the plan to the package-level pool for its length. The
// caller must not use the plan afterwards.
func (p *Plan) Release() {
	poolFor(p.n).Put(p)
}
