package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Plan is a reusable FFT engine for signals of one fixed length. It
// precomputes twiddle factors once and owns all scratch buffers, so a warmed
// plan performs zero allocations per transform. The transform kernel is an
// iterative self-sorting (Stockham) mixed-radix FFT with specialised radix-2,
// radix-3 and radix-4 butterflies (each with an unrolled first-stage form for
// the unit-stride pass), a generic butterfly for the remaining small odd
// prime factors, and Bluestein's chirp-z algorithm whenever the
// length has a prime factor larger than maxStockhamRadix — so no length ever
// falls back to the O(N²) direct transform. Real input goes through an RFFT
// path that packs the signal into a half-length complex transform.
//
// A Plan is NOT safe for concurrent use: its scratch buffers are shared
// between calls. Use Clone to give each goroutine its own plan (clones share
// the immutable twiddle tables), or the batch API which does this
// internally. For one-off transforms the package-level DFT/IDFT/Reconstruct
// wrappers draw plans from a pool keyed by length.
type Plan struct {
	n    int
	full *cplan       // complex transform of length n
	half *cplan       // length n/2 transform backing the RFFT path (nil when n is odd or 1)
	rt   []complex128 // e^{-2πik/n} for k in [0, n/2], RFFT post-twiddles (shared across clones)

	cw   []complex128 // len n complex scratch
	hw   []complex128 // len n/2 scratch for RFFT packing (nil when half is nil)
	sw   []complex128 // len n spectrum scratch for Reconstruct
	mask []bool       // len n component mask scratch
}

// NewPlan builds a plan for signals of length n. The construction cost is
// O(n log n) (twiddle precomputation); hold on to the plan when transforming
// many signals of the same length.
func NewPlan(n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: invalid plan length %d", n)
	}
	p := &Plan{
		n:    n,
		full: newCplan(n),
		cw:   make([]complex128, n),
		sw:   make([]complex128, n),
		mask: make([]bool, n),
	}
	if n > 1 && n%2 == 0 {
		m := n / 2
		p.half = newCplan(m)
		p.hw = make([]complex128, m)
		p.rt = make([]complex128, m+1)
		for k := 0; k <= m; k++ {
			s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
			p.rt[k] = complex(c, s)
		}
	}
	return p, nil
}

// N returns the signal length the plan transforms.
func (p *Plan) N() int { return p.n }

// Clone returns an independent plan for the same length. The clone shares
// the immutable twiddle tables with p but owns fresh scratch buffers, so p
// and the clone can transform concurrently.
func (p *Plan) Clone() *Plan {
	c := &Plan{
		n:    p.n,
		full: p.full.clone(),
		rt:   p.rt,
		cw:   make([]complex128, p.n),
		sw:   make([]complex128, p.n),
		mask: make([]bool, p.n),
	}
	if p.half != nil {
		c.half = p.half.clone()
		c.hw = make([]complex128, p.n/2)
	}
	return c
}

// Transform computes the forward DFT of the real signal x into dst
// (len(dst) == len(x) == p.N()), using the half-length RFFT path for even
// lengths. The convention matches the paper: X[k] = Σ x[n]·e^{-2πi·k·n/N}.
func (p *Plan) Transform(dst []complex128, x []float64) error {
	if len(x) != p.n || len(dst) != p.n {
		return fmt.Errorf("dsp: plan length %d, got signal %d and destination %d", p.n, len(x), len(dst))
	}
	if p.half == nil {
		// Odd (or unit) length: promote to complex and run the full plan.
		for i, v := range x {
			p.cw[i] = complex(v, 0)
		}
		p.full.forward(dst, p.cw)
		return nil
	}
	// RFFT: pack pairs of real samples into a half-length complex signal,
	// transform, then untangle the even/odd sub-spectra.
	m := p.n / 2
	for t := 0; t < m; t++ {
		p.hw[t] = complex(x[2*t], x[2*t+1])
	}
	z := p.cw[:m]
	p.half.forward(z, p.hw)
	// X[k] = Xe[k] + ω^k·Xo[k] with Xe[k] = (Z[k]+conj(Z[M-k]))/2 and
	// Xo[k] = -i·(Z[k]-conj(Z[M-k]))/2; the upper half is the conjugate
	// mirror of the lower.
	xe0, xo0 := real(z[0]), imag(z[0])
	dst[0] = complex(xe0+xo0, 0)
	dst[m] = complex(xe0-xo0, 0)
	for k := 1; 2*k <= m; k++ {
		zk, zmk := z[k], cmplx.Conj(z[m-k])
		xe := (zk + zmk) * 0.5
		xo := (zk - zmk) * complex(0, -0.5)
		wxo := p.rt[k] * xo
		dst[k] = xe + wxo
		dst[p.n-k] = cmplx.Conj(dst[k])
		if km := m - k; km != k {
			// X[M-k] = conj(Xe[k] - ω^k·Xo[k]) because ω^{M-k} = -conj(ω^k).
			dst[km] = cmplx.Conj(xe - wxo)
			dst[p.n-km] = cmplx.Conj(dst[km])
		}
	}
	return nil
}

// TransformComplex computes the forward DFT of the complex signal src into
// dst (no scaling). dst may alias src for an in-place transform.
func (p *Plan) TransformComplex(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("dsp: plan length %d, got signal %d and destination %d", p.n, len(src), len(dst))
	}
	p.full.forward(dst, src)
	return nil
}

// Inverse computes the inverse DFT of src into dst, including the 1/N
// factor: x[n] = (1/N) Σ X[k]·e^{+2πi·k·n/N}. dst may alias src.
func (p *Plan) Inverse(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("dsp: plan length %d, got spectrum %d and destination %d", p.n, len(src), len(dst))
	}
	// Inverse via the conjugation identity: IDFT(X) = conj(DFT(conj(X)))/N,
	// which reuses the forward twiddles.
	for i, v := range src {
		p.cw[i] = cmplx.Conj(v)
	}
	p.full.forward(dst, p.cw)
	scale := 1 / float64(p.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*scale, -imag(v)*scale)
	}
	return nil
}

// InverseReal computes the inverse DFT of a conjugate-symmetric spectrum
// (the spectrum of a real signal, possibly with bins masked to zero in
// mirror pairs) and writes the real signal into dst. For even lengths it
// runs the half-length inverse RFFT path; spectra that are not conjugate
// symmetric have no real inverse and yield unspecified values.
func (p *Plan) InverseReal(dst []float64, spectrum []complex128) error {
	if len(spectrum) != p.n || len(dst) != p.n {
		return fmt.Errorf("dsp: plan length %d, got spectrum %d and destination %d", p.n, len(spectrum), len(dst))
	}
	if p.half == nil {
		p.full.forward(p.cw, conjInto(p.cw, spectrum))
		scale := 1 / float64(p.n)
		for i, v := range p.cw {
			dst[i] = real(v) * scale
		}
		return nil
	}
	// Re-tangle the even/odd sub-spectra and invert the half-length packed
	// transform: Z[k] = Xe[k] + i·Xo[k] with Xe[k] = (X[k]+X[k+M])/2 and
	// Xo[k] = conj(ω^k)·(X[k]-X[k+M])/2.
	m := p.n / 2
	for k := 0; k < m; k++ {
		s1, s2 := spectrum[k], spectrum[k+m]
		xe := (s1 + s2) * 0.5
		xo := cmplx.Conj(p.rt[k]) * (s1 - s2) * 0.5
		p.hw[k] = cmplx.Conj(xe + complex(0, 1)*xo)
	}
	z := p.cw[:m]
	p.half.forward(z, p.hw)
	scale := 1 / float64(m)
	for t := 0; t < m; t++ {
		// z holds conj(DFT(conj(Z))): undo the conjugation and scale.
		dst[2*t] = real(z[t]) * scale
		dst[2*t+1] = -imag(z[t]) * scale
	}
	return nil
}

// conjInto fills dst with the conjugate of src and returns dst.
func conjInto(dst, src []complex128) []complex128 {
	for i, v := range src {
		dst[i] = cmplx.Conj(v)
	}
	return dst
}

// Spectrum computes the spectrum of the real signal x using the plan.
func (p *Plan) Spectrum(x []float64) (*Spectrum, error) {
	bins := make([]complex128, p.n)
	if err := p.Transform(bins, x); err != nil {
		return nil, err
	}
	return &Spectrum{Bins: bins}, nil
}

// Reconstruct rebuilds x from the DC term plus the components ks and their
// conjugate mirrors, returning the band-limited signal and the relative
// energy loss (Section 5.1). It is the plan-backed form of the package-level
// Reconstruct.
func (p *Plan) Reconstruct(x []float64, ks ...int) ([]float64, float64, error) {
	out := make([]float64, p.n)
	loss, err := p.ReconstructInto(out, x, ks...)
	if err != nil {
		return nil, 0, err
	}
	return out, loss, nil
}

// ReconstructInto is Reconstruct writing the band-limited signal into dst.
// Apart from error paths it performs no allocations: the spectrum is masked
// in place in plan-owned scratch.
func (p *Plan) ReconstructInto(dst []float64, x []float64, ks ...int) (float64, error) {
	if err := p.Transform(p.sw, x); err != nil {
		return 0, err
	}
	if err := applyMask(p.mask, p.sw, ks); err != nil {
		return 0, err
	}
	if err := p.InverseReal(dst, p.sw); err != nil {
		return 0, err
	}
	orig := Energy(x)
	if orig == 0 {
		return 0, nil
	}
	return math.Abs(orig-Energy(dst)) / orig, nil
}

// --- Complex transform kernels -------------------------------------------

// maxStockhamRadix is the largest prime factor handled by the generic
// mixed-radix butterfly. Lengths with a larger prime factor (in particular
// prime lengths ≥ 31) go through Bluestein's algorithm instead, keeping
// every length O(N log N).
const maxStockhamRadix = 29

// cplan is a forward complex DFT of one fixed length: either a mixed-radix
// Stockham pipeline (stages != nil) or a Bluestein chirp-z transform.
type cplan struct {
	n      int
	stages []stage              // immutable, shared across clones
	radix  map[int][]complex128 // ω_r^{ju} tables for generic radices, shared
	bs     *bluestein           // non-nil for lengths with a large prime factor
	work   []complex128         // len n ping-pong buffer, owned per clone
}

// stage is one Stockham butterfly pass: radix r applied to sub-transforms of
// length r·m at stride s, with tw[p*(r-1)+j-1] = e^{-2πi·p·j/(r·m)}.
type stage struct {
	r, m, s int
	tw      []complex128
}

func newCplan(n int) *cplan {
	c := &cplan{n: n}
	factors, ok := factorize(n)
	if !ok {
		c.bs = newBluestein(n)
		return c
	}
	c.work = make([]complex128, n)
	c.stages = make([]stage, 0, len(factors))
	s := 1
	rem := n
	for _, r := range factors {
		m := rem / r
		st := stage{r: r, m: m, s: s, tw: make([]complex128, m*(r-1))}
		for p := 0; p < m; p++ {
			for j := 1; j < r; j++ {
				sin, cos := math.Sincos(-2 * math.Pi * float64(p*j) / float64(rem))
				st.tw[p*(r-1)+j-1] = complex(cos, sin)
			}
		}
		c.stages = append(c.stages, st)
		if r != 2 && r != 3 && r != 4 {
			if c.radix == nil {
				c.radix = make(map[int][]complex128)
			}
			if _, done := c.radix[r]; !done {
				rt := make([]complex128, r*r)
				for j := 0; j < r; j++ {
					for u := 0; u < r; u++ {
						sin, cos := math.Sincos(-2 * math.Pi * float64((j*u)%r) / float64(r))
						rt[j*r+u] = complex(cos, sin)
					}
				}
				c.radix[r] = rt
			}
		}
		s *= r
		rem = m
	}
	return c
}

func (c *cplan) clone() *cplan {
	out := &cplan{n: c.n, stages: c.stages, radix: c.radix}
	if c.bs != nil {
		out.bs = c.bs.clone()
		return out
	}
	out.work = make([]complex128, c.n)
	return out
}

// forward computes the unscaled forward DFT of src into dst. dst may alias
// src; it must not alias c.work (which is private to the plan).
func (c *cplan) forward(dst, src []complex128) {
	if c.bs != nil {
		c.bs.forward(dst, src)
		return
	}
	if c.n == 1 {
		dst[0] = src[0]
		return
	}
	// Ping-pong between two buffers, arranging the parity so the final
	// stage writes into dst.
	a, b := dst, c.work
	if len(c.stages)%2 == 1 {
		a, b = c.work, dst
	}
	if &a[0] != &src[0] {
		copy(a, src)
	}
	for i := range c.stages {
		st := &c.stages[i]
		switch st.r {
		case 2:
			stageRadix2(b, a, st)
		case 3:
			stageRadix3(b, a, st)
		case 4:
			stageRadix4(b, a, st)
		default:
			stageGeneric(b, a, st, c.radix[st.r])
		}
		a, b = b, a
	}
}

// stageRadix2 performs y[q+s(2p+j)] = (a0 ± a1)·ω^{pj} for j in {0,1}.
func stageRadix2(dst, src []complex128, st *stage) {
	m, s := st.m, st.s
	if s == 1 {
		// First-stage form (s==1 only ever happens on the first stage): the
		// inner stride loop collapses to a single iteration, so skip the
		// loop setup and the stride multiplies. Same operations, same
		// rounding — just less bookkeeping per butterfly.
		for p := 0; p < m; p++ {
			a0, a1 := src[p], src[p+m]
			dst[2*p] = a0 + a1
			dst[2*p+1] = (a0 - a1) * st.tw[p]
		}
		return
	}
	for p := 0; p < m; p++ {
		w := st.tw[p]
		i0 := s * p
		i1 := s * (p + m)
		o0 := s * 2 * p
		o1 := o0 + s
		for q := 0; q < s; q++ {
			a0, a1 := src[i0+q], src[i1+q]
			dst[o0+q] = a0 + a1
			dst[o1+q] = (a0 - a1) * w
		}
	}
}

// sqrt3Half is sin(π/3), the imaginary magnitude of the primitive cube
// roots of unity used by the radix-3 butterfly.
const sqrt3Half = 0.8660254037844386

// stageRadix3 is the specialised radix-3 butterfly. With ω = e^{-2πi/3} =
// -1/2 - i·√3/2 the three outputs share one symmetric intermediate pair:
//
//	y0 = a0 + (a1+a2)
//	y1 = (a0 - (a1+a2)/2 - i·√3/2·(a1-a2)) · ω^p
//	y2 = (a0 - (a1+a2)/2 + i·√3/2·(a1-a2)) · ω^{2p}
//
// — 4 complex adds and one real scaling instead of the 9 complex multiplies
// and 6 adds of the generic table-driven butterfly.
func stageRadix3(dst, src []complex128, st *stage) {
	m, s := st.m, st.s
	if s == 1 {
		for p := 0; p < m; p++ {
			a0, a1, a2 := src[p], src[p+m], src[p+2*m]
			t1 := a1 + a2
			t2 := a0 - t1*0.5
			d := a1 - a2
			u := complex(imag(d)*sqrt3Half, -real(d)*sqrt3Half) // -i·√3/2·d
			dst[3*p] = a0 + t1
			dst[3*p+1] = (t2 + u) * st.tw[2*p]
			dst[3*p+2] = (t2 - u) * st.tw[2*p+1]
		}
		return
	}
	for p := 0; p < m; p++ {
		w1 := st.tw[2*p]
		w2 := st.tw[2*p+1]
		i0 := s * p
		o0 := s * 3 * p
		for q := 0; q < s; q++ {
			a0 := src[i0+q]
			a1 := src[i0+s*m+q]
			a2 := src[i0+2*s*m+q]
			t1 := a1 + a2
			t2 := a0 - t1*0.5
			d := a1 - a2
			u := complex(imag(d)*sqrt3Half, -real(d)*sqrt3Half)
			dst[o0+q] = a0 + t1
			dst[o0+s+q] = (t2 + u) * w1
			dst[o0+2*s+q] = (t2 - u) * w2
		}
	}
}

// stageRadix4 is the radix-4 butterfly (forward twiddle ω_4 = -i).
func stageRadix4(dst, src []complex128, st *stage) {
	m, s := st.m, st.s
	if s == 1 {
		// First-stage fast path: single-iteration stride loop unrolled away.
		for p := 0; p < m; p++ {
			a0, a1, a2, a3 := src[p], src[p+m], src[p+2*m], src[p+3*m]
			t0, t1 := a0+a2, a1+a3
			t2 := a0 - a2
			d := a1 - a3
			t3 := complex(imag(d), -real(d)) // -i·(a1-a3)
			dst[4*p] = t0 + t1
			dst[4*p+1] = (t2 + t3) * st.tw[3*p]
			dst[4*p+2] = (t0 - t1) * st.tw[3*p+1]
			dst[4*p+3] = (t2 - t3) * st.tw[3*p+2]
		}
		return
	}
	for p := 0; p < m; p++ {
		w1 := st.tw[3*p]
		w2 := st.tw[3*p+1]
		w3 := st.tw[3*p+2]
		i0 := s * p
		o0 := s * 4 * p
		for q := 0; q < s; q++ {
			a0 := src[i0+q]
			a1 := src[i0+s*m+q]
			a2 := src[i0+2*s*m+q]
			a3 := src[i0+3*s*m+q]
			t0, t1 := a0+a2, a1+a3
			t2 := a0 - a2
			d := a1 - a3
			t3 := complex(imag(d), -real(d)) // -i·(a1-a3)
			dst[o0+q] = t0 + t1
			dst[o0+s+q] = (t2 + t3) * w1
			dst[o0+2*s+q] = (t0 - t1) * w2
			dst[o0+3*s+q] = (t2 - t3) * w3
		}
	}
}

// stageGeneric is the mixed-radix butterfly for any small radix r, using the
// precomputed ω_r^{ju} table.
func stageGeneric(dst, src []complex128, st *stage, rt []complex128) {
	r, m, s := st.r, st.m, st.s
	for p := 0; p < m; p++ {
		twp := st.tw[p*(r-1):]
		for j := 0; j < r; j++ {
			wr := rt[j*r : j*r+r]
			base := s * (r*p + j)
			for q := 0; q < s; q++ {
				var acc complex128
				for u := 0; u < r; u++ {
					acc += src[s*(p+u*m)+q] * wr[u]
				}
				if j > 0 {
					acc *= twp[j-1]
				}
				dst[base+q] = acc
			}
		}
	}
}

// factorize splits n into Stockham radices — fours first, then a two, then
// odd primes ascending — and reports false when a prime factor exceeds
// maxStockhamRadix (the Bluestein cases).
func factorize(n int) ([]int, bool) {
	var factors []int
	for n%4 == 0 {
		factors = append(factors, 4)
		n /= 4
	}
	if n%2 == 0 {
		factors = append(factors, 2)
		n /= 2
	}
	for f := 3; f*f <= n; f += 2 {
		for n%f == 0 {
			if f > maxStockhamRadix {
				return nil, false
			}
			factors = append(factors, f)
			n /= f
		}
	}
	if n > 1 {
		if n > maxStockhamRadix {
			return nil, false
		}
		factors = append(factors, n)
	}
	return factors, true
}
