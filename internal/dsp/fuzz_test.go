package dsp

import (
	"encoding/binary"
	"math"
	"math/cmplx"
	"testing"
)

// FuzzFFT feeds arbitrary lengths and sample values through the plan engine
// and checks it against the O(N²) oracle plus an inverse round trip. The
// first byte picks the length (1..256, covering the radix-2/4, generic
// mixed-radix and Bluestein paths); the remaining bytes are decoded as
// float64 samples clamped to a numerically sane range.
func FuzzFFT(f *testing.F) {
	f.Add([]byte{63, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{128, 0xff, 0x80, 0x01})
	f.Add([]byte{97})                                                  // prime, Bluestein
	f.Add([]byte{1})                                                   // unit transform
	f.Add([]byte{105, 0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0xba, 0xbe}) // 3·5·7
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) + 1
		payload := data[1:]
		x := make([]float64, n)
		var scale float64
		for i := range x {
			var bits uint64
			if 8*i+8 <= len(payload) {
				bits = binary.LittleEndian.Uint64(payload[8*i : 8*i+8])
			} else if len(payload) > 0 {
				bits = uint64(payload[i%len(payload)]) * 0x9e3779b97f4a7c15
			} else {
				bits = uint64(i+1) * 0x9e3779b97f4a7c15
			}
			v := math.Float64frombits(bits)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(bits%2048)/1024 - 1
			}
			// Clamp to keep the oracle comparison within a fixed tolerance.
			v = math.Mod(v, 1024)
			x[i] = v
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale < 1 {
			scale = 1
		}

		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n)
		if err := p.Transform(got, x); err != nil {
			t.Fatal(err)
		}
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		ref := directDFT(c, false)
		tol := 1e-9 * scale * float64(n)
		for k := range ref {
			if d := cmplx.Abs(got[k] - ref[k]); d > tol {
				t.Fatalf("n=%d bin %d: plan %v vs direct %v (diff %g > %g)", n, k, got[k], ref[k], d, tol)
			}
		}
		back := make([]float64, n)
		if err := p.InverseReal(back, got); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if d := math.Abs(back[i] - x[i]); d > tol {
				t.Fatalf("n=%d round trip[%d] = %g, want %g (diff %g)", n, i, back[i], x[i], d)
			}
		}
	})
}
