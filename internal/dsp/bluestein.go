package dsp

import (
	"math"
	"math/cmplx"
)

// bluestein implements the chirp-z transform: an arbitrary-length DFT
// expressed as a circular convolution of chirp-modulated sequences, carried
// out by a power-of-two FFT of length m ≥ 2n-1. It is used for lengths whose
// prime factorisation contains a factor larger than maxStockhamRadix — in
// particular prime lengths — so no input ever needs the O(N²) direct
// transform.
type bluestein struct {
	n int
	m int // power-of-two convolution length

	// Immutable (shared across clones):
	chirp []complex128 // a[k] = e^{-iπk²/n}, k in [0, n)
	bfft  []complex128 // FFT_m of the zero-padded symmetric conjugate chirp

	// Per-clone:
	sub  *cplan // power-of-two plan of length m
	u, v []complex128
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	bs := &bluestein{
		n:     n,
		m:     m,
		chirp: make([]complex128, n),
		sub:   newCplan(m),
		u:     make([]complex128, m),
		v:     make([]complex128, m),
	}
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the argument small so Sincos stays accurate.
		phase := -math.Pi * float64((k*k)%(2*n)) / float64(n)
		sin, cos := math.Sincos(phase)
		bs.chirp[k] = complex(cos, sin)
	}
	// b[j] = conj(a[j]) for j in (-n, n), laid out circularly over m.
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		c := cmplx.Conj(bs.chirp[k])
		b[k] = c
		if k > 0 {
			b[m-k] = c
		}
	}
	bs.bfft = make([]complex128, m)
	bs.sub.forward(bs.bfft, b)
	return bs
}

func (bs *bluestein) clone() *bluestein {
	return &bluestein{
		n:     bs.n,
		m:     bs.m,
		chirp: bs.chirp,
		bfft:  bs.bfft,
		sub:   bs.sub.clone(),
		u:     make([]complex128, bs.m),
		v:     make([]complex128, bs.m),
	}
}

// forward computes the unscaled forward DFT of src into dst (both length n).
// dst may alias src.
func (bs *bluestein) forward(dst, src []complex128) {
	// u = chirp-modulated input, zero padded to m.
	for k := 0; k < bs.n; k++ {
		bs.u[k] = src[k] * bs.chirp[k]
	}
	for k := bs.n; k < bs.m; k++ {
		bs.u[k] = 0
	}
	// Circular convolution with the conjugate chirp via the sub-FFT; the
	// inverse transform uses the conjugation identity.
	bs.sub.forward(bs.v, bs.u)
	for k := range bs.v {
		bs.v[k] = cmplx.Conj(bs.v[k] * bs.bfft[k])
	}
	bs.sub.forward(bs.u, bs.v)
	scale := 1 / float64(bs.m)
	for k := 0; k < bs.n; k++ {
		conv := complex(real(bs.u[k])*scale, -imag(bs.u[k])*scale)
		dst[k] = conv * bs.chirp[k]
	}
}
