package dsp

import (
	"fmt"
	"math/cmplx"
)

// Canonical frequency bin indices for a 4-week, 10-minute-slot traffic
// vector (N = 4032). With a 28-day window, bin k corresponds to a period of
// 28/k days:
//
//	k = 4  → one week
//	k = 28 → one day
//	k = 56 → half a day
//
// These are the three principal components identified in Section 5.1.
const (
	BinWeekly  = 4
	BinDaily   = 28
	BinHalfDay = 56
)

// PrincipalBins returns the three principal frequency bins (week, day,
// half-day) for a signal of nSamples covering nDays whole days. For the
// paper's configuration (4032 samples, 28 days) it returns 4, 28, 56.
// An error is returned if the coverage is shorter than a week, in which
// case the weekly bin does not exist.
func PrincipalBins(nSamples, nDays int) (week, day, halfDay int, err error) {
	if nSamples <= 0 || nDays <= 0 {
		return 0, 0, 0, fmt.Errorf("dsp: invalid signal shape samples=%d days=%d", nSamples, nDays)
	}
	if nDays%7 != 0 {
		return 0, 0, 0, fmt.Errorf("dsp: %d days is not a whole number of weeks", nDays)
	}
	week = nDays / 7
	day = nDays
	halfDay = 2 * nDays
	if halfDay >= nSamples {
		return 0, 0, 0, fmt.Errorf("dsp: half-day bin %d out of range for %d samples", halfDay, nSamples)
	}
	return week, day, halfDay, nil
}

// Component describes a single frequency bin of a spectrum in polar form.
type Component struct {
	Bin       int     // frequency bin index k
	Amplitude float64 // |X[k]|
	Phase     float64 // arg X[k] in (-π, π]
}

// Spectrum is the DFT of a traffic vector plus convenience accessors.
type Spectrum struct {
	// Bins holds the complex DFT output, len == number of time samples.
	Bins []complex128
}

// NewSpectrum computes the spectrum of the real signal x.
func NewSpectrum(x []float64) (*Spectrum, error) {
	bins, err := DFT(x)
	if err != nil {
		return nil, err
	}
	return &Spectrum{Bins: bins}, nil
}

// N returns the number of bins (equal to the number of time samples).
func (s *Spectrum) N() int { return len(s.Bins) }

// Component returns the polar form of bin k.
func (s *Spectrum) Component(k int) (Component, error) {
	if k < 0 || k >= len(s.Bins) {
		return Component{}, fmt.Errorf("dsp: bin %d out of range [0,%d)", k, len(s.Bins))
	}
	c := s.Bins[k]
	return Component{Bin: k, Amplitude: cmplx.Abs(c), Phase: cmplx.Phase(c)}, nil
}

// Components returns the polar form of several bins in order.
func (s *Spectrum) Components(ks ...int) ([]Component, error) {
	out := make([]Component, 0, len(ks))
	for _, k := range ks {
		c, err := s.Component(k)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// NormalizedAmplitude returns |X[k]| / N, a scale that makes amplitudes of
// z-score-normalised traffic vectors comparable across towers regardless of
// vector length.
func (s *Spectrum) NormalizedAmplitude(k int) (float64, error) {
	c, err := s.Component(k)
	if err != nil {
		return 0, err
	}
	return c.Amplitude / float64(len(s.Bins)), nil
}

// Amplitudes returns |X[k]| for all bins.
func (s *Spectrum) Amplitudes() []float64 { return Amplitude(s.Bins) }

// Phases returns arg X[k] for all bins.
func (s *Spectrum) Phases() []float64 { return Phase(s.Bins) }

// Truncate returns a copy of the spectrum keeping only the DC bin, the
// requested bins and their conjugate mirrors.
func (s *Spectrum) Truncate(ks ...int) (*Spectrum, error) {
	masked, err := KeepComponents(s.Bins, ks...)
	if err != nil {
		return nil, err
	}
	return &Spectrum{Bins: masked}, nil
}

// Inverse returns the real time-domain signal of the spectrum.
func (s *Spectrum) Inverse() ([]float64, error) {
	return IDFTReal(s.Bins)
}
