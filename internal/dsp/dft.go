// Package dsp implements the discrete Fourier transform machinery used by
// the frequency-domain analysis of Section 5 of the paper: forward and
// inverse DFT of real-valued traffic vectors, spectrum inspection
// (amplitude, phase, energy), and band-limited reconstruction from a small
// set of retained frequency components.
//
// The engine is Plan: an iterative in-place mixed-radix (Stockham) FFT with
// twiddle factors precomputed per length, a real-input RFFT path, Bluestein's
// algorithm for lengths with large prime factors, and a batch API that fans
// per-tower spectra across a worker pool (see plan.go and batch.go). The
// package-level DFT/IDFT/Reconstruct functions are thin compatibility
// wrappers that draw plans from a pool keyed by signal length; hold a Plan
// explicitly (NewPlan or AcquirePlan/Release) when transforming many signals
// of one length.
//
// The traffic vectors analysed by the paper have N = 4032 samples
// (28 days × 144 ten-minute slots); 4032 = 2⁶·3²·7 runs entirely through the
// radix-4/2 and generic odd-radix Stockham stages. The O(N²) direct
// transform survives only as the test oracle (directDFT).
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// ErrEmpty is returned when a transform is requested on an empty signal.
var ErrEmpty = errors.New("dsp: empty signal")

// DFT computes the discrete Fourier transform of the real signal x,
// returning the complex spectrum X with len(X) == len(x). The convention
// matches the paper:
//
//	X[k] = Σ_{n=0..N-1} x[n] · e^{-2πi·k·n/N}
func DFT(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	p, err := AcquirePlan(len(x))
	if err != nil {
		return nil, err
	}
	defer p.Release()
	out := make([]complex128, len(x))
	if err := p.Transform(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IDFT computes the inverse discrete Fourier transform of the spectrum X,
// returning a complex signal. The inverse includes the 1/N factor:
//
//	x[n] = (1/N) Σ_{k=0..N-1} X[k] · e^{+2πi·k·n/N}
func IDFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	p, err := AcquirePlan(len(x))
	if err != nil {
		return nil, err
	}
	defer p.Release()
	out := make([]complex128, len(x))
	if err := p.Inverse(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IDFTReal computes the inverse DFT and returns only the real part. It is
// intended for spectra of real signals (conjugate-symmetric), where it runs
// the half-length inverse RFFT path.
func IDFTReal(x []complex128) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	p, err := AcquirePlan(len(x))
	if err != nil {
		return nil, err
	}
	defer p.Release()
	out := make([]float64, len(x))
	if err := p.InverseReal(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// directDFT is the O(N²) reference transform, retained as the oracle for the
// equivalence and fuzz tests of the FFT engine. inverse selects the sign of
// the exponent (no 1/N scaling is applied).
func directDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// Amplitude returns |X[k]| for every bin of the spectrum.
func Amplitude(spectrum []complex128) []float64 {
	out := make([]float64, len(spectrum))
	for i, c := range spectrum {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// Phase returns arg(X[k]) in (-π, π] for every bin of the spectrum.
func Phase(spectrum []complex128) []float64 {
	out := make([]float64, len(spectrum))
	for i, c := range spectrum {
		out[i] = cmplx.Phase(c)
	}
	return out
}

// Energy returns the total energy of the time-domain signal, Σ x[n]².
func Energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// SpectralEnergy returns (1/N)·Σ |X[k]|², which by Parseval's theorem
// equals the time-domain energy Σ x[n]².
func SpectralEnergy(spectrum []complex128) float64 {
	if len(spectrum) == 0 {
		return 0
	}
	var s float64
	for _, c := range spectrum {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return s / float64(len(spectrum))
}

// maskPool recycles the boolean masks of the package-level MaskComponents so
// masking allocates nothing in steady state.
var maskPool sync.Pool

// MaskComponents zeroes every bin of the spectrum in place except bin 0 (the
// DC term), the listed bins k, and their conjugate mirrors N-k — the Xʳ[k]
// masking step of Section 5.1 applied to the caller's buffer. On error
// (component out of range) the spectrum is left untouched.
func MaskComponents(spectrum []complex128, ks ...int) error {
	n := len(spectrum)
	if n == 0 {
		return ErrEmpty
	}
	mp, _ := maskPool.Get().(*[]bool)
	if mp == nil || len(*mp) < n {
		m := make([]bool, n)
		mp = &m
	}
	err := applyMask(*mp, spectrum, ks)
	maskPool.Put(mp)
	return err
}

// applyMask zeroes the non-kept bins of spectrum using the caller-owned
// boolean mask (len(mask) ≥ len(spectrum), all false). The mask is restored
// to all-false before returning, touching only the set entries.
func applyMask(mask []bool, spectrum []complex128, ks []int) error {
	n := len(spectrum)
	for _, k := range ks {
		if k < 0 || k >= n {
			return fmt.Errorf("dsp: component %d out of range [0,%d)", k, n)
		}
	}
	mask[0] = true
	for _, k := range ks {
		mask[k] = true
		mask[(n-k)%n] = true
	}
	for i, keep := range mask[:n] {
		if !keep {
			spectrum[i] = 0
		}
	}
	mask[0] = false
	for _, k := range ks {
		mask[k] = false
		mask[(n-k)%n] = false
	}
	return nil
}

// KeepComponents returns a copy of the spectrum with every bin zeroed except
// bin 0, the listed bins and their conjugate mirrors. The input is not
// modified; use MaskComponents to mask a buffer in place.
func KeepComponents(spectrum []complex128, ks ...int) ([]complex128, error) {
	if len(spectrum) == 0 {
		return nil, ErrEmpty
	}
	out := make([]complex128, len(spectrum))
	copy(out, spectrum)
	if err := MaskComponents(out, ks...); err != nil {
		return nil, err
	}
	return out, nil
}

// Reconstruct rebuilds a time-domain signal from the real signal x while
// retaining only the DC term and the frequency components ks (plus their
// conjugate mirrors). It returns the reconstructed signal and the relative
// energy loss |E(x) - E(xr)| / E(x) as defined in Section 5.1 of the paper.
func Reconstruct(x []float64, ks ...int) (reconstructed []float64, energyLoss float64, err error) {
	if len(x) == 0 {
		return nil, 0, ErrEmpty
	}
	p, err := AcquirePlan(len(x))
	if err != nil {
		return nil, 0, err
	}
	defer p.Release()
	return p.Reconstruct(x, ks...)
}
