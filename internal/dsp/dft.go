// Package dsp implements the discrete Fourier transform machinery used by
// the frequency-domain analysis of Section 5 of the paper: forward and
// inverse DFT of real-valued traffic vectors, spectrum inspection
// (amplitude, phase, energy), and band-limited reconstruction from a small
// set of retained frequency components.
//
// The traffic vectors analysed by the paper have N = 4032 samples
// (28 days × 144 ten-minute slots). 4032 = 2^6 · 63 is highly composite, so
// a mixed-radix Cooley–Tukey recursion with a direct-DFT base case gives
// O(N log N)-ish behaviour without external dependencies; a plain O(N²)
// fallback is kept for prime lengths and used as the reference in tests.
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrEmpty is returned when a transform is requested on an empty signal.
var ErrEmpty = errors.New("dsp: empty signal")

// DFT computes the discrete Fourier transform of the real signal x,
// returning the complex spectrum X with len(X) == len(x). The convention
// matches the paper:
//
//	X[k] = Σ_{n=0..N-1} x[n] · e^{-2πi·k·n/N}
func DFT(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return dftComplex(c, false), nil
}

// IDFT computes the inverse discrete Fourier transform of the spectrum X,
// returning a complex signal. The inverse includes the 1/N factor:
//
//	x[n] = (1/N) Σ_{k=0..N-1} X[k] · e^{+2πi·k·n/N}
func IDFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	out := dftComplex(x, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// IDFTReal computes the inverse DFT and returns only the real part. It is
// intended for spectra of real signals (conjugate-symmetric), where the
// imaginary part of the inverse is numerical noise.
func IDFTReal(x []complex128) ([]float64, error) {
	c, err := IDFT(x)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out, nil
}

// dftComplex dispatches between the recursive mixed-radix transform and the
// direct transform. inverse selects the sign of the exponent (no 1/N
// scaling is applied here).
func dftComplex(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 1 {
		return []complex128{x[0]}
	}
	if f := smallestFactor(n); f < n {
		return cooleyTukey(x, f, inverse)
	}
	return directDFT(x, inverse)
}

// directDFT is the O(N²) reference transform, used for prime lengths.
func directDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// cooleyTukey performs one decimation step with radix p (a factor of
// len(x)) and recurses on the sub-transforms.
func cooleyTukey(x []complex128, p int, inverse bool) []complex128 {
	n := len(x)
	q := n / p
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Split into p interleaved sub-signals of length q and transform each.
	subs := make([][]complex128, p)
	for r := 0; r < p; r++ {
		sub := make([]complex128, q)
		for j := 0; j < q; j++ {
			sub[j] = x[j*p+r]
		}
		subs[r] = dftComplex(sub, inverse)
	}
	out := make([]complex128, n)
	// Combine: X[k] = Σ_r e^{sign·2πi·k·r/N} · Sub_r[k mod q]
	for k := 0; k < n; k++ {
		var sum complex128
		for r := 0; r < p; r++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(r) / float64(n)
			sum += cmplx.Exp(complex(0, angle)) * subs[r][k%q]
		}
		out[k] = sum
	}
	return out
}

// smallestFactor returns the smallest prime factor of n, or n itself when
// n is prime.
func smallestFactor(n int) int {
	if n%2 == 0 {
		return 2
	}
	for f := 3; f*f <= n; f += 2 {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// Amplitude returns |X[k]| for every bin of the spectrum.
func Amplitude(spectrum []complex128) []float64 {
	out := make([]float64, len(spectrum))
	for i, c := range spectrum {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// Phase returns arg(X[k]) in (-π, π] for every bin of the spectrum.
func Phase(spectrum []complex128) []float64 {
	out := make([]float64, len(spectrum))
	for i, c := range spectrum {
		out[i] = cmplx.Phase(c)
	}
	return out
}

// Energy returns the total energy of the time-domain signal, Σ x[n]².
func Energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// SpectralEnergy returns (1/N)·Σ |X[k]|², which by Parseval's theorem
// equals the time-domain energy Σ x[n]².
func SpectralEnergy(spectrum []complex128) float64 {
	if len(spectrum) == 0 {
		return 0
	}
	var s float64
	for _, c := range spectrum {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return s / float64(len(spectrum))
}

// KeepComponents zeroes every bin of the spectrum except bin 0 (the DC
// term), the listed bins k, and their conjugate mirrors N-k. This is the
// Xʳ[k] masking step of Section 5.1. The input is not modified.
func KeepComponents(spectrum []complex128, ks ...int) ([]complex128, error) {
	n := len(spectrum)
	if n == 0 {
		return nil, ErrEmpty
	}
	keep := make(map[int]bool, 2*len(ks)+1)
	keep[0] = true
	for _, k := range ks {
		if k < 0 || k >= n {
			return nil, fmt.Errorf("dsp: component %d out of range [0,%d)", k, n)
		}
		keep[k] = true
		keep[(n-k)%n] = true
	}
	out := make([]complex128, n)
	for i, c := range spectrum {
		if keep[i] {
			out[i] = c
		}
	}
	return out, nil
}

// Reconstruct rebuilds a time-domain signal from the real signal x while
// retaining only the DC term and the frequency components ks (plus their
// conjugate mirrors). It returns the reconstructed signal and the relative
// energy loss |E(x) - E(xr)| / E(x) as defined in Section 5.1 of the paper.
func Reconstruct(x []float64, ks ...int) (reconstructed []float64, energyLoss float64, err error) {
	spectrum, err := DFT(x)
	if err != nil {
		return nil, 0, err
	}
	masked, err := KeepComponents(spectrum, ks...)
	if err != nil {
		return nil, 0, err
	}
	reconstructed, err = IDFTReal(masked)
	if err != nil {
		return nil, 0, err
	}
	orig := Energy(x)
	if orig == 0 {
		return reconstructed, 0, nil
	}
	energyLoss = math.Abs(orig-Energy(reconstructed)) / orig
	return reconstructed, energyLoss, nil
}
