package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/testutil"
)

// testLengths exercises every code path of the engine: the unit transform,
// pure radix-2/4 powers of two, generic odd radices, the paper's composite
// 4032 = 2⁶·3²·7, and primes ≥ 31 that go through Bluestein.
var testLengths = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 21, 25, 27, 29,
	31, 37, 48, 63, 97, 101, 105, 128, 144, 243, 252, 256,
	441, 1009, 4032,
}

func randomReal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestPlanMatchesDirectDFT pits the plan's real and complex forward
// transforms against the O(N²) oracle on every test length. The acceptance
// tolerance is 1e-9 maximum absolute error on unit-scale inputs.
func TestPlanMatchesDirectDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range testLengths {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomReal(rng, n)
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		ref := directDFT(c, false)

		got := make([]complex128, n)
		if err := p.Transform(got, x); err != nil {
			t.Fatalf("n=%d Transform: %v", n, err)
		}
		if d := maxAbsDiff(got, ref); d > 1e-9 {
			t.Errorf("n=%d real transform: max abs error %g vs directDFT", n, d)
		}

		z := make([]complex128, n)
		for i := range z {
			z[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		refz := directDFT(z, false)
		gotz := make([]complex128, n)
		if err := p.TransformComplex(gotz, z); err != nil {
			t.Fatalf("n=%d TransformComplex: %v", n, err)
		}
		if d := maxAbsDiff(gotz, refz); d > 1e-9 {
			t.Errorf("n=%d complex transform: max abs error %g vs directDFT", n, d)
		}

		// In-place complex transform must agree with out-of-place.
		if err := p.TransformComplex(z, z); err != nil {
			t.Fatalf("n=%d in-place TransformComplex: %v", n, err)
		}
		if d := maxAbsDiff(z, refz); d > 1e-9 {
			t.Errorf("n=%d in-place complex transform: max abs error %g", n, d)
		}
	}
}

// TestPlanRoundTripAndParseval checks Transform→InverseReal and
// TransformComplex→Inverse round trips plus Parseval's identity on every
// test length.
func TestPlanRoundTripAndParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range testLengths {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomReal(rng, n)
		spec := make([]complex128, n)
		if err := p.Transform(spec, x); err != nil {
			t.Fatal(err)
		}
		if te, se := Energy(x), SpectralEnergy(spec); math.Abs(te-se) > 1e-9*(te+1) {
			t.Errorf("n=%d Parseval violated: time %g vs spectral %g", n, te, se)
		}
		back := make([]float64, n)
		if err := p.InverseReal(back, spec); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d real round trip[%d] = %g, want %g", n, i, back[i], x[i])
			}
		}

		z := make([]complex128, n)
		for i := range z {
			z[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		fwd := make([]complex128, n)
		if err := p.TransformComplex(fwd, z); err != nil {
			t.Fatal(err)
		}
		inv := make([]complex128, n)
		if err := p.Inverse(inv, fwd); err != nil {
			t.Fatal(err)
		}
		for i := range z {
			if cmplx.Abs(inv[i]-z[i]) > 1e-9 {
				t.Fatalf("n=%d complex round trip[%d] = %v, want %v", n, i, inv[i], z[i])
			}
		}
	}
}

// TestPlanReconstructMatchesWrapper checks that the plan's allocation-free
// reconstruction agrees with the package-level wrapper and with first
// principles on the paper length.
func TestPlanReconstructMatchesWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randomReal(rng, 4032)
	p, err := NewPlan(len(x))
	if err != nil {
		t.Fatal(err)
	}
	got, gotLoss, err := p.Reconstruct(x, BinWeekly, BinDaily, BinHalfDay)
	if err != nil {
		t.Fatal(err)
	}
	want, wantLoss, err := Reconstruct(x, BinWeekly, BinDaily, BinHalfDay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotLoss-wantLoss) > 1e-12 {
		t.Errorf("energy loss: plan %g vs wrapper %g", gotLoss, wantLoss)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("reconstruct[%d]: plan %g vs wrapper %g", i, got[i], want[i])
		}
	}
	if _, err := p.ReconstructInto(make([]float64, p.N()), x, p.N()); err == nil {
		t.Error("out-of-range component should fail")
	}
}

// TestPlanZeroAllocs verifies the acceptance criterion that a warmed plan
// performs zero allocations per transform.
func TestPlanZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{144, 1009, 4032} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomReal(rng, n)
		spec := make([]complex128, n)
		back := make([]float64, n)
		if err := p.Transform(spec, x); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			if err := p.Transform(spec, x); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("n=%d Transform allocates %.1f times per run, want 0", n, allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			if err := p.InverseReal(back, spec); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("n=%d InverseReal allocates %.1f times per run, want 0", n, allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			if _, err := p.ReconstructInto(back, x, 4, 28); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("n=%d ReconstructInto allocates %.1f times per run, want 0", n, allocs)
		}
	}
}

// TestPlanCloneConcurrent runs clones of one plan from many goroutines and
// checks every result against the parent's.
func TestPlanCloneConcurrent(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(17))
	const n = 252
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := randomReal(rng, n)
	want := make([]complex128, n)
	if err := p.Transform(want, x); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	diffs := make([]float64, 8)
	for w := 0; w < 8; w++ {
		clone := p.Clone()
		wg.Add(1)
		go func(w int, clone *Plan) {
			defer wg.Done()
			got := make([]complex128, n)
			for iter := 0; iter < 50; iter++ {
				if err := clone.Transform(got, x); err != nil {
					errs[w] = err
					return
				}
				if d := maxAbsDiff(got, want); d > diffs[w] {
					diffs[w] = d
				}
			}
		}(w, clone)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if diffs[w] != 0 {
			t.Errorf("worker %d: clone diverged from parent by %g", w, diffs[w])
		}
	}
}

// TestBatchSpectraMatchesSequential checks the batch fan-out against
// per-signal wrapper calls, plus error propagation for ragged inputs.
func TestBatchSpectraMatchesSequential(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(19))
	const n, rows = 144, 37
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	signals := make([][]float64, rows)
	for i := range signals {
		signals[i] = randomReal(rng, n)
	}
	batch, err := p.BatchSpectra(signals)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range signals {
		want, err := DFT(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(batch[i], want); d > 1e-12 {
			t.Errorf("row %d: batch spectrum differs from DFT by %g", i, d)
		}
	}
	if _, err := p.BatchSpectra([][]float64{make([]float64, n), make([]float64, n-1)}); err == nil {
		t.Error("ragged batch should fail")
	}
	if out, err := p.BatchSpectra(nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch: got %v, %v", out, err)
	}
}

// TestMaskComponentsInPlace checks the in-place masking satellite: mirrors
// kept, errors leave the buffer untouched, and the KeepComponents copy
// semantics are preserved.
func TestMaskComponentsInPlace(t *testing.T) {
	spec := []complex128{1, 2, 3, 4, 5, 6, 7, 8}
	if err := MaskComponents(spec, 2); err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 0, 3, 0, 0, 0, 7, 0}
	for i := range want {
		if spec[i] != want[i] {
			t.Errorf("masked[%d] = %v, want %v", i, spec[i], want[i])
		}
	}
	orig := []complex128{1, 2, 3, 4}
	if err := MaskComponents(orig, 9); err == nil {
		t.Fatal("out-of-range component should fail")
	}
	for i, v := range []complex128{1, 2, 3, 4} {
		if orig[i] != v {
			t.Error("failed MaskComponents modified its input")
		}
	}
	if err := MaskComponents(nil); err == nil {
		t.Error("empty spectrum should fail")
	}
}

// TestAcquireRelease checks the package-level pool's lifecycle and error
// paths. (Whether a release is reused is up to sync.Pool — a GC may empty
// it — so reuse itself is not asserted.)
func TestAcquireRelease(t *testing.T) {
	p1, err := AcquirePlan(963)
	if err != nil {
		t.Fatal(err)
	}
	if p1.N() != 963 {
		t.Errorf("acquired plan length %d, want 963", p1.N())
	}
	p1.Release()
	p2, err := AcquirePlan(963)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Release()
	x := randomReal(rand.New(rand.NewSource(23)), 963)
	spec := make([]complex128, 963)
	if err := p2.Transform(spec, x); err != nil {
		t.Fatalf("pooled plan transform: %v", err)
	}
	if _, err := AcquirePlan(0); err == nil {
		t.Error("AcquirePlan(0) should fail")
	}
	if _, err := NewPlan(-3); err == nil {
		t.Error("NewPlan(-3) should fail")
	}
}

// --- Benchmarks -----------------------------------------------------------

func benchPlanFFT(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(3))
	x := randomReal(rng, n)
	p, err := NewPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Transform(out, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSP_FFTPowerOfTwo measures the pure radix-4/2 path.
func BenchmarkDSP_FFTPowerOfTwo(b *testing.B) { benchPlanFFT(b, 4096) }

// BenchmarkDSP_FFTPaperLength measures the paper's composite length
// 4032 = 2⁶·3²·7 (mixed radix-4/2/3/7 stages).
func BenchmarkDSP_FFTPaperLength(b *testing.B) { benchPlanFFT(b, 4032) }

// BenchmarkDSP_FFTPrime measures a prime length through Bluestein.
func BenchmarkDSP_FFTPrime(b *testing.B) { benchPlanFFT(b, 4099) }

// BenchmarkDSP_FFTRadix3Heavy measures 3^8 = 6561, a pure chain of the
// specialised radix-3 butterfly (the s==1 form on the first stage).
func BenchmarkDSP_FFTRadix3Heavy(b *testing.B) { benchPlanFFT(b, 6561) }

// BenchmarkDSP_FFTWeekOfHours measures the paper's week-of-hours slot count
// 168 = 4·2·3·7 — the length the modeling pipeline actually transforms —
// whose RFFT half plan 84 = 4·3·7 opens with the unit-stride radix-4 stage
// and runs the radix-3 butterfly on the second.
func BenchmarkDSP_FFTWeekOfHours(b *testing.B) { benchPlanFFT(b, 168) }

// BenchmarkDSP_BatchSpectra measures the worker-pool fan-out over a
// tower-sized batch of paper-length vectors.
func BenchmarkDSP_BatchSpectra(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const rows, n = 256, 4032
	signals := make([][]float64, rows)
	for i := range signals {
		signals[i] = randomReal(rng, n)
	}
	p, err := NewPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.BatchSpectra(signals); err != nil {
			b.Fatal(err)
		}
	}
}
