package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDFTEmpty(t *testing.T) {
	if _, err := DFT(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("DFT(nil): got %v, want ErrEmpty", err)
	}
	if _, err := IDFT(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("IDFT(nil): got %v, want ErrEmpty", err)
	}
	if _, err := KeepComponents(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("KeepComponents(nil): got %v, want ErrEmpty", err)
	}
}

func TestDFTConstantSignal(t *testing.T) {
	x := []float64{2, 2, 2, 2}
	spec, err := DFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(spec[0])-8) > 1e-9 || math.Abs(imag(spec[0])) > 1e-9 {
		t.Errorf("DC bin = %v, want 8", spec[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(spec[k]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0 for constant signal", k, spec[k])
		}
	}
}

func TestDFTSingleTone(t *testing.T) {
	// A pure cosine at bin 3 of a 48-sample signal should put all its
	// energy (split evenly) at bins 3 and 45.
	n := 48
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	spec, err := DFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmplx.Abs(spec[3]); math.Abs(got-float64(n)/2) > 1e-6 {
		t.Errorf("|X[3]| = %g, want %g", got, float64(n)/2)
	}
	if got := cmplx.Abs(spec[45]); math.Abs(got-float64(n)/2) > 1e-6 {
		t.Errorf("|X[45]| = %g, want %g", got, float64(n)/2)
	}
	for k := 0; k < n; k++ {
		if k == 3 || k == 45 {
			continue
		}
		if cmplx.Abs(spec[k]) > 1e-6 {
			t.Errorf("|X[%d]| = %g, want ~0", k, cmplx.Abs(spec[k]))
		}
	}
}

func TestDFTMatchesDirectOnCompositeAndPrimeLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 5, 7, 8, 12, 13, 60, 63, 97, 144} {
		x := make([]float64, n)
		c := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			c[i] = complex(x[i], 0)
		}
		fast, err := DFT(x)
		if err != nil {
			t.Fatal(err)
		}
		ref := directDFT(c, false)
		for k := range ref {
			if cmplx.Abs(fast[k]-ref[k]) > 1e-9*float64(n) {
				t.Errorf("n=%d bin %d: fast %v vs direct %v", n, k, fast[k], ref[k])
			}
		}
	}
}

func TestDFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{16, 63, 100, 144} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec, err := DFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IDFTReal(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d round trip[%d] = %g, want %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 252)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec, err := DFT(x)
	if err != nil {
		t.Fatal(err)
	}
	te := Energy(x)
	se := SpectralEnergy(spec)
	if math.Abs(te-se) > 1e-6*te {
		t.Errorf("Parseval violated: time %g vs spectral %g", te, se)
	}
	if SpectralEnergy(nil) != 0 {
		t.Error("SpectralEnergy(nil) should be 0")
	}
}

func TestKeepComponents(t *testing.T) {
	spec := []complex128{1, 2, 3, 4, 5, 6, 7, 8}
	kept, err := KeepComponents(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bins 0, 2 and 6 (mirror of 2) survive.
	want := []complex128{1, 0, 3, 0, 0, 0, 7, 0}
	for i := range want {
		if kept[i] != want[i] {
			t.Errorf("kept[%d] = %v, want %v", i, kept[i], want[i])
		}
	}
	if _, err := KeepComponents(spec, 99); err == nil {
		t.Error("out-of-range component should fail")
	}
	if _, err := KeepComponents(spec, -1); err == nil {
		t.Error("negative component should fail")
	}
	// Original must be untouched.
	if spec[1] != 2 {
		t.Error("KeepComponents modified its input")
	}
}

func TestReconstructPureTones(t *testing.T) {
	// Signal composed only of bins 4 and 28 → keeping those bins loses
	// essentially no energy.
	n := 4032
	x := make([]float64, n)
	for i := range x {
		ti := float64(i)
		x[i] = 3*math.Cos(2*math.Pi*4*ti/float64(n)+0.3) + 2*math.Sin(2*math.Pi*28*ti/float64(n))
	}
	rec, loss, err := Reconstruct(x, 4, 28)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-6 {
		t.Errorf("energy loss = %g, want ~0", loss)
	}
	for i := 0; i < n; i += 997 {
		if math.Abs(rec[i]-x[i]) > 1e-6 {
			t.Errorf("rec[%d] = %g, want %g", i, rec[i], x[i])
		}
	}
	// Dropping bin 28 must lose the energy of the second tone:
	// fraction = (2²/2) / (3²/2 + 2²/2) = 4/13.
	_, loss2, err := Reconstruct(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss2-4.0/13.0) > 1e-6 {
		t.Errorf("partial energy loss = %g, want %g", loss2, 4.0/13.0)
	}
}

func TestReconstructZeroSignal(t *testing.T) {
	x := make([]float64, 64)
	rec, loss, err := Reconstruct(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 {
		t.Errorf("zero-signal energy loss = %g, want 0", loss)
	}
	for _, v := range rec {
		if v != 0 {
			t.Error("reconstruction of zero signal should be zero")
		}
	}
}

func TestPrincipalBins(t *testing.T) {
	w, d, h, err := PrincipalBins(4032, 28)
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 || d != 28 || h != 56 {
		t.Errorf("PrincipalBins(4032, 28) = %d,%d,%d want 4,28,56", w, d, h)
	}
	if _, _, _, err := PrincipalBins(4032, 27); err == nil {
		t.Error("non-whole-week coverage should fail")
	}
	if _, _, _, err := PrincipalBins(0, 28); err == nil {
		t.Error("zero samples should fail")
	}
	if _, _, _, err := PrincipalBins(10, 7); err == nil {
		t.Error("half-day bin out of range should fail")
	}
}

func TestSpectrumAccessors(t *testing.T) {
	x := []float64{1, 0, -1, 0, 1, 0, -1, 0} // cosine at bin 2
	s, err := NewSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	c, err := s.Component(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Amplitude-4) > 1e-9 {
		t.Errorf("amplitude at bin 2 = %g, want 4", c.Amplitude)
	}
	if _, err := s.Component(100); err == nil {
		t.Error("out-of-range component should fail")
	}
	cs, err := s.Components(0, 2)
	if err != nil || len(cs) != 2 {
		t.Fatalf("Components: %v %v", cs, err)
	}
	na, err := s.NormalizedAmplitude(2)
	if err != nil || math.Abs(na-0.5) > 1e-9 {
		t.Errorf("NormalizedAmplitude = %g, want 0.5", na)
	}
	trunc, err := s.Truncate(2)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := trunc.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(inv[i]-x[i]) > 1e-9 {
			t.Errorf("truncated inverse[%d] = %g, want %g", i, inv[i], x[i])
		}
	}
	if len(s.Amplitudes()) != 8 || len(s.Phases()) != 8 {
		t.Error("Amplitudes/Phases length mismatch")
	}
}

// Property: DFT is linear — DFT(a·x + y) = a·DFT(x) + DFT(y).
func TestDFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed uint8) bool {
		n := int(seed%32) + 4
		a := rng.NormFloat64()
		x, y, mix := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			mix[i] = a*x[i] + y[i]
		}
		sx, _ := DFT(x)
		sy, _ := DFT(y)
		sm, _ := DFT(mix)
		for k := 0; k < n; k++ {
			want := complex(a, 0)*sx[k] + sy[k]
			if cmplx.Abs(sm[k]-want) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: round trip through DFT and IDFT reproduces the signal, and
// Parseval's identity holds.
func TestDFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed uint8) bool {
		n := int(seed%60) + 2
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		spec, err := DFT(x)
		if err != nil {
			return false
		}
		back, err := IDFTReal(spec)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return math.Abs(Energy(x)-SpectralEnergy(spec)) <= 1e-7*(Energy(x)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		n        int
		want     []int
		stockham bool
	}{
		{2, []int{2}, true},
		{4, []int{4}, true},
		{9, []int{3, 3}, true},
		{13, []int{13}, true},
		{63, []int{3, 3, 7}, true},
		{4032, []int{4, 4, 4, 3, 3, 7}, true},
		{97, nil, false},   // prime > maxStockhamRadix → Bluestein
		{2018, nil, false}, // 2·1009, large prime factor → Bluestein
	}
	for _, c := range cases {
		got, ok := factorize(c.n)
		if ok != c.stockham {
			t.Errorf("factorize(%d) stockham = %v, want %v", c.n, ok, c.stockham)
			continue
		}
		if !ok {
			continue
		}
		prod := 1
		for _, f := range got {
			prod *= f
		}
		if prod != c.n {
			t.Errorf("factorize(%d) = %v, product %d", c.n, got, prod)
		}
		if len(got) != len(c.want) {
			t.Errorf("factorize(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("factorize(%d) = %v, want %v", c.n, got, c.want)
				break
			}
		}
	}
}

func BenchmarkDFT4032(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 4032)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct4032(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 4032)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Reconstruct(x, BinWeekly, BinDaily, BinHalfDay); err != nil {
			b.Fatal(err)
		}
	}
}
