package benchfmt

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkIngest_Serial-4         	       3	 355644526 ns/op	  5623968 records/s	       5 B/op	       0 allocs/op
BenchmarkDSP_FFTPaperLength 	   26372	     87165 ns/op	       0 B/op	       0 allocs/op
some log line
BenchmarkPipeline_FullAnalysis/float32-4         	       2	 431078105 ns/op	29353788 B/op	   56691 allocs/op
PASS
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample), "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	e := doc.Lookup("BenchmarkIngest_Serial")
	if e == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if e.Iterations != 3 || e.Metrics["ns/op"] != 355644526 || e.Metrics["records/s"] != 5623968 {
		t.Errorf("bad entry: %+v", e)
	}
	if got := doc.Lookup("BenchmarkPipeline_FullAnalysis/float32"); got == nil || got.Metrics["allocs/op"] != 56691 {
		t.Errorf("sub-benchmark entry wrong: %+v", got)
	}
	if doc.Lookup("BenchmarkMissing") != nil {
		t.Error("Lookup invented an entry")
	}
}

func TestParseSelect(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample), "test", regexp.MustCompile(`DSP_FFT`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "BenchmarkDSP_FFTPaperLength" {
		t.Fatalf("selection kept %+v", doc.Benchmarks)
	}
}

func TestParseBadValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 2 abc ns/op\n"), "test", nil); err == nil {
		t.Fatal("malformed metric value accepted")
	}
}
