// Package benchfmt parses `go test -bench` output into the JSON document
// shape the repository archives across PRs (BENCH_N.json): one entry per
// benchmark with its name, iteration count and a metric map keyed by unit.
// cmd/benchjson emits the documents; cmd/benchcmp diffs a fresh run against
// a committed baseline and gates CI on regressions.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the reported values were averaged over.
	Iterations int64 `json:"iterations"`
	// Metrics maps a unit (ns/op, MB/s, records/s, allocs/op, ...) to its
	// reported value.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the archived JSON shape.
type Document struct {
	// Source names the input the benchmarks were parsed from.
	Source string `json:"source"`
	// Benchmarks holds every selected benchmark in input order.
	Benchmarks []Entry `json:"benchmarks"`
}

// Lookup returns the entry named name, or nil.
func (d *Document) Lookup(name string) *Entry {
	for i := range d.Benchmarks {
		if d.Benchmarks[i].Name == name {
			return &d.Benchmarks[i]
		}
	}
	return nil
}

// ReadFile loads an archived document.
func ReadFile(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &doc, nil
}

// gomaxprocsSuffix strips the trailing -N the testing package appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse scans benchmark lines out of r, keeping only names matching sel
// (nil keeps all). The format is fixed by the testing package: name,
// iteration count, then value/unit pairs separated by whitespace;
// non-benchmark lines are ignored so a full `go test` transcript parses.
func Parse(r io.Reader, source string, sel *regexp.Regexp) (*Document, error) {
	doc := &Document{Source: source}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		if sel != nil && !sel.MatchString(name) {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with Benchmark
		}
		entry := Entry{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			entry.Metrics[fields[i+1]] = value
		}
		doc.Benchmarks = append(doc.Benchmarks, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}
