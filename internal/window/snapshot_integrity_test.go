package window

// Integrity tests for the v2 snapshot format: every torn or bit-rotted
// byte must surface as ErrBadSnapshot at restore (never a silently wrong
// window), and a v1 file written by the previous release must still load.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
)

// snapshotBytes returns a fed window and its v2 snapshot.
func snapshotBytes(t *testing.T) (*Window, []byte) {
	t.Helper()
	w, err := New(Options{Start: t0, SlotMinutes: 60, Days: 7})
	if err != nil {
		t.Fatal(err)
	}
	feedSeries(w, genSeries(11, 4, 8, 24), 60)
	var buf bytes.Buffer
	if err := w.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return w, buf.Bytes()
}

func TestSnapshotDetectsBitCorruption(t *testing.T) {
	_, snap := snapshotBytes(t)
	// Flip one bit at a spread of positions: header magic, checksum,
	// length field and body must all be covered.
	for pos := 0; pos < len(snap); pos += 1 + len(snap)/97 {
		mut := bytes.Clone(snap)
		mut[pos] ^= 0x01
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Errorf("bit flip at byte %d of %d accepted", pos, len(snap))
		}
	}
}

func TestSnapshotDetectsTruncation(t *testing.T) {
	_, snap := snapshotBytes(t)
	for _, n := range []int{0, 1, snapshotHeaderSize - 1, snapshotHeaderSize, snapshotHeaderSize + 7, len(snap) / 2, len(snap) - 1} {
		if _, err := DecodeSnapshot(snap[:n]); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("truncation to %d of %d bytes: err = %v, want ErrBadSnapshot", n, len(snap), err)
		}
	}
}

func TestSnapshotDetectsTrailingBytes(t *testing.T) {
	_, snap := snapshotBytes(t)
	grown := append(bytes.Clone(snap), 0x00)
	if _, err := DecodeSnapshot(grown); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("trailing byte: err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotReadsV1Format(t *testing.T) {
	// A v1 snapshot is the bare gob frame with Version 1 — rebuild one
	// from a v2 snapshot's body and make sure it still restores.
	w, snap := snapshotBytes(t)
	var frame snapshotFrame
	if err := gob.NewDecoder(bytes.NewReader(snap[snapshotHeaderSize:])).Decode(&frame); err != nil {
		t.Fatal(err)
	}
	frame.Version = 1
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(&frame); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeSnapshot(v1.Bytes())
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if restored.Summary() != w.Summary() {
		t.Errorf("v1 restore summary differs: %+v vs %+v", restored.Summary(), w.Summary())
	}
	// A v1 frame must not claim to be v2 and vice versa.
	frame.Version = 2
	var mixed bytes.Buffer
	if err := gob.NewEncoder(&mixed).Encode(&frame); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(mixed.Bytes()); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("bare gob frame claiming v2: err = %v, want ErrBadSnapshot", err)
	}
}
