package window

// guards.go is the feed-quality layer of the sliding window: defenses
// against data that is syntactically valid but semantically poisoned.
//
// Two guards exist. The clock-skew guard drops records whose timestamp
// runs further ahead of the window's data-driven clock than a configured
// bound — without it a single corrupt far-future timestamp wedges the
// clock forward and mass-evicts every tower's history. The quarantine
// guard watches each tower's completed slots against a robust seasonal
// baseline (per slot-of-day median ± 1.4826·MAD over the days in the
// ring) and excludes towers whose traffic jumps beyond a z-score bound
// from the Dataset() handoff until they stabilize, so a spiked or zeroed
// tower cannot steer the next model.
//
// Quarantine is judgement over history already admitted to the ring:
// poisoned values still land in slots (and age out as the window slides),
// but a quarantined tower is invisible to modeling. The baseline uses
// medians precisely so that a few poisoned days cannot drag it along —
// after the poison stops, the tower's clean traffic scores calm against
// the still-clean baseline and the tower is released.

import (
	"math"
	"sort"
	"time"
)

// Guards configure the window's feed-quality defenses. Guards are
// construction-time configuration, not window state: like locations they
// are not persisted by WriteSnapshot and must be re-applied with
// SetGuards after a restore (quarantine verdicts themselves are
// persisted). The zero value disables both guards.
type Guards struct {
	// MaxFutureSkew bounds how far ahead of the window's data-driven
	// clock (the newest slot any record has touched) a record timestamp
	// may run. Records beyond the bound are dropped and counted in
	// Summary.DroppedFuture. The first record is exempt — it establishes
	// the clock. Zero disables the guard.
	MaxFutureSkew time.Duration
	// Quarantine configures per-tower outlier quarantine.
	Quarantine QuarantineOptions
}

// QuarantineOptions configure the per-tower quarantine judge. The zero
// value disables quarantine.
type QuarantineOptions struct {
	// ZThreshold is the robust z-score — |v − median| / (1.4826·MAD),
	// both taken per slot-of-day across the days in the ring — beyond
	// which a completed slot counts as an outlier. <= 0 disables
	// quarantine.
	ZThreshold float64
	// MinSlots is the number of completed slots a tower must have been
	// observed for before any judgement (default two days' worth): young
	// towers have no baseline worth trusting.
	MinSlots int
	// TriggerSlots consecutive outlier slots quarantine the tower
	// (default 3).
	TriggerSlots int
	// ReleaseSlots consecutive calm slots release it (default one hour's
	// worth, minimum 3). Slots with no usable baseline (e.g. a dead-quiet
	// night hour) count toward neither run.
	ReleaseSlots int
}

const (
	// minBaselineDays is the fewest same-slot-of-day samples a baseline
	// median is trusted from; below it the slot is unjudgeable.
	minBaselineDays = 3
	// relScaleFloor floors the robust scale at this fraction of the slot
	// median (or of the tower's busiest slot median, for quiet slots), so
	// a perfectly regular tower does not get an infinite z-score on its
	// first wobble.
	relScaleFloor = 0.1
)

// SetGuards applies feed-quality guards, normalising defaults against the
// window's slot grid. Calling it with a zero Guards clears all quarantine
// verdicts; calling it with quarantine enabled forces every tower's
// baseline to be recomputed on next judgement.
func (w *Window) SetGuards(g Guards) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if g.MaxFutureSkew > 0 {
		w.skewSlots = int64(g.MaxFutureSkew / w.slotDur)
		if w.skewSlots < 1 {
			w.skewSlots = 1
		}
	} else {
		w.skewSlots = 0
	}
	q := &g.Quarantine
	if q.ZThreshold > 0 {
		if q.MinSlots <= 0 {
			q.MinSlots = 2 * w.spd
		}
		if q.TriggerSlots <= 0 {
			q.TriggerSlots = 3
		}
		if q.ReleaseSlots <= 0 {
			q.ReleaseSlots = max(3, w.spd/24)
		}
	}
	w.guards = g
	w.quarCount = 0
	for _, ts := range w.towers {
		ts.statsAt = -1
		if q.ZThreshold <= 0 {
			ts.quarantined = false
			ts.outlierRun, ts.calmRun = 0, 0
		} else if ts.quarantined {
			w.quarCount++
		}
	}
}

// Guards returns the window's guard configuration (with defaults
// applied).
func (w *Window) Guards() Guards {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.guards
}

// judgeLocked scores a tower's completed slots — everything newer than
// its last judgement up to (but excluding) the slot currently
// accumulating — against its robust baseline and flips quarantine state.
// It is called on every add, so in steady state it judges at most one
// slot per tower per slot duration; the loop is bounded by the ring
// length for towers that went silent. Callers hold w.mu and have advanced
// the ring.
func (w *Window) judgeLocked(ts *towerState) {
	q := w.guards.Quarantine
	if q.ZThreshold <= 0 {
		return
	}
	hi := w.latest - 1
	if hi <= ts.judged {
		return
	}
	lo := ts.judged + 1
	if m := hi - int64(w.ringSlots) + 1; lo < m {
		lo = m
	}
	for s := lo; s <= hi; s++ {
		if s-ts.born < int64(q.MinSlots) {
			continue
		}
		if ts.statsAt < 0 || s-ts.statsAt >= int64(w.spd) {
			w.refreshBaselineLocked(ts)
			ts.statsAt = s
		}
		scale := ts.baseScale[s%int64(w.spd)]
		if scale <= 0 {
			continue // no usable baseline for this slot-of-day
		}
		med := ts.baseMed[s%int64(w.spd)]
		v := ts.ring[s%int64(w.ringSlots)]
		outlier := math.Abs(v-med)/scale > q.ZThreshold
		if ts.quarantined {
			if outlier {
				ts.calmRun = 0
				continue
			}
			ts.calmRun++
			if ts.calmRun >= q.ReleaseSlots {
				ts.quarantined = false
				ts.calmRun, ts.outlierRun = 0, 0
				w.quarCount--
				w.quarReleases++
			}
			continue
		}
		if !outlier {
			ts.outlierRun = 0
			continue
		}
		ts.outlierRun++
		if ts.outlierRun >= q.TriggerSlots {
			ts.quarantined = true
			ts.outlierRun, ts.calmRun = 0, 0
			w.quarCount++
			w.quarEvents++
		}
	}
	ts.judged = hi
}

// refreshBaselineLocked recomputes a tower's per-slot-of-day robust
// baseline (median and 1.4826·MAD) from the completed slots currently in
// the ring. Medians make the baseline resistant to a minority of
// poisoned days, which is what lets a tower be released once its feed
// turns clean again. Slots of day with fewer than minBaselineDays
// samples, and fully silent slots of a tower with no traffic anywhere,
// get a zero scale: unjudgeable.
func (w *Window) refreshBaselineLocked(ts *towerState) {
	if ts.baseMed == nil {
		ts.baseMed = make([]float64, w.spd)
		ts.baseScale = make([]float64, w.spd)
	}
	lo := w.latest - int64(w.ringSlots) + 1
	if ts.born > lo {
		lo = ts.born
	}
	hi := w.latest - 1
	spd := int64(w.spd)
	samples := w.scratch[:0]
	maxMed := 0.0
	for j := int64(0); j < spd; j++ {
		samples = samples[:0]
		first := lo + ((j-lo)%spd+spd)%spd
		for s := first; s <= hi; s += spd {
			samples = append(samples, ts.ring[s%int64(w.ringSlots)])
		}
		if len(samples) < minBaselineDays {
			ts.baseMed[j], ts.baseScale[j] = 0, -1 // too few samples: unjudgeable
			continue
		}
		med := medianInPlace(samples)
		for k, v := range samples {
			samples[k] = math.Abs(v - med)
		}
		scale := 1.4826 * medianInPlace(samples)
		if floor := relScaleFloor * med; scale < floor {
			scale = floor
		}
		ts.baseMed[j], ts.baseScale[j] = med, scale
		if med > maxMed {
			maxMed = med
		}
	}
	// A dead-quiet slot of day on an otherwise busy tower still deserves
	// judgement (a flood at 4am is an anomaly, not background): give it
	// the scale of the tower's busiest hour rather than none at all.
	if floor := relScaleFloor * maxMed; floor > 0 {
		for j := range ts.baseScale {
			if ts.baseScale[j] == 0 {
				ts.baseScale[j] = floor
			}
		}
	}
	w.scratch = samples[:0]
}

// medianInPlace sorts vals and returns their median (mean of the middle
// pair for even lengths). It is only called on non-empty slices.
func medianInPlace(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
