// Package window maintains per-tower sliding-window traffic state for the
// always-on analysis service: the live counterpart of the batch
// vectorizer. Records stream in (in roughly chronological order, the shape
// of a CDR feed), each tower accumulates its traffic into a ring buffer of
// fixed-length slots, and old slots are evicted as the window slides — so
// memory stays O(towers × window slots) no matter how long the feed runs.
//
// Alongside the ring every tower keeps incremental first and second
// moments of its window (the z-score state), updated in O(1) per record
// and per eviction, so live mean/deviation queries never rescan the ring.
//
// Dataset snapshots the most recent whole weeks of every tower's window
// into a pipeline.Dataset — the handoff that lets the background
// re-modeling loop run the unchanged batch pipeline (core.AnalyzeContext)
// over live state.
//
// WriteSnapshot/ReadSnapshot persist the full window state in a versioned,
// CRC-32C-checksummed gob frame so a restarted service resumes with the
// identical window instead of warming up from nothing, and a truncated or
// bit-rotted snapshot is rejected (ErrBadSnapshot) rather than silently
// restored wrong. Version-1 snapshots (pre-checksum) remain readable.
//
// All methods are safe for concurrent use: the ingest goroutine appends
// batches while the re-modeling loop and HTTP handlers read.
package window

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Errors returned by the window.
var (
	// ErrWarmingUp means the window does not yet cover a whole week of
	// complete days, so there is nothing to model.
	ErrWarmingUp = errors.New("window: fewer than 7 complete days observed")
	// ErrBadSnapshot means the snapshot stream is not a window snapshot or
	// carries an unsupported version.
	ErrBadSnapshot = errors.New("window: bad snapshot")
)

// Options configure the sliding window. The zero value of SlotMinutes and
// Days take the defaults; Start is required.
type Options struct {
	// Start is the slot-grid origin: slot k covers
	// [Start + k·SlotMinutes, Start + (k+1)·SlotMinutes). Records before
	// Start are dropped (counted in Summary.Dropped). Required.
	Start time.Time
	// SlotMinutes is the aggregation granularity (default 10, the paper's).
	SlotMinutes int
	// Days is the sliding-window length in whole days; it must be a
	// multiple of 7 so the modeling window always covers whole weeks
	// (default 7).
	Days int
}

func (o Options) withDefaults() Options {
	if o.SlotMinutes == 0 {
		o.SlotMinutes = 10
	}
	if o.Days == 0 {
		o.Days = 7
	}
	return o
}

func (o Options) validate() error {
	if o.Start.IsZero() {
		return errors.New("window: Start must be set")
	}
	if o.SlotMinutes <= 0 || 1440%o.SlotMinutes != 0 {
		return fmt.Errorf("window: SlotMinutes must divide 1440, got %d", o.SlotMinutes)
	}
	if o.Days <= 0 || o.Days%7 != 0 {
		return fmt.Errorf("window: Days must be a positive multiple of 7, got %d", o.Days)
	}
	return nil
}

// towerState is one tower's ring of traffic slots plus the incremental
// moments over the ring.
type towerState struct {
	// ring[s % len(ring)] is the bytes of absolute slot s, valid for
	// slots in (upTo - len(ring), upTo].
	ring []float64
	// upTo is the highest absolute slot this ring has been advanced to.
	upTo int64
	// sum and sumsq are Σv and Σv² over the ring, maintained
	// incrementally on every add and eviction.
	sum, sumsq float64

	// Quarantine bookkeeping (guards.go). born is the slot at which the
	// tower first appeared and judged the newest completed slot already
	// scored. baseMed/baseScale cache the per-slot-of-day robust baseline,
	// recomputed when a judged slot is spd past statsAt (-1 = never
	// computed). outlierRun/calmRun are the consecutive-slot counters that
	// trip and release quarantine.
	born        int64
	judged      int64
	statsAt     int64
	baseMed     []float64
	baseScale   []float64
	outlierRun  int
	calmRun     int
	quarantined bool
}

// Window is the concurrent sliding-window accumulator. See the package
// comment for the model.
type Window struct {
	mu        sync.Mutex
	opts      Options
	slotDur   time.Duration
	spd       int // slots per day
	ringSlots int // (Days+1)·spd: one spare day so an aligned Days-day window always fits
	towers    map[int]*towerState
	locations map[int]geo.Point
	latest    int64 // highest absolute slot observed; -1 before any record
	ingested  uint64
	dropped   uint64

	// Feed-quality guards (guards.go). skewSlots is Guards.MaxFutureSkew
	// in slots (0 = unguarded); quarCount is the live quarantined-tower
	// gauge; the remaining counters are monotone accounting surfaced in
	// Summary. scratch is the baseline median scratch buffer.
	guards        Guards
	skewSlots     int64
	quarCount     int
	quarEvents    uint64
	quarReleases  uint64
	droppedFuture uint64
	scratch       []float64
}

// New returns an empty window.
func New(opts Options) (*Window, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	spd := 1440 / opts.SlotMinutes
	return &Window{
		opts:      opts,
		slotDur:   time.Duration(opts.SlotMinutes) * time.Minute,
		spd:       spd,
		ringSlots: (opts.Days + 1) * spd,
		towers:    make(map[int]*towerState),
		locations: make(map[int]geo.Point),
		latest:    -1,
	}, nil
}

// Options returns the window's configuration (with defaults applied).
func (w *Window) Options() Options { return w.opts }

// SetLocations registers tower locations for the datasets the window
// hands to the modeling pipeline. Locations are construction-time
// metadata, not window state: they are not persisted by WriteSnapshot and
// must be re-supplied after ReadSnapshot.
func (w *Window) SetLocations(infos []trace.TowerInfo) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, ti := range infos {
		w.locations[ti.TowerID] = ti.Location
	}
}

// advance clears the ring entries between ts.upTo and the target slot,
// evicting their values from the incremental moments.
func (w *Window) advance(ts *towerState, to int64) {
	if to <= ts.upTo {
		return
	}
	if to-ts.upTo >= int64(w.ringSlots) {
		// The whole ring has fallen out of the window.
		for i := range ts.ring {
			ts.ring[i] = 0
		}
		ts.sum, ts.sumsq = 0, 0
		ts.upTo = to
		return
	}
	for s := ts.upTo + 1; s <= to; s++ {
		i := s % int64(w.ringSlots)
		if v := ts.ring[i]; v != 0 {
			ts.sum -= v
			ts.sumsq -= v * v
			ts.ring[i] = 0
		}
	}
	ts.upTo = to
}

// add ingests one record with the lock held.
func (w *Window) add(rec trace.Record) {
	slot := int64(rec.Start.Sub(w.opts.Start) / w.slotDur)
	if rec.Start.Before(w.opts.Start) || (w.latest >= 0 && slot <= w.latest-int64(w.ringSlots)) {
		// Before the grid origin, or so stale it already slid out.
		w.dropped++
		return
	}
	if w.skewSlots > 0 && w.latest >= 0 && slot > w.latest+w.skewSlots {
		// Further ahead of the data-driven clock than the skew guard
		// allows: a corrupt timestamp, not a legitimate jump. Admitting it
		// would wedge the clock forward and mass-evict history. The first
		// record is exempt (w.latest < 0): it establishes the clock.
		w.dropped++
		w.droppedFuture++
		return
	}
	if slot > w.latest {
		w.latest = slot
	}
	ts := w.towers[rec.TowerID]
	if ts == nil {
		ts = &towerState{ring: make([]float64, w.ringSlots), upTo: w.latest, born: w.latest, judged: w.latest - 1, statsAt: -1}
		w.towers[rec.TowerID] = ts
	}
	w.advance(ts, w.latest)
	w.judgeLocked(ts)
	i := slot % int64(w.ringSlots)
	old := ts.ring[i]
	ts.ring[i] = old + float64(rec.Bytes)
	ts.sum += float64(rec.Bytes)
	ts.sumsq += ts.ring[i]*ts.ring[i] - old*old
	w.ingested++
}

// Add ingests one record.
func (w *Window) Add(rec trace.Record) {
	w.mu.Lock()
	w.add(rec)
	w.mu.Unlock()
}

// AddBatch ingests a batch of records under one lock acquisition — the
// shape the ingest loop's pooled batches arrive in.
func (w *Window) AddBatch(recs []trace.Record) {
	w.mu.Lock()
	for _, rec := range recs {
		w.add(rec)
	}
	w.mu.Unlock()
}

// TowerStats is the live z-score state of one tower's window.
type TowerStats struct {
	// Mean and Std are the incremental first moment and standard
	// deviation of the tower's ring slots (bytes per slot).
	Mean, Std float64
	// LastSlotBytes is the traffic accumulated in the most recent slot.
	LastSlotBytes float64
	// Slots is the ring extent the moments cover.
	Slots int
	// Quarantined reports whether the tower is currently excluded from
	// the Dataset handoff by the quarantine guard.
	Quarantined bool
}

// TowerStats returns the live window statistics of one tower, and whether
// the tower has been seen at all.
func (w *Window) TowerStats(id int) (TowerStats, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ts, ok := w.towers[id]
	if !ok {
		return TowerStats{}, false
	}
	w.advance(ts, w.latest)
	w.judgeLocked(ts)
	n := float64(w.ringSlots)
	mean := ts.sum / n
	variance := ts.sumsq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard the incremental moments' rounding
	}
	return TowerStats{
		Mean:          mean,
		Std:           math.Sqrt(variance),
		LastSlotBytes: ts.ring[w.latest%int64(w.ringSlots)],
		Slots:         w.ringSlots,
		Quarantined:   ts.quarantined,
	}, true
}

// TowerIDs returns the IDs of every tower seen, sorted.
func (w *Window) TowerIDs() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sortedIDsLocked()
}

func (w *Window) sortedIDsLocked() []int {
	ids := make([]int, 0, len(w.towers))
	for id := range w.towers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Summary describes the window's global state.
type Summary struct {
	// Towers is the number of distinct towers seen.
	Towers int
	// Ingested and Dropped count records accepted into the window and
	// records discarded (pre-Start or already slid out).
	Ingested, Dropped uint64
	// LatestSlotEnd is the end of the most recent slot any record touched
	// (zero before the first record) — the window's data-driven clock.
	LatestSlotEnd time.Time
	// CompleteDays is the number of whole days of complete slots observed,
	// the warm-up gauge: modeling starts at 7.
	CompleteDays int
	// Quarantined is the number of towers currently excluded from the
	// Dataset handoff by the quarantine guard; QuarantineEvents and
	// QuarantineReleases count quarantine entries and exits over the
	// window's lifetime.
	Quarantined                          int
	QuarantineEvents, QuarantineReleases uint64
	// DroppedFuture counts records dropped by the clock-skew guard
	// (a subset of Dropped).
	DroppedFuture uint64
}

// Summary returns the global window state.
func (w *Window) Summary() Summary {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Summary{
		Towers:             len(w.towers),
		Ingested:           w.ingested,
		Dropped:            w.dropped,
		Quarantined:        w.quarCount,
		QuarantineEvents:   w.quarEvents,
		QuarantineReleases: w.quarReleases,
		DroppedFuture:      w.droppedFuture,
	}
	if w.latest >= 0 {
		s.LatestSlotEnd = w.opts.Start.Add(time.Duration(w.latest+1) * w.slotDur)
		s.CompleteDays = int(w.latest) / w.spd
	}
	return s
}

// Dataset snapshots the most recent whole weeks of every tower's window
// into an analysis-ready dataset: up to Options.Days days, ending at the
// most recent complete day boundary (the slot currently accumulating and
// its day are excluded). Towers whose extracted window carries no traffic
// at all are filtered out, exactly as the batch vectorizer's
// MinActiveSlots does, and so are towers currently held in quarantine by
// the feed-quality guards (Summary.Quarantined accounts for them). It
// returns ErrWarmingUp until a whole week of complete days has been
// observed.
func (w *Window) Dataset() (*pipeline.Dataset, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.latest < 0 {
		return nil, ErrWarmingUp
	}
	// Slots strictly before `latest` are complete (the feed is
	// chronological at slot granularity); the window ends at the last
	// whole-day boundary among them and spans the largest multiple of 7
	// days available, capped at the configured window length.
	endDay := int(w.latest) / w.spd
	days := endDay
	if days > w.opts.Days {
		days = w.opts.Days
	}
	days -= days % 7
	if days < 7 {
		return nil, ErrWarmingUp
	}
	startSlot := int64(endDay-days) * int64(w.spd)
	slots := days * w.spd

	inputs := make([]pipeline.SeriesInput, 0, len(w.towers))
	for _, id := range w.sortedIDsLocked() {
		ts := w.towers[id]
		w.advance(ts, w.latest)
		// Judge before the handoff so even towers whose feed went fully
		// silent (no add() calls to score them) are evaluated here.
		w.judgeLocked(ts)
		if ts.quarantined {
			continue
		}
		bytes := make([]float64, slots)
		for k := range bytes {
			bytes[k] = ts.ring[(startSlot+int64(k))%int64(w.ringSlots)]
		}
		inputs = append(inputs, pipeline.SeriesInput{
			TowerID:  id,
			Location: w.locations[id],
			Bytes:    bytes,
		})
	}
	return pipeline.VectorizeSeries(inputs, pipeline.VectorizerOptions{
		Start:          w.opts.Start.Add(time.Duration(startSlot) * w.slotDur),
		Days:           days,
		SlotMinutes:    w.opts.SlotMinutes,
		MinActiveSlots: 1,
	})
}

// snapshotVersion is the on-disk format version. Bump it when the frame
// layout changes; ReadSnapshot rejects versions it does not know.
//
// Version history:
//
//	1  a bare gob snapshotFrame (PR 8). Still readable.
//	2  a fixed binary header (magic, CRC-32C and length of the body)
//	   followed by the gob frame, so restore detects truncation and bit
//	   corruption instead of rebuilding a silently wrong window.
const snapshotVersion = 2

// snapshotMagic guards against feeding an arbitrary gob stream (or an
// arbitrary file) to ReadSnapshot.
const snapshotMagic = "repro-window-snapshot"

// snapshotFrame is the serialised form of the whole window.
type snapshotFrame struct {
	Magic       string
	Version     int
	Start       time.Time
	SlotMinutes int
	Days        int
	Latest      int64
	Ingested    uint64
	Dropped     uint64
	Towers      []towerSnapshot
	// Guard accounting (zero in snapshots from before the feed-quality
	// guards; gob tolerates the missing fields, so the frame stays
	// version 2 and older v2 snapshots remain restorable).
	DroppedFuture      uint64
	QuarantineEvents   uint64
	QuarantineReleases uint64
}

// towerSnapshot is the serialised form of one tower's ring.
type towerSnapshot struct {
	ID         int
	Ring       []float64
	Sum, SumSq float64
	// Quarantine bookkeeping; zero in pre-guard snapshots. The cached
	// baseline is not persisted — it is recomputed on first judgement.
	Born, Judged        int64
	OutlierRun, CalmRun int
	Quarantined         bool
}

// The v2 header: the magic string and a version tag in clear ASCII, then
// a little-endian CRC-32C and byte length of the gob body. A v1 file is a
// bare gob stream, which cannot begin with these bytes.
var snapshotHeaderMagic = []byte(snapshotMagic + "\x00v2")

const snapshotHeaderSize = len(snapshotMagic) + 3 + 4 + 8 // magic + "\x00v2" + crc32 + length

// snapshotCRC is the checksum of snapshot bodies: CRC-32C (Castagnoli),
// the polynomial with hardware support on amd64/arm64.
var snapshotCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot serialises the full window state — a checksummed header
// followed by a versioned gob frame — so a restarted process can resume
// the identical window and a torn or bit-rotted file is detected at
// restore instead of rebuilding a silently wrong window. Tower rings are
// canonicalised (advanced to the newest slot) first, and towers are
// written in ID order, so equal window states produce identical bytes.
func (w *Window) WriteSnapshot(out io.Writer) error {
	w.mu.Lock()
	frame := snapshotFrame{
		Magic:              snapshotMagic,
		Version:            snapshotVersion,
		Start:              w.opts.Start,
		SlotMinutes:        w.opts.SlotMinutes,
		Days:               w.opts.Days,
		Latest:             w.latest,
		Ingested:           w.ingested,
		Dropped:            w.dropped,
		DroppedFuture:      w.droppedFuture,
		QuarantineEvents:   w.quarEvents,
		QuarantineReleases: w.quarReleases,
	}
	for _, id := range w.sortedIDsLocked() {
		ts := w.towers[id]
		w.advance(ts, w.latest)
		frame.Towers = append(frame.Towers, towerSnapshot{
			ID:          id,
			Ring:        ts.ring,
			Sum:         ts.sum,
			SumSq:       ts.sumsq,
			Born:        ts.born,
			Judged:      ts.judged,
			OutlierRun:  ts.outlierRun,
			CalmRun:     ts.calmRun,
			Quarantined: ts.quarantined,
		})
	}
	var body bytes.Buffer
	err := gob.NewEncoder(&body).Encode(&frame)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	header := make([]byte, 0, snapshotHeaderSize)
	header = append(header, snapshotHeaderMagic...)
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(body.Bytes(), snapshotCRCTable))
	header = binary.LittleEndian.AppendUint64(header, uint64(body.Len()))
	if _, err := out.Write(header); err != nil {
		return err
	}
	_, err = out.Write(body.Bytes())
	return err
}

// DecodeSnapshot rebuilds a window from the bytes of a WriteSnapshot
// stream. The restored window is state-identical to the snapshotted one:
// the same rings, the same incremental moments bit for bit, the same
// counters — so the first re-model after a restart produces the dataset
// the crashed process would have. Re-supply tower locations with
// SetLocations afterwards.
//
// Both snapshot versions are readable: a v2 stream has its header length
// and CRC-32C verified (truncation and corruption surface as
// ErrBadSnapshot), a v1 stream is decoded as the bare gob frame it is.
func DecodeSnapshot(data []byte) (*Window, error) {
	if bytes.HasPrefix(data, snapshotHeaderMagic) {
		if len(data) < snapshotHeaderSize {
			return nil, fmt.Errorf("%w: truncated header (%d of %d bytes)", ErrBadSnapshot, len(data), snapshotHeaderSize)
		}
		sum := binary.LittleEndian.Uint32(data[len(snapshotHeaderMagic):])
		bodyLen := binary.LittleEndian.Uint64(data[len(snapshotHeaderMagic)+4:])
		body := data[snapshotHeaderSize:]
		if uint64(len(body)) < bodyLen {
			return nil, fmt.Errorf("%w: truncated body (%d of %d bytes)", ErrBadSnapshot, len(body), bodyLen)
		}
		if uint64(len(body)) > bodyLen {
			return nil, fmt.Errorf("%w: %d trailing bytes after the body", ErrBadSnapshot, uint64(len(body))-bodyLen)
		}
		if got := crc32.Checksum(body, snapshotCRCTable); got != sum {
			return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrBadSnapshot, sum, got)
		}
		return decodeFrame(body, snapshotVersion)
	}
	// No v2 header: a version-1 file, a bare gob frame with no checksum.
	return decodeFrame(data, 1)
}

// decodeFrame decodes the gob frame of a snapshot body and rebuilds the
// window, requiring the frame to carry wantVersion.
func decodeFrame(body []byte, wantVersion int) (*Window, error) {
	var frame snapshotFrame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&frame); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if frame.Magic != snapshotMagic {
		return nil, fmt.Errorf("%w: not a window snapshot", ErrBadSnapshot)
	}
	if frame.Version != wantVersion {
		return nil, fmt.Errorf("%w: version %d, want %d here", ErrBadSnapshot, frame.Version, wantVersion)
	}
	w, err := New(Options{Start: frame.Start, SlotMinutes: frame.SlotMinutes, Days: frame.Days})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	w.latest = frame.Latest
	w.ingested = frame.Ingested
	w.dropped = frame.Dropped
	w.droppedFuture = frame.DroppedFuture
	w.quarEvents = frame.QuarantineEvents
	w.quarReleases = frame.QuarantineReleases
	for _, tsnap := range frame.Towers {
		if len(tsnap.Ring) != w.ringSlots {
			return nil, fmt.Errorf("%w: tower %d ring has %d slots, want %d", ErrBadSnapshot, tsnap.ID, len(tsnap.Ring), w.ringSlots)
		}
		if _, dup := w.towers[tsnap.ID]; dup {
			return nil, fmt.Errorf("%w: tower %d appears twice", ErrBadSnapshot, tsnap.ID)
		}
		w.towers[tsnap.ID] = &towerState{
			ring:        tsnap.Ring,
			upTo:        frame.Latest,
			sum:         tsnap.Sum,
			sumsq:       tsnap.SumSq,
			born:        tsnap.Born,
			judged:      tsnap.Judged,
			statsAt:     -1,
			outlierRun:  tsnap.OutlierRun,
			calmRun:     tsnap.CalmRun,
			quarantined: tsnap.Quarantined,
		}
		if tsnap.Quarantined {
			w.quarCount++
		}
	}
	return w, nil
}

// ReadSnapshot rebuilds a window from a WriteSnapshot stream. See
// DecodeSnapshot; the stream is read to EOF first, since verifying the
// checksum needs every byte anyway.
func ReadSnapshot(in io.Reader) (*Window, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return DecodeSnapshot(data)
}

// Save writes the snapshot to path atomically and durably: temp file,
// fsync, rename, then a best-effort fsync of the directory — so a crash
// at any point leaves either the previous snapshot or the new one, never
// a truncated hybrid.
func (w *Window) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".window-snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := w.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best effort: some filesystems reject directory fsync, and the
// data itself was already synced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Load reads a snapshot written by Save.
func Load(path string) (*Window, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}
