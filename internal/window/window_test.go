package window

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

var t0 = time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC)

// rec builds a record carrying b bytes for tower id in the slot starting
// minutes after t0.
func rec(id int, minutes int, b int64) trace.Record {
	start := t0.Add(time.Duration(minutes) * time.Minute)
	return trace.Record{
		UserID:  1,
		Start:   start,
		End:     start.Add(time.Minute),
		TowerID: id,
		Bytes:   b,
		Tech:    Tech3GForTest,
	}
}

// Tech3GForTest keeps the test records valid without importing the
// constant at every call site.
const Tech3GForTest = trace.Tech3G

// feedSeries streams per-tower slot series into the window as one record
// per non-zero slot, in chronological order across towers.
func feedSeries(w *Window, series map[int][]float64, slotMinutes int) {
	slots := 0
	for _, s := range series {
		if len(s) > slots {
			slots = len(s)
		}
	}
	for slot := 0; slot < slots; slot++ {
		for id, s := range series {
			if slot < len(s) && s[slot] != 0 {
				w.Add(rec(id, slot*slotMinutes, int64(s[slot])))
			}
		}
	}
}

// genSeries builds deterministic pseudo-random daily-periodic series.
func genSeries(seed int64, towers, days, spd int) map[int][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[int][]float64, towers)
	for id := 0; id < towers; id++ {
		s := make([]float64, days*spd)
		amp := 500 + rng.Float64()*2000
		for i := range s {
			hour := float64(i%spd) / float64(spd) * 24
			v := amp * (1 + math.Sin((hour-6)/24*2*math.Pi))
			if rng.Float64() < 0.1 {
				v = 0 // sparse quiet slots
			}
			s[i] = math.Round(v)
		}
		out[id] = s
	}
	return out
}

func TestWindowStatsMatchDirectComputation(t *testing.T) {
	opts := Options{Start: t0, SlotMinutes: 60, Days: 7}
	w, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spd := 24
	series := genSeries(1, 3, 9, spd) // 9 days: 2 days slide out of the 7+1-day ring
	feedSeries(w, series, 60)

	sum := w.Summary()
	if sum.Towers != 3 {
		t.Fatalf("towers = %d", sum.Towers)
	}
	if sum.CompleteDays != 8 { // latest slot is day 9's last slot; 8 complete days before it
		t.Errorf("complete days = %d, want 8", sum.CompleteDays)
	}

	// The ring spans (Days+1)*spd slots ending at the latest slot; compute
	// the expected moments directly from the series tail.
	ringSlots := (7 + 1) * spd
	total := 9 * spd
	for id, s := range series {
		var es, esq float64
		for i := total - ringSlots; i < total; i++ {
			es += s[i]
			esq += s[i] * s[i]
		}
		mean := es / float64(ringSlots)
		std := math.Sqrt(esq/float64(ringSlots) - mean*mean)
		got, ok := w.TowerStats(id)
		if !ok {
			t.Fatalf("tower %d missing", id)
		}
		if math.Abs(got.Mean-mean) > 1e-6*math.Max(1, mean) {
			t.Errorf("tower %d mean = %g, want %g", id, got.Mean, mean)
		}
		if math.Abs(got.Std-std) > 1e-6*math.Max(1, std) {
			t.Errorf("tower %d std = %g, want %g", id, got.Std, std)
		}
		if got.LastSlotBytes != s[total-1] {
			t.Errorf("tower %d last slot = %g, want %g", id, got.LastSlotBytes, s[total-1])
		}
	}
}

func TestWindowDatasetMatchesBatchVectorizer(t *testing.T) {
	opts := Options{Start: t0, SlotMinutes: 60, Days: 7}
	w, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spd := 24
	days := 10 // 10 days of feed; the dataset must be days 3..9 (last 7 complete)
	series := genSeries(2, 4, days, spd)
	w.SetLocations([]trace.TowerInfo{{TowerID: 0, Location: geo.Point{Lat: 31.2, Lon: 121.5}, Resolved: true}})
	feedSeries(w, series, 60)

	ds, err := w.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Days != 7 {
		t.Fatalf("dataset days = %d, want 7", ds.Days)
	}
	// The feed's latest slot is day 10's last slot, so the last complete
	// day boundary is the end of day 9 and the window is days 3..9.
	endDay := (days*spd - 1) / spd // complete days
	startSlot := (endDay - 7) * spd
	wantStart := t0.Add(time.Duration(startSlot) * time.Hour)
	if !ds.Start.Equal(wantStart) {
		t.Fatalf("dataset start = %v, want %v", ds.Start, wantStart)
	}

	// Build the reference dataset through the batch vectorizer on the
	// same suffix of the ground-truth series.
	var inputs []pipeline.SeriesInput
	for id := 0; id < 4; id++ {
		loc := geo.Point{}
		if id == 0 {
			loc = geo.Point{Lat: 31.2, Lon: 121.5}
		}
		inputs = append(inputs, pipeline.SeriesInput{
			TowerID:  id,
			Location: loc,
			Bytes:    series[id][startSlot : startSlot+7*spd],
		})
	}
	want, err := pipeline.VectorizeSeries(inputs, pipeline.VectorizerOptions{
		Start:          wantStart,
		Days:           7,
		SlotMinutes:    60,
		MinActiveSlots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != want.NumTowers() {
		t.Fatalf("towers = %d, want %d", ds.NumTowers(), want.NumTowers())
	}
	for i := range want.TowerIDs {
		if ds.TowerIDs[i] != want.TowerIDs[i] {
			t.Fatalf("row %d tower = %d, want %d", i, ds.TowerIDs[i], want.TowerIDs[i])
		}
		if ds.Locations[i] != want.Locations[i] {
			t.Errorf("row %d location differs", i)
		}
		for j := range want.Raw[i] {
			if ds.Raw[i][j] != want.Raw[i][j] {
				t.Fatalf("row %d slot %d: %g vs %g", i, j, ds.Raw[i][j], want.Raw[i][j])
			}
			if ds.Normalized[i][j] != want.Normalized[i][j] {
				t.Fatalf("row %d slot %d normalized differs", i, j)
			}
		}
	}
}

func TestWindowWarmUpAndDrops(t *testing.T) {
	w, err := New(Options{Start: t0, SlotMinutes: 60, Days: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dataset(); !errors.Is(err, ErrWarmingUp) {
		t.Fatalf("empty window: err = %v, want ErrWarmingUp", err)
	}
	// 6 complete days is still warming up (needs a whole week).
	series := genSeries(3, 2, 7, 24)
	feedSeries(w, series, 60) // latest slot = day 7's last → 6 complete days
	if _, err := w.Dataset(); !errors.Is(err, ErrWarmingUp) {
		t.Fatalf("6 complete days: err = %v, want ErrWarmingUp", err)
	}
	// One more slot completes day 7.
	w.Add(rec(0, 7*24*60, 100))
	if _, err := w.Dataset(); err != nil {
		t.Fatalf("7 complete days: %v", err)
	}

	// Records before Start and records older than the ring are dropped.
	before := w.Summary().Dropped
	old := rec(0, 0, 50)
	old.Start = t0.Add(-time.Hour)
	w.Add(old)
	w.Add(rec(1, 0, 50))  // slot 0 is still inside the (Days+1)-day ring: accepted
	w.Add(rec(2, -60, 0)) // before Start via negative minutes: dropped
	sum := w.Summary()
	if sum.Dropped != before+2 {
		t.Errorf("dropped = %d, want %d", sum.Dropped, before+2)
	}
}

func TestWindowEvictionKeepsMomentsExact(t *testing.T) {
	// Feed far more days than the ring holds and verify the incremental
	// moments equal a fresh recomputation from the surviving slots —
	// i.e. eviction subtracted exactly what was added.
	w, err := New(Options{Start: t0, SlotMinutes: 360, Days: 7}) // 4 slots/day
	if err != nil {
		t.Fatal(err)
	}
	spd := 4
	days := 40
	series := genSeries(4, 2, days, spd)
	feedSeries(w, series, 360)
	ringSlots := (7 + 1) * spd
	total := days * spd
	for id, s := range series {
		var es, esq float64
		for i := total - ringSlots; i < total; i++ {
			es += s[i]
			esq += s[i] * s[i]
		}
		mean := es / float64(ringSlots)
		got, _ := w.TowerStats(id)
		if math.Abs(got.Mean-mean) > 1e-9*math.Max(1, mean) {
			t.Errorf("tower %d mean drifted: %g vs %g", id, got.Mean, mean)
		}
	}
}

func TestSnapshotRoundTripIdenticalState(t *testing.T) {
	// Property: snapshot → restore → snapshot produces identical bytes,
	// and a restored window re-models to the identical dataset — across
	// several random feeds and cut points.
	for trial := int64(0); trial < 5; trial++ {
		opts := Options{Start: t0, SlotMinutes: 60, Days: 7}
		w, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		spd := 24
		days := 8 + int(trial)
		series := genSeries(10+trial, 3, days, spd)
		feedSeries(w, series, 60)

		var snap1 bytes.Buffer
		if err := w.WriteSnapshot(&snap1); err != nil {
			t.Fatal(err)
		}
		restored, err := ReadSnapshot(bytes.NewReader(snap1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var snap2 bytes.Buffer
		if err := restored.WriteSnapshot(&snap2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
			t.Fatalf("trial %d: restored snapshot differs from original", trial)
		}

		// Both windows keep ingesting the same tail and must re-model to
		// bit-identical datasets (the kill/restart resume property).
		tail := genSeries(100+trial, 3, 2, spd)
		for id, s := range tail {
			for i, v := range s {
				if v != 0 {
					r := rec(id, (days*spd+i)*60, int64(v))
					w.Add(r)
					restored.Add(r)
				}
			}
		}
		ds1, err := w.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		ds2, err := restored.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		if ds1.NumTowers() != ds2.NumTowers() || ds1.Days != ds2.Days || !ds1.Start.Equal(ds2.Start) {
			t.Fatalf("trial %d: dataset shapes differ", trial)
		}
		for i := range ds1.Raw {
			for j := range ds1.Raw[i] {
				if ds1.Raw[i][j] != ds2.Raw[i][j] || ds1.Normalized[i][j] != ds2.Normalized[i][j] {
					t.Fatalf("trial %d: dataset row %d slot %d differs", trial, i, j)
				}
			}
		}
		// Counters resumed too.
		s1, s2 := w.Summary(), restored.Summary()
		if s1 != s2 {
			t.Fatalf("trial %d: summaries differ: %+v vs %+v", trial, s1, s2)
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("garbage: err = %v, want ErrBadSnapshot", err)
	}
	// A valid gob stream that is not a window snapshot.
	var buf bytes.Buffer
	w, _ := New(Options{Start: t0})
	if err := w.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the magic in place: find and flip a byte of the string.
	idx := bytes.Index(raw, []byte(snapshotMagic))
	if idx < 0 {
		t.Fatal("magic not found in frame")
	}
	raw[idx] ^= 0xff
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted magic accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	w, err := New(Options{Start: t0, SlotMinutes: 60, Days: 7})
	if err != nil {
		t.Fatal(err)
	}
	feedSeries(w, genSeries(7, 2, 8, 24), 60)
	path := t.TempDir() + "/window.snap"
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary() != w.Summary() {
		t.Errorf("loaded summary differs")
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []Options{
		{},                                     // missing Start
		{Start: t0, SlotMinutes: 7},            // does not divide 1440
		{Start: t0, Days: 10},                  // not a multiple of 7
		{Start: t0, SlotMinutes: -10},          // negative granularity
		{Start: t0, SlotMinutes: 60, Days: -7}, // negative window
	}
	for i, opts := range cases {
		if _, err := New(opts); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opts)
		}
	}
	if w, err := New(Options{Start: t0}); err != nil || w.Options().SlotMinutes != 10 || w.Options().Days != 7 {
		t.Errorf("defaults not applied: %v %+v", err, w.Options())
	}
}
