package window

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// guardWindow builds a 60-minute-slot, 7-day window with the given
// guards applied.
func guardWindow(t *testing.T, g Guards) *Window {
	t.Helper()
	w, err := New(Options{Start: t0, SlotMinutes: 60, Days: 7})
	if err != nil {
		t.Fatal(err)
	}
	w.SetGuards(g)
	return w
}

// dailyValue is a deterministic diurnal traffic curve: identical every
// day, never zero, so the robust baseline is exact and judgement is
// fully predictable.
func dailyValue(slot int) int64 {
	return int64(800 + 400*math.Sin(2*math.Pi*float64(slot%24)/24))
}

// feedClean feeds every tower in ids one record per hourly slot over
// [fromSlot, toSlot), scaled per tower by the scale func (nil = clean).
func feedClean(w *Window, ids []int, fromSlot, toSlot int, scale func(id, slot int) int64) {
	for slot := fromSlot; slot < toSlot; slot++ {
		for _, id := range ids {
			v := dailyValue(slot)
			if scale != nil {
				v = scale(id, slot)
			}
			w.Add(rec(id, slot*60, v))
		}
	}
}

func TestClockSkewGuardDropsFutureRecords(t *testing.T) {
	w := guardWindow(t, Guards{MaxFutureSkew: 24 * time.Hour})
	feedClean(w, []int{1}, 0, 8*24, nil)
	before := w.Summary()

	// A corrupt timestamp 300 days ahead must be dropped, not admitted.
	w.Add(rec(1, 300*1440, 999))
	s := w.Summary()
	if s.DroppedFuture != 1 {
		t.Fatalf("DroppedFuture = %d, want 1", s.DroppedFuture)
	}
	if s.Dropped != before.Dropped+1 {
		t.Fatalf("Dropped = %d, want %d", s.Dropped, before.Dropped+1)
	}
	if !s.LatestSlotEnd.Equal(before.LatestSlotEnd) || s.CompleteDays != before.CompleteDays {
		t.Fatalf("window clock moved on a guarded record: %v/%d -> %v/%d",
			before.LatestSlotEnd, before.CompleteDays, s.LatestSlotEnd, s.CompleteDays)
	}
	st, ok := w.TowerStats(1)
	if !ok || st.Mean == 0 {
		t.Fatalf("tower history lost after guarded record: %+v ok=%v", st, ok)
	}

	// Feed keeps flowing normally afterwards.
	w.Add(rec(1, 8*24*60, dailyValue(0)))
	if s := w.Summary(); s.Ingested != before.Ingested+1 {
		t.Fatalf("Ingested = %d after clean record, want %d", s.Ingested, before.Ingested+1)
	}

	// Control arm: without the guard the same record wedges the clock
	// forward and mass-evicts the tower's history — the failure mode the
	// guard exists for.
	uw := guardWindow(t, Guards{})
	feedClean(uw, []int{1}, 0, 8*24, nil)
	uw.Add(rec(1, 300*1440, 999))
	if s := uw.Summary(); s.CompleteDays < 200 {
		t.Fatalf("unguarded control: CompleteDays = %d, expected the clock to wedge forward", s.CompleteDays)
	}
	if st, _ := uw.TowerStats(1); st.Mean*float64(st.Slots) > 1000 {
		t.Fatalf("unguarded control kept history: mean %v", st.Mean)
	}
}

func quarantineOpts() QuarantineOptions {
	return QuarantineOptions{ZThreshold: 6, MinSlots: 48, TriggerSlots: 3, ReleaseSlots: 4}
}

func TestQuarantineSpikeTriggersAndReleases(t *testing.T) {
	w := guardWindow(t, Guards{Quarantine: quarantineOpts()})
	ids := []int{1, 2}
	feedClean(w, ids, 0, 7*24, nil)

	if s := w.Summary(); s.Quarantined != 0 || s.QuarantineEvents != 0 {
		t.Fatalf("clean feed quarantined towers: %+v", s)
	}

	// Tower 1 spikes 100× for six slots; tower 2 stays clean.
	spike := func(id, slot int) int64 {
		v := dailyValue(slot)
		if id == 1 && slot < 7*24+6 {
			v *= 100
		}
		return v
	}
	feedClean(w, ids, 7*24, 7*24+7, spike)

	st, ok := w.TowerStats(1)
	if !ok || !st.Quarantined {
		t.Fatalf("tower 1 not quarantined after spike: %+v", st)
	}
	if st2, _ := w.TowerStats(2); st2.Quarantined {
		t.Fatal("clean tower 2 quarantined")
	}
	s := w.Summary()
	if s.Quarantined != 1 || s.QuarantineEvents != 1 {
		t.Fatalf("summary after spike: %+v", s)
	}
	ds, err := w.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 1 || ds.TowerIDs[0] != 2 {
		t.Fatalf("dataset towers = %v, want just tower 2", ds.TowerIDs)
	}

	// Clean traffic resumes: the median baseline was not dragged by the
	// spike, so after ReleaseSlots calm completed slots the tower is
	// released and rejoins the handoff.
	feedClean(w, ids, 7*24+7, 7*24+14, nil)
	if st, _ := w.TowerStats(1); st.Quarantined {
		t.Fatalf("tower 1 still quarantined after calm slots: %+v", st)
	}
	s = w.Summary()
	if s.Quarantined != 0 || s.QuarantineReleases != 1 {
		t.Fatalf("summary after release: %+v", s)
	}
	ds, err = w.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 2 {
		t.Fatalf("dataset towers = %v after release, want both", ds.TowerIDs)
	}
}

func TestQuarantineCatchesSilentTowerAtHandoff(t *testing.T) {
	w := guardWindow(t, Guards{Quarantine: quarantineOpts()})
	feedClean(w, []int{1, 2}, 0, 8*24, nil)
	// Tower 1 goes completely silent — no records at all — while tower 2
	// keeps the window clock moving for two more days.
	feedClean(w, []int{2}, 8*24, 10*24, nil)

	// The silent tower still holds week-old traffic in its ring, so only
	// the handoff-time judgement can catch it.
	ds, err := w.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 1 || ds.TowerIDs[0] != 2 {
		t.Fatalf("dataset towers = %v, want just tower 2", ds.TowerIDs)
	}
	if s := w.Summary(); s.Quarantined != 1 {
		t.Fatalf("summary: %+v, want 1 quarantined", s)
	}
}

func TestQuarantineStatePersistsAcrossSnapshot(t *testing.T) {
	w := guardWindow(t, Guards{Quarantine: quarantineOpts()})
	ids := []int{1, 2}
	feedClean(w, ids, 0, 7*24, nil)
	spike := func(id, slot int) int64 {
		v := dailyValue(slot)
		if id == 1 {
			v *= 100
		}
		return v
	}
	feedClean(w, ids, 7*24, 7*24+7, spike)
	if st, _ := w.TowerStats(1); !st.Quarantined {
		t.Fatal("precondition: tower 1 not quarantined")
	}

	var buf bytes.Buffer
	if err := w.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if s1, s2 := w.Summary(), restored.Summary(); s1 != s2 {
		t.Fatalf("summary mismatch after restore:\n  %+v\n  %+v", s1, s2)
	}
	var buf2 bytes.Buffer
	if err := restored.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-snapshot of the restored window is not byte-identical")
	}

	// Guards are construction-time config: re-applied after restore, the
	// persisted verdict still excludes the tower.
	restored.SetGuards(Guards{Quarantine: quarantineOpts()})
	ds, err := restored.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 1 || ds.TowerIDs[0] != 2 {
		t.Fatalf("restored dataset towers = %v, want just tower 2", ds.TowerIDs)
	}

	// Disabling quarantine clears every verdict.
	restored.SetGuards(Guards{})
	if s := restored.Summary(); s.Quarantined != 0 {
		t.Fatalf("quarantine gauge not cleared on disable: %+v", s)
	}
	ds, err = restored.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 2 {
		t.Fatalf("dataset towers = %v with guards disabled, want both", ds.TowerIDs)
	}
}
