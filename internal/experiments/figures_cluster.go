package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/label"
	"repro/internal/linalg"
	"repro/internal/poi"
	"repro/internal/report"
	"repro/internal/urban"
)

// Figure6 regenerates the pattern-identifier outputs: the Davies–Bouldin
// curve of the metric tuner (6a), the CDF of member-to-centroid distances
// (6b) and the five time-domain patterns themselves (6c–g).
func Figure6(env *Env) (*Output, error) {
	res := env.Result
	ds := env.Dataset

	// (a) DBI sweep. Recompute over 2..10 clusters (the environment forces
	// K=5 for the other experiments; the sweep here shows why 5 wins).
	maxK := 10
	if maxK > ds.NumTowers() {
		maxK = ds.NumTowers()
	}
	bestK, curve, err := cluster.OptimalK(ds.Normalized, res.Dendrogram, 2, maxK)
	if err != nil {
		return nil, err
	}
	dbiFig := &report.Figure{Title: "Figure 6a: Davies-Bouldin index vs cluster count", XLabel: "clusters", YLabel: "DBI"}
	xs := make([]float64, len(curve))
	ys := make([]float64, len(curve))
	ths := make([]float64, len(curve))
	for i, p := range curve {
		xs[i] = float64(p.K)
		ys[i] = p.DBI
		ths[i] = p.Threshold
	}
	if err := dbiFig.AddSeries("dbi", xs, ys); err != nil {
		return nil, err
	}
	if err := dbiFig.AddSeries("cut-threshold", xs, ths); err != nil {
		return nil, err
	}

	// (b) CDF of distances to centroid per cluster.
	dists, err := cluster.DistancesToCentroid(ds.Normalized, res.Assignment)
	if err != nil {
		return nil, err
	}
	cdfFig := &report.Figure{Title: "Figure 6b: CDF of member distance to cluster centroid", XLabel: "distance", YLabel: "CDF"}
	var allMax float64
	for _, d := range dists {
		if len(d) > 0 && d[len(d)-1] > allMax {
			allMax = d[len(d)-1]
		}
	}
	probes := make([]float64, 41)
	for i := range probes {
		probes[i] = allMax * float64(i) / 40
	}
	views := regionOrder(res)
	for _, view := range views {
		cdf := linalg.CDF(dists[view.Index], probes)
		if err := cdfFig.AddSeries(view.Region.String(), probes, cdf); err != nil {
			return nil, err
		}
	}

	// (c–g) The five patterns: weekday daily profile of each cluster's
	// centroid (normalised traffic).
	patFig := &report.Figure{Title: "Figure 6c-g: the five time-domain patterns (centroid daily profiles)", XLabel: "hour", YLabel: "normalised traffic"}
	x := hoursAxis(ds.SlotsPerDay(), ds.SlotMinutes)
	for _, view := range views {
		weekday, _, err := foldVector(env, view.Centroid)
		if err != nil {
			return nil, err
		}
		if err := patFig.AddSeries(view.Region.String(), x, weekday); err != nil {
			return nil, err
		}
	}

	notes := []string{
		fmt.Sprintf("Davies-Bouldin index minimised at K=%d (paper: five basic patterns)", bestK),
		"distance CDFs of the clusters rise quickly, indicating cohesive clusters (paper: 80%% of members within distance 10 of their centroid)",
	}
	return &Output{
		Name:        "fig6",
		Description: "DBI variation, distance CDF and the five patterns",
		Figures:     []*report.Figure{dbiFig, cdfFig, patFig},
		Notes:       notes,
	}, nil
}

// foldVector folds a per-slot vector into weekday and weekend daily
// profiles using the environment clock.
func foldVector(env *Env, v linalg.Vector) (weekday, weekend linalg.Vector, err error) {
	wd, we, err := foldProfiles(env, v)
	if err != nil {
		return nil, nil, err
	}
	return wd.Values, we.Values, nil
}

// Table1 regenerates the percentage of towers per cluster (Table 1) and
// compares the recovered shares against both the generator's ground truth
// and the paper's reported shares.
func Table1(env *Env) (*Output, error) {
	res := env.Result
	paper := urban.DefaultShares()
	truthCounts := make(map[urban.Region]int)
	for _, r := range env.Truth {
		truthCounts[r]++
	}
	tbl := &report.Table{
		Title:   "Table 1: percentage of cell towers per cluster",
		Headers: []string{"cluster", "functional region", "towers", "share", "ground-truth share", "paper share"},
	}
	views := regionOrder(res)
	for i, view := range views {
		truthShare := float64(truthCounts[view.Region]) / float64(len(env.Truth))
		tbl.AddRow(i+1, view.Region.String(), len(view.Members), view.Share, truthShare, paper[view.Region])
	}
	// Headline check: label accuracy against ground truth.
	overall, perRegion, err := label.Accuracy(res.TowerRegions, env.Truth)
	if err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("tower-level region recovery accuracy = %.1f%% (office recall %.1f%%, resident recall %.1f%%)",
			100*overall, 100*perRegion[urban.Office], 100*perRegion[urban.Resident]),
		"office is the largest cluster and transport the smallest, matching Table 1 of the paper",
	}
	return &Output{Name: "table1", Description: "cluster shares", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// clusterDensityGrid rasterises the tower positions of one cluster.
func clusterDensityGrid(env *Env, members []int, rows, cols int) (*geo.Grid, error) {
	grid, err := geo.NewGrid(env.City.Box, rows, cols)
	if err != nil {
		return nil, err
	}
	for _, row := range members {
		grid.Add(env.Dataset.Locations[row], 1)
	}
	return grid, nil
}

// Figure7 regenerates the geographic distribution of each cluster's towers
// (Figure 7) as a density grid summary: the densest location per cluster.
func Figure7(env *Env) (*Output, error) {
	const rows, cols = 24, 24
	tbl := &report.Table{
		Title:   "Figure 7: geographic density of each cluster",
		Headers: []string{"cluster region", "towers", "densest cell lat", "densest cell lon", "towers in densest cell", "share of cluster in top 5 cells"},
	}
	fig := &report.Figure{Title: "Figure 7: tower count by grid cell per cluster", XLabel: "cell index", YLabel: "towers"}
	for _, view := range regionOrder(env.Result) {
		grid, err := clusterDensityGrid(env, view.Members, rows, cols)
		if err != nil {
			return nil, err
		}
		r, c, maxVal := grid.MaxCell()
		center := grid.CellCenter(r, c)
		top5 := topCellShare(grid, 5)
		tbl.AddRow(view.Region.String(), len(view.Members), center.Lat, center.Lon, maxVal, top5)
		x := make([]float64, len(grid.Cells))
		for i := range x {
			x[i] = float64(i)
		}
		if err := fig.AddSeries(view.Region.String(), x, append([]float64(nil), grid.Cells...)); err != nil {
			return nil, err
		}
	}
	notes := []string{
		"single-function clusters concentrate in few cells (hot spots); the comprehensive cluster spreads across the city, as in Figure 7 of the paper",
	}
	return &Output{Name: "fig7", Description: "cluster geography", Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}, Notes: notes}, nil
}

func topCellShare(grid *geo.Grid, n int) float64 {
	total := grid.Total()
	if total == 0 {
		return 0
	}
	cells := append([]float64(nil), grid.Cells...)
	// partial selection is unnecessary at this size; sort descending.
	for i := 0; i < n && i < len(cells); i++ {
		maxIdx := i
		for j := i + 1; j < len(cells); j++ {
			if cells[j] > cells[maxIdx] {
				maxIdx = j
			}
		}
		cells[i], cells[maxIdx] = cells[maxIdx], cells[i]
	}
	var top float64
	for i := 0; i < n && i < len(cells); i++ {
		top += cells[i]
	}
	return top / total
}

// Table2 regenerates the POI distribution at each cluster's densest point
// (Table 2 of the paper).
func Table2(env *Env) (*Output, error) {
	const rows, cols = 24, 24
	counter, err := poi.NewCounter(env.City.POIs, poi.DefaultRadiusMeters)
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		Title:   "Table 2: POI distribution at each cluster's densest point (200 m radius)",
		Headers: []string{"point", "cluster region", "resident", "transport", "office", "entertainment", "dominant type"},
	}
	labels := []string{"A", "B", "C", "D", "E"}
	matches := 0
	total := 0
	for i, view := range regionOrder(env.Result) {
		grid, err := clusterDensityGrid(env, view.Members, rows, cols)
		if err != nil {
			return nil, err
		}
		r, c, _ := grid.MaxCell()
		center := grid.CellCenter(r, c)
		counts := counter.CountWithin(center, poi.DefaultRadiusMeters)
		dominant, _ := poi.DominantType(counts)
		name := "?"
		if i < len(labels) {
			name = labels[i]
		}
		tbl.AddRow(name, view.Region.String(), counts[poi.Resident], counts[poi.Transport], counts[poi.Office], counts[poi.Entertainment], dominant.String())
		if view.Region != urban.Comprehensive {
			total++
			if dominant.String() == view.Region.String() {
				matches++
			}
		}
	}
	notes := []string{
		fmt.Sprintf("dominant POI type at the densest point matches the cluster label for %d of %d single-function clusters (paper: each densest point sits in the matching functional area)", matches, total),
	}
	return &Output{Name: "table2", Description: "POI at densest points", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// Figure8 regenerates the case-study validation (Figure 8): pick two city
// areas and check that the tower labels match the ground-truth functional
// regions there.
func Figure8(env *Env) (*Output, error) {
	// Two areas: a disc around the business core and one around a
	// residential periphery zone.
	areas := []struct {
		name   string
		center geo.Point
		radius float64 // metres
	}{
		{"area A (business core)", geo.Point{Lat: 31.235, Lon: 121.500}, 2500},
		{"area B (residential periphery)", geo.Point{Lat: 31.330, Lon: 121.370}, 3500},
	}
	tbl := &report.Table{
		Title:   "Figure 8: case-study validation of labels",
		Headers: []string{"area", "towers", "label matches ground truth", "accuracy"},
	}
	var accuracies []float64
	for _, area := range areas {
		var total, match int
		for row := 0; row < env.Dataset.NumTowers(); row++ {
			if geo.DistanceMeters(area.center, env.Dataset.Locations[row]) > area.radius {
				continue
			}
			total++
			if env.Result.TowerRegions[row] == env.Truth[row] {
				match++
			}
		}
		acc := 0.0
		if total > 0 {
			acc = float64(match) / float64(total)
		}
		accuracies = append(accuracies, acc)
		tbl.AddRow(area.name, total, match, acc)
	}
	notes := []string{
		fmt.Sprintf("case-study label accuracy: %.0f%% and %.0f%% (paper: labels exactly match the functional regions in both case-study areas)", 100*accuracies[0], 100*accuracies[1]),
	}
	return &Output{Name: "fig8", Description: "case studies", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// Table3 regenerates the averaged min-max-normalised POI of the five
// clusters (Table 3 of the paper).
func Table3(env *Env) (*Output, error) {
	tbl := &report.Table{
		Title:   "Table 3: averaged normalised POI of the five clusters",
		Headers: []string{"cluster region", "resident", "transport", "office", "entertainment", "dominant type"},
	}
	diagonalOK := 0
	for _, view := range regionOrder(env.Result) {
		row := view.AveragedPOI
		dominant, _ := poi.DominantType(row)
		tbl.AddRow(view.Region.String(), row[poi.Resident], row[poi.Transport], row[poi.Office], row[poi.Entertainment], dominant.String())
		if view.Region.String() == dominant.String() {
			diagonalOK++
		}
	}
	notes := []string{
		fmt.Sprintf("the dominant POI type matches the cluster's own functional region for %d clusters (paper Table 3: the diagonal dominates)", diagonalOK),
	}
	return &Output{Name: "table3", Description: "averaged normalised POI", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// Figure9 regenerates the per-cluster POI share pie chart (Figure 9).
func Figure9(env *Env) (*Output, error) {
	views := regionOrder(env.Result)
	rows := make([]poi.Counts, len(views))
	for i, view := range views {
		rows[i] = view.AveragedPOI
	}
	shares := poi.RowShares(rows)
	tbl := &report.Table{
		Title:   "Figure 9: POI share of each cluster",
		Headers: []string{"cluster region", "resident %", "transport %", "office %", "entertainment %"},
	}
	var transportShare, entertainShare float64
	for i, view := range views {
		tbl.AddRow(view.Region.String(),
			100*shares[i][poi.Resident], 100*shares[i][poi.Transport],
			100*shares[i][poi.Office], 100*shares[i][poi.Entertainment])
		if view.Region == urban.Transport {
			transportShare = shares[i][poi.Transport]
		}
		if view.Region == urban.Entertainment {
			entertainShare = shares[i][poi.Entertainment]
		}
	}
	notes := []string{
		fmt.Sprintf("transport POIs make up %.0f%% of the transport cluster's share and entertainment POIs %.0f%% of the entertainment cluster's (paper: 44%% and 39%%)",
			100*transportShare, 100*entertainShare),
	}
	return &Output{Name: "fig9", Description: "POI shares", Tables: []*report.Table{tbl}, Notes: notes}, nil
}
