package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/report"
	"repro/internal/timedomain"
	"repro/internal/urban"
)

// hoursAxis returns an x axis in hours for per-slot values of one day.
func hoursAxis(slots, slotMinutes int) []float64 {
	out := make([]float64, slots)
	for i := range out {
		out[i] = (float64(i) + 0.5) * float64(slotMinutes) / 60
	}
	return out
}

// firstWeekdayIndex returns the index of the first weekday day in the
// dataset window.
func firstWeekdayIndex(env *Env) int {
	clock := env.Result.Clock
	perDay := env.Dataset.SlotsPerDay()
	for d := 0; d < env.Dataset.Days; d++ {
		if !clock.IsWeekend(d * perDay) {
			return d
		}
	}
	return 0
}

// Figure1 regenerates the temporal distribution of aggregate traffic at the
// hourly, daily and weekly scale (Figure 1 of the paper).
func Figure1(env *Env) (*Output, error) {
	ds := env.Dataset
	agg, err := ds.AggregateRaw(nil)
	if err != nil {
		return nil, err
	}
	perDay := ds.SlotsPerDay()
	day := firstWeekdayIndex(env)

	fig := &report.Figure{Title: "Figure 1: temporal distribution of aggregate traffic", XLabel: "time", YLabel: "bytes per slot"}
	// (a) one weekday.
	daySlice := agg[day*perDay : (day+1)*perDay]
	if err := fig.AddSeries("one-day", hoursAxis(perDay, ds.SlotMinutes), daySlice); err != nil {
		return nil, err
	}
	// (b) one week (7 consecutive days starting at the window start).
	weekSlots := 7 * perDay
	weekX := make([]float64, weekSlots)
	for i := range weekX {
		weekX[i] = float64(i) * float64(ds.SlotMinutes) / 60 // hours since window start
	}
	if err := fig.AddSeries("one-week", weekX, agg[:weekSlots]); err != nil {
		return nil, err
	}
	// (c) whole window, daily totals.
	dailyX := make([]float64, ds.Days)
	dailyY := make([]float64, ds.Days)
	for d := 0; d < ds.Days; d++ {
		dailyX[d] = float64(d)
		dailyY[d] = linalg.Vector(agg[d*perDay : (d+1)*perDay]).Sum()
	}
	if err := fig.AddSeries("daily-totals", dailyX, dailyY); err != nil {
		return nil, err
	}

	// Shape checks: two intra-day peaks (midday and evening), nighttime
	// valley around 04:00–05:00, weekday totals above weekend totals.
	weekday, weekend, err := timedomain.FoldDaily(agg, env.Result.Clock)
	if err != nil {
		return nil, err
	}
	wf := weekday.Smooth(3).Features()
	ratio, err := timedomain.WeekdayWeekendRatio(agg, env.Result.Clock)
	if err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("aggregate weekday peak at %.1fh, valley at %.1fh (paper: peaks ~12h and ~22h, valley 4-5h)", wf.PeakHour, wf.ValleyHour),
		fmt.Sprintf("weekday/weekend daily traffic ratio = %.2f (paper: weekend traffic below weekday)", ratio),
		fmt.Sprintf("weekend peak %.2e vs weekday peak %.2e bytes/slot", weekend.Smooth(3).Features().MaxTraffic, wf.MaxTraffic),
	}
	return &Output{Name: "fig1", Description: "temporal distribution", Figures: []*report.Figure{fig}, Notes: notes}, nil
}

// densitySnapshot rasterises the traffic of one slot onto a grid and
// returns the grid.
func densitySnapshot(env *Env, slot int, rows, cols int) (*geo.Grid, error) {
	grid, err := geo.NewGrid(env.City.Box, rows, cols)
	if err != nil {
		return nil, err
	}
	ds := env.Dataset
	for i := 0; i < ds.NumTowers(); i++ {
		grid.Add(ds.Locations[i], ds.Raw[i][slot])
	}
	return grid, nil
}

// Figure2 regenerates the spatial traffic density snapshots at 4AM, 10AM,
// 4PM and 10PM (Figure 2 of the paper).
func Figure2(env *Env) (*Output, error) {
	ds := env.Dataset
	perDay := ds.SlotsPerDay()
	day := firstWeekdayIndex(env)
	const rows, cols = 20, 20

	tbl := &report.Table{
		Title:   "Figure 2: spatial traffic density snapshots",
		Headers: []string{"time", "total bytes", "max density (bytes/km2)", "share in top 10% cells", "active cells"},
	}
	fig := &report.Figure{Title: "Figure 2: traffic density by cell", XLabel: "cell index", YLabel: "bytes/km2"}
	hours := []int{4, 10, 16, 22}
	var night, morning float64
	for _, h := range hours {
		slot := day*perDay + h*60/ds.SlotMinutes
		grid, err := densitySnapshot(env, slot, rows, cols)
		if err != nil {
			return nil, err
		}
		dens := grid.Densities()
		total := grid.Total()
		_, _, maxVal := grid.MaxCell()
		// Share of traffic carried by the busiest 10% of cells.
		sorted := append([]float64(nil), grid.Cells...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		top := len(sorted) / 10
		var topSum float64
		for i := 0; i < top; i++ {
			topSum += sorted[i]
		}
		active := 0
		for _, v := range grid.Cells {
			if v > 0 {
				active++
			}
		}
		share := 0.0
		if total > 0 {
			share = topSum / total
		}
		tbl.AddRow(fmt.Sprintf("%02d:00", h), total, maxVal/grid.CellAreaKm2(), share, active)
		x := make([]float64, len(dens))
		for i := range x {
			x[i] = float64(i)
		}
		if err := fig.AddSeries(fmt.Sprintf("%02d:00", h), x, dens); err != nil {
			return nil, err
		}
		switch h {
		case 4:
			night = total
		case 10:
			morning = total
		}
	}
	notes := []string{
		fmt.Sprintf("traffic at 10:00 is %.1fx the traffic at 04:00 (paper: city lights up after people start working)", morning/math.Max(night, 1)),
		"high-density cells concentrate in the business core at all four snapshots (paper: city centre stays hot)",
	}
	return &Output{Name: "fig2", Description: "spatial density", Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}, Notes: notes}, nil
}

// normalizedDailyProfile folds a tower's raw traffic onto one day and
// normalises it by its maximum.
func normalizedDailyProfile(env *Env, row int) (linalg.Vector, error) {
	weekday, _, err := timedomain.FoldDaily(env.Dataset.Raw[row], env.Result.Clock)
	if err != nil {
		return nil, err
	}
	return linalg.NormalizeByMax(weekday.Values), nil
}

// towersOfTruthRegion returns dataset rows whose ground-truth region is r.
func towersOfTruthRegion(env *Env, r urban.Region) []int {
	var out []int
	for i, t := range env.Truth {
		if t == r {
			out = append(out, i)
		}
	}
	return out
}

// Figure3 regenerates the comparison of residential-area and
// business-district tower profiles (Figure 3 of the paper).
func Figure3(env *Env) (*Output, error) {
	ds := env.Dataset
	fig := &report.Figure{Title: "Figure 3: residential vs office tower profiles", XLabel: "hour", YLabel: "normalised traffic"}
	x := hoursAxis(ds.SlotsPerDay(), ds.SlotMinutes)
	var resPeaks, offPeaks []float64
	for _, spec := range []struct {
		region urban.Region
		label  string
		peaks  *[]float64
	}{{urban.Resident, "residential", &resPeaks}, {urban.Office, "office", &offPeaks}} {
		rows := towersOfTruthRegion(env, spec.region)
		if len(rows) > 4 {
			rows = rows[:4]
		}
		for i, row := range rows {
			prof, err := normalizedDailyProfile(env, row)
			if err != nil {
				return nil, err
			}
			if err := fig.AddSeries(fmt.Sprintf("%s-%d", spec.label, i+1), x, prof); err != nil {
				return nil, err
			}
			_, idx := prof.Max()
			*spec.peaks = append(*spec.peaks, x[idx])
		}
	}
	notes := []string{
		fmt.Sprintf("residential towers peak at %s h, office towers at %s h (paper: residential peaks in the evening, office around midday)",
			formatHours(resPeaks), formatHours(offPeaks)),
	}
	return &Output{Name: "fig3", Description: "residential vs office towers", Figures: []*report.Figure{fig}, Notes: notes}, nil
}

func formatHours(hs []float64) string {
	if len(hs) == 0 {
		return "n/a"
	}
	var sum float64
	for _, h := range hs {
		sum += h
	}
	return fmt.Sprintf("%.1f", sum/float64(len(hs)))
}

// peakHours returns the peak hour of each listed tower's normalised daily
// profile.
func peakHours(env *Env, rows []int) ([]float64, error) {
	x := hoursAxis(env.Dataset.SlotsPerDay(), env.Dataset.SlotMinutes)
	out := make([]float64, 0, len(rows))
	for _, row := range rows {
		prof, err := normalizedDailyProfile(env, row)
		if err != nil {
			return nil, err
		}
		_, idx := prof.Max()
		out = append(out, x[idx])
	}
	return out, nil
}

// Figure4 regenerates the observation of Figure 4: towers sampled across
// the city have widely varying peak hours.
func Figure4(env *Env) (*Output, error) {
	ds := env.Dataset
	// Sample up to 40 towers ordered by latitude, then by longitude.
	idx := make([]int, ds.NumTowers())
	for i := range idx {
		idx[i] = i
	}
	byLat := append([]int(nil), idx...)
	sort.Slice(byLat, func(i, j int) bool { return ds.Locations[byLat[i]].Lat < ds.Locations[byLat[j]].Lat })
	byLon := append([]int(nil), idx...)
	sort.Slice(byLon, func(i, j int) bool { return ds.Locations[byLon[i]].Lon < ds.Locations[byLon[j]].Lon })
	sample := func(sorted []int) []int {
		n := 40
		if n > len(sorted) {
			n = len(sorted)
		}
		out := make([]int, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, sorted[i*len(sorted)/n])
		}
		return out
	}
	latRows, lonRows := sample(byLat), sample(byLon)
	latPeaks, err := peakHours(env, latRows)
	if err != nil {
		return nil, err
	}
	lonPeaks, err := peakHours(env, lonRows)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{Title: "Figure 4: peak hour of towers sampled across the city", XLabel: "sample index", YLabel: "peak hour"}
	xs := make([]float64, len(latPeaks))
	for i := range xs {
		xs[i] = float64(i)
	}
	if err := fig.AddSeries("by-latitude", xs, latPeaks); err != nil {
		return nil, err
	}
	xs2 := make([]float64, len(lonPeaks))
	for i := range xs2 {
		xs2[i] = float64(i)
	}
	if err := fig.AddSeries("by-longitude", xs2, lonPeaks); err != nil {
		return nil, err
	}
	spread := linalg.Vector(latPeaks).Std()
	rangeHours := func(v []float64) float64 {
		min, _ := linalg.Vector(v).Min()
		max, _ := linalg.Vector(v).Max()
		return max - min
	}
	notes := []string{
		fmt.Sprintf("peak hours of city-wide sampled towers span %.1f hours (std %.1f h); the paper reports a ~10 hour spread", rangeHours(latPeaks), spread),
	}
	return &Output{Name: "fig4", Description: "per-tower variation across the city", Figures: []*report.Figure{fig}, Notes: notes}, nil
}

// Figure5 regenerates the observation of Figure 5: towers within a single
// functional region share a traffic pattern.
func Figure5(env *Env) (*Output, error) {
	tbl := &report.Table{
		Title:   "Figure 5: peak-hour concentration within single regions",
		Headers: []string{"region", "towers sampled", "mean peak hour", "peak hour std (h)", "peak hour range (h)"},
	}
	var stds []float64
	for _, region := range []urban.Region{urban.Resident, urban.Office} {
		rows := towersOfTruthRegion(env, region)
		if len(rows) > 40 {
			rows = rows[:40]
		}
		peaks, err := peakHours(env, rows)
		if err != nil {
			return nil, err
		}
		v := linalg.Vector(peaks)
		min, _ := v.Min()
		max, _ := v.Max()
		tbl.AddRow(region.String(), len(rows), v.Mean(), v.Std(), max-min)
		stds = append(stds, v.Std())
	}
	notes := []string{
		fmt.Sprintf("within-region peak-hour std = %.1f h / %.1f h (resident/office), far below the ~10 h city-wide spread of Figure 4", stds[0], stds[1]),
	}
	return &Output{Name: "fig5", Description: "within-region regularity", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// weekTimeAxis returns an x axis of day-of-window values covering n slots.
func weekTimeAxis(n, slotMinutes int, start time.Time) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * float64(slotMinutes) / 1440
	}
	_ = start
	return out
}
