package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
	"repro/internal/freqdomain"
	"repro/internal/linalg"
	"repro/internal/poi"
	"repro/internal/report"
	"repro/internal/urban"
)

// principalBins returns the week/day/half-day bins of the environment's
// dataset.
func principalBins(env *Env) (week, day, half int, err error) {
	return dsp.PrincipalBins(env.Dataset.NumSlots(), env.Dataset.Days)
}

// Figure12 regenerates the DFT of the aggregate traffic and its
// reconstruction from the three principal components (Figure 12).
func Figure12(env *Env) (*Output, error) {
	ds := env.Dataset
	week, day, half, err := principalBins(env)
	if err != nil {
		return nil, err
	}
	agg, err := ds.AggregateRaw(nil)
	if err != nil {
		return nil, err
	}
	spec, err := env.Plan.Spectrum(agg)
	if err != nil {
		return nil, err
	}
	maxBin := 100
	if maxBin > ds.NumSlots()/2 {
		maxBin = ds.NumSlots() / 2
	}
	amps := spec.Amplitudes()[:maxBin]
	bins := make([]float64, maxBin)
	for i := range bins {
		bins[i] = float64(i)
	}
	specFig := &report.Figure{Title: "Figure 12a: DFT of the aggregate traffic", XLabel: "frequency bin", YLabel: "|X[k]|"}
	if err := specFig.AddSeries("amplitude", bins, amps); err != nil {
		return nil, err
	}

	reconstructed, loss, err := env.Plan.Reconstruct(agg, week, day, half)
	if err != nil {
		return nil, err
	}
	recFig := &report.Figure{Title: "Figure 12b: original vs reconstructed aggregate traffic (first week)", XLabel: "day", YLabel: "bytes per slot"}
	weekSlots := 7 * ds.SlotsPerDay()
	x := weekTimeAxis(weekSlots, ds.SlotMinutes, ds.Start)
	if err := recFig.AddSeries("original", x, agg[:weekSlots]); err != nil {
		return nil, err
	}
	if err := recFig.AddSeries("reconstructed", x, reconstructed[:weekSlots]); err != nil {
		return nil, err
	}

	// Which bins dominate the spectrum (excluding DC)?
	type binAmp struct {
		bin int
		amp float64
	}
	var ranked []binAmp
	for k := 1; k < maxBin; k++ {
		ranked = append(ranked, binAmp{k, amps[k]})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].amp > ranked[j].amp })
	top := ranked
	if len(top) > 3 {
		top = top[:3]
	}
	topBins := make([]int, len(top))
	for i, b := range top {
		topBins[i] = b.bin
	}
	notes := []string{
		fmt.Sprintf("three dominant non-DC bins: %v (expected %d=week, %d=day, %d=half-day)", topBins, week, day, half),
		fmt.Sprintf("energy lost by keeping only the three principal components: %.2f%% (paper: < 6%%)", 100*loss),
	}
	return &Output{Name: "fig12", Description: "aggregate DFT and reconstruction", Figures: []*report.Figure{specFig, recFig}, Notes: notes}, nil
}

// Figure13 regenerates the variance of the spectrum amplitude across towers
// (Figure 13).
func Figure13(env *Env) (*Output, error) {
	ds := env.Dataset
	week, day, half, err := principalBins(env)
	if err != nil {
		return nil, err
	}
	maxBin := 100
	if maxBin > ds.NumSlots()/2 {
		maxBin = ds.NumSlots() / 2
	}
	variance, err := freqdomain.AmplitudeVariancePlan(env.Plan, ds.Normalized, maxBin)
	if err != nil {
		return nil, err
	}
	bins := make([]float64, maxBin)
	for i := range bins {
		bins[i] = float64(i)
	}
	fig := &report.Figure{Title: "Figure 13: variance of normalised DFT amplitude across towers", XLabel: "frequency bin", YLabel: "variance"}
	if err := fig.AddSeries("variance", bins, variance); err != nil {
		return nil, err
	}
	// Rank bins by variance (excluding DC).
	type binVar struct {
		bin int
		v   float64
	}
	var ranked []binVar
	for k := 1; k < maxBin; k++ {
		ranked = append(ranked, binVar{k, variance[k]})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
	topBins := []int{}
	for i := 0; i < 3 && i < len(ranked); i++ {
		topBins = append(topBins, ranked[i].bin)
	}
	notes := []string{
		fmt.Sprintf("bins with the largest cross-tower amplitude variance: %v (expected the principal bins %d, %d, %d)", topBins, day, half, week),
	}
	return &Output{Name: "fig13", Description: "spectrum variance", Figures: []*report.Figure{fig}, Notes: notes}, nil
}

// Figure14 regenerates the reconstructed traffic of the four primary
// patterns (Figure 14).
func Figure14(env *Env) (*Output, error) {
	ds := env.Dataset
	week, day, half, err := principalBins(env)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{Title: "Figure 14: primary patterns reconstructed from the three principal components (first week)", XLabel: "day", YLabel: "normalised traffic"}
	weekSlots := 7 * ds.SlotsPerDay()
	x := weekTimeAxis(weekSlots, ds.SlotMinutes, ds.Start)
	tbl := &report.Table{
		Title:   "Figure 14: reconstruction fidelity per primary pattern",
		Headers: []string{"region", "energy loss", "correlation original vs reconstructed"},
	}
	var worstCorr = 1.0
	for _, region := range urban.PrimaryRegions {
		view, err := env.Result.ClusterByRegion(region)
		if err != nil {
			return nil, err
		}
		agg := view.AggregateRaw
		reconstructed, loss, err := env.Plan.Reconstruct(agg, week, day, half)
		if err != nil {
			return nil, err
		}
		corr, err := linalg.Pearson(agg, reconstructed)
		if err != nil {
			return nil, err
		}
		if corr < worstCorr {
			worstCorr = corr
		}
		tbl.AddRow(region.String(), loss, corr)
		if err := fig.AddSeries(region.String(), x, linalg.NormalizeByMax(reconstructed[:weekSlots])); err != nil {
			return nil, err
		}
	}
	notes := []string{
		fmt.Sprintf("worst-case correlation between a primary pattern and its 3-component reconstruction: %.3f (paper: reconstructed curves very close to the originals)", worstCorr),
	}
	return &Output{Name: "fig14", Description: "primary pattern reconstruction", Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}, Notes: notes}, nil
}

// Figure15 regenerates the amplitude/phase scatter of the towers at the
// three principal components (Figure 15).
func Figure15(env *Env) (*Output, error) {
	res := env.Result
	figs := make([]*report.Figure, 0, 3)
	components := []struct {
		name string
		amp  func(freqdomain.Features) float64
		ph   func(freqdomain.Features) float64
	}{
		{"one week (k=week)", func(f freqdomain.Features) float64 { return f.AmpWeek }, func(f freqdomain.Features) float64 { return f.PhaseWeek }},
		{"one day (k=day)", func(f freqdomain.Features) float64 { return f.AmpDay }, func(f freqdomain.Features) float64 { return f.PhaseDay }},
		{"half a day (k=half-day)", func(f freqdomain.Features) float64 { return f.AmpHalfDay }, func(f freqdomain.Features) float64 { return f.PhaseHalfDay }},
	}
	for _, comp := range components {
		fig := &report.Figure{Title: "Figure 15: amplitude vs phase, " + comp.name, XLabel: "amplitude", YLabel: "phase"}
		for _, view := range regionOrder(res) {
			var xs, ys []float64
			for _, row := range view.Members {
				f := res.Features[row]
				xs = append(xs, comp.amp(f))
				ys = append(ys, comp.ph(f))
			}
			if err := fig.AddSeries(view.Region.String(), xs, ys); err != nil {
				return nil, err
			}
		}
		figs = append(figs, fig)
	}
	// Shape checks computed from per-cluster circular means.
	stats, err := freqdomain.GroupStats(res.Features, res.Assignment.Members())
	if err != nil {
		return nil, err
	}
	officeView, err := res.ClusterByRegion(urban.Office)
	if err != nil {
		return nil, err
	}
	residentView, err := res.ClusterByRegion(urban.Resident)
	if err != nil {
		return nil, err
	}
	transportView, err := res.ClusterByRegion(urban.Transport)
	if err != nil {
		return nil, err
	}
	weekSep := linalg.PhaseDistance(stats[officeView.Index][0].PhaseMean, stats[residentView.Index][0].PhaseMean)
	notes := []string{
		fmt.Sprintf("office vs resident weekly phase separation = %.2f rad (paper: about π apart)", weekSep),
		fmt.Sprintf("transport towers have the largest half-day amplitude (%.3f vs office %.3f), the double-hump signature", stats[transportView.Index][2].AmpMean, stats[officeView.Index][2].AmpMean),
	}
	return &Output{Name: "fig15", Description: "amplitude/phase scatter", Figures: figs, Notes: notes}, nil
}

// Figure16 regenerates the per-pattern means and standard deviations of
// amplitude and phase (Figure 16).
func Figure16(env *Env) (*Output, error) {
	res := env.Result
	stats, err := freqdomain.GroupStats(res.Features, res.Assignment.Members())
	if err != nil {
		return nil, err
	}
	componentNames := []string{"week", "day", "half-day"}
	tbl := &report.Table{
		Title:   "Figure 16: amplitude and phase statistics per pattern and component",
		Headers: []string{"region", "component", "amp mean", "amp std", "phase mean", "phase std"},
	}
	phaseOrder := map[urban.Region]float64{}
	for _, view := range regionOrder(res) {
		for c, name := range componentNames {
			s := stats[view.Index][c]
			tbl.AddRow(view.Region.String(), name, s.AmpMean, s.AmpStd, s.PhaseMean, s.PhaseStd)
			if c == 1 {
				phaseOrder[view.Region] = s.PhaseMean
			}
		}
	}
	notes := []string{
		fmt.Sprintf("daily-component phase means: resident %.2f, comprehensive %.2f, transport %.2f, office %.2f (paper: incremental along the home→transport→office commute)",
			phaseOrder[urban.Resident], phaseOrder[urban.Comprehensive], phaseOrder[urban.Transport], phaseOrder[urban.Office]),
	}
	return &Output{Name: "fig16", Description: "amplitude/phase statistics", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// Figure17 regenerates the primary-component polygon view (Figure 17): the
// representative tower of each primary pattern and how well the remaining
// towers fit inside the polygon they span.
func Figure17(env *Env) (*Output, error) {
	res := env.Result
	primaries, err := res.PrimaryComponents()
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		Title:   "Figure 17: primary components (most representative towers)",
		Headers: []string{"region", "dataset row", "amp day", "phase day", "amp half-day"},
	}
	for i, region := range urban.PrimaryRegions {
		f := primaries[i]
		tbl.AddRow(region.String(), f.Index, f.AmpDay, f.PhaseDay, f.AmpHalfDay)
	}
	// Decompose every tower against the polygon and report the residuals.
	decs, err := freqdomain.DecomposeAll(res.Features, primaries)
	if err != nil {
		return nil, err
	}
	residuals := make(linalg.Vector, len(decs))
	for i, d := range decs {
		residuals[i] = d.Residual
	}
	scale := featureScale(res.Features)
	resTbl := &report.Table{
		Title:   "Figure 17: distance of towers from the primary-component polygon",
		Headers: []string{"statistic", "value"},
	}
	mean := residuals.Mean()
	p90 := linalg.Quantile(residuals, 0.9)
	max, _ := residuals.Max()
	resTbl.AddRow("mean residual", mean)
	resTbl.AddRow("90th percentile residual", p90)
	resTbl.AddRow("max residual", max)
	resTbl.AddRow("feature space scale (median pairwise distance)", scale)
	notes := []string{
		fmt.Sprintf("90%% of towers lie within %.3f of the polygon spanned by the four primary components (feature-space scale %.3f) — the linear-combination statement of Section 5.2", p90, scale),
	}
	return &Output{Name: "fig17", Description: "primary component polygon", Tables: []*report.Table{tbl, resTbl}, Notes: notes}, nil
}

// featureScale estimates the spread of the three-dimensional feature cloud.
func featureScale(features []freqdomain.Features) float64 {
	points := make([]linalg.Vector, len(features))
	for i, f := range features {
		points[i] = f.Vector3()
	}
	var dists linalg.Vector
	step := 1
	if len(points) > 200 {
		step = len(points) / 200
	}
	for i := 0; i < len(points); i += step {
		for j := i + step; j < len(points); j += step {
			d, err := linalg.Distance(points[i], points[j])
			if err == nil {
				dists = append(dists, d)
			}
		}
	}
	return linalg.Quantile(dists, 0.5)
}

// table6Selection picks the towers reported in Table 6: the four primary
// representative towers (F1–F4) and up to five comprehensive towers
// (P1–P5).
func table6Selection(env *Env) (primaryRows []int, comprehensiveRows []int, err error) {
	res := env.Result
	for _, region := range urban.PrimaryRegions {
		view, err := res.ClusterByRegion(region)
		if err != nil {
			return nil, nil, err
		}
		primaryRows = append(primaryRows, view.Representative)
	}
	comp, err := res.ClusterByRegion(urban.Comprehensive)
	if err != nil {
		return primaryRows, nil, nil // tolerate a missing comprehensive cluster
	}
	members := append([]int(nil), comp.Members...)
	// Spread the picks across the cluster for variety.
	n := 5
	if n > len(members) {
		n = len(members)
	}
	for i := 0; i < n; i++ {
		comprehensiveRows = append(comprehensiveRows, members[i*len(members)/n])
	}
	return primaryRows, comprehensiveRows, nil
}

// Table6 regenerates the convex-combination coefficients and NTF-IDF
// comparison (Table 6 of the paper).
func Table6(env *Env) (*Output, error) {
	res := env.Result
	primaries, err := res.PrimaryComponents()
	if err != nil {
		return nil, err
	}
	primaryRows, compRows, err := table6Selection(env)
	if err != nil {
		return nil, err
	}
	ntf, err := poi.NTFIDF(res.TowerPOI)
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		Title: "Table 6: convex combination coefficients and NTF-IDF",
		Headers: []string{"tower", "coef resident", "coef transport", "coef office", "coef entertainment",
			"ntfidf resident", "ntfidf transport", "ntfidf office", "ntfidf entertainment"},
	}
	addRow := func(name string, row int) (*freqdomain.Decomposition, error) {
		dec, err := freqdomain.Decompose(res.Features[row], primaries)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(name,
			dec.Coefficients[0], dec.Coefficients[1], dec.Coefficients[2], dec.Coefficients[3],
			ntf[row][poi.Resident], ntf[row][poi.Transport], ntf[row][poi.Office], ntf[row][poi.Entertainment])
		return dec, nil
	}
	diagonal := 0
	for i, row := range primaryRows {
		dec, err := addRow(fmt.Sprintf("F%d (%s)", i+1, urban.PrimaryRegions[i]), row)
		if err != nil {
			return nil, err
		}
		if _, argmax := dec.Coefficients.Max(); argmax == i {
			diagonal++
		}
	}
	// Agreement between the smallest coefficient and the smallest NTF-IDF
	// for the comprehensive towers (the consistency check of Section 5.3).
	agree, totalComp := 0, 0
	for i, row := range compRows {
		dec, err := addRow(fmt.Sprintf("P%d (comprehensive)", i+1), row)
		if err != nil {
			return nil, err
		}
		totalComp++
		_, minCoefIdx := dec.Coefficients.Min()
		minNTF, minNTFIdx := math.Inf(1), 0
		for t := 0; t < poi.NumTypes; t++ {
			if ntf[row][t] < minNTF {
				minNTF, minNTFIdx = ntf[row][t], t
			}
		}
		if minCoefIdx == minNTFIdx {
			agree++
		}
	}
	notes := []string{
		fmt.Sprintf("representative towers decompose onto their own component for %d of 4 (paper: coefficients of F1-F4 are exactly 1)", diagonal),
		fmt.Sprintf("smallest coefficient matches smallest NTF-IDF for %d of %d comprehensive towers (paper: the small entries coincide)", agree, totalComp),
	}
	return &Output{Name: "table6", Description: "coefficients vs NTF-IDF", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// pickP5 selects the comprehensive tower used by Figures 18 and 19 (the
// analogue of tower P5 in the paper): the last of the Table 6 selection.
func pickP5(env *Env) (int, error) {
	_, compRows, err := table6Selection(env)
	if err != nil {
		return 0, err
	}
	if len(compRows) == 0 {
		return 0, fmt.Errorf("experiments: no comprehensive towers available")
	}
	return compRows[len(compRows)-1], nil
}

// Figure18 regenerates the frequency-domain convex combination of one
// comprehensive tower (Figure 18).
func Figure18(env *Env) (*Output, error) {
	res := env.Result
	row, err := pickP5(env)
	if err != nil {
		return nil, err
	}
	primaries, err := res.PrimaryComponents()
	if err != nil {
		return nil, err
	}
	dec, err := freqdomain.Decompose(res.Features[row], primaries)
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("Figure 18: convex combination of tower row %d in the frequency domain", row),
		Headers: []string{"component", "coefficient", "amp day", "phase day", "amp half-day"},
	}
	for i, region := range urban.PrimaryRegions {
		f := primaries[i]
		tbl.AddRow(region.String(), dec.Coefficients[i], f.AmpDay, f.PhaseDay, f.AmpHalfDay)
	}
	target := res.Features[row]
	tbl.AddRow("target tower", 1.0, target.AmpDay, target.PhaseDay, target.AmpHalfDay)
	notes := []string{
		fmt.Sprintf("residual of the convex combination = %.4f; coefficients = %v", dec.Residual, formatCoefficients(dec.Coefficients)),
	}
	return &Output{Name: "fig18", Description: "frequency-domain combination", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

func formatCoefficients(c linalg.Vector) string {
	out := "["
	for i, v := range c {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.2f", v)
	}
	return out + "]"
}

// Figure19 regenerates the time-domain convex combination of the same
// comprehensive tower (Figure 19).
func Figure19(env *Env) (*Output, error) {
	res := env.Result
	ds := env.Dataset
	row, err := pickP5(env)
	if err != nil {
		return nil, err
	}
	primaries, err := res.PrimaryComponents()
	if err != nil {
		return nil, err
	}
	dec, err := freqdomain.Decompose(res.Features[row], primaries)
	if err != nil {
		return nil, err
	}
	primarySeries := make([]linalg.Vector, len(primaries))
	for i, p := range primaries {
		primarySeries[i] = ds.Normalized[p.Index]
	}
	combo, err := freqdomain.CombineTimeDomain(dec, primarySeries, ds.Days)
	if err != nil {
		return nil, err
	}
	weekSlots := 7 * ds.SlotsPerDay()
	x := weekTimeAxis(weekSlots, ds.SlotMinutes, ds.Start)
	fig := &report.Figure{Title: fmt.Sprintf("Figure 19: time-domain components of tower row %d (first week)", row), XLabel: "day", YLabel: "normalised traffic"}
	for i, region := range urban.PrimaryRegions {
		if err := fig.AddSeries("component-"+region.String(), x, combo.Components[i][:weekSlots]); err != nil {
			return nil, err
		}
	}
	if err := fig.AddSeries("combined", x, combo.Combined[:weekSlots]); err != nil {
		return nil, err
	}
	if err := fig.AddSeries("actual", x, ds.Normalized[row][:weekSlots]); err != nil {
		return nil, err
	}
	corr, err := linalg.Pearson(combo.Combined, ds.Normalized[row])
	if err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("correlation between the combined primary components and the tower's actual traffic = %.3f (paper: the combination approximates the tower's traffic)", corr),
	}
	return &Output{Name: "fig19", Description: "time-domain combination", Figures: []*report.Figure{fig}, Notes: notes}, nil
}
