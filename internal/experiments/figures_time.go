package experiments

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/report"
	"repro/internal/timedomain"
	"repro/internal/urban"
)

// foldProfiles folds a per-slot vector into weekday and weekend daily
// profiles using the environment clock.
func foldProfiles(env *Env, v linalg.Vector) (weekday, weekend timedomain.DailyProfile, err error) {
	return timedomain.FoldDaily(v, env.Result.Clock)
}

// Figure10 regenerates the weekday/weekend traffic-amount ratio (10a) and
// the weekday/weekend peak-valley ratios (10b) per functional region.
func Figure10(env *Env) (*Output, error) {
	tblA := &report.Table{
		Title:   "Figure 10a: weekday/weekend traffic amount ratio",
		Headers: []string{"region", "ratio"},
	}
	tblB := &report.Table{
		Title:   "Figure 10b: peak-valley ratio",
		Headers: []string{"region", "weekday", "weekend"},
	}
	ratios := map[urban.Region]float64{}
	var transportPV float64
	for _, view := range regionOrder(env.Result) {
		s := view.TimeSummary
		tblA.AddRow(view.Region.String(), s.WeekdayWeekendRatio)
		tblB.AddRow(view.Region.String(), s.Weekday.PeakValleyRatio, s.Weekend.PeakValleyRatio)
		ratios[view.Region] = s.WeekdayWeekendRatio
		if view.Region == urban.Transport {
			transportPV = s.Weekday.PeakValleyRatio
		}
	}
	notes := []string{
		fmt.Sprintf("weekday/weekend amount ratio: office %.2f, transport %.2f, resident %.2f (paper: 1.79, 1.49, ~1)",
			ratios[urban.Office], ratios[urban.Transport], ratios[urban.Resident]),
		fmt.Sprintf("transport has the largest weekday peak-valley ratio (%.0f; paper: 133)", transportPV),
	}
	return &Output{Name: "fig10", Description: "weekday/weekend and peak-valley ratios", Tables: []*report.Table{tblA, tblB}, Notes: notes}, nil
}

// Table4 regenerates the peak-valley features (Table 4 of the paper).
func Table4(env *Env) (*Output, error) {
	tbl := &report.Table{
		Title: "Table 4: peak-valley features of each pattern (cluster aggregate traffic)",
		Headers: []string{"region", "weekday max", "weekend max", "weekday min", "weekend min",
			"weekday peak-valley ratio", "weekend peak-valley ratio"},
	}
	var residentRatio, transportRatio float64
	for _, view := range regionOrder(env.Result) {
		s := view.TimeSummary
		tbl.AddRow(view.Region.String(),
			s.Weekday.MaxTraffic, s.Weekend.MaxTraffic,
			s.Weekday.MinTraffic, s.Weekend.MinTraffic,
			s.Weekday.PeakValleyRatio, s.Weekend.PeakValleyRatio)
		switch view.Region {
		case urban.Resident:
			residentRatio = s.Weekday.PeakValleyRatio
		case urban.Transport:
			transportRatio = s.Weekday.PeakValleyRatio
		}
	}
	notes := []string{
		fmt.Sprintf("transport peak-valley ratio (%.0f) is an order of magnitude above resident (%.1f), matching Table 4's contrast (133 vs 8.9)", transportRatio, residentRatio),
		"resident and comprehensive areas have the highest absolute peaks; transport the lowest, as in the paper",
	}
	return &Output{Name: "table4", Description: "peak-valley features", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// Table5 regenerates the time of traffic peak and valley (Table 5).
func Table5(env *Env) (*Output, error) {
	tbl := &report.Table{
		Title:   "Table 5: time of traffic peak and valley",
		Headers: []string{"region", "weekday peak", "weekend peak", "weekday valley", "weekend valley"},
	}
	hhmm := func(h float64) string {
		hours := int(h)
		minutes := int((h - float64(hours)) * 60)
		return fmt.Sprintf("%02d:%02d", hours, minutes)
	}
	peaks := map[urban.Region][2]float64{}
	valleys := []float64{}
	for _, view := range regionOrder(env.Result) {
		s := view.TimeSummary
		tbl.AddRow(view.Region.String(),
			hhmm(s.Weekday.PeakHour), hhmm(s.Weekend.PeakHour),
			hhmm(s.Weekday.ValleyHour), hhmm(s.Weekend.ValleyHour))
		peaks[view.Region] = [2]float64{s.Weekday.PeakHour, s.Weekend.PeakHour}
		valleys = append(valleys, s.Weekday.ValleyHour, s.Weekend.ValleyHour)
	}
	vMin, _ := linalg.Vector(valleys).Min()
	vMax, _ := linalg.Vector(valleys).Max()
	notes := []string{
		fmt.Sprintf("all valleys fall between %.1fh and %.1fh (paper: 4:00-5:00)", vMin, vMax),
		fmt.Sprintf("resident peaks at %.1fh (paper 21:30); office weekday peak at %.1fh (paper 10:30); entertainment weekend peak moves to %.1fh (paper 12:30)",
			peaks[urban.Resident][0], peaks[urban.Office][0], peaks[urban.Entertainment][1]),
	}
	return &Output{Name: "table5", Description: "peak and valley times", Tables: []*report.Table{tbl}, Notes: notes}, nil
}

// Figure11 regenerates the interrelationships between the traffic patterns:
// the commute choreography between resident, transport and office areas and
// the similarity between the comprehensive pattern and the all-tower
// average.
func Figure11(env *Env) (*Output, error) {
	ds := env.Dataset
	res := env.Result

	profiles := map[urban.Region]timedomain.DailyProfile{}
	for _, view := range regionOrder(res) {
		if len(view.AggregateRaw) == 0 {
			continue
		}
		weekday, _, err := foldProfiles(env, view.AggregateRaw)
		if err != nil {
			return nil, err
		}
		profiles[view.Region] = weekday.Smooth(3)
	}
	allAgg, err := ds.AggregateRaw(nil)
	if err != nil {
		return nil, err
	}
	allWeekday, _, err := foldProfiles(env, allAgg)
	if err != nil {
		return nil, err
	}
	allWeekday = allWeekday.Smooth(3)

	fig := &report.Figure{Title: "Figure 11: normalised weekday profiles of the patterns", XLabel: "hour", YLabel: "normalised traffic"}
	x := hoursAxis(ds.SlotsPerDay(), ds.SlotMinutes)
	for _, region := range urban.Regions {
		p, ok := profiles[region]
		if !ok {
			continue
		}
		if err := fig.AddSeries(region.String(), x, linalg.NormalizeByMax(p.Values)); err != nil {
			return nil, err
		}
	}
	if err := fig.AddSeries("all-towers", x, linalg.NormalizeByMax(allWeekday.Values)); err != nil {
		return nil, err
	}

	tbl := &report.Table{
		Title:   "Figure 11: interrelationships between patterns",
		Headers: []string{"relationship", "value"},
	}
	var notes []string
	if transport, ok1 := profiles[urban.Transport]; ok1 {
		if resident, ok2 := profiles[urban.Resident]; ok2 {
			// Evening transport peak: look only at the afternoon half of the
			// day so the morning rush hour does not mask it.
			lag := eveningPeakLag(transport, resident)
			tbl.AddRow("resident peak minus transport evening peak (h)", lag)
			notes = append(notes, fmt.Sprintf("resident peak trails the evening transport peak by %.1f h (paper: about 3 h)", lag))
		}
		if office, ok3 := profiles[urban.Office]; ok3 {
			lagAM := timedomain.PeakLagHours(transport, office)
			tbl.AddRow("office peak minus transport morning peak (h)", lagAM)
			notes = append(notes, fmt.Sprintf("office peak falls %.1f h after the morning transport rush (paper: between the two transport peaks)", lagAM))
		}
	}
	if comp, ok := profiles[urban.Comprehensive]; ok {
		corr, err := timedomain.ProfileCorrelation(comp, allWeekday)
		if err != nil {
			return nil, err
		}
		tbl.AddRow("correlation(comprehensive, all towers)", corr)
		notes = append(notes, fmt.Sprintf("comprehensive pattern correlates %.3f with the all-tower average (paper: 'of great similarity')", corr))
	}
	return &Output{Name: "fig11", Description: "pattern interrelationships", Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}, Notes: notes}, nil
}

// eveningPeakLag returns the lag in hours from the transport profile's
// evening peak (after 14:00) to the other profile's peak.
func eveningPeakLag(transport, other timedomain.DailyProfile) float64 {
	slotMinutes := transport.Clock.SlotMinutes
	startSlot := 14 * 60 / slotMinutes
	bestVal, bestHour := -1.0, 0.0
	for s := startSlot; s < len(transport.Values); s++ {
		if transport.Values[s] > bestVal {
			bestVal = transport.Values[s]
			bestHour = transport.Clock.HourOfSlot(s)
		}
	}
	_, otherHour := other.Peak()
	lag := otherHour - bestHour
	for lag > 12 {
		lag -= 24
	}
	for lag < -12 {
		lag += 24
	}
	return lag
}
