package experiments

import (
	"strings"
	"testing"
)

// sharedEnv is built once for the whole test package; building it is the
// expensive part (city generation, clustering, DFT of every tower).
var sharedEnv *Env

func testEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	env, err := Build(SmallScale())
	if err != nil {
		t.Fatalf("building small environment: %v", err)
	}
	sharedEnv = env
	return env
}

func TestBuildSmallEnv(t *testing.T) {
	env := testEnv(t)
	if env.Dataset.NumTowers() != SmallScale().Towers {
		t.Errorf("towers = %d, want %d", env.Dataset.NumTowers(), SmallScale().Towers)
	}
	if env.Dataset.Days != 14 {
		t.Errorf("days = %d, want 14", env.Dataset.Days)
	}
	if env.Result.OptimalK != 5 {
		t.Errorf("K = %d, want 5 (forced)", env.Result.OptimalK)
	}
	if len(env.Truth) != env.Dataset.NumTowers() {
		t.Error("ground truth length mismatch")
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	names := Names()
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1", "fig7", "table2",
		"fig8", "table3", "fig9", "fig10", "table4", "table5", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "table6", "fig18", "fig19",
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if _, err := RunnerByName("fig12"); err != nil {
		t.Errorf("RunnerByName(fig12): %v", err)
	}
	if _, err := RunnerByName("fig99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// TestAllExperimentsRun executes every registered experiment on the small
// environment and checks the structural sanity of the outputs.
func TestAllExperimentsRun(t *testing.T) {
	env := testEnv(t)
	for _, r := range Registry() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			out, err := r.Run(env)
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if out.Name != r.Name {
				t.Errorf("output name = %q, want %q", out.Name, r.Name)
			}
			if len(out.Tables) == 0 && len(out.Figures) == 0 {
				t.Error("experiment produced neither tables nor figures")
			}
			for _, tbl := range out.Tables {
				if len(tbl.Headers) == 0 {
					t.Error("table without headers")
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Headers) {
						t.Errorf("table %q row has %d cells, want %d", tbl.Title, len(row), len(tbl.Headers))
					}
				}
			}
			for _, fig := range out.Figures {
				if len(fig.Series) == 0 {
					t.Errorf("figure %q has no series", fig.Title)
				}
				for _, s := range fig.Series {
					if len(s.X) != len(s.Y) {
						t.Errorf("figure %q series %q ragged", fig.Title, s.Name)
					}
				}
			}
			if len(out.Notes) == 0 {
				t.Error("experiment produced no headline notes")
			}
		})
	}
}

// TestHeadlineShapes spot-checks the paper's headline claims on the small
// environment.
func TestHeadlineShapes(t *testing.T) {
	env := testEnv(t)

	t.Run("five patterns exist", func(t *testing.T) {
		out, err := Figure6(env)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range out.Notes {
			if strings.Contains(n, "minimised at K=") {
				found = true
			}
		}
		if !found {
			t.Error("figure 6 notes missing the DBI minimum")
		}
	})

	t.Run("reconstruction loss small", func(t *testing.T) {
		out, err := Figure12(env)
		if err != nil {
			t.Fatal(err)
		}
		// The energy-loss note must report a small percentage; parse it
		// loosely by checking the figure exists and the note mentions '%'.
		if len(out.Figures) != 2 {
			t.Fatalf("figure 12 should emit 2 figures, got %d", len(out.Figures))
		}
		if !strings.Contains(strings.Join(out.Notes, " "), "%") {
			t.Error("figure 12 notes missing energy loss percentage")
		}
	})

	t.Run("office weekday ratio above resident", func(t *testing.T) {
		views := regionOrder(env.Result)
		var office, resident float64
		for _, v := range views {
			switch v.Region.String() {
			case "office":
				office = v.TimeSummary.WeekdayWeekendRatio
			case "resident":
				resident = v.TimeSummary.WeekdayWeekendRatio
			}
		}
		if office <= resident {
			t.Errorf("office weekday/weekend ratio (%g) should exceed resident (%g)", office, resident)
		}
	})

	t.Run("transport has strongest half-day component", func(t *testing.T) {
		out, err := Figure15(env)
		if err != nil {
			t.Fatal(err)
		}
		joined := strings.Join(out.Notes, " ")
		if !strings.Contains(joined, "half-day") {
			t.Error("figure 15 notes missing the half-day check")
		}
	})
}

func TestRegionOrderStable(t *testing.T) {
	env := testEnv(t)
	views := regionOrder(env.Result)
	if len(views) != len(env.Result.Clusters) {
		t.Fatal("regionOrder dropped clusters")
	}
	// Canonical order: resident before office before comprehensive when all
	// are present.
	pos := map[string]int{}
	for i, v := range views {
		if _, ok := pos[v.Region.String()]; !ok {
			pos[v.Region.String()] = i
		}
	}
	if pos["resident"] > pos["office"] || pos["office"] > pos["comprehensive"] {
		t.Errorf("unexpected region order: %v", pos)
	}
}
