// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic substrate: each experiment is a named
// runner that takes a prepared environment (city, vectorised dataset and
// analysis result) and produces tables, figures and headline notes. The
// cmd/experiments binary and the repository-level benchmarks both drive the
// same runners, so the numbers in EXPERIMENTS.md and the benchmark output
// come from identical code paths.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/urban"
)

// Scale selects the size of the synthetic workload.
type Scale struct {
	// Name is used in output paths and logs.
	Name string
	// Towers is the number of cellular towers.
	Towers int
	// Days is the number of days of traffic (trimmed to whole weeks).
	Days int
	// Seed drives the generator.
	Seed int64
	// Workers bounds the parallelism of the modeling stage (≤ 0 means
	// GOMAXPROCS). Results are identical for any value — the modeling
	// engine is deterministic — so experiments never depend on it.
	Workers int
}

// SmallScale is a fast configuration used by unit tests and the quickstart:
// a few hundred towers over two weeks.
func SmallScale() Scale { return Scale{Name: "small", Towers: 240, Days: 14, Seed: 11} }

// PaperScale approaches the paper's setting with a laptop-tractable number
// of towers over four whole weeks. The paper's 9,600 towers would only
// increase runtime, not change the shape of any result.
func PaperScale() Scale { return Scale{Name: "paper", Towers: 1200, Days: 28, Seed: 42} }

// Env is the shared input of all experiments.
type Env struct {
	Scale   Scale
	City    *synth.City
	Dataset *pipeline.Dataset
	Result  *core.Result
	// Truth[i] is the ground-truth region of dataset row i.
	Truth []urban.Region
	// Plan is the FFT plan for the dataset's slot count, shared by every
	// frequency-domain experiment. Runners execute sequentially, so the
	// plan's scratch buffers are never contended.
	Plan *dsp.Plan
}

// Build generates the synthetic city at the given scale, vectorises its
// traffic and runs the full analysis (forcing the paper's five clusters so
// every downstream experiment has the five patterns available; the metric
// tuner itself is evaluated by the Figure 6 experiment).
func Build(scale Scale) (*Env, error) {
	cfg := synth.DefaultConfig()
	cfg.Towers = scale.Towers
	cfg.Days = scale.Days
	cfg.Seed = scale.Seed
	city, err := synth.GenerateCity(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating city: %w", err)
	}
	ds, err := city.BuildDataset()
	if err != nil {
		return nil, fmt.Errorf("experiments: building dataset: %w", err)
	}
	res, err := core.Analyze(ds, city.POIs, core.Options{
		ForceK:      5,
		MinClusters: 2,
		MaxClusters: 10,
		Workers:     scale.Workers,
		Seed:        scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: analysing: %w", err)
	}
	truth, err := city.GroundTruthRegions(ds)
	if err != nil {
		return nil, fmt.Errorf("experiments: ground truth: %w", err)
	}
	plan, err := dsp.NewPlan(ds.NumSlots())
	if err != nil {
		return nil, fmt.Errorf("experiments: FFT plan: %w", err)
	}
	return &Env{Scale: scale, City: city, Dataset: ds, Result: res, Truth: truth, Plan: plan}, nil
}

// Output is the artefact bundle of one experiment.
type Output struct {
	// Name is the experiment identifier (e.g. "table1", "fig12").
	Name string
	// Description says which paper artefact the experiment regenerates.
	Description string
	// Tables and Figures carry the regenerated data.
	Tables  []*report.Table
	Figures []*report.Figure
	// Notes are headline findings phrased as paper-vs-measured checks.
	Notes []string
}

// Runner regenerates one experiment from a prepared environment.
type Runner struct {
	Name        string
	Description string
	Run         func(*Env) (*Output, error)
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"fig1", "Figure 1: temporal distribution of aggregate traffic", Figure1},
		{"fig2", "Figure 2: spatial traffic density at 4AM/10AM/4PM/10PM", Figure2},
		{"fig3", "Figure 3: residential vs business-district tower profiles", Figure3},
		{"fig4", "Figure 4: per-tower traffic across latitudes/longitudes", Figure4},
		{"fig5", "Figure 5: per-tower traffic within single regions", Figure5},
		{"fig6", "Figure 6: DBI variation, distance CDF and the five patterns", Figure6},
		{"table1", "Table 1: percentage of towers per cluster", Table1},
		{"fig7", "Figure 7: geographic density of each cluster", Figure7},
		{"table2", "Table 2: POI distribution at each cluster's densest point", Table2},
		{"fig8", "Figure 8: case-study validation of labels", Figure8},
		{"table3", "Table 3: averaged normalised POI of the five clusters", Table3},
		{"fig9", "Figure 9: POI share of each cluster", Figure9},
		{"fig10", "Figure 10: weekday/weekend ratios and peak-valley ratios", Figure10},
		{"table4", "Table 4: peak-valley features", Table4},
		{"table5", "Table 5: time of traffic peak and valley", Table5},
		{"fig11", "Figure 11: interrelationships between traffic patterns", Figure11},
		{"fig12", "Figure 12: DFT of aggregate traffic and 3-component reconstruction", Figure12},
		{"fig13", "Figure 13: variance of spectrum amplitude across towers", Figure13},
		{"fig14", "Figure 14: reconstructed traffic of the primary patterns", Figure14},
		{"fig15", "Figure 15: amplitude/phase distribution of the three components", Figure15},
		{"fig16", "Figure 16: per-pattern amplitude/phase means and deviations", Figure16},
		{"fig17", "Figure 17: primary components spanning the feature polygon", Figure17},
		{"table6", "Table 6: convex combination coefficients vs NTF-IDF", Table6},
		{"fig18", "Figure 18: convex combination of a comprehensive tower (frequency domain)", Figure18},
		{"fig19", "Figure 19: convex combination of a comprehensive tower (time domain)", Figure19},
	}
}

// RunnerByName returns the runner with the given name.
func RunnerByName(name string) (Runner, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// Names returns all experiment names in paper order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, r := range reg {
		out[i] = r.Name
	}
	return out
}

// regionOrder returns the cluster views of the result ordered canonically
// (resident, transport, office, entertainment, comprehensive, then any
// further clusters by index) so tables line up with the paper's rows.
func regionOrder(res *core.Result) []core.ClusterView {
	views := make([]core.ClusterView, len(res.Clusters))
	copy(views, res.Clusters)
	rank := func(r urban.Region) int {
		for i, reg := range urban.Regions {
			if reg == r {
				return i
			}
		}
		return len(urban.Regions)
	}
	sort.SliceStable(views, func(i, j int) bool {
		ri, rj := rank(views[i].Region), rank(views[j].Region)
		if ri != rj {
			return ri < rj
		}
		return views[i].Index < views[j].Index
	})
	return views
}
