package core

import (
	"reflect"
	"runtime"
	"testing"
)

// TestPrecisionString covers the enum's debug formatting, including the
// out-of-range fallback.
func TestPrecisionString(t *testing.T) {
	cases := []struct {
		p    Precision
		want string
	}{
		{Float64, "float64"},
		{Float32, "float32"},
		{Precision(42), "precision(42)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Precision(%d).String() = %q, want %q", int(c.p), got, c.want)
		}
	}
}

// TestAnalyzeRejectsUnknownPrecision: an out-of-range Precision is a
// configuration error, not a silent fall-through to float64.
func TestAnalyzeRejectsUnknownPrecision(t *testing.T) {
	city, ds := goldenCity(t)
	opts := goldenOptions()
	opts.Precision = Precision(42)
	if _, err := Analyze(ds, city.POIs, opts); err == nil {
		t.Fatal("Analyze accepted an unknown precision")
	}
}

// TestFloat32DecisionsMatchFloat64 is the float32 fast path's acceptance
// test: on the golden seeded city the narrowed pipeline must make the
// identical *decisions* — cluster count, memberships, land-use labels, NMF
// dominant bases, k-means partition — as the float64 reference. Scores
// (DBI values, inertia, reconstruction error) may differ in the last few
// digits; everything discrete must not.
func TestFloat32DecisionsMatchFloat64(t *testing.T) {
	city, ds := goldenCity(t)

	ref, err := Analyze(ds, city.POIs, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}

	opts := goldenOptions()
	opts.Precision = Float32
	res, err := Analyze(ds, city.POIs, opts)
	if err != nil {
		t.Fatal(err)
	}

	got, want := snapshotModel(res), snapshotModel(ref)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("float32 decisions diverged from float64:\n  float32: %+v\n  float64: %+v", got, want)
	}
	if res.KMeans.Iterations != ref.KMeans.Iterations {
		t.Errorf("float32 k-means took %d iterations, float64 %d", res.KMeans.Iterations, ref.KMeans.Iterations)
	}
	// The DBI curves should agree closely (the curve minima already agreed
	// exactly via OptimalK above).
	if len(res.DBICurve) != len(ref.DBICurve) {
		t.Fatalf("DBI curve has %d points at float32, %d at float64", len(res.DBICurve), len(ref.DBICurve))
	}
	for i, p := range res.DBICurve {
		q := ref.DBICurve[i]
		if p.K != q.K {
			t.Fatalf("DBI curve point %d is K=%d at float32, K=%d at float64", i, p.K, q.K)
		}
		if diff := p.DBI - q.DBI; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("DBI(K=%d) = %v at float32, %v at float64", p.K, p.DBI, q.DBI)
		}
	}
}

// TestFloat32BitIdenticalAcrossWorkers: the float32 path must be as
// deterministic as the float64 one — same seed ⇒ bit-identical results for
// every Workers value.
func TestFloat32BitIdenticalAcrossWorkers(t *testing.T) {
	city, ds := goldenCity(t)
	opts := goldenOptions()
	opts.Precision = Float32
	opts.Workers = 1
	serial, err := Analyze(ds, city.POIs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		opts.Workers = workers
		par, err := Analyze(ds, city.POIs, opts)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.Assignment, serial.Assignment) {
			t.Errorf("workers %d: cluster assignment differs from serial run", workers)
		}
		if !reflect.DeepEqual(par.Dendrogram, serial.Dendrogram) {
			t.Errorf("workers %d: dendrogram differs from serial run", workers)
		}
		if !reflect.DeepEqual(par.DBICurve, serial.DBICurve) {
			t.Errorf("workers %d: DBI curve differs from serial run", workers)
		}
		if !reflect.DeepEqual(par.NMF.W.Data, serial.NMF.W.Data) || !reflect.DeepEqual(par.NMF.H.Data, serial.NMF.H.Data) {
			t.Errorf("workers %d: NMF factors differ from serial run", workers)
		}
		if !reflect.DeepEqual(par.KMeans, serial.KMeans) {
			t.Errorf("workers %d: k-means baseline differs from serial run", workers)
		}
	}
}
