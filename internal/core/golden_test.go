package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/synth"
)

// updateGolden regenerates the golden fixture:
//
//	go test ./internal/core -run TestGoldenEndToEnd -update
var updateGolden = flag.Bool("update", false, "regenerate golden fixtures")

// goldenOptions is the full modeling configuration of the golden run: the
// metric tuner picks K, NMF extracts one basis per cluster and the k-means
// baseline runs three seeded restarts. Everything downstream must be
// reproducible from the seed alone.
func goldenOptions() Options {
	return Options{
		MinClusters:    2,
		MaxClusters:    8,
		Seed:           7,
		NMFRank:        NMFRankAuto,
		KMeansRestarts: 3,
	}
}

// goldenCity builds the seeded synthetic city of the golden run.
func goldenCity(t *testing.T) (*synth.City, *pipeline.Dataset) {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.Towers = 120
	cfg.Days = 14
	cfg.Seed = 23
	city, err := synth.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := city.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	return city, ds
}

// goldenModel is the checked-in snapshot of everything the paper pipeline
// decides: how many patterns, which towers belong to which, which NMF basis
// dominates each tower and which land use every cluster gets.
type goldenModel struct {
	Towers        int      `json:"towers"`
	Slots         int      `json:"slots"`
	OptimalK      int      `json:"optimal_k"`
	ClusterSizes  []int    `json:"cluster_sizes"`
	ClusterLabels []string `json:"cluster_labels"`
	Assignment    []int    `json:"assignment"`
	DominantBasis []int    `json:"dominant_basis"`
	KMeansSizes   []int    `json:"kmeans_sizes"`
	NMFIterations int      `json:"nmf_iterations"`
}

func snapshotModel(res *Result) goldenModel {
	labels := make([]string, len(res.ClusterLabels))
	for i, r := range res.ClusterLabels {
		labels[i] = r.String()
	}
	return goldenModel{
		Towers:        res.Dataset.NumTowers(),
		Slots:         res.Dataset.NumSlots(),
		OptimalK:      res.OptimalK,
		ClusterSizes:  res.Assignment.Sizes(),
		ClusterLabels: labels,
		Assignment:    res.Assignment.Labels,
		DominantBasis: res.DominantBasis,
		KMeansSizes:   res.KMeans.Assignment.Sizes(),
		NMFIterations: res.NMF.Iterations,
	}
}

// TestGoldenEndToEnd is the regression net over the full paper pipeline:
// seeded city → vectorisation → clustering → metric tuner → NMF → k-means
// → labelling, compared field by field against a checked-in fixture. Any
// refactor that changes what the pipeline decides — not just how fast it
// decides it — fails here. Regenerate deliberately with -update.
func TestGoldenEndToEnd(t *testing.T) {
	city, ds := goldenCity(t)
	res, err := Analyze(ds, city.POIs, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotModel(res)

	path := filepath.Join("testdata", "golden_city.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	var want goldenModel
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden fixture: %v", err)
	}
	if got.Towers != want.Towers || got.Slots != want.Slots {
		t.Fatalf("dataset shape %dx%d, golden %dx%d", got.Towers, got.Slots, want.Towers, want.Slots)
	}
	if got.OptimalK != want.OptimalK {
		t.Errorf("metric tuner picked K=%d, golden %d", got.OptimalK, want.OptimalK)
	}
	if !reflect.DeepEqual(got.ClusterSizes, want.ClusterSizes) {
		t.Errorf("cluster sizes %v, golden %v", got.ClusterSizes, want.ClusterSizes)
	}
	if !reflect.DeepEqual(got.ClusterLabels, want.ClusterLabels) {
		t.Errorf("land-use labels %v, golden %v", got.ClusterLabels, want.ClusterLabels)
	}
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		t.Errorf("cluster assignment diverged from golden fixture")
	}
	if !reflect.DeepEqual(got.DominantBasis, want.DominantBasis) {
		t.Errorf("NMF dominant-basis assignment diverged from golden fixture")
	}
	if !reflect.DeepEqual(got.KMeansSizes, want.KMeansSizes) {
		t.Errorf("k-means baseline sizes %v, golden %v", got.KMeansSizes, want.KMeansSizes)
	}
	if got.NMFIterations != want.NMFIterations {
		t.Errorf("NMF converged in %d iterations, golden %d", got.NMFIterations, want.NMFIterations)
	}
}

// TestAnalyzeBitIdenticalAcrossWorkers is the determinism acceptance test:
// same seed ⇒ same labels, assignments, factors and baselines for every
// Workers value.
func TestAnalyzeBitIdenticalAcrossWorkers(t *testing.T) {
	city, ds := goldenCity(t)
	opts := goldenOptions()
	opts.Workers = 1
	serial, err := Analyze(ds, city.POIs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		opts.Workers = workers
		par, err := Analyze(ds, city.POIs, opts)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.Assignment, serial.Assignment) {
			t.Errorf("workers %d: cluster assignment differs from serial run", workers)
		}
		if !reflect.DeepEqual(par.Dendrogram, serial.Dendrogram) {
			t.Errorf("workers %d: dendrogram differs from serial run", workers)
		}
		if !reflect.DeepEqual(par.ClusterLabels, serial.ClusterLabels) {
			t.Errorf("workers %d: land-use labels differ from serial run", workers)
		}
		if !reflect.DeepEqual(par.DominantBasis, serial.DominantBasis) {
			t.Errorf("workers %d: NMF dominant basis differs from serial run", workers)
		}
		if !reflect.DeepEqual(par.NMF.W.Data, serial.NMF.W.Data) || !reflect.DeepEqual(par.NMF.H.Data, serial.NMF.H.Data) {
			t.Errorf("workers %d: NMF factors differ from serial run", workers)
		}
		if !reflect.DeepEqual(par.KMeans, serial.KMeans) {
			t.Errorf("workers %d: k-means baseline differs from serial run", workers)
		}
	}
}
