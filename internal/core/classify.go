package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/urban"
)

// Classification is the outcome of assigning a new tower to one of the
// discovered traffic patterns.
type Classification struct {
	// Cluster is the index of the nearest pattern.
	Cluster int
	// Region is the functional region of that pattern.
	Region urban.Region
	// Distance is the Euclidean distance between the tower's normalised
	// vector and the pattern centroid.
	Distance float64
	// Margin is the gap between the distance to the second-nearest
	// centroid and Distance; small margins mean the tower sits near a
	// boundary between patterns (typically a mixed-function area).
	Margin float64
}

// ErrNotComparable is returned when a traffic vector cannot be compared to
// the model's patterns.
var ErrNotComparable = errors.New("core: traffic vector not comparable to the model")

// ClassifyTraffic assigns a new tower's traffic to the nearest discovered
// pattern — the operation an ISP performs when a tower is deployed after
// the model was built. The vector must cover the same slots as the model's
// dataset (same slot width and number of slots); it is z-score normalised
// internally, so raw byte counts can be passed directly.
func (r *Result) ClassifyTraffic(traffic linalg.Vector) (*Classification, error) {
	if len(r.Clusters) == 0 {
		return nil, errors.New("core: result has no clusters")
	}
	if len(traffic) != r.Dataset.NumSlots() {
		return nil, fmt.Errorf("%w: vector has %d slots, model expects %d", ErrNotComparable, len(traffic), r.Dataset.NumSlots())
	}
	if !traffic.IsFinite() {
		return nil, fmt.Errorf("%w: vector contains non-finite values", ErrNotComparable)
	}
	normalized := linalg.ZScoreNormalize(traffic)

	best, second := math.Inf(1), math.Inf(1)
	bestIdx := -1
	for i, view := range r.Clusters {
		if len(view.Members) == 0 {
			continue
		}
		d, err := linalg.Distance(normalized, view.Centroid)
		if err != nil {
			return nil, err
		}
		switch {
		case d < best:
			second = best
			best = d
			bestIdx = i
		case d < second:
			second = d
		}
	}
	if bestIdx < 0 {
		return nil, errors.New("core: all clusters are empty")
	}
	margin := 0.0
	if !math.IsInf(second, 1) {
		margin = second - best
	}
	return &Classification{
		Cluster:  bestIdx,
		Region:   r.Clusters[bestIdx].Region,
		Distance: best,
		Margin:   margin,
	}, nil
}

// ClassifyAll classifies a batch of traffic vectors.
func (r *Result) ClassifyAll(traffic []linalg.Vector) ([]*Classification, error) {
	out := make([]*Classification, len(traffic))
	for i, v := range traffic {
		c, err := r.ClassifyTraffic(v)
		if err != nil {
			return nil, fmt.Errorf("core: classifying vector %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}
