// Package core ties the individual stages of the reproduction together into
// the model the paper describes: a three-dimensional view of cellular
// traffic combining time (traffic patterns from hierarchical clustering),
// location (urban functional region labels from POI context), and frequency
// (the three principal spectral components and the four primary components
// every tower decomposes into).
//
// The entry point is Analyze, which takes a vectorised dataset (from
// package pipeline) plus the POI inventory of the city and produces a
// Result carrying every artefact needed to regenerate the paper's tables
// and figures.
//
// AnalyzeContext and AnalyzeSourceContext are the cancellable forms:
// ctx is observed between pipeline stages and inside every parallel
// kernel (clustering, k-means, NMF, batch FFT), worker pools drain
// before the call returns, and a panic in any pool worker comes back as
// a *panicsafe.Error rather than crashing the process. Analyze and
// AnalyzeSource remain as context.Background() wrappers.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dsp"
	"repro/internal/freqdomain"
	"repro/internal/label"
	"repro/internal/linalg"
	"repro/internal/nmf"
	"repro/internal/pipeline"
	"repro/internal/poi"
	"repro/internal/timedomain"
	"repro/internal/urban"
)

// NMFRankAuto asks the NMF stage to use the selected cluster count as the
// factorisation rank (one basis pattern per traffic pattern).
const NMFRankAuto = -1

// Precision selects the numeric tier of the modeling stage — the element
// type of the distance, k-means and NMF kernels.
type Precision int

const (
	// Float64 is the default full-precision tier. Results are
	// bit-identical run to run and across worker counts.
	Float64 Precision = iota
	// Float32 is the opt-in fast tier: the bandwidth-bound kernels
	// (condensed distances, k-means assignment, NMF updates, validity
	// indices) run on float32 narrowings of the traffic matrices, halving
	// their memory traffic. The agglomeration logic, index statistics and
	// all reported values stay float64, so modeling DECISIONS — merges,
	// cluster counts, labels — track the Float64 tier; only low-order
	// digits of reported distances/errors move. The FFT stage always runs
	// in float64. Still deterministic across worker counts.
	Float32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("precision(%d)", int(p))
	}
}

// Options configure the end-to-end analysis. The zero value is usable and
// matches the paper's configuration where applicable.
type Options struct {
	// Linkage is the hierarchical clustering linkage (default average,
	// matching the paper).
	Linkage cluster.Linkage
	// MinClusters and MaxClusters bound the Davies–Bouldin sweep of the
	// metric tuner (defaults 2 and 10).
	MinClusters, MaxClusters int
	// ForceK skips the metric tuner and cuts the dendrogram into exactly
	// ForceK clusters. Zero lets the Davies–Bouldin index choose.
	ForceK int
	// POIRadiusMeters is the POI counting radius around each tower
	// (default 200, as in the paper).
	POIRadiusMeters float64
	// SmoothWindowSlots is the moving-average window applied to daily
	// profiles before extracting peaks and valleys (default 3 slots).
	SmoothWindowSlots int
	// RepOptions tune the representative-tower search of the
	// frequency-domain stage.
	RepOptions freqdomain.RepOptions
	// CleanWindow bounds the streaming cleaner's dedup state when the
	// pipeline is entered through AnalyzeSource: state is kept for at
	// least the most recent CleanWindow records (see
	// trace.NewCleanerWindow). Zero keeps exact, unbounded dedup state
	// (~40 bytes per distinct connection). Ignored by Analyze, which
	// takes an already-vectorised dataset.
	CleanWindow int
	// Workers bounds the goroutines of the modeling stage — the
	// hierarchical clustering distance matrix, the metric tuner's
	// Davies–Bouldin kernels, the NMF multiplicative updates and the
	// k-means baseline (≤ 0 means GOMAXPROCS). The stage is
	// deterministic: for a fixed Seed, every Workers value produces
	// bit-identical assignments, factors and labels.
	Workers int
	// Seed drives the stochastic modeling components: the NMF random
	// initialisation and the k-means++ restarts.
	Seed int64
	// NMFRank enables the NMF decomposition stage on the raw traffic
	// matrix: a positive value is used as the rank directly, NMFRankAuto
	// (-1) uses the selected cluster count, and 0 (the zero value) skips
	// the stage.
	NMFRank int
	// KMeansRestarts enables the k-means baseline at the selected cluster
	// count with this many restarts. 0 (the zero value) skips it.
	KMeansRestarts int
	// Precision selects the numeric tier of the modeling kernels
	// (default Float64; see Precision).
	Precision Precision
}

func (o Options) withDefaults() Options {
	if o.MinClusters <= 1 {
		o.MinClusters = 2
	}
	if o.MaxClusters <= 0 {
		o.MaxClusters = 10
	}
	if o.POIRadiusMeters <= 0 {
		o.POIRadiusMeters = poi.DefaultRadiusMeters
	}
	if o.SmoothWindowSlots <= 0 {
		o.SmoothWindowSlots = 3
	}
	return o
}

// ClusterView bundles everything the model knows about one traffic-pattern
// cluster.
type ClusterView struct {
	// Index is the cluster label in the assignment.
	Index int
	// Region is the urban functional region attached by the labeller.
	Region urban.Region
	// Members are the dataset rows in this cluster.
	Members []int
	// Share is the fraction of towers in this cluster (Table 1).
	Share float64
	// Centroid is the centroid of the members' normalised traffic vectors.
	Centroid linalg.Vector
	// AggregateRaw is the summed raw traffic of the members.
	AggregateRaw linalg.Vector
	// TimeSummary holds the Table 4/5 statistics of the aggregate traffic.
	TimeSummary timedomain.PatternSummary
	// AveragedPOI is the Table 3 row of this cluster.
	AveragedPOI poi.Counts
	// Representative is the dataset row of the most representative tower
	// (Section 5.2), or -1.
	Representative int
}

// Result is the full outcome of the analysis.
type Result struct {
	// Dataset is the input dataset (not copied).
	Dataset *pipeline.Dataset
	// Dendrogram is the full merge tree of the pattern identifier.
	Dendrogram *cluster.Dendrogram
	// Assignment maps dataset rows to cluster labels.
	Assignment *cluster.Assignment
	// DBICurve is the metric tuner's Davies–Bouldin sweep (Figure 6a).
	DBICurve []cluster.DBICurvePoint
	// OptimalK is the cluster count selected by the metric tuner (or
	// ForceK when set).
	OptimalK int
	// Clusters describes each cluster; index matches assignment labels.
	Clusters []ClusterView
	// ClusterLabels[c] is the functional region of cluster c.
	ClusterLabels []urban.Region
	// TowerRegions[i] is the functional region inferred for dataset row i.
	TowerRegions []urban.Region
	// TowerPOI[i] is the raw POI count around dataset row i's tower.
	TowerPOI []poi.Counts
	// Features[i] is the frequency-domain feature of dataset row i.
	Features []freqdomain.Features
	// Clock converts dataset slots to wall-clock time.
	Clock timedomain.Clock
	// Labeling carries the full labelling diagnostics (Table 3 matrix,
	// dominance).
	Labeling *label.Result
	// NMF is the non-negative factorisation of the raw traffic matrix,
	// present only when Options.NMFRank enabled the stage.
	NMF *nmf.Result
	// DominantBasis[i] is the largest-weight NMF basis of dataset row i —
	// the hard clustering induced by the factorisation. Nil unless the NMF
	// stage ran.
	DominantBasis []int
	// KMeans is the k-means baseline at the selected cluster count,
	// present only when Options.KMeansRestarts enabled it.
	KMeans *cluster.KMeansResult
}

// Analyze runs the full pipeline on a vectorised dataset: clustering with
// the metric tuner, POI labelling, time-domain characterisation and
// frequency-domain feature extraction.
func Analyze(ds *pipeline.Dataset, pois []poi.POI, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), ds, pois, opts)
}

// AnalyzeContext is Analyze with cancellation threaded through every
// modeling stage: the clustering distance kernels, the metric tuner's
// per-K sweep, the NMF update iterations and the k-means restarts all
// observe ctx at their natural work boundaries, and a cancelled analysis
// returns ctx.Err() (possibly wrapped with the failing stage) with every
// worker pool drained. A Background context costs nothing.
func AnalyzeContext(ctx context.Context, ds *pipeline.Dataset, pois []poi.POI, opts Options) (*Result, error) {
	if ds == nil {
		return nil, errors.New("core: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid dataset: %w", err)
	}
	opts = opts.withDefaults()
	if ds.Days%7 != 0 {
		return nil, fmt.Errorf("core: dataset covers %d days; whole weeks are required for frequency analysis", ds.Days)
	}
	switch opts.Precision {
	case Float64:
	case Float32:
		// Narrow the traffic matrices once; every float32 kernel below
		// reads these backings.
		if err := ds.EnsureFloat32(); err != nil {
			return nil, fmt.Errorf("core: float32 backings: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown precision %v", opts.Precision)
	}
	f32 := opts.Precision == Float32
	done := ctx.Done()
	// Serial stages between the cancellable kernels check ctx here, so a
	// cancelled analysis cannot start a new stage.
	stageCheck := func() error {
		if done != nil {
			return ctx.Err()
		}
		return nil
	}

	clock := timedomain.Clock{Start: ds.Start, SlotMinutes: ds.SlotMinutes}

	// Pattern identifier: hierarchical clustering of normalised vectors
	// (condensed NN-chain engine, distance matrix parallelised across
	// opts.Workers goroutines). The float32 tier computes the condensed
	// distances on the narrowed backing; the agglomeration is float64
	// either way.
	var (
		dendro *cluster.Dendrogram
		err    error
	)
	if f32 {
		dendro, err = cluster.HierarchicalMatCtx(ctx, ds.NormalizedMatrix32, opts.Linkage, opts.Workers)
	} else {
		dendro, err = cluster.HierarchicalWorkersCtx(ctx, ds.Normalized, opts.Linkage, opts.Workers)
	}
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}

	// Metric tuner: Davies–Bouldin sweep (unless K is forced).
	maxK := opts.MaxClusters
	if maxK > ds.NumTowers() {
		maxK = ds.NumTowers()
	}
	minK := opts.MinClusters
	if minK > maxK {
		minK = maxK
	}
	var (
		curve []cluster.DBICurvePoint
		k     int
	)
	if opts.ForceK > 0 {
		k = opts.ForceK
		if k > ds.NumTowers() {
			return nil, fmt.Errorf("core: ForceK=%d exceeds %d towers", opts.ForceK, ds.NumTowers())
		}
		if minK >= 2 && maxK >= minK && ds.NumTowers() > maxK {
			// Still compute the curve for reporting when feasible.
			if f32 {
				curve, err = cluster.DBICurveMatCtx(ctx, ds.NormalizedMatrix32, dendro, minK, maxK, opts.Workers)
			} else {
				curve, err = cluster.DBICurveCtx(ctx, ds.Normalized, dendro, minK, maxK, opts.Workers)
			}
			if err != nil {
				return nil, fmt.Errorf("core: DBI curve: %w", err)
			}
		}
	} else {
		if f32 {
			k, curve, err = cluster.OptimalKMatCtx(ctx, ds.NormalizedMatrix32, dendro, minK, maxK, opts.Workers)
		} else {
			k, curve, err = cluster.OptimalKCtx(ctx, ds.Normalized, dendro, minK, maxK, opts.Workers)
		}
		if err != nil {
			return nil, fmt.Errorf("core: metric tuner: %w", err)
		}
	}
	assign, err := dendro.CutK(k)
	if err != nil {
		return nil, fmt.Errorf("core: cutting dendrogram: %w", err)
	}

	// Optional decomposition models, both deterministic under opts.Seed
	// for any opts.Workers value: NMF basis extraction on the raw traffic
	// matrix (the related-work baseline the paper's convex combination is
	// compared against) and the k-means baseline at the selected K.
	var (
		nmfRes        *nmf.Result
		dominantBasis []int
		kmRes         *cluster.KMeansResult
	)
	if opts.NMFRank != 0 {
		rank := opts.NMFRank
		if rank == NMFRankAuto {
			rank = k
			if rank > ds.NumSlots() {
				rank = ds.NumSlots()
			}
		}
		nmfOpts := nmf.Options{
			Rank:    rank,
			Seed:    opts.Seed,
			Workers: opts.Workers,
		}
		if f32 {
			nmfRes, err = nmf.FactorizeMatContext(ctx, ds.RawMatrix32, nmfOpts)
		} else {
			nmfRes, err = nmf.FactorizeContext(ctx, ds.Raw, nmfOpts)
		}
		if err != nil {
			return nil, fmt.Errorf("core: NMF decomposition: %w", err)
		}
		dominantBasis = nmfRes.DominantBasis()
	}
	if opts.KMeansRestarts > 0 {
		kmOpts := cluster.KMeansOptions{
			K:        k,
			Seed:     opts.Seed,
			Restarts: opts.KMeansRestarts,
			Workers:  opts.Workers,
		}
		if f32 {
			kmRes, err = cluster.KMeansMatCtx(ctx, ds.NormalizedMatrix32, kmOpts)
		} else {
			kmRes, err = cluster.KMeansCtx(ctx, ds.Normalized, kmOpts)
		}
		if err != nil {
			return nil, fmt.Errorf("core: k-means baseline: %w", err)
		}
	}

	// Geographical context: POI counting and cluster labelling.
	if err := stageCheck(); err != nil {
		return nil, err
	}
	counter, err := poi.NewCounter(pois, opts.POIRadiusMeters)
	if err != nil {
		return nil, fmt.Errorf("core: indexing POIs: %w", err)
	}
	towerPOI := counter.CountAll(ds.Locations, opts.POIRadiusMeters)
	members := assign.Members()
	labeling, err := label.LabelClusters(towerPOI, members)
	if err != nil {
		return nil, fmt.Errorf("core: labelling clusters: %w", err)
	}
	towerRegions, err := label.TowerLabels(labeling.Labels, assign.Labels)
	if err != nil {
		return nil, fmt.Errorf("core: expanding labels: %w", err)
	}

	// Frequency-domain features and representative towers. One FFT plan is
	// built (or drawn from the pool) for the dataset's slot count and
	// threaded through every spectral stage.
	if err := stageCheck(); err != nil {
		return nil, err
	}
	plan, err := dsp.AcquirePlan(ds.NumSlots())
	if err != nil {
		return nil, fmt.Errorf("core: FFT plan: %w", err)
	}
	defer plan.Release()
	features, err := freqdomain.ExtractPlanContext(ctx, plan, ds.Normalized, ds.Days)
	if err != nil {
		return nil, fmt.Errorf("core: frequency features: %w", err)
	}
	reps, err := freqdomain.RepresentativeTowers(features, assign, opts.RepOptions)
	if err != nil {
		return nil, fmt.Errorf("core: representative towers: %w", err)
	}

	// Per-cluster views.
	centroids, err := cluster.Centroids(ds.Normalized, assign)
	if err != nil {
		return nil, fmt.Errorf("core: centroids: %w", err)
	}
	clusters := make([]ClusterView, assign.K)
	for c := 0; c < assign.K; c++ {
		view := ClusterView{
			Index:          c,
			Region:         labeling.Labels[c],
			Members:        members[c],
			Share:          float64(len(members[c])) / float64(ds.NumTowers()),
			Centroid:       centroids[c],
			Representative: reps[c],
			AveragedPOI:    labeling.AveragedPOI[c],
		}
		if len(members[c]) > 0 {
			agg, err := ds.AggregateRaw(members[c])
			if err != nil {
				return nil, fmt.Errorf("core: aggregating cluster %d: %w", c, err)
			}
			view.AggregateRaw = agg
			summary, err := timedomain.Summarize(agg, clock, opts.SmoothWindowSlots)
			if err != nil {
				return nil, fmt.Errorf("core: summarising cluster %d: %w", c, err)
			}
			view.TimeSummary = summary
		}
		clusters[c] = view
	}

	return &Result{
		Dataset:       ds,
		Dendrogram:    dendro,
		Assignment:    assign,
		DBICurve:      curve,
		OptimalK:      k,
		Clusters:      clusters,
		ClusterLabels: labeling.Labels,
		TowerRegions:  towerRegions,
		TowerPOI:      towerPOI,
		Features:      features,
		Clock:         clock,
		Labeling:      labeling,
		NMF:           nmfRes,
		DominantBasis: dominantBasis,
		KMeans:        kmRes,
	}, nil
}

// ClusterByRegion returns the cluster view labelled with the given region,
// or an error if no cluster carries that label. When several clusters share
// the label (possible for comprehensive), the largest is returned.
func (r *Result) ClusterByRegion(region urban.Region) (*ClusterView, error) {
	best := -1
	for i, c := range r.Clusters {
		if c.Region != region {
			continue
		}
		if best == -1 || len(c.Members) > len(r.Clusters[best].Members) {
			best = i
		}
	}
	if best == -1 {
		return nil, fmt.Errorf("core: no cluster labelled %v", region)
	}
	return &r.Clusters[best], nil
}

// PrimaryComponents returns the frequency features of the representative
// towers of the four primary regions in canonical order (resident,
// transport, office, entertainment). It fails if any primary region is
// missing from the labelling.
func (r *Result) PrimaryComponents() ([]freqdomain.Features, error) {
	out := make([]freqdomain.Features, 0, len(urban.PrimaryRegions))
	for _, region := range urban.PrimaryRegions {
		view, err := r.ClusterByRegion(region)
		if err != nil {
			return nil, err
		}
		if view.Representative < 0 || view.Representative >= len(r.Features) {
			return nil, fmt.Errorf("core: cluster %v has no representative tower", region)
		}
		out = append(out, r.Features[view.Representative])
	}
	return out, nil
}

// DecomposeTower expresses dataset row i as a convex combination of the
// four primary components (Section 5.3) and returns the decomposition plus
// the tower's NTF-IDF for comparison (Table 6).
func (r *Result) DecomposeTower(row int) (*freqdomain.Decomposition, poi.Counts, error) {
	if row < 0 || row >= len(r.Features) {
		return nil, poi.Counts{}, fmt.Errorf("core: row %d out of range [0,%d)", row, len(r.Features))
	}
	primaries, err := r.PrimaryComponents()
	if err != nil {
		return nil, poi.Counts{}, err
	}
	dec, err := freqdomain.Decompose(r.Features[row], primaries)
	if err != nil {
		return nil, poi.Counts{}, err
	}
	ntf, err := poi.NTFIDF(r.TowerPOI)
	if err != nil {
		return nil, poi.Counts{}, err
	}
	return dec, ntf[row], nil
}
