package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/synth"
)

func TestClassifyTrafficRecoversOwnTowers(t *testing.T) {
	city, ds, res := buildShared(t)
	_ = city
	// Classifying the raw traffic of existing towers must put almost all of
	// them back into their own cluster.
	correct := 0
	sample := 0
	for row := 0; row < ds.NumTowers(); row += 3 {
		c, err := res.ClassifyTraffic(ds.Raw[row])
		if err != nil {
			t.Fatal(err)
		}
		if c.Cluster == res.Assignment.Labels[row] {
			correct++
		}
		if c.Distance < 0 || math.IsNaN(c.Distance) || c.Margin < 0 {
			t.Fatalf("degenerate classification %+v", c)
		}
		sample++
	}
	if frac := float64(correct) / float64(sample); frac < 0.95 {
		t.Errorf("self-classification accuracy = %g, want > 0.95", frac)
	}
}

func TestClassifyTrafficNewTower(t *testing.T) {
	city, ds, res := buildShared(t)
	// Generate a brand-new city with the same configuration but a different
	// seed; its towers were never seen by the model, yet their ground-truth
	// region should usually match the classified pattern's region.
	cfg := city.Config
	cfg.Seed = 12345
	fresh, err := synth.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freshDS, err := fresh.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	truth, err := fresh.GroundTruthRegions(freshDS)
	if err != nil {
		t.Fatal(err)
	}
	if freshDS.NumSlots() != ds.NumSlots() {
		t.Fatal("fresh dataset has a different shape")
	}
	correct, total := 0, 0
	for row := 0; row < freshDS.NumTowers(); row += 5 {
		c, err := res.ClassifyTraffic(freshDS.Raw[row])
		if err != nil {
			t.Fatal(err)
		}
		total++
		if c.Region == truth[row] {
			correct++
		}
	}
	if frac := float64(correct) / float64(total); frac < 0.7 {
		t.Errorf("new-tower classification accuracy = %g, want > 0.7", frac)
	}
}

func TestClassifyTrafficErrors(t *testing.T) {
	_, ds, res := buildShared(t)
	if _, err := res.ClassifyTraffic(make(linalg.Vector, 10)); !errors.Is(err, ErrNotComparable) {
		t.Errorf("wrong length: %v", err)
	}
	bad := make(linalg.Vector, ds.NumSlots())
	bad[0] = math.NaN()
	if _, err := res.ClassifyTraffic(bad); !errors.Is(err, ErrNotComparable) {
		t.Errorf("NaN vector: %v", err)
	}
	empty := &Result{}
	if _, err := empty.ClassifyTraffic(bad); err == nil {
		t.Error("result without clusters should fail")
	}
}

func TestClassifyAll(t *testing.T) {
	_, ds, res := buildShared(t)
	batch := []linalg.Vector{ds.Raw[0], ds.Raw[1]}
	out, err := res.ClassifyAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("classified %d vectors", len(out))
	}
	if _, err := res.ClassifyAll([]linalg.Vector{{1}}); err == nil {
		t.Error("bad batch member should fail")
	}
}
