package core

import (
	"bytes"
	"testing"

	"repro/internal/label"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestEndToEndFromRawLogs exercises the complete slow path of the system:
// synthetic CDR emission (with duplicates and conflicts), CSV round trip,
// cleaning, address resolution through the geocoder, record vectorisation,
// clustering, labelling and decomposition — the path a user with an actual
// log archive would follow via cmd/gentrace + cmd/analyze.
func TestEndToEndFromRawLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end log path is slow; skipped with -short")
	}
	cfg := synth.SmallConfig()
	cfg.Towers = 80
	cfg.Users = 500
	cfg.Days = 7
	cfg.Seed = 9
	city, err := synth.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, err := city.GenerateSeries()
	if err != nil {
		t.Fatal(err)
	}
	records, err := city.GenerateLogs(series, synth.LogOptions{MaxRecordsPerSlot: 2})
	if err != nil {
		t.Fatal(err)
	}

	// CSV round trip, as the logs would be stored on disk.
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	parsed, skipped, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d rows of freshly written CSV", skipped)
	}

	// Preprocessing: clean, resolve addresses, vectorise.
	cleaned, stats := trace.Clean(parsed)
	if stats.Duplicates == 0 && stats.Conflicts == 0 {
		t.Error("expected the generator to inject redundant or conflicting logs")
	}
	towers, err := trace.ResolveTowers(cleaned, city.Geocoder)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range towers {
		if !info.Resolved {
			t.Errorf("tower %d address %q failed to geocode", info.TowerID, info.Address)
		}
	}
	ds, err := pipeline.VectorizeRecords(cleaned, towers, pipeline.VectorizerOptions{
		Start:       cfg.Start,
		Days:        cfg.Days,
		SlotMinutes: cfg.SlotMinutes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != cfg.Towers {
		t.Fatalf("vectorised %d towers, want %d", ds.NumTowers(), cfg.Towers)
	}

	// The vectorised logs must agree with the direct series path.
	direct, err := city.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumTowers(); i++ {
		directRow := direct.RowByTowerID(ds.TowerIDs[i])
		if directRow < 0 {
			t.Fatalf("tower %d missing from direct dataset", ds.TowerIDs[i])
		}
		logSum := ds.Raw[i].Sum()
		directSum := direct.Raw[directRow].Sum()
		if logSum != directSum {
			t.Errorf("tower %d: log-path bytes %g != series-path bytes %g", ds.TowerIDs[i], logSum, directSum)
		}
	}

	// Full analysis on the log-derived dataset recovers the regions.
	res, err := Analyze(ds, city.POIs, Options{ForceK: 5})
	if err != nil {
		t.Fatal(err)
	}
	truthByID := make(map[int]int)
	for _, tw := range city.Towers {
		truthByID[tw.ID] = int(tw.Region)
	}
	truth := make([]int, ds.NumTowers())
	truthRegions := make([]synth.Region, ds.NumTowers())
	for i, id := range ds.TowerIDs {
		truth[i] = truthByID[id]
		truthRegions[i] = synth.Region(truthByID[id])
	}
	overall, _, err := label.Accuracy(res.TowerRegions, truthRegions)
	if err != nil {
		t.Fatal(err)
	}
	if overall < 0.7 {
		t.Errorf("log-path label accuracy = %g, want > 0.7", overall)
	}
	// Decomposition works on the log-derived dataset too.
	if _, _, err := res.DecomposeTower(0); err != nil {
		t.Errorf("decomposition on log-derived dataset: %v", err)
	}
	// POI counts should be populated for most towers.
	withPOI := 0
	for _, c := range res.TowerPOI {
		if c.Total() > 0 {
			withPOI++
		}
	}
	if withPOI < ds.NumTowers()/2 {
		t.Errorf("only %d of %d towers have POIs nearby", withPOI, ds.NumTowers())
	}
}
