package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/label"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/urban"
)

// testCity builds a small but realistic synthetic city and its dataset.
// Kept module-level so multiple tests reuse the same expensive setup.
var (
	sharedCity    *synth.City
	sharedDataset *pipeline.Dataset
	sharedResult  *Result
)

func buildShared(t *testing.T) (*synth.City, *pipeline.Dataset, *Result) {
	t.Helper()
	if sharedResult != nil {
		return sharedCity, sharedDataset, sharedResult
	}
	cfg := synth.SmallConfig()
	cfg.Towers = 150
	cfg.Days = 14
	cfg.Seed = 5
	city, err := synth.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := city.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(ds, city.POIs, Options{ForceK: 5})
	if err != nil {
		t.Fatal(err)
	}
	sharedCity, sharedDataset, sharedResult = city, ds, res
	return city, ds, res
}

func TestAnalyzeEndToEnd(t *testing.T) {
	city, ds, res := buildShared(t)
	if res.OptimalK != 5 {
		t.Fatalf("OptimalK = %d, want 5 (forced)", res.OptimalK)
	}
	if res.Assignment.K != 5 || len(res.Clusters) != 5 {
		t.Fatalf("clusters = %d, want 5", res.Assignment.K)
	}
	if len(res.TowerRegions) != ds.NumTowers() || len(res.Features) != ds.NumTowers() {
		t.Fatal("per-tower outputs have wrong length")
	}
	// Shares sum to one.
	var total float64
	for _, c := range res.Clusters {
		total += c.Share
		if len(c.Members) > 0 && len(c.AggregateRaw) != ds.NumSlots() {
			t.Errorf("cluster %d aggregate has %d slots", c.Index, len(c.AggregateRaw))
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %g", total)
	}
	// All four primary regions plus comprehensive should be among labels.
	seen := make(map[urban.Region]bool)
	for _, l := range res.ClusterLabels {
		seen[l] = true
	}
	for _, r := range urban.PrimaryRegions {
		if !seen[r] {
			t.Errorf("no cluster labelled %v", r)
		}
	}
	// The recovered clustering should align well with ground truth.
	truth, err := city.GroundTruthRegions(ds)
	if err != nil {
		t.Fatal(err)
	}
	truthInts := make([]int, len(truth))
	for i, r := range truth {
		truthInts[i] = int(r)
	}
	_, purity, err := cluster.PurityAgainstTruth(res.Assignment, truthInts)
	if err != nil {
		t.Fatal(err)
	}
	if purity < 0.7 {
		t.Errorf("cluster purity vs ground truth = %g, want > 0.7", purity)
	}
	// Label accuracy against ground truth.
	overall, _, err := label.Accuracy(res.TowerRegions, truth)
	if err != nil {
		t.Fatal(err)
	}
	if overall < 0.6 {
		t.Errorf("label accuracy = %g, want > 0.6", overall)
	}
}

func TestAnalyzeMetricTunerPicksAroundFive(t *testing.T) {
	city, ds, _ := buildShared(t)
	_ = city
	res, err := Analyze(ds, city.POIs, Options{MinClusters: 2, MaxClusters: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalK < 3 || res.OptimalK > 8 {
		t.Errorf("metric tuner chose K=%d, expected a small number of patterns", res.OptimalK)
	}
	if len(res.DBICurve) != 7 {
		t.Errorf("DBI curve has %d points, want 7", len(res.DBICurve))
	}
}

func TestClusterByRegionAndPrimaries(t *testing.T) {
	_, _, res := buildShared(t)
	office, err := res.ClusterByRegion(urban.Office)
	if err != nil {
		t.Fatal(err)
	}
	if office.Region != urban.Office {
		t.Errorf("ClusterByRegion returned %v", office.Region)
	}
	primaries, err := res.PrimaryComponents()
	if err != nil {
		t.Fatal(err)
	}
	if len(primaries) != 4 {
		t.Fatalf("primaries = %d, want 4", len(primaries))
	}
	// The office pattern has a much stronger weekly component than the
	// resident pattern (Figure 15a / 16a).
	resident, err := res.ClusterByRegion(urban.Resident)
	if err != nil {
		t.Fatal(err)
	}
	officeWeekly := res.Features[office.Representative].AmpWeek
	residentWeekly := res.Features[resident.Representative].AmpWeek
	if officeWeekly <= residentWeekly {
		t.Errorf("office weekly amplitude (%g) should exceed resident (%g)", officeWeekly, residentWeekly)
	}
}

func TestDecomposeTower(t *testing.T) {
	_, ds, res := buildShared(t)
	// Decompose every comprehensive tower; coefficients must be a convex
	// combination.
	comp, err := res.ClusterByRegion(urban.Comprehensive)
	if err != nil {
		t.Skipf("no comprehensive cluster in this run: %v", err)
	}
	if len(comp.Members) == 0 {
		t.Skip("comprehensive cluster empty")
	}
	row := comp.Members[0]
	dec, ntf, err := res.DecomposeTower(row)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range dec.Coefficients {
		if c < -1e-9 {
			t.Errorf("negative coefficient %g", c)
		}
		sum += c
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("coefficients sum to %g", sum)
	}
	if ntf.Total() < 0 {
		t.Error("NTF-IDF should be non-negative")
	}
	if _, _, err := res.DecomposeTower(ds.NumTowers() + 5); err == nil {
		t.Error("out-of-range row should fail")
	}
	if _, _, err := res.DecomposeTower(-1); err == nil {
		t.Error("negative row should fail")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	city, ds, _ := buildShared(t)
	if _, err := Analyze(nil, city.POIs, Options{}); err == nil {
		t.Error("nil dataset should fail")
	}
	var empty pipeline.Dataset
	if _, err := Analyze(&empty, city.POIs, Options{}); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := Analyze(ds, city.POIs, Options{ForceK: 10_000}); err == nil {
		t.Error("ForceK larger than tower count should fail")
	}
	if _, err := Analyze(ds, city.POIs, Options{POIRadiusMeters: -5, ForceK: 5}); err == nil {
		// withDefaults replaces non-positive radius, so this should NOT fail;
		// assert the opposite.
		t.Log("negative radius replaced by default, as intended")
	}
	// A dataset with partial weeks is rejected (frequency bins undefined).
	cfg := synth.SmallConfig()
	cfg.Towers = 10
	cfg.Days = 10
	oddCity, err := synth.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, err := oddCity.GenerateSeries()
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]pipeline.SeriesInput, len(series))
	for i, s := range series {
		inputs[i] = pipeline.SeriesInput{TowerID: s.TowerID, Bytes: s.Bytes}
	}
	oddDS, err := pipeline.VectorizeSeries(inputs, pipeline.VectorizerOptions{
		Start: cfg.Start, Days: cfg.Days, SlotMinutes: cfg.SlotMinutes, KeepPartialWeeks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(oddDS, oddCity.POIs, Options{ForceK: 3}); err == nil {
		t.Error("partial-week dataset should fail")
	}
}

func TestClusterByRegionMissing(t *testing.T) {
	_, _, res := buildShared(t)
	fake := *res
	fake.Clusters = nil
	if _, err := fake.ClusterByRegion(urban.Office); err == nil {
		t.Error("missing region should fail")
	}
}
