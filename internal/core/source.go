package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/poi"
	"repro/internal/trace"
)

// AnalyzeSource runs the full pipeline straight from a record stream: the
// records are cleaned in a single pass by the streaming Cleaner, sharded
// into per-tower traffic vectors by the streaming vectorizer, and the
// resulting dataset is analysed exactly as Analyze would. At no point is
// the record slice materialised: the vectorizer holds O(towers × slots)
// accumulators, and the cleaner holds ~40 bytes per distinct connection
// key — or, with opts.CleanWindow set, a bounded O(window) of dedup
// state, which is what makes arbitrarily long traces ingestible (the
// shape the paper's Hadoop deployment relies on to process billions of
// logs).
//
// The whole chain is batch-wise: when src is batch-capable (the trace
// ingestion Scanner, a ParallelCSVSource, a synthetic LogStream), records
// move from the parser through the cleaner into the vectorizer's shard
// queues thousands at a time, and the per-record interface calls of the
// PR 1 design disappear. Scalar sources are adapted transparently.
//
// towers supplies the resolved tower locations (typically from
// trace.ReadTowersCSV); towers appearing in the stream but absent from it
// simply get a zero location, as with VectorizeRecords. The returned
// CleanStats describe what the streaming cleaner removed or amended.
func AnalyzeSource(src trace.Source, towers []trace.TowerInfo, pois []poi.POI, vopts pipeline.VectorizerOptions, opts Options) (*Result, trace.CleanStats, error) {
	return AnalyzeSourceContext(context.Background(), src, towers, pois, vopts, opts)
}

// AnalyzeSourceContext is AnalyzeSource with cancellation threaded
// through the whole chain: the streaming vectorizer observes ctx between
// source batches (and the cleaned source itself checks it between
// batches via trace.WithContext inside the vectorizer's read loop), and
// the modeling stages observe it as described on AnalyzeContext. On
// cancellation the returned CleanStats still describe the records
// cleaned up to that point.
func AnalyzeSourceContext(ctx context.Context, src trace.Source, towers []trace.TowerInfo, pois []poi.POI, vopts pipeline.VectorizerOptions, opts Options) (*Result, trace.CleanStats, error) {
	if src == nil {
		return nil, trace.CleanStats{}, errors.New("core: nil source")
	}
	cleaned := trace.CleanSourceWindow(src, opts.CleanWindow)
	ds, err := pipeline.VectorizeSourceContext(ctx, cleaned, towers, vopts)
	if err != nil {
		return nil, cleaned.Stats(), fmt.Errorf("core: vectorizing stream: %w", err)
	}
	res, err := AnalyzeContext(ctx, ds, pois, opts)
	if err != nil {
		return nil, cleaned.Stats(), err
	}
	return res, cleaned.Stats(), nil
}
