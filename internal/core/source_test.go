package core

import (
	"errors"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestAnalyzeSourceMatchesBatchPath checks that the fully streaming entry
// point (log source → streaming cleaner → sharded vectorizer → Analyze)
// produces the same analysis as the materialised batch path over the same
// synthetic city.
func TestAnalyzeSourceMatchesBatchPath(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming end-to-end path is slow; skipped with -short")
	}
	cfg := synth.SmallConfig()
	cfg.Towers = 60
	cfg.Users = 400
	cfg.Days = 7
	cfg.Seed = 3
	city, err := synth.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, err := city.GenerateSeries()
	if err != nil {
		t.Fatal(err)
	}
	vopts := pipeline.VectorizerOptions{
		Start:       cfg.Start,
		Days:        cfg.Days,
		SlotMinutes: cfg.SlotMinutes,
	}
	opts := Options{ForceK: 5}

	// Batch path.
	records, err := city.GenerateLogs(series, synth.LogOptions{MaxRecordsPerSlot: 2})
	if err != nil {
		t.Fatal(err)
	}
	cleaned, batchStats := trace.Clean(records)
	wantDS, err := pipeline.VectorizeRecords(cleaned, city.TowerInfos(), vopts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(wantDS, city.POIs, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Streaming path.
	src := city.LogSource(series, synth.LogOptions{MaxRecordsPerSlot: 2})
	defer src.Close()
	got, stats, err := AnalyzeSource(src, city.TowerInfos(), city.POIs, vopts, opts)
	if err != nil {
		t.Fatal(err)
	}

	if stats.Input != batchStats.Input || stats.Invalid != batchStats.Invalid ||
		stats.Duplicates != batchStats.Duplicates || stats.Conflicts != batchStats.Conflicts {
		t.Errorf("clean stats differ: stream %+v vs batch %+v", stats, batchStats)
	}
	if got.Dataset.NumTowers() != want.Dataset.NumTowers() {
		t.Fatalf("towers: %d vs %d", got.Dataset.NumTowers(), want.Dataset.NumTowers())
	}
	for i := range want.Dataset.Raw {
		for j := range want.Dataset.Raw[i] {
			if got.Dataset.Raw[i][j] != want.Dataset.Raw[i][j] {
				t.Fatalf("raw[%d][%d]: %g vs %g", i, j, got.Dataset.Raw[i][j], want.Dataset.Raw[i][j])
			}
		}
	}
	if got.OptimalK != want.OptimalK {
		t.Errorf("OptimalK: %d vs %d", got.OptimalK, want.OptimalK)
	}
	if len(got.Assignment.Labels) != len(want.Assignment.Labels) {
		t.Fatalf("assignment sizes differ")
	}
	for i := range want.Assignment.Labels {
		if got.Assignment.Labels[i] != want.Assignment.Labels[i] {
			t.Errorf("row %d assigned to cluster %d vs %d", i, got.Assignment.Labels[i], want.Assignment.Labels[i])
			break
		}
	}
	for c := range want.ClusterLabels {
		if got.ClusterLabels[c] != want.ClusterLabels[c] {
			t.Errorf("cluster %d labelled %v vs %v", c, got.ClusterLabels[c], want.ClusterLabels[c])
		}
	}
}

func TestAnalyzeSourceErrors(t *testing.T) {
	if _, _, err := AnalyzeSource(nil, nil, nil, pipeline.VectorizerOptions{}, Options{}); err == nil {
		t.Error("nil source should fail")
	}
	boom := errors.New("boom")
	src := trace.SourceFunc(func() (trace.Record, error) { return trace.Record{}, boom })
	if _, _, err := AnalyzeSource(src, nil, nil, pipeline.VectorizerOptions{}, Options{}); err == nil {
		t.Error("source error should fail the analysis")
	}
}
