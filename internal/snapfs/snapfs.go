// Package snapfs is the narrow filesystem surface the snapshot store
// writes through: temp-file creation, fsync, rename, read-back and
// directory listing. Production code uses OS (the real filesystem);
// chaos tests substitute a fault-injecting implementation (see
// internal/faultinject) to prove that short writes, failed renames and
// bit corruption during a snapshot never leave the service unable to
// restore an intact generation.
package snapfs

import (
	"io"
	"os"
)

// File is one writable snapshot temp file.
type File interface {
	io.Writer
	// Sync flushes the written bytes to stable storage.
	Sync() error
	Close() error
	// Name returns the file's path.
	Name() string
}

// FS is the filesystem surface of the snapshot store.
type FS interface {
	// CreateTemp creates a new unique temp file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not paths) in a directory.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs a directory so renamed entries are durable. Best
	// effort: implementations may ignore filesystems that reject it.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// SyncDir implements FS. Errors are swallowed: directory fsync is not
// portable, and the file data itself was already synced.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	d.Close()
	return nil
}
