package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// Centroids returns the centroid of each cluster of the assignment.
// Empty clusters get a zero vector.
func Centroids(points []linalg.Vector, a *Assignment) ([]linalg.Vector, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if len(a.Labels) != len(points) {
		return nil, fmt.Errorf("cluster: %d labels for %d points", len(a.Labels), len(points))
	}
	dim := len(points[0])
	out := make([]linalg.Vector, a.K)
	counts := make([]int, a.K)
	for i := range out {
		out[i] = make(linalg.Vector, dim)
	}
	for i, p := range points {
		l := a.Labels[i]
		if l < 0 || l >= a.K {
			return nil, fmt.Errorf("cluster: label %d out of range [0,%d)", l, a.K)
		}
		if err := out[l].AddInPlace(p); err != nil {
			return nil, err
		}
		counts[l]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i].ScaleInPlace(1 / float64(counts[i]))
		}
	}
	return out, nil
}

// DaviesBouldin computes the Davies–Bouldin index of the clustering, the
// metric-tuner criterion of Section 3.2:
//
//	DBI = (1/R) Σ_i max_{j≠i} (S_i + S_j) / M_ij
//
// where S_i is the average distance of cluster i's members to their
// centroid and M_ij the distance between the centroids of clusters i and
// j. Lower is better. Clusters with fewer than one member are skipped.
// The index is undefined for fewer than two non-empty clusters.
func DaviesBouldin(points []linalg.Vector, a *Assignment) (float64, error) {
	return DaviesBouldinWorkers(points, a, 0)
}

// DaviesBouldinWorkers is DaviesBouldin with an explicit bound on the
// goroutines of the blocked distance kernels (≤ 0 means GOMAXPROCS). The
// member-to-centroid and centroid-to-centroid distances both come from the
// Gram-trick kernels, so the index is bit-identical for any worker count;
// clusters whose centroids coincide bit-for-bit still divide by an exact
// zero and score +Inf, exactly as the per-pair form did.
func DaviesBouldinWorkers(points []linalg.Vector, a *Assignment, workers int) (float64, error) {
	centroids, err := Centroids(points, a)
	if err != nil {
		return 0, err
	}
	scatter, counts, err := clusterScatter(points, a, centroids)
	if err != nil {
		return 0, err
	}
	// Keep only non-empty clusters.
	var idx []int
	for i, c := range counts {
		if c > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return 0, errors.New("cluster: Davies-Bouldin needs at least two non-empty clusters")
	}
	// Centroid separations M_ij via the blocked symmetric kernel.
	cm, err := linalg.RowsMatrix(centroids)
	if err != nil {
		return 0, err
	}
	sep := linalg.NewMatrix(a.K, a.K)
	if err := linalg.PairwiseSquaredInto(sep, cm, nil, workers); err != nil {
		return 0, err
	}
	var sum float64
	for _, i := range idx {
		worst := math.Inf(-1)
		for _, j := range idx {
			if i == j {
				continue
			}
			m := math.Sqrt(sep.At(i, j))
			if m == 0 {
				// Coincident centroids: the ratio is unbounded; treat as a
				// very bad separation rather than dividing by zero.
				worst = math.Inf(1)
				continue
			}
			if r := (scatter[i] + scatter[j]) / m; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(len(idx)), nil
}

// clusterScatter returns S_i (mean member-to-centroid distance) and member
// counts per cluster. Each point needs only the distance to its ASSIGNED
// centroid, so this runs one Gram-trick dot per point — same operation
// sequence as the cross kernel (making coincident point/centroid pairs
// exactly zero) without computing the unused n×K remainder. The sums
// accumulate serially in point order.
func clusterScatter(points []linalg.Vector, a *Assignment, centroids []linalg.Vector) ([]float64, []int, error) {
	x, err := linalg.RowsMatrix(points)
	if err != nil {
		return nil, nil, err
	}
	cm, err := linalg.RowsMatrix(centroids)
	if err != nil {
		return nil, nil, err
	}
	xnorms := make(linalg.Vector, x.Rows)
	cnorms := make(linalg.Vector, cm.Rows)
	if err := linalg.RowNormsSquaredInto(xnorms, x); err != nil {
		return nil, nil, err
	}
	if err := linalg.RowNormsSquaredInto(cnorms, cm); err != nil {
		return nil, nil, err
	}
	scatter := make([]float64, a.K)
	counts := make([]int, a.K)
	for i := range points {
		l := a.Labels[i]
		sq, err := linalg.AssignedSquaredDistance(x, cm, xnorms, cnorms, i, l)
		if err != nil {
			return nil, nil, err
		}
		scatter[l] += math.Sqrt(sq)
		counts[l]++
	}
	for i := range scatter {
		if counts[i] > 0 {
			scatter[i] /= float64(counts[i])
		}
	}
	return scatter, counts, nil
}

// DistancesToCentroid returns, for each cluster, the sorted distances of
// its members to the cluster centroid — the data behind the per-cluster
// distance CDF of Figure 6(b).
func DistancesToCentroid(points []linalg.Vector, a *Assignment) ([][]float64, error) {
	centroids, err := Centroids(points, a)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, a.K)
	for i, p := range points {
		l := a.Labels[i]
		d, err := linalg.Distance(p, centroids[l])
		if err != nil {
			return nil, err
		}
		out[l] = append(out[l], d)
	}
	for i := range out {
		sort.Float64s(out[i])
	}
	return out, nil
}

// Silhouette computes the mean silhouette coefficient of the clustering, an
// additional validity index used in the ablation benches. It is O(N²·d).
// Points in singleton clusters contribute a silhouette of zero.
func Silhouette(points []linalg.Vector, a *Assignment) (float64, error) {
	return SilhouetteWorkers(points, a, 0)
}

// SilhouetteWorkers is Silhouette with an explicit bound on the goroutines
// of the blocked distance kernel (≤ 0 means GOMAXPROCS). The full pairwise
// matrix is computed once by the Gram-trick kernel — N²/2 fused tiles
// instead of N²/2 per-pair loops — and the per-point reductions keep their
// serial order, so the coefficient is bit-identical for any worker count.
// The matrix costs O(N²) floats of transient memory (~740 MB at the
// paper's 9,600 towers); the index is an ablation-bench statistic, not
// part of the Analyze path, so the trade for kernel speed is deliberate.
func SilhouetteWorkers(points []linalg.Vector, a *Assignment, workers int) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, ErrNoPoints
	}
	if len(a.Labels) != n {
		return 0, fmt.Errorf("cluster: %d labels for %d points", len(a.Labels), n)
	}
	if a.K < 2 {
		return 0, errors.New("cluster: silhouette needs at least two clusters")
	}
	x, err := linalg.RowsMatrix(points)
	if err != nil {
		return 0, err
	}
	pair := linalg.NewMatrix(n, n)
	if err := linalg.PairwiseSquaredInto(pair, x, nil, workers); err != nil {
		return 0, err
	}
	linalg.SquaredDistancesSqrtInPlace(pair.Data, workers)
	sizes := a.Sizes()
	sumByCluster := make([]float64, a.K)
	var total float64
	for i := 0; i < n; i++ {
		li := a.Labels[i]
		if sizes[li] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		// Mean distance to own cluster (a) and to the nearest other
		// cluster (b).
		for c := range sumByCluster {
			sumByCluster[c] = 0
		}
		row := pair.Row(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sumByCluster[a.Labels[j]] += row[j]
		}
		own := sumByCluster[li] / float64(sizes[li]-1)
		other := math.Inf(1)
		for c := 0; c < a.K; c++ {
			if c == li || sizes[c] == 0 {
				continue
			}
			if v := sumByCluster[c] / float64(sizes[c]); v < other {
				other = v
			}
		}
		if math.IsInf(other, 1) {
			continue
		}
		max := math.Max(own, other)
		if max > 0 {
			total += (other - own) / max
		}
	}
	return total / float64(n), nil
}

// DBICurvePoint is one evaluation of the Davies–Bouldin index at a given
// cluster count, together with the cut threshold that produces it.
type DBICurvePoint struct {
	K         int
	Threshold float64
	DBI       float64
}

// DBICurve evaluates the Davies–Bouldin index for every cluster count in
// [minK, maxK], reproducing the metric-tuner sweep behind Figure 6(a).
func DBICurve(points []linalg.Vector, dendro *Dendrogram, minK, maxK int) ([]DBICurvePoint, error) {
	return DBICurveWorkers(points, dendro, minK, maxK, 0)
}

// DBICurveWorkers is DBICurve with an explicit bound on the goroutines of
// the per-K Davies–Bouldin evaluations (≤ 0 means GOMAXPROCS).
func DBICurveWorkers(points []linalg.Vector, dendro *Dendrogram, minK, maxK, workers int) ([]DBICurvePoint, error) {
	return DBICurveCtx(context.Background(), points, dendro, minK, maxK, workers)
}

// DBICurveCtx is DBICurveWorkers with cancellation, observed once per
// evaluated cluster count.
func DBICurveCtx(ctx context.Context, points []linalg.Vector, dendro *Dendrogram, minK, maxK, workers int) ([]DBICurvePoint, error) {
	if minK < 2 {
		return nil, fmt.Errorf("%w: minK=%d (need at least 2)", ErrBadK, minK)
	}
	if maxK < minK || maxK > dendro.N {
		return nil, fmt.Errorf("%w: maxK=%d with minK=%d and %d points", ErrBadK, maxK, minK, dendro.N)
	}
	done := ctx.Done()
	out := make([]DBICurvePoint, 0, maxK-minK+1)
	for k := minK; k <= maxK; k++ {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		assign, err := dendro.CutK(k)
		if err != nil {
			return nil, err
		}
		dbi, err := DaviesBouldinWorkers(points, assign, workers)
		if err != nil {
			return nil, err
		}
		threshold, err := dendro.ThresholdForK(k)
		if err != nil {
			return nil, err
		}
		out = append(out, DBICurvePoint{K: k, Threshold: threshold, DBI: dbi})
	}
	return out, nil
}

// OptimalK returns the cluster count minimising the Davies–Bouldin index
// over [minK, maxK], together with the full curve.
func OptimalK(points []linalg.Vector, dendro *Dendrogram, minK, maxK int) (int, []DBICurvePoint, error) {
	return OptimalKWorkers(points, dendro, minK, maxK, 0)
}

// OptimalKWorkers is OptimalK with an explicit bound on the goroutines of
// the underlying Davies–Bouldin evaluations (≤ 0 means GOMAXPROCS).
func OptimalKWorkers(points []linalg.Vector, dendro *Dendrogram, minK, maxK, workers int) (int, []DBICurvePoint, error) {
	return OptimalKCtx(context.Background(), points, dendro, minK, maxK, workers)
}

// OptimalKCtx is OptimalKWorkers with the cancellation of DBICurveCtx.
func OptimalKCtx(ctx context.Context, points []linalg.Vector, dendro *Dendrogram, minK, maxK, workers int) (int, []DBICurvePoint, error) {
	curve, err := DBICurveCtx(ctx, points, dendro, minK, maxK, workers)
	if err != nil {
		return 0, nil, err
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if p.DBI < best.DBI {
			best = p
		}
	}
	return best.K, curve, nil
}

// AdjustedRandIndex measures the agreement between two labelings of the
// same points, corrected for chance. It is used to validate recovered
// clusters against the synthetic ground truth (1 = identical partitions,
// ~0 = random agreement).
func AdjustedRandIndex(labelsA, labelsB []int) (float64, error) {
	if len(labelsA) != len(labelsB) {
		return 0, fmt.Errorf("cluster: label slices differ in length: %d vs %d", len(labelsA), len(labelsB))
	}
	n := len(labelsA)
	if n == 0 {
		return 0, ErrNoPoints
	}
	// Contingency table.
	table := make(map[[2]int]float64)
	rowSum := make(map[int]float64)
	colSum := make(map[int]float64)
	for i := 0; i < n; i++ {
		table[[2]int{labelsA[i], labelsB[i]}]++
		rowSum[labelsA[i]]++
		colSum[labelsB[i]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var sumTable, sumRow, sumCol float64
	for _, v := range table {
		sumTable += choose2(v)
	}
	for _, v := range rowSum {
		sumRow += choose2(v)
	}
	for _, v := range colSum {
		sumCol += choose2(v)
	}
	total := choose2(float64(n))
	if total == 0 {
		return 1, nil
	}
	expected := sumRow * sumCol / total
	maxIndex := (sumRow + sumCol) / 2
	if maxIndex == expected {
		return 1, nil
	}
	return (sumTable - expected) / (maxIndex - expected), nil
}

// PurityAgainstTruth returns, for each predicted cluster, the fraction of
// its members whose ground-truth label equals the cluster's majority truth
// label, plus the overall purity. It quantifies how well recovered traffic
// patterns match ground-truth functional regions.
func PurityAgainstTruth(predicted *Assignment, truth []int) (perCluster []float64, overall float64, err error) {
	if len(predicted.Labels) != len(truth) {
		return nil, 0, fmt.Errorf("cluster: %d predictions for %d truths", len(predicted.Labels), len(truth))
	}
	if len(truth) == 0 {
		return nil, 0, ErrNoPoints
	}
	perCluster = make([]float64, predicted.K)
	correctTotal := 0
	for c, members := range predicted.Members() {
		if len(members) == 0 {
			continue
		}
		counts := make(map[int]int)
		for _, i := range members {
			counts[truth[i]]++
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		perCluster[c] = float64(best) / float64(len(members))
		correctTotal += best
	}
	return perCluster, float64(correctTotal) / float64(len(truth)), nil
}
