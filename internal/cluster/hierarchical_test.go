package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// blobs generates k well-separated Gaussian blobs of pointsPer points each
// in dim dimensions, returning the points and their ground-truth labels.
func blobs(rng *rand.Rand, k, pointsPer, dim int, spread float64) ([]linalg.Vector, []int) {
	points := make([]linalg.Vector, 0, k*pointsPer)
	labels := make([]int, 0, k*pointsPer)
	for c := 0; c < k; c++ {
		center := make(linalg.Vector, dim)
		for d := range center {
			center[d] = float64(c*20) + float64(d%3)
		}
		for i := 0; i < pointsPer; i++ {
			p := make(linalg.Vector, dim)
			for d := range p {
				p[d] = center[d] + rng.NormFloat64()*spread
			}
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

func TestLinkageString(t *testing.T) {
	if AverageLinkage.String() != "average" || SingleLinkage.String() != "single" ||
		CompleteLinkage.String() != "complete" {
		t.Error("linkage names wrong")
	}
	if Linkage(9).String() != "linkage(9)" {
		t.Error("unknown linkage name wrong")
	}
}

func TestHierarchicalErrors(t *testing.T) {
	if _, err := Hierarchical(nil, AverageLinkage); !errors.Is(err, ErrNoPoints) {
		t.Errorf("no points: got %v", err)
	}
	ragged := []linalg.Vector{{1, 2}, {1}}
	if _, err := Hierarchical(ragged, AverageLinkage); !errors.Is(err, ErrShapeRagged) {
		t.Errorf("ragged points: got %v", err)
	}
	bad := []linalg.Vector{{1}, {2}, {3}}
	if _, err := Hierarchical(bad, Linkage(42)); err == nil {
		t.Error("unknown linkage should fail")
	}
}

func TestHierarchicalSinglePoint(t *testing.T) {
	d, err := Hierarchical([]linalg.Vector{{1, 2}}, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 1 || len(d.Merges) != 0 {
		t.Errorf("single point dendrogram = %+v", d)
	}
	a, err := d.CutK(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 1 || a.Labels[0] != 0 {
		t.Errorf("single point cut = %+v", a)
	}
}

func TestHierarchicalKnownSmallCase(t *testing.T) {
	// Points on a line: {0, 1} form one pair, {10, 11} another; the two
	// pairs merge last.
	points := []linalg.Vector{{0}, {1}, {10}, {11}}
	d, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 3 {
		t.Fatalf("merges = %d, want 3", len(d.Merges))
	}
	// First two merges at distance 1, final merge at average distance 10.
	if d.Merges[0].Distance != 1 || d.Merges[1].Distance != 1 {
		t.Errorf("first merges at %g, %g, want 1, 1", d.Merges[0].Distance, d.Merges[1].Distance)
	}
	if math.Abs(d.Merges[2].Distance-10) > 1e-9 {
		t.Errorf("final merge at %g, want 10", d.Merges[2].Distance)
	}
	a, err := d.CutK(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 2 {
		t.Fatalf("K = %d, want 2", a.K)
	}
	if a.Labels[0] != a.Labels[1] || a.Labels[2] != a.Labels[3] || a.Labels[0] == a.Labels[2] {
		t.Errorf("labels = %v, want pairs {0,1} and {2,3}", a.Labels)
	}
	// Threshold cut at 5 gives the same two clusters.
	at, err := d.CutThreshold(5)
	if err != nil {
		t.Fatal(err)
	}
	if at.K != 2 {
		t.Errorf("threshold cut K = %d, want 2", at.K)
	}
	// Threshold below all merges leaves every point alone.
	at, err = d.CutThreshold(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if at.K != 4 {
		t.Errorf("low threshold cut K = %d, want 4", at.K)
	}
}

func TestSingleVsCompleteLinkage(t *testing.T) {
	// A chain of points: single linkage merges the whole chain at distance
	// 1; complete linkage's final merge distance is the chain length.
	points := []linalg.Vector{{0}, {1}, {2}, {3}, {4}}
	single, err := Hierarchical(points, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := Hierarchical(points, CompleteLinkage)
	if err != nil {
		t.Fatal(err)
	}
	lastSingle := single.Merges[len(single.Merges)-1].Distance
	lastComplete := complete.Merges[len(complete.Merges)-1].Distance
	if lastSingle != 1 {
		t.Errorf("single linkage final distance = %g, want 1", lastSingle)
	}
	if lastComplete != 4 {
		t.Errorf("complete linkage final distance = %g, want 4", lastComplete)
	}
}

func TestHierarchicalRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, linkage := range []Linkage{AverageLinkage, CompleteLinkage} {
		points, truth := blobs(rng, 4, 20, 6, 0.5)
		d, err := Hierarchical(points, linkage)
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.CutK(4)
		if err != nil {
			t.Fatal(err)
		}
		ari, err := AdjustedRandIndex(a.Labels, truth)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.99 {
			t.Errorf("%v linkage ARI = %g, want ~1 on well-separated blobs", linkage, ari)
		}
	}
}

func TestMergeDistancesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	points, _ := blobs(rng, 3, 15, 4, 1.0)
	for _, linkage := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		d, err := Hierarchical(points, linkage)
		if err != nil {
			t.Fatal(err)
		}
		dists := d.MergeDistances()
		for i := 1; i < len(dists); i++ {
			if dists[i] < dists[i-1]-1e-9 {
				t.Errorf("%v linkage merge distances not monotone at %d: %g < %g", linkage, i, dists[i], dists[i-1])
			}
		}
	}
}

func TestCutKBounds(t *testing.T) {
	points := []linalg.Vector{{0}, {1}, {2}}
	d, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CutK(0); !errors.Is(err, ErrBadK) {
		t.Errorf("CutK(0): %v", err)
	}
	if _, err := d.CutK(4); !errors.Is(err, ErrBadK) {
		t.Errorf("CutK(4): %v", err)
	}
	all, err := d.CutK(3)
	if err != nil || all.K != 3 {
		t.Errorf("CutK(3) = %v, %v", all, err)
	}
	one, err := d.CutK(1)
	if err != nil || one.K != 1 {
		t.Errorf("CutK(1) = %v, %v", one, err)
	}
}

func TestThresholdForK(t *testing.T) {
	// Distinct pairwise distances so every k is reachable by a threshold
	// (with tied merge distances a distance threshold cannot separate the
	// tied merges, which is inherent to threshold-based cutting).
	points := []linalg.Vector{{0}, {1.2}, {10}, {11}}
	d, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		threshold, err := d.ThresholdForK(k)
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.CutThreshold(threshold)
		if err != nil {
			t.Fatal(err)
		}
		if a.K != k {
			t.Errorf("threshold %g for k=%d yields %d clusters", threshold, k, a.K)
		}
	}
	if _, err := d.ThresholdForK(0); !errors.Is(err, ErrBadK) {
		t.Errorf("ThresholdForK(0): %v", err)
	}
}

// Property: for any random point set, cutting at K yields exactly K
// clusters with labels forming a partition, and every merge reduces the
// number of clusters by one.
func TestCutPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	f := func(seed uint8) bool {
		n := int(seed%12) + 2
		points := make([]linalg.Vector, n)
		for i := range points {
			points[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
		}
		d, err := Hierarchical(points, AverageLinkage)
		if err != nil {
			return false
		}
		for k := 1; k <= n; k++ {
			a, err := d.CutK(k)
			if err != nil || a.K != k || len(a.Labels) != n {
				return false
			}
			seen := make(map[int]bool)
			for _, l := range a.Labels {
				if l < 0 || l >= k {
					return false
				}
				seen[l] = true
			}
			if len(seen) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentAccessors(t *testing.T) {
	a := &Assignment{Labels: []int{0, 1, 0, 2, 1}, K: 3}
	sizes := a.Sizes()
	if sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Errorf("Sizes = %v", sizes)
	}
	members := a.Members()
	if len(members[0]) != 2 || members[0][0] != 0 || members[0][1] != 2 {
		t.Errorf("Members[0] = %v", members[0])
	}
}

func BenchmarkHierarchical200x144(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	points, _ := blobs(rng, 5, 40, 144, 2.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hierarchical(points, AverageLinkage); err != nil {
			b.Fatal(err)
		}
	}
}
