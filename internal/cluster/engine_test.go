package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/linalg"
	"repro/internal/synth"
)

// cityPoints builds the normalised traffic vectors of a seeded synthetic
// city — the realistic workload the decisions-unchanged guarantees are
// pinned on before the golden e2e fixture is trusted.
func cityPoints(t *testing.T, towers int, seed int64) []linalg.Vector {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.Towers = towers
	cfg.Days = 7
	cfg.Seed = seed
	city, err := synth.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := city.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	return ds.Normalized
}

// The blocked Gram-trick engine must make the identical agglomeration
// decisions as the per-pair distance oracle on seeded city traffic: same
// merge pairs, same sizes, same cut partitions, distances within the
// 1e-9 relative tolerance the Gram trick is allowed.
func TestHierarchicalDecisionsUnchangedOnSeededCity(t *testing.T) {
	points := cityPoints(t, 90, 31)
	for _, linkage := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		got, err := Hierarchical(points, linkage)
		if err != nil {
			t.Fatal(err)
		}
		want, err := hierarchicalPerPairOracle(points, linkage)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Merges) != len(want.Merges) {
			t.Fatalf("%v: %d merges, oracle %d", linkage, len(got.Merges), len(want.Merges))
		}
		for i := range got.Merges {
			g, w := got.Merges[i], want.Merges[i]
			ga, gb := min(g.A, g.B), max(g.A, g.B)
			wa, wb := min(w.A, w.B), max(w.A, w.B)
			if ga != wa || gb != wb || g.Size != w.Size {
				t.Fatalf("%v merge %d: got %+v, oracle %+v", linkage, i, g, w)
			}
			if diff := math.Abs(g.Distance - w.Distance); diff > 1e-9*(1+w.Distance) {
				t.Fatalf("%v merge %d: distance %g, oracle %g", linkage, i, g.Distance, w.Distance)
			}
		}
		for _, k := range []int{2, 3, 5, 8} {
			ga, err := got.CutK(k)
			if err != nil {
				t.Fatal(err)
			}
			wa, err := want.CutK(k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ga.Labels, wa.Labels) {
				t.Fatalf("%v k=%d: labels diverge from per-pair oracle", linkage, k)
			}
		}
	}
}

// The blocked k-means assignment step must make the identical decisions as
// the per-pair serial oracle on seeded city traffic: same labels, sizes
// and iteration counts, inertia within Gram-trick precision.
func TestKMeansDecisionsUnchangedOnSeededCity(t *testing.T) {
	points := cityPoints(t, 90, 37)
	for _, seed := range []int64{1, 7, 23} {
		opts := KMeansOptions{K: 5, Seed: seed, Restarts: 3, Workers: 1}
		got, err := KMeans(points, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := kmeansOracle(points, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Fatalf("seed %d: assignment diverges from per-pair oracle", seed)
		}
		if got.Iterations != want.Iterations {
			t.Fatalf("seed %d: %d iterations, oracle %d", seed, got.Iterations, want.Iterations)
		}
		if diff := math.Abs(got.Inertia - want.Inertia); diff > 1e-9*(1+want.Inertia) {
			t.Fatalf("seed %d: inertia %g, oracle %g", seed, got.Inertia, want.Inertia)
		}
		for c := range got.Centroids {
			for j := range got.Centroids[c] {
				if diff := math.Abs(got.Centroids[c][j] - want.Centroids[c][j]); diff > 1e-9 {
					t.Fatalf("seed %d: centroid %d[%d] = %g, oracle %g", seed, c, j, got.Centroids[c][j], want.Centroids[c][j])
				}
			}
		}
	}
}

// The blocked validity indices must agree with their per-pair oracles to
// Gram-trick precision on city traffic.
func TestValidityIndicesMatchPerPairOracles(t *testing.T) {
	points := cityPoints(t, 80, 41)
	dendro, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 6} {
		assign, err := dendro.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		dbi, err := DaviesBouldin(points, assign)
		if err != nil {
			t.Fatal(err)
		}
		dbiOracle, err := daviesBouldinOracle(points, assign)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(dbi - dbiOracle); diff > 1e-9*(1+math.Abs(dbiOracle)) {
			t.Errorf("k=%d: DBI %g, oracle %g", k, dbi, dbiOracle)
		}
		sil, err := Silhouette(points, assign)
		if err != nil {
			t.Fatal(err)
		}
		silOracle, err := silhouetteOracle(points, assign)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(sil - silOracle); diff > 1e-9*(1+math.Abs(silOracle)) {
			t.Errorf("k=%d: silhouette %g, oracle %g", k, sil, silOracle)
		}
	}
}

// The validity indices must be bit-identical for any worker count.
func TestValidityIndicesBitIdenticalAcrossWorkers(t *testing.T) {
	points := cityPoints(t, 70, 43)
	dendro, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := dendro.CutK(4)
	if err != nil {
		t.Fatal(err)
	}
	dbiBase, err := DaviesBouldinWorkers(points, assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	silBase, err := SilhouetteWorkers(points, assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	curveBase, err := DBICurveWorkers(points, dendro, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range testWorkerCounts() {
		dbi, err := DaviesBouldinWorkers(points, assign, workers)
		if err != nil {
			t.Fatal(err)
		}
		if dbi != dbiBase {
			t.Errorf("workers %d: DBI %g differs from serial %g", workers, dbi, dbiBase)
		}
		sil, err := SilhouetteWorkers(points, assign, workers)
		if err != nil {
			t.Fatal(err)
		}
		if sil != silBase {
			t.Errorf("workers %d: silhouette %g differs from serial %g", workers, sil, silBase)
		}
		curve, err := DBICurveWorkers(points, dendro, 2, 6, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(curve, curveBase) {
			t.Errorf("workers %d: DBI curve differs from serial", workers)
		}
	}
}

// The Lloyd loop's scratch is hoisted per restart: extra iterations must
// not allocate. Comparing a long run against a short one isolates the
// per-iteration cost from the fixed per-restart setup.
func TestKMeansZeroAllocsPerIteration(t *testing.T) {
	points := cityPoints(t, 60, 47)
	run := func(iters int) float64 {
		return testing.AllocsPerRun(5, func() {
			opts := KMeansOptions{K: 4, Seed: 11, Restarts: 1, MaxIterations: iters, Workers: 1}
			if _, err := KMeans(points, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := run(2)
	long := run(40)
	if extra := long - short; extra > 1 {
		t.Errorf("extra Lloyd iterations allocated %v times (short %v, long %v); want 0 allocs/iter warmed",
			extra, short, long)
	}
}
