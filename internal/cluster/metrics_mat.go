package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Flat-matrix validity indices, generic over the modeling precision.
//
// These are the Mat-based counterparts of Centroids/DaviesBouldin/
// Silhouette/DBICurve/OptimalK: the distance kernels run at the matrix's
// own element type (the float32 instantiation halves the memory traffic
// that dominates the metric-tuner sweep), while every statistic derived
// from the distances — scatter sums, index ratios, curve minima — is
// reduced in float64 regardless. With a float64 matrix each function is
// bit-identical to its []Vector counterpart on the matrix's row views.

// CentroidsMat returns the K×dim matrix of cluster centroids of the
// assignment. Empty clusters get a zero row. The per-cluster sums
// accumulate serially in point order at the matrix's own precision.
func CentroidsMat[F linalg.Float](x *linalg.Mat[F], a *Assignment) (*linalg.Mat[F], error) {
	if x.Rows == 0 {
		return nil, ErrNoPoints
	}
	if len(a.Labels) != x.Rows {
		return nil, fmt.Errorf("cluster: %d labels for %d points", len(a.Labels), x.Rows)
	}
	out := linalg.NewMat[F](a.K, x.Cols)
	counts := make([]int, a.K)
	for i := 0; i < x.Rows; i++ {
		l := a.Labels[i]
		if l < 0 || l >= a.K {
			return nil, fmt.Errorf("cluster: label %d out of range [0,%d)", l, a.K)
		}
		if err := out.Row(l).AddInPlace(x.Row(i)); err != nil {
			return nil, err
		}
		counts[l]++
	}
	for l, c := range counts {
		if c > 0 {
			out.Row(l).ScaleInPlace(F(1 / float64(c)))
		}
	}
	return out, nil
}

// DaviesBouldinMat computes the Davies–Bouldin index of the clustering
// over a flat matrix at either modeling precision, with up to `workers`
// goroutines in the blocked distance kernels (≤ 0 means GOMAXPROCS). The
// semantics match DaviesBouldinWorkers: clusters with no members are
// skipped, coincident centroids score +Inf, and the index is undefined
// for fewer than two non-empty clusters.
func DaviesBouldinMat[F linalg.Float](x *linalg.Mat[F], a *Assignment, workers int) (float64, error) {
	cm, err := CentroidsMat(x, a)
	if err != nil {
		return 0, err
	}
	scatter, counts, err := clusterScatterMat(x, a, cm)
	if err != nil {
		return 0, err
	}
	// Keep only non-empty clusters.
	var idx []int
	for i, c := range counts {
		if c > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return 0, errors.New("cluster: Davies-Bouldin needs at least two non-empty clusters")
	}
	// Centroid separations M_ij via the blocked symmetric kernel.
	sep := linalg.NewMat[F](a.K, a.K)
	if err := linalg.PairwiseSquaredInto(sep, cm, nil, workers); err != nil {
		return 0, err
	}
	var sum float64
	for _, i := range idx {
		worst := math.Inf(-1)
		for _, j := range idx {
			if i == j {
				continue
			}
			m := math.Sqrt(float64(sep.At(i, j)))
			if m == 0 {
				// Coincident centroids: the ratio is unbounded; treat as a
				// very bad separation rather than dividing by zero.
				worst = math.Inf(1)
				continue
			}
			if r := (scatter[i] + scatter[j]) / m; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(len(idx)), nil
}

// clusterScatterMat returns S_i (mean member-to-centroid distance) and
// member counts per cluster, one Gram-trick dot per point, the scatter
// sums reduced serially in point order in float64.
func clusterScatterMat[F linalg.Float](x *linalg.Mat[F], a *Assignment, cm *linalg.Mat[F]) ([]float64, []int, error) {
	xnorms := make(linalg.Vec[F], x.Rows)
	cnorms := make(linalg.Vec[F], cm.Rows)
	if err := linalg.RowNormsSquaredInto(xnorms, x); err != nil {
		return nil, nil, err
	}
	if err := linalg.RowNormsSquaredInto(cnorms, cm); err != nil {
		return nil, nil, err
	}
	scatter := make([]float64, a.K)
	counts := make([]int, a.K)
	for i := 0; i < x.Rows; i++ {
		l := a.Labels[i]
		sq, err := linalg.AssignedSquaredDistance(x, cm, xnorms, cnorms, i, l)
		if err != nil {
			return nil, nil, err
		}
		scatter[l] += math.Sqrt(sq)
		counts[l]++
	}
	for i := range scatter {
		if counts[i] > 0 {
			scatter[i] /= float64(counts[i])
		}
	}
	return scatter, counts, nil
}

// SilhouetteMat computes the mean silhouette coefficient over a flat
// matrix at either modeling precision, with up to `workers` goroutines in
// the blocked pairwise kernel (≤ 0 means GOMAXPROCS). Semantics match
// SilhouetteWorkers, including the O(N²) transient distance matrix.
func SilhouetteMat[F linalg.Float](x *linalg.Mat[F], a *Assignment, workers int) (float64, error) {
	n := x.Rows
	if n == 0 {
		return 0, ErrNoPoints
	}
	if len(a.Labels) != n {
		return 0, fmt.Errorf("cluster: %d labels for %d points", len(a.Labels), n)
	}
	if a.K < 2 {
		return 0, errors.New("cluster: silhouette needs at least two clusters")
	}
	pair := linalg.NewMat[F](n, n)
	if err := linalg.PairwiseSquaredInto(pair, x, nil, workers); err != nil {
		return 0, err
	}
	linalg.SquaredDistancesSqrtInPlace(pair.Data, workers)
	sizes := a.Sizes()
	sumByCluster := make([]float64, a.K)
	var total float64
	for i := 0; i < n; i++ {
		li := a.Labels[i]
		if sizes[li] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		// Mean distance to own cluster (a) and to the nearest other
		// cluster (b).
		for c := range sumByCluster {
			sumByCluster[c] = 0
		}
		row := pair.Row(i)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sumByCluster[a.Labels[j]] += float64(row[j])
		}
		own := sumByCluster[li] / float64(sizes[li]-1)
		other := math.Inf(1)
		for c := 0; c < a.K; c++ {
			if c == li || sizes[c] == 0 {
				continue
			}
			if v := sumByCluster[c] / float64(sizes[c]); v < other {
				other = v
			}
		}
		if math.IsInf(other, 1) {
			continue
		}
		max := math.Max(own, other)
		if max > 0 {
			total += (other - own) / max
		}
	}
	return total / float64(n), nil
}

// DBICurveMat evaluates the Davies–Bouldin index for every cluster count
// in [minK, maxK] over a flat matrix — the metric-tuner sweep at either
// modeling precision.
func DBICurveMat[F linalg.Float](x *linalg.Mat[F], dendro *Dendrogram, minK, maxK, workers int) ([]DBICurvePoint, error) {
	return DBICurveMatCtx[F](context.Background(), x, dendro, minK, maxK, workers)
}

// DBICurveMatCtx is DBICurveMat with cancellation, observed once per
// evaluated cluster count.
func DBICurveMatCtx[F linalg.Float](ctx context.Context, x *linalg.Mat[F], dendro *Dendrogram, minK, maxK, workers int) ([]DBICurvePoint, error) {
	if minK < 2 {
		return nil, fmt.Errorf("%w: minK=%d (need at least 2)", ErrBadK, minK)
	}
	if maxK < minK || maxK > dendro.N {
		return nil, fmt.Errorf("%w: maxK=%d with minK=%d and %d points", ErrBadK, maxK, minK, dendro.N)
	}
	done := ctx.Done()
	out := make([]DBICurvePoint, 0, maxK-minK+1)
	for k := minK; k <= maxK; k++ {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		assign, err := dendro.CutK(k)
		if err != nil {
			return nil, err
		}
		dbi, err := DaviesBouldinMat(x, assign, workers)
		if err != nil {
			return nil, err
		}
		threshold, err := dendro.ThresholdForK(k)
		if err != nil {
			return nil, err
		}
		out = append(out, DBICurvePoint{K: k, Threshold: threshold, DBI: dbi})
	}
	return out, nil
}

// OptimalKMat returns the cluster count minimising the Davies–Bouldin
// index over [minK, maxK] on a flat matrix, together with the full curve.
func OptimalKMat[F linalg.Float](x *linalg.Mat[F], dendro *Dendrogram, minK, maxK, workers int) (int, []DBICurvePoint, error) {
	return OptimalKMatCtx[F](context.Background(), x, dendro, minK, maxK, workers)
}

// OptimalKMatCtx is OptimalKMat with the cancellation of DBICurveMatCtx.
func OptimalKMatCtx[F linalg.Float](ctx context.Context, x *linalg.Mat[F], dendro *Dendrogram, minK, maxK, workers int) (int, []DBICurvePoint, error) {
	curve, err := DBICurveMatCtx(ctx, x, dendro, minK, maxK, workers)
	if err != nil {
		return 0, nil, err
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if p.DBI < best.DBI {
			best = p
		}
	}
	return best.K, curve, nil
}
