package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
)

// KMeansOptions configure the k-means baseline.
type KMeansOptions struct {
	// K is the number of clusters. Required.
	K int
	// MaxIterations bounds the Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives the k-means++ initialisation.
	Seed int64
	// Restarts runs the algorithm this many times with different
	// initialisations and keeps the lowest-inertia result (default 1).
	Restarts int
	// Workers bounds the goroutines used for the assignment step and for
	// running restarts concurrently (≤ 0 means GOMAXPROCS). The result is
	// bit-identical for any Workers value: every restart draws from its own
	// seeded RNG, the blocked distance kernel computes every point-centroid
	// entry exactly once in a fixed order, and all floating-point
	// reductions (centroid update, inertia) keep a fixed serial order.
	Workers int
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	return o
}

// KMeansResult is the outcome of a k-means run.
type KMeansResult struct {
	Assignment *Assignment
	Centroids  []linalg.Vector
	// Inertia is the sum of squared distances of points to their assigned
	// centroid.
	Inertia float64
	// Iterations is the number of Lloyd iterations of the best restart.
	Iterations int
}

// KMeans clusters the points with Lloyd's algorithm and k-means++
// initialisation. It is the baseline the benchmark harness compares the
// paper's hierarchical clustering against. The assignment step runs on the
// blocked Gram-trick kernel (points × centroids squared distances in one
// tiled pass); all per-iteration scratch — the distance matrix, centroid
// norms, and the update step's sums and counts — is hoisted into buffers
// allocated once per restart, so a warmed Lloyd iteration allocates
// nothing. Restarts run concurrently, each with its own RNG seeded from
// Seed and the restart index, so the outcome does not depend on
// scheduling: the best result is selected by scanning the restarts in
// index order with a strict inertia comparison, exactly as a serial loop
// would.
func KMeans(points []linalg.Vector, opts KMeansOptions) (*KMeansResult, error) {
	opts = opts.withDefaults()
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("%w: k=%d with %d points", ErrBadK, opts.K, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}

	// The points matrix and its norms are shared read-only by every
	// restart: aliased for free when the points are views of a dataset's
	// flat backing, packed once otherwise.
	x, err := linalg.RowsMatrix(points)
	if err != nil {
		return nil, err
	}
	xnorms := make(linalg.Vector, n)
	if err := linalg.RowNormsSquaredInto(xnorms, x); err != nil {
		return nil, err
	}

	workers := linalg.ResolveWorkers(opts.Workers)
	restartRNG := func(r int) *rand.Rand {
		return rand.New(rand.NewSource(opts.Seed + int64(r)*104729))
	}
	results := make([]*KMeansResult, opts.Restarts)
	errs := make([]error, opts.Restarts)
	if workers == 1 || opts.Restarts == 1 {
		for r := range results {
			results[r], errs[r] = kmeansOnce(points, x, xnorms, opts, restartRNG(r), workers)
		}
	} else {
		// Concurrent restarts, bounded by the worker budget: at most
		// `concurrent` restarts run at once, each chunking its assignment
		// step across the remaining budget, so the total goroutine count
		// stays within Workers.
		concurrent := workers
		if concurrent > opts.Restarts {
			concurrent = opts.Restarts
		}
		inner := workers / concurrent
		sem := make(chan struct{}, concurrent)
		var wg sync.WaitGroup
		for r := range results {
			wg.Add(1)
			sem <- struct{}{}
			go func(r int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[r], errs[r] = kmeansOnce(points, x, xnorms, opts, restartRNG(r), inner)
			}(r)
		}
		wg.Wait()
	}
	// Deterministic selection: first error, then lowest inertia, both in
	// restart order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var best *KMeansResult
	for _, res := range results {
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// kmeansScratch is the per-restart working set of the Lloyd loop. Each
// buffer is allocated once and reused by every iteration, so the warmed
// update loop runs at zero allocations — pinned by
// TestKMeansZeroAllocsPerIteration.
type kmeansScratch struct {
	centroids *linalg.Matrix // K × dim, the current centroids
	cnorms    linalg.Vector  // squared centroid norms
	dists     *linalg.Matrix // n × K point-to-centroid squared distances
	sums      *linalg.Matrix // K × dim update-step accumulator
	counts    []int
	labels    []int
}

func newKMeansScratch(n, k, dim int) *kmeansScratch {
	return &kmeansScratch{
		centroids: linalg.NewMatrix(k, dim),
		cnorms:    make(linalg.Vector, k),
		dists:     linalg.NewMatrix(n, k),
		sums:      linalg.NewMatrix(k, dim),
		counts:    make([]int, k),
		labels:    make([]int, n),
	}
}

// kmeansOnce runs one restart. The RNG is consumed only by the serial
// phases (k-means++ initialisation and the empty-cluster reseeding of the
// update step), so the draw sequence — and with it the result — is
// independent of the worker count.
func kmeansOnce(points []linalg.Vector, x *linalg.Matrix, xnorms linalg.Vector, opts KMeansOptions, rng *rand.Rand, workers int) (*KMeansResult, error) {
	n, dim := x.Rows, x.Cols
	init, err := kmeansPlusPlusInit(points, opts.K, rng)
	if err != nil {
		return nil, err
	}
	sc := newKMeansScratch(n, opts.K, dim)
	for c, v := range init {
		copy(sc.centroids.Row(c), v)
	}
	var iterations int
	converged := false
	for iterations = 0; iterations < opts.MaxIterations; iterations++ {
		// Assignment step on the blocked kernel: all point-centroid
		// squared distances in one tiled pass, then an argmin per point.
		// Each point's nearest centroid is independent of every other
		// point, so the worker chunking cannot change the outcome.
		changed, err := assignNearest(x, xnorms, sc, workers)
		if err != nil {
			return nil, err
		}
		if !changed && iterations > 0 {
			converged = true
			break
		}
		// Update step: kept serial so the centroid sums accumulate in point
		// order and the empty-cluster reseeding consumes the RNG in the
		// same sequence as a serial run.
		for i := range sc.sums.Data {
			sc.sums.Data[i] = 0
		}
		for c := range sc.counts {
			sc.counts[c] = 0
		}
		for i := 0; i < n; i++ {
			l := sc.labels[i]
			if err := sc.sums.Row(l).AddInPlace(x.Row(i)); err != nil {
				return nil, err
			}
			sc.counts[l]++
		}
		for c := 0; c < opts.K; c++ {
			row := sc.centroids.Row(c)
			if sc.counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(row, points[rng.Intn(n)])
				continue
			}
			inv := 1 / float64(sc.counts[c])
			sum := sc.sums.Row(c)
			for j := range row {
				row[j] = sum[j] * inv
			}
		}
	}
	// Final inertia of the assigned labels against the final centroids:
	// distances from the blocked kernel, reduced serially in point order so
	// the sum is bit-identical for any worker count. On the convergence
	// exit the centroids have not moved since the last assignment pass, so
	// sc.dists already holds exactly these values and the kernel pass is
	// skipped; only the iteration-budget exit (centroids updated after the
	// last assignment) needs the recompute.
	if !converged {
		if err := pointCentroidDistances(x, xnorms, sc, workers); err != nil {
			return nil, err
		}
	}
	var inertia float64
	for i := 0; i < n; i++ {
		inertia += sc.dists.At(i, sc.labels[i])
	}
	return &KMeansResult{
		Assignment: &Assignment{Labels: sc.labels, K: opts.K},
		Centroids:  sc.centroids.RowViews(),
		Inertia:    inertia,
		Iterations: iterations,
	}, nil
}

// chunkPoints splits [0, n) into at most `workers` contiguous chunks and
// runs fn on each concurrently, returning the first error by chunk order.
func chunkPoints(n, workers int, fn func(lo, hi int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pointCentroidDistances fills sc.dists with the squared distances of every
// point to every current centroid via the blocked cross kernel. The point
// norms are fixed for the whole run and shared read-only across restarts;
// only the centroid norms are refreshed.
func pointCentroidDistances(x *linalg.Matrix, xnorms linalg.Vector, sc *kmeansScratch, workers int) error {
	if err := linalg.RowNormsSquaredInto(sc.cnorms, sc.centroids); err != nil {
		return err
	}
	return linalg.CrossSquaredInto(sc.dists, x, sc.centroids, xnorms, sc.cnorms, workers)
}

// assignNearest relabels every point to its nearest centroid (ties to the
// lowest centroid index, as in a serial scan) and reports whether any
// label changed. The serial path stays closure-free so a warmed Lloyd
// iteration performs no allocations.
func assignNearest(x *linalg.Matrix, xnorms linalg.Vector, sc *kmeansScratch, workers int) (bool, error) {
	if err := pointCentroidDistances(x, xnorms, sc, workers); err != nil {
		return false, err
	}
	if workers <= 1 {
		return argminRange(sc, 0, x.Rows), nil
	}
	var changed atomic.Bool
	err := chunkPoints(x.Rows, workers, func(lo, hi int) error {
		if argminRange(sc, lo, hi) {
			changed.Store(true)
		}
		return nil
	})
	return changed.Load(), err
}

// argminRange assigns points [lo, hi) to their nearest centroid by
// scanning the distance rows in ascending centroid order (ties to the
// lowest index) and reports whether any label changed.
func argminRange(sc *kmeansScratch, lo, hi int) bool {
	changed := false
	for i := lo; i < hi; i++ {
		row := sc.dists.Row(i)
		best, bestDist := 0, math.Inf(1)
		for c, d := range row {
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		if sc.labels[i] != best {
			sc.labels[i] = best
			changed = true
		}
	}
	return changed
}

// kmeansPlusPlusInit picks initial centroids with the k-means++ scheme:
// each next centroid is drawn with probability proportional to its squared
// distance from the nearest centroid chosen so far.
func kmeansPlusPlusInit(points []linalg.Vector, k int, rng *rand.Rand) ([]linalg.Vector, error) {
	n := len(points)
	centroids := make([]linalg.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(n)].Clone())
	distSq := make([]float64, n)
	for len(centroids) < k {
		var total float64
		latest := centroids[len(centroids)-1]
		for i, p := range points {
			d, err := linalg.SquaredDistance(p, latest)
			if err != nil {
				return nil, err
			}
			if len(centroids) == 1 || d < distSq[i] {
				distSq[i] = d
			}
			total += distSq[i]
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, points[rng.Intn(n)].Clone())
			continue
		}
		target := rng.Float64() * total
		var cum float64
		chosen := n - 1
		for i, d := range distSq {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, points[chosen].Clone())
	}
	return centroids, nil
}
