package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// KMeansOptions configure the k-means baseline.
type KMeansOptions struct {
	// K is the number of clusters. Required.
	K int
	// MaxIterations bounds the Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives the k-means++ initialisation.
	Seed int64
	// Restarts runs the algorithm this many times with different
	// initialisations and keeps the lowest-inertia result (default 1).
	Restarts int
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	return o
}

// KMeansResult is the outcome of a k-means run.
type KMeansResult struct {
	Assignment *Assignment
	Centroids  []linalg.Vector
	// Inertia is the sum of squared distances of points to their assigned
	// centroid.
	Inertia float64
	// Iterations is the number of Lloyd iterations of the best restart.
	Iterations int
}

// KMeans clusters the points with Lloyd's algorithm and k-means++
// initialisation. It is the baseline the benchmark harness compares the
// paper's hierarchical clustering against.
func KMeans(points []linalg.Vector, opts KMeansOptions) (*KMeansResult, error) {
	opts = opts.withDefaults()
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("%w: k=%d with %d points", ErrBadK, opts.K, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}

	var best *KMeansResult
	for r := 0; r < opts.Restarts; r++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(r)*104729))
		res, err := kmeansOnce(points, opts, rng)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(points []linalg.Vector, opts KMeansOptions, rng *rand.Rand) (*KMeansResult, error) {
	n := len(points)
	centroids, err := kmeansPlusPlusInit(points, opts.K, rng)
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	var iterations int
	for iterations = 0; iterations < opts.MaxIterations; iterations++ {
		changed := false
		// Assignment step.
		for i, p := range points {
			best, bestDist := 0, math.Inf(1)
			for c, centroid := range centroids {
				d, err := linalg.SquaredDistance(p, centroid)
				if err != nil {
					return nil, err
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iterations > 0 {
			break
		}
		// Update step.
		dim := len(points[0])
		sums := make([]linalg.Vector, opts.K)
		counts := make([]int, opts.K)
		for c := range sums {
			sums[c] = make(linalg.Vector, dim)
		}
		for i, p := range points {
			if err := sums[labels[i]].AddInPlace(p); err != nil {
				return nil, err
			}
			counts[labels[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = points[rng.Intn(n)].Clone()
				continue
			}
			centroids[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
	var inertia float64
	for i, p := range points {
		d, err := linalg.SquaredDistance(p, centroids[labels[i]])
		if err != nil {
			return nil, err
		}
		inertia += d
	}
	return &KMeansResult{
		Assignment: &Assignment{Labels: labels, K: opts.K},
		Centroids:  centroids,
		Inertia:    inertia,
		Iterations: iterations,
	}, nil
}

// kmeansPlusPlusInit picks initial centroids with the k-means++ scheme:
// each next centroid is drawn with probability proportional to its squared
// distance from the nearest centroid chosen so far.
func kmeansPlusPlusInit(points []linalg.Vector, k int, rng *rand.Rand) ([]linalg.Vector, error) {
	n := len(points)
	centroids := make([]linalg.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(n)].Clone())
	distSq := make([]float64, n)
	for len(centroids) < k {
		var total float64
		latest := centroids[len(centroids)-1]
		for i, p := range points {
			d, err := linalg.SquaredDistance(p, latest)
			if err != nil {
				return nil, err
			}
			if len(centroids) == 1 || d < distSq[i] {
				distSq[i] = d
			}
			total += distSq[i]
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, points[rng.Intn(n)].Clone())
			continue
		}
		target := rng.Float64() * total
		var cum float64
		chosen := n - 1
		for i, d := range distSq {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, points[chosen].Clone())
	}
	return centroids, nil
}
