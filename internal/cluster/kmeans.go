package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/panicsafe"
)

// KMeansOptions configure the k-means baseline.
type KMeansOptions struct {
	// K is the number of clusters. Required.
	K int
	// MaxIterations bounds the Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives the k-means++ initialisation.
	Seed int64
	// Restarts runs the algorithm this many times with different
	// initialisations and keeps the lowest-inertia result (default 1).
	Restarts int
	// Workers bounds the goroutines used for the assignment step and for
	// running restarts concurrently (≤ 0 means GOMAXPROCS). The result is
	// bit-identical for any Workers value: every restart draws from its own
	// seeded RNG, the blocked distance kernel computes every point-centroid
	// entry exactly once in a fixed order, and all floating-point
	// reductions (centroid update, inertia) keep a fixed serial order.
	Workers int
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	return o
}

// KMeansResult is the outcome of a k-means run. Centroids and Inertia are
// reported in float64 at every modeling precision; a float32 run widens
// its centroids once at the end.
type KMeansResult struct {
	Assignment *Assignment
	Centroids  []linalg.Vector
	// Inertia is the sum of squared distances of points to their assigned
	// centroid.
	Inertia float64
	// Iterations is the number of Lloyd iterations of the best restart.
	Iterations int
}

// KMeans clusters the points with Lloyd's algorithm and k-means++
// initialisation. It is the baseline the benchmark harness compares the
// paper's hierarchical clustering against. The assignment step runs on the
// blocked Gram-trick kernel (points × centroids squared distances in one
// tiled pass); all per-iteration scratch — the distance matrix, centroid
// norms, and the update step's sums and counts — is hoisted into buffers
// allocated once per restart, so a warmed Lloyd iteration allocates
// nothing. Restarts run concurrently, each with its own RNG seeded from
// Seed and the restart index, so the outcome does not depend on
// scheduling: the best result is selected by scanning the restarts in
// index order with a strict inertia comparison, exactly as a serial loop
// would.
func KMeans(points []linalg.Vector, opts KMeansOptions) (*KMeansResult, error) {
	return KMeansCtx(context.Background(), points, opts)
}

// KMeansCtx is KMeans with cancellation: ctx is observed once per Lloyd
// iteration of every restart and between row strips of the blocked
// assignment kernel, and a panic in a restart or assignment worker is
// returned as an error instead of crashing the process.
func KMeansCtx(ctx context.Context, points []linalg.Vector, opts KMeansOptions) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}
	// The points matrix is shared read-only by every restart: aliased for
	// free when the points are views of a dataset's flat backing, packed
	// once otherwise.
	x, err := linalg.RowsMatrix(points)
	if err != nil {
		return nil, err
	}
	return KMeansMatCtx(ctx, x, opts)
}

// KMeansMat is KMeans on a flat row-major matrix at either modeling
// precision. A float32 matrix runs the whole Lloyd loop — distances,
// argmin, centroid updates — in float32 (halving the memory traffic of
// the assignment step), with the k-means++ sampling totals, the inertia
// reduction and the reported centroids kept in float64. With a float64
// matrix the result is bit-identical to KMeans on the matrix's row views.
func KMeansMat[F linalg.Float](x *linalg.Mat[F], opts KMeansOptions) (*KMeansResult, error) {
	return KMeansMatCtx[F](context.Background(), x, opts)
}

// KMeansMatCtx is KMeansMat with the cancellation and fault isolation of
// KMeansCtx. On cancellation every in-flight restart exits at its next
// iteration boundary and the pool drains before the call returns.
func KMeansMatCtx[F linalg.Float](ctx context.Context, x *linalg.Mat[F], opts KMeansOptions) (*KMeansResult, error) {
	opts = opts.withDefaults()
	n := x.Rows
	if n == 0 {
		return nil, ErrNoPoints
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("%w: k=%d with %d points", ErrBadK, opts.K, n)
	}

	xnorms := make(linalg.Vec[F], n)
	if err := linalg.RowNormsSquaredInto(xnorms, x); err != nil {
		return nil, err
	}

	workers := linalg.ResolveWorkers(opts.Workers)
	restartRNG := func(r int) *rand.Rand {
		return rand.New(rand.NewSource(opts.Seed + int64(r)*104729))
	}
	results := make([]*KMeansResult, opts.Restarts)
	errs := make([]error, opts.Restarts)
	if workers == 1 || opts.Restarts == 1 {
		for r := range results {
			results[r], errs[r] = kmeansOnce(ctx, x, xnorms, opts, restartRNG(r), workers)
		}
	} else {
		// Concurrent restarts, bounded by the worker budget: at most
		// `concurrent` restarts run at once, each chunking its assignment
		// step across the remaining budget, so the total goroutine count
		// stays within Workers.
		concurrent := workers
		if concurrent > opts.Restarts {
			concurrent = opts.Restarts
		}
		inner := workers / concurrent
		sem := make(chan struct{}, concurrent)
		var wg sync.WaitGroup
		for r := range results {
			wg.Add(1)
			sem <- struct{}{}
			// A panicking restart is captured as that restart's error slot;
			// the deterministic first-error scan below surfaces it exactly
			// where a serial run would have crashed.
			panicsafe.Go(func() error {
				defer func() { <-sem }()
				var err error
				results[r], err = kmeansOnce(ctx, x, xnorms, opts, restartRNG(r), inner)
				return err
			}, func(err error) { errs[r] = err }, wg.Done)
		}
		wg.Wait()
	}
	// Deterministic selection: first error, then lowest inertia, both in
	// restart order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var best *KMeansResult
	for _, res := range results {
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// kmeansScratch is the per-restart working set of the Lloyd loop. Each
// buffer is allocated once and reused by every iteration, so the warmed
// update loop runs at zero allocations — pinned by
// TestKMeansZeroAllocsPerIteration.
type kmeansScratch[F linalg.Float] struct {
	centroids *linalg.Mat[F] // K × dim, the current centroids
	cnorms    linalg.Vec[F]  // squared centroid norms
	dists     *linalg.Mat[F] // n × K point-to-centroid squared distances
	sums      *linalg.Mat[F] // K × dim update-step accumulator
	counts    []int
	labels    []int
}

func newKMeansScratch[F linalg.Float](n, k, dim int) *kmeansScratch[F] {
	return &kmeansScratch[F]{
		centroids: linalg.NewMat[F](k, dim),
		cnorms:    make(linalg.Vec[F], k),
		dists:     linalg.NewMat[F](n, k),
		sums:      linalg.NewMat[F](k, dim),
		counts:    make([]int, k),
		labels:    make([]int, n),
	}
}

// kmeansOnce runs one restart. The RNG is consumed only by the serial
// phases (k-means++ initialisation and the empty-cluster reseeding of the
// update step), so the draw sequence — and with it the result — is
// independent of the worker count.
func kmeansOnce[F linalg.Float](ctx context.Context, x *linalg.Mat[F], xnorms linalg.Vec[F], opts KMeansOptions, rng *rand.Rand, workers int) (*KMeansResult, error) {
	n, dim := x.Rows, x.Cols
	done := ctx.Done()
	init, err := kmeansPlusPlusInit(x, opts.K, rng)
	if err != nil {
		return nil, err
	}
	sc := newKMeansScratch[F](n, opts.K, dim)
	for c, v := range init {
		copy(sc.centroids.Row(c), v)
	}
	var iterations int
	converged := false
	for iterations = 0; iterations < opts.MaxIterations; iterations++ {
		// One cancellation check per Lloyd iteration; the blocked kernel
		// below adds its own per-strip checks for large point sets.
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Assignment step on the blocked kernel: all point-centroid
		// squared distances in one tiled pass, then an argmin per point.
		// Each point's nearest centroid is independent of every other
		// point, so the worker chunking cannot change the outcome.
		changed, err := assignNearest(ctx, x, xnorms, sc, workers)
		if err != nil {
			return nil, err
		}
		if !changed && iterations > 0 {
			converged = true
			break
		}
		// Update step: kept serial so the centroid sums accumulate in point
		// order and the empty-cluster reseeding consumes the RNG in the
		// same sequence as a serial run.
		for i := range sc.sums.Data {
			sc.sums.Data[i] = 0
		}
		for c := range sc.counts {
			sc.counts[c] = 0
		}
		for i := 0; i < n; i++ {
			l := sc.labels[i]
			if err := sc.sums.Row(l).AddInPlace(x.Row(i)); err != nil {
				return nil, err
			}
			sc.counts[l]++
		}
		for c := 0; c < opts.K; c++ {
			row := sc.centroids.Row(c)
			if sc.counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(row, x.Row(rng.Intn(n)))
				continue
			}
			inv := F(1 / float64(sc.counts[c]))
			sum := sc.sums.Row(c)
			for j := range row {
				row[j] = sum[j] * inv
			}
		}
	}
	// Final inertia of the assigned labels against the final centroids:
	// distances from the blocked kernel, reduced serially in point order so
	// the sum is bit-identical for any worker count. On the convergence
	// exit the centroids have not moved since the last assignment pass, so
	// sc.dists already holds exactly these values and the kernel pass is
	// skipped; only the iteration-budget exit (centroids updated after the
	// last assignment) needs the recompute.
	if !converged {
		if err := pointCentroidDistances(ctx, x, xnorms, sc, workers); err != nil {
			return nil, err
		}
	}
	var inertia float64
	for i := 0; i < n; i++ {
		inertia += float64(sc.dists.At(i, sc.labels[i]))
	}
	return &KMeansResult{
		Assignment: &Assignment{Labels: sc.labels, K: opts.K},
		Centroids:  widenRows(sc.centroids),
		Inertia:    inertia,
		Iterations: iterations,
	}, nil
}

// widenRows returns the rows of m as float64 vectors: aliasing views for a
// float64 matrix (the historical KMeans contract — callers may keep
// mutating through them), widened copies for a float32 one.
func widenRows[F linalg.Float](m *linalg.Mat[F]) []linalg.Vector {
	if m64, ok := any(m).(*linalg.Matrix); ok {
		return m64.RowViews()
	}
	out := make([]linalg.Vector, m.Rows)
	for i := range out {
		src := m.Row(i)
		row := make(linalg.Vector, m.Cols)
		for j, x := range src {
			row[j] = float64(x)
		}
		out[i] = row
	}
	return out
}

// chunkPoints splits [0, n) into at most `workers` contiguous chunks and
// runs fn on each concurrently, returning the first error by chunk order.
// A panic inside fn is captured as that chunk's error.
func chunkPoints(n, workers int, fn func(lo, hi int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return panicsafe.Call(func() error { return fn(0, n) })
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		panicsafe.Go(func() error {
			return fn(lo, hi)
		}, func(err error) { errs[w] = err }, wg.Done)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pointCentroidDistances fills sc.dists with the squared distances of every
// point to every current centroid via the blocked cross kernel. The point
// norms are fixed for the whole run and shared read-only across restarts;
// only the centroid norms are refreshed.
func pointCentroidDistances[F linalg.Float](ctx context.Context, x *linalg.Mat[F], xnorms linalg.Vec[F], sc *kmeansScratch[F], workers int) error {
	if err := linalg.RowNormsSquaredInto(sc.cnorms, sc.centroids); err != nil {
		return err
	}
	return linalg.CrossSquaredIntoCtx(ctx, sc.dists, x, sc.centroids, xnorms, sc.cnorms, workers)
}

// assignNearest relabels every point to its nearest centroid (ties to the
// lowest centroid index, as in a serial scan) and reports whether any
// label changed. The serial path stays closure-free so a warmed Lloyd
// iteration performs no allocations.
func assignNearest[F linalg.Float](ctx context.Context, x *linalg.Mat[F], xnorms linalg.Vec[F], sc *kmeansScratch[F], workers int) (bool, error) {
	if err := pointCentroidDistances(ctx, x, xnorms, sc, workers); err != nil {
		return false, err
	}
	if workers <= 1 {
		return argminRange(sc, 0, x.Rows), nil
	}
	var changed atomic.Bool
	err := chunkPoints(x.Rows, workers, func(lo, hi int) error {
		if argminRange(sc, lo, hi) {
			changed.Store(true)
		}
		return nil
	})
	return changed.Load(), err
}

// argminRange assigns points [lo, hi) to their nearest centroid by
// scanning the distance rows in ascending centroid order (ties to the
// lowest index) and reports whether any label changed.
func argminRange[F linalg.Float](sc *kmeansScratch[F], lo, hi int) bool {
	changed := false
	for i := lo; i < hi; i++ {
		row := sc.dists.Row(i)
		best, bestDist := 0, F(math.Inf(1))
		for c, d := range row {
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		if sc.labels[i] != best {
			sc.labels[i] = best
			changed = true
		}
	}
	return changed
}

// kmeansPlusPlusInit picks initial centroids with the k-means++ scheme:
// each next centroid is drawn with probability proportional to its squared
// distance from the nearest centroid chosen so far. Per-point squared
// distances are accumulated at the matrix's own precision; the sampling
// total and the cumulative scan run in float64, so the float32 path draws
// from (essentially) the same distribution instead of a coarsely
// quantised one.
func kmeansPlusPlusInit[F linalg.Float](x *linalg.Mat[F], k int, rng *rand.Rand) ([]linalg.Vec[F], error) {
	n := x.Rows
	centroids := make([]linalg.Vec[F], 0, k)
	centroids = append(centroids, x.RowCopy(rng.Intn(n)))
	distSq := make([]float64, n)
	for len(centroids) < k {
		var total float64
		latest := centroids[len(centroids)-1]
		for i := 0; i < n; i++ {
			d, err := linalg.SquaredDistance(x.Row(i), latest)
			if err != nil {
				return nil, err
			}
			if len(centroids) == 1 || d < distSq[i] {
				distSq[i] = d
			}
			total += distSq[i]
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, x.RowCopy(rng.Intn(n)))
			continue
		}
		target := rng.Float64() * total
		var cum float64
		chosen := n - 1
		for i, d := range distSq {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, x.RowCopy(chosen))
	}
	return centroids, nil
}
