package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
)

// KMeansOptions configure the k-means baseline.
type KMeansOptions struct {
	// K is the number of clusters. Required.
	K int
	// MaxIterations bounds the Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives the k-means++ initialisation.
	Seed int64
	// Restarts runs the algorithm this many times with different
	// initialisations and keeps the lowest-inertia result (default 1).
	Restarts int
	// Workers bounds the goroutines used for the assignment step and for
	// running restarts concurrently (≤ 0 means GOMAXPROCS). The result is
	// bit-identical for any Workers value: every restart draws from its own
	// seeded RNG, per-point assignments are independent, and all floating-
	// point reductions (centroid update, inertia) keep a fixed serial
	// order.
	Workers int
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	return o
}

// KMeansResult is the outcome of a k-means run.
type KMeansResult struct {
	Assignment *Assignment
	Centroids  []linalg.Vector
	// Inertia is the sum of squared distances of points to their assigned
	// centroid.
	Inertia float64
	// Iterations is the number of Lloyd iterations of the best restart.
	Iterations int
}

// KMeans clusters the points with Lloyd's algorithm and k-means++
// initialisation. It is the baseline the benchmark harness compares the
// paper's hierarchical clustering against. Restarts run concurrently, each
// with its own RNG seeded from Seed and the restart index, so the outcome
// does not depend on scheduling: the best result is selected by scanning
// the restarts in index order with a strict inertia comparison, exactly as
// the serial loop did.
func KMeans(points []linalg.Vector, opts KMeansOptions) (*KMeansResult, error) {
	opts = opts.withDefaults()
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("%w: k=%d with %d points", ErrBadK, opts.K, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}

	workers := linalg.ResolveWorkers(opts.Workers)
	restartRNG := func(r int) *rand.Rand {
		return rand.New(rand.NewSource(opts.Seed + int64(r)*104729))
	}
	results := make([]*KMeansResult, opts.Restarts)
	errs := make([]error, opts.Restarts)
	if workers == 1 || opts.Restarts == 1 {
		for r := range results {
			results[r], errs[r] = kmeansOnce(points, opts, restartRNG(r), workers)
		}
	} else {
		// Concurrent restarts, bounded by the worker budget: at most
		// `concurrent` restarts run at once, each chunking its assignment
		// step across the remaining budget, so the total goroutine count
		// stays within Workers.
		concurrent := workers
		if concurrent > opts.Restarts {
			concurrent = opts.Restarts
		}
		inner := workers / concurrent
		sem := make(chan struct{}, concurrent)
		var wg sync.WaitGroup
		for r := range results {
			wg.Add(1)
			sem <- struct{}{}
			go func(r int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[r], errs[r] = kmeansOnce(points, opts, restartRNG(r), inner)
			}(r)
		}
		wg.Wait()
	}
	// Deterministic selection: first error, then lowest inertia, both in
	// restart order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var best *KMeansResult
	for _, res := range results {
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// kmeansOnce runs one restart. The RNG is consumed only by the serial
// phases (k-means++ initialisation and the empty-cluster reseeding of the
// update step), so the draw sequence — and with it the result — is
// independent of the worker count.
func kmeansOnce(points []linalg.Vector, opts KMeansOptions, rng *rand.Rand, workers int) (*KMeansResult, error) {
	n := len(points)
	centroids, err := kmeansPlusPlusInit(points, opts.K, rng)
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	// pointDist[i] is the squared distance of point i to its assigned (or,
	// after the final pass, nearest) centroid — per-point scratch shared by
	// the assignment workers, each writing a disjoint chunk.
	pointDist := make([]float64, n)
	var iterations int
	for iterations = 0; iterations < opts.MaxIterations; iterations++ {
		// Assignment step, chunked across workers. Each point's nearest
		// centroid is independent of every other point, so the chunking
		// cannot change the outcome.
		changed, err := assignChunked(points, centroids, labels, pointDist, workers)
		if err != nil {
			return nil, err
		}
		if !changed && iterations > 0 {
			break
		}
		// Update step: kept serial so the centroid sums accumulate in point
		// order and the empty-cluster reseeding consumes the RNG in the
		// same sequence as a serial run.
		dim := len(points[0])
		sums := make([]linalg.Vector, opts.K)
		counts := make([]int, opts.K)
		for c := range sums {
			sums[c] = make(linalg.Vector, dim)
		}
		for i, p := range points {
			if err := sums[labels[i]].AddInPlace(p); err != nil {
				return nil, err
			}
			counts[labels[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = points[rng.Intn(n)].Clone()
				continue
			}
			centroids[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
	// Final inertia of the assigned labels against the final centroids:
	// distances in parallel, reduced serially in point order so the sum is
	// bit-identical to the serial loop.
	if err := assignedDistances(points, centroids, labels, pointDist, workers); err != nil {
		return nil, err
	}
	var inertia float64
	for _, d := range pointDist {
		inertia += d
	}
	return &KMeansResult{
		Assignment: &Assignment{Labels: labels, K: opts.K},
		Centroids:  centroids,
		Inertia:    inertia,
		Iterations: iterations,
	}, nil
}

// chunkPoints splits [0, n) into at most `workers` contiguous chunks and
// runs fn on each concurrently, returning the first error by chunk order.
func chunkPoints(n, workers int, fn func(lo, hi int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// assignChunked relabels every point to its nearest centroid (ties to the
// lowest centroid index, as in the serial scan) and reports whether any
// label changed. dist[i] receives the squared distance of point i to its
// new centroid.
func assignChunked(points []linalg.Vector, centroids []linalg.Vector, labels []int, dist []float64, workers int) (bool, error) {
	var changed atomic.Bool
	err := chunkPoints(len(points), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			best, bestDist := 0, math.Inf(1)
			for c, centroid := range centroids {
				d, err := linalg.SquaredDistance(points[i], centroid)
				if err != nil {
					return err
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			dist[i] = bestDist
			if labels[i] != best {
				labels[i] = best
				changed.Store(true)
			}
		}
		return nil
	})
	return changed.Load(), err
}

// assignedDistances fills dist[i] with the squared distance of point i to
// its ASSIGNED centroid (labels are not touched) — the final-inertia pass.
func assignedDistances(points []linalg.Vector, centroids []linalg.Vector, labels []int, dist []float64, workers int) error {
	return chunkPoints(len(points), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			d, err := linalg.SquaredDistance(points[i], centroids[labels[i]])
			if err != nil {
				return err
			}
			dist[i] = d
		}
		return nil
	})
}

// kmeansPlusPlusInit picks initial centroids with the k-means++ scheme:
// each next centroid is drawn with probability proportional to its squared
// distance from the nearest centroid chosen so far.
func kmeansPlusPlusInit(points []linalg.Vector, k int, rng *rand.Rand) ([]linalg.Vector, error) {
	n := len(points)
	centroids := make([]linalg.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(n)].Clone())
	distSq := make([]float64, n)
	for len(centroids) < k {
		var total float64
		latest := centroids[len(centroids)-1]
		for i, p := range points {
			d, err := linalg.SquaredDistance(p, latest)
			if err != nil {
				return nil, err
			}
			if len(centroids) == 1 || d < distSq[i] {
				distSq[i] = d
			}
			total += distSq[i]
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, points[rng.Intn(n)].Clone())
			continue
		}
		target := rng.Float64() * total
		var cum float64
		chosen := n - 1
		for i, d := range distSq {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, points[chosen].Clone())
	}
	return centroids, nil
}
