package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/testutil"
)

// testWorkerCounts sweeps the serial path, fixed small counts, GOMAXPROCS
// and the "all cores" default.
func testWorkerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0), 0}
}

// randomPoints draws n points with continuous coordinates, so pairwise
// distances are distinct with probability 1 and the NN-chain and naive
// agglomerations must produce the same dendrogram.
func randomPoints(rng *rand.Rand, n, dim int) []linalg.Vector {
	points := make([]linalg.Vector, n)
	for i := range points {
		p := make(linalg.Vector, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 3
		}
		points[i] = p
	}
	return points
}

// Property: the condensed NN-chain engine agrees with the naive O(N³)
// global-minimum agglomeration oracle for every linkage — same merge
// structure, same sizes, same distances (up to FP noise), and identical
// partitions at every cut.
func TestHierarchicalMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, linkage := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		for _, n := range []int{2, 3, 5, 13, 31, 60} {
			points := randomPoints(rng, n, 4)
			got, err := Hierarchical(points, linkage)
			if err != nil {
				t.Fatalf("%v n=%d: %v", linkage, n, err)
			}
			want, err := hierarchicalNaive(points, linkage)
			if err != nil {
				t.Fatalf("%v n=%d oracle: %v", linkage, n, err)
			}
			if len(got.Merges) != len(want.Merges) {
				t.Fatalf("%v n=%d: %d merges, oracle %d", linkage, n, len(got.Merges), len(want.Merges))
			}
			for i := range got.Merges {
				g, w := got.Merges[i], want.Merges[i]
				// The pair within one merge is unordered: the chain can
				// reach it from either side.
				ga, gb := min(g.A, g.B), max(g.A, g.B)
				wa, wb := min(w.A, w.B), max(w.A, w.B)
				if ga != wa || gb != wb || g.Size != w.Size {
					t.Fatalf("%v n=%d merge %d: got %+v, oracle %+v", linkage, n, i, g, w)
				}
				if diff := math.Abs(g.Distance - w.Distance); diff > 1e-9*(1+w.Distance) {
					t.Fatalf("%v n=%d merge %d: distance %g, oracle %g", linkage, n, i, g.Distance, w.Distance)
				}
			}
			for k := 1; k <= n && k <= 8; k++ {
				ga, err := got.CutK(k)
				if err != nil {
					t.Fatal(err)
				}
				wa, err := want.CutK(k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ga.Labels, wa.Labels) {
					t.Fatalf("%v n=%d k=%d: labels %v, oracle %v", linkage, n, k, ga.Labels, wa.Labels)
				}
			}
		}
	}
}

// Property: the dendrogram is bit-identical for any worker count — the
// distance matrix entries are each computed by exactly one goroutine and
// the agglomeration is sequential.
func TestHierarchicalWorkersBitIdentical(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(43))
	points := randomPoints(rng, 120, 6)
	base, err := HierarchicalWorkers(points, AverageLinkage, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range testWorkerCounts() {
		d, err := HierarchicalWorkers(points, AverageLinkage, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(d, base) {
			t.Fatalf("workers %d: dendrogram differs from serial run", workers)
		}
	}
}

// Regression for the latent deadlock in distanceMatrix: with ragged input
// every worker used to exit early on the SquaredDistance error, stranding
// the producer on the unbuffered rows channel forever. Both distance paths
// now validate dimensions before any worker starts, so they must return
// the dimension error promptly (the timeout is the deadlock detector).
func TestDistanceMatrixRaggedNoDeadlock(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	// Enough rows that the old producer outlived the workers' early exit.
	points := make([]linalg.Vector, 256)
	for i := range points {
		points[i] = linalg.Vector{1, 2, 3}
	}
	points[1] = linalg.Vector{1} // ragged

	type result struct {
		name string
		err  error
	}
	done := make(chan result, 2)
	go func() {
		_, err := distanceMatrix(points)
		done <- result{"distanceMatrix", err}
	}()
	go func() {
		_, err := condensedDistances(context.Background(), points, 0)
		done <- result{"condensedDistances", err}
	}()
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if !errors.Is(r.err, ErrShapeRagged) {
				t.Errorf("%s: error = %v, want ErrShapeRagged", r.name, r.err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("distance computation deadlocked on ragged input")
		}
	}
}

// The condensed index must cover every pair exactly once.
func TestCondensedIndexing(t *testing.T) {
	for _, n := range []int{2, 3, 7, 12} {
		c := newCondensed(n)
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				idx := c.index(i, j)
				if idx != c.index(j, i) {
					t.Fatalf("n=%d: index(%d,%d) != index(%d,%d)", n, i, j, j, i)
				}
				if idx < 0 || idx >= len(c.d) {
					t.Fatalf("n=%d: index(%d,%d) = %d out of [0,%d)", n, i, j, idx, len(c.d))
				}
				if seen[idx] {
					t.Fatalf("n=%d: index(%d,%d) = %d already used", n, i, j, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != len(c.d) {
			t.Fatalf("n=%d: %d distinct indices for %d entries", n, len(seen), len(c.d))
		}
		// row(i) must alias the same storage the pair index reaches.
		for i := 0; i < n-1; i++ {
			row := c.row(i)
			if len(row) != n-1-i {
				t.Fatalf("n=%d: row(%d) has %d entries, want %d", n, i, len(row), n-1-i)
			}
			row[0] = float64(i + 1)
			if c.at(i, i+1) != float64(i+1) {
				t.Fatalf("n=%d: row(%d) does not alias pair (%d,%d)", n, i, i, i+1)
			}
		}
	}
}

// Property: KMeans is bit-identical for any Workers value — the serial path
// (Workers=1) is the oracle for the chunked assignment step and the
// concurrent restarts.
func TestKMeansWorkersBitIdentical(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(47))
	points, _ := blobs(rng, 4, 60, 8, 2.5)
	for _, maxIter := range []int{3, 100} { // exhaustion and convergence exits
		opts := KMeansOptions{K: 4, Seed: 17, Restarts: 3, MaxIterations: maxIter}
		opts.Workers = 1
		serial, err := KMeans(points, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range testWorkerCounts() {
			opts.Workers = workers
			par, err := KMeans(points, opts)
			if err != nil {
				t.Fatalf("workers %d: %v", workers, err)
			}
			if !reflect.DeepEqual(par, serial) {
				t.Fatalf("maxIter %d workers %d: result differs from serial run:\npar  %+v\nser  %+v",
					maxIter, workers, par, serial)
			}
		}
	}
}

func BenchmarkHierarchicalVsNaive400(b *testing.B) {
	rng := rand.New(rand.NewSource(49))
	points := randomPoints(rng, 400, 24)
	b.Run("nnchain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Hierarchical(points, AverageLinkage); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hierarchicalNaive(points, AverageLinkage); err != nil {
				b.Fatal(err)
			}
		}
	})
}
