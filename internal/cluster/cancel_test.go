package cluster

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestPreCancelledContext pins the cheapest invariant: an already-cancelled
// context aborts every ctx-aware entry point before any real work starts.
func TestPreCancelledContext(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(7))
	points := randomPoints(rng, 64, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := HierarchicalWorkersCtx(ctx, points, AverageLinkage, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("HierarchicalWorkersCtx: err = %v, want context.Canceled", err)
	}
	if _, err := KMeansCtx(ctx, points, KMeansOptions{K: 4, Workers: 4, Restarts: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("KMeansCtx: err = %v, want context.Canceled", err)
	}
	dendro, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DBICurveCtx(ctx, points, dendro, 2, 8, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("DBICurveCtx: err = %v, want context.Canceled", err)
	}
	if _, _, err := OptimalKCtx(ctx, points, dendro, 2, 8, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimalKCtx: err = %v, want context.Canceled", err)
	}
}

// TestHierarchicalCancellationProperty cancels mid-flight at randomized
// points — most trials land inside condensedDistances, the dominant
// O(N²·D) phase — and asserts the two-sided contract: the call either
// completes with a dendrogram bit-identical to the uncancelled baseline,
// or returns context.Canceled with no partial result, and in both cases
// the worker pool unwinds promptly without leaking goroutines.
func TestHierarchicalCancellationProperty(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(1409))
	points := randomPoints(rng, 400, 32)
	baseline, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}

	const trials = 10
	for trial := 0; trial < trials; trial++ {
		workers := []int{1, 2, 4}[trial%3]
		delay := time.Duration(rng.Intn(2000)) * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		start := time.Now()
		dendro, err := HierarchicalWorkersCtx(ctx, points, AverageLinkage, workers)
		elapsed := time.Since(start)
		cancel()
		if elapsed > 10*time.Second {
			t.Fatalf("trial %d: cancellation took %v to unwind", trial, elapsed)
		}
		switch {
		case err == nil:
			if !reflect.DeepEqual(dendro.Merges, baseline.Merges) {
				t.Fatalf("trial %d: completed run diverged from baseline", trial)
			}
		case errors.Is(err, context.Canceled):
			if dendro != nil {
				t.Fatalf("trial %d: partial dendrogram returned alongside cancellation", trial)
			}
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
}

// TestKMeansCancellationProperty does the same for concurrent k-means
// restarts: cancellation mid-restart must drain the semaphore-bounded
// pool and report context.Canceled, never a partial result.
func TestKMeansCancellationProperty(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(2718))
	points := randomPoints(rng, 300, 16)
	opts := KMeansOptions{K: 5, Restarts: 8, Seed: 11, Workers: 4}
	baseline, err := KMeans(points, opts)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 8; trial++ {
		delay := time.Duration(rng.Intn(1500)) * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		res, err := KMeansCtx(ctx, points, opts)
		cancel()
		switch {
		case err == nil:
			if res.Inertia != baseline.Inertia || !reflect.DeepEqual(res.Assignment.Labels, baseline.Assignment.Labels) {
				t.Fatalf("trial %d: completed run diverged from baseline", trial)
			}
		case errors.Is(err, context.Canceled):
			if res != nil {
				t.Fatalf("trial %d: partial result returned alongside cancellation", trial)
			}
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
}
