package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/linalg"
)

// This file retains the pre-condensed agglomeration paths as test oracles
// for the production NN-chain engine in hierarchical.go. They are compiled
// into the package (not the tests) so the benchmark harness can also pit
// the production path against them, but nothing outside the oracle
// property tests and benchmarks should call them: both are strictly slower
// and the naive path is O(N³).

// hierarchicalNaive is the textbook agglomeration: scan every active pair
// for the global minimum linkage distance, merge, apply the Lance–Williams
// update on a full N×N matrix, repeat. O(N³) time, O(N²) memory — slow but
// obviously correct, which is exactly what an oracle should be.
func hierarchicalNaive(points []linalg.Vector, linkage Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	switch linkage {
	case AverageLinkage, SingleLinkage, CompleteLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
	}
	if n == 1 {
		return &Dendrogram{N: 1, Linkage: linkage, Merges: nil}, nil
	}
	dist, err := distanceMatrix(points)
	if err != nil {
		return nil, err
	}
	d := func(i, j int) float64 { return dist[i*n+j] }
	setD := func(i, j int, v float64) { dist[i*n+j] = v; dist[j*n+i] = v }

	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	slotMerges := make([]slotMerge, 0, n-1)
	for len(slotMerges) < n-1 {
		// Global minimum over all active pairs, first pair in (i,j) scan
		// order on ties.
		bestA, bestB, bestDist := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dj := d(i, j); dj < bestDist {
					bestA, bestB, bestDist = i, j, dj
				}
			}
		}
		a, b := bestA, bestB
		na, nb := size[a], size[b]
		for k := 0; k < n; k++ {
			if !active[k] || k == a || k == b {
				continue
			}
			var nd float64
			switch linkage {
			case AverageLinkage:
				nd = (float64(na)*d(a, k) + float64(nb)*d(b, k)) / float64(na+nb)
			case SingleLinkage:
				nd = math.Min(d(a, k), d(b, k))
			case CompleteLinkage:
				nd = math.Max(d(a, k), d(b, k))
			}
			setD(a, k, nd)
		}
		slotMerges = append(slotMerges, slotMerge{slotA: a, slotB: b, distance: bestDist})
		active[b] = false
		size[a] = na + nb
	}
	return relabelMerges(n, linkage, slotMerges), nil
}

// distanceMatrix computes the full N×N Euclidean distance matrix in
// parallel. The up-front dimension validation is the fix for the latent
// deadlock the previous version had: SquaredDistance could fail mid-flight
// on ragged input, every worker would exit early, and the producer was
// stranded forever on the unbuffered send. The cancellable select in the
// producer is defence in depth — unreachable today because validation
// removes the only error source, but it keeps the fan-out pattern correct
// if the worker loop ever gains another early exit.
func distanceMatrix(points []linalg.Vector) ([]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}
	dist := make([]float64, n*n)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	rows := make(chan int)
	done := make(chan struct{})
	errOnce := sync.Once{}
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := i + 1; j < n; j++ {
					sq, err := linalg.SquaredDistance(points[i], points[j])
					if err != nil {
						errOnce.Do(func() {
							firstErr = err
							close(done)
						})
						return
					}
					v := math.Sqrt(sq)
					dist[i*n+j] = v
					dist[j*n+i] = v
				}
			}
		}()
	}
produce:
	for i := 0; i < n; i++ {
		select {
		case rows <- i:
		case <-done:
			break produce
		}
	}
	close(rows)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return dist, nil
}
