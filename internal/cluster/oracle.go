package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/linalg"
)

// This file retains the superseded per-pair computation paths as test
// oracles for the blocked production engine: the pre-condensed
// agglomeration paths (for the NN-chain engine in hierarchical.go) and the
// per-pair distance loops the Gram-trick kernels replaced (for the
// condensed matrix, the k-means assignment step and the validity indices).
// They are compiled into the package (not the tests) so the benchmark
// harness can also pit the production paths against them, but nothing
// outside the oracle property tests and benchmarks should call them: all
// are strictly slower and the naive agglomeration is O(N³).

// hierarchicalNaive is the textbook agglomeration: scan every active pair
// for the global minimum linkage distance, merge, apply the Lance–Williams
// update on a full N×N matrix, repeat. O(N³) time, O(N²) memory — slow but
// obviously correct, which is exactly what an oracle should be.
func hierarchicalNaive(points []linalg.Vector, linkage Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	switch linkage {
	case AverageLinkage, SingleLinkage, CompleteLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
	}
	if n == 1 {
		return &Dendrogram{N: 1, Linkage: linkage, Merges: nil}, nil
	}
	dist, err := distanceMatrix(points)
	if err != nil {
		return nil, err
	}
	d := func(i, j int) float64 { return dist[i*n+j] }
	setD := func(i, j int, v float64) { dist[i*n+j] = v; dist[j*n+i] = v }

	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	slotMerges := make([]slotMerge, 0, n-1)
	for len(slotMerges) < n-1 {
		// Global minimum over all active pairs, first pair in (i,j) scan
		// order on ties.
		bestA, bestB, bestDist := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dj := d(i, j); dj < bestDist {
					bestA, bestB, bestDist = i, j, dj
				}
			}
		}
		a, b := bestA, bestB
		na, nb := size[a], size[b]
		for k := 0; k < n; k++ {
			if !active[k] || k == a || k == b {
				continue
			}
			var nd float64
			switch linkage {
			case AverageLinkage:
				nd = (float64(na)*d(a, k) + float64(nb)*d(b, k)) / float64(na+nb)
			case SingleLinkage:
				nd = math.Min(d(a, k), d(b, k))
			case CompleteLinkage:
				nd = math.Max(d(a, k), d(b, k))
			}
			setD(a, k, nd)
		}
		slotMerges = append(slotMerges, slotMerge{slotA: a, slotB: b, distance: bestDist})
		active[b] = false
		size[a] = na + nb
	}
	return relabelMerges(n, linkage, slotMerges), nil
}

// distanceMatrix computes the full N×N Euclidean distance matrix in
// parallel. The up-front dimension validation is the fix for the latent
// deadlock the previous version had: SquaredDistance could fail mid-flight
// on ragged input, every worker would exit early, and the producer was
// stranded forever on the unbuffered send. The cancellable select in the
// producer is defence in depth — unreachable today because validation
// removes the only error source, but it keeps the fan-out pattern correct
// if the worker loop ever gains another early exit.
func distanceMatrix(points []linalg.Vector) ([]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}
	dist := make([]float64, n*n)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	rows := make(chan int)
	done := make(chan struct{})
	errOnce := sync.Once{}
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := i + 1; j < n; j++ {
					sq, err := linalg.SquaredDistance(points[i], points[j])
					if err != nil {
						errOnce.Do(func() {
							firstErr = err
							close(done)
						})
						return
					}
					v := math.Sqrt(sq)
					dist[i*n+j] = v
					dist[j*n+i] = v
				}
			}
		}()
	}
produce:
	for i := 0; i < n; i++ {
		select {
		case rows <- i:
		case <-done:
			break produce
		}
	}
	close(rows)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return dist, nil
}

// condensedDistancesOracle is the per-pair form condensedDistances had
// before the blocked Gram-trick kernel: one subtract-square loop per pair,
// serial. The production kernel must agree with it within 1e-9 relative
// error and make the identical agglomeration decisions.
func condensedDistancesOracle(points []linalg.Vector) (condensed, error) {
	n := len(points)
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return condensed{}, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}
	c := newCondensed(n)
	for i := 0; i < n-1; i++ {
		row := c.row(i)
		pi := points[i]
		for k := range row {
			sq, _ := linalg.SquaredDistance(pi, points[i+1+k])
			row[k] = math.Sqrt(sq)
		}
	}
	return c, nil
}

// hierarchicalPerPairOracle runs the production NN-chain agglomeration
// over the per-pair oracle distances — isolating the effect of the blocked
// kernel from the effect of the chain algorithm (which
// hierarchicalNaive covers).
func hierarchicalPerPairOracle(points []linalg.Vector, linkage Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if n == 1 {
		return &Dendrogram{N: 1, Linkage: linkage, Merges: nil}, nil
	}
	dist, err := condensedDistancesOracle(points)
	if err != nil {
		return nil, err
	}
	slotMerges, err := nnChain(context.Background(), dist, linkage)
	if err != nil {
		return nil, err
	}
	return relabelMerges(n, linkage, slotMerges), nil
}

// kmeansOracle is the per-pair serial k-means the blocked assignment step
// replaced: SquaredDistance per point-centroid pair, freshly allocated
// centroid sums every iteration. The RNG consumption is identical to the
// production engine's, so for the same options the two must make the same
// decisions (assignments, sizes, iteration counts) with inertia agreeing
// to Gram-trick precision.
func kmeansOracle(points []linalg.Vector, opts KMeansOptions) (*KMeansResult, error) {
	opts = opts.withDefaults()
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	var best *KMeansResult
	for r := 0; r < opts.Restarts; r++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(r)*104729))
		res, err := kmeansOnceOracle(points, opts, rng)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnceOracle(points []linalg.Vector, opts KMeansOptions, rng *rand.Rand) (*KMeansResult, error) {
	n := len(points)
	x, err := linalg.RowsMatrix(points)
	if err != nil {
		return nil, err
	}
	// The shared k-means++ init consumes the RNG identically to the
	// production engine; row copies of x are exactly the input points.
	centroids, err := kmeansPlusPlusInit(x, opts.K, rng)
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	var iterations int
	for iterations = 0; iterations < opts.MaxIterations; iterations++ {
		changed := false
		for i, p := range points {
			best, bestDist := 0, math.Inf(1)
			for c, centroid := range centroids {
				d, err := linalg.SquaredDistance(p, centroid)
				if err != nil {
					return nil, err
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iterations > 0 {
			break
		}
		dim := len(points[0])
		sums := make([]linalg.Vector, opts.K)
		counts := make([]int, opts.K)
		for c := range sums {
			sums[c] = make(linalg.Vector, dim)
		}
		for i, p := range points {
			if err := sums[labels[i]].AddInPlace(p); err != nil {
				return nil, err
			}
			counts[labels[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				centroids[c] = points[rng.Intn(n)].Clone()
				continue
			}
			centroids[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
	var inertia float64
	for i, p := range points {
		d, err := linalg.SquaredDistance(p, centroids[labels[i]])
		if err != nil {
			return nil, err
		}
		inertia += d
	}
	return &KMeansResult{
		Assignment: &Assignment{Labels: labels, K: opts.K},
		Centroids:  centroids,
		Inertia:    inertia,
		Iterations: iterations,
	}, nil
}

// silhouetteOracle is the per-pair Silhouette the blocked kernel replaced.
func silhouetteOracle(points []linalg.Vector, a *Assignment) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, ErrNoPoints
	}
	sizes := a.Sizes()
	var total float64
	for i := 0; i < n; i++ {
		li := a.Labels[i]
		if sizes[li] <= 1 {
			continue
		}
		sumByCluster := make([]float64, a.K)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d, err := linalg.Distance(points[i], points[j])
			if err != nil {
				return 0, err
			}
			sumByCluster[a.Labels[j]] += d
		}
		own := sumByCluster[li] / float64(sizes[li]-1)
		other := math.Inf(1)
		for c := 0; c < a.K; c++ {
			if c == li || sizes[c] == 0 {
				continue
			}
			if v := sumByCluster[c] / float64(sizes[c]); v < other {
				other = v
			}
		}
		if math.IsInf(other, 1) {
			continue
		}
		max := math.Max(own, other)
		if max > 0 {
			total += (other - own) / max
		}
	}
	return total / float64(n), nil
}

// daviesBouldinOracle is the per-pair Davies–Bouldin the blocked kernels
// replaced.
func daviesBouldinOracle(points []linalg.Vector, a *Assignment) (float64, error) {
	centroids, err := Centroids(points, a)
	if err != nil {
		return 0, err
	}
	scatter := make([]float64, a.K)
	counts := make([]int, a.K)
	for i, p := range points {
		l := a.Labels[i]
		d, err := linalg.Distance(p, centroids[l])
		if err != nil {
			return 0, err
		}
		scatter[l] += d
		counts[l]++
	}
	for i := range scatter {
		if counts[i] > 0 {
			scatter[i] /= float64(counts[i])
		}
	}
	var idx []int
	for i, c := range counts {
		if c > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return 0, errors.New("cluster: Davies-Bouldin needs at least two non-empty clusters")
	}
	var sum float64
	for _, i := range idx {
		worst := math.Inf(-1)
		for _, j := range idx {
			if i == j {
				continue
			}
			m, err := linalg.Distance(centroids[i], centroids[j])
			if err != nil {
				return 0, err
			}
			if m == 0 {
				worst = math.Inf(1)
				continue
			}
			if r := (scatter[i] + scatter[j]) / m; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(len(idx)), nil
}
