package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	points, truth := blobs(rng, 4, 25, 5, 0.5)
	res, err := KMeans(points, KMeansOptions{K: 4, Seed: 1, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := AdjustedRandIndex(res.Assignment.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Errorf("k-means ARI = %g, want ~1 on separated blobs", ari)
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %g, want positive", res.Inertia)
	}
	if len(res.Centroids) != 4 {
		t.Errorf("centroids = %d, want 4", len(res.Centroids))
	}
	if res.Iterations < 1 {
		t.Error("expected at least one iteration")
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	points, _ := blobs(rng, 3, 20, 4, 1.0)
	a, err := KMeans(points, KMeansOptions{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, KMeansOptions{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment.Labels {
		if a.Assignment.Labels[i] != b.Assignment.Labels[i] {
			t.Fatal("same seed should produce identical assignments")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, KMeansOptions{K: 2}); !errors.Is(err, ErrNoPoints) {
		t.Errorf("no points: %v", err)
	}
	points := []linalg.Vector{{1}, {2}, {3}}
	if _, err := KMeans(points, KMeansOptions{K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := KMeans(points, KMeansOptions{K: 5}); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n: %v", err)
	}
	ragged := []linalg.Vector{{1, 2}, {1}}
	if _, err := KMeans(ragged, KMeansOptions{K: 2}); !errors.Is(err, ErrShapeRagged) {
		t.Errorf("ragged: %v", err)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	// All points identical: k-means must terminate and produce zero inertia.
	points := []linalg.Vector{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	res, err := KMeans(points, KMeansOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %g, want 0", res.Inertia)
	}
	if len(res.Assignment.Labels) != 4 {
		t.Error("every point should be labelled")
	}
}

func TestKMeansRestartsImproveOrMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	points, _ := blobs(rng, 5, 15, 3, 1.5)
	single, err := KMeans(points, KMeansOptions{K: 5, Seed: 3, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := KMeans(points, KMeansOptions{K: 5, Seed: 3, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Inertia > single.Inertia+1e-9 {
		t.Errorf("more restarts should never raise inertia: %g vs %g", multi.Inertia, single.Inertia)
	}
}

func TestKMeansVsHierarchicalOnBlobs(t *testing.T) {
	// Both algorithms should agree almost perfectly on clean blobs — the
	// baseline comparison of the benchmark harness in miniature.
	rng := rand.New(rand.NewSource(54))
	points, truth := blobs(rng, 3, 20, 6, 0.4)
	km, err := KMeans(points, KMeansOptions{K: 3, Seed: 1, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	dendro, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := dendro.CutK(3)
	if err != nil {
		t.Fatal(err)
	}
	ariKM, _ := AdjustedRandIndex(km.Assignment.Labels, truth)
	ariHC, _ := AdjustedRandIndex(hc.Labels, truth)
	if ariKM < 0.95 || ariHC < 0.95 {
		t.Errorf("ARI km=%g hc=%g, want both ~1", ariKM, ariHC)
	}
}

func BenchmarkKMeans200x144(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	points, _ := blobs(rng, 5, 40, 144, 2.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(points, KMeansOptions{K: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
