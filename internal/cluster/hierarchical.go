// Package cluster implements the pattern-identifier and metric-tuner stages
// of the paper's system (Section 3.2): agglomerative hierarchical
// clustering of the per-tower traffic vectors with average linkage and a
// Euclidean metric, cut either by a distance threshold or by cluster count,
// with the Davies–Bouldin index as the model-selection criterion. A k-means
// baseline and additional validity indices (silhouette) are provided for
// the ablation studies in the benchmark harness.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// Linkage selects how the distance between two clusters is derived from
// point-to-point distances.
type Linkage int

// Supported linkage criteria.
const (
	// AverageLinkage is the paper's choice: the mean pairwise distance
	// between members of the two clusters.
	AverageLinkage Linkage = iota
	// SingleLinkage is the minimum pairwise distance.
	SingleLinkage
	// CompleteLinkage is the maximum pairwise distance.
	CompleteLinkage
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case AverageLinkage:
		return "average"
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	default:
		return fmt.Sprintf("linkage(%d)", int(l))
	}
}

// Errors returned by the clustering functions.
var (
	ErrNoPoints    = errors.New("cluster: no points")
	ErrBadK        = errors.New("cluster: invalid cluster count")
	ErrShapeRagged = errors.New("cluster: points have differing dimensions")
)

// Merge records one agglomeration step of the dendrogram. Leaves are
// numbered 0..N-1; the merge at index i creates the internal node N+i.
type Merge struct {
	// A and B are the node IDs merged at this step (leaf or internal).
	A, B int
	// Distance is the linkage distance at which the merge happened.
	Distance float64
	// Size is the number of leaves under the new node.
	Size int
}

// Dendrogram is the full merge tree produced by hierarchical clustering.
type Dendrogram struct {
	// N is the number of leaves (input points).
	N int
	// Linkage is the criterion the tree was built with.
	Linkage Linkage
	// Merges has exactly N-1 entries ordered as performed by the
	// algorithm. Merge distances are non-decreasing for reducible linkages
	// (average, single, complete).
	Merges []Merge
}

// Hierarchical builds the dendrogram of the points under the given linkage
// using the nearest-neighbour-chain algorithm over a condensed
// upper-triangular distance matrix: O(N²) time, N(N-1)/2 matrix entries
// (half the memory of the previous full-matrix path) and O(N) extra
// scratch for the chain. Distances are Euclidean, matching the paper.
// The distance matrix is computed with GOMAXPROCS workers; see
// HierarchicalWorkers to bound the parallelism.
func Hierarchical(points []linalg.Vector, linkage Linkage) (*Dendrogram, error) {
	return HierarchicalWorkers(points, linkage, 0)
}

// HierarchicalWorkers is Hierarchical with an explicit bound on the
// goroutines used for the distance matrix (≤ 0 means GOMAXPROCS). The
// result is bit-identical for any worker count: every matrix entry is
// computed independently and the agglomeration itself is sequential.
func HierarchicalWorkers(points []linalg.Vector, linkage Linkage, workers int) (*Dendrogram, error) {
	return HierarchicalWorkersCtx(context.Background(), points, linkage, workers)
}

// HierarchicalWorkersCtx is HierarchicalWorkers with cancellation:
// observed between row strips of the distance kernel and between merges
// of the agglomeration, and a distance-kernel worker panic is returned
// as an error instead of crashing the process.
func HierarchicalWorkersCtx(ctx context.Context, points []linalg.Vector, linkage Linkage, workers int) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	switch linkage {
	case AverageLinkage, SingleLinkage, CompleteLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
	}
	if n == 1 {
		return &Dendrogram{N: 1, Linkage: linkage, Merges: nil}, nil
	}

	dist, err := condensedDistances(ctx, points, workers)
	if err != nil {
		return nil, err
	}
	slotMerges, err := nnChain(ctx, dist, linkage)
	if err != nil {
		return nil, err
	}
	return relabelMerges(n, linkage, slotMerges), nil
}

// HierarchicalMat builds the dendrogram straight from a flat row-major
// matrix at either modeling precision. The distance matrix is computed by
// the element-type's blocked kernel; the agglomeration itself always runs
// in float64 — for float32 inputs the condensed squared distances are
// widened (exactly) before the square root, so the NN-chain and
// Lance–Williams updates see full-precision arithmetic on once-rounded
// inputs and the merge DECISIONS track the float64 path. With a float64
// matrix the result is bit-identical to HierarchicalWorkers on the
// matrix's row views.
func HierarchicalMat[F linalg.Float](x *linalg.Mat[F], linkage Linkage, workers int) (*Dendrogram, error) {
	return HierarchicalMatCtx[F](context.Background(), x, linkage, workers)
}

// HierarchicalMatCtx is HierarchicalMat with cancellation and distance-
// kernel fault isolation; see HierarchicalWorkersCtx for the contract.
func HierarchicalMatCtx[F linalg.Float](ctx context.Context, x *linalg.Mat[F], linkage Linkage, workers int) (*Dendrogram, error) {
	n := x.Rows
	if n == 0 {
		return nil, ErrNoPoints
	}
	switch linkage {
	case AverageLinkage, SingleLinkage, CompleteLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
	}
	if n == 1 {
		return &Dendrogram{N: 1, Linkage: linkage, Merges: nil}, nil
	}
	c := newCondensed(n)
	if err := condensedInto(ctx, c.d, x, workers); err != nil {
		return nil, err
	}
	slotMerges, err := nnChain(ctx, c, linkage)
	if err != nil {
		return nil, err
	}
	return relabelMerges(n, linkage, slotMerges), nil
}

// condensedInto fills the float64 condensed buffer with the Euclidean
// distances between x's rows, running the blocked kernel at x's own
// element type.
func condensedInto[F linalg.Float](ctx context.Context, dst []float64, x *linalg.Mat[F], workers int) error {
	switch xx := any(x).(type) {
	case *linalg.Matrix:
		norms := make(linalg.Vector, xx.Rows)
		if err := linalg.PairwiseSquaredCondensedCtx(ctx, dst, xx, norms, workers); err != nil {
			return err
		}
	case *linalg.Matrix32:
		buf := make(linalg.Vector32, len(dst))
		norms := make(linalg.Vector32, xx.Rows)
		if err := linalg.PairwiseSquaredCondensedCtx(ctx, buf, xx, norms, workers); err != nil {
			return err
		}
		for i, v := range buf {
			dst[i] = float64(v)
		}
	}
	return linalg.SquaredDistancesSqrtInPlaceCtx(ctx, dst, workers)
}

// condensed is an upper-triangular N×N distance matrix stored as the
// N(N-1)/2 entries above the diagonal, row-major: row i holds the
// distances to j ∈ (i, N) in a contiguous run.
type condensed struct {
	n int
	d []float64
}

func newCondensed(n int) condensed {
	return condensed{n: n, d: make([]float64, n*(n-1)/2)}
}

// index maps an unordered pair (i ≠ j) to its condensed offset.
func (c condensed) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*(2*c.n-i-1)/2 + (j - i - 1)
}

func (c condensed) at(i, j int) float64     { return c.d[c.index(i, j)] }
func (c condensed) set(i, j int, v float64) { c.d[c.index(i, j)] = v }

// row returns the contiguous slice of distances from i to j ∈ (i, N).
func (c condensed) row(i int) []float64 {
	lo := c.index(i, i+1)
	return c.d[lo : lo+c.n-1-i]
}

// condensedDistances computes the condensed Euclidean distance matrix on
// the blocked Gram-trick kernel with up to `workers` goroutines (≤ 0 means
// GOMAXPROCS). Dimensions are validated up front, before any worker
// starts, so a ragged input can never strand the work distribution. When
// the points alias one contiguous matrix — the row views of a
// pipeline.Dataset's flat backing — the kernel runs on that storage
// directly; loose rows are packed once. The per-pair form this replaces
// lives on as condensedDistancesOracle in oracle.go; the kernel agrees
// with it to ≤1e-9 relative error (Gram-trick reassociation) and is
// bit-identical across worker counts.
func condensedDistances(ctx context.Context, points []linalg.Vector, workers int) (condensed, error) {
	n := len(points)
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return condensed{}, fmt.Errorf("%w: point %d has %d dims, want %d", ErrShapeRagged, i, len(p), dim)
		}
	}
	c := newCondensed(n)
	if n < 2 {
		return c, nil
	}
	x, err := linalg.RowsMatrix(points)
	if err != nil {
		return condensed{}, err
	}
	norms := make(linalg.Vector, n)
	if err := linalg.PairwiseSquaredCondensedCtx(ctx, c.d, x, norms, workers); err != nil {
		return condensed{}, err
	}
	if err := linalg.SquaredDistancesSqrtInPlaceCtx(ctx, c.d, workers); err != nil {
		return condensed{}, err
	}
	return c, nil
}

// slotMerge records one agglomeration against matrix slots: slot i always
// holds the current cluster occupying the slot of original leaf i.
type slotMerge struct {
	slotA, slotB int
	distance     float64
}

// nnChain runs the nearest-neighbour-chain agglomeration over the condensed
// matrix, destroying it in the process. Extra scratch is O(N): the active
// and size arrays plus the chain stack. Merges are recorded against slots
// in discovery order, which for reducible linkages (average, single,
// complete) sorts into a valid agglomeration order.
func nnChain(ctx context.Context, dist condensed, linkage Linkage) ([]slotMerge, error) {
	done := ctx.Done()
	n := dist.n
	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	slotMerges := make([]slotMerge, 0, n-1)
	chain := make([]int, 0, n)

	anyActive := func() int {
		for i, a := range active {
			if a {
				return i
			}
		}
		return -1
	}

	for len(slotMerges) < n-1 {
		// One cancellation check per merge: O(N) checks against the
		// O(N^2) agglomeration keeps the scan loops branch-free.
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if len(chain) == 0 {
			chain = append(chain, anyActive())
		}
		for {
			top := chain[len(chain)-1]
			// Nearest active neighbour of top.
			best, bestDist := -1, math.Inf(1)
			for j := 0; j < n; j++ {
				if j == top || !active[j] {
					continue
				}
				if dj := dist.at(top, j); dj < bestDist {
					best, bestDist = j, dj
				}
			}
			if best == -1 {
				// Only one active cluster left but merges incomplete —
				// cannot happen, guard against infinite loop.
				return nil, errors.New("cluster: internal error: no active neighbour")
			}
			if len(chain) >= 2 && chain[len(chain)-2] == best {
				// Reciprocal nearest neighbours: merge top and best.
				a, b := top, best
				chain = chain[:len(chain)-2]
				na, nb := size[a], size[b]
				// Lance–Williams update of distances from the merged
				// cluster (stored in slot a) to every other active cluster.
				for k := 0; k < n; k++ {
					if !active[k] || k == a || k == b {
						continue
					}
					var nd float64
					switch linkage {
					case AverageLinkage:
						nd = (float64(na)*dist.at(a, k) + float64(nb)*dist.at(b, k)) / float64(na+nb)
					case SingleLinkage:
						nd = math.Min(dist.at(a, k), dist.at(b, k))
					case CompleteLinkage:
						nd = math.Max(dist.at(a, k), dist.at(b, k))
					}
					dist.set(a, k, nd)
				}
				slotMerges = append(slotMerges, slotMerge{slotA: a, slotB: b, distance: bestDist})
				active[b] = false
				size[a] = na + nb
				break
			}
			chain = append(chain, best)
		}
	}
	return slotMerges, nil
}

// relabelMerges sorts slot merges by distance and relabels slots into
// dendrogram node IDs with a union-find over the leaves.
func relabelMerges(n int, linkage Linkage, slotMerges []slotMerge) *Dendrogram {
	sort.SliceStable(slotMerges, func(i, j int) bool { return slotMerges[i].distance < slotMerges[j].distance })
	parent := make([]int, 2*n-1)
	nodeSize := make([]int, 2*n-1)
	for i := range parent {
		parent[i] = i
		if i < n {
			nodeSize[i] = 1
		}
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	merges := make([]Merge, 0, n-1)
	for i, sm := range slotMerges {
		ra, rb := find(sm.slotA), find(sm.slotB)
		newNode := n + i
		parent[ra] = newNode
		parent[rb] = newNode
		nodeSize[newNode] = nodeSize[ra] + nodeSize[rb]
		merges = append(merges, Merge{A: ra, B: rb, Distance: sm.distance, Size: nodeSize[newNode]})
	}
	return &Dendrogram{N: n, Linkage: linkage, Merges: merges}
}

// Assignment maps each input point to a cluster label in [0, K).
type Assignment struct {
	// Labels[i] is the cluster of point i.
	Labels []int
	// K is the number of clusters.
	K int
}

// Members returns the point indices of each cluster, indexed by label.
func (a *Assignment) Members() [][]int {
	out := make([][]int, a.K)
	for i, l := range a.Labels {
		out[l] = append(out[l], i)
	}
	return out
}

// Sizes returns the number of points in each cluster.
func (a *Assignment) Sizes() []int {
	out := make([]int, a.K)
	for _, l := range a.Labels {
		out[l]++
	}
	return out
}

// CutK cuts the dendrogram into exactly k clusters by undoing the last k-1
// merges. Labels are renumbered to 0..k-1 in order of first appearance.
func (d *Dendrogram) CutK(k int) (*Assignment, error) {
	if k < 1 || k > d.N {
		return nil, fmt.Errorf("%w: k=%d with %d points", ErrBadK, k, d.N)
	}
	return d.cut(len(d.Merges) - (k - 1))
}

// CutThreshold cuts the dendrogram at the given linkage distance: merges
// with Distance ≤ threshold are applied, the rest undone. This is the
// paper's stop condition ("stops the clustering when the distance between
// two clusters is above the threshold value").
func (d *Dendrogram) CutThreshold(threshold float64) (*Assignment, error) {
	applied := 0
	for _, m := range d.Merges {
		if m.Distance <= threshold {
			applied++
		}
	}
	return d.cut(applied)
}

// cut applies the first `applied` merges and returns the resulting labels.
func (d *Dendrogram) cut(applied int) (*Assignment, error) {
	if applied < 0 || applied > len(d.Merges) {
		return nil, fmt.Errorf("%w: applying %d of %d merges", ErrBadK, applied, len(d.Merges))
	}
	// Union-find over node IDs.
	parent := make([]int, d.N+applied)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < applied; i++ {
		m := d.Merges[i]
		newNode := d.N + i
		parent[find(m.A)] = newNode
		parent[find(m.B)] = newNode
	}
	labels := make([]int, d.N)
	remap := make(map[int]int)
	for i := 0; i < d.N; i++ {
		root := find(i)
		l, ok := remap[root]
		if !ok {
			l = len(remap)
			remap[root] = l
		}
		labels[i] = l
	}
	return &Assignment{Labels: labels, K: len(remap)}, nil
}

// MergeDistances returns the linkage distances of the merges in order.
func (d *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(d.Merges))
	for i, m := range d.Merges {
		out[i] = m.Distance
	}
	return out
}

// ThresholdForK returns a threshold value that, when passed to
// CutThreshold, yields exactly k clusters: the midpoint between the last
// applied merge distance and the first undone one. It assumes monotone
// merge distances (true for average/single/complete linkage).
func (d *Dendrogram) ThresholdForK(k int) (float64, error) {
	if k < 1 || k > d.N {
		return 0, fmt.Errorf("%w: k=%d with %d points", ErrBadK, k, d.N)
	}
	dists := d.MergeDistances()
	sort.Float64s(dists)
	applied := len(dists) - (k - 1)
	switch {
	case applied <= 0:
		if len(dists) == 0 {
			return 0, nil
		}
		return dists[0] / 2, nil
	case applied >= len(dists):
		return dists[len(dists)-1] + 1, nil
	default:
		return (dists[applied-1] + dists[applied]) / 2, nil
	}
}
