package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func twoBlobAssignment() ([]linalg.Vector, *Assignment) {
	points := []linalg.Vector{{0, 0}, {1, 0}, {0, 1}, {10, 10}, {11, 10}, {10, 11}}
	return points, &Assignment{Labels: []int{0, 0, 0, 1, 1, 1}, K: 2}
}

func TestCentroids(t *testing.T) {
	points, a := twoBlobAssignment()
	c, err := Centroids(points, a)
	if err != nil {
		t.Fatal(err)
	}
	want0 := linalg.Vector{1.0 / 3, 1.0 / 3}
	want1 := linalg.Vector{31.0 / 3, 31.0 / 3}
	for i := range want0 {
		if math.Abs(c[0][i]-want0[i]) > 1e-9 || math.Abs(c[1][i]-want1[i]) > 1e-9 {
			t.Errorf("centroids = %v", c)
		}
	}
	if _, err := Centroids(nil, a); !errors.Is(err, ErrNoPoints) {
		t.Errorf("no points: %v", err)
	}
	badAssign := &Assignment{Labels: []int{0}, K: 1}
	if _, err := Centroids(points, badAssign); err == nil {
		t.Error("label/point count mismatch should fail")
	}
	outOfRange := &Assignment{Labels: []int{0, 0, 0, 1, 1, 5}, K: 2}
	if _, err := Centroids(points, outOfRange); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestDaviesBouldinSeparatedVsMixed(t *testing.T) {
	points, good := twoBlobAssignment()
	dbiGood, err := DaviesBouldin(points, good)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately shuffled assignment mixes the blobs and must score
	// far worse (higher DBI).
	bad := &Assignment{Labels: []int{0, 1, 0, 1, 0, 1}, K: 2}
	dbiBad, err := DaviesBouldin(points, bad)
	if err != nil {
		t.Fatal(err)
	}
	if dbiGood <= 0 {
		t.Errorf("DBI of separated clustering = %g, want positive", dbiGood)
	}
	if dbiBad <= dbiGood*2 {
		t.Errorf("mixed clustering DBI (%g) should be much worse than separated (%g)", dbiBad, dbiGood)
	}
}

func TestDaviesBouldinErrors(t *testing.T) {
	points, _ := twoBlobAssignment()
	single := &Assignment{Labels: []int{0, 0, 0, 0, 0, 0}, K: 1}
	if _, err := DaviesBouldin(points, single); err == nil {
		t.Error("single cluster should fail")
	}
	// Coincident centroids: identical points split across two clusters.
	same := []linalg.Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	a := &Assignment{Labels: []int{0, 0, 1, 1}, K: 2}
	dbi, err := DaviesBouldin(same, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dbi, 1) {
		t.Errorf("coincident centroids DBI = %g, want +Inf", dbi)
	}
}

func TestDistancesToCentroid(t *testing.T) {
	points, a := twoBlobAssignment()
	dists, err := DistancesToCentroid(points, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 2 || len(dists[0]) != 3 || len(dists[1]) != 3 {
		t.Fatalf("shape = %v", dists)
	}
	for _, cluster := range dists {
		for i := 1; i < len(cluster); i++ {
			if cluster[i] < cluster[i-1] {
				t.Error("distances should be sorted")
			}
		}
		for _, d := range cluster {
			if d < 0 || d > 1 {
				t.Errorf("distance %g outside expected range for tight blobs", d)
			}
		}
	}
}

func TestSilhouette(t *testing.T) {
	points, good := twoBlobAssignment()
	s, err := Silhouette(points, good)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 {
		t.Errorf("silhouette of well-separated blobs = %g, want > 0.8", s)
	}
	bad := &Assignment{Labels: []int{0, 1, 0, 1, 0, 1}, K: 2}
	sBad, err := Silhouette(points, bad)
	if err != nil {
		t.Fatal(err)
	}
	if sBad >= s {
		t.Errorf("mixed silhouette (%g) should be below separated (%g)", sBad, s)
	}
	if _, err := Silhouette(nil, good); !errors.Is(err, ErrNoPoints) {
		t.Errorf("no points: %v", err)
	}
	if _, err := Silhouette(points, &Assignment{Labels: []int{0, 0, 0, 0, 0, 0}, K: 1}); err == nil {
		t.Error("single cluster silhouette should fail")
	}
	if _, err := Silhouette(points, &Assignment{Labels: []int{0}, K: 1}); err == nil {
		t.Error("mismatched labels should fail")
	}
}

func TestDBICurveAndOptimalK(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	points, _ := blobs(rng, 3, 15, 4, 0.4)
	dendro, err := Hierarchical(points, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	bestK, curve, err := OptimalK(points, dendro, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bestK != 3 {
		t.Errorf("optimal K = %d, want 3 for three blobs", bestK)
	}
	if len(curve) != 7 {
		t.Errorf("curve has %d points, want 7", len(curve))
	}
	for _, p := range curve {
		if p.DBI < 0 {
			t.Errorf("negative DBI at k=%d", p.K)
		}
		// Threshold must reproduce the same k.
		a, err := dendro.CutThreshold(p.Threshold)
		if err != nil {
			t.Fatal(err)
		}
		if a.K != p.K {
			t.Errorf("threshold %g yields %d clusters, want %d", p.Threshold, a.K, p.K)
		}
	}
	if _, err := DBICurve(points, dendro, 1, 5); !errors.Is(err, ErrBadK) {
		t.Errorf("minK=1: %v", err)
	}
	if _, err := DBICurve(points, dendro, 4, 2); !errors.Is(err, ErrBadK) {
		t.Errorf("maxK<minK: %v", err)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	// Identical partitions → 1 even with different label names.
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7}
	ari, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari-1) > 1e-12 {
		t.Errorf("identical partitions ARI = %g, want 1", ari)
	}
	// Completely split vs completely merged is a degenerate comparison.
	allSame := []int{0, 0, 0, 0, 0, 0}
	ari, err = AdjustedRandIndex(a, allSame)
	if err != nil {
		t.Fatal(err)
	}
	if ari > 0.2 {
		t.Errorf("ARI against a single cluster = %g, want ~0", ari)
	}
	if _, err := AdjustedRandIndex([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := AdjustedRandIndex(nil, nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty labels: %v", err)
	}
}

func TestPurityAgainstTruth(t *testing.T) {
	predicted := &Assignment{Labels: []int{0, 0, 0, 1, 1}, K: 2}
	truth := []int{7, 7, 8, 9, 9}
	perCluster, overall, err := PurityAgainstTruth(predicted, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perCluster[0]-2.0/3) > 1e-9 || perCluster[1] != 1 {
		t.Errorf("per-cluster purity = %v", perCluster)
	}
	if math.Abs(overall-4.0/5) > 1e-9 {
		t.Errorf("overall purity = %g, want 0.8", overall)
	}
	if _, _, err := PurityAgainstTruth(predicted, []int{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := PurityAgainstTruth(&Assignment{K: 0}, nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty truth: %v", err)
	}
}
