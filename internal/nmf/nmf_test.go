package nmf

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/testutil"
)

// syntheticMix builds rows that are non-negative mixtures of `rank` known
// non-negative basis patterns.
func syntheticMix(rng *rand.Rand, nRows, nCols, rank int) ([]linalg.Vector, []linalg.Vector) {
	basis := make([]linalg.Vector, rank)
	for k := range basis {
		b := make(linalg.Vector, nCols)
		for j := range b {
			// Shifted bumps keep the bases distinct.
			b[j] = math.Abs(math.Sin(float64(j+1)*float64(k+1)/7)) + 0.05
		}
		basis[k] = b
	}
	rows := make([]linalg.Vector, nRows)
	for i := range rows {
		row := make(linalg.Vector, nCols)
		for k := range basis {
			w := rng.Float64()
			for j := range row {
				row[j] += w * basis[k][j]
			}
		}
		rows[i] = row
	}
	return rows, basis
}

func TestFactorizeErrors(t *testing.T) {
	if _, err := Factorize(nil, Options{Rank: 2}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty rows: %v", err)
	}
	if _, err := Factorize([]linalg.Vector{{}}, Options{Rank: 1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty columns: %v", err)
	}
	rows := []linalg.Vector{{1, 2}, {3, 4}}
	if _, err := Factorize(rows, Options{Rank: 0}); !errors.Is(err, ErrBadRank) {
		t.Errorf("rank 0: %v", err)
	}
	if _, err := Factorize(rows, Options{Rank: 5}); !errors.Is(err, ErrBadRank) {
		t.Errorf("rank too large: %v", err)
	}
	if _, err := Factorize([]linalg.Vector{{1, -2}, {3, 4}}, Options{Rank: 1}); !errors.Is(err, ErrNegative) {
		t.Errorf("negative value: %v", err)
	}
	if _, err := Factorize([]linalg.Vector{{1, math.NaN()}, {3, 4}}, Options{Rank: 1}); !errors.Is(err, ErrNegative) {
		t.Errorf("NaN value: %v", err)
	}
	if _, err := Factorize([]linalg.Vector{{1, 2}, {3}}, Options{Rank: 1}); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestFactorizeRankOneExact(t *testing.T) {
	// A rank-1 matrix factorises with negligible error.
	u := linalg.Vector{1, 2, 3, 4}
	vvec := linalg.Vector{2, 1, 0.5}
	rows := make([]linalg.Vector, len(u))
	for i := range rows {
		row := make(linalg.Vector, len(vvec))
		for j := range row {
			row[j] = u[i] * vvec[j]
		}
		rows[i] = row
	}
	res, err := Factorize(rows, Options{Rank: 1, Seed: 3, MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeError > 1e-3 {
		t.Errorf("rank-1 relative error = %g, want ~0", res.RelativeError)
	}
	rec, err := res.Reconstruct(2)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rec {
		if math.Abs(rec[j]-rows[2][j]) > 0.05*rows[2][j]+1e-6 {
			t.Errorf("reconstruct[2][%d] = %g, want %g", j, rec[j], rows[2][j])
		}
	}
}

func TestFactorizeRecoversLowRankStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rows, _ := syntheticMix(rng, 40, 60, 3)
	res, err := Factorize(rows, Options{Rank: 3, Seed: 1, MaxIterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeError > 0.05 {
		t.Errorf("rank-3 relative error = %g, want < 0.05", res.RelativeError)
	}
	// Higher rank never fits worse (up to optimisation noise).
	res5, err := Factorize(rows, Options{Rank: 5, Seed: 1, MaxIterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res5.RelativeError > res.RelativeError*1.5+0.01 {
		t.Errorf("rank-5 error (%g) should not be much worse than rank-3 (%g)", res5.RelativeError, res.RelativeError)
	}
	// Factors stay non-negative.
	for _, x := range res.W.Data {
		if x < 0 {
			t.Fatal("negative entry in W")
		}
	}
	for _, x := range res.H.Data {
		if x < 0 {
			t.Fatal("negative entry in H")
		}
	}
}

func TestResultAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	rows, _ := syntheticMix(rng, 10, 20, 2)
	res, err := Factorize(rows, Options{Rank: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Weights(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Sum()-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", w.Sum())
	}
	if _, err := res.Weights(-1); err == nil {
		t.Error("negative row should fail")
	}
	if _, err := res.Reconstruct(100); err == nil {
		t.Error("out-of-range reconstruct should fail")
	}
	basis, err := res.BasisPattern(1)
	if err != nil || len(basis) != 20 {
		t.Errorf("BasisPattern: %v (len %d)", err, len(basis))
	}
	if _, err := res.BasisPattern(7); err == nil {
		t.Error("out-of-range basis should fail")
	}
	dom := res.DominantBasis()
	if len(dom) != 10 {
		t.Fatalf("DominantBasis length %d", len(dom))
	}
	for _, d := range dom {
		if d < 0 || d >= 2 {
			t.Errorf("dominant basis %d out of range", d)
		}
	}
}

func TestFactorizeDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	rows, _ := syntheticMix(rng, 12, 18, 2)
	a, err := Factorize(rows, Options{Rank: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Factorize(rows, Options{Rank: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W.Data {
		if a.W.Data[i] != b.W.Data[i] {
			t.Fatal("same seed should give identical factors")
		}
	}
}

// Property: the factorisation error never exceeds the norm of the input
// (W=H=0 would achieve that), and both factors stay non-negative.
func TestFactorizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	f := func(seed uint8) bool {
		n := int(seed%6) + 3
		m := int(seed%5) + 4
		rows := make([]linalg.Vector, n)
		var norm float64
		for i := range rows {
			row := make(linalg.Vector, m)
			for j := range row {
				row[j] = rng.Float64() * 10
				norm += row[j] * row[j]
			}
			rows[i] = row
		}
		res, err := Factorize(rows, Options{Rank: 2, Seed: int64(seed), MaxIterations: 50})
		if err != nil {
			return false
		}
		if res.FrobeniusError > math.Sqrt(norm)+1e-6 {
			return false
		}
		for _, x := range res.W.Data {
			if x < 0 || math.IsNaN(x) {
				return false
			}
		}
		for _, x := range res.H.Data {
			if x < 0 || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Factorize is bit-identical for any Workers value — the serial
// path (Workers=1) is the oracle for the parallel multiplicative updates.
// The matrix is sized so the parallel kernels actually engage (the blocked
// kernels fall back to serial below a work threshold).
func TestFactorizeParallelMatchesSerial(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(76))
	rows, _ := syntheticMix(rng, 120, 90, 4)
	serial, err := Factorize(rows, Options{Rank: 5, Seed: 9, MaxIterations: 40, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		par, err := Factorize(rows, Options{Rank: 5, Seed: 9, MaxIterations: 40, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if par.Iterations != serial.Iterations {
			t.Errorf("workers %d: %d iterations, serial did %d", workers, par.Iterations, serial.Iterations)
		}
		if par.FrobeniusError != serial.FrobeniusError || par.RelativeError != serial.RelativeError {
			t.Errorf("workers %d: error %g/%g, serial %g/%g", workers,
				par.FrobeniusError, par.RelativeError, serial.FrobeniusError, serial.RelativeError)
		}
		for i := range serial.W.Data {
			if par.W.Data[i] != serial.W.Data[i] {
				t.Fatalf("workers %d: W[%d] = %g, serial %g (must be bit-identical)",
					workers, i, par.W.Data[i], serial.W.Data[i])
			}
		}
		for i := range serial.H.Data {
			if par.H.Data[i] != serial.H.Data[i] {
				t.Fatalf("workers %d: H[%d] = %g, serial %g (must be bit-identical)",
					workers, i, par.H.Data[i], serial.H.Data[i])
			}
		}
	}
}

func BenchmarkFactorize100x144Rank5(b *testing.B) {
	rng := rand.New(rand.NewSource(75))
	rows, _ := syntheticMix(rng, 100, 144, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(rows, Options{Rank: 5, Seed: int64(i), MaxIterations: 60}); err != nil {
			b.Fatal(err)
		}
	}
}
