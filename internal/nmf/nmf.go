// Package nmf implements non-negative matrix factorisation with
// multiplicative updates (Lee & Seung). It serves as the decomposition
// baseline the paper's related work points at (Cici et al., "On the
// decomposition of cell phone activity patterns"): instead of picking three
// frequency components and four hand-identified primary towers, NMF learns
// r non-negative basis traffic patterns H and per-tower weights W such that
// the tower-by-time traffic matrix V ≈ W·H. The benchmark harness compares
// this data-driven decomposition against the paper's frequency-domain
// convex combination.
package nmf

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Options configure a factorisation run.
type Options struct {
	// Rank is the number of basis patterns (required, ≥ 1).
	Rank int
	// MaxIterations bounds the multiplicative updates (default 200).
	MaxIterations int
	// Tolerance stops the iteration when the relative improvement of the
	// reconstruction error falls below it (default 1e-5).
	Tolerance float64
	// Seed drives the random initialisation.
	Seed int64
	// Workers bounds the goroutines used for the matrix products of the
	// multiplicative updates (≤ 0 means GOMAXPROCS). The factorisation is
	// deterministic: for a fixed Seed the result is bit-identical for any
	// Workers value, because the parallel kernels partition output rows and
	// keep the serial accumulation order within each row.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-5
	}
	return o
}

// Result is the outcome of a factorisation.
type Result struct {
	// W is the towers × rank weight matrix (how much of each basis pattern
	// each tower carries).
	W *linalg.Matrix
	// H is the rank × slots basis matrix (the learned temporal patterns).
	H *linalg.Matrix
	// FrobeniusError is ‖V − W·H‖_F after the final iteration.
	FrobeniusError float64
	// RelativeError is FrobeniusError / ‖V‖_F.
	RelativeError float64
	// Iterations is the number of update iterations performed.
	Iterations int
}

// Errors returned by Factorize.
var (
	ErrEmpty    = errors.New("nmf: empty matrix")
	ErrNegative = errors.New("nmf: negative input value")
	ErrBadRank  = errors.New("nmf: invalid rank")
)

const epsilon = 1e-12

// Factorize computes V ≈ W·H for the non-negative matrix whose rows are the
// given vectors.
func Factorize(rows []linalg.Vector, opts Options) (*Result, error) {
	return FactorizeContext(context.Background(), rows, opts)
}

// FactorizeContext is Factorize with cancellation: ctx is observed once
// per multiplicative-update iteration and between row blocks of the
// parallel matrix products, so a cancelled factorisation returns within
// one update step and its worker pool drains before the call returns.
func FactorizeContext(ctx context.Context, rows []linalg.Vector, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(rows)
	if n == 0 {
		return nil, ErrEmpty
	}
	m := len(rows[0])
	if m == 0 {
		return nil, ErrEmpty
	}
	if opts.Rank < 1 || opts.Rank > n || opts.Rank > m {
		return nil, fmt.Errorf("%w: rank %d for a %dx%d matrix", ErrBadRank, opts.Rank, n, m)
	}
	for i, row := range rows {
		if len(row) != m {
			return nil, fmt.Errorf("nmf: row %d has %d columns, want %d", i, len(row), m)
		}
	}
	// When the rows alias one contiguous buffer — a dataset's flat raw
	// matrix — the factorisation reads it in place; loose rows are packed
	// once. V is never written, so aliasing is safe.
	v, err := linalg.RowsMatrix(rows)
	if err != nil {
		return nil, err
	}
	return FactorizeMatContext(ctx, v, opts)
}

// FactorizeMat computes V ≈ W·H for a non-negative flat matrix at either
// modeling precision. The multiplicative updates — every matrix product
// and the element-wise ratio steps — run at the matrix's own element
// type; the float32 instantiation halves the memory traffic of the
// W·H-shaped products that dominate a factorisation at the paper's
// scale. The reconstruction-error reduction accumulates in float64 at
// both precisions, so the convergence decision sequence tracks the
// float64 path, and the reported W/H are widened to float64 once at the
// end. With a float64 matrix the result is bit-identical to Factorize on
// the matrix's row views.
func FactorizeMat[F linalg.Float](v *linalg.Mat[F], opts Options) (*Result, error) {
	return FactorizeMatContext[F](context.Background(), v, opts)
}

// FactorizeMatContext is FactorizeMat with the cancellation of
// FactorizeContext.
func FactorizeMatContext[F linalg.Float](ctx context.Context, v *linalg.Mat[F], opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n, m := v.Rows, v.Cols
	if n == 0 || m == 0 {
		return nil, ErrEmpty
	}
	if opts.Rank < 1 || opts.Rank > n || opts.Rank > m {
		return nil, fmt.Errorf("%w: rank %d for a %dx%d matrix", ErrBadRank, opts.Rank, n, m)
	}
	var norm float64
	for idx, x := range v.Data {
		xf := float64(x)
		if x < 0 || math.IsNaN(xf) || math.IsInf(xf, 0) {
			return nil, fmt.Errorf("%w: row %d column %d is %g", ErrNegative, idx/m, idx%m, xf)
		}
		norm += xf * xf
	}
	norm = math.Sqrt(norm)

	rng := rand.New(rand.NewSource(opts.Seed + 1))
	r := opts.Rank
	w := linalg.NewMat[F](n, r)
	h := linalg.NewMat[F](r, m)
	// Initialise with small positive random values scaled to the data.
	// The draws happen in float64 and narrow afterwards, so both
	// precisions consume the RNG identically and start from (up to one
	// rounding) the same point.
	scale := norm / float64(r) / math.Sqrt(float64(n*m))
	if scale <= 0 {
		scale = 1
	}
	for i := range w.Data {
		w.Data[i] = F(rng.Float64()*scale + epsilon)
	}
	for i := range h.Data {
		h.Data[i] = F(rng.Float64()*scale + epsilon)
	}

	// Scratch matrices for the multiplicative updates, allocated once and
	// reused across iterations (the updates would otherwise reallocate
	// every W·H-shaped product each round).
	var (
		wt   = linalg.NewMat[F](r, n)
		wtv  = linalg.NewMat[F](r, m)
		wtw  = linalg.NewMat[F](r, r)
		wtwh = linalg.NewMat[F](r, m)
		ht   = linalg.NewMat[F](m, r)
		vht  = linalg.NewMat[F](n, r)
		wh   = linalg.NewMat[F](n, m)
		whht = linalg.NewMat[F](n, r)
	)
	// The update-rule damping term. 1e-12 is an ordinary normal float32
	// (min normal ≈ 1.2e-38), so the narrowing keeps its value.
	eps := F(epsilon)
	workers := linalg.ResolveWorkers(opts.Workers)
	done := ctx.Done()
	prevErr := math.Inf(1)
	iterations := 0
	for ; iterations < opts.MaxIterations; iterations++ {
		// One cancellation check per update iteration; the parallel
		// products below add per-block checks for large factors.
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// H ← H ∘ (Wᵀ V) / (Wᵀ W H)
		if err := w.ParallelTransposeIntoCtx(ctx, wt, workers); err != nil {
			return nil, err
		}
		if err := wt.ParallelMulIntoCtx(ctx, wtv, v, workers); err != nil {
			return nil, err
		}
		if err := wt.ParallelMulIntoCtx(ctx, wtw, w, workers); err != nil {
			return nil, err
		}
		if err := wtw.ParallelMulIntoCtx(ctx, wtwh, h, workers); err != nil {
			return nil, err
		}
		for i := range h.Data {
			h.Data[i] *= wtv.Data[i] / (wtwh.Data[i] + eps)
		}
		// W ← W ∘ (V Hᵀ) / (W H Hᵀ)
		if err := h.ParallelTransposeIntoCtx(ctx, ht, workers); err != nil {
			return nil, err
		}
		if err := v.ParallelMulIntoCtx(ctx, vht, ht, workers); err != nil {
			return nil, err
		}
		if err := w.ParallelMulIntoCtx(ctx, wh, h, workers); err != nil {
			return nil, err
		}
		if err := wh.ParallelMulIntoCtx(ctx, whht, ht, workers); err != nil {
			return nil, err
		}
		for i := range w.Data {
			w.Data[i] *= vht.Data[i] / (whht.Data[i] + eps)
		}
		// Convergence check on the reconstruction error.
		cur := frobeniusError(v, w, h, wh, workers)
		if prevErr-cur < opts.Tolerance*(prevErr+epsilon) {
			prevErr = cur
			iterations++
			break
		}
		prevErr = cur
	}

	finalErr := frobeniusError(v, w, h, wh, workers)
	rel := 0.0
	if norm > 0 {
		rel = finalErr / norm
	}
	return &Result{W: widen(w), H: widen(h), FrobeniusError: finalErr, RelativeError: rel, Iterations: iterations}, nil
}

// widen returns m as a float64 matrix: m itself when it already is one
// (keeping Factorize's zero-copy contract), a widened copy otherwise.
func widen[F linalg.Float](m *linalg.Mat[F]) *linalg.Matrix {
	if m64, ok := any(m).(*linalg.Matrix); ok {
		return m64
	}
	out := linalg.NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = float64(x)
	}
	return out
}

// frobeniusError computes ‖V − W·H‖_F, using wh as the product scratch. The
// residual reduction stays serial (fixed summation order) and accumulates
// in float64 at either precision, so the error — and therefore the
// convergence decision — is identical for any worker count.
func frobeniusError[F linalg.Float](v, w, h, wh *linalg.Mat[F], workers int) float64 {
	if err := w.ParallelMulInto(wh, h, workers); err != nil {
		return math.Inf(1)
	}
	var s float64
	for i := range v.Data {
		d := float64(v.Data[i] - wh.Data[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Reconstruct returns row i of the approximation W·H.
func (r *Result) Reconstruct(i int) (linalg.Vector, error) {
	if i < 0 || i >= r.W.Rows {
		return nil, fmt.Errorf("nmf: row %d out of range [0,%d)", i, r.W.Rows)
	}
	out := make(linalg.Vector, r.H.Cols)
	for k := 0; k < r.W.Cols; k++ {
		wik := r.W.At(i, k)
		if wik == 0 {
			continue
		}
		for j := 0; j < r.H.Cols; j++ {
			out[j] += wik * r.H.At(k, j)
		}
	}
	return out, nil
}

// BasisPattern returns basis pattern k (row k of H).
func (r *Result) BasisPattern(k int) (linalg.Vector, error) {
	if k < 0 || k >= r.H.Rows {
		return nil, fmt.Errorf("nmf: basis %d out of range [0,%d)", k, r.H.Rows)
	}
	return r.H.RowCopy(k), nil
}

// Weights returns the normalised weights of tower i over the basis patterns
// (summing to 1), the NMF analogue of the paper's convex-combination
// coefficients.
func (r *Result) Weights(i int) (linalg.Vector, error) {
	if i < 0 || i >= r.W.Rows {
		return nil, fmt.Errorf("nmf: row %d out of range [0,%d)", i, r.W.Rows)
	}
	out := r.W.RowCopy(i)
	total := out.Sum()
	if total > 0 {
		out.ScaleInPlace(1 / total)
	}
	return out, nil
}

// DominantBasis returns, for each tower, the index of its largest-weight
// basis pattern — a hard clustering induced by the factorisation, used to
// compare NMF against the hierarchical clustering.
func (r *Result) DominantBasis() []int {
	out := make([]int, r.W.Rows)
	for i := 0; i < r.W.Rows; i++ {
		best, bestVal := 0, -1.0
		for k := 0; k < r.W.Cols; k++ {
			if v := r.W.At(i, k); v > bestVal {
				best, bestVal = k, v
			}
		}
		out[i] = best
	}
	return out
}
