// Package testutil holds shared test harnesses. It is imported only from
// _test files; nothing in the production build depends on it.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakSettleTimeout bounds how long CheckNoGoroutineLeak waits for
// goroutines spawned by the test to wind down before declaring a leak.
// Worker pools in this repo terminate as soon as their WaitGroup drains,
// so a healthy test settles in microseconds; the generous budget only
// matters under -race on loaded CI machines.
const leakSettleTimeout = 5 * time.Second

// CheckNoGoroutineLeak snapshots the goroutine count and registers a
// cleanup that fails the test if the count has not returned to the
// baseline by the end of the test. It is a hand-rolled stand-in for
// goleak: the runtime count is polled with backoff (GC, timer and pool
// goroutines need a moment to park), and on failure the full stack dump
// is logged so the leaked goroutine is identifiable.
//
// Call it FIRST in the test, before any goroutine-spawning code:
//
//	func TestSomething(t *testing.T) {
//		testutil.CheckNoGoroutineLeak(t)
//		...
//	}
//
// Subtests that run in parallel with their siblings must each call it on
// their own *testing.T rather than the parent's.
func CheckNoGoroutineLeak(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakSettleTimeout)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after waiting %v\n\n%s",
			before, after, leakSettleTimeout, condenseStacks(string(buf)))
	})
}

// condenseStacks drops the calling test's own stack from the dump so the
// leak report leads with the interesting goroutines.
func condenseStacks(dump string) string {
	blocks := strings.Split(dump, "\n\n")
	var keep []string
	for _, b := range blocks {
		if strings.Contains(b, "testing.tRunner") && strings.Contains(b, "[running]") {
			continue
		}
		keep = append(keep, b)
	}
	return strings.Join(keep, "\n\n")
}
