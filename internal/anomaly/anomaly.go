// Package anomaly detects traffic anomalies at individual cellular towers
// using the paper's frequency-domain model as the notion of "normal": a
// tower's expected traffic is its band-limited reconstruction from the
// principal spectral components (plus, optionally, daily harmonics and
// weekly sidebands), and slots whose residual is far outside the tower's
// own residual distribution are flagged. This is the operational flip side
// of the paper's ISP use case — once every tower has a compact model of its
// pattern, deviations (special events, outages, flash crowds) stand out.
package anomaly

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dsp"
	"repro/internal/linalg"
)

// Disabled switches a float Options field off entirely. The zero value of
// a field keeps its documented default, so "off" needs an explicit
// sentinel: any negative value works, Disabled is the canonical spelling.
const Disabled = -1

// Options configure the detector.
type Options struct {
	// Threshold is the number of robust standard deviations (scaled MAD) a
	// slot's residual must exceed to be flagged. Zero means the default of
	// 5; any positive value (including sub-default ones like 0.5) is used
	// as given; Disabled (any negative value) removes the score cut
	// entirely, flagging every slot that clears MinRelativeDeviation.
	Threshold float64
	// Harmonics is the number of daily harmonics kept in the expected
	// traffic model beyond the principal components (default 4); their
	// weekly sidebands are kept as well. More harmonics give a tighter
	// "normal" band but start absorbing genuine anomalies.
	Harmonics int
	// MinRelativeDeviation additionally requires the residual to be at
	// least this fraction of the tower's mean traffic, which suppresses
	// statistically-significant-but-tiny deviations during quiet hours.
	// Zero means the default of 0.5; Disabled (any negative value) turns
	// the filter off so purely statistical deviations are reported too.
	MinRelativeDeviation float64
}

func (o Options) withDefaults() Options {
	switch {
	case o.Threshold == 0:
		o.Threshold = 5
	case o.Threshold < 0:
		o.Threshold = 0
	}
	if o.Harmonics <= 0 {
		o.Harmonics = 4
	}
	switch {
	case o.MinRelativeDeviation == 0:
		o.MinRelativeDeviation = 0.5
	case o.MinRelativeDeviation < 0:
		o.MinRelativeDeviation = 0
	}
	return o
}

// Anomaly is one flagged slot.
type Anomaly struct {
	// Slot is the index into the traffic vector.
	Slot int
	// Observed and Expected are the actual and modelled traffic of the slot.
	Observed, Expected float64
	// Score is the residual in robust standard deviations.
	Score float64
}

// Report is the outcome of detection on one tower.
type Report struct {
	// Bins are the spectral bins retained by the expected-traffic model,
	// sorted and unique.
	Bins []int
	// Expected is the modelled traffic (band-limited reconstruction).
	Expected linalg.Vector
	// Residual is Observed − Expected per slot.
	Residual linalg.Vector
	// Scale is the robust scale (1.4826 × MAD) of the *relative* residuals
	// (Observed − Expected) / Expected. Traffic noise is multiplicative —
	// busy slots deviate by more bytes than quiet ones — so scoring
	// relative residuals keeps the false-positive rate flat across the day.
	Scale float64
	// Anomalies lists the flagged slots in descending score order.
	Anomalies []Anomaly
}

// Errors returned by Detect.
var (
	ErrEmptySignal = errors.New("anomaly: empty traffic vector")
	ErrBadShape    = errors.New("anomaly: traffic does not cover whole weeks")
)

// Detect models the tower's expected traffic from its own spectrum and
// flags the slots whose residuals are extreme. traffic must cover nDays
// whole days (a multiple of 7). The spectral model runs on an FFT plan from
// the package-level pool; DetectAll shares per-worker plans across towers.
func Detect(traffic linalg.Vector, nDays int, opts Options) (*Report, error) {
	if len(traffic) == 0 {
		return nil, ErrEmptySignal
	}
	plan, err := dsp.AcquirePlan(len(traffic))
	if err != nil {
		return nil, err
	}
	defer plan.Release()
	return detectPlan(plan, traffic, nDays, opts)
}

// detectPlan is Detect on a caller-supplied plan whose length matches the
// traffic vector.
func detectPlan(plan *dsp.Plan, traffic linalg.Vector, nDays int, opts Options) (*Report, error) {
	if !traffic.IsFinite() {
		return nil, fmt.Errorf("%w: non-finite traffic values", ErrEmptySignal)
	}
	opts = opts.withDefaults()
	week, day, half, err := dsp.PrincipalBins(len(traffic), nDays)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadShape, err)
	}
	bins := []int{week, day, half}
	for h := 2; h <= opts.Harmonics+1; h++ {
		bins = append(bins, h*day)
		if h*day-week > 0 {
			bins = append(bins, h*day-week)
		}
		bins = append(bins, h*day+week)
	}
	bins = append(bins, day-week, day+week)
	valid := bins[:0]
	for _, b := range bins {
		if b > 0 && b < len(traffic) {
			valid = append(valid, b)
		}
	}
	// The construction above lists some bins twice (h=2 re-adds 2·day,
	// which IS the half-day principal bin). ReconstructInto applies bins
	// as a mask, so duplicates were harmless there — but the bin list is
	// also the model's description (counted, exported, summed by the
	// serving API), so keep it sorted and unique.
	sort.Ints(valid)
	valid = slices.Compact(valid)
	expected := make(linalg.Vector, len(traffic))
	if _, err := plan.ReconstructInto(expected, traffic, valid...); err != nil {
		return nil, err
	}
	for i, v := range expected {
		if v < 0 {
			expected[i] = 0
		}
	}

	mean := traffic.Mean()
	// Floor for the denominator of relative residuals so near-zero expected
	// slots do not explode the score.
	floor := 0.05 * mean
	if floor <= 0 {
		floor = 1
	}
	residual := make(linalg.Vector, len(traffic))
	relative := make(linalg.Vector, len(traffic))
	for i := range traffic {
		residual[i] = traffic[i] - expected[i]
		relative[i] = residual[i] / math.Max(expected[i], floor)
	}
	scale := robustScale(relative)
	// A scale that is effectively zero means the model reproduces the
	// signal to numerical precision (e.g. constant traffic); there is
	// nothing to score against.
	if scale < 1e-9 {
		scale = 0
	}

	report := &Report{Bins: valid, Expected: expected, Residual: residual, Scale: scale}
	if scale == 0 {
		return report, nil
	}
	for i, rel := range relative {
		score := math.Abs(rel) / scale
		if score < opts.Threshold {
			continue
		}
		if math.Abs(residual[i]) < opts.MinRelativeDeviation*mean {
			continue
		}
		report.Anomalies = append(report.Anomalies, Anomaly{
			Slot:     i,
			Observed: traffic[i],
			Expected: expected[i],
			Score:    score,
		})
	}
	sort.Slice(report.Anomalies, func(a, b int) bool {
		return report.Anomalies[a].Score > report.Anomalies[b].Score
	})
	return report, nil
}

// robustScale returns 1.4826 × the median absolute deviation of v, a
// standard-deviation estimate that ignores the outliers being hunted.
func robustScale(v linalg.Vector) float64 {
	if len(v) == 0 {
		return 0
	}
	med := linalg.Quantile(v, 0.5)
	abs := make(linalg.Vector, len(v))
	for i, x := range v {
		abs[i] = math.Abs(x - med)
	}
	return 1.4826 * linalg.Quantile(abs, 0.5)
}

// DetectAll runs Detect on every tower and returns the reports in input
// order. The towers are fanned across a GOMAXPROCS-wide worker pool; each
// worker reuses pooled FFT plans keyed by vector length, so the fleet shares
// one set of twiddle tables per distinct window length.
func DetectAll(traffic []linalg.Vector, nDays int, opts Options) ([]*Report, error) {
	out := make([]*Report, len(traffic))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(traffic) {
		workers = len(traffic)
	}
	if workers <= 1 {
		for i, v := range traffic {
			r, err := Detect(v, nDays, opts)
			if err != nil {
				return nil, fmt.Errorf("anomaly: tower %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}
	var (
		next    atomic.Int64
		aborted atomic.Bool
		wg      sync.WaitGroup
	)
	errs := make([]error, len(traffic))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var plan *dsp.Plan
			defer func() {
				if plan != nil {
					plan.Release()
				}
			}()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(traffic) || aborted.Load() {
					return
				}
				v := traffic[i]
				if len(v) == 0 {
					errs[i] = ErrEmptySignal
					aborted.Store(true)
					continue
				}
				if plan == nil || plan.N() != len(v) {
					if plan != nil {
						plan.Release()
					}
					var err error
					if plan, err = dsp.AcquirePlan(len(v)); err != nil {
						errs[i] = err
						aborted.Store(true)
						continue
					}
				}
				r, err := detectPlan(plan, v, nDays, opts)
				if err != nil {
					errs[i] = err
					aborted.Store(true)
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("anomaly: tower %d: %w", i, err)
		}
	}
	return out, nil
}
