package anomaly

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

const (
	slotsPerDay = 144
	days        = 14
)

// regularTraffic builds a strongly periodic traffic series with mild
// multiplicative noise.
func regularTraffic(rng *rand.Rand, noise float64) linalg.Vector {
	out := make(linalg.Vector, days*slotsPerDay)
	for i := range out {
		day := i / slotsPerDay
		hour := float64(i%slotsPerDay) / 6
		v := 1000 + 4000*math.Exp(-0.5*math.Pow((hour-12)/2.5, 2)) + 2500*math.Exp(-0.5*math.Pow((hour-21)/2, 2))
		if day%7 >= 5 {
			v *= 0.8
		}
		if noise > 0 {
			v *= math.Exp(rng.NormFloat64() * noise)
		}
		out[i] = v
	}
	return out
}

func TestDetectCleanTrafficHasFewAnomalies(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	traffic := regularTraffic(rng, 0.05)
	report, err := Detect(traffic, days, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Expected) != len(traffic) || len(report.Residual) != len(traffic) {
		t.Fatal("report shapes wrong")
	}
	if report.Scale <= 0 {
		t.Fatal("robust scale should be positive for noisy traffic")
	}
	// Clean traffic: at most a handful of false positives.
	if len(report.Anomalies) > len(traffic)/200 {
		t.Errorf("clean traffic flagged %d anomalies", len(report.Anomalies))
	}
}

func TestDetectFindsInjectedSurge(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	traffic := regularTraffic(rng, 0.05)
	// Inject a flash-crowd surge on day 9 at ~20:00 lasting one hour.
	surgeStart := 9*slotsPerDay + 20*6
	for s := surgeStart; s < surgeStart+6; s++ {
		traffic[s] *= 6
	}
	// And an outage (near-zero traffic) on day 4 at midday.
	outageStart := 4*slotsPerDay + 12*6
	for s := outageStart; s < outageStart+6; s++ {
		traffic[s] *= 0.02
	}
	report, err := Detect(traffic, days, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Anomalies) == 0 {
		t.Fatal("injected surge not detected")
	}
	foundSurge, foundOutage := false, false
	for _, a := range report.Anomalies {
		if a.Slot >= surgeStart && a.Slot < surgeStart+6 {
			foundSurge = true
			if a.Observed <= a.Expected {
				t.Error("surge anomaly should exceed its expectation")
			}
		}
		if a.Slot >= outageStart && a.Slot < outageStart+6 {
			foundOutage = true
			if a.Observed >= a.Expected {
				t.Error("outage anomaly should fall below its expectation")
			}
		}
	}
	if !foundSurge {
		t.Error("surge slots not among the anomalies")
	}
	if !foundOutage {
		t.Error("outage slots not among the anomalies")
	}
	// Anomalies are sorted by descending score.
	for i := 1; i < len(report.Anomalies); i++ {
		if report.Anomalies[i].Score > report.Anomalies[i-1].Score {
			t.Fatal("anomalies not sorted by score")
		}
	}
	// The false-positive load stays modest: flagged slots outside the two
	// injected windows are rare.
	outside := 0
	for _, a := range report.Anomalies {
		inSurge := a.Slot >= surgeStart && a.Slot < surgeStart+6
		inOutage := a.Slot >= outageStart && a.Slot < outageStart+6
		if !inSurge && !inOutage {
			outside++
		}
	}
	if outside > 12 {
		t.Errorf("%d anomalies outside the injected windows", outside)
	}
}

func TestDetectQuietHourDeviationsAreSuppressed(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	traffic := regularTraffic(rng, 0.02)
	// A tiny absolute bump at 04:00 (quiet hours): statistically visible
	// but operationally irrelevant; MinRelativeDeviation suppresses it.
	slot := 6*slotsPerDay + 4*6
	traffic[slot] += traffic.Mean() * 0.1
	report, err := Detect(traffic, days, Options{Threshold: 4, MinRelativeDeviation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range report.Anomalies {
		if a.Slot == slot {
			t.Error("tiny quiet-hour bump should be suppressed by MinRelativeDeviation")
		}
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, 14, Options{}); !errors.Is(err, ErrEmptySignal) {
		t.Errorf("empty: %v", err)
	}
	bad := make(linalg.Vector, 10)
	bad[3] = math.NaN()
	if _, err := Detect(bad, 14, Options{}); !errors.Is(err, ErrEmptySignal) {
		t.Errorf("NaN: %v", err)
	}
	short := make(linalg.Vector, 100)
	if _, err := Detect(short, 5, Options{}); !errors.Is(err, ErrBadShape) {
		t.Errorf("non-whole-week: %v", err)
	}
}

func TestDetectConstantTraffic(t *testing.T) {
	// Constant traffic has zero residual scale; nothing is flagged and the
	// detector does not divide by zero.
	traffic := make(linalg.Vector, days*slotsPerDay)
	for i := range traffic {
		traffic[i] = 500
	}
	report, err := Detect(traffic, days, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Scale != 0 || len(report.Anomalies) != 0 {
		t.Errorf("constant traffic: scale=%g anomalies=%d", report.Scale, len(report.Anomalies))
	}
}

func TestDetectAll(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	towers := []linalg.Vector{regularTraffic(rng, 0.05), regularTraffic(rng, 0.05)}
	reports, err := DetectAll(towers, days, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if _, err := DetectAll([]linalg.Vector{nil}, days, Options{}); err == nil {
		t.Error("empty tower should fail")
	}
}

func TestRobustScale(t *testing.T) {
	// For a symmetric sample without outliers the robust scale approximates
	// the standard deviation.
	rng := rand.New(rand.NewSource(95))
	v := make(linalg.Vector, 5000)
	for i := range v {
		v[i] = rng.NormFloat64() * 3
	}
	s := robustScale(v)
	if math.Abs(s-3) > 0.3 {
		t.Errorf("robust scale = %g, want ~3", s)
	}
	// And it is unmoved by a few massive outliers.
	for i := 0; i < 20; i++ {
		v[i] = 1e6
	}
	if math.Abs(robustScale(v)-s) > 0.3 {
		t.Error("robust scale should resist outliers")
	}
	if robustScale(nil) != 0 {
		t.Error("empty scale should be 0")
	}
}

func BenchmarkDetect(b *testing.B) {
	rng := rand.New(rand.NewSource(96))
	traffic := regularTraffic(rng, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(traffic, days, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOptionsDisableSentinels(t *testing.T) {
	// Zero value keeps the documented defaults.
	d := Options{}.withDefaults()
	if d.Threshold != 5 || d.Harmonics != 4 || d.MinRelativeDeviation != 0.5 {
		t.Errorf("zero-value defaults = %+v", d)
	}
	// Sub-default positive values are taken as given, not clamped up.
	d = Options{Threshold: 0.5, MinRelativeDeviation: 0.01}.withDefaults()
	if d.Threshold != 0.5 || d.MinRelativeDeviation != 0.01 {
		t.Errorf("sub-default values rewritten: %+v", d)
	}
	// Disabled (negative) switches the filters off entirely.
	d = Options{Threshold: Disabled, MinRelativeDeviation: Disabled}.withDefaults()
	if d.Threshold != 0 || d.MinRelativeDeviation != 0 {
		t.Errorf("Disabled not honoured: %+v", d)
	}
}

func TestDetectWithFiltersDisabledFlagsEverySlot(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	traffic := regularTraffic(rng, 0.05)
	opts := Options{Threshold: Disabled, MinRelativeDeviation: Disabled}
	report, err := Detect(traffic, days, opts)
	if err != nil {
		t.Fatal(err)
	}
	// No score cut and no relative-deviation floor: every slot is reported
	// (the "give me every score" query of the serving API).
	if len(report.Anomalies) != len(traffic) {
		t.Errorf("disabled filters flagged %d of %d slots", len(report.Anomalies), len(traffic))
	}
	// The default options must still apply both filters.
	defReport, err := Detect(traffic, days, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(defReport.Anomalies) >= len(traffic)/2 {
		t.Errorf("default options flagged %d of %d slots", len(defReport.Anomalies), len(traffic))
	}
}

func TestDetectMinRelativeDeviationDisabledKeepsQuietHourHits(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	traffic := regularTraffic(rng, 0.05)
	// A statistically extreme but absolutely tiny bump at 04:00: the
	// default relative-deviation floor suppresses it, Disabled reports it.
	slot := 9*slotsPerDay + 4*6
	traffic[slot] *= 3
	find := func(r *Report) bool {
		for _, a := range r.Anomalies {
			if a.Slot == slot {
				return true
			}
		}
		return false
	}
	defReport, err := Detect(traffic, days, Options{})
	if err != nil {
		t.Fatal(err)
	}
	offReport, err := Detect(traffic, days, Options{MinRelativeDeviation: Disabled})
	if err != nil {
		t.Fatal(err)
	}
	if find(defReport) {
		t.Skip("quiet-hour bump cleared the default filter; pick a smaller bump")
	}
	if !find(offReport) {
		t.Error("MinRelativeDeviation: Disabled should report the quiet-hour deviation")
	}
}

func TestDetectBinsUniqueAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	traffic := regularTraffic(rng, 0.05)
	report, err := Detect(traffic, days, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Bins) == 0 {
		t.Fatal("no bins reported")
	}
	day := days // bin of the daily component for a days-day window
	seenHalfDay := 0
	for i, b := range report.Bins {
		if i > 0 && report.Bins[i-1] >= b {
			t.Fatalf("bins not sorted+unique: %v", report.Bins)
		}
		if b == 2*day {
			seenHalfDay++
		}
	}
	// Pre-dedupe, the half-day principal bin was also emitted as the h=2
	// daily harmonic, so 2·day appeared twice in the model's bin list.
	if seenHalfDay != 1 {
		t.Errorf("half-day bin appears %d times in %v", seenHalfDay, report.Bins)
	}
}
