package synth

import (
	"testing"
)

func TestBuildDataset(t *testing.T) {
	cfg := tinyConfig()
	cfg.Days = 14
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := city.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != len(city.Towers) {
		t.Errorf("dataset has %d towers, want %d", ds.NumTowers(), len(city.Towers))
	}
	if ds.Days != 14 {
		t.Errorf("days = %d, want 14", ds.Days)
	}
	if ds.NumSlots() != 14*144 {
		t.Errorf("slots = %d, want %d", ds.NumSlots(), 14*144)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Locations line up with the towers.
	for i := 0; i < ds.NumTowers(); i++ {
		row := ds.RowByTowerID(city.Towers[i].ID)
		if row < 0 {
			t.Fatalf("tower %d missing from dataset", city.Towers[i].ID)
		}
		if ds.Locations[row] != city.Towers[i].Location {
			t.Errorf("tower %d location mismatch", city.Towers[i].ID)
		}
	}
}

func TestBuildDatasetTrimsToWholeWeeks(t *testing.T) {
	cfg := tinyConfig()
	cfg.Days = 31
	cfg.Towers = 12
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := city.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Days != 28 {
		t.Errorf("31 days should trim to 28, got %d", ds.Days)
	}
}

func TestGroundTruthRegions(t *testing.T) {
	city, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := city.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	truth, err := city.GroundTruthRegions(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != ds.NumTowers() {
		t.Fatalf("truth length %d, want %d", len(truth), ds.NumTowers())
	}
	byID := make(map[int]Region)
	for _, tw := range city.Towers {
		byID[tw.ID] = tw.Region
	}
	for i, r := range truth {
		if byID[ds.TowerIDs[i]] != r {
			t.Errorf("row %d region mismatch", i)
		}
	}
	// A dataset referencing an unknown tower fails.
	bad := *ds
	bad.TowerIDs = append([]int(nil), ds.TowerIDs...)
	bad.TowerIDs[0] = 999999
	if _, err := city.GroundTruthRegions(&bad); err == nil {
		t.Error("unknown tower should fail")
	}
}

func TestTowerInfos(t *testing.T) {
	city, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	infos := city.TowerInfos()
	if len(infos) != len(city.Towers) {
		t.Fatalf("infos = %d, want %d", len(infos), len(city.Towers))
	}
	for i, info := range infos {
		if info.TowerID != city.Towers[i].ID || info.Address != city.Towers[i].Address {
			t.Errorf("info %d metadata mismatch", i)
		}
		if !info.Resolved {
			t.Errorf("info %d should be resolved", i)
		}
		if info.Location != city.Towers[i].Location {
			t.Errorf("info %d location mismatch", i)
		}
	}
}
