package synth

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/poi"
)

// tinyConfig is a very small city used to keep unit tests fast.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Towers = 60
	c.Users = 200
	c.Days = 7
	return c
}

func TestConfigValidate(t *testing.T) {
	valid := tinyConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero towers", func(c *Config) { c.Towers = 0 }},
		{"negative users", func(c *Config) { c.Users = -1 }},
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"bad slot", func(c *Config) { c.SlotMinutes = 7 }},
		{"zero slot", func(c *Config) { c.SlotMinutes = 0 }},
		{"zero start", func(c *Config) { c.Start = time.Time{} }},
		{"negative noise", func(c *Config) { c.NoiseSigma = -0.1 }},
		{"duplicate fraction 1", func(c *Config) { c.DuplicateFraction = 1 }},
		{"conflict fraction negative", func(c *Config) { c.ConflictFraction = -0.1 }},
		{"zero byte anchor", func(c *Config) { c.MeanBytesPerSlotPeak = 0 }},
		{"negative share", func(c *Config) { c.Shares = map[Region]float64{Resident: -1} }},
		{"zero shares", func(c *Config) { c.Shares = map[Region]float64{} }},
	}
	for _, m := range mutations {
		cfg := tinyConfig()
		m.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestConfigSlots(t *testing.T) {
	c := tinyConfig()
	if c.SlotsPerDay() != 144 {
		t.Errorf("SlotsPerDay = %d, want 144", c.SlotsPerDay())
	}
	if c.TotalSlots() != 7*144 {
		t.Errorf("TotalSlots = %d, want %d", c.TotalSlots(), 7*144)
	}
}

func TestApportion(t *testing.T) {
	counts, err := apportion(100, map[Region]float64{Resident: 0.5, Office: 0.25, Transport: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if counts[Resident] != 50 || counts[Office] != 25 || counts[Transport] != 25 {
		t.Errorf("apportion = %v", counts)
	}
	// Counts always sum to n even with awkward fractions.
	counts, err = apportion(7, DefaultShares())
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, n := range counts {
		total += n
	}
	if total != 7 {
		t.Errorf("apportion total = %d, want 7", total)
	}
	if _, err := apportion(10, map[Region]float64{}); err == nil {
		t.Error("empty shares should fail")
	}
}

func TestGenerateCityBasics(t *testing.T) {
	city, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(city.Towers) != 60 {
		t.Fatalf("towers = %d, want 60", len(city.Towers))
	}
	ids := make(map[int]bool)
	for _, tw := range city.Towers {
		if ids[tw.ID] {
			t.Errorf("duplicate tower id %d", tw.ID)
		}
		ids[tw.ID] = true
		if !city.Box.Contains(tw.Location) {
			t.Errorf("tower %d outside city box: %v", tw.ID, tw.Location)
		}
		if !strings.Contains(tw.Address, "Shanghai") {
			t.Errorf("address %q missing city name", tw.Address)
		}
		if tw.Amplitude <= 0 {
			t.Errorf("tower %d non-positive amplitude", tw.ID)
		}
		var mixSum float64
		for _, w := range tw.Mix {
			if w < 0 {
				t.Errorf("tower %d negative mix weight", tw.ID)
			}
			mixSum += w
		}
		if math.Abs(mixSum-1) > 1e-9 {
			t.Errorf("tower %d mix sums to %g", tw.ID, mixSum)
		}
		// Every address resolves through the geocoder.
		p, err := city.Geocoder.Resolve(tw.Address)
		if err != nil {
			t.Errorf("address %q not geocodable: %v", tw.Address, err)
		} else if p != tw.Location {
			t.Errorf("geocoder returned %v for tower at %v", p, tw.Location)
		}
	}
	if len(city.POIs) == 0 {
		t.Error("city should have POIs")
	}
	for _, p := range city.POIs {
		if int(p.Type) < 0 || int(p.Type) >= poi.NumTypes {
			t.Errorf("invalid POI type %d", p.Type)
		}
	}
}

func TestGenerateCityShares(t *testing.T) {
	cfg := tinyConfig()
	cfg.Towers = 1000
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byRegion := city.TowersByRegion()
	var total int
	for _, idxs := range byRegion {
		total += len(idxs)
	}
	if total != 1000 {
		t.Fatalf("region groups cover %d towers, want 1000", total)
	}
	for region, share := range DefaultShares() {
		got := float64(len(byRegion[region])) / 1000
		if math.Abs(got-share) > 0.01 {
			t.Errorf("region %v share = %g, want %g", region, got, share)
		}
	}
}

func TestGenerateCityDeterminism(t *testing.T) {
	a, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Towers) != len(b.Towers) || len(a.POIs) != len(b.POIs) {
		t.Fatal("same seed produced different city sizes")
	}
	for i := range a.Towers {
		if a.Towers[i].Location != b.Towers[i].Location || a.Towers[i].Region != b.Towers[i].Region {
			t.Fatalf("tower %d differs between identical seeds", i)
		}
	}
	cfg := tinyConfig()
	cfg.Seed = 999
	c, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Towers {
		if a.Towers[i].Location != c.Towers[i].Location {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tower layouts")
	}
}

func TestGenerateCityInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.Towers = -1
	if _, err := GenerateCity(cfg); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestTowerLocationsAndRegions(t *testing.T) {
	city, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	locs := city.TowerLocations()
	if len(locs) != len(city.Towers) {
		t.Fatalf("locations = %d, want %d", len(locs), len(city.Towers))
	}
	for i := range locs {
		if locs[i] != city.Towers[i].Location {
			t.Errorf("location %d mismatch", i)
		}
	}
}

func TestPOIDistributionByRegion(t *testing.T) {
	cfg := tinyConfig()
	cfg.Towers = 300
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := poi.NewCounter(city.POIs, poi.DefaultRadiusMeters)
	if err != nil {
		t.Fatal(err)
	}
	// Average POI counts per region: office towers should see far more
	// office POIs than resident towers, and vice versa.
	sums := make(map[Region]poi.Counts)
	ns := make(map[Region]int)
	for _, tw := range city.Towers {
		c := counter.CountWithin(tw.Location, poi.DefaultRadiusMeters)
		s := sums[tw.Region]
		for i := range s {
			s[i] += c[i]
		}
		sums[tw.Region] = s
		ns[tw.Region]++
	}
	officeAvg := sums[Office][int(poi.Office)] / float64(ns[Office])
	residentOfficeAvg := sums[Resident][int(poi.Office)] / float64(ns[Resident])
	if officeAvg <= residentOfficeAvg {
		t.Errorf("office towers should see more office POIs (%g) than resident towers (%g)", officeAvg, residentOfficeAvg)
	}
	residentAvg := sums[Resident][int(poi.Resident)] / float64(ns[Resident])
	officeResidentAvg := sums[Office][int(poi.Resident)] / float64(ns[Office])
	if residentAvg <= officeResidentAvg {
		t.Errorf("resident towers should see more resident POIs (%g) than office towers (%g)", residentAvg, officeResidentAvg)
	}
}

func TestPoissonDraws(t *testing.T) {
	rngCity, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = rngCity
	r := newTestRand()
	if poisson(r, 0) != 0 {
		t.Error("poisson(0) should be 0")
	}
	if poisson(r, -3) != 0 {
		t.Error("poisson(negative) should be 0")
	}
	// Large-mean draws should land near the mean.
	var sum float64
	const draws = 200
	for i := 0; i < draws; i++ {
		sum += float64(poisson(r, 100))
	}
	avg := sum / draws
	if avg < 85 || avg > 115 {
		t.Errorf("poisson(100) average = %g, want ~100", avg)
	}
	// Small-mean draws too.
	sum = 0
	for i := 0; i < 2000; i++ {
		sum += float64(poisson(r, 2))
	}
	avg = sum / 2000
	if avg < 1.7 || avg > 2.3 {
		t.Errorf("poisson(2) average = %g, want ~2", avg)
	}
}
