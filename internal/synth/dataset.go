package synth

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/urban"
)

// BuildDataset generates the ground-truth traffic series of every tower in
// the city and vectorises them into an analysis-ready dataset (trimmed to
// whole weeks and z-score normalised). It is the fast path used by the
// experiments and examples; the slow path — emitting CDR logs, cleaning
// them and vectorising the records — exercises the same aggregation code
// via pipeline.VectorizeRecords and is covered by the integration tests.
func (c *City) BuildDataset() (*pipeline.Dataset, error) {
	series, err := c.GenerateSeries()
	if err != nil {
		return nil, err
	}
	inputs := make([]pipeline.SeriesInput, len(series))
	for i, s := range series {
		inputs[i] = pipeline.SeriesInput{
			TowerID:  s.TowerID,
			Location: c.Towers[i].Location,
			Bytes:    s.Bytes,
		}
	}
	return pipeline.VectorizeSeries(inputs, pipeline.VectorizerOptions{
		Start:       c.Config.Start,
		Days:        c.Config.Days,
		SlotMinutes: c.Config.SlotMinutes,
	})
}

// TowerInfos returns the tower metadata of the city in the form consumed by
// the trace-processing pipeline (and written to towers.csv by cmd/gentrace).
func (c *City) TowerInfos() []trace.TowerInfo {
	out := make([]trace.TowerInfo, len(c.Towers))
	for i, t := range c.Towers {
		out[i] = trace.TowerInfo{
			TowerID:  t.ID,
			Address:  t.Address,
			Location: t.Location,
			Resolved: true,
		}
	}
	return out
}

// GroundTruthRegions returns, for every row of the dataset, the ground-truth
// functional region of the corresponding tower. It fails if the dataset
// references a tower the city does not contain.
func (c *City) GroundTruthRegions(ds *pipeline.Dataset) ([]urban.Region, error) {
	byID := make(map[int]Region, len(c.Towers))
	for _, t := range c.Towers {
		byID[t.ID] = t.Region
	}
	out := make([]urban.Region, ds.NumTowers())
	for i, id := range ds.TowerIDs {
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("synth: dataset references unknown tower %d", id)
		}
		out[i] = r
	}
	return out, nil
}
