// Package synth generates the synthetic urban environment and cellular
// trace that stand in for the paper's proprietary ISP dataset (9,600 towers
// and 150,000 subscribers in Shanghai, August 2014).
//
// The generator produces:
//
//   - a city with five kinds of urban functional regions (resident,
//     transport, office, entertainment, comprehensive) laid out spatially
//     like a ring-structured metropolis (business core, entertainment and
//     transport hot spots, residential periphery);
//   - cellular towers with addresses, coordinates and a ground-truth
//     functional region;
//   - points of interest (POI) of four types scattered with densities that
//     depend on the local functional region;
//   - per-tower traffic time series at 10-minute granularity whose diurnal
//     and weekly shapes follow the archetypes reported in the paper
//     (two evening peaks for residences, a single midday peak for offices,
//     a double rush-hour hump for transport, evening/weekend peaks for
//     entertainment, and mixtures for comprehensive areas);
//   - CDR-style connection logs derived from those series, including the
//     duplicated and conflicting records that the paper's preprocessing
//     stage has to clean.
//
// Because every tower carries its ground-truth region, downstream analyses
// can be validated quantitatively instead of by manual map inspection.
package synth

import (
	"fmt"
	"math"

	"repro/internal/urban"
)

// Region aliases the shared urban functional region type so that code
// working with the generator can use synth.Resident etc. directly.
type Region = urban.Region

// The five functional regions, re-exported from package urban.
const (
	Resident      = urban.Resident
	Transport     = urban.Transport
	Office        = urban.Office
	Entertainment = urban.Entertainment
	Comprehensive = urban.Comprehensive
)

// Regions lists all regions in canonical order.
var Regions = urban.Regions

// PrimaryRegions lists the four single-function regions that act as the
// primary components of the frequency-domain decomposition (Section 5.3).
var PrimaryRegions = urban.PrimaryRegions

// ParseRegion converts a region name to its Region value.
func ParseRegion(s string) (Region, error) { return urban.ParseRegion(s) }

// DefaultShares returns the fraction of towers per region reported in
// Table 1 of the paper.
func DefaultShares() map[Region]float64 { return urban.DefaultShares() }

// bump is a circular Gaussian bump on the 24-hour clock centred at c hours
// with width w hours, evaluated at hour t ∈ [0, 24).
func bump(t, c, w float64) float64 {
	d := math.Mod(t-c+36, 24) - 12 // signed circular difference in (-12, 12]
	return math.Exp(-0.5 * (d / w) * (d / w))
}

// profile is a diurnal traffic intensity shape: a non-negative function of
// the hour of day in [0, 24).
type profile func(hour float64) float64

// regionShape holds the weekday and weekend diurnal intensity profiles of a
// functional region together with the weekend amplitude scale that controls
// the weekday/weekend traffic-amount ratio (Figure 10a).
type regionShape struct {
	weekday      profile
	weekend      profile
	weekendScale float64
}

// shapes returns the archetypal traffic shapes of the four single-function
// regions. The parameters are calibrated so the derived statistics land in
// the neighbourhood of the paper's Tables 4 and 5:
//
//   - resident: evening peak ~21:30, high night floor, weekday ≈ weekend,
//     peak-valley ratio ≈ 9;
//   - transport: rush-hour peaks at 8:00 and 18:00, near-zero night floor,
//     weekday/weekend amount ratio ≈ 1.5, peak-valley ratio > 100;
//   - office: single late-morning peak (~10:30 weekday, ~12:00 weekend),
//     weekday/weekend amount ratio ≈ 1.8, peak-valley ratio ≈ 20;
//   - entertainment: evening peak (18:00) on weekdays, midday peak (12:30)
//     on weekends, peak-valley ratio ≈ 32.
func shapes() map[Region]regionShape {
	return map[Region]regionShape{
		Resident: {
			weekday: func(t float64) float64 {
				return 0.11 + 0.28*bump(t, 12.5, 2.0) + 0.90*bump(t, 21.5, 2.4) + 0.18*bump(t, 8.0, 1.6)
			},
			weekend: func(t float64) float64 {
				return 0.11 + 0.33*bump(t, 12.5, 2.2) + 0.92*bump(t, 21.5, 2.5) + 0.12*bump(t, 9.0, 1.8)
			},
			weekendScale: 1.0,
		},
		Transport: {
			weekday: func(t float64) float64 {
				return 0.008 + 1.00*bump(t, 8.0, 1.1) + 0.92*bump(t, 18.0, 1.3) + 0.30*bump(t, 12.5, 2.2)
			},
			weekend: func(t float64) float64 {
				return 0.008 + 0.45*bump(t, 9.5, 1.8) + 0.85*bump(t, 18.0, 2.0) + 0.30*bump(t, 13.0, 2.4)
			},
			weekendScale: 0.62,
		},
		Office: {
			weekday: func(t float64) float64 {
				return 0.045 + 1.00*bump(t, 10.5, 2.2) + 0.85*bump(t, 14.5, 2.6) + 0.25*bump(t, 19.0, 1.8)
			},
			weekend: func(t float64) float64 {
				return 0.055 + 0.80*bump(t, 12.0, 2.6) + 0.45*bump(t, 15.5, 2.6)
			},
			weekendScale: 0.78,
		},
		Entertainment: {
			weekday: func(t float64) float64 {
				return 0.030 + 0.95*bump(t, 18.0, 2.2) + 0.55*bump(t, 21.0, 1.8) + 0.30*bump(t, 12.5, 1.8)
			},
			weekend: func(t float64) float64 {
				return 0.030 + 0.95*bump(t, 12.5, 2.4) + 0.75*bump(t, 18.0, 2.6) + 0.40*bump(t, 21.0, 1.8)
			},
			weekendScale: 0.75,
		},
	}
}

// Intensity returns the archetypal traffic intensity (arbitrary units in
// roughly [0, 1.3]) for a single-function region at the given hour of day.
// Comprehensive regions have no archetype of their own; their intensity is
// a convex mixture of the four primary regions (see MixtureIntensity).
func Intensity(r Region, hour float64, weekend bool) (float64, error) {
	if r == Comprehensive {
		return 0, fmt.Errorf("synth: comprehensive region has no single archetype; use MixtureIntensity")
	}
	s, ok := shapes()[r]
	if !ok {
		return 0, fmt.Errorf("synth: unknown region %v", r)
	}
	hour = math.Mod(math.Mod(hour, 24)+24, 24)
	if weekend {
		return s.weekendScale * s.weekend(hour), nil
	}
	return s.weekday(hour), nil
}

// MixtureIntensity returns the intensity of a convex mixture of the four
// primary regions with the given weights (resident, transport, office,
// entertainment order). Weights are normalised internally; they need not
// sum to one but must not all be zero.
func MixtureIntensity(weights [4]float64, hour float64, weekend bool) (float64, error) {
	var total float64
	for _, w := range weights {
		if w < 0 {
			return 0, fmt.Errorf("synth: negative mixture weight %g", w)
		}
		total += w
	}
	if total == 0 {
		return 0, fmt.Errorf("synth: all mixture weights are zero")
	}
	var out float64
	for i, r := range PrimaryRegions {
		if weights[i] == 0 {
			continue
		}
		v, err := Intensity(r, hour, weekend)
		if err != nil {
			return 0, err
		}
		out += weights[i] / total * v
	}
	return out, nil
}

// DefaultComprehensiveMix is the average mixture of urban functions in a
// comprehensive area; individual comprehensive towers perturb it.
var DefaultComprehensiveMix = [4]float64{0.35, 0.10, 0.30, 0.25}

// POIMeans returns the expected POI counts of each type within 200 m of a
// tower in the given region conditional on the type being present there at
// all, loosely following the magnitudes of Table 2 of the paper scaled down
// by scale (the paper's densest points, e.g. 1016 office POIs near the
// business district, are extremes; the scale keeps synthetic data
// manageable while preserving which type dominates where).
func POIMeans(r Region, scale float64) [4]float64 {
	if scale <= 0 {
		scale = 1
	}
	var m [4]float64
	switch r {
	case Resident:
		m = [4]float64{60, 0.4, 8, 12} // resident-dominated
	case Transport:
		m = [4]float64{20, 3.5, 16, 10} // transport POIs are rare but relatively elevated
	case Office:
		m = [4]float64{30, 1.0, 120, 30}
	case Entertainment:
		m = [4]float64{10, 0.8, 30, 150}
	case Comprehensive:
		m = [4]float64{35, 0.8, 35, 20}
	}
	for i := range m {
		m[i] *= scale
	}
	return m
}

// POIPresence returns, for each POI type, the probability that at least one
// POI of that type exists within 200 m of a tower in the given region. Real
// cities are sparse at a 200 m radius — many towers see no office or
// entertainment POI at all — and this sparsity is what makes the inverse
// document frequency (IDF) of Section 5.3 informative: a type that appears
// around every tower carries no discriminating weight.
func POIPresence(r Region) [4]float64 {
	switch r {
	case Resident:
		return [4]float64{0.90, 0.03, 0.25, 0.30}
	case Transport:
		return [4]float64{0.55, 0.65, 0.45, 0.35}
	case Office:
		return [4]float64{0.50, 0.08, 0.90, 0.45}
	case Entertainment:
		return [4]float64{0.40, 0.10, 0.50, 0.92}
	case Comprehensive:
		return [4]float64{0.70, 0.08, 0.55, 0.40}
	default:
		return [4]float64{}
	}
}
