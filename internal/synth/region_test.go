package synth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegionString(t *testing.T) {
	cases := map[Region]string{
		Resident:      "resident",
		Transport:     "transport",
		Office:        "office",
		Entertainment: "entertainment",
		Comprehensive: "comprehensive",
		Region(99):    "region(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(r), got, want)
		}
	}
}

func TestParseRegion(t *testing.T) {
	for _, r := range Regions {
		got, err := ParseRegion(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRegion(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRegion("suburb"); err == nil {
		t.Error("ParseRegion of unknown name should fail")
	}
}

func TestDefaultSharesSumToOne(t *testing.T) {
	var total float64
	for _, s := range DefaultShares() {
		total += s
	}
	if math.Abs(total-1.0001) > 0.01 {
		t.Errorf("shares sum = %g, want ~1", total)
	}
}

func TestBumpProperties(t *testing.T) {
	// Peak value 1 at the centre, symmetric, decays away, wraps at 24h.
	if got := bump(12, 12, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("bump at centre = %g, want 1", got)
	}
	if math.Abs(bump(10, 12, 2)-bump(14, 12, 2)) > 1e-12 {
		t.Error("bump should be symmetric about its centre")
	}
	if bump(0, 12, 2) > bump(11, 12, 2) {
		t.Error("bump should decay away from the centre")
	}
	// Circular wrap: 23:30 is only one hour from 0:30.
	if got := bump(23.5, 0.5, 1); got < bump(3, 0.5, 1) {
		t.Errorf("bump should wrap around midnight: %g", got)
	}
}

func TestIntensityArchetypes(t *testing.T) {
	// Resident traffic peaks in the evening (~21:30) and keeps a
	// substantial night floor.
	eve, _ := Intensity(Resident, 21.5, false)
	noon, _ := Intensity(Resident, 12.5, false)
	night, _ := Intensity(Resident, 4.5, false)
	if !(eve > noon && noon > night) {
		t.Errorf("resident ordering wrong: eve=%g noon=%g night=%g", eve, noon, night)
	}
	if night < 0.05 {
		t.Errorf("resident night floor too low: %g", night)
	}

	// Office traffic peaks late morning on weekdays and has a low night floor.
	morning, _ := Intensity(Office, 10.5, false)
	nightOffice, _ := Intensity(Office, 4.0, false)
	if morning/nightOffice < 5 {
		t.Errorf("office peak-valley too small: %g / %g", morning, nightOffice)
	}

	// Transport has two rush-hour humps and an extremely low night floor.
	rushAM, _ := Intensity(Transport, 8, false)
	rushPM, _ := Intensity(Transport, 18, false)
	midday, _ := Intensity(Transport, 13, false)
	nightT, _ := Intensity(Transport, 3.5, false)
	if !(rushAM > midday && rushPM > midday) {
		t.Errorf("transport double hump missing: am=%g pm=%g midday=%g", rushAM, rushPM, midday)
	}
	if rushAM/nightT < 40 {
		t.Errorf("transport peak-valley ratio too small: %g", rushAM/nightT)
	}

	// Entertainment peaks in the evening on weekdays and at midday on weekends.
	wd18, _ := Intensity(Entertainment, 18, false)
	wd12, _ := Intensity(Entertainment, 12.5, false)
	we12, _ := Intensity(Entertainment, 12.5, true)
	we18, _ := Intensity(Entertainment, 18, true)
	if wd18 <= wd12 {
		t.Errorf("entertainment weekday peak should be in the evening: 18h=%g 12.5h=%g", wd18, wd12)
	}
	if we12 <= we18*0.9 {
		t.Errorf("entertainment weekend peak should move to midday: 12.5h=%g 18h=%g", we12, we18)
	}
}

func TestIntensityWeekdayWeekendAmounts(t *testing.T) {
	// Integrate the daily profiles; office and transport must carry much
	// more traffic on weekdays, resident and entertainment roughly equal.
	ratio := func(r Region) float64 {
		var wd, we float64
		for h := 0.0; h < 24; h += 0.1 {
			a, _ := Intensity(r, h, false)
			b, _ := Intensity(r, h, true)
			wd += a
			we += b
		}
		return wd / we
	}
	if r := ratio(Office); r < 1.4 || r > 2.4 {
		t.Errorf("office weekday/weekend ratio = %g, want ~1.8", r)
	}
	if r := ratio(Transport); r < 1.2 || r > 2.0 {
		t.Errorf("transport weekday/weekend ratio = %g, want ~1.5", r)
	}
	if r := ratio(Resident); r < 0.85 || r > 1.15 {
		t.Errorf("resident weekday/weekend ratio = %g, want ~1", r)
	}
	if r := ratio(Entertainment); r < 0.8 || r > 1.2 {
		t.Errorf("entertainment weekday/weekend ratio = %g, want ~1", r)
	}
}

func TestIntensityErrors(t *testing.T) {
	if _, err := Intensity(Comprehensive, 12, false); err == nil {
		t.Error("comprehensive region should require MixtureIntensity")
	}
	if _, err := Intensity(Region(42), 12, false); err == nil {
		t.Error("unknown region should fail")
	}
}

func TestMixtureIntensity(t *testing.T) {
	// A pure mixture equals the underlying archetype.
	pure := [4]float64{0, 0, 1, 0}
	got, err := MixtureIntensity(pure, 10.5, false)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Intensity(Office, 10.5, false)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("pure mixture = %g, want %g", got, want)
	}
	// Weights are normalised: doubling all weights changes nothing.
	a, _ := MixtureIntensity([4]float64{1, 1, 1, 1}, 12, false)
	b, _ := MixtureIntensity([4]float64{2, 2, 2, 2}, 12, false)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("mixture should be scale-invariant: %g vs %g", a, b)
	}
	if _, err := MixtureIntensity([4]float64{0, 0, 0, 0}, 12, false); err == nil {
		t.Error("all-zero mixture should fail")
	}
	if _, err := MixtureIntensity([4]float64{-1, 1, 1, 1}, 12, false); err == nil {
		t.Error("negative mixture weight should fail")
	}
}

// Property: intensities are always non-negative and finite for every
// region, hour and day type.
func TestIntensityNonNegativeProperty(t *testing.T) {
	f := func(hourRaw uint16, weekend bool) bool {
		hour := float64(hourRaw%2400) / 100
		for _, r := range PrimaryRegions {
			v, err := Intensity(r, hour, weekend)
			if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		v, err := MixtureIntensity(DefaultComprehensiveMix, hour, weekend)
		return err == nil && v >= 0 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPOIPresence(t *testing.T) {
	for _, r := range Regions {
		p := POIPresence(r)
		for i, v := range p {
			if v < 0 || v > 1 {
				t.Errorf("presence[%v][%d] = %g outside [0,1]", r, i, v)
			}
		}
	}
	// Each single-function region is the place where its own POI type is
	// most likely to be present, which keeps the IDF statistic meaningful.
	if POIPresence(Transport)[1] <= POIPresence(Office)[1] {
		t.Error("transport POIs should be most present in transport areas")
	}
	if POIPresence(Office)[2] <= POIPresence(Resident)[2] {
		t.Error("office POIs should be most present in office areas")
	}
	if POIPresence(Entertainment)[3] <= POIPresence(Comprehensive)[3] {
		t.Error("entertainment POIs should be most present in entertainment areas")
	}
	// Unknown regions have no POIs at all.
	if POIPresence(Region(99)) != [4]float64{} {
		t.Error("unknown region should have zero presence")
	}
}

func TestPOIMeans(t *testing.T) {
	// The dominant POI type of each single-function region must match the
	// region itself (this is what makes Table 3 recoverable).
	dominant := func(m [4]float64) int {
		best := 0
		for i := 1; i < 4; i++ {
			if m[i] > m[best] {
				best = i
			}
		}
		return best
	}
	if d := dominant(POIMeans(Resident, 1)); d != 0 {
		t.Errorf("resident region dominated by POI type %d", d)
	}
	if d := dominant(POIMeans(Office, 1)); d != 2 {
		t.Errorf("office region dominated by POI type %d", d)
	}
	if d := dominant(POIMeans(Entertainment, 1)); d != 3 {
		t.Errorf("entertainment region dominated by POI type %d", d)
	}
	// Transport POIs are rare everywhere but most common in transport areas.
	tShare := POIMeans(Transport, 1)[1]
	for _, r := range []Region{Resident, Office, Entertainment, Comprehensive} {
		if POIMeans(r, 1)[1] >= tShare {
			t.Errorf("transport POI mean in %v should be below transport area", r)
		}
	}
	// Scale multiplies all means; non-positive scale falls back to 1.
	base := POIMeans(Office, 1)
	double := POIMeans(Office, 2)
	for i := range base {
		if math.Abs(double[i]-2*base[i]) > 1e-9 {
			t.Errorf("scaling mismatch at %d", i)
		}
	}
	fallback := POIMeans(Office, -1)
	for i := range base {
		if fallback[i] != base[i] {
			t.Error("non-positive scale should fall back to 1")
		}
	}
}
