package synth

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// TowerSeries is the ground-truth traffic time series of one tower: bytes
// carried per aggregation slot.
type TowerSeries struct {
	TowerID int
	// Bytes[i] is the traffic carried in slot i (cfg.SlotMinutes minutes
	// starting at cfg.Start + i·SlotMinutes).
	Bytes []float64
}

// GenerateSeries produces the ground-truth per-tower traffic series for
// every tower of the city at the configured slot granularity. The series
// are the "ideal" traffic before CDR log emission; aggregating the emitted
// logs reproduces them up to rounding.
//
// The shape of each tower's series is its ground-truth functional mixture
// evaluated on the diurnal archetypes, shifted by the tower's peak jitter,
// scaled by its amplitude and the city-wide byte anchor, and perturbed with
// multiplicative log-normal noise per slot.
func (c *City) GenerateSeries() ([]TowerSeries, error) {
	cfg := c.Config
	out := make([]TowerSeries, len(c.Towers))
	for i := range c.Towers {
		s, err := c.GenerateTowerSeries(i)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	_ = cfg
	return out, nil
}

// GenerateTowerSeries produces the ground-truth traffic series of a single
// tower. Series generation is deterministic per (config seed, tower ID), so
// towers can be generated independently and in any order.
func (c *City) GenerateTowerSeries(towerIdx int) (TowerSeries, error) {
	if towerIdx < 0 || towerIdx >= len(c.Towers) {
		return TowerSeries{}, fmt.Errorf("synth: tower index %d out of range [0,%d)", towerIdx, len(c.Towers))
	}
	cfg := c.Config
	t := c.Towers[towerIdx]
	// Independent deterministic stream per tower.
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(t.ID)*7919 + 17))

	slots := cfg.TotalSlots()
	perDay := cfg.SlotsPerDay()
	bytes := make([]float64, slots)
	scale := cfg.MeanBytesPerSlotPeak * t.Amplitude
	for i := 0; i < slots; i++ {
		day := i / perDay
		slotOfDay := i % perDay
		hour := (float64(slotOfDay)+0.5)*float64(cfg.SlotMinutes)/60 - t.peakShiftHours
		date := cfg.Start.AddDate(0, 0, day)
		weekend := isWeekend(date)
		intensity, err := MixtureIntensity(t.Mix, hour, weekend)
		if err != nil {
			return TowerSeries{}, fmt.Errorf("synth: tower %d: %w", t.ID, err)
		}
		noise := math.Exp(rng.NormFloat64()*cfg.NoiseSigma - cfg.NoiseSigma*cfg.NoiseSigma/2)
		v := intensity * scale * noise
		if v < 0 {
			v = 0
		}
		bytes[i] = math.Round(v)
	}
	return TowerSeries{TowerID: t.ID, Bytes: bytes}, nil
}

// isWeekend reports whether the date falls on Saturday or Sunday.
func isWeekend(t time.Time) bool {
	wd := t.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// SlotStart returns the start time of slot i.
func (c *City) SlotStart(i int) time.Time {
	return c.Config.Start.Add(time.Duration(i) * time.Duration(c.Config.SlotMinutes) * time.Minute)
}

// AggregateSeries sums a set of tower series element-wise, returning the
// city-wide (or cluster-wide) traffic series.
func AggregateSeries(series []TowerSeries) ([]float64, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("synth: no series to aggregate")
	}
	n := len(series[0].Bytes)
	out := make([]float64, n)
	for _, s := range series {
		if len(s.Bytes) != n {
			return nil, fmt.Errorf("synth: series length mismatch: %d vs %d", len(s.Bytes), n)
		}
		for i, v := range s.Bytes {
			out[i] += v
		}
	}
	return out, nil
}
