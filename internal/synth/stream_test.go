package synth

import (
	"errors"
	"io"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/trace"
)

func TestLogSourceMatchesGenerateLogs(t *testing.T) {
	city, series := logTestCity(t)
	want, err := city.GenerateLogs(series, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := city.LogSource(series, LogOptions{})
	defer src.Close()
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, slice path emitted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	// The stream stays exhausted after EOF.
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted stream: %v", err)
	}
}

func TestLogSourceCloseEarly(t *testing.T) {
	city, series := logTestCity(t)
	src := city.LogSource(series, LogOptions{})
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	src.Close()
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("closed stream should return io.EOF, got %v", err)
	}
	src.Close() // idempotent
}

func TestLogSourcePropagatesGeneratorError(t *testing.T) {
	city, _ := logTestCity(t)
	bad := []TowerSeries{{TowerID: 99999, Bytes: make([]float64, city.Config.TotalSlots())}}
	src := city.LogSource(bad, LogOptions{})
	defer src.Close()
	_, err := src.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("generator error should surface, got %v", err)
	}
	// Sticky.
	if _, err2 := src.Next(); !errors.Is(err2, err) {
		t.Errorf("error should be sticky, got %v", err2)
	}
}

// The ISSUE's headline equivalence property: streaming a synthetic city's
// CDR log through CleanSource + VectorizeSource yields a Dataset
// identical to the batch path (GenerateLogs → Clean → VectorizeRecords)
// over the same logs.
func TestStreamingIngestionMatchesBatchOverCityLogs(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := tinyConfig()
		cfg.Towers = 12
		cfg.Days = 7
		cfg.Seed = seed
		cfg.DuplicateFraction = 0.08
		cfg.ConflictFraction = 0.05
		city, err := GenerateCity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		series, err := city.GenerateSeries()
		if err != nil {
			t.Fatal(err)
		}
		opts := pipeline.VectorizerOptions{
			Start:       cfg.Start,
			Days:        cfg.Days,
			SlotMinutes: cfg.SlotMinutes,
		}
		towers := city.TowerInfos()

		records, err := city.GenerateLogs(series, LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cleaned, batchStats := trace.Clean(records)
		want, err := pipeline.VectorizeRecords(cleaned, towers, opts)
		if err != nil {
			t.Fatal(err)
		}

		src := city.LogSource(series, LogOptions{})
		cleanedSrc := trace.CleanSource(src)
		got, err := pipeline.VectorizeSource(cleanedSrc, towers, opts)
		src.Close()
		if err != nil {
			t.Fatal(err)
		}
		streamStats := cleanedSrc.Stats()

		if got.NumTowers() != want.NumTowers() || got.NumSlots() != want.NumSlots() {
			t.Fatalf("seed %d: shape %d×%d vs %d×%d", seed,
				got.NumTowers(), got.NumSlots(), want.NumTowers(), want.NumSlots())
		}
		for i := 0; i < want.NumTowers(); i++ {
			if got.TowerIDs[i] != want.TowerIDs[i] {
				t.Fatalf("seed %d: row %d tower %d vs %d", seed, i, got.TowerIDs[i], want.TowerIDs[i])
			}
			if got.Locations[i] != want.Locations[i] {
				t.Fatalf("seed %d: row %d location differs", seed, i)
			}
			for j := range want.Raw[i] {
				if got.Raw[i][j] != want.Raw[i][j] {
					t.Fatalf("seed %d: tower %d slot %d raw %g vs %g",
						seed, want.TowerIDs[i], j, got.Raw[i][j], want.Raw[i][j])
				}
				if got.Normalized[i][j] != want.Normalized[i][j] {
					t.Fatalf("seed %d: tower %d slot %d normalized differs", seed, want.TowerIDs[i], j)
				}
			}
		}
		if streamStats.Input != batchStats.Input ||
			streamStats.Invalid != batchStats.Invalid ||
			streamStats.Duplicates != batchStats.Duplicates ||
			streamStats.Conflicts != batchStats.Conflicts {
			t.Errorf("seed %d: stream stats %+v vs batch stats %+v", seed, streamStats, batchStats)
		}
	}
}
