package synth

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// logTestCity returns a very small city and its ground-truth series so log
// emission tests stay fast.
func logTestCity(t *testing.T) (*City, []TowerSeries) {
	t.Helper()
	cfg := tinyConfig()
	cfg.Towers = 10
	cfg.Days = 2
	cfg.DuplicateFraction = 0.05
	cfg.ConflictFraction = 0.03
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, err := city.GenerateSeries()
	if err != nil {
		t.Fatal(err)
	}
	return city, series
}

func TestGenerateLogsRecordsAreValid(t *testing.T) {
	city, series := logTestCity(t)
	records, err := city.GenerateLogs(series, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records emitted")
	}
	for i, r := range records {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if r.UserID >= city.Config.Users {
			t.Fatalf("record %d user id %d out of range", i, r.UserID)
		}
		if r.Start.Before(city.Config.Start) {
			t.Fatalf("record %d starts before the trace window", i)
		}
	}
}

func TestGenerateLogsCleanedAggregateMatchesSeries(t *testing.T) {
	city, series := logTestCity(t)
	records, err := city.GenerateLogs(series, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cleaned, stats := trace.Clean(records)
	if stats.Duplicates == 0 {
		t.Error("expected some duplicate records to be injected")
	}
	if stats.Conflicts == 0 {
		t.Error("expected some conflicting records to be injected")
	}
	// Cleaned per-tower byte totals must equal the ground-truth series sums.
	wantTotals := make(map[int]float64)
	for _, s := range series {
		for _, v := range s.Bytes {
			wantTotals[s.TowerID] += v
		}
	}
	gotTotals := make(map[int]float64)
	for _, r := range cleaned {
		gotTotals[r.TowerID] += float64(r.Bytes)
	}
	for towerID, want := range wantTotals {
		if got := gotTotals[towerID]; got != want {
			t.Errorf("tower %d cleaned bytes = %g, want %g", towerID, got, want)
		}
	}
}

func TestGenerateLogsFuncStopsOnError(t *testing.T) {
	city, series := logTestCity(t)
	boom := errors.New("boom")
	count := 0
	err := city.GenerateLogsFunc(series, LogOptions{}, func(trace.Record) error {
		count++
		if count == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("expected callback error to propagate, got %v", err)
	}
	if count != 10 {
		t.Errorf("emission should stop at the error, emitted %d", count)
	}
}

func TestGenerateLogsErrors(t *testing.T) {
	city, series := logTestCity(t)
	if err := city.GenerateLogsFunc(series, LogOptions{}, nil); err == nil {
		t.Error("nil callback should fail")
	}
	bad := []TowerSeries{{TowerID: 99999, Bytes: make([]float64, city.Config.TotalSlots())}}
	if _, err := city.GenerateLogs(bad, LogOptions{}); err == nil {
		t.Error("unknown tower id should fail")
	}
	short := []TowerSeries{{TowerID: city.Towers[0].ID, Bytes: []float64{1, 2}}}
	if _, err := city.GenerateLogs(short, LogOptions{}); err == nil {
		t.Error("wrong series length should fail")
	}
}

func TestLogOptionsDefaults(t *testing.T) {
	o := LogOptions{}.withDefaults()
	if o.MaxRecordsPerSlot != 4 {
		t.Errorf("default MaxRecordsPerSlot = %d, want 4", o.MaxRecordsPerSlot)
	}
	o = LogOptions{MaxRecordsPerSlot: 9}.withDefaults()
	if o.MaxRecordsPerSlot != 9 {
		t.Error("explicit option overridden")
	}
}

func TestTech3GOrLTE(t *testing.T) {
	r := newTestRand()
	seen := map[trace.Technology]bool{}
	for i := 0; i < 200; i++ {
		tech := Tech3GOrLTE(r)
		if tech != trace.Tech3G && tech != trace.TechLTE {
			t.Fatalf("unexpected technology %q", tech)
		}
		seen[tech] = true
	}
	if !seen[trace.Tech3G] || !seen[trace.TechLTE] {
		t.Error("both technologies should appear")
	}
}

func TestGenerateLogsTimeMajorOrderAndAggregate(t *testing.T) {
	city, series := logTestCity(t)
	records, err := city.GenerateLogs(series, LogOptions{TimeMajor: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records emitted")
	}
	// Timestamps must be non-decreasing at slot granularity — the contract
	// a live feed (and the replay pacer) relies on.
	slotDur := int64(city.Config.SlotMinutes) * 60
	prevSlot := int64(-1)
	for i, r := range records {
		slot := r.Start.Unix() / slotDur
		if slot < prevSlot {
			t.Fatalf("record %d rewinds from slot %d to %d", i, prevSlot, slot)
		}
		prevSlot = slot
	}
	// The cleaned aggregate is the same as the tower-major emission's: the
	// ordering changes the record sequence, never the traffic.
	cleaned, stats := trace.Clean(records)
	if stats.Duplicates == 0 {
		t.Error("expected some duplicate records to be injected")
	}
	wantTotals := make(map[int]float64)
	for _, s := range series {
		for _, v := range s.Bytes {
			wantTotals[s.TowerID] += v
		}
	}
	gotTotals := make(map[int]float64)
	for _, r := range cleaned {
		gotTotals[r.TowerID] += float64(r.Bytes)
	}
	for towerID, want := range wantTotals {
		if got := gotTotals[towerID]; got != want {
			t.Errorf("tower %d cleaned bytes = %g, want %g", towerID, got, want)
		}
	}
}
