package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/poi"
)

// Config controls the synthetic city and trace generation. The zero value
// is not usable; call DefaultConfig or SmallConfig and adjust fields.
type Config struct {
	// Seed drives all pseudo-randomness; identical configs with identical
	// seeds produce identical cities and traces.
	Seed int64
	// Towers is the total number of cellular towers (the paper has 9,600).
	Towers int
	// Users is the number of subscribers used when emitting CDR logs
	// (the paper has 150,000).
	Users int
	// Days is the number of whole days of traffic to generate. The paper
	// collects 31 days and trims to 28 (four whole weeks).
	Days int
	// SlotMinutes is the aggregation granularity in minutes (paper: 10).
	SlotMinutes int
	// Start is the first instant of the trace (paper: Aug 1st 2014 00:00 local).
	Start time.Time
	// Shares maps each region to its fraction of towers. Missing entries
	// default to 0; the fractions are normalised.
	Shares map[Region]float64
	// AmplitudeSigma is the standard deviation of the log-normal per-tower
	// traffic amplitude (heterogeneity in subscriber counts).
	AmplitudeSigma float64
	// NoiseSigma is the relative standard deviation of multiplicative
	// per-slot traffic noise.
	NoiseSigma float64
	// MixJitter perturbs the functional mixture of comprehensive towers and
	// blends a small amount of foreign behaviour into single-function towers.
	MixJitter float64
	// PeakJitterMinutes shifts each tower's diurnal profile by a random
	// offset of at most this many minutes, modelling local schedule drift.
	PeakJitterMinutes float64
	// DuplicateFraction is the fraction of emitted CDR records that are
	// exact duplicates (the paper's "redundant logs").
	DuplicateFraction float64
	// ConflictFraction is the fraction of emitted CDR records that are
	// conflicting copies (same user, tower and interval, different bytes).
	ConflictFraction float64
	// POIScale scales the expected POI counts around each tower.
	POIScale float64
	// MeanBytesPerSlotPeak is the average bytes a typical tower carries in
	// a 10-minute slot at peak intensity; it anchors absolute volumes.
	MeanBytesPerSlotPeak float64
}

// DefaultConfig mirrors the paper's scale: 9,600 towers, 150,000 users and
// 31 days starting 2014-08-01. Generating CDR logs at this scale produces
// hundreds of millions of records; most experiments use the direct
// time-series path instead.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Towers:               9600,
		Users:                150000,
		Days:                 31,
		SlotMinutes:          10,
		Start:                time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC),
		Shares:               DefaultShares(),
		AmplitudeSigma:       0.6,
		NoiseSigma:           0.10,
		MixJitter:            0.05,
		PeakJitterMinutes:    15,
		DuplicateFraction:    0.03,
		ConflictFraction:     0.01,
		POIScale:             1.0,
		MeanBytesPerSlotPeak: 4e7,
	}
}

// SmallConfig is a laptop-friendly configuration used by tests and the
// quickstart example: a few hundred towers over four weeks.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Towers = 400
	c.Users = 2000
	c.Days = 28
	return c
}

// Validate checks the configuration for usable values.
func (c Config) Validate() error {
	switch {
	case c.Towers <= 0:
		return fmt.Errorf("synth: Towers must be positive, got %d", c.Towers)
	case c.Users < 0:
		return fmt.Errorf("synth: Users must be non-negative, got %d", c.Users)
	case c.Days <= 0:
		return fmt.Errorf("synth: Days must be positive, got %d", c.Days)
	case c.SlotMinutes <= 0 || 1440%c.SlotMinutes != 0:
		return fmt.Errorf("synth: SlotMinutes must divide 1440, got %d", c.SlotMinutes)
	case c.Start.IsZero():
		return fmt.Errorf("synth: Start must be set")
	case c.AmplitudeSigma < 0 || c.NoiseSigma < 0 || c.MixJitter < 0:
		return fmt.Errorf("synth: noise parameters must be non-negative")
	case c.DuplicateFraction < 0 || c.DuplicateFraction >= 1:
		return fmt.Errorf("synth: DuplicateFraction must be in [0,1), got %g", c.DuplicateFraction)
	case c.ConflictFraction < 0 || c.ConflictFraction >= 1:
		return fmt.Errorf("synth: ConflictFraction must be in [0,1), got %g", c.ConflictFraction)
	case c.MeanBytesPerSlotPeak <= 0:
		return fmt.Errorf("synth: MeanBytesPerSlotPeak must be positive")
	}
	var total float64
	for _, s := range c.Shares {
		if s < 0 {
			return fmt.Errorf("synth: negative region share")
		}
		total += s
	}
	if total <= 0 {
		return fmt.Errorf("synth: region shares sum to zero")
	}
	return nil
}

// SlotsPerDay returns the number of aggregation slots in one day.
func (c Config) SlotsPerDay() int { return 1440 / c.SlotMinutes }

// TotalSlots returns the number of aggregation slots in the whole trace.
func (c Config) TotalSlots() int { return c.Days * c.SlotsPerDay() }

// Tower is a synthetic cellular tower.
type Tower struct {
	// ID is the base-station identifier, unique within the city.
	ID int
	// Address is the textual address; the preprocessing stage resolves it
	// back to coordinates via the geocoder, like the paper did with the
	// Baidu Map API.
	Address string
	// Location is the ground-truth position of the tower.
	Location geo.Point
	// Region is the ground-truth urban functional region of the tower.
	Region Region
	// Mix is the ground-truth mixture over the four primary regions that
	// drives this tower's traffic (a single-function tower has most of its
	// weight on its own region).
	Mix [4]float64
	// Amplitude is the per-tower traffic scale factor (relative to the
	// city-wide mean).
	Amplitude float64
	// peakShiftHours is the per-tower diurnal shift applied to the
	// archetype profile, in hours.
	peakShiftHours float64
}

// City is the generated urban environment.
type City struct {
	Config   Config
	Towers   []Tower
	POIs     []poi.POI
	Geocoder *geo.Geocoder
	Box      geo.BoundingBox

	rng *rand.Rand
}

// Shanghai-like city frame used by the generator.
var cityBox = geo.BoundingBox{MinLat: 31.00, MaxLat: 31.45, MinLon: 121.20, MaxLon: 121.80}

// zone is a disc-shaped district of a single functional region used to lay
// out towers spatially.
type zone struct {
	center    geo.Point
	radiusDeg float64
	region    Region
}

// cityZones lays out a ring-structured metropolis: office towers in the
// core business districts, entertainment and transport hot spots scattered
// around the core, comprehensive areas in the middle ring, and residential
// neighbourhoods toward the periphery.
func cityZones() []zone {
	return []zone{
		// Central business districts.
		{geo.Point{Lat: 31.235, Lon: 121.500}, 0.035, Office},
		{geo.Point{Lat: 31.220, Lon: 121.445}, 0.030, Office},
		{geo.Point{Lat: 31.205, Lon: 121.595}, 0.025, Office},
		// Entertainment hot spots (malls, parks).
		{geo.Point{Lat: 31.245, Lon: 121.465}, 0.018, Entertainment},
		{geo.Point{Lat: 31.150, Lon: 121.655}, 0.020, Entertainment},
		{geo.Point{Lat: 31.300, Lon: 121.520}, 0.016, Entertainment},
		// Transport hubs (railway stations, interchanges, airports).
		{geo.Point{Lat: 31.250, Lon: 121.455}, 0.010, Transport},
		{geo.Point{Lat: 31.195, Lon: 121.335}, 0.012, Transport},
		{geo.Point{Lat: 31.150, Lon: 121.805}, 0.014, Transport},
		{geo.Point{Lat: 31.400, Lon: 121.470}, 0.012, Transport},
		// Comprehensive middle ring.
		{geo.Point{Lat: 31.270, Lon: 121.470}, 0.060, Comprehensive},
		{geo.Point{Lat: 31.200, Lon: 121.520}, 0.055, Comprehensive},
		{geo.Point{Lat: 31.255, Lon: 121.560}, 0.050, Comprehensive},
		{geo.Point{Lat: 31.170, Lon: 121.430}, 0.055, Comprehensive},
		// Residential periphery.
		{geo.Point{Lat: 31.330, Lon: 121.370}, 0.070, Resident},
		{geo.Point{Lat: 31.360, Lon: 121.600}, 0.075, Resident},
		{geo.Point{Lat: 31.080, Lon: 121.380}, 0.070, Resident},
		{geo.Point{Lat: 31.060, Lon: 121.620}, 0.075, Resident},
		{geo.Point{Lat: 31.300, Lon: 121.720}, 0.065, Resident},
	}
}

var districtNames = []string{
	"Huangpu", "Xuhui", "Changning", "Jingan", "Putuo", "Hongkou", "Yangpu",
	"Minhang", "Baoshan", "Jiading", "Pudong", "Songjiang", "Qingpu", "Fengxian",
}

var roadNames = []string{
	"Century", "Nanjing", "Huaihai", "Zhongshan", "Yanan", "Beijing", "Fuxing",
	"Hengshan", "Wukang", "Julu", "Changle", "Xinhua", "Hongqiao", "Longyang",
	"Siping", "Wujiaochang", "Zhangyang", "Dapu", "Caoxi", "Tianyaoqiao",
}

// GenerateCity builds the synthetic city: towers with ground-truth regions
// and mixtures, POIs, and a populated geocoder.
func GenerateCity(cfg Config) (*City, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	city := &City{
		Config:   cfg,
		Geocoder: geo.NewGeocoder(),
		Box:      cityBox,
		rng:      rng,
	}

	counts, err := apportion(cfg.Towers, cfg.Shares)
	if err != nil {
		return nil, err
	}
	zonesByRegion := make(map[Region][]zone)
	for _, z := range cityZones() {
		zonesByRegion[z.region] = append(zonesByRegion[z.region], z)
	}

	id := 0
	for _, region := range Regions {
		n := counts[region]
		zones := zonesByRegion[region]
		for i := 0; i < n; i++ {
			var loc geo.Point
			if len(zones) > 0 {
				z := zones[rng.Intn(len(zones))]
				loc = randomInDisc(rng, z.center, z.radiusDeg)
			} else {
				loc = geo.Point{
					Lat: cityBox.MinLat + rng.Float64()*(cityBox.MaxLat-cityBox.MinLat),
					Lon: cityBox.MinLon + rng.Float64()*(cityBox.MaxLon-cityBox.MinLon),
				}
			}
			if !cityBox.Contains(loc) {
				loc = clampToBox(loc, cityBox)
			}
			t := Tower{
				ID:             id,
				Address:        towerAddress(rng, id),
				Location:       loc,
				Region:         region,
				Mix:            towerMix(rng, region, cfg.MixJitter),
				Amplitude:      math.Exp(rng.NormFloat64() * cfg.AmplitudeSigma),
				peakShiftHours: (rng.Float64()*2 - 1) * cfg.PeakJitterMinutes / 60,
			}
			if err := city.Geocoder.Register(t.Address, t.Location); err != nil {
				return nil, fmt.Errorf("synth: registering tower %d: %w", id, err)
			}
			city.Towers = append(city.Towers, t)
			id++
		}
	}

	city.POIs = generatePOIs(rng, city.Towers, cfg.POIScale)
	return city, nil
}

// apportion splits n towers across regions proportionally to the shares,
// assigning remainders to the largest fractional parts so the counts sum
// exactly to n.
func apportion(n int, shares map[Region]float64) (map[Region]int, error) {
	var total float64
	for _, s := range shares {
		total += s
	}
	if total <= 0 {
		return nil, fmt.Errorf("synth: region shares sum to zero")
	}
	type frac struct {
		region Region
		rem    float64
	}
	counts := make(map[Region]int, len(Regions))
	fracs := make([]frac, 0, len(Regions))
	assigned := 0
	for _, r := range Regions {
		exact := float64(n) * shares[r] / total
		whole := int(math.Floor(exact))
		counts[r] = whole
		assigned += whole
		fracs = append(fracs, frac{r, exact - float64(whole)})
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].rem != fracs[j].rem {
			return fracs[i].rem > fracs[j].rem
		}
		return fracs[i].region < fracs[j].region
	})
	for i := 0; assigned < n; i, assigned = i+1, assigned+1 {
		counts[fracs[i%len(fracs)].region]++
	}
	return counts, nil
}

// towerMix returns the ground-truth functional mixture of a tower.
// Single-function towers put most weight on their own region with a small
// jitter blended in; comprehensive towers perturb DefaultComprehensiveMix.
func towerMix(rng *rand.Rand, region Region, jitter float64) [4]float64 {
	var mix [4]float64
	if region == Comprehensive {
		for i, w := range DefaultComprehensiveMix {
			mix[i] = math.Max(0.02, w+rng.NormFloat64()*jitter)
		}
	} else {
		idx := 0
		for i, r := range PrimaryRegions {
			if r == region {
				idx = i
				break
			}
		}
		for i := range mix {
			mix[i] = math.Abs(rng.NormFloat64()) * jitter * 0.5
		}
		mix[idx] = 1
	}
	var total float64
	for _, w := range mix {
		total += w
	}
	for i := range mix {
		mix[i] /= total
	}
	return mix
}

// randomInDisc draws a point uniformly from a disc of the given radius (in
// degrees) around the centre.
func randomInDisc(rng *rand.Rand, center geo.Point, radiusDeg float64) geo.Point {
	r := radiusDeg * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 2 * math.Pi
	return geo.Point{
		Lat: center.Lat + r*math.Sin(theta),
		Lon: center.Lon + r*math.Cos(theta),
	}
}

func clampToBox(p geo.Point, b geo.BoundingBox) geo.Point {
	return geo.Point{
		Lat: math.Min(math.Max(p.Lat, b.MinLat), b.MaxLat),
		Lon: math.Min(math.Max(p.Lon, b.MinLon), b.MaxLon),
	}
}

func towerAddress(rng *rand.Rand, id int) string {
	return fmt.Sprintf("No.%d %s Road, %s District, Shanghai",
		100+rng.Intn(4000),
		roadNames[rng.Intn(len(roadNames))],
		districtNames[rng.Intn(len(districtNames))],
	) + fmt.Sprintf(" (BS-%05d)", id)
}

// generatePOIs scatters POIs of the four types around every tower: each
// type is present near a tower with a region-dependent probability
// (POIPresence), and when present its count is Poisson with a
// region-dependent mean (POIMeans). The presence step keeps POI types
// sparse at the 200 m radius, which is what gives the TF-IDF statistic of
// Section 5.3 its discriminating power.
func generatePOIs(rng *rand.Rand, towers []Tower, scale float64) []poi.POI {
	var out []poi.POI
	for _, t := range towers {
		means := POIMeans(t.Region, scale)
		presence := POIPresence(t.Region)
		for typeIdx, mean := range means {
			if rng.Float64() >= presence[typeIdx] {
				continue
			}
			n := poisson(rng, mean)
			for i := 0; i < n; i++ {
				// Scatter within ~180 m so the POIs fall inside the 200 m
				// counting radius used by the paper.
				loc := randomInDisc(rng, t.Location, 0.0016)
				out = append(out, poi.POI{
					Type:     poi.Type(typeIdx),
					Location: loc,
				})
			}
		}
	}
	return out
}

// poisson draws a Poisson-distributed count with the given mean using
// Knuth's algorithm for small means and a normal approximation for large
// ones.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// TowersByRegion groups tower indices by their ground-truth region.
func (c *City) TowersByRegion() map[Region][]int {
	out := make(map[Region][]int, len(Regions))
	for i, t := range c.Towers {
		out[t.Region] = append(out[t.Region], i)
	}
	return out
}

// TowerLocations returns the locations of all towers in tower order.
func (c *City) TowerLocations() []geo.Point {
	out := make([]geo.Point, len(c.Towers))
	for i, t := range c.Towers {
		out[i] = t.Location
	}
	return out
}
