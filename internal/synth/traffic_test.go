package synth

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// newTestRand returns a deterministic rand source for helper tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(77)) }

func TestGenerateSeriesShape(t *testing.T) {
	city, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	series, err := city.GenerateSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(city.Towers) {
		t.Fatalf("series = %d, want %d", len(series), len(city.Towers))
	}
	wantLen := city.Config.TotalSlots()
	for i, s := range series {
		if len(s.Bytes) != wantLen {
			t.Fatalf("series %d length = %d, want %d", i, len(s.Bytes), wantLen)
		}
		if s.TowerID != city.Towers[i].ID {
			t.Errorf("series %d tower id mismatch", i)
		}
		for j, v := range s.Bytes {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("series %d slot %d invalid value %g", i, j, v)
			}
		}
	}
}

func TestGenerateTowerSeriesDeterministicAndIndependent(t *testing.T) {
	city, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := city.GenerateTowerSeries(3)
	if err != nil {
		t.Fatal(err)
	}
	// Generating other towers in between must not change tower 3.
	if _, err := city.GenerateTowerSeries(5); err != nil {
		t.Fatal(err)
	}
	b, err := city.GenerateTowerSeries(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Bytes {
		if a.Bytes[i] != b.Bytes[i] {
			t.Fatalf("tower series not deterministic at slot %d", i)
		}
	}
	if _, err := city.GenerateTowerSeries(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := city.GenerateTowerSeries(len(city.Towers)); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestSeriesFollowsArchetype(t *testing.T) {
	// An office tower's weekday traffic should peak in working hours and be
	// low at night; a resident tower should peak in the evening.
	cfg := tinyConfig()
	cfg.NoiseSigma = 0.01
	cfg.PeakJitterMinutes = 0
	cfg.Days = 7
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byRegion := city.TowersByRegion()
	perDay := cfg.SlotsPerDay()

	profileOf := func(towerIdx int) []float64 {
		s, err := city.GenerateTowerSeries(towerIdx)
		if err != nil {
			t.Fatal(err)
		}
		// Average the first 5 days (weekdays for a Friday start may vary;
		// use all days — shape differences survive averaging).
		prof := make([]float64, perDay)
		for i, v := range s.Bytes {
			prof[i%perDay] += v
		}
		return prof
	}
	slotOf := func(hour float64) int { return int(hour * 60 / float64(cfg.SlotMinutes)) }

	if idxs := byRegion[Office]; len(idxs) > 0 {
		p := profileOf(idxs[0])
		if p[slotOf(10.5)] <= p[slotOf(4)]*3 {
			t.Errorf("office tower should be much busier at 10:30 than 04:00: %g vs %g", p[slotOf(10.5)], p[slotOf(4)])
		}
	}
	if idxs := byRegion[Resident]; len(idxs) > 0 {
		p := profileOf(idxs[0])
		if p[slotOf(21.5)] <= p[slotOf(10.5)] {
			t.Errorf("resident tower should peak in the evening: 21:30=%g 10:30=%g", p[slotOf(21.5)], p[slotOf(10.5)])
		}
	}
	if idxs := byRegion[Transport]; len(idxs) > 0 {
		p := profileOf(idxs[0])
		if !(p[slotOf(8)] > p[slotOf(13)] && p[slotOf(18)] > p[slotOf(13)]) {
			t.Errorf("transport tower should have two rush-hour humps: 8h=%g 13h=%g 18h=%g", p[slotOf(8)], p[slotOf(13)], p[slotOf(18)])
		}
	}
}

func TestAggregateSeries(t *testing.T) {
	series := []TowerSeries{
		{TowerID: 0, Bytes: []float64{1, 2, 3}},
		{TowerID: 1, Bytes: []float64{10, 20, 30}},
	}
	agg, err := AggregateSeries(series)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i := range want {
		if agg[i] != want[i] {
			t.Errorf("agg[%d] = %g, want %g", i, agg[i], want[i])
		}
	}
	if _, err := AggregateSeries(nil); err == nil {
		t.Error("empty aggregate should fail")
	}
	bad := []TowerSeries{{Bytes: []float64{1}}, {Bytes: []float64{1, 2}}}
	if _, err := AggregateSeries(bad); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestSlotStart(t *testing.T) {
	city, err := GenerateCity(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := city.SlotStart(0); !got.Equal(city.Config.Start) {
		t.Errorf("SlotStart(0) = %v", got)
	}
	if got := city.SlotStart(6); !got.Equal(city.Config.Start.Add(time.Hour)) {
		t.Errorf("SlotStart(6) = %v, want start+1h", got)
	}
}

func TestIsWeekend(t *testing.T) {
	sat := time.Date(2014, 8, 2, 0, 0, 0, 0, time.UTC)
	sun := time.Date(2014, 8, 3, 0, 0, 0, 0, time.UTC)
	mon := time.Date(2014, 8, 4, 0, 0, 0, 0, time.UTC)
	if !isWeekend(sat) || !isWeekend(sun) {
		t.Error("Saturday/Sunday should be weekend")
	}
	if isWeekend(mon) {
		t.Error("Monday should not be weekend")
	}
}

func BenchmarkGenerateTowerSeries28Days(b *testing.B) {
	cfg := tinyConfig()
	cfg.Days = 28
	city, err := GenerateCity(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := city.GenerateTowerSeries(i % len(city.Towers)); err != nil {
			b.Fatal(err)
		}
	}
}
