package synth

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/trace"
)

// LogOptions tune CDR emission beyond what Config carries.
type LogOptions struct {
	// MaxRecordsPerSlot caps how many connection records one tower emits in
	// one slot; traffic is split across that many users. Zero means the
	// default of 4.
	MaxRecordsPerSlot int
	// TimeMajor interleaves the towers and emits records in slot order —
	// the order a live network feed delivers them, with timestamps
	// non-decreasing at slot granularity. The default (false) is
	// tower-major: each tower's full history in turn, the layout of a
	// per-tower CDR export. The cleaned aggregate is identical either way;
	// the record sequences differ (and so do the injected duplicates).
	TimeMajor bool
}

func (o LogOptions) withDefaults() LogOptions {
	if o.MaxRecordsPerSlot <= 0 {
		o.MaxRecordsPerSlot = 4
	}
	return o
}

// GenerateLogs converts the ground-truth tower series into CDR-style
// connection records, splitting each slot's traffic across a random set of
// subscribers and injecting the duplicated and conflicting records that the
// preprocessing stage of the paper has to eliminate. The clean portion of
// the emitted log aggregates back exactly to the input series.
//
// The number of emitted records is roughly towers × slots × records/slot,
// so full-scale configurations should stream via GenerateLogsFunc (push)
// or LogSource (pull) instead of materialising the slice.
func (c *City) GenerateLogs(series []TowerSeries, opts LogOptions) ([]trace.Record, error) {
	// Preallocate from the emission-rate estimate instead of growing the
	// slice from nil through every power of two.
	out := make([]trace.Record, 0, c.estimateLogRecords(series, opts))
	err := c.GenerateLogsFunc(series, opts, func(r trace.Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenerateLogsFunc streams generated records to the emit callback:
// tower-major by default (chronological slot order per tower),
// slot-major across all towers with LogOptions.TimeMajor. Emission stops
// at the first error returned by the callback.
func (c *City) GenerateLogsFunc(series []TowerSeries, opts LogOptions, emit func(trace.Record) error) error {
	if emit == nil {
		return fmt.Errorf("synth: nil emit callback")
	}
	opts = opts.withDefaults()
	cfg := c.Config

	towersByID := make(map[int]Tower, len(c.Towers))
	for _, t := range c.Towers {
		towersByID[t.ID] = t
	}
	towers := make([]Tower, len(series))
	for i, s := range series {
		tower, ok := towersByID[s.TowerID]
		if !ok {
			return fmt.Errorf("synth: series references unknown tower %d", s.TowerID)
		}
		if len(s.Bytes) != cfg.TotalSlots() {
			return fmt.Errorf("synth: series for tower %d has %d slots, want %d", s.TowerID, len(s.Bytes), cfg.TotalSlots())
		}
		towers[i] = tower
	}

	users := cfg.Users
	if users <= 0 {
		users = 1
	}
	em := logEmitter{
		cfg:     cfg,
		opts:    opts,
		rng:     rand.New(rand.NewSource(cfg.Seed*999_331 + 7)),
		slotDur: time.Duration(cfg.SlotMinutes) * time.Minute,
		users:   users,
		emit:    emit,
	}

	if opts.TimeMajor {
		for slot := 0; slot < cfg.TotalSlots(); slot++ {
			for i, s := range series {
				if err := em.slot(towers[i], slot, s.Bytes[slot]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for i, s := range series {
		for slot, total := range s.Bytes {
			if err := em.slot(towers[i], slot, total); err != nil {
				return err
			}
		}
	}
	return nil
}

// logEmitter turns one (tower, slot, bytes) cell of the ground truth into
// CDR records: the slot's traffic split across a random set of
// subscribers, plus the injected duplicates and conflicts. The rng is
// consumed in emission order, so a given traversal order is fully
// deterministic under the city seed.
type logEmitter struct {
	cfg     Config
	opts    LogOptions
	rng     *rand.Rand
	slotDur time.Duration
	users   int
	emit    func(trace.Record) error
}

func (e *logEmitter) slot(tower Tower, slot int, total float64) error {
	if total <= 0 {
		return nil
	}
	start := e.cfg.Start.Add(time.Duration(slot) * e.slotDur)
	n := 1 + e.rng.Intn(e.opts.MaxRecordsPerSlot)
	remaining := int64(total)
	for i := 0; i < n && remaining > 0; i++ {
		var bytes int64
		if i == n-1 {
			bytes = remaining
		} else {
			bytes = int64(float64(remaining) * (0.2 + 0.6*e.rng.Float64()) / float64(n-i))
			if bytes <= 0 {
				bytes = 1
			}
			if bytes > remaining {
				bytes = remaining
			}
		}
		remaining -= bytes
		offset := time.Duration(e.rng.Int63n(int64(e.slotDur) / 2))
		dur := time.Duration(e.rng.Int63n(int64(e.slotDur)/2)) + time.Second
		tech := Tech3GOrLTE(e.rng)
		rec := trace.Record{
			UserID:  e.rng.Intn(e.users),
			Start:   start.Add(offset),
			End:     start.Add(offset).Add(dur),
			TowerID: tower.ID,
			Address: tower.Address,
			Bytes:   bytes,
			Tech:    tech,
		}
		if err := e.emit(rec); err != nil {
			return err
		}
		// Redundant logs: exact copies of the record just emitted.
		if e.rng.Float64() < e.cfg.DuplicateFraction {
			if err := e.emit(rec); err != nil {
				return err
			}
		}
		// Conflicting logs: same logical connection, smaller byte
		// counter (a partial export). Clean keeps the larger copy,
		// so the cleaned aggregate still matches the series.
		if e.rng.Float64() < e.cfg.ConflictFraction && rec.Bytes > 1 {
			conflict := rec
			conflict.Bytes = rec.Bytes / 2
			if err := e.emit(conflict); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tech3GOrLTE draws a radio technology with the rough LTE share of a 2014
// metropolitan network.
func Tech3GOrLTE(rng *rand.Rand) trace.Technology {
	if rng.Float64() < 0.55 {
		return trace.TechLTE
	}
	return trace.Tech3G
}
