package synth

import (
	"errors"
	"io"
	"iter"

	"repro/internal/trace"
)

// errStreamClosed signals GenerateLogsFunc to stop emitting because the
// consumer abandoned the stream.
var errStreamClosed = errors.New("synth: log stream closed")

// logItem is one step of the generator coroutine: a record or a terminal
// generator error.
type logItem struct {
	rec trace.Record
	err error
}

// LogStream adapts the push-based GenerateLogsFunc into a pull-based
// trace.Source, so a synthetic city's CDR log can flow straight into the
// streaming cleaner and vectorizer without ever materialising the record
// slice. It is backed by a coroutine (iter.Pull); call Close to release
// it if the stream is abandoned before io.EOF.
type LogStream struct {
	next func() (logItem, bool)
	stop func()
	err  error
	done bool
}

// LogSource streams the synthetic CDR log of the given ground-truth
// series, in the same order GenerateLogs would emit it.
func (c *City) LogSource(series []TowerSeries, opts LogOptions) *LogStream {
	seq := func(yield func(logItem) bool) {
		err := c.GenerateLogsFunc(series, opts, func(r trace.Record) error {
			if !yield(logItem{rec: r}) {
				return errStreamClosed
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStreamClosed) {
			yield(logItem{err: err})
		}
	}
	next, stop := iter.Pull(seq)
	return &LogStream{next: next, stop: stop}
}

// Next returns the next generated record, io.EOF at the end of the log,
// or the generator's error. Errors are sticky.
func (s *LogStream) Next() (trace.Record, error) {
	if s.done {
		return trace.Record{}, s.terminalErr()
	}
	item, ok := s.next()
	if !ok {
		s.Close()
		return trace.Record{}, io.EOF
	}
	if item.err != nil {
		s.err = item.err
		s.Close()
		return trace.Record{}, item.err
	}
	return item.rec, nil
}

// Close stops the generator coroutine early. Subsequent Next calls return
// io.EOF (or the generator error, if one occurred). Close is idempotent
// and unnecessary once Next has returned a non-nil error.
func (s *LogStream) Close() {
	if !s.done {
		s.done = true
		s.stop()
	}
}

func (s *LogStream) terminalErr() error {
	if s.err != nil {
		return s.err
	}
	return io.EOF
}
