package synth

import (
	"errors"
	"io"
	"iter"

	"repro/internal/trace"
)

// errStreamClosed signals GenerateLogsFunc to stop emitting because the
// consumer abandoned the stream.
var errStreamClosed = errors.New("synth: log stream closed")

// logStreamBatch is how many records the generator coroutine hands over
// per suspension: the coroutine switch is amortised across the batch, so
// the pull side costs a few nanoseconds per record instead of a full
// resume each.
const logStreamBatch = 512

// logItem is one step of the generator coroutine: a batch of records
// (valid until the next pull — the generator reuses the backing array)
// or a terminal generator error.
type logItem struct {
	recs []trace.Record
	err  error
}

// LogStream adapts the push-based GenerateLogsFunc into a pull-based
// trace.Source and trace.BatchSource, so a synthetic city's CDR log can
// flow straight into the streaming cleaner and vectorizer without ever
// materialising the record slice. It is backed by a coroutine
// (iter.Pull) that yields records in batches; call Close to release it
// if the stream is abandoned before io.EOF.
type LogStream struct {
	next func() (logItem, bool)
	stop func()
	cur  []trace.Record
	pos  int
	hint int
	err  error
	done bool
}

// LogSource streams the synthetic CDR log of the given ground-truth
// series, in the same order GenerateLogs would emit it.
func (c *City) LogSource(series []TowerSeries, opts LogOptions) *LogStream {
	seq := func(yield func(logItem) bool) {
		buf := make([]trace.Record, 0, logStreamBatch)
		err := c.GenerateLogsFunc(series, opts, func(r trace.Record) error {
			buf = append(buf, r)
			if len(buf) == cap(buf) {
				if !yield(logItem{recs: buf}) {
					return errStreamClosed
				}
				// The consumer copied what it needed before resuming us;
				// reuse the batch storage.
				buf = buf[:0]
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStreamClosed) {
			// Flush the records emitted before the failure, then the error.
			if len(buf) > 0 && !yield(logItem{recs: buf}) {
				return
			}
			yield(logItem{err: err})
			return
		}
		if err == nil && len(buf) > 0 {
			yield(logItem{recs: buf})
		}
	}
	next, stop := iter.Pull(seq)
	return &LogStream{next: next, stop: stop, hint: c.estimateLogRecords(series, opts)}
}

// estimateLogRecords predicts the emitted log length for preallocation:
// every traffic-carrying slot emits on average (1+MaxRecordsPerSlot)/2
// records, each duplicated or conflicted with the configured
// probabilities. Counting the non-zero slots keeps the estimate
// proportional to the actual emission for sparse traffic (the generator
// skips empty slots). It is a hint, never a bound.
func (c *City) estimateLogRecords(series []TowerSeries, opts LogOptions) int {
	opts = opts.withDefaults()
	active := 0
	for _, s := range series {
		for _, b := range s.Bytes {
			if b > 0 {
				active++
			}
		}
	}
	perSlot := float64(1+opts.MaxRecordsPerSlot) / 2
	perSlot *= 1 + c.Config.DuplicateFraction + c.Config.ConflictFraction
	return int(float64(active) * perSlot)
}

// SizeHint estimates how many records the stream will yield, letting
// collectors preallocate (trace.SizeHinter).
func (s *LogStream) SizeHint() int { return s.hint }

// pull suspends into the generator for the next batch. It reports false
// when the stream is exhausted or failed (s.err set for failures).
func (s *LogStream) pull() bool {
	if s.done {
		return false
	}
	item, ok := s.next()
	if !ok {
		s.Close()
		return false
	}
	if item.err != nil {
		s.err = item.err
		s.Close()
		return false
	}
	s.cur, s.pos = item.recs, 0
	return true
}

// Next returns the next generated record, io.EOF at the end of the log,
// or the generator's error. Errors are sticky.
func (s *LogStream) Next() (trace.Record, error) {
	for s.pos >= len(s.cur) {
		if !s.pull() {
			return trace.Record{}, s.terminalErr()
		}
	}
	r := s.cur[s.pos]
	s.pos++
	return r, nil
}

// NextBatch copies up to len(dst) generated records into dst; see
// trace.BatchSource for the contract. Errors are sticky.
func (s *LogStream) NextBatch(dst []trace.Record) (int, error) {
	n := 0
	for n < len(dst) {
		if s.pos >= len(s.cur) {
			if !s.pull() {
				return n, s.terminalErr()
			}
			continue
		}
		m := copy(dst[n:], s.cur[s.pos:])
		n += m
		s.pos += m
	}
	return n, nil
}

// Close stops the generator coroutine early and drops any undelivered
// records. Subsequent Next calls return io.EOF (or the generator error,
// if one occurred). Close is idempotent and unnecessary once Next has
// returned a non-nil error.
func (s *LogStream) Close() {
	if !s.done {
		s.done = true
		s.cur = nil
		s.pos = 0
		s.stop()
	}
}

func (s *LogStream) terminalErr() error {
	if s.err != nil {
		return s.err
	}
	return io.EOF
}
