package forecast

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

const (
	slotsPerDay = 144
	totalDays   = 28
	trainDays   = 21
)

// periodicSeries builds a noisy but strictly weekly-periodic traffic series:
// a daily double hump whose amplitude drops at the weekend.
func periodicSeries(rng *rand.Rand, noise float64) linalg.Vector {
	out := make(linalg.Vector, totalDays*slotsPerDay)
	for i := range out {
		day := i / slotsPerDay
		slot := i % slotsPerDay
		hour := float64(slot) / 6
		weekend := day%7 >= 5
		v := 20 + 80*math.Exp(-0.5*math.Pow((hour-9)/1.5, 2)) + 60*math.Exp(-0.5*math.Pow((hour-18)/2, 2))
		if weekend {
			v *= 0.6
		}
		if noise > 0 {
			v *= math.Exp(rng.NormFloat64() * noise)
		}
		out[i] = v
	}
	return out
}

func allModels() []Model {
	return []Model{
		&SpectralModel{Components: Principal},
		&SpectralModel{Components: Harmonics},
		&SpectralModel{Components: HarmonicsAndSidebands},
		&LastWeekModel{},
		&SlotOfWeekMeanModel{},
	}
}

func TestModelsPredictPeriodicSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	series := periodicSeries(rng, 0.05)
	for _, m := range allModels() {
		metrics, err := Backtest(m, series, totalDays, trainDays, slotsPerDay)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if metrics.NRMSE > 0.6 {
			t.Errorf("%s: NRMSE = %g, want < 0.6", m.Name(), metrics.NRMSE)
		}
		if metrics.MAPE <= 0 || metrics.RMSE <= 0 {
			t.Errorf("%s: degenerate metrics %+v", m.Name(), metrics)
		}
		if m.StateSize() <= 0 {
			t.Errorf("%s: StateSize = %d after fitting", m.Name(), m.StateSize())
		}
	}
}

func TestSidebandsBeatPrincipalOnWeekendModulation(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	series := periodicSeries(rng, 0.03)
	principal := &SpectralModel{Components: Principal}
	sidebands := &SpectralModel{Components: HarmonicsAndSidebands}
	mp, err := Backtest(principal, series, totalDays, trainDays, slotsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Backtest(sidebands, series, totalDays, trainDays, slotsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if ms.RMSE >= mp.RMSE {
		t.Errorf("sidebands RMSE (%g) should beat principal-3 (%g) on weekday/weekend-modulated traffic", ms.RMSE, mp.RMSE)
	}
	// And the compact models stay far below the replay's state size.
	replay := &LastWeekModel{}
	if _, err := Backtest(replay, series, totalDays, trainDays, slotsPerDay); err != nil {
		t.Fatal(err)
	}
	if sidebands.StateSize() >= replay.StateSize()/10 {
		t.Errorf("sideband model state (%d) should be at least 10x smaller than replay (%d)", sidebands.StateSize(), replay.StateSize())
	}
	if principal.StateSize() >= sidebands.StateSize() {
		t.Errorf("principal-3 state (%d) should be below sideband state (%d)", principal.StateSize(), sidebands.StateSize())
	}
}

func TestSpectralModelExactOnPureComponents(t *testing.T) {
	// A signal containing only the three principal components is predicted
	// exactly (up to the non-negativity clamp, which does not trigger here).
	n := trainDays * slotsPerDay
	train := make(linalg.Vector, n)
	week, day := trainDays/7, trainDays
	for i := range train {
		ti := float64(i)
		train[i] = 100 +
			20*math.Cos(2*math.Pi*float64(week)*ti/float64(n)) +
			50*math.Cos(2*math.Pi*float64(day)*ti/float64(n)+1) +
			10*math.Cos(2*math.Pi*float64(2*day)*ti/float64(n))
	}
	m := &SpectralModel{Components: Principal}
	if err := m.Fit(train, trainDays, slotsPerDay); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(7 * slotsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pred); i += 97 {
		if math.Abs(pred[i]-train[i]) > 1e-6 {
			t.Fatalf("pred[%d] = %g, want %g", i, pred[i], train[i])
		}
	}
	if m.StateSize() != 7 {
		t.Errorf("StateSize = %d, want 7 (3 bins × 2 + DC)", m.StateSize())
	}
}

func TestModelErrors(t *testing.T) {
	good := make(linalg.Vector, 7*slotsPerDay)
	for i := range good {
		good[i] = float64(i % 100)
	}
	for _, m := range allModels() {
		if _, err := m.Predict(10); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: predict before fit: %v", m.Name(), err)
		}
		if err := m.Fit(good[:10], 7, slotsPerDay); !errors.Is(err, ErrBadTraining) {
			t.Errorf("%s: bad training length: %v", m.Name(), err)
		}
		if err := m.Fit(good, 0, slotsPerDay); !errors.Is(err, ErrBadTraining) {
			t.Errorf("%s: zero days: %v", m.Name(), err)
		}
		if err := m.Fit(good, 7, slotsPerDay); err != nil {
			t.Fatalf("%s: fit: %v", m.Name(), err)
		}
		if _, err := m.Predict(0); !errors.Is(err, ErrBadHorizon) {
			t.Errorf("%s: zero horizon: %v", m.Name(), err)
		}
	}
	// NaN training data is rejected.
	bad := good.Clone()
	bad[5] = math.NaN()
	if err := (&SpectralModel{}).Fit(bad, 7, slotsPerDay); !errors.Is(err, ErrBadTraining) {
		t.Errorf("NaN training: %v", err)
	}
	// Replay and slot-of-week models need a whole week.
	short := make(linalg.Vector, 3*slotsPerDay)
	if err := (&LastWeekModel{}).Fit(short, 3, slotsPerDay); !errors.Is(err, ErrBadTraining) {
		t.Errorf("short replay training: %v", err)
	}
	if err := (&SlotOfWeekMeanModel{}).Fit(short, 3, slotsPerDay); !errors.Is(err, ErrBadTraining) {
		t.Errorf("short slot-of-week training: %v", err)
	}
	// Unknown component set.
	if err := (&SpectralModel{Components: ComponentSet(42)}).Fit(good, 7, slotsPerDay); err == nil {
		t.Error("unknown component set should fail")
	}
}

func TestEvaluate(t *testing.T) {
	actual := linalg.Vector{100, 200, 0, 100}
	predicted := linalg.Vector{110, 180, 10, 100}
	m, err := Evaluate(actual, predicted)
	if err != nil {
		t.Fatal(err)
	}
	// MAPE over slots above 10% of mean (mean = 100, threshold 10):
	// |10|/100, |20|/200, |0|/100 → (0.1+0.1+0)/3.
	if math.Abs(m.MAPE-0.2/3) > 1e-9 {
		t.Errorf("MAPE = %g, want %g", m.MAPE, 0.2/3)
	}
	wantRMSE := math.Sqrt((100 + 400 + 100 + 0) / 4)
	if math.Abs(m.RMSE-wantRMSE) > 1e-9 {
		t.Errorf("RMSE = %g, want %g", m.RMSE, wantRMSE)
	}
	if math.Abs(m.NRMSE-wantRMSE/100) > 1e-9 {
		t.Errorf("NRMSE = %g", m.NRMSE)
	}
	if _, err := Evaluate(actual, predicted[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("empty evaluation should fail")
	}
}

func TestBacktestErrors(t *testing.T) {
	series := periodicSeries(rand.New(rand.NewSource(83)), 0)
	m := &SpectralModel{Components: Principal}
	if _, err := Backtest(m, series, totalDays, 0, slotsPerDay); !errors.Is(err, ErrBadTraining) {
		t.Errorf("zero train days: %v", err)
	}
	if _, err := Backtest(m, series, totalDays, totalDays, slotsPerDay); !errors.Is(err, ErrBadTraining) {
		t.Errorf("train == total: %v", err)
	}
	if _, err := Backtest(m, series[:10], totalDays, trainDays, slotsPerDay); !errors.Is(err, ErrBadTraining) {
		t.Errorf("short series: %v", err)
	}
}

func TestComponentSetString(t *testing.T) {
	if Principal.String() != "principal-3" || Harmonics.String() != "harmonics" ||
		HarmonicsAndSidebands.String() != "harmonics+sidebands" {
		t.Error("component set names wrong")
	}
	if ComponentSet(9).String() != "componentset(9)" {
		t.Error("unknown component set name wrong")
	}
}

func BenchmarkSpectralBacktest(b *testing.B) {
	series := periodicSeries(rand.New(rand.NewSource(84)), 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &SpectralModel{Components: HarmonicsAndSidebands}
		if _, err := Backtest(m, series, totalDays, trainDays, slotsPerDay); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEvaluateZeroWindowIsNotPerfect(t *testing.T) {
	// A dead tower: the actual window is all zeros. MAPE and NRMSE
	// degenerate to 0, which pre-coverage read as a perfect forecast in
	// summaries; Evaluable/Coverage must expose that nothing was scored.
	actual := make(linalg.Vector, 2*slotsPerDay)
	predicted := make(linalg.Vector, 2*slotsPerDay)
	for i := range predicted {
		predicted[i] = 100 // wildly wrong forecast for a dead tower
	}
	m, err := Evaluate(actual, predicted)
	if err != nil {
		t.Fatal(err)
	}
	if m.MAPE != 0 || m.NRMSE != 0 {
		t.Errorf("degenerate relative errors changed: MAPE=%g NRMSE=%g", m.MAPE, m.NRMSE)
	}
	if m.RMSE != 100 {
		t.Errorf("RMSE = %g, want 100", m.RMSE)
	}
	if m.Evaluable != 0 || m.Coverage != 0 {
		t.Errorf("zero window: Evaluable=%d Coverage=%g, want 0/0", m.Evaluable, m.Coverage)
	}

	// A live window reports full coverage for uniformly non-trivial
	// traffic, so consumers can tell the two apart.
	live := make(linalg.Vector, 2*slotsPerDay)
	for i := range live {
		live[i] = 50 + float64(i%7)
	}
	m, err = Evaluate(live, live)
	if err != nil {
		t.Fatal(err)
	}
	if m.Evaluable != len(live) || m.Coverage != 1 {
		t.Errorf("live window: Evaluable=%d Coverage=%g, want %d/1", m.Evaluable, m.Coverage, len(live))
	}
	if m.MAPE != 0 || m.RMSE != 0 {
		t.Errorf("exact forecast: MAPE=%g RMSE=%g", m.MAPE, m.RMSE)
	}
}
