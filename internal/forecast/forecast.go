// Package forecast turns the paper's frequency-domain observation into a
// practical per-tower traffic forecaster — the ISP use case motivating the
// study (load balancing and tower-specific pricing need a cheap per-tower
// traffic model). A tower's traffic is dominated by a handful of spectral
// components, so a model that stores only those components predicts future
// weeks with a small fraction of the state a replay-based model needs.
//
// Three models are provided:
//
//   - SpectralModel: keeps a configurable set of frequency components of
//     the training window (the paper's three principal components by
//     default, optionally daily harmonics and their weekly sidebands) and
//     extrapolates them periodically;
//   - LastWeekModel: replays the final week of the training window;
//   - SlotOfWeekMeanModel: predicts the historical mean of each slot of the
//     week.
package forecast

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/linalg"
)

// Errors returned by the forecasting models.
var (
	ErrNotFitted   = errors.New("forecast: model not fitted")
	ErrBadTraining = errors.New("forecast: invalid training window")
	ErrBadHorizon  = errors.New("forecast: invalid horizon")
)

// Model is a per-tower traffic forecaster.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Fit trains the model on a traffic vector covering trainDays whole
	// days at slotsPerDay slots per day.
	Fit(train linalg.Vector, trainDays, slotsPerDay int) error
	// Predict returns the forecast for the next horizon slots.
	Predict(horizon int) (linalg.Vector, error)
	// StateSize returns the number of float64 values the fitted model
	// needs to keep per tower (the "cost" axis of the accuracy/state
	// trade-off).
	StateSize() int
}

// validateTraining checks the common training-window invariants.
func validateTraining(train linalg.Vector, trainDays, slotsPerDay int) error {
	if trainDays <= 0 || slotsPerDay <= 0 {
		return fmt.Errorf("%w: %d days × %d slots/day", ErrBadTraining, trainDays, slotsPerDay)
	}
	if len(train) != trainDays*slotsPerDay {
		return fmt.Errorf("%w: %d samples for %d days × %d slots/day", ErrBadTraining, len(train), trainDays, slotsPerDay)
	}
	if !train.IsFinite() {
		return fmt.Errorf("%w: training window contains non-finite values", ErrBadTraining)
	}
	return nil
}

// ComponentSet selects which spectral components a SpectralModel keeps.
type ComponentSet int

// Available component sets.
const (
	// Principal keeps the paper's three components: one week, one day,
	// half a day (6 numbers per tower).
	Principal ComponentSet = iota
	// Harmonics keeps the weekly component plus the first six daily
	// harmonics.
	Harmonics
	// HarmonicsAndSidebands additionally keeps the weekly sidebands of
	// each daily harmonic (k·day ± week), which encode the
	// weekday/weekend modulation of the daily shape.
	HarmonicsAndSidebands
)

// String implements fmt.Stringer.
func (c ComponentSet) String() string {
	switch c {
	case Principal:
		return "principal-3"
	case Harmonics:
		return "harmonics"
	case HarmonicsAndSidebands:
		return "harmonics+sidebands"
	default:
		return fmt.Sprintf("componentset(%d)", int(c))
	}
}

// SpectralModel forecasts by keeping a small set of DFT components of the
// training window and extending them periodically.
type SpectralModel struct {
	Components ComponentSet
	// MaxHarmonics bounds the daily harmonics kept by the Harmonics and
	// HarmonicsAndSidebands sets (default 6).
	MaxHarmonics int

	reconstructed linalg.Vector
	bins          []int
	trainSlots    int
}

// Name implements Model.
func (m *SpectralModel) Name() string { return "spectral-" + m.Components.String() }

// Fit implements Model.
func (m *SpectralModel) Fit(train linalg.Vector, trainDays, slotsPerDay int) error {
	if err := validateTraining(train, trainDays, slotsPerDay); err != nil {
		return err
	}
	week, day, half, err := dsp.PrincipalBins(len(train), trainDays)
	if err != nil {
		return fmt.Errorf("forecast: %w", err)
	}
	maxHarmonics := m.MaxHarmonics
	if maxHarmonics <= 0 {
		maxHarmonics = 6
	}
	var bins []int
	switch m.Components {
	case Principal:
		bins = []int{week, day, half}
	case Harmonics:
		bins = []int{week}
		for h := 1; h <= maxHarmonics; h++ {
			bins = append(bins, h*day)
		}
	case HarmonicsAndSidebands:
		bins = []int{week}
		for h := 1; h <= maxHarmonics; h++ {
			bins = append(bins, h*day, h*day-week, h*day+week)
		}
	default:
		return fmt.Errorf("forecast: unknown component set %v", m.Components)
	}
	// Drop bins that fall outside the valid range for this window.
	valid := bins[:0]
	for _, b := range bins {
		if b > 0 && b < len(train) {
			valid = append(valid, b)
		}
	}
	// The band-limited reconstruction runs on a pooled FFT plan: fitting a
	// fleet of per-tower models of one window length reuses a single set of
	// twiddle tables.
	plan, err := dsp.AcquirePlan(len(train))
	if err != nil {
		return fmt.Errorf("forecast: %w", err)
	}
	reconstructed, _, err := plan.Reconstruct(train, valid...)
	plan.Release()
	if err != nil {
		return fmt.Errorf("forecast: %w", err)
	}
	m.reconstructed = reconstructed
	m.bins = valid
	m.trainSlots = len(train)
	return nil
}

// Predict implements Model. The retained components are periodic over the
// training window, so the forecast for slot trainSlots+i is the
// reconstruction at slot i (mod trainSlots).
func (m *SpectralModel) Predict(horizon int) (linalg.Vector, error) {
	if m.trainSlots == 0 {
		return nil, ErrNotFitted
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadHorizon, horizon)
	}
	out := make(linalg.Vector, horizon)
	for i := 0; i < horizon; i++ {
		v := m.reconstructed[i%m.trainSlots]
		if v < 0 {
			v = 0 // traffic cannot be negative
		}
		out[i] = v
	}
	return out, nil
}

// StateSize implements Model: amplitude and phase per retained bin, plus the
// DC term.
func (m *SpectralModel) StateSize() int {
	if m.trainSlots == 0 {
		return 0
	}
	return 2*len(m.bins) + 1
}

// LastWeekModel replays the final week of the training window.
type LastWeekModel struct {
	lastWeek linalg.Vector
}

// Name implements Model.
func (m *LastWeekModel) Name() string { return "last-week-replay" }

// Fit implements Model.
func (m *LastWeekModel) Fit(train linalg.Vector, trainDays, slotsPerDay int) error {
	if err := validateTraining(train, trainDays, slotsPerDay); err != nil {
		return err
	}
	if trainDays < 7 {
		return fmt.Errorf("%w: last-week replay needs at least 7 days, got %d", ErrBadTraining, trainDays)
	}
	weekSlots := 7 * slotsPerDay
	m.lastWeek = train[len(train)-weekSlots:].Clone()
	return nil
}

// Predict implements Model.
func (m *LastWeekModel) Predict(horizon int) (linalg.Vector, error) {
	if len(m.lastWeek) == 0 {
		return nil, ErrNotFitted
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadHorizon, horizon)
	}
	out := make(linalg.Vector, horizon)
	for i := range out {
		out[i] = m.lastWeek[i%len(m.lastWeek)]
	}
	return out, nil
}

// StateSize implements Model.
func (m *LastWeekModel) StateSize() int { return len(m.lastWeek) }

// SlotOfWeekMeanModel predicts the historical mean of each slot of the
// week, averaging over all training weeks.
type SlotOfWeekMeanModel struct {
	means linalg.Vector
}

// Name implements Model.
func (m *SlotOfWeekMeanModel) Name() string { return "slot-of-week-mean" }

// Fit implements Model.
func (m *SlotOfWeekMeanModel) Fit(train linalg.Vector, trainDays, slotsPerDay int) error {
	if err := validateTraining(train, trainDays, slotsPerDay); err != nil {
		return err
	}
	if trainDays < 7 {
		return fmt.Errorf("%w: slot-of-week mean needs at least 7 days, got %d", ErrBadTraining, trainDays)
	}
	weekSlots := 7 * slotsPerDay
	sums := make(linalg.Vector, weekSlots)
	counts := make([]int, weekSlots)
	for i, v := range train {
		sums[i%weekSlots] += v
		counts[i%weekSlots]++
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	m.means = sums
	return nil
}

// Predict implements Model.
func (m *SlotOfWeekMeanModel) Predict(horizon int) (linalg.Vector, error) {
	if len(m.means) == 0 {
		return nil, ErrNotFitted
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadHorizon, horizon)
	}
	out := make(linalg.Vector, horizon)
	for i := range out {
		out[i] = m.means[i%len(m.means)]
	}
	return out, nil
}

// StateSize implements Model.
func (m *SlotOfWeekMeanModel) StateSize() int { return len(m.means) }

// Metrics summarise forecast accuracy over a horizon.
//
// MAPE and NRMSE are only meaningful when the actual window carried
// traffic: a dead tower (all-zero actuals) yields MAPE == NRMSE == 0,
// which read as a perfect forecast if taken at face value. Check
// Evaluable (or Coverage) first — zero means "no evaluable traffic",
// not "perfect".
type Metrics struct {
	// MAPE is the mean absolute percentage error over the Evaluable slots
	// (actual traffic at least 10 % of the window mean). Zero when
	// Evaluable is zero.
	MAPE float64
	// RMSE is the root mean squared error over all slots.
	RMSE float64
	// NRMSE is RMSE divided by the mean of the actual traffic, or zero
	// when the window mean is zero (see Evaluable).
	NRMSE float64
	// Evaluable is the number of slots that entered the MAPE sum. Zero
	// means the window carried no evaluable traffic and the relative
	// errors above say nothing about forecast quality.
	Evaluable int
	// Coverage is Evaluable as a fraction of the window's slots.
	Coverage float64
}

// Evaluate compares a forecast against the actual traffic.
func Evaluate(actual, predicted linalg.Vector) (Metrics, error) {
	if len(actual) != len(predicted) {
		return Metrics{}, fmt.Errorf("forecast: %d actual vs %d predicted slots", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return Metrics{}, errors.New("forecast: empty evaluation window")
	}
	mean := actual.Mean()
	threshold := mean * 0.1
	var mapeSum float64
	var mapeN int
	var sq float64
	for i := range actual {
		d := predicted[i] - actual[i]
		sq += d * d
		if actual[i] > threshold && actual[i] > 0 {
			mapeSum += math.Abs(d) / actual[i]
			mapeN++
		}
	}
	m := Metrics{
		RMSE:      math.Sqrt(sq / float64(len(actual))),
		Evaluable: mapeN,
		Coverage:  float64(mapeN) / float64(len(actual)),
	}
	if mapeN > 0 {
		m.MAPE = mapeSum / float64(mapeN)
	}
	if mean > 0 {
		m.NRMSE = m.RMSE / mean
	}
	return m, nil
}

// Backtest fits the model on the first trainDays days of the series and
// evaluates its prediction of the remaining slots.
func Backtest(model Model, series linalg.Vector, totalDays, trainDays, slotsPerDay int) (Metrics, error) {
	if trainDays <= 0 || trainDays >= totalDays {
		return Metrics{}, fmt.Errorf("%w: train %d of %d days", ErrBadTraining, trainDays, totalDays)
	}
	if len(series) != totalDays*slotsPerDay {
		return Metrics{}, fmt.Errorf("%w: %d samples for %d days", ErrBadTraining, len(series), totalDays)
	}
	trainSlots := trainDays * slotsPerDay
	if err := model.Fit(series[:trainSlots], trainDays, slotsPerDay); err != nil {
		return Metrics{}, err
	}
	horizon := len(series) - trainSlots
	predicted, err := model.Predict(horizon)
	if err != nil {
		return Metrics{}, err
	}
	return Evaluate(series[trainSlots:], predicted)
}
