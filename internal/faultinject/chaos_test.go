package faultinject_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/panicsafe"
	"repro/internal/pipeline"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// chaosWorkerCounts sweeps the serial path and the parallel chunk parser.
func chaosWorkerCounts() []int { return []int{1, 2, 4} }

// TestChaosIngestion drives the full ingestion stack (serial Scanner and
// ParallelCSVSource, each behind NewIngestSourceContext) through every
// fault profile at every worker count. For each profile the invariants
// are exact: a profile that injects nothing must reproduce the baseline
// bit-for-bit; retryable faults must be absorbed (and counted); byte
// damage must surface as skip accounting or a clean error; permanent
// faults must abort with a positioned, classifiable error. Run under
// -race this doubles as the data-race sweep of the whole pool machinery.
func TestChaosIngestion(t *testing.T) {
	data, wantBad := genTrace(t, 2000, 100)

	// Baseline: serial, no faults.
	base, err := trace.NewIngestSource(bytes.NewReader(data), 1)
	if err != nil {
		t.Fatal(err)
	}
	baseRecs, baseStats, baseErr := ingest(base)
	if baseErr != nil {
		t.Fatal(baseErr)
	}
	if got := int(baseStats.SkippedRows()); got != wantBad {
		t.Fatalf("baseline skipped %d rows, generator injected %d", got, wantBad)
	}

	retry := trace.RetryPolicy{MaxAttempts: 8, Backoff: 50 * time.Microsecond}
	profiles := []struct {
		name  string
		prof  faultinject.Profile
		check func(t *testing.T, recs []trace.Record, stats trace.SkipStats, err error, counts faultinject.Counts)
	}{
		{
			name: "none",
			prof: faultinject.Profile{},
			check: func(t *testing.T, recs []trace.Record, stats trace.SkipStats, err error, _ faultinject.Counts) {
				if err != nil {
					t.Fatalf("no-fault run failed: %v", err)
				}
				if !reflect.DeepEqual(recs, baseRecs) {
					t.Fatalf("no-fault run not bit-identical to baseline: %d vs %d records", len(recs), len(baseRecs))
				}
				if stats.SkippedRows() != baseStats.SkippedRows() {
					t.Fatalf("no-fault stats diverged: %v vs %v", stats, baseStats)
				}
			},
		},
		{
			name: "transient-retried",
			prof: faultinject.Profile{Seed: 7, TransientProb: 0.1},
			check: func(t *testing.T, recs []trace.Record, stats trace.SkipStats, err error, counts faultinject.Counts) {
				if err != nil {
					t.Fatalf("retried run failed: %v (counts %+v)", err, counts)
				}
				if !reflect.DeepEqual(recs, baseRecs) {
					t.Fatalf("retry must be invisible to the record stream: %d vs %d records", len(recs), len(baseRecs))
				}
				if counts.Transient > 0 && stats.IORetries == 0 {
					t.Fatalf("%d transient faults fired but IORetries is 0", counts.Transient)
				}
			},
		},
		{
			name: "short-reads",
			prof: faultinject.Profile{Seed: 11, ShortReadProb: 0.5},
			check: func(t *testing.T, recs []trace.Record, stats trace.SkipStats, err error, _ faultinject.Counts) {
				if err != nil {
					t.Fatalf("short reads are legal io.Reader behaviour: %v", err)
				}
				if !reflect.DeepEqual(recs, baseRecs) {
					t.Fatalf("short reads corrupted the record stream: %d vs %d records", len(recs), len(baseRecs))
				}
			},
		},
		{
			name: "corrupt-bytes",
			prof: faultinject.Profile{Seed: 13, CorruptProb: 0.2},
			check: func(t *testing.T, recs []trace.Record, stats trace.SkipStats, err error, counts faultinject.Counts) {
				// Corruption may break rows (skipped), may be harmless
				// (inside an address), or may break the CSV structure near
				// the header. All acceptable outcomes are: clean completion
				// with plausible accounting, or a clean error.
				if err != nil {
					return
				}
				if len(recs) > len(baseRecs)+int(counts.Corrupted) {
					t.Fatalf("corruption grew the stream: %d vs %d records", len(recs), len(baseRecs))
				}
			},
		},
		{
			name: "truncate-mid-stream",
			prof: faultinject.Profile{Seed: 17, TruncateAt: int64(len(data) / 3)},
			check: func(t *testing.T, recs []trace.Record, stats trace.SkipStats, err error, _ faultinject.Counts) {
				if err != nil {
					t.Fatalf("mid-stream EOF should end the stream cleanly: %v", err)
				}
				if len(recs) >= len(baseRecs) {
					t.Fatalf("truncated run returned %d records, full run %d", len(recs), len(baseRecs))
				}
			},
		},
		{
			name: "permanent-failure",
			prof: faultinject.Profile{Seed: 19, PermanentAt: int64(len(data) / 2)},
			check: func(t *testing.T, recs []trace.Record, stats trace.SkipStats, err error, _ faultinject.Counts) {
				if err == nil {
					t.Fatal("permanent fault must abort the stream")
				}
				var perm *faultinject.PermanentError
				if !errors.As(err, &perm) {
					t.Fatalf("cause not preserved through the chain: %v", err)
				}
				var pos *trace.PosError
				if !errors.As(err, &pos) {
					t.Fatalf("error carries no position: %v", err)
				}
				if pos.Line <= 0 || pos.Offset <= 0 {
					t.Fatalf("degenerate position line=%d offset=%d", pos.Line, pos.Offset)
				}
			},
		},
	}

	for _, workers := range chaosWorkerCounts() {
		for _, tc := range profiles {
			t.Run(fmt.Sprintf("w%d/%s", workers, tc.name), func(t *testing.T) {
				testutil.CheckNoGoroutineLeak(t)
				fr := faultinject.NewReader(bytes.NewReader(data), tc.prof)
				src, err := trace.NewIngestSourceContext(context.Background(), fr, workers,
					trace.ErrorPolicy{Mode: trace.PolicySkip, Retry: retry})
				if err != nil {
					// Header unreadable (possible under corruption): a clean
					// constructor error is an acceptable outcome.
					if tc.name == "corrupt-bytes" || tc.name == "truncate-mid-stream" {
						return
					}
					t.Fatal(err)
				}
				defer src.Close()
				recs, stats, err := ingest(src)
				tc.check(t, recs, stats, err, fr.Counts())
			})
		}
	}
}

// TestChaosIngestionWorkerSweepBitIdentical pins the determinism
// contract: with no faults firing, every worker count must produce the
// exact same records and stats.
func TestChaosIngestionWorkerSweepBitIdentical(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	data, _ := genTrace(t, 3000, 73)
	var wantRecs []trace.Record
	var wantStats trace.SkipStats
	for i, workers := range []int{1, 2, 3, 4, 8} {
		src, err := trace.NewIngestSource(bytes.NewReader(data), workers)
		if err != nil {
			t.Fatal(err)
		}
		recs, stats, err := ingest(src)
		src.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			wantRecs, wantStats = recs, stats
			continue
		}
		if !reflect.DeepEqual(recs, wantRecs) {
			t.Fatalf("workers=%d records diverge from serial", workers)
		}
		if stats != wantStats {
			t.Fatalf("workers=%d stats %v, serial %v", workers, stats, wantStats)
		}
	}
}

// TestChaosBudgetPolicy drives a corrupt stream against a strict error
// budget at every worker count and asserts the run aborts with
// ErrBudgetExceeded rather than silently producing a gutted dataset.
func TestChaosBudgetPolicy(t *testing.T) {
	data, wantBad := genTrace(t, 2000, 25) // ~80 bad rows
	if wantBad < 20 {
		t.Fatalf("generator produced only %d bad rows", wantBad)
	}
	for _, workers := range chaosWorkerCounts() {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			testutil.CheckNoGoroutineLeak(t)
			src, err := trace.NewIngestSourceContext(context.Background(), bytes.NewReader(data), workers,
				trace.ErrorPolicy{Mode: trace.PolicyBudget, Budget: trace.Budget{MaxRows: 10}})
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			_, _, err = ingest(src)
			if !errors.Is(err, trace.ErrBudgetExceeded) {
				t.Fatalf("want ErrBudgetExceeded, got %v", err)
			}
		})
	}
}

// drainKeep drains src batch-wise, keeping the records delivered before
// any terminal error (which trace.Collect would discard).
func drainKeep(src trace.BatchSource) ([]trace.Record, error) {
	var out []trace.Record
	buf := make([]trace.Record, 1024)
	for {
		n, err := src.NextBatch(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
	}
}

// TestChaosFailFastPolicy asserts fail-fast semantics are exact at every
// worker count: the stream aborts at the FIRST malformed row, with the
// rows before it delivered and the error carrying the row's position.
func TestChaosFailFastPolicy(t *testing.T) {
	data, _ := genTrace(t, 1000, 100)
	var wantRecs []trace.Record
	for i, workers := range chaosWorkerCounts() {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			testutil.CheckNoGoroutineLeak(t)
			src, err := trace.NewIngestSourceContext(context.Background(), bytes.NewReader(data), workers,
				trace.ErrorPolicy{Mode: trace.PolicyFailFast})
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			recs, err := drainKeep(src)
			if !errors.Is(err, trace.ErrRowRejected) {
				t.Fatalf("want ErrRowRejected, got %v", err)
			}
			var pos *trace.PosError
			if !errors.As(err, &pos) {
				t.Fatalf("fail-fast error carries no position: %v", err)
			}
			// genTrace splices the garbage row after CSV line 101 (header +
			// 100 records), so it IS line 102 of the stream.
			if pos.Line != 102 {
				t.Fatalf("fail-fast position line=%d, want 102", pos.Line)
			}
			if i == 0 {
				wantRecs = recs
			} else if !reflect.DeepEqual(recs, wantRecs) {
				t.Fatalf("workers=%d delivered %d records before the bad row, serial delivered %d",
					workers, len(recs), len(wantRecs))
			}
		})
	}
	if len(wantRecs) != 100 {
		t.Fatalf("fail-fast delivered %d records before the first bad row, want 100", len(wantRecs))
	}
}

// vectorizeOpts is the shared vectorizer window of the pipeline chaos
// tests; genTrace's records all land within the first day.
func vectorizeOpts(workers int) pipeline.VectorizerOptions {
	return pipeline.VectorizerOptions{
		Start:            time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC),
		Days:             7,
		SlotMinutes:      10,
		Workers:          workers,
		KeepPartialWeeks: true,
	}
}

// TestChaosVectorizeSource drives the streaming vectorizer with faulty
// sources — mid-stream errors and panics at assorted depths — at every
// worker count, asserting the failure always surfaces as a clean error
// (with the panic stack preserved) and never leaks a shard worker.
func TestChaosVectorizeSource(t *testing.T) {
	data, _ := genTrace(t, 4000, 0)

	// Baseline dataset, no faults.
	mk := func() trace.Source {
		src, err := trace.NewIngestSource(bytes.NewReader(data), 1)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	baseDS, err := pipeline.VectorizeSource(mk(), nil, vectorizeOpts(2))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range chaosWorkerCounts() {
		t.Run(fmt.Sprintf("w%d/no-fault", workers), func(t *testing.T) {
			testutil.CheckNoGoroutineLeak(t)
			ds, err := pipeline.VectorizeSourceContext(context.Background(),
				faultinject.NewSource(mk(), faultinject.SourceProfile{}), nil, vectorizeOpts(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ds.Raw, baseDS.Raw) {
				t.Fatal("no-fault dataset diverges from baseline")
			}
		})
		for _, after := range []int{1, 513, 2999} {
			t.Run(fmt.Sprintf("w%d/err-after-%d", workers, after), func(t *testing.T) {
				testutil.CheckNoGoroutineLeak(t)
				_, err := pipeline.VectorizeSourceContext(context.Background(),
					faultinject.NewSource(mk(), faultinject.SourceProfile{ErrAfter: after}), nil, vectorizeOpts(workers))
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("want ErrInjected through the pipeline, got %v", err)
				}
			})
			t.Run(fmt.Sprintf("w%d/panic-after-%d", workers, after), func(t *testing.T) {
				testutil.CheckNoGoroutineLeak(t)
				// A panicking source must come back as a *panicsafe.Error
				// carrying the stack — never as a crash, a deadlock or a
				// leaked shard worker.
				_, err := pipeline.VectorizeSourceContext(context.Background(),
					faultinject.NewSource(mk(), faultinject.SourceProfile{PanicAfter: after}), nil, vectorizeOpts(workers))
				var pe *panicsafe.Error
				if !errors.As(err, &pe) {
					t.Fatalf("want *panicsafe.Error for a panicking source, got %v", err)
				}
				if len(pe.Stack) == 0 {
					t.Fatal("panic error lost its stack")
				}
			})
		}
	}
}

// TestChaosIngestToVectorize chains a faulty byte stream through the
// parallel parser into the parallel vectorizer — the full ingestion
// pipeline under byte-level chaos — and asserts every combination either
// completes or fails cleanly with zero leaked goroutines.
func TestChaosIngestToVectorize(t *testing.T) {
	data, _ := genTrace(t, 3000, 211)
	profiles := []faultinject.Profile{
		{},
		{Seed: 3, TransientProb: 0.05},
		{Seed: 5, ShortReadProb: 0.4},
		{Seed: 7, CorruptProb: 0.1},
		{Seed: 9, TruncateAt: int64(len(data) / 2)},
		{Seed: 11, PermanentAt: int64(2 * len(data) / 3)},
		{Seed: 13, TransientProb: 0.03, ShortReadProb: 0.2, CorruptProb: 0.05, DelayProb: 0.01, Delay: 100 * time.Microsecond},
	}
	retry := trace.RetryPolicy{MaxAttempts: 6, Backoff: 20 * time.Microsecond}
	for _, workers := range chaosWorkerCounts() {
		for pi, prof := range profiles {
			t.Run(fmt.Sprintf("w%d/profile%d", workers, pi), func(t *testing.T) {
				testutil.CheckNoGoroutineLeak(t)
				fr := faultinject.NewReader(bytes.NewReader(data), prof)
				src, err := trace.NewIngestSourceContext(context.Background(), fr, workers,
					trace.ErrorPolicy{Mode: trace.PolicySkip, Retry: retry})
				if err != nil {
					return // header unreadable under this schedule: clean abort
				}
				defer src.Close()
				ds, err := pipeline.VectorizeSourceContext(context.Background(), src, nil, vectorizeOpts(workers))
				if err != nil {
					if errors.Is(err, pipeline.ErrEmptyDataset) {
						return
					}
					var pe *panicsafe.Error
					if errors.As(err, &pe) {
						t.Fatalf("pipeline converted a fault into a panic: %v", err)
					}
					return // clean error is an accepted outcome under chaos
				}
				if ds.NumTowers() == 0 {
					t.Fatal("completed run produced an empty dataset without ErrEmptyDataset")
				}
			})
		}
	}
}

// TestChaosCancellation cancels the ingest→vectorize chain at randomized
// points mid-stream and asserts prompt, clean unwinding: the call
// returns context.Canceled (or completes, if cancellation lost the
// race), within a bounded wait, with no leaked goroutines.
func TestChaosCancellation(t *testing.T) {
	data, _ := genTrace(t, 5000, 0)
	rng := rngFromSeed(99)
	for _, workers := range chaosWorkerCounts() {
		for trial := 0; trial < 8; trial++ {
			t.Run(fmt.Sprintf("w%d/trial%d", workers, trial), func(t *testing.T) {
				testutil.CheckNoGoroutineLeak(t)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				// Cancel after a random number of records have flowed.
				cancelAt := rng.Intn(4000)
				n := 0
				gate := trace.SourceFunc(func() (trace.Record, error) { return trace.Record{}, io.EOF })
				_ = gate
				src, err := trace.NewIngestSourceContext(ctx, bytes.NewReader(data), workers, trace.ErrorPolicy{})
				if err != nil {
					t.Fatal(err)
				}
				defer src.Close()
				counting := trace.SourceFunc(func() (trace.Record, error) {
					r, err := src.Next()
					if err == nil {
						n++
						if n == cancelAt {
							cancel()
						}
					}
					return r, err
				})
				start := time.Now()
				_, err = pipeline.VectorizeSourceContext(ctx, counting, nil, vectorizeOpts(workers))
				elapsed := time.Since(start)
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled run returned %v", err)
				}
				if elapsed > 10*time.Second {
					t.Fatalf("cancellation took %v to unwind", elapsed)
				}
			})
		}
	}
}
