package faultinject

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ErrInjected is the default terminal error of a faulty Source.
var ErrInjected = errors.New("faultinject: injected source failure")

// SourceProfile configures a faulty Source. The zero value injects
// nothing. Record positions are 1-based counts of records delivered.
type SourceProfile struct {
	// ErrAfter makes Next/NextBatch return Err (default ErrInjected)
	// after this many records have been delivered. Zero disables.
	ErrAfter int
	// Err overrides the injected error.
	Err error
	// PanicAfter makes Next/NextBatch panic after this many records have
	// been delivered — the model of a bug in a source implementation,
	// which the pipeline's worker pools must convert into an error
	// rather than crash on. Zero disables.
	PanicAfter int
}

// Source wraps a trace.Source (preserving batch capability) with
// record-level fault injection. After the configured fault fires the
// source is dead: subsequent calls return the same error.
type Source struct {
	src       trace.Source
	bs        trace.BatchSource
	p         SourceProfile
	delivered int
	err       error
}

// NewSource wraps src with the given fault profile.
func NewSource(src trace.Source, p SourceProfile) *Source {
	if p.Err == nil {
		p.Err = ErrInjected
	}
	return &Source{src: src, bs: trace.Batched(src), p: p}
}

// Delivered returns the number of records handed out before any fault.
func (s *Source) Delivered() int { return s.delivered }

// trip fires the configured fault if the stream has reached it. It
// returns the remaining record budget before the next fault boundary.
func (s *Source) trip() (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	budget := -1
	if s.p.PanicAfter > 0 {
		if s.delivered >= s.p.PanicAfter {
			panic(fmt.Sprintf("faultinject: injected panic after %d records", s.delivered))
		}
		budget = s.p.PanicAfter - s.delivered
	}
	if s.p.ErrAfter > 0 {
		if s.delivered >= s.p.ErrAfter {
			s.err = s.p.Err
			return 0, s.err
		}
		if b := s.p.ErrAfter - s.delivered; budget < 0 || b < budget {
			budget = b
		}
	}
	return budget, nil
}

// Next implements trace.Source.
func (s *Source) Next() (trace.Record, error) {
	if _, err := s.trip(); err != nil {
		return trace.Record{}, err
	}
	r, err := s.src.Next()
	if err == nil {
		s.delivered++
	}
	return r, err
}

// NextBatch implements trace.BatchSource. A batch never crosses a fault
// boundary: the records before the boundary are delivered first, and the
// fault fires on the following call — mirroring how a real source hands
// out what it has before failing.
func (s *Source) NextBatch(dst []trace.Record) (int, error) {
	budget, err := s.trip()
	if err != nil {
		return 0, err
	}
	if budget > 0 && budget < len(dst) {
		dst = dst[:budget]
	}
	n, err := s.bs.NextBatch(dst)
	s.delivered += n
	return n, err
}

// Skipped forwards to the wrapped source.
func (s *Source) Skipped() int {
	if sk, ok := s.src.(interface{ Skipped() int }); ok {
		return sk.Skipped()
	}
	return 0
}

// Stats forwards to the wrapped source.
func (s *Source) Stats() trace.SkipStats {
	if st, ok := s.src.(interface{ Stats() trace.SkipStats }); ok {
		return st.Stats()
	}
	return trace.SkipStats{}
}
