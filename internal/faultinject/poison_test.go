package faultinject

import (
	"io"
	"testing"
	"time"

	"repro/internal/trace"
)

var poisonT0 = time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC)

// poisonRecords builds a chronological stream: one record per tower per
// 10-minute slot.
func poisonRecords(towers, slots int) []trace.Record {
	recs := make([]trace.Record, 0, towers*slots)
	for s := 0; s < slots; s++ {
		start := poisonT0.Add(time.Duration(s) * 10 * time.Minute)
		for id := 0; id < towers; id++ {
			recs = append(recs, trace.Record{
				UserID:  100 + id,
				Start:   start,
				End:     start.Add(time.Minute),
				TowerID: id,
				Bytes:   int64(1000 + 10*id),
				Tech:    trace.Tech3G,
			})
		}
	}
	return recs
}

// drain reads a source to EOF one record at a time.
func drain(t *testing.T, src trace.Source) []trace.Record {
	t.Helper()
	var out []trace.Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

func TestPoisonedSourceZeroProfilePassesThrough(t *testing.T) {
	recs := poisonRecords(5, 20)
	got := drain(t, NewPoisonedSource(trace.SliceSource(recs), PoisonProfile{}))
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mutated by zero profile: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestPoisonedSourceDeterministicAcrossReadShapes(t *testing.T) {
	recs := poisonRecords(10, 50)
	p := PoisonProfile{Seed: 42, TowerFraction: 0.4, SpikeFactor: 100, DuplicateFlood: 2, LateBy: 5 * time.Minute}

	serial := drain(t, NewPoisonedSource(trace.SliceSource(recs), p))

	batched := NewPoisonedSource(trace.SliceSource(recs), p)
	var viaBatch []trace.Record
	buf := make([]trace.Record, 7)
	for {
		n, err := batched.NextBatch(buf)
		viaBatch = append(viaBatch, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	if len(serial) != len(viaBatch) {
		t.Fatalf("serial delivered %d records, batched %d", len(serial), len(viaBatch))
	}
	// Flood duplicates interleave differently between read shapes, so
	// compare as multisets.
	count := func(rs []trace.Record) map[trace.Record]int {
		m := make(map[trace.Record]int, len(rs))
		for _, r := range rs {
			m[r]++
		}
		return m
	}
	cs, cb := count(serial), count(viaBatch)
	for r, n := range cs {
		if cb[r] != n {
			t.Fatalf("record %+v: %d serial vs %d batched", r, n, cb[r])
		}
	}

	again := drain(t, NewPoisonedSource(trace.SliceSource(recs), p))
	for i := range serial {
		if serial[i] != again[i] {
			t.Fatalf("same seed diverged at record %d", i)
		}
	}
}

func TestPoisonedSourceSpikesSelectedTowersInWindow(t *testing.T) {
	recs := poisonRecords(20, 30)
	from := poisonT0.Add(100 * time.Minute)
	to := poisonT0.Add(200 * time.Minute)
	src := NewPoisonedSource(trace.SliceSource(recs), PoisonProfile{
		Seed: 7, TowerFraction: 0.5, SpikeFactor: 50, ActiveFrom: from, ActiveTo: to,
	})
	got := drain(t, src)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d (no flood configured)", len(got), len(recs))
	}
	spikedTowers := map[int]bool{}
	for i, r := range got {
		orig := recs[i]
		inWindow := !orig.Start.Before(from) && orig.Start.Before(to)
		switch {
		case r.Bytes == orig.Bytes:
		case r.Bytes == orig.Bytes*50 && inWindow:
			spikedTowers[r.TowerID] = true
		default:
			t.Fatalf("record %d: bytes %d from %d (inWindow=%v)", i, r.Bytes, orig.Bytes, inWindow)
		}
	}
	if n := len(spikedTowers); n < 4 || n > 16 {
		t.Fatalf("spiked %d of 20 towers, want roughly half", n)
	}
	// Selection is per tower: a spiked tower is spiked for every in-window
	// record.
	for i, r := range got {
		orig := recs[i]
		if spikedTowers[orig.TowerID] && !orig.Start.Before(from) && orig.Start.Before(to) && r.Bytes != orig.Bytes*50 {
			t.Fatalf("tower %d spiked inconsistently at record %d", orig.TowerID, i)
		}
	}
	if src.Poisoned() == 0 {
		t.Fatal("Poisoned() = 0 after spiking")
	}
}

func TestPoisonedSourceZeroesAndFloods(t *testing.T) {
	recs := poisonRecords(10, 20)
	src := NewPoisonedSource(trace.SliceSource(recs), PoisonProfile{
		Seed: 3, TowerFraction: 1, ZeroTowers: true, DuplicateFlood: 3, LateBy: 30 * time.Minute,
	})
	got := drain(t, src)
	if want := len(recs) * 4; len(got) != want {
		t.Fatalf("got %d records, want %d (3 duplicates each)", len(got), want)
	}
	var dups int
	for _, r := range got {
		if r.Bytes != 0 {
			t.Fatalf("record not zeroed: %+v", r)
		}
		if r.UserID >= 1000 { // perturbed flood copy
			dups++
		}
	}
	if dups != len(recs)*3 {
		t.Fatalf("found %d flood duplicates, want %d", dups, len(recs)*3)
	}
	if src.Injected() != uint64(len(recs)*3) {
		t.Fatalf("Injected() = %d, want %d", src.Injected(), len(recs)*3)
	}
}

func TestPoisonedSourceFutureSkew(t *testing.T) {
	recs := poisonRecords(4, 10)
	skew := 400 * 24 * time.Hour
	src := NewPoisonedSource(trace.SliceSource(recs), PoisonProfile{
		Seed: 9, TowerFraction: 1, FutureSkew: skew, FutureEvery: 5,
	})
	got := drain(t, src)
	var futured int
	for i, r := range got {
		if r.Start.After(recs[i].Start) {
			if d := r.Start.Sub(recs[i].Start); d != skew {
				t.Fatalf("record %d skewed by %v, want %v", i, d, skew)
			}
			futured++
		}
	}
	if futured != len(recs)/5 {
		t.Fatalf("futured %d records, want %d", futured, len(recs)/5)
	}
	if src.Futured() != uint64(futured) {
		t.Fatalf("Futured() = %d, want %d", src.Futured(), futured)
	}
}
