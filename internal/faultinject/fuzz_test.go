package faultinject_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/panicsafe"
	"repro/internal/trace"
)

// FuzzFaultySource drives the full ingestion stack through
// fuzzer-chosen fault schedules over fuzzer-chosen bytes. The harness
// asserts the robustness contract, not parsing results: for ANY input
// and ANY fault schedule the stack must terminate (no deadlock), must
// not panic (no *panicsafe.Error may surface), must keep its skip
// accounting consistent, and must report cancellation and injected
// faults as clean errors.
func FuzzFaultySource(f *testing.F) {
	wellFormed, _ := genTrace(f, 64, 7)
	f.Add(wellFormed, int64(1), uint8(1), uint8(0), uint8(0), uint16(0))
	f.Add(wellFormed, int64(2), uint8(4), uint8(40), uint8(30), uint16(100))
	f.Add([]byte("user_id,start,end,tower_id,address,bytes,tech\ngarbage\n"), int64(3), uint8(2), uint8(10), uint8(10), uint16(10))
	f.Add([]byte{}, int64(4), uint8(3), uint8(200), uint8(200), uint16(1))

	f.Fuzz(func(t *testing.T, data []byte, seed int64, workers, probA, probB uint8, truncate uint16) {
		if len(data) > 1<<15 {
			return // schedule structure matters, not volume
		}
		prof := faultinject.Profile{
			Seed:          seed,
			TransientProb: float64(probA%101) / 250, // ≤ 0.4
			MaxTransient:  32,
			ShortReadProb: float64(probB%101) / 200, // ≤ 0.5
			CorruptProb:   float64(probA%13) / 100,
			TruncateAt:    int64(truncate),
		}
		policy := trace.ErrorPolicy{
			Mode:   trace.PolicyMode(int(probB) % 3),
			Budget: trace.Budget{MaxRows: int(probA)%8 + 1},
			Retry:  trace.RetryPolicy{MaxAttempts: 4, Backoff: time.Microsecond},
		}
		w := int(workers)%4 + 1

		ctx := context.Background()
		fr := faultinject.NewReader(bytes.NewReader(data), prof)
		src, err := trace.NewIngestSourceContext(ctx, fr, w, policy)
		if err != nil {
			return // unreadable header: clean constructor error
		}
		defer src.Close()
		var rows int64
		buf := make([]trace.Record, 256)
		for {
			n, err := src.NextBatch(buf)
			rows += int64(n)
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				var pe *panicsafe.Error
				if errors.As(err, &pe) {
					t.Fatalf("fault schedule produced a panic: %v", err)
				}
				break // any other error is a clean abort
			}
		}
		if sk := src.Stats().SkippedRows(); sk < 0 || int64(src.Skipped()) != sk {
			t.Fatalf("inconsistent skip accounting: Skipped=%d Stats=%d", src.Skipped(), sk)
		}
	})
}
