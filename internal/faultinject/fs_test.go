package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFSShortWritePersistsStrictPrefix(t *testing.T) {
	fs := NewFS(FSProfile{Seed: 1, ShortWriteProb: 1})
	f, err := fs.CreateTemp(t.TempDir(), "short-*")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, 1024)
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("short write err = %v, want ErrInjectedFS", err)
	}
	if n < 0 || n >= len(payload) {
		t.Fatalf("short write reported %d of %d bytes, want a strict prefix", n, len(payload))
	}
	f.Close()
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("on disk: %d bytes, want exactly the reported %d-byte prefix", len(got), n)
	}
	if c := fs.Counts().ShortWrites; c != 1 {
		t.Fatalf("ShortWrites = %d, want 1", c)
	}
}

func TestFSCorruptionIsSilentAndSingleByte(t *testing.T) {
	fs := NewFS(FSProfile{Seed: 2, CorruptProb: 1})
	f, err := fs.CreateTemp(t.TempDir(), "rot-*")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x55}, 256)
	if n, err := f.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("corrupting write reported (%d, %v), want silent success", n, err)
	}
	f.Close()
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range got {
		if got[i] != payload[i] {
			diffs++
			if got[i] != payload[i]^0xff {
				t.Fatalf("byte %d corrupted to %#x, want %#x", i, got[i], payload[i]^0xff)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes corrupted, want exactly 1", diffs)
	}
	// The caller's buffer must not have been touched.
	if !bytes.Equal(payload, bytes.Repeat([]byte{0x55}, 256)) {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestFSRenameAndSyncFaults(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(FSProfile{Seed: 3, RenameFailProb: 1, SyncFailProb: 1})
	f, err := fs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	if err := f.Sync(); !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("Sync err = %v, want ErrInjectedFS", err)
	}
	f.Close()
	target := filepath.Join(dir, "target")
	if err := fs.Rename(f.Name(), target); !errors.Is(err, ErrInjectedFS) {
		t.Fatalf("Rename err = %v, want ErrInjectedFS", err)
	}
	if _, err := os.Stat(target); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed rename moved the file anyway")
	}
	if _, err := os.Stat(f.Name()); err != nil {
		t.Fatalf("failed rename lost the source: %v", err)
	}
	c := fs.Counts()
	if c.RenameFails != 1 || c.SyncFails != 1 {
		t.Fatalf("counts = %+v, want one rename and one sync fault", c)
	}
}

func TestFSScheduleIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) (FSCounts, []byte) {
		fs := NewFS(FSProfile{Seed: seed, ShortWriteProb: 0.3, CorruptProb: 0.3, SyncFailProb: 0.2})
		f, err := fs.CreateTemp(t.TempDir(), "d-*")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			f.Write(bytes.Repeat([]byte{byte(i)}, 64))
			f.Sync()
		}
		f.Close()
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return fs.Counts(), data
	}
	c1, d1 := run(7)
	c2, d2 := run(7)
	if c1 != c2 || !bytes.Equal(d1, d2) {
		t.Fatalf("same seed diverged: %+v vs %+v", c1, c2)
	}
	if c3, _ := run(8); c3 == c1 {
		t.Fatalf("different seeds produced the identical schedule %+v", c1)
	}
	if c1.ShortWrites == 0 || c1.Corrupted == 0 || c1.SyncFails == 0 {
		t.Fatalf("schedule never exercised every fault kind: %+v", c1)
	}
}

func TestFSZeroProfileIsTransparent(t *testing.T) {
	fs := NewFS(FSProfile{})
	f, err := fs.CreateTemp(t.TempDir(), "clean-*")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("exactly these bytes")
	if n, err := f.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("zero profile altered the bytes")
	}
	if c := fs.Counts(); c != (FSCounts{}) {
		t.Fatalf("zero profile injected faults: %+v", c)
	}
}
