package faultinject

// fs.go injects faults into the snapshot store's filesystem operations
// (the snapfs.FS surface): short writes that persist only a prefix,
// renames that fail without moving the file, silent single-byte
// corruption of written data, and failing fsyncs. The fault schedule is
// seed-deterministic in operation order, like the byte-level Reader, so
// a chaos run can be replayed exactly.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"repro/internal/snapfs"
)

// ErrInjectedFS is the base error of every injected filesystem fault.
var ErrInjectedFS = errors.New("faultinject: injected filesystem fault")

// FSProfile configures a faulty filesystem. The zero value injects
// nothing. Probabilities are per operation.
type FSProfile struct {
	// Seed keys the fault schedule; identical seeds over identical
	// operation sequences inject identical faults.
	Seed int64

	// ShortWriteProb is the probability that a File.Write persists only a
	// random prefix of the data and then fails — a crash or disk-full
	// mid-write, leaving a torn temp file behind.
	ShortWriteProb float64

	// CorruptProb is the probability that a File.Write flips one byte of
	// what actually reaches the disk while still reporting success — the
	// silent bit rot the snapshot checksum exists to catch.
	CorruptProb float64

	// RenameFailProb is the probability that a Rename fails without
	// moving anything, so the new generation never appears.
	RenameFailProb float64

	// SyncFailProb is the probability that File.Sync fails — a device
	// refusing to flush, which must abort the snapshot before rename.
	SyncFailProb float64
}

// FSCounts reports how many faults a faulty filesystem injected.
type FSCounts struct {
	ShortWrites int64
	Corrupted   int64
	RenameFails int64
	SyncFails   int64
}

// FS wraps the real filesystem with the fault schedule of an FSProfile.
// It implements snapfs.FS. Safe for concurrent use (the store serialises
// saves, but restores can race a save).
type FS struct {
	p      FSProfile
	mu     sync.Mutex
	rng    *rand.Rand
	counts FSCounts
}

// NewFS returns a fault-injecting filesystem over the real one.
func NewFS(p FSProfile) *FS {
	return &FS{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Counts returns the faults injected so far.
func (f *FS) Counts() FSCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// roll draws one fault decision under the lock.
func (f *FS) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	f.mu.Lock()
	hit := f.rng.Float64() < prob
	f.mu.Unlock()
	return hit
}

// CreateTemp implements snapfs.FS.
func (f *FS) CreateTemp(dir, pattern string) (snapfs.File, error) {
	file, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, f: file}, nil
}

// Rename implements snapfs.FS, sometimes failing without renaming.
func (f *FS) Rename(oldpath, newpath string) error {
	if f.roll(f.p.RenameFailProb) {
		f.mu.Lock()
		f.counts.RenameFails++
		f.mu.Unlock()
		return fmt.Errorf("%w: rename %s: device error", ErrInjectedFS, newpath)
	}
	return os.Rename(oldpath, newpath)
}

// Remove implements snapfs.FS (never faulted: deletion failures are not a
// snapshot-safety concern, a leftover file is just garbage).
func (f *FS) Remove(name string) error { return os.Remove(name) }

// ReadFile implements snapfs.FS. Reads are not faulted here — read-side
// corruption is what the window checksum and the byte-level Reader cover.
func (f *FS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements snapfs.FS.
func (f *FS) ReadDir(dir string) ([]string, error) { return snapfs.OS{}.ReadDir(dir) }

// SyncDir implements snapfs.FS.
func (f *FS) SyncDir(dir string) error { return snapfs.OS{}.SyncDir(dir) }

// faultyFile injects write-path faults into one temp file.
type faultyFile struct {
	fs *FS
	f  *os.File
}

// Write implements io.Writer with short-write and corruption faults.
func (ff *faultyFile) Write(p []byte) (int, error) {
	if len(p) > 0 && ff.fs.roll(ff.fs.p.ShortWriteProb) {
		ff.fs.mu.Lock()
		n := ff.fs.rng.Intn(len(p)) // persist a strict prefix
		ff.fs.counts.ShortWrites++
		ff.fs.mu.Unlock()
		ff.f.Write(p[:n])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjectedFS, n, len(p))
	}
	if len(p) > 0 && ff.fs.roll(ff.fs.p.CorruptProb) {
		ff.fs.mu.Lock()
		i := ff.fs.rng.Intn(len(p))
		ff.fs.counts.Corrupted++
		ff.fs.mu.Unlock()
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		corrupted[i] ^= 0xff
		n, err := ff.f.Write(corrupted)
		return n, err // reported as success: the rot is silent
	}
	return ff.f.Write(p)
}

// Sync implements snapfs.File, sometimes refusing to flush.
func (ff *faultyFile) Sync() error {
	if ff.fs.roll(ff.fs.p.SyncFailProb) {
		ff.fs.mu.Lock()
		ff.fs.counts.SyncFails++
		ff.fs.mu.Unlock()
		return fmt.Errorf("%w: fsync %s: input/output error", ErrInjectedFS, ff.f.Name())
	}
	return ff.f.Sync()
}

// Close implements snapfs.File.
func (ff *faultyFile) Close() error { return ff.f.Close() }

// Name implements snapfs.File.
func (ff *faultyFile) Name() string { return ff.f.Name() }
