package faultinject

// poison.go injects semantically bad data rather than I/O faults: records
// that parse cleanly but carry poisoned payloads — value spikes, zeroed
// towers, duplicated/late floods, far-future timestamps. This is the feed
// the window-layer quarantine and the serve-layer admission gate are
// built to survive, and the chaos soak drives them with it.
//
// Like the fault Source, a PoisonedSource is fully deterministic: which
// towers are poisoned is a pure hash of (Seed, TowerID), and whether the
// poison is active is a pure function of each record's own timestamp, so
// the same wrapped stream produces the same poisoned stream regardless of
// read batching.

import (
	"math/rand"
	"time"

	"repro/internal/trace"
)

// PoisonProfile configures a PoisonedSource. The zero value poisons
// nothing.
type PoisonProfile struct {
	// Seed keys the deterministic tower selection and the duplicate
	// perturbations.
	Seed int64
	// ActiveFrom/ActiveTo bound the poison by record timestamp: only
	// records with Start in [ActiveFrom, ActiveTo) are touched. Zero
	// values leave the corresponding bound open.
	ActiveFrom, ActiveTo time.Time
	// TowerFraction selects roughly this fraction of tower IDs (by seeded
	// hash) as poisoned. Zero selects none; 1 selects all.
	TowerFraction float64
	// SpikeFactor multiplies Bytes on records from poisoned towers
	// (values > 1 model a corrupt counter or a replayed burst). Zero
	// disables.
	SpikeFactor float64
	// ZeroTowers zeroes Bytes on records from poisoned towers — the shape
	// of a tower whose counters flatlined while its feed kept emitting.
	// It wins over SpikeFactor.
	ZeroTowers bool
	// DuplicateFlood emits this many extra near-copies of every record
	// from a poisoned tower. Copies perturb UserID (so dedup cleaning
	// does not collapse them) and are shifted LateBy into the past.
	DuplicateFlood int
	// LateBy is the timestamp shift applied to flood duplicates.
	LateBy time.Duration
	// FutureSkew, when positive, corrupts the timestamp of records from
	// poisoned towers to this far beyond the record's own time — the
	// clock-skew poison the window's MaxFutureSkew guard must absorb.
	// Applied to every FutureEvery-th poisoned record (default: never).
	FutureSkew  time.Duration
	FutureEvery int
}

// PoisonedSource wraps a trace.Source, mutating records per the profile.
// It implements trace.Source and trace.BatchSource. Not safe for
// concurrent use, matching the sources it wraps.
type PoisonedSource struct {
	src trace.Source
	bs  trace.BatchSource
	p   PoisonProfile
	rng *rand.Rand

	// pending holds flood duplicates awaiting delivery.
	pending []trace.Record

	poisoned uint64 // records mutated (spiked, zeroed or skewed)
	injected uint64 // flood duplicates emitted
	futured  uint64 // timestamps skewed to the future
	seen     uint64 // records read from the wrapped source
}

// NewPoisonedSource wraps src with the given poison profile.
func NewPoisonedSource(src trace.Source, p PoisonProfile) *PoisonedSource {
	return &PoisonedSource{
		src: src,
		bs:  trace.Batched(src),
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
	}
}

// Poisoned returns the number of records mutated in place.
func (s *PoisonedSource) Poisoned() uint64 { return s.poisoned }

// Injected returns the number of flood duplicates emitted.
func (s *PoisonedSource) Injected() uint64 { return s.injected }

// Futured returns the number of records whose timestamps were skewed.
func (s *PoisonedSource) Futured() uint64 { return s.futured }

// splitmix64 is the avalanche mix of the splitmix64 generator — enough
// bits of diffusion to make per-tower selection look uniform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// towerPoisoned reports whether a tower is in the selected fraction: a
// pure function of (Seed, id), independent of read order.
func (s *PoisonedSource) towerPoisoned(id int) bool {
	if s.p.TowerFraction <= 0 {
		return false
	}
	if s.p.TowerFraction >= 1 {
		return true
	}
	h := splitmix64(uint64(id) ^ uint64(s.p.Seed))
	return float64(h>>11)/(1<<53) < s.p.TowerFraction
}

// active reports whether the poison window covers ts.
func (s *PoisonedSource) active(ts time.Time) bool {
	if !s.p.ActiveFrom.IsZero() && ts.Before(s.p.ActiveFrom) {
		return false
	}
	if !s.p.ActiveTo.IsZero() && !ts.Before(s.p.ActiveTo) {
		return false
	}
	return true
}

// poison mutates rec per the profile and queues any flood duplicates. It
// returns the (possibly mutated) record.
func (s *PoisonedSource) poison(rec trace.Record) trace.Record {
	s.seen++
	if !s.active(rec.Start) || !s.towerPoisoned(rec.TowerID) {
		return rec
	}
	mutated := false
	switch {
	case s.p.ZeroTowers:
		rec.Bytes = 0
		mutated = true
	case s.p.SpikeFactor > 0:
		rec.Bytes = int64(float64(rec.Bytes) * s.p.SpikeFactor)
		mutated = true
	}
	if s.p.FutureSkew > 0 && s.p.FutureEvery > 0 && s.seen%uint64(s.p.FutureEvery) == 0 {
		rec.Start = rec.Start.Add(s.p.FutureSkew)
		rec.End = rec.Start.Add(time.Minute)
		s.futured++
		mutated = true
	}
	if mutated {
		s.poisoned++
	}
	for i := 0; i < s.p.DuplicateFlood; i++ {
		dup := rec
		// Vary the user so the cleaner's dedup window cannot collapse the
		// flood, and push it into the past: a late replayed burst.
		dup.UserID = dup.UserID + (1+s.rng.Intn(1<<20))*1000003
		if s.p.LateBy > 0 {
			dup.Start = dup.Start.Add(-s.p.LateBy)
			dup.End = dup.Start.Add(time.Minute)
		}
		s.pending = append(s.pending, dup)
		s.injected++
	}
	return rec
}

// Next implements trace.Source.
func (s *PoisonedSource) Next() (trace.Record, error) {
	if len(s.pending) > 0 {
		rec := s.pending[0]
		s.pending = s.pending[1:]
		return rec, nil
	}
	rec, err := s.src.Next()
	if err != nil {
		return rec, err
	}
	return s.poison(rec), nil
}

// NextBatch implements trace.BatchSource. Flood duplicates queued by a
// previous batch are drained first.
func (s *PoisonedSource) NextBatch(dst []trace.Record) (int, error) {
	if len(s.pending) > 0 {
		n := copy(dst, s.pending)
		s.pending = s.pending[n:]
		return n, nil
	}
	n, err := s.bs.NextBatch(dst)
	for i := 0; i < n; i++ {
		dst[i] = s.poison(dst[i])
	}
	return n, err
}

// Skipped forwards to the wrapped source.
func (s *PoisonedSource) Skipped() int {
	if sk, ok := s.src.(interface{ Skipped() int }); ok {
		return sk.Skipped()
	}
	return 0
}

// Stats forwards to the wrapped source.
func (s *PoisonedSource) Stats() trace.SkipStats {
	if st, ok := s.src.(interface{ Stats() trace.SkipStats }); ok {
		return st.Stats()
	}
	return trace.SkipStats{}
}
