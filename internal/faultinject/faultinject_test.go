package faultinject_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// genTrace writes a deterministic synthetic trace: nGood well-formed
// records over 16 towers, with one textually malformed row spliced in
// after every badEvery good rows (0 disables). It returns the CSV bytes
// and the number of malformed rows injected.
func genTrace(t testing.TB, nGood, badEvery int) ([]byte, int) {
	t.Helper()
	t0 := time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	recs := make([]trace.Record, nGood)
	for i := range recs {
		recs[i] = trace.Record{
			UserID:  i % 53,
			Start:   t0.Add(time.Duration(i%1440) * time.Minute),
			End:     t0.Add(time.Duration(i%1440+4) * time.Minute),
			TowerID: i % 16,
			Address: fmt.Sprintf("No.%d Century Road (BS-%05d)", i%97, i%16),
			Bytes:   int64(100 + i%901),
			Tech:    trace.TechLTE,
		}
	}
	if err := trace.WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if badEvery <= 0 {
		return buf.Bytes(), 0
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	var out bytes.Buffer
	bad := 0
	for i, ln := range lines {
		out.WriteString(ln)
		if i > 0 && ln != "" && i%badEvery == 0 {
			out.WriteString("this row is garbage\n")
			bad++
		}
	}
	return out.Bytes(), bad
}

// ingest drains a full ingestion source and returns the records, the
// final stats and the terminal error (nil if the stream ended at EOF).
func ingest(src trace.IngestSource) ([]trace.Record, trace.SkipStats, error) {
	recs, err := trace.Collect(src)
	return recs, src.Stats(), err
}

func TestReaderZeroProfileIsTransparent(t *testing.T) {
	data, _ := genTrace(t, 500, 0)
	got, err := io.ReadAll(faultinject.NewReader(bytes.NewReader(data), faultinject.Profile{}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zero-profile reader altered the stream")
	}
}

func TestReaderDeterministicSchedule(t *testing.T) {
	data, _ := genTrace(t, 300, 0)
	p := faultinject.Profile{
		Seed:          42,
		TransientProb: 0.2,
		ShortReadProb: 0.3,
		CorruptProb:   0.3,
	}
	run := func() ([]byte, faultinject.Counts) {
		r := faultinject.NewReader(bytes.NewReader(data), p)
		var out []byte
		buf := make([]byte, 1024)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				var te *faultinject.TransientError
				if errors.As(err, &te) {
					continue // retry, as the production RetryReader would
				}
				if errors.Is(err, io.EOF) {
					break
				}
				t.Fatal(err)
			}
		}
		return out, r.Counts()
	}
	out1, c1 := run()
	out2, c2 := run()
	if !bytes.Equal(out1, out2) || c1 != c2 {
		t.Fatalf("same seed produced different schedules: %+v vs %+v", c1, c2)
	}
	if c1.Transient == 0 || c1.ShortReads == 0 || c1.Corrupted == 0 {
		t.Fatalf("profile injected nothing: %+v", c1)
	}
}

func TestReaderTransientImplementsTemporary(t *testing.T) {
	r := faultinject.NewReader(strings.NewReader("xx"), faultinject.Profile{TransientProb: 1})
	_, err := r.Read(make([]byte, 2))
	if err == nil {
		t.Fatal("expected injected transient error")
	}
	if !trace.IsTransient(err) {
		t.Fatalf("trace.IsTransient(%v) = false, want true", err)
	}
	perm := faultinject.NewReader(strings.NewReader("xx"), faultinject.Profile{PermanentAt: 1})
	buf := make([]byte, 1)
	if _, err := perm.Read(buf); err != nil {
		t.Fatalf("first byte should deliver: %v", err)
	}
	_, err = perm.Read(buf)
	if err == nil || trace.IsTransient(err) {
		t.Fatalf("permanent fault should not classify as transient: %v", err)
	}
}

func TestReaderTruncateAt(t *testing.T) {
	data, _ := genTrace(t, 100, 0)
	cut := int64(len(data) / 2)
	r := faultinject.NewReader(bytes.NewReader(data), faultinject.Profile{TruncateAt: cut})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != cut {
		t.Fatalf("delivered %d bytes, want %d", len(got), cut)
	}
	if !r.Counts().Truncated {
		t.Fatal("Truncated count not set")
	}
}

func TestSourceErrAfterAndPanicAfter(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{
			UserID: i, TowerID: i % 4,
			Start: time.Unix(1000, 0), End: time.Unix(1060, 0),
			Bytes: 1, Tech: trace.Tech3G,
		}
	}
	src := faultinject.NewSource(trace.SliceSource(recs), faultinject.SourceProfile{ErrAfter: 40})
	got, err := trace.Collect(src)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(got) != 0 {
		// Collect discards on error; what matters is the boundary below.
		t.Fatalf("Collect returned records alongside the error: %d", len(got))
	}
	if src.Delivered() != 40 {
		t.Fatalf("delivered %d records before the fault, want 40", src.Delivered())
	}

	ps := faultinject.NewSource(trace.SliceSource(recs), faultinject.SourceProfile{PanicAfter: 25})
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
		if ps.Delivered() != 25 {
			t.Fatalf("delivered %d records before the panic, want 25", ps.Delivered())
		}
	}()
	_, _ = trace.Collect(ps)
}

// TestSourceBatchNeverCrossesFaultBoundary pins the contract that a
// batch delivers everything before the boundary and the fault fires on
// the NEXT call.
func TestSourceBatchNeverCrossesFaultBoundary(t *testing.T) {
	recs := make([]trace.Record, 10)
	src := faultinject.NewSource(trace.SliceSource(recs), faultinject.SourceProfile{ErrAfter: 7})
	dst := make([]trace.Record, 64)
	n, err := src.NextBatch(dst)
	if n != 7 || err != nil {
		t.Fatalf("first batch = (%d, %v), want (7, nil)", n, err)
	}
	if _, err := src.NextBatch(dst); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("second batch error = %v, want ErrInjected", err)
	}
}

// rngFromSeed gives subtests stable but distinct randomness.
func rngFromSeed(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
