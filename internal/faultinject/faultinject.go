// Package faultinject provides deterministic, seed-driven fault
// injection for the ingestion and analysis pipeline's chaos tests. The
// wrappers compose over io.Reader (byte-level faults: transient and
// permanent read errors, short reads, corrupted bytes, premature EOF,
// injected latency) and trace.Source (record-level faults: mid-stream
// errors and panics), and every fault decision is drawn from a seeded
// RNG keyed only to the read sequence — the same seed over the same
// input replays the exact same fault schedule, which is what lets the
// chaos suite assert precise skip accounting.
//
// Nothing in the production build imports this package; it exists for
// tests (and for the fuzz harness, which drives the ingestion stack
// through randomized fault schedules).
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// TransientError is an injected failure that reports itself as
// retryable via the Temporary method, the convention trace.IsTransient
// (and the net package) use to classify errors worth retrying.
type TransientError struct {
	// Offset is the stream position at which the fault fired.
	Offset int64
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: transient read failure at byte %d", e.Offset)
}

// Temporary marks the error as retryable.
func (e *TransientError) Temporary() bool { return true }

// PermanentError is an injected failure that is NOT retryable: it keeps
// firing on every subsequent read, modelling a dead disk or a closed
// connection that no backoff will revive.
type PermanentError struct {
	// Offset is the stream position at which the fault first fired.
	Offset int64
}

// Error implements error.
func (e *PermanentError) Error() string {
	return fmt.Sprintf("faultinject: permanent read failure at byte %d", e.Offset)
}

// Profile configures a faulty Reader. The zero value injects nothing:
// the wrapped reader behaves identically to the original, which is the
// control arm of every chaos test. Probabilities are per Read call.
type Profile struct {
	// Seed keys the fault schedule. Two readers with the same Seed and
	// Profile over the same read sequence inject identical faults.
	Seed int64

	// TransientProb is the probability that a Read call fails with a
	// *TransientError instead of reading. MaxTransient caps the total
	// number injected (0 means at most one per ~1/TransientProb reads
	// with no cap).
	TransientProb float64
	MaxTransient  int

	// ShortReadProb is the probability that a Read call is truncated to
	// a random prefix of the requested length (at least 1 byte). Short
	// reads are legal io.Reader behaviour; a consumer that mishandles
	// them corrupts records at buffer boundaries.
	ShortReadProb float64

	// CorruptProb is the probability that one byte of a Read's result is
	// overwritten with a random value — the byte-level model of a torn
	// or bit-rotted record. Corruption never touches offset 0 of the
	// stream's first read (the header's first byte), so header parsing
	// survives and the damage lands in the record stream.
	CorruptProb float64

	// DelayProb injects Delay of latency before a Read completes,
	// modelling a stalling NFS mount or a throttled object store.
	DelayProb float64
	Delay     time.Duration

	// TruncateAt ends the stream with io.EOF once this many bytes have
	// been delivered, regardless of how much input remains — a
	// mid-stream EOF that lands inside a record. Zero disables.
	TruncateAt int64

	// PermanentAt fails every read with a *PermanentError once this many
	// bytes have been delivered. Zero disables.
	PermanentAt int64
}

// Counts reports how many faults a Reader actually injected, so tests
// can assert both arms: a run whose Counts are all zero must be
// byte-identical to the unwrapped reader, and a run with non-zero
// counts must show exactly the matching skip/retry accounting.
type Counts struct {
	Transient  int64
	ShortReads int64
	Corrupted  int64
	Delays     int64
	Truncated  bool
	Permanent  bool
}

// Reader wraps an io.Reader with the fault schedule of a Profile. It is
// not safe for concurrent Read calls (neither are the readers it wraps).
type Reader struct {
	r         io.Reader
	p         Profile
	rng       *rand.Rand
	offset    int64 // bytes delivered so far
	transient int64
	counts    Counts
	permErr   error // sticky permanent failure
}

// NewReader wraps r with the given fault profile.
func NewReader(r io.Reader, p Profile) *Reader {
	return &Reader{r: r, p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Counts returns the faults injected so far.
func (f *Reader) Counts() Counts { return f.counts }

// Read implements io.Reader, rolling the fault schedule before
// delegating to the wrapped reader.
func (f *Reader) Read(b []byte) (int, error) {
	if f.permErr != nil {
		return 0, f.permErr
	}
	if f.p.TruncateAt > 0 && f.offset >= f.p.TruncateAt {
		f.counts.Truncated = true
		return 0, io.EOF
	}
	if f.p.PermanentAt > 0 && f.offset >= f.p.PermanentAt {
		f.counts.Permanent = true
		f.permErr = &PermanentError{Offset: f.offset}
		return 0, f.permErr
	}
	if f.p.DelayProb > 0 && f.rng.Float64() < f.p.DelayProb {
		f.counts.Delays++
		time.Sleep(f.p.Delay)
	}
	if f.p.TransientProb > 0 && f.rng.Float64() < f.p.TransientProb {
		if f.p.MaxTransient <= 0 || f.transient < int64(f.p.MaxTransient) {
			f.transient++
			f.counts.Transient++
			return 0, &TransientError{Offset: f.offset}
		}
	}
	if len(b) > 1 && f.p.ShortReadProb > 0 && f.rng.Float64() < f.p.ShortReadProb {
		f.counts.ShortReads++
		b = b[:1+f.rng.Intn(len(b)-1)]
	}
	if f.p.TruncateAt > 0 && f.offset+int64(len(b)) > f.p.TruncateAt {
		b = b[:f.p.TruncateAt-f.offset]
		if len(b) == 0 {
			f.counts.Truncated = true
			return 0, io.EOF
		}
	}
	n, err := f.r.Read(b)
	if n > 0 && f.p.CorruptProb > 0 && f.rng.Float64() < f.p.CorruptProb {
		i := f.rng.Intn(n)
		if f.offset == 0 && i == 0 {
			i = n - 1 // spare the first header byte on a first read
		}
		if f.offset+int64(i) > 0 {
			f.counts.Corrupted++
			b[i] = byte(f.rng.Intn(256))
		}
	}
	f.offset += int64(n)
	return n, err
}
