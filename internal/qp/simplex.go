// Package qp solves the small quadratic programs needed by the
// frequency-domain component analysis of Section 5.3 of the paper:
//
//	minimise   ‖F − Σ_i x_i·F⁰_i‖²
//	subject to Σ_i x_i = 1,  x_i ≥ 0
//
// i.e. least squares over the probability simplex. The dimensionality is
// tiny (four primary components, three-dimensional features), so the solver
// favours robustness and exactness over asymptotic speed: it runs projected
// gradient descent with an exact Euclidean projection onto the simplex,
// followed by an active-set polish step that solves the reduced
// equality-constrained problem exactly on the detected support.
package qp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// Errors returned by the solver.
var (
	// ErrNoComponents is returned when no basis components are supplied.
	ErrNoComponents = errors.New("qp: no components")
	// ErrDimensionMismatch is returned when the target and the components
	// do not share the same dimensionality.
	ErrDimensionMismatch = errors.New("qp: dimension mismatch")
)

// Options configure the simplex least-squares solver. The zero value is
// usable; Defaults fills in sensible values for unset fields.
type Options struct {
	// MaxIterations bounds the projected-gradient iterations (default 2000).
	MaxIterations int
	// Tolerance is the convergence threshold on the change of the objective
	// (default 1e-12).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 2000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-12
	}
	return o
}

// Result is the outcome of a simplex least-squares solve.
type Result struct {
	// Coefficients is the convex-combination weight vector x (sums to 1,
	// non-negative).
	Coefficients linalg.Vector
	// Residual is ‖F − Σ x_i F⁰_i‖, the distance from the target to the
	// polygon spanned by the components.
	Residual float64
	// Iterations is the number of projected-gradient iterations performed.
	Iterations int
}

// SolveSimplexLS finds the convex combination of the component vectors that
// best approximates the target in the least-squares sense.
func SolveSimplexLS(target linalg.Vector, components []linalg.Vector, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	m := len(components)
	if m == 0 {
		return nil, ErrNoComponents
	}
	d := len(target)
	for i, c := range components {
		if len(c) != d {
			return nil, fmt.Errorf("%w: component %d has dim %d, target has %d", ErrDimensionMismatch, i, len(c), d)
		}
	}

	// Precompute the Gram matrix G = AᵀA and the linear term b = AᵀF where
	// A has the components as columns. Objective: x' G x - 2 b' x + const.
	g := linalg.NewMatrix(m, m)
	b := make(linalg.Vector, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			dot, _ := components[i].Dot(components[j])
			g.Set(i, j, dot)
			g.Set(j, i, dot)
		}
		dot, _ := components[i].Dot(target)
		b[i] = dot
	}

	// Lipschitz constant of the gradient: 2·λ_max(G) ≤ 2·trace(G).
	var trace float64
	for i := 0; i < m; i++ {
		trace += g.At(i, i)
	}
	step := 1.0
	if trace > 0 {
		step = 1.0 / (2 * trace)
	}

	// Start from the uniform combination.
	x := make(linalg.Vector, m)
	for i := range x {
		x[i] = 1.0 / float64(m)
	}

	obj := func(x linalg.Vector) float64 {
		gx, _ := g.MulVec(x)
		xgx, _ := x.Dot(gx)
		bx, _ := b.Dot(x)
		return xgx - 2*bx
	}

	prev := obj(x)
	iters := 0
	for ; iters < opts.MaxIterations; iters++ {
		// Gradient: 2(Gx - b).
		gx, _ := g.MulVec(x)
		for i := range x {
			x[i] -= step * 2 * (gx[i] - b[i])
		}
		x = ProjectSimplex(x)
		cur := obj(x)
		if math.Abs(prev-cur) < opts.Tolerance*(math.Abs(prev)+1) {
			prev = cur
			iters++
			break
		}
		prev = cur
	}

	// Active-set polish: solve the equality-constrained least squares on
	// the support detected by the projected gradient, which removes the
	// first-order method's residual bias for small problems.
	if polished, ok := polishActiveSet(g, b, x); ok {
		if obj(polished) <= prev+1e-15 {
			x = polished
		}
	}

	// Residual ‖F − A·x‖.
	approx := make(linalg.Vector, d)
	for i, c := range components {
		for j := range approx {
			approx[j] += x[i] * c[j]
		}
	}
	diff, _ := target.Sub(approx)
	return &Result{Coefficients: x, Residual: diff.Norm(), Iterations: iters}, nil
}

// polishActiveSet solves min x'Gx - 2b'x subject to Σx=1 over the support
// of x (entries above a small threshold), with inactive entries fixed at
// zero. It returns ok=false if the reduced KKT system is singular or the
// solution leaves the simplex.
func polishActiveSet(g *linalg.Matrix, b, x linalg.Vector) (linalg.Vector, bool) {
	m := len(x)
	support := make([]int, 0, m)
	for i, v := range x {
		if v > 1e-9 {
			support = append(support, i)
		}
	}
	if len(support) == 0 {
		return nil, false
	}
	s := len(support)
	// KKT system for: minimise y'Ĝy - 2b̂'y s.t. 1'y = 1:
	//   [2Ĝ  1] [y]   [2b̂]
	//   [1ᵀ  0] [λ] = [1 ]
	// Solve via elimination: y = Ĝ⁻¹(b̂ - λ/2·1), pick λ so Σy = 1.
	gh := linalg.NewMatrix(s, s)
	bh := make(linalg.Vector, s)
	for a, i := range support {
		bh[a] = b[i]
		for c, j := range support {
			gh.Set(a, c, g.At(i, j))
		}
	}
	// Regularise slightly to guarantee positive definiteness.
	for i := 0; i < s; i++ {
		gh.Set(i, i, gh.At(i, i)+1e-12)
	}
	ones := make(linalg.Vector, s)
	for i := range ones {
		ones[i] = 1
	}
	ginvB, err1 := linalg.SolveSPD(gh, bh)
	ginvOnes, err2 := linalg.SolveSPD(gh, ones)
	if err1 != nil || err2 != nil {
		return nil, false
	}
	sumGB := ginvB.Sum()
	sumGO := ginvOnes.Sum()
	if sumGO == 0 {
		return nil, false
	}
	// Σy = Σ Ĝ⁻¹b̂ - (λ/2)·Σ Ĝ⁻¹1 = 1  →  λ/2 = (Σ Ĝ⁻¹b̂ - 1)/Σ Ĝ⁻¹1.
	halfLambda := (sumGB - 1) / sumGO
	out := make(linalg.Vector, m)
	for a, i := range support {
		y := ginvB[a] - halfLambda*ginvOnes[a]
		if y < -1e-9 {
			return nil, false
		}
		if y < 0 {
			y = 0
		}
		out[i] = y
	}
	// Renormalise away rounding error.
	total := out.Sum()
	if total <= 0 {
		return nil, false
	}
	out.ScaleInPlace(1 / total)
	return out, true
}

// ProjectSimplex returns the Euclidean projection of v onto the probability
// simplex {x : Σx = 1, x ≥ 0} using the sort-based algorithm of Held,
// Wolfe & Crowder. The input is not modified.
func ProjectSimplex(v linalg.Vector) linalg.Vector {
	n := len(v)
	if n == 0 {
		return linalg.Vector{}
	}
	sorted := v.Clone()
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cumsum, theta float64
	k := 0
	for i := 0; i < n; i++ {
		cumsum += sorted[i]
		t := (cumsum - 1) / float64(i+1)
		if sorted[i]-t > 0 {
			theta = t
			k = i + 1
		}
	}
	_ = k
	out := make(linalg.Vector, n)
	for i, x := range v {
		if d := x - theta; d > 0 {
			out[i] = d
		}
	}
	return out
}
