package qp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func onSimplex(x linalg.Vector, tol float64) bool {
	var sum float64
	for _, v := range x {
		if v < -tol {
			return false
		}
		sum += v
	}
	return math.Abs(sum-1) <= tol
}

func TestProjectSimplexAlreadyFeasible(t *testing.T) {
	v := linalg.Vector{0.2, 0.3, 0.5}
	p := ProjectSimplex(v)
	for i := range v {
		if !almostEqual(p[i], v[i], 1e-12) {
			t.Errorf("projection changed a feasible point: %v -> %v", v, p)
		}
	}
}

func TestProjectSimplexKnownCases(t *testing.T) {
	// Projection of (2, 0) onto the simplex is (1, 0).
	p := ProjectSimplex(linalg.Vector{2, 0})
	if !almostEqual(p[0], 1, 1e-12) || !almostEqual(p[1], 0, 1e-12) {
		t.Errorf("ProjectSimplex(2,0) = %v, want (1,0)", p)
	}
	// Projection of (0.5, 0.5, 0.5) is uniform (1/3 each).
	p = ProjectSimplex(linalg.Vector{0.5, 0.5, 0.5})
	for i := range p {
		if !almostEqual(p[i], 1.0/3, 1e-12) {
			t.Errorf("ProjectSimplex uniform[%d] = %g, want 1/3", i, p[i])
		}
	}
	// Strongly negative coordinates collapse onto a vertex.
	p = ProjectSimplex(linalg.Vector{-5, 3, -5})
	if !almostEqual(p[1], 1, 1e-12) {
		t.Errorf("ProjectSimplex vertex = %v, want e2", p)
	}
	if len(ProjectSimplex(nil)) != 0 {
		t.Error("projection of empty vector should be empty")
	}
}

// Property: the projection is always feasible and is idempotent.
func TestProjectSimplexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed uint8) bool {
		n := int(seed%8) + 1
		v := make(linalg.Vector, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		p := ProjectSimplex(v)
		if !onSimplex(p, 1e-9) {
			return false
		}
		pp := ProjectSimplex(p)
		for i := range p {
			if !almostEqual(pp[i], p[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the projection is the closest feasible point — no random
// feasible point may be closer to the input.
func TestProjectSimplexOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed uint8) bool {
		n := int(seed%6) + 2
		v := make(linalg.Vector, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 5
		}
		p := ProjectSimplex(v)
		dp, _ := linalg.SquaredDistance(v, p)
		// Random feasible competitor from a Dirichlet-ish draw.
		q := make(linalg.Vector, n)
		var sum float64
		for i := range q {
			q[i] = rng.ExpFloat64()
			sum += q[i]
		}
		for i := range q {
			q[i] /= sum
		}
		dq, _ := linalg.SquaredDistance(v, q)
		return dp <= dq+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolveSimplexLSErrors(t *testing.T) {
	if _, err := SolveSimplexLS(linalg.Vector{1}, nil, Options{}); !errors.Is(err, ErrNoComponents) {
		t.Errorf("no components: got %v", err)
	}
	comps := []linalg.Vector{{1, 0}, {0, 1, 5}}
	if _, err := SolveSimplexLS(linalg.Vector{1, 1}, comps, Options{}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("dim mismatch: got %v", err)
	}
}

func TestSolveSimplexLSExactVertex(t *testing.T) {
	// The target equals one of the components → coefficient 1 on it.
	comps := []linalg.Vector{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}}
	res, err := SolveSimplexLS(linalg.Vector{0, 1, 0}, comps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !onSimplex(res.Coefficients, 1e-6) {
		t.Fatalf("coefficients off simplex: %v", res.Coefficients)
	}
	if !almostEqual(res.Coefficients[1], 1, 1e-4) {
		t.Errorf("vertex coefficient = %v, want e2", res.Coefficients)
	}
	if res.Residual > 1e-4 {
		t.Errorf("residual = %g, want ~0", res.Residual)
	}
}

func TestSolveSimplexLSInteriorPoint(t *testing.T) {
	// Target is an exact convex combination of the vertices of a triangle.
	comps := []linalg.Vector{{0, 0}, {1, 0}, {0, 1}}
	want := linalg.Vector{0.2, 0.5, 0.3}
	target := linalg.Vector{
		want[0]*0 + want[1]*1 + want[2]*0,
		want[0]*0 + want[1]*0 + want[2]*1,
	}
	res, err := SolveSimplexLS(target, comps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-6 {
		t.Errorf("residual = %g, want ~0", res.Residual)
	}
	for i := range want {
		if !almostEqual(res.Coefficients[i], want[i], 1e-4) {
			t.Errorf("coefficient[%d] = %g, want %g", i, res.Coefficients[i], want[i])
		}
	}
}

func TestSolveSimplexLSOutsidePolygon(t *testing.T) {
	// Target far outside the polygon projects to the nearest vertex.
	comps := []linalg.Vector{{0, 0}, {1, 0}, {0, 1}}
	res, err := SolveSimplexLS(linalg.Vector{5, 5}, comps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !onSimplex(res.Coefficients, 1e-6) {
		t.Fatalf("coefficients off simplex: %v", res.Coefficients)
	}
	// Nearest point of the triangle to (5,5) is the edge midpoint (0.5, 0.5).
	wantResidual := math.Sqrt(2 * (4.5) * (4.5)) // distance from (5,5) to (0.5,0.5)
	if !almostEqual(res.Residual, wantResidual, 1e-3) {
		t.Errorf("residual = %g, want %g", res.Residual, wantResidual)
	}
	if res.Coefficients[0] > 1e-4 {
		t.Errorf("coefficient on the far vertex should be ~0, got %v", res.Coefficients)
	}
}

func TestSolveSimplexLSDegenerateComponents(t *testing.T) {
	// All components identical — any simplex point is optimal; the solver
	// must still return a feasible answer with the correct residual.
	comps := []linalg.Vector{{1, 1}, {1, 1}, {1, 1}}
	res, err := SolveSimplexLS(linalg.Vector{2, 2}, comps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !onSimplex(res.Coefficients, 1e-6) {
		t.Fatalf("coefficients off simplex: %v", res.Coefficients)
	}
	if !almostEqual(res.Residual, math.Sqrt(2), 1e-6) {
		t.Errorf("residual = %g, want √2", res.Residual)
	}
}

func TestSolveSimplexLSZeroTarget(t *testing.T) {
	comps := []linalg.Vector{{1, 0}, {0, 1}}
	res, err := SolveSimplexLS(linalg.Vector{0, 0}, comps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !onSimplex(res.Coefficients, 1e-6) {
		t.Fatalf("coefficients off simplex: %v", res.Coefficients)
	}
	// Closest simplex point to origin is (0.5, 0.5) with distance √0.5.
	if !almostEqual(res.Residual, math.Sqrt(0.5), 1e-4) {
		t.Errorf("residual = %g, want √0.5", res.Residual)
	}
}

// Property: solutions always lie on the simplex and achieve a residual no
// worse than any of the individual vertices.
func TestSolveSimplexLSProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed uint8) bool {
		dim := int(seed%4) + 2
		m := int(seed%3) + 2
		comps := make([]linalg.Vector, m)
		for i := range comps {
			c := make(linalg.Vector, dim)
			for j := range c {
				c[j] = rng.NormFloat64()
			}
			comps[i] = c
		}
		target := make(linalg.Vector, dim)
		for j := range target {
			target[j] = rng.NormFloat64()
		}
		res, err := SolveSimplexLS(target, comps, Options{})
		if err != nil {
			return false
		}
		if !onSimplex(res.Coefficients, 1e-6) {
			return false
		}
		for _, c := range comps {
			d, _ := linalg.Distance(target, c)
			if res.Residual > d+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIterations != 2000 || o.Tolerance != 1e-12 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{MaxIterations: 5, Tolerance: 0.1}.withDefaults()
	if o.MaxIterations != 5 || o.Tolerance != 0.1 {
		t.Errorf("explicit options overridden: %+v", o)
	}
}

func BenchmarkSolveSimplexLS(b *testing.B) {
	comps := []linalg.Vector{
		{0.9, 1.3, 0.2}, {0.4, 2.8, 0.7}, {0.7, 2.2, 0.1}, {0.5, 1.9, 0.4},
	}
	target := linalg.Vector{0.6, 2.0, 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSimplexLS(target, comps, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
