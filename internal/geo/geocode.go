package geo

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Geocoder resolves textual base-station addresses to geographic
// coordinates. The paper used the Baidu Map API for this step; because the
// reproduction is offline, Geocoder is an in-memory registry populated by
// the synthetic-city generator: every tower address the generator emits is
// registered here, and the preprocessing stage later looks addresses up
// exactly as the paper's pipeline queried the map service.
//
// Lookups are case-insensitive and whitespace-normalised, mirroring the
// fuzziness of a real geocoding service. Geocoder is safe for concurrent
// use.
type Geocoder struct {
	mu      sync.RWMutex
	entries map[string]Point
	hits    int
	misses  int
}

// ErrAddressNotFound is returned by Resolve for unknown addresses.
var ErrAddressNotFound = errors.New("geo: address not found")

// NewGeocoder returns an empty geocoder.
func NewGeocoder() *Geocoder {
	return &Geocoder{entries: make(map[string]Point)}
}

// normalizeAddress canonicalises an address string for lookup.
func normalizeAddress(addr string) string {
	return strings.ToLower(strings.Join(strings.Fields(addr), " "))
}

// Register adds or replaces the coordinates of an address. It returns an
// error for empty addresses or invalid coordinates.
func (g *Geocoder) Register(address string, p Point) error {
	key := normalizeAddress(address)
	if key == "" {
		return errors.New("geo: empty address")
	}
	if !p.Valid() {
		return fmt.Errorf("geo: invalid coordinates %v for %q", p, address)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[key] = p
	return nil
}

// Resolve returns the coordinates registered for the address.
func (g *Geocoder) Resolve(address string) (Point, error) {
	key := normalizeAddress(address)
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.entries[key]
	if !ok {
		g.misses++
		return Point{}, fmt.Errorf("%w: %q", ErrAddressNotFound, address)
	}
	g.hits++
	return p, nil
}

// Len returns the number of registered addresses.
func (g *Geocoder) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Stats returns the number of successful and failed lookups so far.
func (g *Geocoder) Stats() (hits, misses int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.hits, g.misses
}
