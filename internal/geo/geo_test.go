package geo

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{31.23, 121.47}, true}, // Shanghai
		{Point{91, 0}, false},
		{Point{-91, 0}, false},
		{Point{0, 181}, false},
		{Point{0, -181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Shanghai People's Square to Beijing Tiananmen ≈ 1068 km.
	shanghai := Point{Lat: 31.2304, Lon: 121.4737}
	beijing := Point{Lat: 39.9042, Lon: 116.4074}
	d := HaversineKm(shanghai, beijing)
	if d < 1050 || d > 1090 {
		t.Errorf("Shanghai-Beijing = %g km, want ~1068", d)
	}
	// Identical points are zero metres apart.
	if DistanceMeters(shanghai, shanghai) != 0 {
		t.Error("distance to self should be 0")
	}
	// One degree of latitude ≈ 111.19 km.
	d = HaversineKm(Point{Lat: 31, Lon: 121}, Point{Lat: 32, Lon: 121})
	if math.Abs(d-111.19) > 0.5 {
		t.Errorf("1 degree latitude = %g km, want ~111.19", d)
	}
}

// Property: haversine distance is symmetric, non-negative, and satisfies
// the triangle inequality.
func TestHaversineProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(_ uint8) bool {
		randPoint := func() Point {
			return Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		}
		a, b, c := randPoint(), randPoint(), randPoint()
		dab, dba := HaversineKm(a, b), HaversineKm(b, a)
		if dab < 0 || math.Abs(dab-dba) > 1e-9 {
			return false
		}
		return HaversineKm(a, c) <= dab+HaversineKm(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoundingBox(t *testing.T) {
	points := []Point{{31.1, 121.3}, {31.4, 121.6}, {31.2, 121.2}}
	box, err := NewBoundingBox(points)
	if err != nil {
		t.Fatal(err)
	}
	if box.MinLat != 31.1 || box.MaxLat != 31.4 || box.MinLon != 121.2 || box.MaxLon != 121.6 {
		t.Errorf("box = %+v", box)
	}
	if !box.Contains(Point{31.25, 121.4}) {
		t.Error("box should contain interior point")
	}
	if box.Contains(Point{30, 121.4}) {
		t.Error("box should not contain outside point")
	}
	c := box.Center()
	if math.Abs(c.Lat-31.25) > 1e-9 || math.Abs(c.Lon-121.4) > 1e-9 {
		t.Errorf("center = %v", c)
	}
	if box.AreaKm2() <= 0 {
		t.Error("area should be positive")
	}
	expanded := box.Expand(0.1)
	if !expanded.Contains(Point{31.05, 121.25}) {
		t.Error("expanded box should contain near-edge point")
	}
	if _, err := NewBoundingBox(nil); err == nil {
		t.Error("empty bounding box should fail")
	}
}

func TestGridBasics(t *testing.T) {
	box := BoundingBox{MinLat: 31, MaxLat: 32, MinLon: 121, MaxLon: 122}
	g, err := NewGrid(box, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Add(Point{31.05, 121.05}, 5) {
		t.Error("Add inside box should succeed")
	}
	if g.Add(Point{35, 121}, 5) {
		t.Error("Add outside box should fail")
	}
	if g.At(0, 0) != 5 {
		t.Errorf("cell(0,0) = %g, want 5", g.At(0, 0))
	}
	// Boundary point maps into the last cell, not out of range.
	if !g.Add(Point{32, 122}, 1) {
		t.Error("Add on max corner should succeed")
	}
	if g.At(9, 9) != 1 {
		t.Errorf("cell(9,9) = %g, want 1", g.At(9, 9))
	}
	if g.Total() != 6 {
		t.Errorf("Total = %g, want 6", g.Total())
	}
	row, col, val := g.MaxCell()
	if row != 0 || col != 0 || val != 5 {
		t.Errorf("MaxCell = (%d,%d,%g), want (0,0,5)", row, col, val)
	}
	center := g.CellCenter(0, 0)
	if math.Abs(center.Lat-31.05) > 1e-9 || math.Abs(center.Lon-121.05) > 1e-9 {
		t.Errorf("CellCenter = %v", center)
	}
	if g.CellAreaKm2() <= 0 {
		t.Error("cell area should be positive")
	}
	dens := g.Densities()
	if dens[0] <= 0 {
		t.Error("density of non-empty cell should be positive")
	}
	g.Reset()
	if g.Total() != 0 {
		t.Error("Reset should zero all cells")
	}
}

func TestGridErrors(t *testing.T) {
	box := BoundingBox{MinLat: 31, MaxLat: 32, MinLon: 121, MaxLon: 122}
	if _, err := NewGrid(box, 0, 10); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewGrid(BoundingBox{MinLat: 32, MaxLat: 31, MinLon: 121, MaxLon: 122}, 5, 5); err == nil {
		t.Error("degenerate box should fail")
	}
}

func TestPointIndexWithin(t *testing.T) {
	center := Point{Lat: 31.2, Lon: 121.4}
	// ~0.001 degree latitude ≈ 111 m.
	points := []Point{
		center,
		{Lat: 31.2005, Lon: 121.4}, // ~55 m
		{Lat: 31.2020, Lon: 121.4}, // ~222 m
		{Lat: 31.2100, Lon: 121.4}, // ~1.1 km
		{Lat: 31.2, Lon: 121.4010}, // ~95 m
		{Lat: 31.25, Lon: 121.45},  // far
	}
	idx, err := NewPointIndex(points, 200)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Within(center, 200)
	want := map[int]bool{0: true, 1: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("Within(200m) = %v, want indices %v", got, want)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("unexpected index %d in radius query", i)
		}
	}
	if n := idx.CountWithin(center, 2000); n != 5 {
		t.Errorf("CountWithin(2km) = %d, want 5", n)
	}
	if _, err := NewPointIndex(nil, 200); err == nil {
		t.Error("empty index should fail")
	}
	if _, err := NewPointIndex(points, 0); err == nil {
		t.Error("zero radius should fail")
	}
}

// Property: the grid radius query returns exactly the same set as a brute
// force scan.
func TestPointIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	points := make([]Point, 500)
	for i := range points {
		points[i] = Point{Lat: 31 + rng.Float64()*0.5, Lon: 121 + rng.Float64()*0.5}
	}
	idx, err := NewPointIndex(points, 300)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		center := Point{Lat: 31 + rng.Float64()*0.5, Lon: 121 + rng.Float64()*0.5}
		radius := 100 + rng.Float64()*900
		got := make(map[int]bool)
		for _, i := range idx.Within(center, radius) {
			got[i] = true
		}
		for i, p := range points {
			inRadius := DistanceMeters(center, p) <= radius
			if inRadius != got[i] {
				t.Fatalf("trial %d: point %d mismatch (brute=%v index=%v)", trial, i, inRadius, got[i])
			}
		}
	}
}

func TestGeocoder(t *testing.T) {
	g := NewGeocoder()
	p := Point{Lat: 31.23, Lon: 121.47}
	if err := g.Register("88 Century Avenue, Pudong", p); err != nil {
		t.Fatal(err)
	}
	// Lookup is case- and whitespace-insensitive.
	got, err := g.Resolve("  88 century   avenue, pudong ")
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if got != p {
		t.Errorf("Resolve = %v, want %v", got, p)
	}
	if _, err := g.Resolve("nonexistent road"); !errors.Is(err, ErrAddressNotFound) {
		t.Errorf("unknown address: got %v, want ErrAddressNotFound", err)
	}
	if err := g.Register("", p); err == nil {
		t.Error("empty address should fail")
	}
	if err := g.Register("bad point", Point{Lat: 99, Lon: 0}); err == nil {
		t.Error("invalid point should fail")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	hits, misses := g.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestGeocoderConcurrent(t *testing.T) {
	g := NewGeocoder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				addr := "tower " + string(rune('a'+id)) + " block"
				_ = g.Register(addr, Point{Lat: 31, Lon: 121})
				_, _ = g.Resolve(addr)
			}
		}(i)
	}
	wg.Wait()
	if g.Len() != 8 {
		t.Errorf("Len after concurrent registration = %d, want 8", g.Len())
	}
}

func BenchmarkPointIndexWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	points := make([]Point, 10000)
	for i := range points {
		points[i] = Point{Lat: 31 + rng.Float64()*0.5, Lon: 121 + rng.Float64()*0.5}
	}
	idx, err := NewPointIndex(points, 200)
	if err != nil {
		b.Fatal(err)
	}
	center := Point{Lat: 31.25, Lon: 121.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Within(center, 200)
	}
}
