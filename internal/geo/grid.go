package geo

import (
	"errors"
	"fmt"
	"math"
)

// Grid is a uniform latitude/longitude raster over a bounding box. It backs
// the traffic-density maps of Figure 2 and the per-cluster tower-density
// maps of Figure 7 of the paper, and doubles as a spatial index for
// radius queries (POI within 200 m of a tower).
type Grid struct {
	Box          BoundingBox
	RowsN, ColsN int       // raster dimensions (rows = latitude, cols = longitude)
	Cells        []float64 // row-major accumulated values
}

// NewGrid builds an empty grid of rows × cols cells over the box.
func NewGrid(box BoundingBox, rows, cols int) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("geo: invalid grid size %dx%d", rows, cols)
	}
	if box.MaxLat <= box.MinLat || box.MaxLon <= box.MinLon {
		return nil, errors.New("geo: degenerate bounding box")
	}
	return &Grid{Box: box, RowsN: rows, ColsN: cols, Cells: make([]float64, rows*cols)}, nil
}

// CellIndex returns the (row, col) cell containing the point, or ok=false
// if the point lies outside the grid's bounding box.
func (g *Grid) CellIndex(p Point) (row, col int, ok bool) {
	if !g.Box.Contains(p) {
		return 0, 0, false
	}
	latFrac := (p.Lat - g.Box.MinLat) / (g.Box.MaxLat - g.Box.MinLat)
	lonFrac := (p.Lon - g.Box.MinLon) / (g.Box.MaxLon - g.Box.MinLon)
	row = int(latFrac * float64(g.RowsN))
	col = int(lonFrac * float64(g.ColsN))
	if row == g.RowsN {
		row--
	}
	if col == g.ColsN {
		col--
	}
	return row, col, true
}

// Add accumulates the value into the cell containing the point. Points
// outside the box are ignored and reported via the return value.
func (g *Grid) Add(p Point, value float64) bool {
	row, col, ok := g.CellIndex(p)
	if !ok {
		return false
	}
	g.Cells[row*g.ColsN+col] += value
	return true
}

// At returns the accumulated value of cell (row, col).
func (g *Grid) At(row, col int) float64 { return g.Cells[row*g.ColsN+col] }

// CellCenter returns the geographic centre of cell (row, col).
func (g *Grid) CellCenter(row, col int) Point {
	latStep := (g.Box.MaxLat - g.Box.MinLat) / float64(g.RowsN)
	lonStep := (g.Box.MaxLon - g.Box.MinLon) / float64(g.ColsN)
	return Point{
		Lat: g.Box.MinLat + (float64(row)+0.5)*latStep,
		Lon: g.Box.MinLon + (float64(col)+0.5)*lonStep,
	}
}

// CellAreaKm2 returns the approximate area of one grid cell.
func (g *Grid) CellAreaKm2() float64 {
	return g.Box.AreaKm2() / float64(g.RowsN*g.ColsN)
}

// Densities returns a copy of the cells divided by the cell area, i.e.
// value per km² — the "traffic density (byte/km²)" of Section 2.2.
func (g *Grid) Densities() []float64 {
	area := g.CellAreaKm2()
	out := make([]float64, len(g.Cells))
	if area <= 0 {
		return out
	}
	for i, v := range g.Cells {
		out[i] = v / area
	}
	return out
}

// MaxCell returns the row, column and value of the cell with the largest
// accumulated value. For Figure 7 / Table 2 this is "the point with the
// highest tower density" of a cluster.
func (g *Grid) MaxCell() (row, col int, value float64) {
	best := math.Inf(-1)
	for i, v := range g.Cells {
		if v > best {
			best = v
			row = i / g.ColsN
			col = i % g.ColsN
		}
	}
	return row, col, best
}

// Total returns the sum of all cell values.
func (g *Grid) Total() float64 {
	var s float64
	for _, v := range g.Cells {
		s += v
	}
	return s
}

// Reset zeroes all cells, retaining the raster geometry.
func (g *Grid) Reset() {
	for i := range g.Cells {
		g.Cells[i] = 0
	}
}

// PointIndex is a spatial index over a fixed set of points supporting
// radius queries. It buckets points into grid cells sized close to the
// query radius so a query touches only the 3×3 neighbourhood of cells.
type PointIndex struct {
	box      BoundingBox
	cellDeg  float64
	buckets  map[[2]int][]int
	points   []Point
	radiusOK float64
}

// NewPointIndex indexes the points for radius queries of roughly
// expectedRadiusMeters. Larger query radii still work but degrade to
// scanning more buckets.
func NewPointIndex(points []Point, expectedRadiusMeters float64) (*PointIndex, error) {
	if len(points) == 0 {
		return nil, errors.New("geo: no points to index")
	}
	if expectedRadiusMeters <= 0 {
		return nil, fmt.Errorf("geo: invalid radius %g", expectedRadiusMeters)
	}
	box, err := NewBoundingBox(points)
	if err != nil {
		return nil, err
	}
	// One degree of latitude ≈ 111.19 km. Use it for both axes: cells are
	// slightly wider in longitude near the equator, which only makes the
	// candidate set a little larger, never smaller.
	cellDeg := expectedRadiusMeters / 111190.0
	idx := &PointIndex{
		box:      box,
		cellDeg:  cellDeg,
		buckets:  make(map[[2]int][]int),
		points:   points,
		radiusOK: expectedRadiusMeters,
	}
	for i, p := range points {
		key := idx.bucketKey(p)
		idx.buckets[key] = append(idx.buckets[key], i)
	}
	return idx, nil
}

func (idx *PointIndex) bucketKey(p Point) [2]int {
	return [2]int{
		int(math.Floor((p.Lat - idx.box.MinLat) / idx.cellDeg)),
		int(math.Floor((p.Lon - idx.box.MinLon) / idx.cellDeg)),
	}
}

// Within returns the indices of all indexed points within radiusMeters of
// the centre point.
func (idx *PointIndex) Within(center Point, radiusMeters float64) []int {
	// Number of bucket rings to scan: at least 1, more for larger radii.
	rings := int(math.Ceil(radiusMeters/idx.radiusOK)) + 1
	key := idx.bucketKey(center)
	var out []int
	for dr := -rings; dr <= rings; dr++ {
		for dc := -rings; dc <= rings; dc++ {
			for _, i := range idx.buckets[[2]int{key[0] + dr, key[1] + dc}] {
				if DistanceMeters(center, idx.points[i]) <= radiusMeters {
					out = append(out, i)
				}
			}
		}
	}
	return out
}

// CountWithin returns the number of indexed points within radiusMeters of
// the centre point.
func (idx *PointIndex) CountWithin(center Point, radiusMeters float64) int {
	return len(idx.Within(center, radiusMeters))
}
