// Package geo provides the geographic primitives of the analysis pipeline:
// latitude/longitude points, distances, bounding boxes, uniform grids for
// density rasters, and an offline geocoder that stands in for the Baidu Map
// API used by the paper to resolve base-station addresses.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for haversine distances.
const EarthRadiusKm = 6371.0

// Point is a geographic location in degrees.
type Point struct {
	Lat float64 // latitude in degrees, positive north
	Lon float64 // longitude in degrees, positive east
}

// Valid reports whether the point lies within the legal latitude/longitude
// ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon) }

// HaversineKm returns the great-circle distance between two points in
// kilometres.
func HaversineKm(a, b Point) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// DistanceMeters returns the great-circle distance between two points in
// metres.
func DistanceMeters(a, b Point) float64 { return HaversineKm(a, b) * 1000 }

// BoundingBox is an axis-aligned latitude/longitude rectangle.
type BoundingBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewBoundingBox returns the smallest box containing all points.
// It returns an error for an empty slice.
func NewBoundingBox(points []Point) (BoundingBox, error) {
	if len(points) == 0 {
		return BoundingBox{}, errors.New("geo: no points for bounding box")
	}
	b := BoundingBox{
		MinLat: points[0].Lat, MaxLat: points[0].Lat,
		MinLon: points[0].Lon, MaxLon: points[0].Lon,
	}
	for _, p := range points[1:] {
		b.MinLat = math.Min(b.MinLat, p.Lat)
		b.MaxLat = math.Max(b.MaxLat, p.Lat)
		b.MinLon = math.Min(b.MinLon, p.Lon)
		b.MaxLon = math.Max(b.MaxLon, p.Lon)
	}
	return b, nil
}

// Contains reports whether the point lies within the box (inclusive).
func (b BoundingBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat && p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the centre point of the box.
func (b BoundingBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// WidthKm returns the east-west extent of the box measured at its centre
// latitude, in kilometres.
func (b BoundingBox) WidthKm() float64 {
	c := b.Center()
	return HaversineKm(Point{Lat: c.Lat, Lon: b.MinLon}, Point{Lat: c.Lat, Lon: b.MaxLon})
}

// HeightKm returns the north-south extent of the box in kilometres.
func (b BoundingBox) HeightKm() float64 {
	return HaversineKm(Point{Lat: b.MinLat, Lon: b.MinLon}, Point{Lat: b.MaxLat, Lon: b.MinLon})
}

// AreaKm2 returns the approximate area of the box in square kilometres.
func (b BoundingBox) AreaKm2() float64 { return b.WidthKm() * b.HeightKm() }

// Expand returns a copy of the box grown by the given margin in degrees on
// every side.
func (b BoundingBox) Expand(marginDeg float64) BoundingBox {
	return BoundingBox{
		MinLat: b.MinLat - marginDeg, MaxLat: b.MaxLat + marginDeg,
		MinLon: b.MinLon - marginDeg, MaxLon: b.MaxLon + marginDeg,
	}
}
