package poi

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Resident:      "resident",
		Transport:     "transport",
		Office:        "office",
		Entertainment: "entertainment",
		Type(9):       "poi(9)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(typ), got, want)
		}
	}
}

func TestCountsTotal(t *testing.T) {
	c := Counts{1, 2, 3, 4}
	if c.Total() != 10 {
		t.Errorf("Total = %g, want 10", c.Total())
	}
}

// samplePOIs builds a tiny POI layout: a cluster of office POIs at the
// centre, resident POIs ~500 m north, and one transport POI at the centre.
func samplePOIs() ([]POI, geo.Point, geo.Point) {
	center := geo.Point{Lat: 31.2300, Lon: 121.4700}
	north := geo.Point{Lat: 31.2345, Lon: 121.4700} // ~500 m north
	var pois []POI
	for i := 0; i < 10; i++ {
		pois = append(pois, POI{Type: Office, Location: geo.Point{Lat: center.Lat + float64(i)*0.00005, Lon: center.Lon}})
	}
	for i := 0; i < 6; i++ {
		pois = append(pois, POI{Type: Resident, Location: geo.Point{Lat: north.Lat + float64(i)*0.00005, Lon: north.Lon}})
	}
	pois = append(pois, POI{Type: Transport, Location: center})
	return pois, center, north
}

func TestCounterCountWithin(t *testing.T) {
	pois, center, north := samplePOIs()
	counter, err := NewCounter(pois, DefaultRadiusMeters)
	if err != nil {
		t.Fatal(err)
	}
	atCenter := counter.CountWithin(center, DefaultRadiusMeters)
	if atCenter[Office] != 10 {
		t.Errorf("office POIs at centre = %g, want 10", atCenter[Office])
	}
	if atCenter[Transport] != 1 {
		t.Errorf("transport POIs at centre = %g, want 1", atCenter[Transport])
	}
	if atCenter[Resident] != 0 {
		t.Errorf("resident POIs at centre = %g, want 0 (they are 500 m away)", atCenter[Resident])
	}
	atNorth := counter.CountWithin(north, DefaultRadiusMeters)
	if atNorth[Resident] != 6 {
		t.Errorf("resident POIs at north point = %g, want 6", atNorth[Resident])
	}
	// Entertainment type has no POIs at all; count must be zero, not panic.
	if atCenter[Entertainment] != 0 {
		t.Errorf("entertainment count = %g, want 0", atCenter[Entertainment])
	}
	all := counter.CountAll([]geo.Point{center, north}, DefaultRadiusMeters)
	if len(all) != 2 || all[0] != atCenter || all[1] != atNorth {
		t.Errorf("CountAll mismatch: %v", all)
	}
}

func TestNewCounterErrors(t *testing.T) {
	pois, _, _ := samplePOIs()
	if _, err := NewCounter(pois, 0); err == nil {
		t.Error("zero radius should fail")
	}
	bad := []POI{{Type: Type(9), Location: geo.Point{Lat: 31, Lon: 121}}}
	if _, err := NewCounter(bad, 200); err == nil {
		t.Error("invalid POI type should fail")
	}
	// No POIs at all is fine — every count is zero.
	counter, err := NewCounter(nil, 200)
	if err != nil {
		t.Fatalf("empty counter: %v", err)
	}
	c := counter.CountWithin(geo.Point{Lat: 31, Lon: 121}, 200)
	if c.Total() != 0 {
		t.Error("empty counter should count zero")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	counts := []Counts{
		{0, 10, 5, 100},
		{10, 10, 10, 0},
		{5, 10, 0, 50},
	}
	norm, err := MinMaxNormalize(counts)
	if err != nil {
		t.Fatal(err)
	}
	// Resident: 0→0, 10→1, 5→0.5. Transport constant → all zeros.
	if norm[0][Resident] != 0 || norm[1][Resident] != 1 || norm[2][Resident] != 0.5 {
		t.Errorf("resident normalisation wrong: %v", norm)
	}
	for i := range norm {
		if norm[i][Transport] != 0 {
			t.Errorf("constant transport column should normalise to 0, got %g", norm[i][Transport])
		}
	}
	for _, row := range norm {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Errorf("normalised value %g outside [0,1]", v)
			}
		}
	}
	if _, err := MinMaxNormalize(nil); !errors.Is(err, ErrNoCounts) {
		t.Errorf("empty input: got %v, want ErrNoCounts", err)
	}
}

func TestAverageByGroup(t *testing.T) {
	counts := []Counts{
		{1, 0, 0, 0},
		{3, 0, 0, 0},
		{0, 0, 10, 0},
	}
	groups := [][]int{{0, 1}, {2}, {}}
	avg, err := AverageByGroup(counts, groups)
	if err != nil {
		t.Fatal(err)
	}
	if avg[0][Resident] != 2 {
		t.Errorf("group 0 resident avg = %g, want 2", avg[0][Resident])
	}
	if avg[1][Office] != 10 {
		t.Errorf("group 1 office avg = %g, want 10", avg[1][Office])
	}
	if avg[2].Total() != 0 {
		t.Error("empty group should average to zero")
	}
	if _, err := AverageByGroup(counts, [][]int{{7}}); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestRowShares(t *testing.T) {
	rows := []Counts{{1, 1, 1, 1}, {0, 0, 0, 0}, {2, 0, 0, 2}}
	shares := RowShares(rows)
	for typ := 0; typ < NumTypes; typ++ {
		if shares[0][typ] != 0.25 {
			t.Errorf("uniform row share = %g, want 0.25", shares[0][typ])
		}
	}
	if shares[1].Total() != 0 {
		t.Error("zero row should stay zero")
	}
	if shares[2][Resident] != 0.5 || shares[2][Entertainment] != 0.5 {
		t.Errorf("row 2 shares = %v", shares[2])
	}
}

func TestTFIDF(t *testing.T) {
	// Four towers; transport POIs appear around only one of them, so the
	// transport type gets the largest IDF and dominates that tower's
	// TF-IDF despite its small raw count.
	counts := []Counts{
		{50, 0, 5, 5},
		{40, 0, 10, 5},
		{30, 2, 10, 5},
		{45, 0, 8, 5},
	}
	tfidf, err := TFIDF(counts)
	if err != nil {
		t.Fatal(err)
	}
	// Resident appears around every tower → IDF = log(4/4) = 0.
	for i := range tfidf {
		if tfidf[i][Resident] != 0 {
			t.Errorf("tower %d resident TF-IDF = %g, want 0 (type appears everywhere)", i, tfidf[i][Resident])
		}
	}
	// Transport IDF = log(4/1); TF = log(1+2).
	wantTransport := math.Log(4) * math.Log(3)
	if math.Abs(tfidf[2][Transport]-wantTransport) > 1e-12 {
		t.Errorf("transport TF-IDF = %g, want %g", tfidf[2][Transport], wantTransport)
	}
	if tfidf[0][Transport] != 0 {
		t.Error("towers with zero transport POIs should have zero transport TF-IDF")
	}
	if _, err := TFIDF(nil); !errors.Is(err, ErrNoCounts) {
		t.Errorf("empty input: got %v, want ErrNoCounts", err)
	}
}

func TestNormalizeTFIDFAndNTFIDF(t *testing.T) {
	counts := []Counts{
		{50, 0, 5, 5},
		{40, 0, 10, 5},
		{30, 2, 10, 5},
		{45, 0, 8, 5},
	}
	ntf, err := NTFIDF(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range ntf {
		total := row.Total()
		if total == 0 {
			continue
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("tower %d NTF-IDF sums to %g, want 1", i, total)
		}
		for _, v := range row {
			if v < 0 {
				t.Errorf("tower %d negative NTF-IDF %g", i, v)
			}
		}
	}
	// A tower with no POIs at all stays all-zero after normalisation.
	withEmpty := append(counts, Counts{})
	ntf, err = NTFIDF(withEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if ntf[len(ntf)-1].Total() != 0 {
		t.Error("POI-free tower should have all-zero NTF-IDF")
	}
}

func TestDominantType(t *testing.T) {
	typ, val := DominantType(Counts{1, 5, 3, 2})
	if typ != Transport || val != 5 {
		t.Errorf("DominantType = (%v, %g), want (transport, 5)", typ, val)
	}
	typ, _ = DominantType(Counts{2, 2, 2, 2})
	if typ != Resident {
		t.Errorf("tie should resolve to lowest index, got %v", typ)
	}
}

func TestValidateCounts(t *testing.T) {
	good := []Counts{{1, 2, 3, 4}}
	if err := ValidateCounts(good); err != nil {
		t.Errorf("valid counts rejected: %v", err)
	}
	if err := ValidateCounts([]Counts{{-1, 0, 0, 0}}); err == nil {
		t.Error("negative count should fail")
	}
	if err := ValidateCounts([]Counts{{math.NaN(), 0, 0, 0}}); err == nil {
		t.Error("NaN count should fail")
	}
	if err := ValidateCounts([]Counts{{math.Inf(1), 0, 0, 0}}); err == nil {
		t.Error("Inf count should fail")
	}
}
