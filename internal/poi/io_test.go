package poi

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestPOICSVRoundTrip(t *testing.T) {
	pois := []POI{
		{Type: Resident, Location: geo.Point{Lat: 31.21, Lon: 121.44}, Name: "Riverside Apartments"},
		{Type: Office, Location: geo.Point{Lat: 31.23, Lon: 121.50}, Name: "Tower One"},
		{Type: Transport, Location: geo.Point{Lat: 31.25, Lon: 121.46}},
		{Type: Entertainment, Location: geo.Point{Lat: 31.15, Lon: 121.66}, Name: `Mall "Grand", East Wing`},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pois); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pois) {
		t.Fatalf("round trip length %d, want %d", len(back), len(pois))
	}
	for i := range pois {
		if back[i].Type != pois[i].Type || back[i].Name != pois[i].Name {
			t.Errorf("POI %d differs: %+v vs %+v", i, back[i], pois[i])
		}
		if geo.DistanceMeters(back[i].Location, pois[i].Location) > 1 {
			t.Errorf("POI %d location drifted", i)
		}
	}
}

func TestReadPOICSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b,c,d\n",
		"type,lat,lon,name\nmuseum,31,121,x\n",
		"type,lat,lon,name\noffice,bad,121,x\n",
		"type,lat,lon,name\noffice,31,bad,x\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseType(t *testing.T) {
	for _, typ := range Types {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseType("museum"); err == nil {
		t.Error("unknown type should fail")
	}
}
