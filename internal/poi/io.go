package poi

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
)

var poiHeader = []string{"type", "lat", "lon", "name"}

// WriteCSV writes the POI inventory as CSV.
func WriteCSV(w io.Writer, pois []POI) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(poiHeader); err != nil {
		return fmt.Errorf("poi: writing header: %w", err)
	}
	for i, p := range pois {
		row := []string{
			p.Type.String(),
			strconv.FormatFloat(p.Location.Lat, 'f', 6, 64),
			strconv.FormatFloat(p.Location.Lon, 'f', 6, 64),
			p.Name,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("poi: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a POI inventory written by WriteCSV.
func ReadCSV(r io.Reader) ([]POI, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(poiHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("poi: reading header: %w", err)
	}
	if len(header) != len(poiHeader) || header[0] != poiHeader[0] {
		return nil, fmt.Errorf("poi: unexpected header %v", header)
	}
	var out []POI
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("poi: reading row: %w", err)
		}
		typ, err := ParseType(row[0])
		if err != nil {
			return nil, err
		}
		lat, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("poi: latitude %q: %w", row[1], err)
		}
		lon, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("poi: longitude %q: %w", row[2], err)
		}
		out = append(out, POI{Type: typ, Location: geo.Point{Lat: lat, Lon: lon}, Name: row[3]})
	}
	return out, nil
}

// ParseType converts a POI type name back to its Type value.
func ParseType(s string) (Type, error) {
	for _, t := range Types {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("poi: unknown POI type %q", s)
}
