package poi

import (
	"fmt"
	"math"
)

// TFIDF computes the term frequency–inverse document frequency statistic of
// Section 5.3 of the paper for every tower and POI type:
//
//	IDF_i      = log(M / M_i)
//	TF-IDF_mi  = IDF_i · log(1 + POI_mi)
//
// where M is the number of towers, M_i is the number of towers that have at
// least one POI of type i within the counting radius, and POI_mi is the
// count of type-i POIs around tower m. Types that appear around no tower
// get IDF 0 (they carry no discriminating information).
func TFIDF(counts []Counts) ([]Counts, error) {
	m := len(counts)
	if m == 0 {
		return nil, ErrNoCounts
	}
	var docFreq [NumTypes]float64
	for _, c := range counts {
		for t := 0; t < NumTypes; t++ {
			if c[t] > 0 {
				docFreq[t]++
			}
		}
	}
	var idf [NumTypes]float64
	for t := 0; t < NumTypes; t++ {
		if docFreq[t] > 0 {
			idf[t] = math.Log(float64(m) / docFreq[t])
		}
	}
	out := make([]Counts, m)
	for i, c := range counts {
		for t := 0; t < NumTypes; t++ {
			out[i][t] = idf[t] * math.Log(1+c[t])
		}
	}
	return out, nil
}

// NormalizeTFIDF divides each tower's TF-IDF vector by its sum over the
// four types, producing the NTF-IDF of the paper (each row sums to 1, or is
// all zeros when the tower has no POI at all).
func NormalizeTFIDF(tfidf []Counts) []Counts {
	out := make([]Counts, len(tfidf))
	for i, row := range tfidf {
		total := row.Total()
		if total == 0 {
			continue
		}
		for t := 0; t < NumTypes; t++ {
			out[i][t] = row[t] / total
		}
	}
	return out
}

// NTFIDF is a convenience that chains TFIDF and NormalizeTFIDF.
func NTFIDF(counts []Counts) ([]Counts, error) {
	tf, err := TFIDF(counts)
	if err != nil {
		return nil, err
	}
	return NormalizeTFIDF(tf), nil
}

// DominantType returns the POI type with the largest value in the row and
// that value. Ties resolve to the lowest type index.
func DominantType(row Counts) (Type, float64) {
	best := Type(0)
	bestVal := row[0]
	for t := 1; t < NumTypes; t++ {
		if row[t] > bestVal {
			best = Type(t)
			bestVal = row[t]
		}
	}
	return best, bestVal
}

// ValidateCounts checks that every count is finite and non-negative.
func ValidateCounts(counts []Counts) error {
	for i, row := range counts {
		for t := 0; t < NumTypes; t++ {
			v := row[t]
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("poi: invalid count %g for tower %d type %v", v, i, Type(t))
			}
		}
	}
	return nil
}
