// Package poi models points of interest (POI) and the POI-derived
// statistics the paper uses to give traffic patterns a geographical
// context: per-tower POI counts within a radius (Section 3.3.1), min-max
// normalised per-cluster POI averages (Table 3), and the TF-IDF /
// normalised TF-IDF statistic used to validate the convex-combination
// coefficients (Section 5.3, Table 6).
package poi

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
)

// Type is one of the four main POI categories of the paper.
type Type int

// The four POI categories, in the paper's column order.
const (
	Resident Type = iota
	Transport
	Office
	Entertainment
	NumTypes int = 4
)

// Types lists all POI types in canonical order.
var Types = []Type{Resident, Transport, Office, Entertainment}

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Resident:
		return "resident"
	case Transport:
		return "transport"
	case Office:
		return "office"
	case Entertainment:
		return "entertainment"
	default:
		return fmt.Sprintf("poi(%d)", int(t))
	}
}

// POI is a single point of interest.
type POI struct {
	Type     Type
	Location geo.Point
	Name     string // optional human-readable label
}

// Counts holds per-type POI counts around one location.
type Counts [NumTypes]float64

// Total returns the sum over all types.
func (c Counts) Total() float64 {
	var s float64
	for _, v := range c {
		s += v
	}
	return s
}

// Counter answers "how many POIs of each type lie within r metres of a
// point" efficiently by keeping one spatial index per POI type.
type Counter struct {
	indexes [NumTypes]*geo.PointIndex
	present [NumTypes]bool
}

// DefaultRadiusMeters is the counting radius used throughout the paper.
const DefaultRadiusMeters = 200.0

// NewCounter indexes the POIs for radius queries of roughly radiusMeters.
func NewCounter(pois []POI, radiusMeters float64) (*Counter, error) {
	if radiusMeters <= 0 {
		return nil, fmt.Errorf("poi: invalid radius %g", radiusMeters)
	}
	var byType [NumTypes][]geo.Point
	for _, p := range pois {
		if int(p.Type) < 0 || int(p.Type) >= NumTypes {
			return nil, fmt.Errorf("poi: unknown POI type %d", p.Type)
		}
		byType[p.Type] = append(byType[p.Type], p.Location)
	}
	c := &Counter{}
	for i, pts := range byType {
		if len(pts) == 0 {
			continue
		}
		idx, err := geo.NewPointIndex(pts, radiusMeters)
		if err != nil {
			return nil, fmt.Errorf("poi: indexing type %v: %w", Type(i), err)
		}
		c.indexes[i] = idx
		c.present[i] = true
	}
	return c, nil
}

// CountWithin returns the number of POIs of each type within radiusMeters
// of the centre.
func (c *Counter) CountWithin(center geo.Point, radiusMeters float64) Counts {
	var out Counts
	for i := range c.indexes {
		if !c.present[i] {
			continue
		}
		out[i] = float64(c.indexes[i].CountWithin(center, radiusMeters))
	}
	return out
}

// CountAll returns the per-type POI counts within radiusMeters of every
// centre, in centre order.
func (c *Counter) CountAll(centers []geo.Point, radiusMeters float64) []Counts {
	out := make([]Counts, len(centers))
	for i, p := range centers {
		out[i] = c.CountWithin(p, radiusMeters)
	}
	return out
}

// ErrNoCounts is returned when an aggregate is requested over no towers.
var ErrNoCounts = errors.New("poi: no POI counts")

// MinMaxNormalize rescales each POI type independently to [0, 1] across all
// towers (the normalisation of Section 3.3.2: "we first perform min-max
// normalization on each type's POI"). The input is not modified.
func MinMaxNormalize(counts []Counts) ([]Counts, error) {
	if len(counts) == 0 {
		return nil, ErrNoCounts
	}
	var min, max Counts
	for t := 0; t < NumTypes; t++ {
		min[t] = math.Inf(1)
		max[t] = math.Inf(-1)
	}
	for _, c := range counts {
		for t := 0; t < NumTypes; t++ {
			min[t] = math.Min(min[t], c[t])
			max[t] = math.Max(max[t], c[t])
		}
	}
	out := make([]Counts, len(counts))
	for i, c := range counts {
		for t := 0; t < NumTypes; t++ {
			if span := max[t] - min[t]; span > 0 {
				out[i][t] = (c[t] - min[t]) / span
			}
		}
	}
	return out, nil
}

// AverageByGroup averages the (already normalised) per-tower counts over
// each group of tower indices, producing one Counts row per group — the
// computation behind Table 3 of the paper.
func AverageByGroup(counts []Counts, groups [][]int) ([]Counts, error) {
	out := make([]Counts, len(groups))
	for g, members := range groups {
		if len(members) == 0 {
			continue
		}
		for _, idx := range members {
			if idx < 0 || idx >= len(counts) {
				return nil, fmt.Errorf("poi: tower index %d out of range [0,%d)", idx, len(counts))
			}
			for t := 0; t < NumTypes; t++ {
				out[g][t] += counts[idx][t]
			}
		}
		for t := 0; t < NumTypes; t++ {
			out[g][t] /= float64(len(members))
		}
	}
	return out, nil
}

// RowShares normalises each row to sum to one — the per-cluster POI share
// pie chart of Figure 9.
func RowShares(rows []Counts) []Counts {
	out := make([]Counts, len(rows))
	for i, r := range rows {
		total := r.Total()
		if total == 0 {
			continue
		}
		for t := 0; t < NumTypes; t++ {
			out[i][t] = r[t] / total
		}
	}
	return out
}
