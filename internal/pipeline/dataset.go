// Package pipeline implements the paper's "traffic vectorizer": the stage
// that turns cleaned connection logs into per-tower traffic usage vectors.
//
// The vectorizer works in two phases, exactly as described in Section 3.2:
//
//  1. aggregation — each tower's logs are segmented into fixed-length
//     chunks (10 minutes in the paper) and the bytes in each chunk are
//     summed, producing one raw traffic vector per tower;
//  2. normalisation — each vector is zero-score (z-score) normalised so
//     that towers with different absolute volumes but the same shape look
//     identical to the clustering stage.
//
// The paper runs this on a Hadoop cluster; here the same two phases run on
// a worker pool that shards the towers across goroutines, the idiomatic Go
// equivalent of the paper's parallel transformer.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/linalg"
)

// Dataset is the vectorised form of a traffic trace: one row per tower.
//
// The traffic itself lives in two contiguous row-major matrices —
// RawMatrix and NormalizedMatrix — and Raw/Normalized are per-row views
// aliasing their storage, kept for API compatibility. Contiguity is what
// feeds the blocked distance kernels of internal/linalg without packing:
// linalg.RowsMatrix recognises the row views and aliases the flat buffer.
// Mutating a row through either form mutates the matrix.
type Dataset struct {
	// TowerIDs[i] is the base-station ID of row i.
	TowerIDs []int
	// Locations[i] is the geographic location of row i's tower (zero value
	// if unknown).
	Locations []geo.Point
	// Raw[i] is the aggregated (unnormalised) traffic vector of row i in
	// bytes per slot — a view into RawMatrix when the dataset came out of
	// the vectorizer.
	Raw []linalg.Vector
	// Normalized[i] is the z-score normalised traffic vector of row i; this
	// is the input to the clustering stage. A view into NormalizedMatrix
	// when the dataset came out of the vectorizer.
	Normalized []linalg.Vector
	// RawMatrix and NormalizedMatrix are the contiguous flat backings of
	// Raw and Normalized. They are nil for datasets assembled row by row
	// (Subset, hand-built literals); consumers must fall back to the
	// []Vector forms then.
	RawMatrix        *linalg.Matrix
	NormalizedMatrix *linalg.Matrix
	// RawMatrix32 and NormalizedMatrix32 are float32 narrowings of the two
	// flat backings, the inputs of the reduced-precision modeling fast
	// path. They are nil until EnsureFloat32 builds them; the float64
	// matrices stay authoritative and the narrowed copies are never
	// widened back.
	RawMatrix32        *linalg.Matrix32
	NormalizedMatrix32 *linalg.Matrix32
	// Start is the first instant covered by slot 0.
	Start time.Time
	// SlotMinutes is the aggregation granularity.
	SlotMinutes int
	// Days is the number of whole days covered after trimming.
	Days int
}

// Errors returned by dataset construction and accessors.
var (
	ErrEmptyDataset = errors.New("pipeline: empty dataset")
	ErrBadShape     = errors.New("pipeline: inconsistent dataset shape")
)

// NumTowers returns the number of rows.
func (d *Dataset) NumTowers() int { return len(d.TowerIDs) }

// NumSlots returns the number of time slots per row (0 for an empty
// dataset).
func (d *Dataset) NumSlots() int {
	if len(d.Raw) == 0 {
		return 0
	}
	return len(d.Raw[0])
}

// SlotsPerDay returns the number of slots in one day.
func (d *Dataset) SlotsPerDay() int {
	if d.SlotMinutes <= 0 {
		return 0
	}
	return 1440 / d.SlotMinutes
}

// SlotTime returns the start time of slot i.
func (d *Dataset) SlotTime(i int) time.Time {
	return d.Start.Add(time.Duration(i) * time.Duration(d.SlotMinutes) * time.Minute)
}

// IsWeekendSlot reports whether slot i falls on a Saturday or Sunday.
func (d *Dataset) IsWeekendSlot(i int) bool {
	wd := d.SlotTime(i).Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// Validate checks the dataset's structural invariants: matching row counts,
// equal-length vectors, finite values and a slot count that covers Days
// whole days.
func (d *Dataset) Validate() error {
	n := d.NumTowers()
	if n == 0 {
		return ErrEmptyDataset
	}
	if len(d.Raw) != n || len(d.Normalized) != n || len(d.Locations) != n {
		return fmt.Errorf("%w: %d towers, %d raw, %d normalized, %d locations",
			ErrBadShape, n, len(d.Raw), len(d.Normalized), len(d.Locations))
	}
	slots := d.NumSlots()
	if slots == 0 {
		return fmt.Errorf("%w: zero slots", ErrBadShape)
	}
	if d.SlotMinutes <= 0 || 1440%d.SlotMinutes != 0 {
		return fmt.Errorf("%w: slot minutes %d", ErrBadShape, d.SlotMinutes)
	}
	if d.Days <= 0 || d.Days*d.SlotsPerDay() != slots {
		return fmt.Errorf("%w: %d days × %d slots/day != %d slots", ErrBadShape, d.Days, d.SlotsPerDay(), slots)
	}
	for i := 0; i < n; i++ {
		if len(d.Raw[i]) != slots || len(d.Normalized[i]) != slots {
			return fmt.Errorf("%w: row %d has %d/%d slots, want %d", ErrBadShape, i, len(d.Raw[i]), len(d.Normalized[i]), slots)
		}
		if !d.Raw[i].IsFinite() || !d.Normalized[i].IsFinite() {
			return fmt.Errorf("pipeline: row %d contains non-finite values", i)
		}
	}
	for _, m := range []*linalg.Matrix{d.RawMatrix, d.NormalizedMatrix} {
		if m != nil && (m.Rows != n || m.Cols != slots) {
			return fmt.Errorf("%w: flat backing %dx%d for %d towers × %d slots", ErrBadShape, m.Rows, m.Cols, n, slots)
		}
	}
	for _, m := range []*linalg.Matrix32{d.RawMatrix32, d.NormalizedMatrix32} {
		if m != nil && (m.Rows != n || m.Cols != slots) {
			return fmt.Errorf("%w: float32 backing %dx%d for %d towers × %d slots", ErrBadShape, m.Rows, m.Cols, n, slots)
		}
	}
	return nil
}

// EnsureFloat32 builds the float32 flat backings by narrowing the rows of
// the dataset — from the contiguous float64 matrices when present, from
// the per-row views otherwise. It is idempotent: existing float32
// backings are kept. The narrowing is the single precision loss of the
// float32 modeling path; every kernel downstream works on these bits.
func (d *Dataset) EnsureFloat32() error {
	n, slots := d.NumTowers(), d.NumSlots()
	if n == 0 || slots == 0 {
		return ErrEmptyDataset
	}
	narrow := func(m *linalg.Matrix, rows []linalg.Vector) (*linalg.Matrix32, error) {
		out := linalg.NewMatrix32(n, slots)
		if m != nil {
			if m.Rows != n || m.Cols != slots {
				return nil, fmt.Errorf("%w: flat backing %dx%d for %d towers × %d slots", ErrBadShape, m.Rows, m.Cols, n, slots)
			}
			for i, x := range m.Data {
				out.Data[i] = float32(x)
			}
			return out, nil
		}
		for i, row := range rows {
			if len(row) != slots {
				return nil, fmt.Errorf("%w: row %d has %d slots, want %d", ErrBadShape, i, len(row), slots)
			}
			dst := out.Row(i)
			for j, x := range row {
				dst[j] = float32(x)
			}
		}
		return out, nil
	}
	var err error
	if d.RawMatrix32 == nil {
		if d.RawMatrix32, err = narrow(d.RawMatrix, d.Raw); err != nil {
			return err
		}
	}
	if d.NormalizedMatrix32 == nil {
		if d.NormalizedMatrix32, err = narrow(d.NormalizedMatrix, d.Normalized); err != nil {
			return err
		}
	}
	return nil
}

// AggregateRaw returns the element-wise sum of the raw vectors of the given
// rows (all rows when idxs is nil) — the city-wide or cluster-wide traffic
// series.
func (d *Dataset) AggregateRaw(idxs []int) (linalg.Vector, error) {
	if d.NumTowers() == 0 {
		return nil, ErrEmptyDataset
	}
	if idxs == nil {
		idxs = make([]int, d.NumTowers())
		for i := range idxs {
			idxs[i] = i
		}
	}
	if len(idxs) == 0 {
		return nil, ErrEmptyDataset
	}
	out := make(linalg.Vector, d.NumSlots())
	for _, idx := range idxs {
		if idx < 0 || idx >= d.NumTowers() {
			return nil, fmt.Errorf("pipeline: row index %d out of range [0,%d)", idx, d.NumTowers())
		}
		if err := out.AddInPlace(d.Raw[idx]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Subset returns a new dataset containing only the given rows (sharing the
// underlying vectors). The subset carries no flat matrix backing of its
// own — its rows alias the parent's storage but are not, in general,
// adjacent — so kernel consumers pack it on demand.
func (d *Dataset) Subset(idxs []int) (*Dataset, error) {
	out := &Dataset{
		Start:       d.Start,
		SlotMinutes: d.SlotMinutes,
		Days:        d.Days,
	}
	for _, idx := range idxs {
		if idx < 0 || idx >= d.NumTowers() {
			return nil, fmt.Errorf("pipeline: row index %d out of range [0,%d)", idx, d.NumTowers())
		}
		out.TowerIDs = append(out.TowerIDs, d.TowerIDs[idx])
		out.Locations = append(out.Locations, d.Locations[idx])
		out.Raw = append(out.Raw, d.Raw[idx])
		out.Normalized = append(out.Normalized, d.Normalized[idx])
	}
	if out.NumTowers() == 0 {
		return nil, ErrEmptyDataset
	}
	return out, nil
}

// RowByTowerID returns the row index of the given tower ID, or -1.
func (d *Dataset) RowByTowerID(towerID int) int {
	for i, id := range d.TowerIDs {
		if id == towerID {
			return i
		}
	}
	return -1
}
