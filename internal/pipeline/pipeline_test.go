package pipeline

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/trace"
)

var start = time.Date(2014, 8, 4, 0, 0, 0, 0, time.UTC) // a Monday

func defaultOpts() VectorizerOptions {
	return VectorizerOptions{Start: start, Days: 7, SlotMinutes: 10}
}

func rec(towerID, userID int, at time.Time, bytes int64) trace.Record {
	return trace.Record{
		UserID:  userID,
		Start:   at,
		End:     at.Add(time.Minute),
		TowerID: towerID,
		Address: "addr",
		Bytes:   bytes,
		Tech:    trace.TechLTE,
	}
}

func TestVectorizeRecordsBasic(t *testing.T) {
	records := []trace.Record{
		rec(1, 10, start.Add(5*time.Minute), 100),                // slot 0
		rec(1, 11, start.Add(12*time.Minute), 50),                // slot 1
		rec(1, 12, start.Add(12*time.Minute+30*time.Second), 25), // slot 1
		rec(2, 13, start.Add(24*time.Hour), 999),                 // day 2, slot 144
	}
	towers := []trace.TowerInfo{
		{TowerID: 1, Location: geo.Point{Lat: 31.2, Lon: 121.5}, Resolved: true},
	}
	ds, err := VectorizeRecords(records, towers, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 2 {
		t.Fatalf("towers = %d, want 2", ds.NumTowers())
	}
	if ds.NumSlots() != 7*144 {
		t.Fatalf("slots = %d, want %d", ds.NumSlots(), 7*144)
	}
	row1 := ds.RowByTowerID(1)
	if row1 < 0 {
		t.Fatal("tower 1 missing")
	}
	if ds.Raw[row1][0] != 100 || ds.Raw[row1][1] != 75 {
		t.Errorf("tower 1 slots = %g, %g; want 100, 75", ds.Raw[row1][0], ds.Raw[row1][1])
	}
	if ds.Locations[row1] != (geo.Point{Lat: 31.2, Lon: 121.5}) {
		t.Errorf("tower 1 location = %v", ds.Locations[row1])
	}
	row2 := ds.RowByTowerID(2)
	if ds.Raw[row2][144] != 999 {
		t.Errorf("tower 2 day-2 slot = %g, want 999", ds.Raw[row2][144])
	}
	if ds.Locations[row2] != (geo.Point{}) {
		t.Error("unresolved tower should have zero location")
	}
	// Normalised rows have zero mean.
	for i := range ds.Normalized {
		if math.Abs(ds.Normalized[i].Mean()) > 1e-9 {
			t.Errorf("row %d normalised mean = %g", i, ds.Normalized[i].Mean())
		}
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestVectorizeRecordsDropsOutOfWindow(t *testing.T) {
	records := []trace.Record{
		rec(1, 1, start.Add(-time.Hour), 100),     // before window
		rec(1, 1, start.Add(8*24*time.Hour), 100), // after trimmed window
		rec(1, 1, start.Add(time.Hour), 7),        // inside
	}
	ds, err := VectorizeRecords(records, nil, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	total := ds.Raw[0].Sum()
	if total != 7 {
		t.Errorf("in-window traffic = %g, want 7", total)
	}
}

func TestVectorizeRecordsTrimsToWholeWeeks(t *testing.T) {
	// 31 days of options trim to 28 days, like the paper.
	opts := defaultOpts()
	opts.Days = 31
	records := []trace.Record{rec(1, 1, start.Add(time.Hour), 5)}
	ds, err := VectorizeRecords(records, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Days != 28 {
		t.Errorf("Days = %d, want 28", ds.Days)
	}
	if ds.NumSlots() != 4032 {
		t.Errorf("slots = %d, want 4032", ds.NumSlots())
	}
	// KeepPartialWeeks retains all 31 days.
	opts.KeepPartialWeeks = true
	ds, err = VectorizeRecords(records, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Days != 31 {
		t.Errorf("Days with KeepPartialWeeks = %d, want 31", ds.Days)
	}
	// Fewer than 7 days cannot be trimmed.
	opts = defaultOpts()
	opts.Days = 3
	ds, err = VectorizeRecords(records, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Days != 3 {
		t.Errorf("Days = %d, want 3", ds.Days)
	}
}

func TestVectorizeRecordsMinActiveSlots(t *testing.T) {
	records := []trace.Record{
		rec(1, 1, start.Add(time.Hour), 5), // tower 1: one active slot
		rec(2, 1, start.Add(time.Hour), 5), // tower 2: three active slots
		rec(2, 1, start.Add(2*time.Hour), 5),
		rec(2, 1, start.Add(3*time.Hour), 5),
	}
	opts := defaultOpts()
	opts.MinActiveSlots = 2
	ds, err := VectorizeRecords(records, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 1 || ds.TowerIDs[0] != 2 {
		t.Errorf("expected only tower 2 to survive, got %v", ds.TowerIDs)
	}
}

func TestVectorizeRecordsErrors(t *testing.T) {
	if _, err := VectorizeRecords(nil, nil, defaultOpts()); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty records: got %v, want ErrEmptyDataset", err)
	}
	bad := defaultOpts()
	bad.Start = time.Time{}
	if _, err := VectorizeRecords([]trace.Record{rec(1, 1, start, 1)}, nil, bad); err == nil {
		t.Error("zero start should fail")
	}
	bad = defaultOpts()
	bad.Days = 0
	if _, err := VectorizeRecords([]trace.Record{rec(1, 1, start, 1)}, nil, bad); err == nil {
		t.Error("zero days should fail")
	}
	bad = defaultOpts()
	bad.SlotMinutes = 13
	if _, err := VectorizeRecords([]trace.Record{rec(1, 1, start, 1)}, nil, bad); err == nil {
		t.Error("bad slot minutes should fail")
	}
	bad = defaultOpts()
	bad.MinActiveSlots = -1
	if _, err := VectorizeRecords([]trace.Record{rec(1, 1, start, 1)}, nil, bad); err == nil {
		t.Error("negative MinActiveSlots should fail")
	}
}

func TestVectorizeSeries(t *testing.T) {
	slots := 7 * 144
	mk := func(id int, fill float64) SeriesInput {
		b := make([]float64, slots)
		for i := range b {
			b[i] = fill * float64(1+i%3)
		}
		return SeriesInput{TowerID: id, Location: geo.Point{Lat: 31, Lon: 121}, Bytes: b}
	}
	ds, err := VectorizeSeries([]SeriesInput{mk(5, 10), mk(9, 3)}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 2 || ds.NumSlots() != slots {
		t.Fatalf("shape = %d towers × %d slots", ds.NumTowers(), ds.NumSlots())
	}
	// Z-scored rows of proportional series are identical.
	d, err := linalg.Distance(ds.Normalized[0], ds.Normalized[1])
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("proportional series should normalise identically, distance = %g", d)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestVectorizeSeriesErrors(t *testing.T) {
	if _, err := VectorizeSeries(nil, defaultOpts()); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty series: got %v", err)
	}
	short := []SeriesInput{{TowerID: 1, Bytes: []float64{1, 2, 3}}}
	if _, err := VectorizeSeries(short, defaultOpts()); err == nil {
		t.Error("short series should fail")
	}
}

func TestVectorizeSeriesTrimming(t *testing.T) {
	opts := defaultOpts()
	opts.Days = 10 // trims to 7
	slots := 10 * 144
	b := make([]float64, slots)
	for i := range b {
		b[i] = float64(i)
	}
	ds, err := VectorizeSeries([]SeriesInput{{TowerID: 1, Bytes: b}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Days != 7 || ds.NumSlots() != 7*144 {
		t.Errorf("trimmed shape = %d days × %d slots", ds.Days, ds.NumSlots())
	}
	// The retained prefix must match the input.
	for i := 0; i < ds.NumSlots(); i++ {
		if ds.Raw[0][i] != float64(i) {
			t.Fatalf("slot %d = %g, want %d", i, ds.Raw[0][i], i)
		}
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds, err := VectorizeSeries([]SeriesInput{
		{TowerID: 3, Bytes: constSeries(7*144, 2)},
		{TowerID: 8, Bytes: constSeries(7*144, 5)},
	}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ds.SlotsPerDay() != 144 {
		t.Errorf("SlotsPerDay = %d", ds.SlotsPerDay())
	}
	if !ds.SlotTime(0).Equal(start) {
		t.Errorf("SlotTime(0) = %v", ds.SlotTime(0))
	}
	if got := ds.SlotTime(144); !got.Equal(start.Add(24 * time.Hour)) {
		t.Errorf("SlotTime(144) = %v", got)
	}
	// start is a Monday; slots of day 5 (Saturday) are weekend.
	if ds.IsWeekendSlot(0) {
		t.Error("Monday slot marked as weekend")
	}
	if !ds.IsWeekendSlot(5 * 144) {
		t.Error("Saturday slot not marked as weekend")
	}
	if ds.RowByTowerID(8) != 1 || ds.RowByTowerID(99) != -1 {
		t.Error("RowByTowerID wrong")
	}
	agg, err := ds.AggregateRaw(nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg[0] != 7 {
		t.Errorf("aggregate slot 0 = %g, want 7", agg[0])
	}
	sub, err := ds.Subset([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumTowers() != 1 || sub.TowerIDs[0] != 8 {
		t.Errorf("subset = %v", sub.TowerIDs)
	}
	if _, err := ds.Subset([]int{5}); err == nil {
		t.Error("out-of-range subset should fail")
	}
	if _, err := ds.Subset(nil); !errors.Is(err, ErrEmptyDataset) {
		t.Error("empty subset should fail")
	}
	if _, err := ds.AggregateRaw([]int{-1}); err == nil {
		t.Error("bad aggregate index should fail")
	}
	if _, err := ds.AggregateRaw([]int{}); !errors.Is(err, ErrEmptyDataset) {
		t.Error("empty aggregate index list should fail")
	}
}

func constSeries(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v + float64(i%5) // not constant so z-score is defined
	}
	return out
}

func TestDatasetValidate(t *testing.T) {
	var empty Dataset
	if err := empty.Validate(); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty validate: %v", err)
	}
	good, err := VectorizeSeries([]SeriesInput{{TowerID: 1, Bytes: constSeries(7*144, 1)}}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Days = 6
	if err := bad.Validate(); !errors.Is(err, ErrBadShape) {
		t.Errorf("bad days: %v", err)
	}
	bad = *good
	bad.Locations = nil
	if err := bad.Validate(); !errors.Is(err, ErrBadShape) {
		t.Errorf("missing locations: %v", err)
	}
	bad = *good
	bad.Raw = []linalg.Vector{{1, 2}}
	if err := bad.Validate(); !errors.Is(err, ErrBadShape) {
		t.Errorf("ragged raw: %v", err)
	}
	bad = *good
	bad.Normalized = []linalg.Vector{append(linalg.Vector{math.NaN()}, good.Normalized[0][1:]...)}
	if err := bad.Validate(); err == nil {
		t.Error("NaN row should fail validation")
	}
}

func BenchmarkVectorizeSeries100Towers(b *testing.B) {
	opts := VectorizerOptions{Start: start, Days: 28, SlotMinutes: 10}
	series := make([]SeriesInput, 100)
	for i := range series {
		bytes := make([]float64, 28*144)
		for j := range bytes {
			bytes[j] = float64((i*j)%1000 + 1)
		}
		series[i] = SeriesInput{TowerID: i, Bytes: bytes}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VectorizeSeries(series, opts); err != nil {
			b.Fatal(err)
		}
	}
}
