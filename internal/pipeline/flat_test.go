package pipeline

import (
	"testing"
	"time"

	"repro/internal/linalg"
)

// The vectorizer must back every dataset with contiguous flat matrices
// whose row views are exactly the Raw/Normalized vectors — that aliasing
// is what lets the blocked distance kernels skip packing.
func TestVectorizeSeriesFlatBacking(t *testing.T) {
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	opts := VectorizerOptions{Start: start, Days: 7, SlotMinutes: 60}
	slots := 7 * 24
	series := make([]SeriesInput, 5)
	for i := range series {
		bytes := make([]float64, slots)
		for j := range bytes {
			bytes[j] = float64((i+1)*(j%24)) + 1
		}
		series[i] = SeriesInput{TowerID: 100 + i, Bytes: bytes}
	}
	ds, err := VectorizeSeries(series, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.RawMatrix == nil || ds.NormalizedMatrix == nil {
		t.Fatal("vectorised dataset must carry flat matrix backings")
	}
	if ds.RawMatrix.Rows != 5 || ds.RawMatrix.Cols != slots {
		t.Fatalf("raw backing %dx%d, want 5x%d", ds.RawMatrix.Rows, ds.RawMatrix.Cols, slots)
	}
	for i := 0; i < ds.NumTowers(); i++ {
		ds.RawMatrix.Set(i, 0, -123)
		if ds.Raw[i][0] != -123 {
			t.Fatalf("Raw[%d] does not alias RawMatrix row %d", i, i)
		}
		ds.RawMatrix.Set(i, 0, series[i].Bytes[0])
		orig := ds.NormalizedMatrix.At(i, 1)
		ds.NormalizedMatrix.Set(i, 1, 456)
		if ds.Normalized[i][1] != 456 {
			t.Fatalf("Normalized[%d] does not alias NormalizedMatrix row %d", i, i)
		}
		ds.NormalizedMatrix.Set(i, 1, orig)
	}
	// The row views must be recognised as contiguous by the kernel bridge.
	m, err := linalg.RowsMatrix(ds.Normalized)
	if err != nil {
		t.Fatal(err)
	}
	if &m.Data[0] != &ds.NormalizedMatrix.Data[0] {
		t.Error("RowsMatrix should alias the flat backing, not pack it")
	}
	// Normalisation must match the reference ZScoreNormalize bit for bit.
	for i := 0; i < ds.NumTowers(); i++ {
		want := linalg.ZScoreNormalize(ds.Raw[i])
		for j := range want {
			if ds.Normalized[i][j] != want[j] {
				t.Fatalf("row %d slot %d: normalized %g, want %g", i, j, ds.Normalized[i][j], want[j])
			}
		}
	}
	// Subsets share rows but drop the flat backing.
	sub, err := ds.Subset([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.RawMatrix != nil || sub.NormalizedMatrix != nil {
		t.Error("subset must not claim a contiguous backing")
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subset validation: %v", err)
	}
}

// MinActiveSlots filtering must keep the flat backing dense: dropped
// towers leave no hole in the matrices.
func TestVectorizeSeriesFilterKeepsBackingDense(t *testing.T) {
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	opts := VectorizerOptions{Start: start, Days: 7, SlotMinutes: 60, MinActiveSlots: 10}
	slots := 7 * 24
	series := make([]SeriesInput, 4)
	for i := range series {
		bytes := make([]float64, slots)
		if i != 2 { // tower 2 stays silent and must be dropped
			for j := 0; j < 20; j++ {
				bytes[j] = float64(i + 1)
			}
		}
		series[i] = SeriesInput{TowerID: i, Bytes: bytes}
	}
	ds, err := VectorizeSeries(series, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 3 {
		t.Fatalf("kept %d towers, want 3", ds.NumTowers())
	}
	if ds.RawMatrix.Rows != 3 {
		t.Fatalf("raw backing has %d rows, want 3", ds.RawMatrix.Rows)
	}
	for i, id := range ds.TowerIDs {
		if id == 2 {
			t.Error("silent tower should have been dropped")
		}
		if ds.Raw[i][0] != float64(id+1) {
			t.Fatalf("row %d (tower %d) holds wrong data after compaction", i, id)
		}
	}
}
