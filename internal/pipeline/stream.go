package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/panicsafe"
	"repro/internal/trace"
)

// sourceBatchSize is the number of records handed to a shard worker at a
// time. Batching amortises the channel synchronisation over many records
// while keeping the in-flight working set small and bounded.
const sourceBatchSize = 512

// VectorizeSource is the streaming form of VectorizeRecords: it pulls
// record batches from src (through trace.Batched, so batch-capable
// sources like the ingestion Scanner, ParallelCSVSource and
// trace.CleanedSource hand over thousands of records per interface
// call) and shards them by tower ID across a worker pool of per-tower
// slot accumulators. Peak memory is O(towers × slots) for the
// accumulators plus a bounded number of in-flight record batches —
// never O(records) — so a trace of any length can be vectorised in
// constant space per tower.
//
// The record stream is typically a trace ingestion source (possibly
// wrapped in trace.CleanSource) or a synthetic city's log source. As with
// VectorizeRecords, a record's bytes are attributed to the slot containing
// its start time, records outside the aggregation window are dropped, and
// every tower appearing in the stream gets a row even if all its records
// fall outside the window.
func VectorizeSource(src trace.Source, towers []trace.TowerInfo, opts VectorizerOptions) (*Dataset, error) {
	return VectorizeSourceContext(context.Background(), src, towers, opts)
}

// VectorizeSourceContext is VectorizeSource with cancellation and worker
// fault isolation: ctx is observed between source batches (a Background
// context costs nothing), a panic inside a shard worker — or inside the
// source itself — is returned as a *panicsafe.Error instead of crashing
// the process, and on any early exit — cancellation, source failure or
// worker panic — every shard worker drains and terminates before the
// call returns.
func VectorizeSourceContext(ctx context.Context, src trace.Source, towers []trace.TowerInfo, opts VectorizerOptions) (*Dataset, error) {
	if src == nil {
		return nil, fmt.Errorf("pipeline: nil source")
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	days := opts.effectiveDays()
	slots := days * (1440 / opts.SlotMinutes)
	end := opts.Start.Add(time.Duration(days) * 24 * time.Hour)
	slotDur := time.Duration(opts.SlotMinutes) * time.Minute

	workers := opts.Workers
	shards := make([]map[int]linalg.Vector, workers)
	chans := make([]chan []trace.Record, workers)
	// Drained batches return to the free list so steady-state ingestion
	// reuses a fixed set of buffers instead of allocating per batch.
	free := make(chan []trace.Record, 4*workers)
	// A worker that panics latches the first error and raises stop; the
	// producer stops feeding, and the worker itself KEEPS DRAINING its
	// channel (discarding batches) so the producer can never deadlock on
	// a send to a dead shard.
	var (
		stop      atomic.Bool
		errOnce   sync.Once
		workerErr error
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { workerErr = err })
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		shards[w] = make(map[int]linalg.Vector)
		chans[w] = make(chan []trace.Record, 2)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := shards[w]
			var cur []trace.Record
			accumulate := func() error {
				for _, r := range cur {
					vec, ok := acc[r.TowerID]
					if !ok {
						vec = make(linalg.Vector, slots)
						acc[r.TowerID] = vec
					}
					if r.Start.Before(opts.Start) || !r.Start.Before(end) {
						continue
					}
					vec[int(r.Start.Sub(opts.Start)/slotDur)] += float64(r.Bytes)
				}
				return nil
			}
			for batch := range chans[w] {
				if !stop.Load() {
					cur = batch
					if err := panicsafe.Call(accumulate); err != nil {
						fail(err)
					}
				}
				select {
				case free <- batch[:0]:
				default:
				}
			}
		}(w)
	}

	newBatch := func() []trace.Record {
		select {
		case b := <-free:
			return b
		default:
			return make([]trace.Record, 0, sourceBatchSize)
		}
	}
	pending := make([][]trace.Record, workers)
	for w := range pending {
		pending[w] = newBatch()
	}

	done := ctx.Done()
	batched := trace.Batched(src)
	inp := trace.GetBatch()
	// The read loop runs under panic recovery: a panicking source would
	// otherwise unwind this goroutine before the shard channels close,
	// leaving every worker blocked on its channel forever.
	srcErr := panicsafe.Call(func() error {
		for {
			if stop.Load() || (done != nil && ctx.Err() != nil) {
				return nil
			}
			n, err := batched.NextBatch(*inp)
			for _, r := range (*inp)[:n] {
				w := r.TowerID % workers
				if w < 0 {
					w += workers
				}
				pending[w] = append(pending[w], r)
				if len(pending[w]) >= sourceBatchSize {
					chans[w] <- pending[w]
					pending[w] = newBatch()
				}
			}
			if err != nil {
				if !errors.Is(err, io.EOF) {
					return err
				}
				return nil
			}
		}
	})
	trace.PutBatch(inp)
	for w := range chans {
		if len(pending[w]) > 0 {
			chans[w] <- pending[w]
		}
		close(chans[w])
	}
	wg.Wait()
	if workerErr != nil {
		return nil, fmt.Errorf("pipeline: vectorizing: %w", workerErr)
	}
	if srcErr != nil {
		return nil, fmt.Errorf("pipeline: reading source: %w", srcErr)
	}
	if done != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Shards are disjoint by construction (tower → worker is a function),
	// so the merge is a plain union.
	total := 0
	for _, shard := range shards {
		total += len(shard)
	}
	if total == 0 {
		return nil, ErrEmptyDataset
	}
	towerIDs := make([]int, 0, total)
	byID := make(map[int]linalg.Vector, total)
	for _, shard := range shards {
		for id, vec := range shard {
			towerIDs = append(towerIDs, id)
			byID[id] = vec
		}
	}
	sort.Ints(towerIDs)
	raw := make([]linalg.Vector, len(towerIDs))
	for i, id := range towerIDs {
		raw[i] = byID[id]
	}

	locByID := make(map[int]geo.Point, len(towers))
	for _, t := range towers {
		if t.Resolved {
			locByID[t.TowerID] = t.Location
		}
	}
	return assemble(towerIDs, raw, locByID, opts, days)
}
