package pipeline

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// datasetsEqual reports whether two datasets are identical row for row.
func datasetsEqual(a, b *Dataset) error {
	if a.NumTowers() != b.NumTowers() || a.NumSlots() != b.NumSlots() ||
		a.Days != b.Days || a.SlotMinutes != b.SlotMinutes || !a.Start.Equal(b.Start) {
		return fmt.Errorf("shape mismatch: %d×%d/%dd vs %d×%d/%dd",
			a.NumTowers(), a.NumSlots(), a.Days, b.NumTowers(), b.NumSlots(), b.Days)
	}
	for i := 0; i < a.NumTowers(); i++ {
		if a.TowerIDs[i] != b.TowerIDs[i] {
			return fmt.Errorf("row %d tower %d vs %d", i, a.TowerIDs[i], b.TowerIDs[i])
		}
		if a.Locations[i] != b.Locations[i] {
			return fmt.Errorf("row %d location mismatch", i)
		}
		for j := range a.Raw[i] {
			if a.Raw[i][j] != b.Raw[i][j] {
				return fmt.Errorf("row %d raw slot %d: %g vs %g", i, j, a.Raw[i][j], b.Raw[i][j])
			}
			if a.Normalized[i][j] != b.Normalized[i][j] {
				return fmt.Errorf("row %d normalized slot %d: %g vs %g", i, j, a.Normalized[i][j], b.Normalized[i][j])
			}
		}
	}
	return nil
}

// Property: VectorizeSource over a stream of records produces a dataset
// identical to the (wrapped) slice path, for random record batches
// including out-of-window records and towers without locations.
func TestVectorizeSourceMatchesRecordsProperty(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	towers := []trace.TowerInfo{
		{TowerID: 0, Location: geo.Point{Lat: 31.1, Lon: 121.4}, Resolved: true},
		{TowerID: 1, Location: geo.Point{Lat: 31.2, Lon: 121.5}, Resolved: true},
		{TowerID: 2, Resolved: false},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		records := make([]trace.Record, n)
		for i := range records {
			at := start.Add(time.Duration(rng.Intn(9*24*60)-60) * time.Minute)
			records[i] = rec(rng.Intn(5), rng.Intn(10), at, int64(1+rng.Intn(1e6)))
		}
		want, err := VectorizeRecords(records, towers, defaultOpts())
		if err != nil {
			t.Logf("slice path: %v", err)
			return false
		}
		got, err := VectorizeSource(trace.SliceSource(records), towers, defaultOpts())
		if err != nil {
			t.Logf("stream path: %v", err)
			return false
		}
		if err := datasetsEqual(want, got); err != nil {
			t.Logf("mismatch: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVectorizeSourceErrors(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	if _, err := VectorizeSource(nil, nil, defaultOpts()); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := VectorizeSource(trace.SliceSource(nil), nil, defaultOpts()); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty source: got %v, want ErrEmptyDataset", err)
	}
	bad := defaultOpts()
	bad.SlotMinutes = 13
	if _, err := VectorizeSource(trace.SliceSource([]trace.Record{rec(1, 1, start, 1)}), nil, bad); err == nil {
		t.Error("bad slot minutes should fail")
	}

	// A source error mid-stream aborts the vectorization.
	boom := errors.New("boom")
	n := 0
	src := trace.SourceFunc(func() (trace.Record, error) {
		n++
		if n > 700 {
			return trace.Record{}, boom
		}
		return rec(n%3, n, start.Add(time.Duration(n)*time.Second), 10), nil
	})
	if _, err := VectorizeSource(src, nil, defaultOpts()); !errors.Is(err, boom) {
		t.Errorf("source error should propagate, got %v", err)
	}
}

func TestVectorizeSourceKeepsOutOfWindowTowers(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	// A tower whose only records fall outside the window still gets an
	// all-zero row, matching the slice path.
	records := []trace.Record{
		rec(1, 1, start.Add(time.Hour), 7),
		rec(9, 1, start.Add(-time.Hour), 100),
	}
	ds, err := VectorizeSource(trace.SliceSource(records), nil, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTowers() != 2 {
		t.Fatalf("towers = %d, want 2", ds.NumTowers())
	}
	row := ds.RowByTowerID(9)
	if row < 0 || ds.Raw[row].Sum() != 0 {
		t.Errorf("out-of-window tower should have an all-zero row")
	}
}

// --- Benchmarks: slice vs streaming ingestion ---------------------------

// genRecord deterministically synthesises record i of a bench workload
// spread over the given number of towers and days.
func genRecord(i, towers, days int) trace.Record {
	slotCount := days * 144
	slot := (i * 7919) % slotCount
	at := start.Add(time.Duration(slot) * 10 * time.Minute)
	return trace.Record{
		UserID:  i % 1000,
		Start:   at,
		End:     at.Add(time.Minute),
		TowerID: i % towers,
		Address: "addr",
		Bytes:   int64(1 + (i*31)%100000),
		Tech:    trace.TechLTE,
	}
}

// benchSource streams the same workload without ever materialising it.
type benchSource struct {
	i, n, towers, days int
}

func (s *benchSource) Next() (trace.Record, error) {
	if s.i >= s.n {
		return trace.Record{}, io.EOF
	}
	r := genRecord(s.i, s.towers, s.days)
	s.i++
	return r, nil
}

// benchScales covers three workload sizes; the largest emits ~2 million
// records over 500 towers, where the O(records) slice path's memory bill
// dwarfs the streaming path's O(towers × slots) accumulators.
var benchScales = []struct {
	name         string
	towers, days int
	recsPerTower int
}{
	{"50towers-7d", 50, 7, 400},
	{"200towers-14d", 200, 14, 1000},
	{"500towers-28d", 500, 28, 4000},
}

// BenchmarkIngestSlice measures the materialised path: build the full
// record slice, then vectorise it. Allocation cost is O(records).
func BenchmarkIngestSlice(b *testing.B) {
	for _, sc := range benchScales {
		b.Run(sc.name, func(b *testing.B) {
			opts := VectorizerOptions{Start: start, Days: sc.days}
			n := sc.towers * sc.recsPerTower
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				records := make([]trace.Record, n)
				for j := range records {
					records[j] = genRecord(j, sc.towers, sc.days)
				}
				if _, err := VectorizeRecords(records, nil, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestStream measures the streaming path over the identical
// workload: records flow straight from the generator into the sharded
// accumulators and are never materialised.
func BenchmarkIngestStream(b *testing.B) {
	for _, sc := range benchScales {
		b.Run(sc.name, func(b *testing.B) {
			opts := VectorizerOptions{Start: start, Days: sc.days}
			n := sc.towers * sc.recsPerTower
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := &benchSource{n: n, towers: sc.towers, days: sc.days}
				if _, err := VectorizeSource(src, nil, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
