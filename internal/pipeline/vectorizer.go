package pipeline

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/trace"
)

// VectorizerOptions configure the traffic vectorizer.
type VectorizerOptions struct {
	// Start is the first instant of the aggregation window. Records before
	// it are dropped. Required.
	Start time.Time
	// Days is the number of days of data available from Start. The
	// vectorizer trims this to whole weeks (TrimToWholeWeeks), mirroring
	// the paper's removal of 3 days from a 31-day trace. Required.
	Days int
	// SlotMinutes is the aggregation granularity (default 10).
	SlotMinutes int
	// Workers is the number of parallel workers (default GOMAXPROCS).
	Workers int
	// KeepPartialWeeks retains days beyond the last whole week instead of
	// trimming them.
	KeepPartialWeeks bool
	// MinActiveSlots drops towers whose raw vector has fewer than this many
	// non-zero slots; such towers carry too little signal to cluster.
	// Zero keeps everything.
	MinActiveSlots int
}

func (o VectorizerOptions) withDefaults() VectorizerOptions {
	if o.SlotMinutes == 0 {
		o.SlotMinutes = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o VectorizerOptions) validate() error {
	if o.Start.IsZero() {
		return fmt.Errorf("pipeline: Start must be set")
	}
	if o.Days <= 0 {
		return fmt.Errorf("pipeline: Days must be positive, got %d", o.Days)
	}
	if o.SlotMinutes <= 0 || 1440%o.SlotMinutes != 0 {
		return fmt.Errorf("pipeline: SlotMinutes must divide 1440, got %d", o.SlotMinutes)
	}
	if o.MinActiveSlots < 0 {
		return fmt.Errorf("pipeline: MinActiveSlots must be non-negative")
	}
	return nil
}

// effectiveDays returns the number of days retained after optional
// whole-week trimming.
func (o VectorizerOptions) effectiveDays() int {
	if o.KeepPartialWeeks {
		return o.Days
	}
	weeks := o.Days / 7
	if weeks == 0 {
		return o.Days
	}
	return weeks * 7
}

// VectorizeRecords aggregates cleaned connection records into per-tower
// traffic vectors and z-score normalises them. Tower locations are taken
// from the supplied tower infos (resolved during preprocessing); towers
// absent from the infos still get a vector with a zero location.
//
// A record's bytes are attributed to the slot containing its start time,
// following the paper's chunking of logs into 10-minute segments.
//
// VectorizeRecords is a thin wrapper over the streaming core: the slice is
// replayed through VectorizeSource, which shards it across the worker
// pool. Callers that do not already hold the records in memory should use
// VectorizeSource directly and keep memory at O(towers × slots).
func VectorizeRecords(records []trace.Record, towers []trace.TowerInfo, opts VectorizerOptions) (*Dataset, error) {
	return VectorizeSource(trace.SliceSource(records), towers, opts)
}

// SeriesInput is a pre-aggregated per-tower traffic series, the fast path
// used when the ground-truth series is already available (synthetic data)
// or when aggregation happened upstream.
type SeriesInput struct {
	TowerID  int
	Location geo.Point
	Bytes    []float64
}

// VectorizeSeries builds a dataset directly from pre-aggregated series.
// Each series must cover opts.Days days at opts.SlotMinutes granularity;
// the vectorizer trims them to whole weeks and z-score normalises, sharing
// the normalisation code path with VectorizeRecords. The series bytes are
// copied exactly once — straight into the dataset's flat matrix backing.
func VectorizeSeries(series []SeriesInput, opts VectorizerOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(series) == 0 {
		return nil, ErrEmptyDataset
	}
	days := opts.effectiveDays()
	slots := days * (1440 / opts.SlotMinutes)
	fullSlots := opts.Days * (1440 / opts.SlotMinutes)

	towerIDs := make([]int, len(series))
	raw := make([]linalg.Vector, len(series))
	locByID := make(map[int]geo.Point, len(series))
	for i, s := range series {
		if len(s.Bytes) != fullSlots {
			return nil, fmt.Errorf("pipeline: series for tower %d has %d slots, want %d", s.TowerID, len(s.Bytes), fullSlots)
		}
		towerIDs[i] = s.TowerID
		locByID[s.TowerID] = s.Location
		raw[i] = linalg.Vector(s.Bytes[:slots])
	}
	return assemble(towerIDs, raw, locByID, opts, days)
}

// assemble runs phase 2 (filtering, flat-matrix packing and normalisation)
// and builds the Dataset: the kept raw rows are written into one
// contiguous RawMatrix, each row is z-score normalised directly into the
// matching NormalizedMatrix row, and Raw/Normalized become views of the
// two flat buffers. The input rows are only read, never retained.
func assemble(towerIDs []int, raw []linalg.Vector, locByID map[int]geo.Point, opts VectorizerOptions, days int) (*Dataset, error) {
	keep := make([]int, 0, len(towerIDs))
	for i := range towerIDs {
		if opts.MinActiveSlots > 0 {
			active := 0
			for _, v := range raw[i] {
				if v > 0 {
					active++
				}
			}
			if active < opts.MinActiveSlots {
				continue
			}
		}
		keep = append(keep, i)
	}
	if len(keep) == 0 {
		return nil, ErrEmptyDataset
	}
	slots := days * (1440 / opts.SlotMinutes)
	d := &Dataset{
		TowerIDs:         make([]int, len(keep)),
		Locations:        make([]geo.Point, len(keep)),
		RawMatrix:        linalg.NewMatrix(len(keep), slots),
		NormalizedMatrix: linalg.NewMatrix(len(keep), slots),
		Start:            opts.Start,
		SlotMinutes:      opts.SlotMinutes,
		Days:             days,
	}
	for r, idx := range keep {
		// copy() would silently truncate or zero-pad a short row into the
		// matrix; the pre-flat path surfaced such bugs through Validate, so
		// keep the guard explicit.
		if len(raw[idx]) != slots {
			return nil, fmt.Errorf("%w: row for tower %d has %d slots, want %d", ErrBadShape, towerIDs[idx], len(raw[idx]), slots)
		}
		d.TowerIDs[r] = towerIDs[idx]
		d.Locations[r] = locByID[towerIDs[idx]]
		rawRow := d.RawMatrix.Row(r)
		copy(rawRow, raw[idx])
		if err := linalg.ZScoreNormalizeInto(d.NormalizedMatrix.Row(r), rawRow); err != nil {
			return nil, err
		}
	}
	d.Raw = d.RawMatrix.RowViews()
	d.Normalized = d.NormalizedMatrix.RowViews()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
