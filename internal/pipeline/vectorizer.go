package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/trace"
)

// VectorizerOptions configure the traffic vectorizer.
type VectorizerOptions struct {
	// Start is the first instant of the aggregation window. Records before
	// it are dropped. Required.
	Start time.Time
	// Days is the number of days of data available from Start. The
	// vectorizer trims this to whole weeks (TrimToWholeWeeks), mirroring
	// the paper's removal of 3 days from a 31-day trace. Required.
	Days int
	// SlotMinutes is the aggregation granularity (default 10).
	SlotMinutes int
	// Workers is the number of parallel workers (default GOMAXPROCS).
	Workers int
	// KeepPartialWeeks retains days beyond the last whole week instead of
	// trimming them.
	KeepPartialWeeks bool
	// MinActiveSlots drops towers whose raw vector has fewer than this many
	// non-zero slots; such towers carry too little signal to cluster.
	// Zero keeps everything.
	MinActiveSlots int
}

func (o VectorizerOptions) withDefaults() VectorizerOptions {
	if o.SlotMinutes == 0 {
		o.SlotMinutes = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o VectorizerOptions) validate() error {
	if o.Start.IsZero() {
		return fmt.Errorf("pipeline: Start must be set")
	}
	if o.Days <= 0 {
		return fmt.Errorf("pipeline: Days must be positive, got %d", o.Days)
	}
	if o.SlotMinutes <= 0 || 1440%o.SlotMinutes != 0 {
		return fmt.Errorf("pipeline: SlotMinutes must divide 1440, got %d", o.SlotMinutes)
	}
	if o.MinActiveSlots < 0 {
		return fmt.Errorf("pipeline: MinActiveSlots must be non-negative")
	}
	return nil
}

// effectiveDays returns the number of days retained after optional
// whole-week trimming.
func (o VectorizerOptions) effectiveDays() int {
	if o.KeepPartialWeeks {
		return o.Days
	}
	weeks := o.Days / 7
	if weeks == 0 {
		return o.Days
	}
	return weeks * 7
}

// VectorizeRecords aggregates cleaned connection records into per-tower
// traffic vectors and z-score normalises them. Tower locations are taken
// from the supplied tower infos (resolved during preprocessing); towers
// absent from the infos still get a vector with a zero location.
//
// A record's bytes are attributed to the slot containing its start time,
// following the paper's chunking of logs into 10-minute segments.
//
// VectorizeRecords is a thin wrapper over the streaming core: the slice is
// replayed through VectorizeSource, which shards it across the worker
// pool. Callers that do not already hold the records in memory should use
// VectorizeSource directly and keep memory at O(towers × slots).
func VectorizeRecords(records []trace.Record, towers []trace.TowerInfo, opts VectorizerOptions) (*Dataset, error) {
	return VectorizeSource(trace.SliceSource(records), towers, opts)
}

// SeriesInput is a pre-aggregated per-tower traffic series, the fast path
// used when the ground-truth series is already available (synthetic data)
// or when aggregation happened upstream.
type SeriesInput struct {
	TowerID  int
	Location geo.Point
	Bytes    []float64
}

// VectorizeSeries builds a dataset directly from pre-aggregated series.
// Each series must cover opts.Days days at opts.SlotMinutes granularity;
// the vectorizer trims them to whole weeks and z-score normalises, sharing
// the normalisation code path with VectorizeRecords.
func VectorizeSeries(series []SeriesInput, opts VectorizerOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(series) == 0 {
		return nil, ErrEmptyDataset
	}
	days := opts.effectiveDays()
	slots := days * (1440 / opts.SlotMinutes)
	fullSlots := opts.Days * (1440 / opts.SlotMinutes)

	towerIDs := make([]int, len(series))
	raw := make([]linalg.Vector, len(series))
	locByID := make(map[int]geo.Point, len(series))

	var wg sync.WaitGroup
	work := make(chan int)
	errs := make([]error, len(series))
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				s := series[idx]
				if len(s.Bytes) != fullSlots {
					errs[idx] = fmt.Errorf("pipeline: series for tower %d has %d slots, want %d", s.TowerID, len(s.Bytes), fullSlots)
					continue
				}
				vec := make(linalg.Vector, slots)
				copy(vec, s.Bytes[:slots])
				raw[idx] = vec
			}
		}()
	}
	for i := range series {
		towerIDs[i] = series[i].TowerID
		locByID[series[i].TowerID] = series[i].Location
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return assemble(towerIDs, raw, locByID, opts, days)
}

// assemble runs phase 2 (normalisation and filtering) and builds the
// Dataset.
func assemble(towerIDs []int, raw []linalg.Vector, locByID map[int]geo.Point, opts VectorizerOptions, days int) (*Dataset, error) {
	d := &Dataset{
		Start:       opts.Start,
		SlotMinutes: opts.SlotMinutes,
		Days:        days,
	}
	for i, id := range towerIDs {
		vec := raw[i]
		if opts.MinActiveSlots > 0 {
			active := 0
			for _, v := range vec {
				if v > 0 {
					active++
				}
			}
			if active < opts.MinActiveSlots {
				continue
			}
		}
		d.TowerIDs = append(d.TowerIDs, id)
		d.Locations = append(d.Locations, locByID[id])
		d.Raw = append(d.Raw, vec)
		d.Normalized = append(d.Normalized, linalg.ZScoreNormalize(vec))
	}
	if d.NumTowers() == 0 {
		return nil, ErrEmptyDataset
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
