package urban

import (
	"math"
	"testing"
)

func TestRegionString(t *testing.T) {
	want := map[Region]string{
		Resident:      "resident",
		Transport:     "transport",
		Office:        "office",
		Entertainment: "entertainment",
		Comprehensive: "comprehensive",
		Region(42):    "region(42)",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(r), r.String(), s)
		}
	}
}

func TestParseRegionRoundTrip(t *testing.T) {
	for _, r := range Regions {
		got, err := ParseRegion(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRegion(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRegion("downtown"); err == nil {
		t.Error("unknown region should fail")
	}
}

func TestRegionsOrderMatchesPaper(t *testing.T) {
	// The paper numbers clusters 1-5 as resident, transport, office,
	// entertainment, comprehensive; the enum order must match so cluster
	// indices translate directly.
	if Regions[0] != Resident || Regions[1] != Transport || Regions[2] != Office ||
		Regions[3] != Entertainment || Regions[4] != Comprehensive {
		t.Error("Regions order does not match the paper")
	}
	if len(PrimaryRegions) != 4 || PrimaryRegions[3] != Entertainment {
		t.Error("PrimaryRegions should be the four single-function regions")
	}
}

func TestDefaultShares(t *testing.T) {
	shares := DefaultShares()
	var total float64
	for _, r := range Regions {
		s, ok := shares[r]
		if !ok {
			t.Errorf("missing share for %v", r)
		}
		if s <= 0 || s >= 1 {
			t.Errorf("share for %v = %g out of range", r, s)
		}
		total += s
	}
	if math.Abs(total-1.0001) > 0.01 {
		t.Errorf("shares sum to %g, want ~1", total)
	}
	// Office is the largest cluster, transport the smallest (Table 1).
	if shares[Office] <= shares[Resident] || shares[Transport] >= shares[Entertainment] {
		t.Error("share ordering does not match Table 1")
	}
}
