// Package urban defines the urban functional region vocabulary shared by
// the synthetic-city generator, the cluster labeller and the analysis
// stages: the five region kinds of the paper (resident, transport, office,
// entertainment, comprehensive) and their reported tower shares.
package urban

import "fmt"

// Region identifies one of the five urban functional regions of the paper
// (Table 1). The order matches the paper's cluster indices 1–5.
type Region int

// The five functional regions.
const (
	Resident Region = iota
	Transport
	Office
	Entertainment
	Comprehensive
)

// Regions lists all regions in canonical order.
var Regions = []Region{Resident, Transport, Office, Entertainment, Comprehensive}

// PrimaryRegions lists the four single-function regions that act as the
// primary components of the frequency-domain decomposition (Section 5.3 of
// the paper).
var PrimaryRegions = []Region{Resident, Transport, Office, Entertainment}

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case Resident:
		return "resident"
	case Transport:
		return "transport"
	case Office:
		return "office"
	case Entertainment:
		return "entertainment"
	case Comprehensive:
		return "comprehensive"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// ParseRegion converts a region name to its Region value.
func ParseRegion(s string) (Region, error) {
	for _, r := range Regions {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("urban: unknown region %q", s)
}

// DefaultShares returns the fraction of towers per region reported in
// Table 1 of the paper.
func DefaultShares() map[Region]float64 {
	return map[Region]float64{
		Resident:      0.1755,
		Transport:     0.0258,
		Office:        0.4572,
		Entertainment: 0.0935,
		Comprehensive: 0.2481,
	}
}
