//go:build !amd64

package linalg

// The non-amd64 build always takes the portable Go kernels.
var (
	useAsm    = false
	useAsmF32 = false
)

func dotVecAsm(a, b *float64, n int) float64 {
	panic("linalg: dotVecAsm without assembly support")
}

func dot1x4Asm(a, b *float64, ldb, n int, out *[4]float64) {
	panic("linalg: dot1x4Asm without assembly support")
}

func dotVecAsm32(a, b *float32, n int) float32 {
	panic("linalg: dotVecAsm32 without assembly support")
}

func dot1x4Asm32(a, b *float32, ldb, n int, out *[4]float32) {
	panic("linalg: dot1x4Asm32 without assembly support")
}
