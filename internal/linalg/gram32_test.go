package linalg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// The float32 kernels are validated against the float64 kernels as oracle:
// the float32 inputs are widened exactly (float32 → float64 is lossless),
// the float64 path computes the reference, and the float32 result must
// agree to ≤1e-4 relative error — the accumulated-rounding budget of a
// 1,008-slot dot product at 2^-24 per step, with the Gram trick's
// cancellation measured against the squared-norm scale.

const f32Tol = 1e-4

// randomMatrix32 returns a float32 matrix and its exact float64 widening.
// The scale parameter exercises magnitude regimes (z-scored features sit
// near 1, raw traffic reaches 1e6+).
func randomMatrix32(rng *rand.Rand, rows, cols int, scale float64) (*Matrix32, *Matrix) {
	m32 := NewMatrix32(rows, cols)
	for i := range m32.Data {
		m32.Data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return m32, widen32(m32)
}

func widen32(m *Matrix32) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = float64(x)
	}
	return out
}

// onKernelPathsF32 runs fn under the active float32 kernel path and, when
// the assembly path is active, once more on the portable Go path.
func onKernelPathsF32(t *testing.T, fn func(t *testing.T)) {
	t.Run("active", fn)
	if useAsmF32 {
		useAsmF32 = false
		defer func() { useAsmF32 = true }()
		t.Run("generic", fn)
	}
}

func TestFloat32PairwiseMatchesFloat64Oracle(t *testing.T) {
	onKernelPathsF32(t, testFloat32PairwiseMatchesFloat64Oracle)
}

func testFloat32PairwiseMatchesFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, scale := range []float64{1, 1e6} {
		for _, s := range gramShapes {
			n, d := s[0], s[1]
			x32, x64 := randomMatrix32(rng, n, d, scale)

			dst32 := NewMatrix32(n, n)
			dst64 := NewMatrix(n, n)
			norms := make(Vector, n)
			if err := PairwiseSquaredInto(dst32, x32, nil, 1); err != nil {
				t.Fatalf("shape %v: %v", s, err)
			}
			if err := PairwiseSquaredInto(dst64, x64, norms, 1); err != nil {
				t.Fatalf("shape %v: %v", s, err)
			}
			nscale := 0.0
			for _, nn := range norms {
				nscale = math.Max(nscale, nn)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					got, want := float64(dst32.At(i, j)), dst64.At(i, j)
					if relDiff(got, want, nscale) > f32Tol {
						t.Fatalf("shape %v scale %g: f32 d²[%d][%d] = %g, f64 oracle %g", s, scale, i, j, got, want)
					}
				}
			}

			// Condensed layout must agree with the full matrix it linearises.
			if n > 1 {
				cond := make(Vector32, n*(n-1)/2)
				if err := PairwiseSquaredCondensed(cond, x32, nil, 1); err != nil {
					t.Fatalf("shape %v: %v", s, err)
				}
				k := 0
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						if relDiff(float64(cond[k]), dst64.At(i, j), nscale) > f32Tol {
							t.Fatalf("shape %v scale %g: f32 condensed[%d] = %g, f64 oracle %g", s, scale, k, cond[k], dst64.At(i, j))
						}
						k++
					}
				}
			}
		}
	}
}

func TestFloat32CrossMatchesFloat64Oracle(t *testing.T) {
	onKernelPathsF32(t, testFloat32CrossMatchesFloat64Oracle)
}

func testFloat32CrossMatchesFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for _, s := range gramShapes {
		n, d := s[0], s[1]
		m := (s[0]+5)/2 + 1
		x32, x64 := randomMatrix32(rng, n, d, 1)
		y32, y64 := randomMatrix32(rng, m, d, 1)

		dst32 := NewMatrix32(n, m)
		dst64 := NewMatrix(n, m)
		if err := CrossSquaredInto(dst32, x32, y32, nil, nil, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		if err := CrossSquaredInto(dst64, x64, y64, nil, nil, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		nscale := 0.0
		for i := 0; i < n; i++ {
			nscale = math.Max(nscale, oracleDot(x64.Row(i), x64.Row(i)))
		}
		xn32 := make(Vector32, n)
		yn32 := make(Vector32, m)
		if err := RowNormsSquaredInto(xn32, x32); err != nil {
			t.Fatal(err)
		}
		if err := RowNormsSquaredInto(yn32, y32); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				got, want := float64(dst32.At(i, j)), dst64.At(i, j)
				if relDiff(got, want, nscale) > f32Tol {
					t.Fatalf("shape %v: f32 cross[%d][%d] = %g, f64 oracle %g", s, i, j, got, want)
				}
				one, err := AssignedSquaredDistance(x32, y32, xn32, yn32, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if one != got {
					t.Fatalf("shape %v: assigned(%d,%d) = %g, cross entry %g", s, i, j, one, got)
				}
			}
		}
	}
}

func TestFloat32GramAndDotMatchOracle(t *testing.T) {
	onKernelPathsF32(t, testFloat32GramAndDotMatchOracle)
}

func testFloat32GramAndDotMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, s := range gramShapes {
		n, d := s[0], s[1]
		x32, x64 := randomMatrix32(rng, n, d, 1)

		g32 := NewMatrix32(n, n)
		if err := x32.GramInto(g32, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := oracleDot(x64.Row(i), x64.Row(j))
				if got := float64(g32.At(i, j)); relDiff(got, want, math.Abs(want)) > f32Tol {
					t.Fatalf("shape %v: f32 gram[%d][%d] = %g, oracle %g", s, i, j, got, want)
				}
			}
		}

		if d == 0 {
			continue
		}
		v32 := make(Vector32, d)
		for i := range v32 {
			v32[i] = float32(rng.Float64()*2 - 1)
		}
		out32 := make(Vector32, n)
		if err := DotInto(out32, x32, v32); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		v64 := make(Vector, d)
		for i, x := range v32 {
			v64[i] = float64(x)
		}
		for i := 0; i < n; i++ {
			want := oracleDot(x64.Row(i), v64)
			if got := float64(out32[i]); relDiff(got, want, math.Abs(want)) > f32Tol {
				t.Fatalf("shape %v: f32 DotInto[%d] = %g, oracle %g", s, i, got, want)
			}
		}
	}
}

func TestFloat32MulMatchesFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	for _, s := range [][3]int{{1, 1, 1}, {3, 4, 5}, {16, 17, 18}, {33, 40, 29}, {64, 64, 64}} {
		n, k, m := s[0], s[1], s[2]
		a32, a64 := randomMatrix32(rng, n, k, 1)
		b32, b64 := randomMatrix32(rng, k, m, 1)

		want := NewMatrix(n, m)
		if err := a64.MulInto(want, b64); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		serial := NewMatrix32(n, m)
		if err := a32.MulInto(serial, b32); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		par := NewMatrix32(n, m)
		if err := a32.ParallelMulInto(par, b32, 4); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		for i := range want.Data {
			if relDiff(float64(serial.Data[i]), want.Data[i], float64(k)) > f32Tol {
				t.Fatalf("shape %v: f32 mul[%d] = %g, f64 oracle %g", s, i, serial.Data[i], want.Data[i])
			}
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("shape %v: parallel mul differs from serial at %d", s, i)
			}
		}

		tr := NewMatrix32(k, n)
		if err := a32.ParallelTransposeInto(tr, 4); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				if tr.At(j, i) != a32.At(i, j) {
					t.Fatalf("shape %v: transpose mismatch at (%d,%d)", s, i, j)
				}
			}
		}
	}
}

// TestFloat32CoincidentRowsExactZero is the adversarial exact-zero
// property: bit-identical rows must produce exactly-zero distances in
// every float32 kernel, on both the assembly and portable paths, because
// norms and cross dots share one accumulation scheme.
func TestFloat32CoincidentRowsExactZero(t *testing.T) {
	onKernelPathsF32(t, testFloat32CoincidentRowsExactZero)
}

func testFloat32CoincidentRowsExactZero(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	for _, s := range gramShapes {
		n, d := s[0], s[1]
		if n < 2 {
			continue
		}
		x32, _ := randomMatrix32(rng, n, d, 1e3)
		// Duplicate rows across tile boundaries: every row j copies row j%2.
		for j := 2; j < n; j++ {
			copy(x32.Row(j), x32.Row(j%2))
		}

		dst := NewMatrix32(n, n)
		if err := PairwiseSquaredInto(dst, x32, nil, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		cond := make(Vector32, n*(n-1)/2)
		if err := PairwiseSquaredCondensed(cond, x32, nil, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				same := i%2 == j%2 || d == 0
				if same && dst.At(i, j) != 0 {
					t.Fatalf("shape %v: full d²[%d][%d] = %g, want exact 0 for coincident rows", s, i, j, dst.At(i, j))
				}
				if same && cond[k] != 0 {
					t.Fatalf("shape %v: condensed d²[%d][%d] = %g, want exact 0 for coincident rows", s, i, j, cond[k])
				}
				k++
			}
		}

		// Cross kernel against a centroid matrix containing copies of rows.
		y32 := NewMatrix32(2, d)
		copy(y32.Row(0), x32.Row(0))
		copy(y32.Row(1), x32.Row(1))
		cross := NewMatrix32(n, 2)
		if err := CrossSquaredInto(cross, x32, y32, nil, nil, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		for i := 0; i < n; i++ {
			if got := cross.At(i, i%2); got != 0 {
				t.Fatalf("shape %v: cross d²[%d][%d] = %g, want exact 0 for coincident rows", s, i, i%2, got)
			}
		}
	}
}

// TestFloat32KernelsBitIdenticalAcrossWorkers is the determinism sweep of
// the float32 path: every blocked kernel must produce byte-identical
// output for Workers ∈ {1, 2, 4, GOMAXPROCS}.
func TestFloat32KernelsBitIdenticalAcrossWorkers(t *testing.T) {
	onKernelPathsF32(t, testFloat32KernelsBitIdenticalAcrossWorkers)
}

func testFloat32KernelsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	const n, d, m = 97, 129, 7
	x32, _ := randomMatrix32(rng, n, d, 1)
	y32, _ := randomMatrix32(rng, m, d, 1)
	a32, _ := randomMatrix32(rng, n, d, 1)
	b32, _ := randomMatrix32(rng, d, m, 1)

	type snapshot struct {
		full, cross, mul *Matrix32
		cond             Vector32
	}
	run := func(workers int) snapshot {
		var s snapshot
		s.full = NewMatrix32(n, n)
		if err := PairwiseSquaredInto(s.full, x32, nil, workers); err != nil {
			t.Fatal(err)
		}
		s.cond = make(Vector32, n*(n-1)/2)
		if err := PairwiseSquaredCondensed(s.cond, x32, nil, workers); err != nil {
			t.Fatal(err)
		}
		s.cross = NewMatrix32(n, m)
		if err := CrossSquaredInto(s.cross, x32, y32, nil, nil, workers); err != nil {
			t.Fatal(err)
		}
		s.mul = NewMatrix32(n, m)
		if err := a32.ParallelMulInto(s.mul, b32, workers); err != nil {
			t.Fatal(err)
		}
		return s
	}

	base := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for i := range base.full.Data {
			if got.full.Data[i] != base.full.Data[i] {
				t.Fatalf("workers=%d: full pairwise differs at %d", workers, i)
			}
		}
		for i := range base.cond {
			if got.cond[i] != base.cond[i] {
				t.Fatalf("workers=%d: condensed differs at %d", workers, i)
			}
		}
		for i := range base.cross.Data {
			if got.cross.Data[i] != base.cross.Data[i] {
				t.Fatalf("workers=%d: cross differs at %d", workers, i)
			}
		}
		for i := range base.mul.Data {
			if got.mul.Data[i] != base.mul.Data[i] {
				t.Fatalf("workers=%d: parallel mul differs at %d", workers, i)
			}
		}
	}
}

// TestFloat32ZScoreAndAxpy covers the remaining generic primitives the
// float32 pipeline path leans on.
func TestFloat32ZScoreAndAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	n := 1008
	v32 := make(Vector32, n)
	v64 := make(Vector, n)
	for i := range v32 {
		x := rng.Float64() * 1e5
		v32[i] = float32(x)
		v64[i] = float64(v32[i])
	}
	z32 := make(Vector32, n)
	z64 := make(Vector, n)
	if err := ZScoreNormalizeInto(z32, v32); err != nil {
		t.Fatal(err)
	}
	if err := ZScoreNormalizeInto(z64, v64); err != nil {
		t.Fatal(err)
	}
	for i := range z32 {
		if relDiff(float64(z32[i]), z64[i], 1) > f32Tol {
			t.Fatalf("z-score[%d] = %g, f64 oracle %g", i, z32[i], z64[i])
		}
	}

	// Constant rows normalise to exactly zero in both precisions.
	c32 := Vector32{3, 3, 3, 3}
	zc := make(Vector32, 4)
	if err := ZScoreNormalizeInto(zc, c32); err != nil {
		t.Fatal(err)
	}
	for i, x := range zc {
		if x != 0 {
			t.Fatalf("constant-row z-score[%d] = %g, want 0", i, x)
		}
	}

	y32 := z32.Clone()
	if err := Axpy(float32(0.5), v32, y32); err != nil {
		t.Fatal(err)
	}
	for i := range y32 {
		want := z32[i] + 0.5*v32[i]
		if y32[i] != want {
			t.Fatalf("axpy[%d] = %g, want %g", i, y32[i], want)
		}
	}
	if err := Axpy(float32(1), v32, make(Vector32, 1)); err == nil {
		t.Fatal("axpy with mismatched lengths must fail")
	}
}
