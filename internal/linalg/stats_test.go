package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZScoreNormalize(t *testing.T) {
	v := Vector{1, 2, 3, 4, 5}
	z := ZScoreNormalize(v)
	if !almostEqual(z.Mean(), 0, 1e-12) {
		t.Errorf("mean of z-scored = %g, want 0", z.Mean())
	}
	if !almostEqual(z.Std(), 1, 1e-12) {
		t.Errorf("std of z-scored = %g, want 1", z.Std())
	}
}

func TestZScoreNormalizeConstant(t *testing.T) {
	v := Vector{7, 7, 7}
	z := ZScoreNormalize(v)
	for i, x := range z {
		if x != 0 {
			t.Errorf("z[%d] = %g, want 0 for constant input", i, x)
		}
	}
	if len(ZScoreNormalize[float64](nil)) != 0 {
		t.Error("z-score of empty vector should be empty")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	v := Vector{10, 20, 30}
	m := MinMaxNormalize(v)
	want := Vector{0, 0.5, 1}
	for i := range want {
		if !almostEqual(m[i], want[i], 1e-12) {
			t.Errorf("minmax[%d] = %g, want %g", i, m[i], want[i])
		}
	}
	constant := MinMaxNormalize(Vector{5, 5})
	if constant[0] != 0 || constant[1] != 0 {
		t.Error("minmax of constant vector should be zeros")
	}
}

func TestNormalizeByMax(t *testing.T) {
	v := Vector{2, 4, 8}
	n := NormalizeByMax(v)
	if n[2] != 1 || n[0] != 0.25 {
		t.Errorf("NormalizeByMax = %v", n)
	}
	zeros := NormalizeByMax(Vector{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Error("NormalizeByMax of zero vector should be zeros")
	}
	neg := NormalizeByMax(Vector{-1, -2})
	if neg[0] != 0 || neg[1] != 0 {
		t.Error("NormalizeByMax with non-positive max should be zeros")
	}
}

func TestQuantile(t *testing.T) {
	v := Vector{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty vector should be 0")
	}
}

func TestCDF(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	probes := []float64{0, 1, 2.5, 4, 10}
	got := CDF(v, probes)
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("CDF[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	empty := CDF(nil, probes)
	for _, x := range empty {
		if x != 0 {
			t.Error("CDF of empty vector should be all zeros")
		}
	}
}

func TestCircularMeanStd(t *testing.T) {
	// Angles clustered around π wrap across the discontinuity.
	angles := Vector{math.Pi - 0.1, -math.Pi + 0.1}
	mean, std := CircularMeanStd(angles)
	if PhaseDistance(mean, math.Pi) > 1e-9 {
		t.Errorf("circular mean = %g, want ±π", mean)
	}
	if std <= 0 || std > 0.2 {
		t.Errorf("circular std = %g, want small positive", std)
	}
	mean, std = CircularMeanStd(Vector{0.5, 0.5, 0.5})
	if !almostEqual(mean, 0.5, 1e-9) || !almostEqual(std, 0, 1e-6) {
		t.Errorf("identical angles: mean=%g std=%g", mean, std)
	}
	if m, s := CircularMeanStd(nil); m != 0 || s != 0 {
		t.Error("empty circular stats should be zero")
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2.5 * math.Pi, -0.5 * math.Pi},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("WrapPhase(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestPhaseDistance(t *testing.T) {
	if d := PhaseDistance(math.Pi-0.05, -math.Pi+0.05); !almostEqual(d, 0.1, 1e-9) {
		t.Errorf("PhaseDistance across wrap = %g, want 0.1", d)
	}
	if d := PhaseDistance(0, math.Pi); !almostEqual(d, math.Pi, 1e-9) {
		t.Errorf("PhaseDistance(0, π) = %g, want π", d)
	}
}

// Property: z-score output always has near-zero mean and unit (or zero) std.
func TestZScoreProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8) bool {
		dim := int(n%64) + 2
		v := make(Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		z := ZScoreNormalize(v)
		if !z.IsFinite() {
			return false
		}
		return math.Abs(z.Mean()) < 1e-8 && math.Abs(z.Std()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: min-max output is always within [0, 1] and attains both bounds
// for non-constant input.
func TestMinMaxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(n uint8) bool {
		dim := int(n%64) + 2
		v := make(Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64() * 50
		}
		m := MinMaxNormalize(v)
		min, _ := m.Min()
		max, _ := m.Max()
		if min < 0 || max > 1 {
			return false
		}
		origMin, _ := v.Min()
		origMax, _ := v.Max()
		if origMin != origMax {
			return almostEqual(min, 0, 1e-12) && almostEqual(max, 1, 1e-12)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: WrapPhase always lands in (-π, π] and preserves the angle
// modulo 2π.
func TestWrapPhaseProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		w := WrapPhase(a)
		if w <= -math.Pi || w > math.Pi {
			return false
		}
		// Same point on the unit circle.
		return math.Abs(math.Sin(w)-math.Sin(a)) < 1e-6 && math.Abs(math.Cos(w)-math.Cos(a)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkZScoreNormalize4032(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := make(Vector, 4032)
	for i := range v {
		v[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZScoreNormalize(v)
	}
}
