// Package linalg provides the dense vector, matrix and statistics
// primitives used throughout the traffic-pattern analysis pipeline.
//
// The package is intentionally small and allocation-conscious: the
// clustering stage operates on ~10,000 vectors of length 4,032 and the
// distance computations dominate runtime, so the hot paths (Dot, Sub,
// SquaredDistance) avoid bounds-check-unfriendly patterns and never
// allocate.
//
// Every vector, matrix and kernel type is generic over the Float
// constraint (float32 | float64). The float64 instantiations — exposed
// under the historical names Vector and Matrix — are the default modeling
// precision and are bit-identical to the pre-generic implementation: the
// generic bodies are exact transliterations, same operation order, same
// accumulation scheme. The float32 instantiations (Vector32, Matrix32)
// halve the memory traffic of the bandwidth-bound distance and NMF
// kernels; they are the opt-in fast path selected by core.Options.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Float is the element-type constraint of the generic kernels: every
// primitive in this package is instantiated for float64 (the default
// modeling precision) and float32 (the bandwidth-halving fast path).
type Float interface {
	float32 | float64
}

// Vec is a dense vector of F values. The zero value is an empty vector.
// Vectors are plain slices so callers may index and append freely;
// functions in this package never retain their arguments.
type Vec[F Float] []F

// Vector is the float64 vector used throughout the full-precision
// modeling path. It is an alias for Vec[float64], so existing callers and
// conversions keep working unchanged.
type Vector = Vec[float64]

// Vector32 is the float32 vector of the reduced-precision fast path.
type Vector32 = Vec[float32]

// Common errors returned by vector and matrix operations.
var (
	// ErrDimensionMismatch is returned when two operands do not have
	// compatible dimensions.
	ErrDimensionMismatch = errors.New("linalg: dimension mismatch")
	// ErrEmpty is returned when an operation requires at least one element.
	ErrEmpty = errors.New("linalg: empty input")
)

// NewVector returns a zero float64 vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vec[F]) Clone() Vec[F] {
	out := make(Vec[F], len(v))
	copy(out, v)
	return out
}

// Len returns the number of elements in v.
func (v Vec[F]) Len() int { return len(v) }

// Add returns v + w element-wise.
func (v Vec[F]) Add(w Vec[F]) (Vec[F], error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: add %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vec[F], len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// AddInPlace adds w into v element-wise, modifying v.
func (v Vec[F]) AddInPlace(w Vec[F]) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: add-in-place %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Sub returns v - w element-wise.
func (v Vec[F]) Sub(w Vec[F]) (Vec[F], error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: sub %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vec[F], len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns v multiplied by the scalar a.
func (v Vec[F]) Scale(a F) Vec[F] {
	out := make(Vec[F], len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// ScaleInPlace multiplies every element of v by a.
func (v Vec[F]) ScaleInPlace(a F) {
	for i := range v {
		v[i] *= a
	}
}

// Dot returns the inner product of v and w, accumulated at the vector's
// own precision.
func (v Vec[F]) Dot(w Vec[F]) (F, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s F
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Axpy adds a·x into y element-wise (y ← y + a·x), the classic BLAS
// building block. It modifies y and allocates nothing.
func Axpy[F Float](a F, x, y Vec[F]) error {
	if len(x) != len(y) {
		return fmt.Errorf("%w: axpy %d vs %d", ErrDimensionMismatch, len(x), len(y))
	}
	if a == 0 {
		return nil
	}
	for i, xv := range x {
		y[i] += a * xv
	}
	return nil
}

// Norm returns the Euclidean (L2) norm of v. The squared sum accumulates
// at the vector's own precision; the square root is taken in float64.
func (v Vec[F]) Norm() float64 {
	var s F
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(float64(s))
}

// Norm1 returns the L1 norm of v.
func (v Vec[F]) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(float64(x))
	}
	return s
}

// NormInf returns the L∞ norm (maximum absolute value) of v.
func (v Vec[F]) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(float64(x)); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements of v, accumulated at the vector's
// own precision.
func (v Vec[F]) Sum() float64 {
	var s F
	for _, x := range v {
		s += x
	}
	return float64(s)
}

// Mean returns the arithmetic mean of v. It returns 0 for an empty vector.
func (v Vec[F]) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Variance returns the population variance of v (dividing by n, not n-1).
// It returns 0 for vectors with fewer than one element. Deviations are
// widened to float64 before squaring, so the statistic keeps full
// precision for float32 vectors too.
func (v Vec[F]) Variance() float64 {
	if len(v) == 0 {
		return 0
	}
	m := v.Mean()
	var s float64
	for _, x := range v {
		d := float64(x) - m
		s += d * d
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func (v Vec[F]) Std() float64 { return math.Sqrt(v.Variance()) }

// Min returns the minimum element of v and its index. It returns
// (0, -1) for an empty vector.
func (v Vec[F]) Min() (F, int) {
	if len(v) == 0 {
		return 0, -1
	}
	min, idx := v[0], 0
	for i, x := range v {
		if x < min {
			min, idx = x, i
		}
	}
	return min, idx
}

// Max returns the maximum element of v and its index. It returns
// (0, -1) for an empty vector.
func (v Vec[F]) Max() (F, int) {
	if len(v) == 0 {
		return 0, -1
	}
	max, idx := v[0], 0
	for i, x := range v {
		if x > max {
			max, idx = x, i
		}
	}
	return max, idx
}

// Distance returns the Euclidean distance between v and w.
func Distance[F Float](v, w Vec[F]) (float64, error) {
	d, err := SquaredDistance(v, w)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}

// SquaredDistance returns the squared Euclidean distance between v and w,
// accumulated at the vectors' own precision. It is the hot path of the
// per-pair clustering fallback and does not allocate.
func SquaredDistance[F Float](v, w Vec[F]) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: distance %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s F
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return float64(s), nil
}

// Pearson returns the Pearson correlation coefficient between v and w.
// It returns 0 if either vector has zero variance.
func Pearson[F Float](v, w Vec[F]) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: pearson %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	if len(v) == 0 {
		return 0, ErrEmpty
	}
	mv, mw := v.Mean(), w.Mean()
	var num, dv, dw float64
	for i := range v {
		a, b := float64(v[i])-mv, float64(w[i])-mw
		num += a * b
		dv += a * a
		dw += b * b
	}
	if dv == 0 || dw == 0 {
		return 0, nil
	}
	return num / math.Sqrt(dv*dw), nil
}

// Centroid returns the element-wise mean of the given vectors. All vectors
// must have the same length.
func Centroid[F Float](vs []Vec[F]) (Vec[F], error) {
	if len(vs) == 0 {
		return nil, ErrEmpty
	}
	n := len(vs[0])
	out := make(Vec[F], n)
	for _, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("%w: centroid %d vs %d", ErrDimensionMismatch, len(v), n)
		}
		for i, x := range v {
			out[i] += x
		}
	}
	out.ScaleInPlace(F(1 / float64(len(vs))))
	return out, nil
}

// IsFinite reports whether every element of v is finite (not NaN or ±Inf).
func (v Vec[F]) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return false
		}
	}
	return true
}
