// Package linalg provides the dense vector, matrix and statistics
// primitives used throughout the traffic-pattern analysis pipeline.
//
// The package is intentionally small and allocation-conscious: the
// clustering stage operates on ~10,000 vectors of length 4,032 and the
// distance computations dominate runtime, so the hot paths (Dot, Sub,
// SquaredDistance) avoid bounds-check-unfriendly patterns and never
// allocate.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense vector of float64 values. The zero value is an empty
// vector. Vectors are plain slices so callers may index and append freely;
// functions in this package never retain their arguments.
type Vector []float64

// Common errors returned by vector and matrix operations.
var (
	// ErrDimensionMismatch is returned when two operands do not have
	// compatible dimensions.
	ErrDimensionMismatch = errors.New("linalg: dimension mismatch")
	// ErrEmpty is returned when an operation requires at least one element.
	ErrEmpty = errors.New("linalg: empty input")
)

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Len returns the number of elements in v.
func (v Vector) Len() int { return len(v) }

// Add returns v + w element-wise.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: add %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// AddInPlace adds w into v element-wise, modifying v.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: add-in-place %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Sub returns v - w element-wise.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: sub %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns v multiplied by the scalar a.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// ScaleInPlace multiplies every element of v by a.
func (v Vector) ScaleInPlace(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the L∞ norm (maximum absolute value) of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v. It returns 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Variance returns the population variance of v (dividing by n, not n-1).
// It returns 0 for vectors with fewer than one element.
func (v Vector) Variance() float64 {
	if len(v) == 0 {
		return 0
	}
	m := v.Mean()
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func (v Vector) Std() float64 { return math.Sqrt(v.Variance()) }

// Min returns the minimum element of v and its index. It returns
// (0, -1) for an empty vector.
func (v Vector) Min() (float64, int) {
	if len(v) == 0 {
		return 0, -1
	}
	min, idx := v[0], 0
	for i, x := range v {
		if x < min {
			min, idx = x, i
		}
	}
	return min, idx
}

// Max returns the maximum element of v and its index. It returns
// (0, -1) for an empty vector.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		return 0, -1
	}
	max, idx := v[0], 0
	for i, x := range v {
		if x > max {
			max, idx = x, i
		}
	}
	return max, idx
}

// Distance returns the Euclidean distance between v and w.
func Distance(v, w Vector) (float64, error) {
	d, err := SquaredDistance(v, w)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}

// SquaredDistance returns the squared Euclidean distance between v and w.
// It is the hot path of the clustering stage and does not allocate.
func SquaredDistance(v, w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: distance %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s, nil
}

// Pearson returns the Pearson correlation coefficient between v and w.
// It returns 0 if either vector has zero variance.
func Pearson(v, w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: pearson %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	if len(v) == 0 {
		return 0, ErrEmpty
	}
	mv, mw := v.Mean(), w.Mean()
	var num, dv, dw float64
	for i := range v {
		a, b := v[i]-mv, w[i]-mw
		num += a * b
		dv += a * a
		dw += b * b
	}
	if dv == 0 || dw == 0 {
		return 0, nil
	}
	return num / math.Sqrt(dv*dw), nil
}

// Centroid returns the element-wise mean of the given vectors. All vectors
// must have the same length.
func Centroid(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, ErrEmpty
	}
	n := len(vs[0])
	out := make(Vector, n)
	for _, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("%w: centroid %d vs %d", ErrDimensionMismatch, len(v), n)
		}
		for i, x := range v {
			out[i] += x
		}
	}
	out.ScaleInPlace(1 / float64(len(vs)))
	return out, nil
}

// IsFinite reports whether every element of v is finite (not NaN or ±Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
