package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	want := Vector{5, 7, 9}
	for i := range want {
		if sum[i] != want[i] {
			t.Errorf("Add[%d] = %g, want %g", i, sum[i], want[i])
		}
	}
	diff, err := w.Sub(v)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	for i := range diff {
		if diff[i] != 3 {
			t.Errorf("Sub[%d] = %g, want 3", i, diff[i])
		}
	}
}

func TestVectorDimensionMismatch(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{1, 2}
	if _, err := v.Add(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Add mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Sub mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Dot mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := Distance(v, w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Distance mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if err := v.AddInPlace(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddInPlace mismatch: got %v, want ErrDimensionMismatch", err)
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	d, err := v.Dot(v)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if d != 25 {
		t.Errorf("Dot = %g, want 25", d)
	}
	if v.Norm() != 5 {
		t.Errorf("Norm = %g, want 5", v.Norm())
	}
	if v.Norm1() != 7 {
		t.Errorf("Norm1 = %g, want 7", v.Norm1())
	}
	if v.NormInf() != 4 {
		t.Errorf("NormInf = %g, want 4", v.NormInf())
	}
}

func TestVectorStats(t *testing.T) {
	v := Vector{2, 4, 4, 4, 5, 5, 7, 9}
	if got := v.Mean(); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := v.Variance(); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := v.Std(); got != 2 {
		t.Errorf("Std = %g, want 2", got)
	}
	min, imin := v.Min()
	if min != 2 || imin != 0 {
		t.Errorf("Min = (%g, %d), want (2, 0)", min, imin)
	}
	max, imax := v.Max()
	if max != 9 || imax != 7 {
		t.Errorf("Max = (%g, %d), want (9, 7)", max, imax)
	}
}

func TestVectorEmptyStats(t *testing.T) {
	var v Vector
	if v.Mean() != 0 || v.Variance() != 0 || v.Std() != 0 {
		t.Errorf("empty vector stats should be zero")
	}
	if _, i := v.Min(); i != -1 {
		t.Errorf("empty Min index = %d, want -1", i)
	}
	if _, i := v.Max(); i != -1 {
		t.Errorf("empty Max index = %d, want -1", i)
	}
}

func TestDistance(t *testing.T) {
	v := Vector{0, 0}
	w := Vector{3, 4}
	d, err := Distance(v, w)
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if d != 5 {
		t.Errorf("Distance = %g, want 5", d)
	}
	sq, err := SquaredDistance(v, w)
	if err != nil {
		t.Fatalf("SquaredDistance: %v", err)
	}
	if sq != 25 {
		t.Errorf("SquaredDistance = %g, want 25", sq)
	}
}

func TestPearson(t *testing.T) {
	v := Vector{1, 2, 3, 4, 5}
	w := Vector{2, 4, 6, 8, 10}
	r, err := Pearson(v, w)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson(v, 2v) = %g, want 1", r)
	}
	neg := Vector{10, 8, 6, 4, 2}
	r, err = Pearson(v, neg)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson(v, -v) = %g, want -1", r)
	}
	constant := Vector{3, 3, 3, 3, 3}
	r, err = Pearson(v, constant)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if r != 0 {
		t.Errorf("Pearson with constant = %g, want 0", r)
	}
	if _, err := Pearson(Vector{}, Vector{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("Pearson empty: got %v, want ErrEmpty", err)
	}
}

func TestCentroid(t *testing.T) {
	vs := []Vector{{1, 2}, {3, 4}, {5, 6}}
	c, err := Centroid(vs)
	if err != nil {
		t.Fatalf("Centroid: %v", err)
	}
	if c[0] != 3 || c[1] != 4 {
		t.Errorf("Centroid = %v, want [3 4]", c)
	}
	if _, err := Centroid[float64](nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Centroid[float64](nil): got %v, want ErrEmpty", err)
	}
	if _, err := Centroid([]Vector{{1}, {1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Centroid ragged: got %v, want ErrDimensionMismatch", err)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported as non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported as finite")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported as finite")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with the original")
	}
}

// Property: squared distance is symmetric and non-negative, and the
// triangle inequality holds for the Euclidean distance.
func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		dim := int(n%16) + 1
		a, b, c := make(Vector, dim), make(Vector, dim), make(Vector, dim)
		for i := 0; i < dim; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		dab, _ := Distance(a, b)
		dba, _ := Distance(b, a)
		dac, _ := Distance(a, c)
		dcb, _ := Distance(c, b)
		if dab < 0 || !almostEqual(dab, dba, 1e-12) {
			return false
		}
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: dot product is commutative and linear in its first argument.
func TestDotProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint8) bool {
		dim := int(n%16) + 1
		a, b := make(Vector, dim), make(Vector, dim)
		for i := 0; i < dim; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ab, _ := a.Dot(b)
		ba, _ := b.Dot(a)
		scaled, _ := a.Scale(2).Dot(b)
		return almostEqual(ab, ba, 1e-9) && almostEqual(scaled, 2*ab, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSquaredDistance4032(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v, w := make(Vector, 4032), make(Vector, 4032)
	for i := range v {
		v[i] = rng.Float64()
		w[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SquaredDistance(v, w); err != nil {
			b.Fatal(err)
		}
	}
}
