#include "textflag.h"

// The AVX2+FMA micro-kernels of the blocked distance engine. Both kernels
// share one accumulation scheme per (a,b) pair — two 4-wide FMA
// accumulators over k (acc0: k≡0..3 mod 8, acc1: k≡4..7 mod 8), folded as
// acc0+acc1, then (l0+l2, l1+l3), then (l0+l2)+(l1+l3), with an ascending
// scalar-FMA tail for n mod 8 leftovers — so any pair of bit-identical
// rows produces exactly the same dot product as either row's norm, which
// the Gram trick relies on for exact-zero distances.

// func dotVecAsm(a, b *float64, n int) float64
TEXT ·dotVecAsm(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ DX, $0
	JE   fold

loop8:
	VMOVUPD (SI)(AX*8), Y2
	VFMADD231PD (DI)(AX*8), Y2, Y0
	VMOVUPD 32(SI)(AX*8), Y3
	VFMADD231PD 32(DI)(AX*8), Y3, Y1
	ADDQ $8, AX
	CMPQ AX, DX
	JL   loop8

fold:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0

	CMPQ AX, CX
	JGE  done

tail:
	VMOVSD (SI)(AX*8), X2
	VFMADD231SD (DI)(AX*8), X2, X0
	INCQ AX
	CMPQ AX, CX
	JL   tail

done:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func dot1x4Asm(a, b *float64, ldb, n int, out *[4]float64)
TEXT ·dot1x4Asm(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ ldb+16(FP), DX
	SHLQ $3, DX              // stride in bytes
	MOVQ n+24(FP), CX
	MOVQ out+32(FP), BX
	LEAQ (DI)(DX*1), R8      // row 1
	LEAQ (R8)(DX*1), R9      // row 2
	LEAQ (R9)(DX*1), R10     // row 3
	VXORPD Y0, Y0, Y0        // acc0 of rows 0..3
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4        // acc1 of rows 0..3
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX
	MOVQ CX, R11
	ANDQ $-8, R11
	CMPQ R11, $0
	JE   fold4

loop8x4:
	VMOVUPD (SI)(AX*8), Y8
	VFMADD231PD (DI)(AX*8), Y8, Y0
	VFMADD231PD (R8)(AX*8), Y8, Y1
	VFMADD231PD (R9)(AX*8), Y8, Y2
	VFMADD231PD (R10)(AX*8), Y8, Y3
	VMOVUPD 32(SI)(AX*8), Y9
	VFMADD231PD 32(DI)(AX*8), Y9, Y4
	VFMADD231PD 32(R8)(AX*8), Y9, Y5
	VFMADD231PD 32(R9)(AX*8), Y9, Y6
	VFMADD231PD 32(R10)(AX*8), Y9, Y7
	ADDQ $8, AX
	CMPQ AX, R11
	JL   loop8x4

fold4:
	VADDPD Y4, Y0, Y0
	VEXTRACTF128 $1, Y0, X10
	VADDPD X10, X0, X0
	VPERMILPD $1, X0, X10
	VADDSD X10, X0, X0

	VADDPD Y5, Y1, Y1
	VEXTRACTF128 $1, Y1, X10
	VADDPD X10, X1, X1
	VPERMILPD $1, X1, X10
	VADDSD X10, X1, X1

	VADDPD Y6, Y2, Y2
	VEXTRACTF128 $1, Y2, X10
	VADDPD X10, X2, X2
	VPERMILPD $1, X2, X10
	VADDSD X10, X2, X2

	VADDPD Y7, Y3, Y3
	VEXTRACTF128 $1, Y3, X10
	VADDPD X10, X3, X3
	VPERMILPD $1, X3, X10
	VADDSD X10, X3, X3

	CMPQ AX, CX
	JGE  store4

tail4:
	VMOVSD (SI)(AX*8), X8
	VFMADD231SD (DI)(AX*8), X8, X0
	VFMADD231SD (R8)(AX*8), X8, X1
	VFMADD231SD (R9)(AX*8), X8, X2
	VFMADD231SD (R10)(AX*8), X8, X3
	INCQ AX
	CMPQ AX, CX
	JL   tail4

store4:
	VMOVSD X0, (BX)
	VMOVSD X1, 8(BX)
	VMOVSD X2, 16(BX)
	VMOVSD X3, 24(BX)
	VZEROUPPER
	RET
