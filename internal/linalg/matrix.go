package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix whose rows are copies of the given
// vectors. All rows must have equal length.
func NewMatrixFromRows(rows []Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// RowViews returns all rows of m as vectors aliasing the matrix storage —
// the compatibility bridge between the flat row-major data path and the
// []Vector APIs. Mutating a returned vector mutates the matrix.
func (m *Matrix) RowViews() []Vector {
	out := make([]Vector, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// RowsMatrix returns a matrix whose rows are the given equal-length
// vectors. When the rows already lie contiguously in one row-major buffer —
// as the row views of a Matrix do — the returned matrix aliases their
// storage without copying, which is how the blocked distance kernels pick
// up a pipeline.Dataset's flat backing for free; otherwise the rows are
// packed into a fresh buffer. Callers must treat an aliased result as
// read-only unless they own the backing rows.
func RowsMatrix(rows []Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	cols := len(rows[0])
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
	}
	if contiguousRows(rows, cols) {
		return &Matrix{Rows: len(rows), Cols: cols, Data: rows[0][:len(rows)*cols]}, nil
	}
	return NewMatrixFromRows(rows)
}

// contiguousRows reports whether the rows occupy one row-major buffer:
// every row must be followed immediately by the next one in memory, which
// the capacity of a mid-matrix row view exposes without unsafe.
func contiguousRows(rows []Vector, cols int) bool {
	if cols == 0 {
		return false
	}
	for i := 0; i+1 < len(rows); i++ {
		r := rows[i]
		if cap(r) <= cols || &r[:cols+1][cols] != &rows[i+1][0] {
			return false
		}
	}
	return cap(rows[0]) >= len(rows)*cols
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores x at row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector that aliases the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// RowCopy returns a copy of row i.
func (m *Matrix) RowCopy(i int) Vector { return m.Row(i).Clone() }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m · v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: matrix %dx%d times vector %d", ErrDimensionMismatch, m.Rows, m.Cols, len(v))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	_ = m.TransposeInto(out) // shapes match by construction
	return out
}

// TransposeInto writes mᵀ into dst, which must be Cols×Rows and must not
// share storage with m. It allows iterative algorithms to reuse one
// transpose buffer across iterations.
func (m *Matrix) TransposeInto(dst *Matrix) error {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		return fmt.Errorf("%w: transpose of %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, dst.Rows, dst.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			dst.Data[j*dst.Cols+i] = x
		}
	}
	return nil
}

// Mul returns m · other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("%w: %dx%d times %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	if err := m.MulInto(out, other); err != nil {
		return nil, err
	}
	return out, nil
}

// MulInto writes m · other into dst, which must be Rows×other.Cols and must
// not share storage with m or other. Reusing dst across calls avoids the
// per-iteration allocations of Mul in iterative algorithms.
func (m *Matrix) MulInto(dst, other *Matrix) error {
	if m.Cols != other.Rows {
		return fmt.Errorf("%w: %dx%d times %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	if dst.Rows != m.Rows || dst.Cols != other.Cols {
		return fmt.Errorf("%w: product %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, other.Cols, dst.Rows, dst.Cols)
	}
	mulRows(dst, m, other, 0, m.Rows)
	return nil
}

// mulRows is the shared micro-kernel of MulInto and ParallelMulInto: it
// computes output rows [lo, hi) of dst = m · other. The interior runs four
// output rows at a time with a fused inner loop, so each row of `other` is
// loaded once per four accumulator rows instead of once per row — the
// register-tiled upgrade over the plain axpy kernel. Every output entry
// still accumulates over k in ascending order, so the parallel scheduler
// (which hands out 16-row blocks, a multiple of the 4-row unroll) produces
// bit-identical results for any worker count.
func mulRows(dst, m, other *Matrix, lo, hi int) {
	kDim, n := m.Cols, other.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		out0 := dst.Data[(i+0)*n : (i+1)*n]
		out1 := dst.Data[(i+1)*n : (i+2)*n]
		out2 := dst.Data[(i+2)*n : (i+3)*n]
		out3 := dst.Data[(i+3)*n : (i+4)*n]
		for j := range out0 {
			out0[j], out1[j], out2[j], out3[j] = 0, 0, 0, 0
		}
		for k := 0; k < kDim; k++ {
			a0 := m.Data[(i+0)*kDim+k]
			a1 := m.Data[(i+1)*kDim+k]
			a2 := m.Data[(i+2)*kDim+k]
			a3 := m.Data[(i+3)*kDim+k]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			row := other.Data[k*n : (k+1)*n]
			for j, x := range row {
				out0[j] += a0 * x
				out1[j] += a1 * x
				out2[j] += a2 * x
				out3[j] += a3 * x
			}
		}
	}
	for ; i < hi; i++ {
		out := dst.Data[i*n : (i+1)*n]
		for j := range out {
			out[j] = 0
		}
		for k := 0; k < kDim; k++ {
			a := m.Data[i*kDim+k]
			if a == 0 {
				continue
			}
			row := other.Data[k*n : (k+1)*n]
			for j, x := range row {
				out[j] += a * x
			}
		}
	}
}

// SolveSPD solves the linear system A·x = b for a symmetric positive
// definite A using Cholesky decomposition. It is used by the QP solver for
// small equality-constrained subproblems. A is not modified.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: SolveSPD requires square matrix, got %dx%d", ErrDimensionMismatch, a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: SolveSPD rhs %d vs %d", ErrDimensionMismatch, len(b), n)
	}
	// Cholesky factorisation A = L·Lᵀ.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: matrix is not positive definite (pivot %g at %d)", sum, i)
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward substitution L·y = b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Backward substitution Lᵀ·x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}
