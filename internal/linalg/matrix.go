package linalg

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix of F values.
type Mat[F Float] struct {
	Rows, Cols int
	Data       []F // len == Rows*Cols, row-major
}

// Matrix is the float64 matrix used throughout the full-precision
// modeling path. It is an alias for Mat[float64], so existing struct
// literals, field accesses and method calls keep working unchanged.
type Matrix = Mat[float64]

// Matrix32 is the float32 matrix of the reduced-precision fast path.
type Matrix32 = Mat[float32]

// NewMat returns a zero matrix of the given element type and dimensions.
func NewMat[F Float](rows, cols int) *Mat[F] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Mat[F]{Rows: rows, Cols: cols, Data: make([]F, rows*cols)}
}

// NewMatrix returns a zero float64 matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix { return NewMat[float64](rows, cols) }

// NewMatrix32 returns a zero float32 matrix with the given dimensions.
func NewMatrix32(rows, cols int) *Matrix32 { return NewMat[float32](rows, cols) }

// NewMatrixFromRows builds a matrix whose rows are copies of the given
// vectors. All rows must have equal length.
func NewMatrixFromRows[F Float](rows []Vec[F]) (*Mat[F], error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	cols := len(rows[0])
	m := NewMat[F](len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// RowViews returns all rows of m as vectors aliasing the matrix storage —
// the compatibility bridge between the flat row-major data path and the
// []Vector APIs. Mutating a returned vector mutates the matrix.
func (m *Mat[F]) RowViews() []Vec[F] {
	out := make([]Vec[F], m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// RowsMatrix returns a matrix whose rows are the given equal-length
// vectors. When the rows already lie contiguously in one row-major buffer —
// as the row views of a Mat do — the returned matrix aliases their
// storage without copying, which is how the blocked distance kernels pick
// up a pipeline.Dataset's flat backing for free; otherwise the rows are
// packed into a fresh buffer. Callers must treat an aliased result as
// read-only unless they own the backing rows.
func RowsMatrix[F Float](rows []Vec[F]) (*Mat[F], error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	cols := len(rows[0])
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
	}
	if contiguousRows(rows, cols) {
		return &Mat[F]{Rows: len(rows), Cols: cols, Data: rows[0][:len(rows)*cols]}, nil
	}
	return NewMatrixFromRows(rows)
}

// contiguousRows reports whether the rows occupy one row-major buffer:
// every row must be followed immediately by the next one in memory, which
// the capacity of a mid-matrix row view exposes without unsafe.
func contiguousRows[F Float](rows []Vec[F], cols int) bool {
	if cols == 0 {
		return false
	}
	for i := 0; i+1 < len(rows); i++ {
		r := rows[i]
		if cap(r) <= cols || &r[:cols+1][cols] != &rows[i+1][0] {
			return false
		}
	}
	return cap(rows[0]) >= len(rows)*cols
}

// At returns the element at row i, column j.
func (m *Mat[F]) At(i, j int) F { return m.Data[i*m.Cols+j] }

// Set stores x at row i, column j.
func (m *Mat[F]) Set(i, j int, x F) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a vector that aliases the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Mat[F]) Row(i int) Vec[F] { return Vec[F](m.Data[i*m.Cols : (i+1)*m.Cols]) }

// RowCopy returns a copy of row i.
func (m *Mat[F]) RowCopy(i int) Vec[F] { return m.Row(i).Clone() }

// Col returns a copy of column j.
func (m *Mat[F]) Col(j int) Vec[F] {
	out := make(Vec[F], m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Mat[F]) Clone() *Mat[F] {
	out := NewMat[F](m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m · v.
func (m *Mat[F]) MulVec(v Vec[F]) (Vec[F], error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: matrix %dx%d times vector %d", ErrDimensionMismatch, m.Rows, m.Cols, len(v))
	}
	out := make(Vec[F], m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s F
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// DotInto fills dst[i] with the dot product of row i of x and v — the
// matrix-vector product on the distance engine's shared dot kernel, so
// each entry uses the same accumulation scheme (assembly FMA fold or
// portable ascending scan) as the Gram-trick kernels. dst must have
// length x.Rows and v length x.Cols.
func DotInto[F Float](dst Vec[F], x *Mat[F], v Vec[F]) error {
	if len(dst) != x.Rows {
		return fmt.Errorf("%w: %d outputs for %d rows", ErrDimensionMismatch, len(dst), x.Rows)
	}
	if len(v) != x.Cols {
		return fmt.Errorf("%w: matrix %dx%d times vector %d", ErrDimensionMismatch, x.Rows, x.Cols, len(v))
	}
	d := x.Cols
	for i := 0; i < x.Rows; i++ {
		dst[i] = dotPair(x.Data[i*d:(i+1)*d], []F(v))
	}
	return nil
}

// Transpose returns mᵀ.
func (m *Mat[F]) Transpose() *Mat[F] {
	out := NewMat[F](m.Cols, m.Rows)
	_ = m.TransposeInto(out) // shapes match by construction
	return out
}

// TransposeInto writes mᵀ into dst, which must be Cols×Rows and must not
// share storage with m. It allows iterative algorithms to reuse one
// transpose buffer across iterations.
func (m *Mat[F]) TransposeInto(dst *Mat[F]) error {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		return fmt.Errorf("%w: transpose of %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, dst.Rows, dst.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			dst.Data[j*dst.Cols+i] = x
		}
	}
	return nil
}

// Mul returns m · other.
func (m *Mat[F]) Mul(other *Mat[F]) (*Mat[F], error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("%w: %dx%d times %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMat[F](m.Rows, other.Cols)
	if err := m.MulInto(out, other); err != nil {
		return nil, err
	}
	return out, nil
}

// MulInto writes m · other into dst, which must be Rows×other.Cols and must
// not share storage with m or other. Reusing dst across calls avoids the
// per-iteration allocations of Mul in iterative algorithms.
func (m *Mat[F]) MulInto(dst, other *Mat[F]) error {
	if m.Cols != other.Rows {
		return fmt.Errorf("%w: %dx%d times %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	if dst.Rows != m.Rows || dst.Cols != other.Cols {
		return fmt.Errorf("%w: product %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, other.Cols, dst.Rows, dst.Cols)
	}
	mulRows(dst, m, other, 0, m.Rows)
	return nil
}

// mulRows is the shared micro-kernel of MulInto and ParallelMulInto: it
// computes output rows [lo, hi) of dst = m · other. The interior runs four
// output rows at a time with a fused inner loop, so each row of `other` is
// loaded once per four accumulator rows instead of once per row — the
// register-tiled upgrade over the plain axpy kernel. Every output entry
// still accumulates over k in ascending order, so the parallel scheduler
// (which hands out 16-row blocks, a multiple of the 4-row unroll) produces
// bit-identical results for any worker count.
func mulRows[F Float](dst, m, other *Mat[F], lo, hi int) {
	kDim, n := m.Cols, other.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		out0 := dst.Data[(i+0)*n : (i+1)*n]
		out1 := dst.Data[(i+1)*n : (i+2)*n]
		out2 := dst.Data[(i+2)*n : (i+3)*n]
		out3 := dst.Data[(i+3)*n : (i+4)*n]
		for j := range out0 {
			out0[j], out1[j], out2[j], out3[j] = 0, 0, 0, 0
		}
		for k := 0; k < kDim; k++ {
			a0 := m.Data[(i+0)*kDim+k]
			a1 := m.Data[(i+1)*kDim+k]
			a2 := m.Data[(i+2)*kDim+k]
			a3 := m.Data[(i+3)*kDim+k]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			row := other.Data[k*n : (k+1)*n]
			for j, x := range row {
				out0[j] += a0 * x
				out1[j] += a1 * x
				out2[j] += a2 * x
				out3[j] += a3 * x
			}
		}
	}
	for ; i < hi; i++ {
		out := dst.Data[i*n : (i+1)*n]
		for j := range out {
			out[j] = 0
		}
		for k := 0; k < kDim; k++ {
			a := m.Data[i*kDim+k]
			if a == 0 {
				continue
			}
			row := other.Data[k*n : (k+1)*n]
			for j, x := range row {
				out[j] += a * x
			}
		}
	}
}

// SolveSPD solves the linear system A·x = b for a symmetric positive
// definite A using Cholesky decomposition. It is used by the QP solver for
// small equality-constrained subproblems. A is not modified.
func SolveSPD[F Float](a *Mat[F], b Vec[F]) (Vec[F], error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: SolveSPD requires square matrix, got %dx%d", ErrDimensionMismatch, a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: SolveSPD rhs %d vs %d", ErrDimensionMismatch, len(b), n)
	}
	// Cholesky factorisation A = L·Lᵀ.
	l := NewMat[F](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: matrix is not positive definite (pivot %g at %d)", sum, i)
				}
				l.Set(i, j, F(math.Sqrt(float64(sum))))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward substitution L·y = b.
	y := make(Vec[F], n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Backward substitution Lᵀ·x = y.
	x := make(Vec[F], n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}
