package linalg

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/panicsafe"
)

// Blocked Gram-matrix distance engine.
//
// The clustering and metric stages of the pipeline are dominated by pairwise
// Euclidean distances over ~10,000 rows of 1,008 slots. Computed per pair
// (one subtract-square loop per (i,j)), every pair streams both rows from
// memory: O(N²·d) loads for O(N²·d) flops, hopelessly memory-bound at scale.
// The kernels here instead tile the output into pairTile×pairTile blocks and
// compute dot products with a 4×4 register micro-kernel, so each pass over
// two row panels produces 16 outputs per 8 loads and row panels are reused
// from cache across a whole tile. Squared distances come from the Gram
// trick: ‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b, clamped at zero (the subtraction can
// go infinitesimally negative under rounding).
//
// Every kernel is generic over Float. On amd64 with AVX2+FMA the dot
// products run in assembly micro-kernels — dot_amd64.s for float64 (4-lane
// VFMADD231PD) and dot32_amd64.s for float32 (8-lane VFMADD231PS), selected
// by an element-type switch inside the generic bodies — roughly 4× the
// scalar flop rate, with the float32 kernels moving half the bytes per
// element on top. Everywhere else the portable register-tiled Go kernels
// below apply, instantiated per element type.
//
// Determinism contract: every output entry is computed by exactly one
// worker, and every entry — whichever kernel variant produces it —
// accumulates its dot product over k in one fixed scheme per build and
// element type (the two-accumulator FMA fold of the assembly kernels, or a
// single ascending accumulator in the portable ones). Results are therefore
// bit-identical for ANY worker count, the property the deterministic
// modeling engine is built on. Relative to the per-pair subtract-square
// form the Gram trick shifts low-order bits (one rounding of the norms and
// the recombination replaces d roundings of (a−b)²); the cluster and
// freqdomain oracles pin the agreement to ≤1e-9 relative error for float64
// and the float32 property tests to ≤1e-4 against the float64 oracle, and
// two rows with bit-identical contents still get an exactly-zero distance
// because their norms and their cross dot product run the identical
// operation sequence.
//
// All kernels write into caller-provided storage and allocate nothing on
// the serial (workers == 1) path, so warmed callers run at 0 allocs/op.

// pairTile is the row/column tile size of the blocked kernels: two panels
// of pairTile rows × 1,008 slots (the paper's week of 10-minute slots) sit
// around 500 KiB together, comfortably inside L2 while a tile is computed.
const pairTile = 32

// stripWorkers normalises a worker count against the number of strips.
func stripWorkers(strips, workers int) int {
	workers = ResolveWorkers(workers)
	if workers > strips {
		workers = strips
	}
	return workers
}

// forEachStrip claims strip indices [0, strips) with `workers` goroutines
// (> 1; the serial paths go through stripLoop so the warmed kernels stay
// allocation-free) from a shared atomic counter. Each strip is processed
// by exactly one worker. Cancellation is observed between strips — the
// strip is the kernels' unit of promptness — and a worker panic is
// recovered into the returned error; on either early exit every worker
// drains through the shared stop flag before forEachStrip returns.
func forEachStrip(ctx context.Context, strips, workers int, fn func(s int)) error {
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		panicsafe.Go(func() error {
			for {
				if stop.Load() || (done != nil && ctx.Err() != nil) {
					stop.Store(true)
					return nil
				}
				s := int(next.Add(1)) - 1
				if s >= strips {
					return nil
				}
				fn(s)
			}
		}, fail, wg.Done)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if done != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// stripLoop is the serial counterpart of forEachStrip: strips run in order
// on the caller's goroutine, with the same between-strips cancellation
// points and zero allocations (a Background context short-circuits the
// checks entirely).
func stripLoop(ctx context.Context, strips int, fn func(s int)) error {
	done := ctx.Done()
	for s := 0; s < strips; s++ {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		fn(s)
	}
	return nil
}

// dot4x4 accumulates the 16 dot products between four x rows and four y
// rows into acc. Each accumulator receives its products in ascending-k
// order, matching dotRows exactly, so the same (i,j) pair produces the same
// bits whichever kernel computes it.
func dot4x4[F Float](a0, a1, a2, a3, b0, b1, b2, b3 []F, acc *[16]F) {
	var s00, s01, s02, s03 F
	var s10, s11, s12, s13 F
	var s20, s21, s22, s23 F
	var s30, s31, s32, s33 F
	n := len(a0)
	a1, a2, a3 = a1[:n], a2[:n], a3[:n]
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for k, x0 := range a0 {
		x1, x2, x3 := a1[k], a2[k], a3[k]
		y0, y1, y2, y3 := b0[k], b1[k], b2[k], b3[k]
		s00 += x0 * y0
		s01 += x0 * y1
		s02 += x0 * y2
		s03 += x0 * y3
		s10 += x1 * y0
		s11 += x1 * y1
		s12 += x1 * y2
		s13 += x1 * y3
		s20 += x2 * y0
		s21 += x2 * y1
		s22 += x2 * y2
		s23 += x2 * y3
		s30 += x3 * y0
		s31 += x3 * y1
		s32 += x3 * y2
		s33 += x3 * y3
	}
	acc[0], acc[1], acc[2], acc[3] = s00, s01, s02, s03
	acc[4], acc[5], acc[6], acc[7] = s10, s11, s12, s13
	acc[8], acc[9], acc[10], acc[11] = s20, s21, s22, s23
	acc[12], acc[13], acc[14], acc[15] = s30, s31, s32, s33
}

// dot4x1 accumulates four x rows against one y row (the j edge of a tile).
func dot4x1[F Float](a0, a1, a2, a3, b []F) (s0, s1, s2, s3 F) {
	n := len(a0)
	a1, a2, a3, b = a1[:n], a2[:n], a3[:n], b[:n]
	for k, x0 := range a0 {
		y := b[k]
		s0 += x0 * y
		s1 += a1[k] * y
		s2 += a2[k] * y
		s3 += a3[k] * y
	}
	return
}

// dotRows is the scalar edge kernel: a single ascending-k accumulator.
func dotRows[F Float](a, b []F) F {
	b = b[:len(a)]
	var s F
	for k, x := range a {
		s += x * b[k]
	}
	return s
}

// dotPair is the path-dispatching single-pair kernel: the AVX2+FMA vector
// dot of the matching element width where available, the portable scalar
// one otherwise. Row norms and tile edges go through it so every dot in a
// run shares one accumulation scheme — the exact-zero guarantee of the
// Gram trick depends on that.
func dotPair[F Float](a, b []F) F {
	switch av := any(a).(type) {
	case []float64:
		if useAsm && len(av) > 0 {
			return F(dotVecAsm(&av[0], &any(b).([]float64)[0], len(av)))
		}
	case []float32:
		if useAsmF32 && len(av) > 0 {
			return F(dotVecAsm32(&av[0], &any(b).([]float32)[0], len(av)))
		}
	}
	return dotRows(a, b)
}

// pairTileRect fills out[(i-i0)*stride + (j-j0)] for i in [i0,i1), j in
// [j0,j1) with either the raw dot product of x row i and y row j (norms nil)
// or the clamped squared distance xn[i] + yn[j] − 2·dot (norms given).
func pairTileRect[F Float](x, y *Mat[F], xn, yn Vec[F], i0, i1, j0, j1 int, out []F, stride int) {
	d := x.Cols
	xd, yd := x.Data, y.Data
	emit := func(i, j int, dot F) {
		v := dot
		if xn != nil {
			v = xn[i] + yn[j] - 2*dot
			if v < 0 {
				v = 0
			}
		}
		out[(i-i0)*stride+(j-j0)] = v
	}
	if d > 0 {
		switch xdv := any(xd).(type) {
		case []float64:
			if useAsm {
				ydv := any(yd).([]float64)
				var quad [4]float64
				for i := i0; i < i1; i++ {
					a := xdv[i*d : (i+1)*d]
					j := j0
					for ; j+4 <= j1; j += 4 {
						dot1x4Asm(&a[0], &ydv[j*d], d, d, &quad)
						emit(i, j+0, F(quad[0]))
						emit(i, j+1, F(quad[1]))
						emit(i, j+2, F(quad[2]))
						emit(i, j+3, F(quad[3]))
					}
					for ; j < j1; j++ {
						emit(i, j, F(dotVecAsm(&a[0], &ydv[j*d], d)))
					}
				}
				return
			}
		case []float32:
			if useAsmF32 {
				ydv := any(yd).([]float32)
				var quad [4]float32
				for i := i0; i < i1; i++ {
					a := xdv[i*d : (i+1)*d]
					j := j0
					for ; j+4 <= j1; j += 4 {
						dot1x4Asm32(&a[0], &ydv[j*d], d, d, &quad)
						emit(i, j+0, F(quad[0]))
						emit(i, j+1, F(quad[1]))
						emit(i, j+2, F(quad[2]))
						emit(i, j+3, F(quad[3]))
					}
					for ; j < j1; j++ {
						emit(i, j, F(dotVecAsm32(&a[0], &ydv[j*d], d)))
					}
				}
				return
			}
		}
	}
	var acc [16]F
	i := i0
	for ; i+4 <= i1; i += 4 {
		a0 := xd[(i+0)*d : (i+1)*d]
		a1 := xd[(i+1)*d : (i+2)*d]
		a2 := xd[(i+2)*d : (i+3)*d]
		a3 := xd[(i+3)*d : (i+4)*d]
		j := j0
		for ; j+4 <= j1; j += 4 {
			dot4x4(a0, a1, a2, a3,
				yd[(j+0)*d:(j+1)*d], yd[(j+1)*d:(j+2)*d], yd[(j+2)*d:(j+3)*d], yd[(j+3)*d:(j+4)*d], &acc)
			for di := 0; di < 4; di++ {
				for dj := 0; dj < 4; dj++ {
					emit(i+di, j+dj, acc[di*4+dj])
				}
			}
		}
		for ; j < j1; j++ {
			s0, s1, s2, s3 := dot4x1(a0, a1, a2, a3, yd[j*d:(j+1)*d])
			emit(i+0, j, s0)
			emit(i+1, j, s1)
			emit(i+2, j, s2)
			emit(i+3, j, s3)
		}
	}
	for ; i < i1; i++ {
		a := xd[i*d : (i+1)*d]
		for j := j0; j < j1; j++ {
			emit(i, j, dotRows(a, yd[j*d:(j+1)*d]))
		}
	}
}

// RowNormsSquaredInto fills dst[i] with the squared Euclidean norm of row i
// of x, accumulated in the same ascending order as the tile kernels so that
// identical rows yield exactly-zero Gram-trick distances. dst must have
// length x.Rows.
func RowNormsSquaredInto[F Float](dst Vec[F], x *Mat[F]) error {
	if len(dst) != x.Rows {
		return fmt.Errorf("%w: %d norms for %d rows", ErrDimensionMismatch, len(dst), x.Rows)
	}
	d := x.Cols
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*d : (i+1)*d]
		dst[i] = dotPair(row, row)
	}
	return nil
}

// GramInto writes the Gram matrix m·mᵀ into dst (m.Rows × m.Rows) using up
// to `workers` goroutines (≤ 0 means GOMAXPROCS). Only the upper triangle
// is computed — symmetry halves the flops — and mirrored into the lower
// one. dst must not share storage with m. The result is bit-identical for
// any worker count.
func (m *Mat[F]) GramInto(dst *Mat[F], workers int) error {
	n := m.Rows
	if dst.Rows != n || dst.Cols != n {
		return fmt.Errorf("%w: gram of %dx%d into %dx%d", ErrDimensionMismatch, n, m.Cols, dst.Rows, dst.Cols)
	}
	ctx := context.Background()
	if err := symmetricTiles(ctx, m, nil, dst.Data, workers); err != nil {
		return err
	}
	return mirrorLower(ctx, dst, workers)
}

// PairwiseSquaredInto writes the full symmetric matrix of squared Euclidean
// distances between the rows of x into dst (x.Rows × x.Rows) using up to
// `workers` goroutines (≤ 0 means GOMAXPROCS). norms is caller scratch of
// length x.Rows (nil allocates); on return it holds the squared row norms.
// The diagonal is exactly zero and the result is bit-identical for any
// worker count.
func PairwiseSquaredInto[F Float](dst *Mat[F], x *Mat[F], norms Vec[F], workers int) error {
	return PairwiseSquaredIntoCtx(context.Background(), dst, x, norms, workers)
}

// PairwiseSquaredIntoCtx is PairwiseSquaredInto with cancellation observed
// at strip granularity and worker panics recovered into the returned
// error. On early exit dst holds partial results and must not be used.
func PairwiseSquaredIntoCtx[F Float](ctx context.Context, dst *Mat[F], x *Mat[F], norms Vec[F], workers int) error {
	n := x.Rows
	if dst.Rows != n || dst.Cols != n {
		return fmt.Errorf("%w: pairwise of %d rows into %dx%d", ErrDimensionMismatch, n, dst.Rows, dst.Cols)
	}
	if norms == nil {
		norms = make(Vec[F], n)
	}
	if err := RowNormsSquaredInto(norms, x); err != nil {
		return err
	}
	if err := symmetricTiles(ctx, x, norms, dst.Data, workers); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		dst.Data[i*n+i] = 0
	}
	return mirrorLower(ctx, dst, workers)
}

// symmetricTiles computes the upper triangle (including the diagonal) of
// the pairwise dot products (norms nil) or squared distances (norms given)
// of x's rows into the row-major n×n buffer out. Workers claim row strips
// of pairTile rows; within a strip every tile right of the diagonal runs
// the rectangular kernel and diagonal tiles compute their own lower half
// redundantly (a ≤1/tiles fraction of the work) to keep the kernel uniform.
func symmetricTiles[F Float](ctx context.Context, x *Mat[F], norms Vec[F], out []F, workers int) error {
	strips := (x.Rows + pairTile - 1) / pairTile
	if w := stripWorkers(strips, workers); w > 1 {
		return forEachStrip(ctx, strips, w, func(s int) { symmetricStrip(x, norms, out, s) })
	}
	return stripLoop(ctx, strips, func(s int) { symmetricStrip(x, norms, out, s) })
}

func symmetricStrip[F Float](x *Mat[F], norms Vec[F], out []F, s int) {
	n := x.Rows
	i0 := s * pairTile
	i1 := min(n, i0+pairTile)
	for j0 := i0; j0 < n; j0 += pairTile {
		j1 := min(n, j0+pairTile)
		pairTileRect(x, x, norms, norms, i0, i1, j0, j1, out[i0*n+j0:], n)
	}
}

// mirrorLower copies the strict upper triangle of the symmetric matrix dst
// into its lower triangle, partitioned by destination row so each entry is
// written by exactly one worker.
func mirrorLower[F Float](ctx context.Context, dst *Mat[F], workers int) error {
	strips := (dst.Rows + pairTile - 1) / pairTile
	if w := stripWorkers(strips, workers); w > 1 {
		return forEachStrip(ctx, strips, w, func(s int) { mirrorStrip(dst, s) })
	}
	return stripLoop(ctx, strips, func(s int) { mirrorStrip(dst, s) })
}

func mirrorStrip[F Float](dst *Mat[F], s int) {
	n := dst.Rows
	r0 := s * pairTile
	r1 := min(n, r0+pairTile)
	for r := r0; r < r1; r++ {
		row := dst.Data[r*n : (r+1)*n]
		for i := 0; i < r; i++ {
			row[i] = dst.Data[i*n+r]
		}
	}
}

// PairwiseSquaredCondensed writes the squared Euclidean distances between
// the rows of x into dst in condensed upper-triangular layout: row i's
// distances to j ∈ (i, n) occupy a contiguous run starting at
// i·(2n−i−1)/2, the layout the clustering engine agglomerates over. dst
// must have length n·(n−1)/2; norms is caller scratch of length n (nil
// allocates). Up to `workers` goroutines (≤ 0 means GOMAXPROCS) each own
// whole row strips, so the result is bit-identical for any worker count,
// and the serial path performs no allocations.
func PairwiseSquaredCondensed[F Float](dst []F, x *Mat[F], norms Vec[F], workers int) error {
	return PairwiseSquaredCondensedCtx(context.Background(), dst, x, norms, workers)
}

// PairwiseSquaredCondensedCtx is PairwiseSquaredCondensed with
// cancellation observed between row strips (the unit the clustering
// engine's promptness bound is stated in) and worker panics recovered
// into the returned error. On early exit dst holds partial results and
// must not be used.
func PairwiseSquaredCondensedCtx[F Float](ctx context.Context, dst []F, x *Mat[F], norms Vec[F], workers int) error {
	n := x.Rows
	if len(dst) != n*(n-1)/2 {
		return fmt.Errorf("%w: condensed buffer %d for %d rows (want %d)", ErrDimensionMismatch, len(dst), n, n*(n-1)/2)
	}
	if norms == nil {
		norms = make(Vec[F], n)
	}
	if err := RowNormsSquaredInto(norms, x); err != nil {
		return err
	}
	strips := (n + pairTile - 1) / pairTile
	if w := stripWorkers(strips, workers); w > 1 {
		return forEachStrip(ctx, strips, w, func(s int) { condensedStrip(dst, x, norms, s) })
	}
	return stripLoop(ctx, strips, func(s int) { condensedStrip(dst, x, norms, s) })
}

// condensedStrip fills the condensed rows of one pairTile strip.
func condensedStrip[F Float](dst []F, x *Mat[F], norms Vec[F], s int) {
	n, d := x.Rows, x.Cols
	rowStart := func(i int) int { return i * (2*n - i - 1) / 2 }
	i0 := s * pairTile
	i1 := min(n, i0+pairTile)
	// Diagonal tile: only j > i survives, so the 4×4 interior does not
	// apply cleanly; the scalar kernel covers the triangle.
	for i := i0; i < i1; i++ {
		a := x.Data[i*d : (i+1)*d]
		base := rowStart(i) - i - 1
		for j := i + 1; j < i1; j++ {
			v := norms[i] + norms[j] - 2*dotPair(a, x.Data[j*d:(j+1)*d])
			if v < 0 {
				v = 0
			}
			dst[base+j] = v
		}
	}
	// Tiles right of the diagonal: full rectangles on the 4×4 kernel,
	// written row by row into the condensed runs.
	var tile [pairTile * pairTile]F
	for j0 := i1; j0 < n; j0 += pairTile {
		j1 := min(n, j0+pairTile)
		pairTileRect(x, x, norms, norms, i0, i1, j0, j1, tile[:], pairTile)
		for i := i0; i < i1; i++ {
			base := rowStart(i) - i - 1
			trow := tile[(i-i0)*pairTile:]
			for j := j0; j < j1; j++ {
				dst[base+j] = trow[j-j0]
			}
		}
	}
}

// CrossSquaredInto writes the squared Euclidean distances between every row
// of x and every row of y into dst (x.Rows × y.Rows) using up to `workers`
// goroutines (≤ 0 means GOMAXPROCS). xnorms and ynorms must hold the
// squared row norms of x and y as produced by RowNormsSquaredInto; pass
// nil to have either computed here (allocating). Taking the norms as
// inputs lets iterative callers — the k-means assignment step, where x
// never changes but the centroids do — reuse point norms across
// iterations and restarts without the kernel rewriting shared buffers.
// Bit-identical for any worker count; with caller-provided norms the
// serial path performs no allocations.
func CrossSquaredInto[F Float](dst *Mat[F], x, y *Mat[F], xnorms, ynorms Vec[F], workers int) error {
	return CrossSquaredIntoCtx(context.Background(), dst, x, y, xnorms, ynorms, workers)
}

// CrossSquaredIntoCtx is CrossSquaredInto with cancellation observed at
// strip granularity and worker panics recovered into the returned error.
// On early exit dst holds partial results and must not be used.
func CrossSquaredIntoCtx[F Float](ctx context.Context, dst *Mat[F], x, y *Mat[F], xnorms, ynorms Vec[F], workers int) error {
	if x.Cols != y.Cols {
		return fmt.Errorf("%w: cross distances between %d-col and %d-col rows", ErrDimensionMismatch, x.Cols, y.Cols)
	}
	if dst.Rows != x.Rows || dst.Cols != y.Rows {
		return fmt.Errorf("%w: cross distances %dx%d into %dx%d", ErrDimensionMismatch, x.Rows, y.Rows, dst.Rows, dst.Cols)
	}
	if xnorms == nil {
		xnorms = make(Vec[F], x.Rows)
		if err := RowNormsSquaredInto(xnorms, x); err != nil {
			return err
		}
	}
	if ynorms == nil {
		ynorms = make(Vec[F], y.Rows)
		if err := RowNormsSquaredInto(ynorms, y); err != nil {
			return err
		}
	}
	if len(xnorms) != x.Rows || len(ynorms) != y.Rows {
		return fmt.Errorf("%w: %d/%d norms for %dx%d cross distances", ErrDimensionMismatch, len(xnorms), len(ynorms), x.Rows, y.Rows)
	}
	strips := (x.Rows + pairTile - 1) / pairTile
	if w := stripWorkers(strips, workers); w > 1 {
		return forEachStrip(ctx, strips, w, func(s int) { crossStrip(dst, x, y, xnorms, ynorms, s) })
	}
	return stripLoop(ctx, strips, func(s int) { crossStrip(dst, x, y, xnorms, ynorms, s) })
}

// crossStrip fills one pairTile strip of the cross-distance matrix.
func crossStrip[F Float](dst *Mat[F], x, y *Mat[F], xnorms, ynorms Vec[F], s int) {
	m := y.Rows
	i0 := s * pairTile
	i1 := min(x.Rows, i0+pairTile)
	for j0 := 0; j0 < m; j0 += pairTile {
		j1 := min(m, j0+pairTile)
		pairTileRect(x, y, xnorms, ynorms, i0, i1, j0, j1, dst.Data[i0*m+j0:], m)
	}
}

// AssignedSquaredDistance returns the squared Euclidean distance between
// row i of x and row j of y via the Gram trick, using precomputed row
// norms (RowNormsSquaredInto). The dot product runs the kernels' shared
// accumulation scheme, so the value is bit-identical to the corresponding
// CrossSquaredInto entry — including the exact zero for bit-identical
// rows — without computing any of the other pairs. This is the
// one-pair-per-point form the cluster-scatter statistic wants.
func AssignedSquaredDistance[F Float](x, y *Mat[F], xnorms, ynorms Vec[F], i, j int) (float64, error) {
	if x.Cols != y.Cols {
		return 0, fmt.Errorf("%w: assigned distance between %d-col and %d-col rows", ErrDimensionMismatch, x.Cols, y.Cols)
	}
	if i < 0 || i >= x.Rows || j < 0 || j >= y.Rows {
		return 0, fmt.Errorf("%w: assigned distance (%d,%d) of %dx%d", ErrDimensionMismatch, i, j, x.Rows, y.Rows)
	}
	if len(xnorms) != x.Rows || len(ynorms) != y.Rows {
		return 0, fmt.Errorf("%w: %d/%d norms for %dx%d assigned distance", ErrDimensionMismatch, len(xnorms), len(ynorms), x.Rows, y.Rows)
	}
	d := x.Cols
	v := xnorms[i] + ynorms[j] - 2*dotPair(x.Data[i*d:(i+1)*d], y.Data[j*d:(j+1)*d])
	if v < 0 {
		v = 0
	}
	return float64(v), nil
}

// SquaredDistancesSqrtInPlace replaces every entry of d with its square
// root, splitting the buffer across up to `workers` goroutines (≤ 0 means
// GOMAXPROCS). Element-wise, so bit-identical for any worker count.
func SquaredDistancesSqrtInPlace[F Float](d []F, workers int) {
	// The Background context cannot cancel and the chunked loops cannot
	// panic, so the error is structurally nil.
	_ = SquaredDistancesSqrtInPlaceCtx(context.Background(), d, workers)
}

// SquaredDistancesSqrtInPlaceCtx is SquaredDistancesSqrtInPlace with
// cancellation observed between 16k-element chunks and worker panics
// recovered into the returned error.
func SquaredDistancesSqrtInPlaceCtx[F Float](ctx context.Context, d []F, workers int) error {
	const chunk = 1 << 14
	strips := (len(d) + chunk - 1) / chunk
	if w := stripWorkers(strips, workers); w > 1 {
		return forEachStrip(ctx, strips, w, func(s int) { sqrtStrip(d, s*chunk, min(len(d), s*chunk+chunk)) })
	}
	return stripLoop(ctx, strips, func(s int) { sqrtStrip(d, s*chunk, min(len(d), s*chunk+chunk)) })
}

func sqrtStrip[F Float](d []F, lo, hi int) {
	for i := lo; i < hi; i++ {
		d[i] = F(math.Sqrt(float64(d[i])))
	}
}
