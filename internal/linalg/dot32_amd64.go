package linalg

// useAsmF32 routes the float32 distance kernels through the AVX2+FMA
// assembly micro-kernels. Like useAsm it is a variable so the property
// tests can force the portable path and cross-check the implementations.
var useAsmF32 = hasAVX2FMA

// dotVecAsm32 returns the dot product of the n-element float32 vectors at
// a and b using two 8-wide FMA accumulators (lane m sums k ≡ m mod 16),
// folded by pairing the accumulators and then halving 8→4→2→1 lanes, with
// an ascending scalar-FMA tail. dot1x4Asm32 uses the identical per-pair
// sequence, so a row's norm and its cross dot products cancel exactly in
// the Gram trick.
//
//go:noescape
func dotVecAsm32(a, b *float32, n int) float32

// dot1x4Asm32 computes the dot products of the n-element float32 vector at
// a against four rows starting at b with a stride of ldb elements, writing
// them to out. The accumulation scheme is bit-identical to dotVecAsm32's.
//
//go:noescape
func dot1x4Asm32(a, b *float32, ldb, n int, out *[4]float32)
