package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g, want 6", m.At(1, 2))
	}
	if _, err := NewMatrixFromRows[float64](nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty rows: got %v, want ErrEmpty", err)
	}
	if _, err := NewMatrixFromRows([]Vector{{1}, {1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged rows: got %v, want ErrDimensionMismatch", err)
	}
}

func TestMatrixRowColAliasing(t *testing.T) {
	m, _ := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 99 {
		t.Error("Row should alias matrix storage")
	}
	rc := m.RowCopy(1)
	rc[0] = -1
	if m.At(1, 0) != 3 {
		t.Error("RowCopy should not alias matrix storage")
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 4 {
		t.Errorf("Col(1) = %v, want [2 4]", col)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m, _ := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}})
	out, err := m.MulVec(Vector{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if out[0] != 3 || out[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", out)
	}
	if _, err := m.MulVec(Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVec mismatch: got %v", err)
	}
}

func TestMatrixMulAndTranspose(t *testing.T) {
	a, _ := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([]Vector{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Errorf("Transpose wrong: %v", at.Data)
	}
	bad, _ := NewMatrixFromRows([]Vector{{1, 2, 3}})
	if _, err := a.Mul(bad.Transpose()); err == nil {
		// a is 2x2, badᵀ is 3x1 → incompatible
		t.Error("Mul with incompatible dims should fail")
	}
}

func TestSolveSPD(t *testing.T) {
	// A = [[4,1],[1,3]], b = [1,2] → x = [1/11, 7/11]
	a, _ := NewMatrixFromRows([]Vector{{4, 1}, {1, 3}})
	x, err := SolveSPD(a, Vector{1, 2})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	if !almostEqual(x[0], 1.0/11, 1e-12) || !almostEqual(x[1], 7.0/11, 1e-12) {
		t.Errorf("SolveSPD = %v, want [1/11 7/11]", x)
	}
}

func TestSolveSPDErrors(t *testing.T) {
	notSquare, _ := NewMatrixFromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	if _, err := SolveSPD(notSquare, Vector{1, 2}); err == nil {
		t.Error("SolveSPD should reject non-square matrices")
	}
	square, _ := NewMatrixFromRows([]Vector{{1, 0}, {0, 1}})
	if _, err := SolveSPD(square, Vector{1}); err == nil {
		t.Error("SolveSPD should reject mismatched rhs")
	}
	indefinite, _ := NewMatrixFromRows([]Vector{{0, 0}, {0, -1}})
	if _, err := SolveSPD(indefinite, Vector{1, 1}); err == nil {
		t.Error("SolveSPD should reject indefinite matrices")
	}
}

// Property: SolveSPD(AᵀA + I, b) reproduces b when multiplied back.
func TestSolveSPDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed uint8) bool {
		n := int(seed%5) + 2
		raw := NewMatrix(n, n)
		for i := range raw.Data {
			raw.Data[i] = rng.NormFloat64()
		}
		// A = rawᵀ·raw + I is SPD.
		a, err := raw.Transpose().Mul(raw)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		back, err := a.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
