package linalg

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
)

// randomMatrix fills a rows×cols matrix with standard normal values, with a
// sprinkling of exact zeros to exercise the a==0 skip of the kernels.
func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Intn(16) == 0 {
			continue
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// workerCounts are the parallelism levels every determinism test sweeps:
// the serial path, small fixed counts, GOMAXPROCS and the "use all cores"
// default.
func workerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0), 0}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("ResolveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := ResolveWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("ResolveWorkers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := ResolveWorkers(5); got != 5 {
		t.Errorf("ResolveWorkers(5) = %d, want 5", got)
	}
}

// Property: ParallelMulInto is bit-identical to the serial MulInto for any
// worker count, including shapes that do not divide evenly into blocks and
// matrices small enough to take the serial fallback.
func TestParallelMulIntoMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	shapes := [][3]int{
		{1, 1, 1},
		{3, 5, 2},
		{17, 33, 9},   // below the parallel threshold
		{130, 70, 45}, // above it, ragged block boundaries
		{64, 128, 32}, // exact block multiples
		{parallelBlockRows*3 + 1, 61, 40},
	}
	for _, s := range shapes {
		a := randomMatrix(rng, s[0], s[1])
		bm := randomMatrix(rng, s[1], s[2])
		want := NewMatrix(s[0], s[2])
		if err := a.MulInto(want, bm); err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts() {
			got := randomMatrix(rng, s[0], s[2]) // pre-soiled: the kernel must overwrite
			if err := a.ParallelMulInto(got, bm, workers); err != nil {
				t.Fatalf("shape %v workers %d: %v", s, workers, err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("shape %v workers %d: element %d = %g, want %g (must be bit-identical)",
						s, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestParallelTransposeIntoMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	shapes := [][2]int{{1, 1}, {4, 7}, {40, 9}, {129, 300}, {256, 128}}
	for _, s := range shapes {
		m := randomMatrix(rng, s[0], s[1])
		want := NewMatrix(s[1], s[0])
		if err := m.TransposeInto(want); err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts() {
			got := randomMatrix(rng, s[1], s[0])
			if err := m.ParallelTransposeInto(got, workers); err != nil {
				t.Fatalf("shape %v workers %d: %v", s, workers, err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("shape %v workers %d: element %d differs", s, workers, i)
				}
			}
		}
	}
}

func TestParallelKernelDimensionErrors(t *testing.T) {
	a := NewMatrix(100, 60)
	b := NewMatrix(50, 70) // inner dimension mismatch
	dst := NewMatrix(100, 70)
	for _, workers := range []int{1, 4} {
		if err := a.ParallelMulInto(dst, b, workers); !errors.Is(err, ErrDimensionMismatch) {
			t.Errorf("workers %d: mismatched product: %v", workers, err)
		}
		bad := NewMatrix(10, 10)
		ok := NewMatrix(60, 100)
		if err := a.ParallelMulInto(bad, NewMatrix(60, 70), workers); !errors.Is(err, ErrDimensionMismatch) {
			t.Errorf("workers %d: wrong dst shape: %v", workers, err)
		}
		if err := a.ParallelTransposeInto(bad, workers); !errors.Is(err, ErrDimensionMismatch) {
			t.Errorf("workers %d: wrong transpose dst: %v", workers, err)
		}
		if err := a.ParallelTransposeInto(ok, workers); err != nil {
			t.Errorf("workers %d: valid transpose: %v", workers, err)
		}
	}
}

func BenchmarkLinalg_ParallelMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(93))
	a := randomMatrix(rng, 600, 400)
	m := randomMatrix(rng, 400, 500)
	dst := NewMatrix(600, 500)
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"allcores", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := a.ParallelMulInto(dst, m, bench.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
