#include "textflag.h"

// The float32 AVX2+FMA micro-kernels, mirroring dot_amd64.s at twice the
// lane width: two 8-wide FMA accumulators over k (acc0: k≡0..7 mod 16,
// acc1: k≡8..15 mod 16), folded as acc0+acc1 and then lane-halved
// 8→4→2→1 (upper 128 onto lower, upper 64 onto lower, odd lane onto
// even), with an ascending scalar-FMA tail for n mod 16 leftovers. Both
// kernels share the one scheme, so bit-identical rows produce exactly the
// same dot product as either row's norm — the Gram trick's exact-zero
// property.

// func dotVecAsm32(a, b *float32, n int) float32
TEXT ·dotVecAsm32(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   fold

loop16:
	VMOVUPS (SI)(AX*4), Y2
	VFMADD231PS (DI)(AX*4), Y2, Y0
	VMOVUPS 32(SI)(AX*4), Y3
	VFMADD231PS 32(DI)(AX*4), Y3, Y1
	ADDQ $16, AX
	CMPQ AX, DX
	JL   loop16

fold:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VPERMILPD $1, X0, X1
	VADDPS X1, X0, X0
	VMOVSHDUP X0, X1
	VADDSS X1, X0, X0

	CMPQ AX, CX
	JGE  done

tail:
	VMOVSS (SI)(AX*4), X2
	VFMADD231SS (DI)(AX*4), X2, X0
	INCQ AX
	CMPQ AX, CX
	JL   tail

done:
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET

// func dot1x4Asm32(a, b *float32, ldb, n int, out *[4]float32)
TEXT ·dot1x4Asm32(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ ldb+16(FP), DX
	SHLQ $2, DX              // stride in bytes
	MOVQ n+24(FP), CX
	MOVQ out+32(FP), BX
	LEAQ (DI)(DX*1), R8      // row 1
	LEAQ (R8)(DX*1), R9      // row 2
	LEAQ (R9)(DX*1), R10     // row 3
	VXORPS Y0, Y0, Y0        // acc0 of rows 0..3
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4        // acc1 of rows 0..3
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	XORQ AX, AX
	MOVQ CX, R11
	ANDQ $-16, R11
	CMPQ R11, $0
	JE   fold4

loop16x4:
	VMOVUPS (SI)(AX*4), Y8
	VFMADD231PS (DI)(AX*4), Y8, Y0
	VFMADD231PS (R8)(AX*4), Y8, Y1
	VFMADD231PS (R9)(AX*4), Y8, Y2
	VFMADD231PS (R10)(AX*4), Y8, Y3
	VMOVUPS 32(SI)(AX*4), Y9
	VFMADD231PS 32(DI)(AX*4), Y9, Y4
	VFMADD231PS 32(R8)(AX*4), Y9, Y5
	VFMADD231PS 32(R9)(AX*4), Y9, Y6
	VFMADD231PS 32(R10)(AX*4), Y9, Y7
	ADDQ $16, AX
	CMPQ AX, R11
	JL   loop16x4

fold4:
	VADDPS Y4, Y0, Y0
	VEXTRACTF128 $1, Y0, X10
	VADDPS X10, X0, X0
	VPERMILPD $1, X0, X10
	VADDPS X10, X0, X0
	VMOVSHDUP X0, X10
	VADDSS X10, X0, X0

	VADDPS Y5, Y1, Y1
	VEXTRACTF128 $1, Y1, X10
	VADDPS X10, X1, X1
	VPERMILPD $1, X1, X10
	VADDPS X10, X1, X1
	VMOVSHDUP X1, X10
	VADDSS X10, X1, X1

	VADDPS Y6, Y2, Y2
	VEXTRACTF128 $1, Y2, X10
	VADDPS X10, X2, X2
	VPERMILPD $1, X2, X10
	VADDPS X10, X2, X2
	VMOVSHDUP X2, X10
	VADDSS X10, X2, X2

	VADDPS Y7, Y3, Y3
	VEXTRACTF128 $1, Y3, X10
	VADDPS X10, X3, X3
	VPERMILPD $1, X3, X10
	VADDPS X10, X3, X3
	VMOVSHDUP X3, X10
	VADDSS X10, X3, X3

	CMPQ AX, CX
	JGE  store4

tail4:
	VMOVSS (SI)(AX*4), X8
	VFMADD231SS (DI)(AX*4), X8, X0
	VFMADD231SS (R8)(AX*4), X8, X1
	VFMADD231SS (R9)(AX*4), X8, X2
	VFMADD231SS (R10)(AX*4), X8, X3
	INCQ AX
	CMPQ AX, CX
	JL   tail4

store4:
	VMOVSS X0, (BX)
	VMOVSS X1, 4(BX)
	VMOVSS X2, 8(BX)
	VMOVSS X3, 12(BX)
	VZEROUPPER
	RET
