package linalg

// useAsm routes the blocked distance kernels through the AVX2+FMA assembly
// micro-kernels. It is a variable (not a constant) so the property tests
// can force the generic path and cross-check the two implementations.
var useAsm = hasAVX2FMA

// dotVecAsm returns the dot product of the n-element vectors at a and b
// using two 4-wide FMA accumulators (lane m sums k ≡ m mod 8), folded as
// (l0+l2)+(l1+l3) after pairing the two accumulators, with an ascending
// scalar-FMA tail. dot1x4Asm uses the identical per-pair sequence, so a
// row's norm and its cross dot products cancel exactly in the Gram trick.
//
//go:noescape
func dotVecAsm(a, b *float64, n int) float64

// dot1x4Asm computes the dot products of the n-element vector at a against
// four rows starting at b with a stride of ldb elements, writing them to
// out. The accumulation scheme is bit-identical to dotVecAsm's.
//
//go:noescape
func dot1x4Asm(a, b *float64, ldb, n int, out *[4]float64)
