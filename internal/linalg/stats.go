package linalg

import (
	"fmt"
	"math"
	"sort"
)

// ZScoreNormalize returns a copy of v normalised to zero mean and unit
// standard deviation (the "zero-score normalization" of the paper's traffic
// vectorizer). If the standard deviation of v is zero — a tower with
// constant traffic — the returned vector is all zeros, which places it at
// the origin of the feature space rather than producing NaNs.
func ZScoreNormalize[F Float](v Vec[F]) Vec[F] {
	out := make(Vec[F], len(v))
	_ = ZScoreNormalizeInto(out, v) // lengths match by construction
	return out
}

// ZScoreNormalizeInto writes the z-score normalisation of v into dst (which
// must have the same length), the allocation-free form used when the
// destination is a row of a dataset's flat matrix backing. The deviation
// and quotient are formed in float64 and only the final value narrows, so
// float32 rows differ from their float64 counterparts by at most a handful
// of roundings. The same zero-variance convention as ZScoreNormalize
// applies.
func ZScoreNormalizeInto[F Float](dst, v Vec[F]) error {
	if len(dst) != len(v) {
		return fmt.Errorf("%w: normalize %d into %d", ErrDimensionMismatch, len(v), len(dst))
	}
	if len(v) == 0 {
		return nil
	}
	m, s := v.Mean(), v.Std()
	if s == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	for i, x := range v {
		dst[i] = F((float64(x) - m) / s)
	}
	return nil
}

// MinMaxNormalize returns a copy of v linearly rescaled to [0, 1]
// (min-max normalisation, used for POI counts in Section 3.3.2 of the
// paper). If all values are equal the result is all zeros.
func MinMaxNormalize(v Vector) Vector {
	out := make(Vector, len(v))
	if len(v) == 0 {
		return out
	}
	min, _ := v.Min()
	max, _ := v.Max()
	if max == min {
		return out
	}
	span := max - min
	for i, x := range v {
		out[i] = (x - min) / span
	}
	return out
}

// NormalizeByMax returns a copy of v divided by its maximum value,
// matching the per-tower normalisation used for the heat maps of
// Figures 4 and 5. If the maximum is not positive the result is all zeros.
func NormalizeByMax(v Vector) Vector {
	out := make(Vector, len(v))
	max, _ := v.Max()
	if max <= 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / max
	}
	return out
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of v using linear
// interpolation between order statistics. It returns 0 for an empty vector.
func Quantile(v Vector, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := v.Clone()
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SelectKth partially reorders v in place so that v[k] holds the k-th
// smallest element (0-based) — everything before it is ≤ v[k], everything
// after it is ≥ v[k] — and returns that element. It is the expected-O(n)
// quickselect used for the median of the condensed pairwise-distance
// buffer, where a full sort of N(N−1)/2 entries would dominate the kernel
// itself. It panics if k is out of range.
func SelectKth(v []float64, k int) float64 {
	if k < 0 || k >= len(v) {
		panic(fmt.Sprintf("linalg: SelectKth(%d) on %d elements", k, len(v)))
	}
	lo, hi := 0, len(v)-1
	for lo < hi {
		// Median-of-three pivot guards the common sorted/reversed inputs.
		mid := lo + (hi-lo)/2
		if v[mid] < v[lo] {
			v[mid], v[lo] = v[lo], v[mid]
		}
		if v[hi] < v[lo] {
			v[hi], v[lo] = v[lo], v[hi]
		}
		if v[hi] < v[mid] {
			v[hi], v[mid] = v[mid], v[hi]
		}
		pivot := v[mid]
		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if v[i] >= pivot {
					break
				}
			}
			for {
				j--
				if v[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			v[i], v[j] = v[j], v[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return v[k]
}

// CDF computes the empirical cumulative distribution of the values in v at
// the given probe points. For each probe p the result is the fraction of
// values ≤ p.
func CDF(v Vector, probes []float64) []float64 {
	sorted := v.Clone()
	sort.Float64s(sorted)
	out := make([]float64, len(probes))
	if len(sorted) == 0 {
		return out
	}
	for i, p := range probes {
		// Number of values ≤ p.
		n := sort.SearchFloat64s(sorted, math.Nextafter(p, math.Inf(1)))
		out[i] = float64(n) / float64(len(sorted))
	}
	return out
}

// MeanStd returns the mean and population standard deviation of the values.
func MeanStd(v Vector) (mean, std float64) {
	return v.Mean(), v.Std()
}

// CircularMeanStd returns the circular mean and circular standard deviation
// of a set of angles in radians. Phases of DFT components (Section 5.2 of
// the paper) wrap around ±π, so their dispersion must be computed on the
// circle rather than the line.
func CircularMeanStd(angles Vector) (mean, std float64) {
	if len(angles) == 0 {
		return 0, 0
	}
	var s, c float64
	for _, a := range angles {
		s += math.Sin(a)
		c += math.Cos(a)
	}
	s /= float64(len(angles))
	c /= float64(len(angles))
	mean = math.Atan2(s, c)
	r := math.Sqrt(s*s + c*c)
	if r >= 1 {
		return mean, 0
	}
	if r <= 0 {
		return mean, math.Inf(1)
	}
	std = math.Sqrt(-2 * math.Log(r))
	return mean, std
}

// WrapPhase maps an angle in radians into the interval (-π, π].
func WrapPhase(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// PhaseDistance returns the absolute circular distance between two phases,
// a value in [0, π].
func PhaseDistance(a, b float64) float64 {
	d := math.Abs(WrapPhase(a - b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
