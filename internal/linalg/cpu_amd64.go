package linalg

// cpuid executes the CPUID instruction with the given EAX/ECX inputs.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled state mask).
func xgetbv() (eax, edx uint32)

// hasAVX2FMA reports whether the CPU and OS support the 256-bit FMA
// kernels: AVX + FMA + OSXSAVE advertised, YMM state enabled by the OS
// (XCR0 bits 1 and 2), and AVX2 present.
var hasAVX2FMA = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 || c1&fmaBit == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}()
