package linalg

// KernelDescription reports which dot-product kernels this build/machine
// selected, for run headers and reproducibility logs: benchmark numbers
// and low-order result bits are only comparable between runs that used the
// same kernels.
func KernelDescription() string {
	switch {
	case useAsm && useAsmF32:
		return "AVX2+FMA (float64 + float32 assembly kernels)"
	case useAsm:
		return "AVX2+FMA (float64 assembly kernels)"
	default:
		return "portable Go kernels"
	}
}
