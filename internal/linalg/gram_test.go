package linalg

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// oracleDot is the per-pair reference the blocked kernels are validated
// against: a plain ascending-k accumulation, the exact order the micro-
// kernels promise per entry.
func oracleDot(a, b Vector) float64 {
	var s float64
	for k := range a {
		s += a[k] * b[k]
	}
	return s
}

func oracleSquared(a, b Vector) float64 {
	sq, _ := SquaredDistance(a, b)
	return sq
}

// relDiff is the Gram-trick tolerance model: absolute error measured
// against the scale of the squared norms, since the trick cancels two
// norm-sized terms.
func relDiff(got, want, scale float64) float64 {
	return math.Abs(got-want) / (1 + scale)
}

// gramShapes exercises every kernel edge: empty columns, single rows, the
// scalar tails on both axes, exact tile multiples and interiors.
var gramShapes = [][2]int{
	{1, 1}, {1, 7}, {2, 3}, {3, 0}, {4, 4}, {5, 9}, {7, 16},
	{31, 5}, {32, 8}, {33, 12}, {64, 33}, {97, 21}, {130, 3},
}

// onKernelPaths runs fn under the active kernel path and, when the
// assembly path is active, once more on the portable Go path, so both
// implementations stay covered by every property test.
func onKernelPaths(t *testing.T, fn func(t *testing.T)) {
	t.Run("active", fn)
	if useAsm {
		useAsm = false
		defer func() { useAsm = true }()
		t.Run("generic", fn)
	}
}

func TestGramIntoMatchesOracle(t *testing.T) { onKernelPaths(t, testGramIntoMatchesOracle) }

func testGramIntoMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, s := range gramShapes {
		n, d := s[0], s[1]
		x := randomMatrix(rng, n, d)
		dst := randomMatrix(rng, n, n) // pre-soiled: the kernel must overwrite
		if err := x.GramInto(dst, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := oracleDot(x.Row(i), x.Row(j))
				if got := dst.At(i, j); relDiff(got, want, math.Abs(want)) > 1e-12 {
					t.Fatalf("shape %v: gram[%d][%d] = %g, oracle %g", s, i, j, got, want)
				}
				if dst.At(i, j) != dst.At(j, i) {
					t.Fatalf("shape %v: gram not exactly symmetric at (%d,%d)", s, i, j)
				}
			}
		}
	}
}

func TestPairwiseSquaredIntoMatchesOracle(t *testing.T) {
	onKernelPaths(t, testPairwiseSquaredIntoMatchesOracle)
}

func testPairwiseSquaredIntoMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, s := range gramShapes {
		n, d := s[0], s[1]
		x := randomMatrix(rng, n, d)
		dst := randomMatrix(rng, n, n)
		norms := make(Vector, n)
		if err := PairwiseSquaredInto(dst, x, norms, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		scale := 0.0
		for _, nn := range norms {
			scale = math.Max(scale, nn)
		}
		for i := 0; i < n; i++ {
			if dst.At(i, i) != 0 {
				t.Fatalf("shape %v: diagonal[%d] = %g, want exactly 0", s, i, dst.At(i, i))
			}
			for j := 0; j < n; j++ {
				want := oracleSquared(x.Row(i), x.Row(j))
				if got := dst.At(i, j); relDiff(got, want, scale) > 1e-9 {
					t.Fatalf("shape %v: d²[%d][%d] = %g, oracle %g", s, i, j, got, want)
				}
				if dst.At(i, j) < 0 {
					t.Fatalf("shape %v: negative squared distance at (%d,%d)", s, i, j)
				}
			}
		}
	}
}

func TestPairwiseSquaredCondensedMatchesOracle(t *testing.T) {
	onKernelPaths(t, testPairwiseSquaredCondensedMatchesOracle)
}

func testPairwiseSquaredCondensedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, s := range gramShapes {
		n, d := s[0], s[1]
		if n < 2 {
			continue
		}
		x := randomMatrix(rng, n, d)
		dst := make([]float64, n*(n-1)/2)
		norms := make(Vector, n)
		if err := PairwiseSquaredCondensed(dst, x, norms, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		scale := 0.0
		for _, nn := range norms {
			scale = math.Max(scale, nn)
		}
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := oracleSquared(x.Row(i), x.Row(j))
				if got := dst[idx]; relDiff(got, want, scale) > 1e-9 {
					t.Fatalf("shape %v: condensed d²(%d,%d) = %g, oracle %g", s, i, j, got, want)
				}
				idx++
			}
		}
	}
}

func TestCrossSquaredIntoMatchesOracle(t *testing.T) {
	onKernelPaths(t, testCrossSquaredIntoMatchesOracle)
}

func testCrossSquaredIntoMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	shapes := [][3]int{{1, 1, 1}, {3, 2, 4}, {9, 5, 3}, {40, 5, 17}, {70, 33, 6}, {100, 4, 1008}}
	for _, s := range shapes {
		n, k, d := s[0], s[1], s[2]
		x := randomMatrix(rng, n, d)
		y := randomMatrix(rng, k, d)
		dst := randomMatrix(rng, n, k)
		xn, yn := make(Vector, n), make(Vector, k)
		if err := RowNormsSquaredInto(xn, x); err != nil {
			t.Fatal(err)
		}
		if err := RowNormsSquaredInto(yn, y); err != nil {
			t.Fatal(err)
		}
		if err := CrossSquaredInto(dst, x, y, xn, yn, 1); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		scale := 0.0
		for _, nn := range append(xn.Clone(), yn...) {
			scale = math.Max(scale, nn)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				want := oracleSquared(x.Row(i), y.Row(j))
				if got := dst.At(i, j); relDiff(got, want, scale) > 1e-9 {
					t.Fatalf("shape %v: cross d²[%d][%d] = %g, oracle %g", s, i, j, got, want)
				}
			}
		}
	}
}

// Identical rows must produce an exactly-zero Gram-trick distance: the norm
// and the cross dot product run the same operation sequence, so the
// cancellation is exact, which DaviesBouldin's coincident-centroid handling
// relies on.
func TestPairwiseSquaredIdenticalRowsExactZero(t *testing.T) {
	onKernelPaths(t, testPairwiseSquaredIdenticalRowsExactZero)
}

func testPairwiseSquaredIdenticalRowsExactZero(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	x := NewMatrix(37, 501)
	row := make(Vector, 501)
	for i := range row {
		row[i] = rng.NormFloat64() * 1e3
	}
	for i := 0; i < x.Rows; i++ {
		copy(x.Row(i), row)
	}
	dst := NewMatrix(x.Rows, x.Rows)
	if err := PairwiseSquaredInto(dst, x, nil, 0); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst.Data {
		if v != 0 {
			t.Fatalf("identical rows produced nonzero squared distance %g", v)
		}
	}
}

// Property: every blocked kernel is bit-identical for any worker count —
// each output entry is computed by exactly one worker in a fixed order.
func TestBlockedKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	onKernelPaths(t, testBlockedKernelsBitIdenticalAcrossWorkers)
}

func testBlockedKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	x := randomMatrix(rng, 131, 57)
	y := randomMatrix(rng, 7, 57)

	gramBase := NewMatrix(x.Rows, x.Rows)
	pairBase := NewMatrix(x.Rows, x.Rows)
	condBase := make([]float64, x.Rows*(x.Rows-1)/2)
	crossBase := NewMatrix(x.Rows, y.Rows)
	if err := x.GramInto(gramBase, 1); err != nil {
		t.Fatal(err)
	}
	if err := PairwiseSquaredInto(pairBase, x, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := PairwiseSquaredCondensed(condBase, x, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := CrossSquaredInto(crossBase, x, y, nil, nil, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts() {
		gram := randomMatrix(rng, x.Rows, x.Rows)
		pair := randomMatrix(rng, x.Rows, x.Rows)
		cond := make([]float64, len(condBase))
		cross := randomMatrix(rng, x.Rows, y.Rows)
		if err := x.GramInto(gram, workers); err != nil {
			t.Fatal(err)
		}
		if err := PairwiseSquaredInto(pair, x, nil, workers); err != nil {
			t.Fatal(err)
		}
		if err := PairwiseSquaredCondensed(cond, x, nil, workers); err != nil {
			t.Fatal(err)
		}
		if err := CrossSquaredInto(cross, x, y, nil, nil, workers); err != nil {
			t.Fatal(err)
		}
		for i := range gramBase.Data {
			if gram.Data[i] != gramBase.Data[i] {
				t.Fatalf("workers %d: GramInto element %d differs from serial", workers, i)
			}
			if pair.Data[i] != pairBase.Data[i] {
				t.Fatalf("workers %d: PairwiseSquaredInto element %d differs from serial", workers, i)
			}
		}
		for i := range condBase {
			if cond[i] != condBase[i] {
				t.Fatalf("workers %d: condensed element %d differs from serial", workers, i)
			}
		}
		for i := range crossBase.Data {
			if cross.Data[i] != crossBase.Data[i] {
				t.Fatalf("workers %d: CrossSquaredInto element %d differs from serial", workers, i)
			}
		}
	}
}

// The assembly and portable kernels use different accumulation orders, so
// they are not bit-identical — but they must agree to FP-reassociation
// precision on the same input.
func TestAsmAndGenericKernelsAgree(t *testing.T) {
	if !useAsm {
		t.Skip("assembly path not active on this machine")
	}
	rng := rand.New(rand.NewSource(109))
	for _, s := range gramShapes {
		n, d := s[0], s[1]
		x := randomMatrix(rng, n, d)
		asmDst := NewMatrix(n, n)
		genDst := NewMatrix(n, n)
		if err := PairwiseSquaredInto(asmDst, x, nil, 1); err != nil {
			t.Fatal(err)
		}
		useAsm = false
		err := PairwiseSquaredInto(genDst, x, nil, 1)
		useAsm = true
		if err != nil {
			t.Fatal(err)
		}
		for i := range asmDst.Data {
			if relDiff(asmDst.Data[i], genDst.Data[i], math.Abs(genDst.Data[i])+float64(d)) > 1e-9 {
				t.Fatalf("shape %v: asm %g vs generic %g at %d", s, asmDst.Data[i], genDst.Data[i], i)
			}
		}
	}
}

func TestBlockedKernelDimensionErrors(t *testing.T) {
	x := NewMatrix(10, 4)
	if err := x.GramInto(NewMatrix(9, 10), 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("gram wrong dst: %v", err)
	}
	if err := PairwiseSquaredInto(NewMatrix(10, 9), x, nil, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("pairwise wrong dst: %v", err)
	}
	if err := PairwiseSquaredCondensed(make([]float64, 44), x, nil, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("condensed wrong buffer: %v", err)
	}
	if err := CrossSquaredInto(NewMatrix(10, 3), x, NewMatrix(3, 5), nil, nil, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("cross mismatched cols: %v", err)
	}
	if err := CrossSquaredInto(NewMatrix(9, 3), x, NewMatrix(3, 4), nil, nil, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("cross wrong dst: %v", err)
	}
	if err := RowNormsSquaredInto(make(Vector, 9), x); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("norms wrong length: %v", err)
	}
}

// The warmed serial kernels must not allocate: they are the inner loop of
// the clustering engine, called once per restart/iteration with reused
// scratch.
func TestBlockedKernelsZeroAllocWarmed(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	x := randomMatrix(rng, 100, 64)
	y := randomMatrix(rng, 5, 64)
	cond := make([]float64, x.Rows*(x.Rows-1)/2)
	norms := make(Vector, x.Rows)
	ynorms := make(Vector, y.Rows)
	if err := RowNormsSquaredInto(norms, x); err != nil {
		t.Fatal(err)
	}
	if err := RowNormsSquaredInto(ynorms, y); err != nil {
		t.Fatal(err)
	}
	cross := NewMatrix(x.Rows, y.Rows)
	full := NewMatrix(x.Rows, x.Rows)

	if n := testing.AllocsPerRun(10, func() {
		if err := PairwiseSquaredCondensed(cond, x, norms, 1); err != nil {
			t.Fatal(err)
		}
		SquaredDistancesSqrtInPlace(cond, 1)
	}); n != 0 {
		t.Errorf("condensed kernel: %v allocs/op warmed, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		if err := CrossSquaredInto(cross, x, y, norms, ynorms, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("cross kernel: %v allocs/op warmed, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		if err := PairwiseSquaredInto(full, x, norms, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("full pairwise kernel: %v allocs/op warmed, want 0", n)
	}
}

func TestRowsMatrixAliasesContiguousRows(t *testing.T) {
	m := NewMatrix(6, 5)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	views := m.RowViews()
	got, err := RowsMatrix(views)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 6 || got.Cols != 5 {
		t.Fatalf("aliased shape %dx%d", got.Rows, got.Cols)
	}
	got.Data[0] = -1
	if m.Data[0] != -1 {
		t.Error("RowsMatrix of row views should alias, not copy")
	}

	// A subset of views in order is still contiguous only when adjacent.
	sub, err := RowsMatrix(views[2:5])
	if err != nil {
		t.Fatal(err)
	}
	sub.Data[0] = -2
	if m.At(2, 0) != -2 {
		t.Error("adjacent row views should alias")
	}

	// Separately allocated rows must be packed, not aliased.
	loose := []Vector{{1, 2}, {3, 4}}
	packed, err := RowsMatrix(loose)
	if err != nil {
		t.Fatal(err)
	}
	packed.Data[0] = 99
	if loose[0][0] != 1 {
		t.Error("packed matrix must not alias loose rows")
	}

	// Non-adjacent views (every other row) must pack too.
	gappy := []Vector{views[0], views[2]}
	g, err := RowsMatrix(gappy)
	if err != nil {
		t.Fatal(err)
	}
	g.Data[0] = 123
	if m.At(0, 0) == 123 {
		t.Error("non-adjacent views must be packed")
	}

	if _, err := RowsMatrix[float64](nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty rows: %v", err)
	}
	if _, err := RowsMatrix([]Vector{{1, 2}, {1}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged rows: %v", err)
	}
}

func TestSelectKth(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	for _, n := range []int{1, 2, 3, 10, 101, 1000} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		// Include duplicates and pre-sorted runs.
		if n > 4 {
			copy(v[n/2:], v[:n/4])
			sort.Float64s(v[:n/3])
		}
		want := append([]float64(nil), v...)
		sort.Float64s(want)
		for _, k := range []int{0, n / 3, n / 2, n - 1} {
			got := SelectKth(append([]float64(nil), v...), k)
			if got != want[k] {
				t.Fatalf("n=%d k=%d: SelectKth = %g, sorted %g", n, k, got, want[k])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range k should panic")
		}
	}()
	SelectKth([]float64{1}, 1)
}
