package linalg

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/panicsafe"
)

// Parallel matrix kernels for the modeling engine.
//
// Both kernels partition their output into fixed-size row blocks that
// workers claim from a shared atomic counter. Every output element is
// computed by exactly one worker using the same inner-loop order as the
// serial MulInto/TransposeInto, so the results are bit-identical to the
// serial kernels for ANY worker count — the property the deterministic
// modeling engine (internal/nmf, internal/cluster) is built on.
//
// Every pool is fault-tolerant: a panic inside a worker is recovered and
// returned as a *panicsafe.Error instead of crashing the process, and
// the Ctx kernel variants observe context cancellation at block/strip
// granularity — coarse enough to keep the hot loops free of per-element
// checks, fine enough that cancellation returns within one block of
// work. On either early exit every worker drains through the shared
// stop flag before the kernel returns, so no goroutine outlives its
// call.

// parallelBlockRows is the number of output rows per work unit. Blocks keep
// the atomic-counter contention negligible while still load-balancing
// uneven rows. It must stay a multiple of the 4-row unroll of mulRows so
// the parallel schedule groups exactly the rows the serial kernel groups —
// the bit-identity contract depends on it.
const parallelBlockRows = 16

// parallelMinWork is the approximate flop count below which the goroutine
// fan-out costs more than it saves and the serial kernel is used directly.
const parallelMinWork = 1 << 15

// ResolveWorkers normalises a worker-count option: values ≤ 0 mean "use
// every core" (GOMAXPROCS).
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// parallelRowBlocks runs fn over [0, rows) split into parallelBlockRows-size
// blocks claimed by `workers` goroutines. fn must be safe to call
// concurrently for disjoint row ranges. A worker panic is converted to a
// returned error; ctx cancellation stops the pool at block granularity and
// returns ctx.Err(). Either way every worker has exited by return.
func parallelRowBlocks(ctx context.Context, rows, workers int, fn func(lo, hi int)) error {
	blocks := (rows + parallelBlockRows - 1) / parallelBlockRows
	if workers > blocks {
		workers = blocks
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		panicsafe.Go(func() error {
			for {
				if stop.Load() || (done != nil && ctx.Err() != nil) {
					stop.Store(true)
					return nil
				}
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return nil
				}
				lo := b * parallelBlockRows
				hi := lo + parallelBlockRows
				if hi > rows {
					hi = rows
				}
				fn(lo, hi)
			}
		}, fail, wg.Done)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if done != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ParallelMulInto writes m · other into dst using up to `workers`
// goroutines (≤ 0 means GOMAXPROCS). dst must be Rows×other.Cols and must
// not share storage with m or other. The result is bit-identical to
// MulInto for any worker count: output rows are partitioned into blocks and
// each row is accumulated in the same k-then-j order as the serial kernel.
func (m *Mat[F]) ParallelMulInto(dst, other *Mat[F], workers int) error {
	return m.ParallelMulIntoCtx(context.Background(), dst, other, workers)
}

// ParallelMulIntoCtx is ParallelMulInto with cancellation: ctx is observed
// between row blocks (and once up front on the serial path), and a worker
// panic comes back as an error instead of killing the process.
func (m *Mat[F]) ParallelMulIntoCtx(ctx context.Context, dst, other *Mat[F], workers int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.Cols != other.Rows {
		return fmt.Errorf("%w: %dx%d times %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	if dst.Rows != m.Rows || dst.Cols != other.Cols {
		return fmt.Errorf("%w: product %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, other.Cols, dst.Rows, dst.Cols)
	}
	workers = ResolveWorkers(workers)
	if workers == 1 || m.Rows*m.Cols*other.Cols < parallelMinWork {
		return m.MulInto(dst, other)
	}
	return parallelRowBlocks(ctx, m.Rows, workers, func(lo, hi int) {
		mulRows(dst, m, other, lo, hi)
	})
}

// ParallelTransposeInto writes mᵀ into dst using up to `workers` goroutines
// (≤ 0 means GOMAXPROCS). dst must be Cols×Rows and must not share storage
// with m. Each destination element is written exactly once, so the result
// is bit-identical to TransposeInto for any worker count.
func (m *Mat[F]) ParallelTransposeInto(dst *Mat[F], workers int) error {
	return m.ParallelTransposeIntoCtx(context.Background(), dst, workers)
}

// ParallelTransposeIntoCtx is ParallelTransposeInto with cancellation and
// worker panic recovery; see ParallelMulIntoCtx for the contract.
func (m *Mat[F]) ParallelTransposeIntoCtx(ctx context.Context, dst *Mat[F], workers int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		return fmt.Errorf("%w: transpose of %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, dst.Rows, dst.Cols)
	}
	workers = ResolveWorkers(workers)
	if workers == 1 || m.Rows*m.Cols < parallelMinWork {
		return m.TransposeInto(dst)
	}
	// Partition the SOURCE rows: worker w copies rows [lo,hi) of m into
	// columns [lo,hi) of dst. Disjoint writes, no synchronisation needed.
	return parallelRowBlocks(ctx, m.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, x := range row {
				dst.Data[j*dst.Cols+i] = x
			}
		}
	})
}
