package linalg

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel matrix kernels for the modeling engine.
//
// Both kernels partition their output into fixed-size row blocks that
// workers claim from a shared atomic counter. Every output element is
// computed by exactly one worker using the same inner-loop order as the
// serial MulInto/TransposeInto, so the results are bit-identical to the
// serial kernels for ANY worker count — the property the deterministic
// modeling engine (internal/nmf, internal/cluster) is built on.

// parallelBlockRows is the number of output rows per work unit. Blocks keep
// the atomic-counter contention negligible while still load-balancing
// uneven rows. It must stay a multiple of the 4-row unroll of mulRows so
// the parallel schedule groups exactly the rows the serial kernel groups —
// the bit-identity contract depends on it.
const parallelBlockRows = 16

// parallelMinWork is the approximate flop count below which the goroutine
// fan-out costs more than it saves and the serial kernel is used directly.
const parallelMinWork = 1 << 15

// ResolveWorkers normalises a worker-count option: values ≤ 0 mean "use
// every core" (GOMAXPROCS).
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// parallelRowBlocks runs fn over [0, rows) split into parallelBlockRows-size
// blocks claimed by `workers` goroutines. fn must be safe to call
// concurrently for disjoint row ranges.
func parallelRowBlocks(rows, workers int, fn func(lo, hi int)) {
	blocks := (rows + parallelBlockRows - 1) / parallelBlockRows
	if workers > blocks {
		workers = blocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * parallelBlockRows
				hi := lo + parallelBlockRows
				if hi > rows {
					hi = rows
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ParallelMulInto writes m · other into dst using up to `workers`
// goroutines (≤ 0 means GOMAXPROCS). dst must be Rows×other.Cols and must
// not share storage with m or other. The result is bit-identical to
// MulInto for any worker count: output rows are partitioned into blocks and
// each row is accumulated in the same k-then-j order as the serial kernel.
func (m *Mat[F]) ParallelMulInto(dst, other *Mat[F], workers int) error {
	workers = ResolveWorkers(workers)
	if workers == 1 || m.Rows*m.Cols*other.Cols < parallelMinWork {
		return m.MulInto(dst, other)
	}
	if m.Cols != other.Rows {
		return fmt.Errorf("%w: %dx%d times %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	if dst.Rows != m.Rows || dst.Cols != other.Cols {
		return fmt.Errorf("%w: product %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, other.Cols, dst.Rows, dst.Cols)
	}
	parallelRowBlocks(m.Rows, workers, func(lo, hi int) {
		mulRows(dst, m, other, lo, hi)
	})
	return nil
}

// ParallelTransposeInto writes mᵀ into dst using up to `workers` goroutines
// (≤ 0 means GOMAXPROCS). dst must be Cols×Rows and must not share storage
// with m. Each destination element is written exactly once, so the result
// is bit-identical to TransposeInto for any worker count.
func (m *Mat[F]) ParallelTransposeInto(dst *Mat[F], workers int) error {
	workers = ResolveWorkers(workers)
	if workers == 1 || m.Rows*m.Cols < parallelMinWork {
		return m.TransposeInto(dst)
	}
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		return fmt.Errorf("%w: transpose of %dx%d into %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, dst.Rows, dst.Cols)
	}
	// Partition the SOURCE rows: worker w copies rows [lo,hi) of m into
	// columns [lo,hi) of dst. Disjoint writes, no synchronisation needed.
	parallelRowBlocks(m.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, x := range row {
				dst.Data[j*dst.Cols+i] = x
			}
		}
	})
	return nil
}
