// Package freqdomain implements the frequency-domain representation of
// Section 5 of the paper: per-tower spectral features at the three
// principal components (one week, one day, half a day), variance of the
// spectrum across towers, the search for the most representative tower of
// each pattern, and the decomposition of an arbitrary tower into a convex
// combination of the four primary components.
package freqdomain

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cluster"
	"repro/internal/dsp"
	"repro/internal/linalg"
)

// Errors returned by the feature extraction functions.
var (
	ErrNoVectors = errors.New("freqdomain: no traffic vectors")
	ErrBadShape  = errors.New("freqdomain: inconsistent vector shape")
)

// Features holds the amplitude and phase of one tower's traffic spectrum at
// the three principal frequency components. Amplitudes are normalised by
// the vector length so they are comparable across traces of different
// lengths; phases are in (-π, π].
type Features struct {
	// Index is the row of the tower in the originating dataset.
	Index int

	AmpWeek   float64 // |X[k_week]| / N
	PhaseWeek float64 // arg X[k_week]

	AmpDay   float64 // |X[k_day]| / N
	PhaseDay float64 // arg X[k_day]

	AmpHalfDay   float64 // |X[k_halfday]| / N
	PhaseHalfDay float64 // arg X[k_halfday]
}

// Vector3 returns the three-dimensional feature used by the paper for the
// polygon visualisation and the convex decomposition: amplitude of one day,
// phase of one day, amplitude of half a day (Section 5.3).
func (f Features) Vector3() linalg.Vector {
	return linalg.Vector{f.AmpDay, f.PhaseDay, f.AmpHalfDay}
}

// Vector6 returns all six spectral coordinates.
func (f Features) Vector6() linalg.Vector {
	return linalg.Vector{f.AmpWeek, f.PhaseWeek, f.AmpDay, f.PhaseDay, f.AmpHalfDay, f.PhaseHalfDay}
}

// Extract computes the spectral features of every traffic vector. The
// vectors must all have the same length and cover nDays whole days (a
// multiple of 7 so the weekly bin exists). It draws an FFT plan for the
// vector length from the package-level pool; callers that already hold a
// plan (core.Analyze) should use ExtractPlan.
func Extract(vectors []linalg.Vector, nDays int) ([]Features, error) {
	if len(vectors) == 0 {
		return nil, ErrNoVectors
	}
	plan, err := dsp.AcquirePlan(len(vectors[0]))
	if err != nil {
		return nil, err
	}
	defer plan.Release()
	return ExtractPlan(plan, vectors, nDays)
}

// ExtractPlan is Extract using the caller's FFT plan (whose length must
// match the vectors). The per-tower transforms are fanned across the plan's
// batch worker pool.
func ExtractPlan(plan *dsp.Plan, vectors []linalg.Vector, nDays int) ([]Features, error) {
	return ExtractPlanContext(context.Background(), plan, vectors, nDays)
}

// ExtractPlanContext is ExtractPlan with the cancellation and worker
// fault isolation of dsp.BatchTransformContext.
func ExtractPlanContext(ctx context.Context, plan *dsp.Plan, vectors []linalg.Vector, nDays int) ([]Features, error) {
	if len(vectors) == 0 {
		return nil, ErrNoVectors
	}
	n := plan.N()
	week, day, half, err := dsp.PrincipalBins(n, nDays)
	if err != nil {
		return nil, err
	}
	signals := make([][]float64, len(vectors))
	for i, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("%w: vector %d has %d samples, want %d", ErrBadShape, i, len(v), n)
		}
		signals[i] = v
	}
	out := make([]Features, len(vectors))
	err = plan.BatchTransformContext(ctx, signals, func(i int, spectrum []complex128) error {
		scale := 1 / float64(n)
		cw, cd, ch := spectrum[week], spectrum[day], spectrum[half]
		out[i] = Features{
			Index:        i,
			AmpWeek:      cmplx.Abs(cw) * scale,
			PhaseWeek:    cmplx.Phase(cw),
			AmpDay:       cmplx.Abs(cd) * scale,
			PhaseDay:     cmplx.Phase(cd),
			AmpHalfDay:   cmplx.Abs(ch) * scale,
			PhaseHalfDay: cmplx.Phase(ch),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AmplitudeVariance returns, for each frequency bin up to maxBin
// (exclusive), the variance across towers of the normalised DFT amplitude —
// the statistic plotted in Figure 13. The paper's observation is that the
// variance spikes at the three principal bins, which is what makes them the
// most discriminating features.
func AmplitudeVariance(vectors []linalg.Vector, maxBin int) ([]float64, error) {
	if len(vectors) == 0 {
		return nil, ErrNoVectors
	}
	plan, err := dsp.AcquirePlan(len(vectors[0]))
	if err != nil {
		return nil, err
	}
	defer plan.Release()
	return AmplitudeVariancePlan(plan, vectors, maxBin)
}

// AmplitudeVariancePlan is AmplitudeVariance using the caller's FFT plan,
// fanning the per-tower transforms across the batch worker pool.
func AmplitudeVariancePlan(plan *dsp.Plan, vectors []linalg.Vector, maxBin int) ([]float64, error) {
	if len(vectors) == 0 {
		return nil, ErrNoVectors
	}
	n := plan.N()
	if maxBin <= 0 || maxBin > n {
		return nil, fmt.Errorf("freqdomain: maxBin %d out of range (0,%d]", maxBin, n)
	}
	signals := make([][]float64, len(vectors))
	for i, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("%w: vector %d has %d samples, want %d", ErrBadShape, i, len(v), n)
		}
		signals[i] = v
	}
	amps := make([]linalg.Vector, maxBin)
	for k := range amps {
		amps[k] = make(linalg.Vector, len(vectors))
	}
	err := plan.BatchTransform(signals, func(i int, spectrum []complex128) error {
		for k := 0; k < maxBin; k++ {
			re, im := real(spectrum[k]), imag(spectrum[k])
			amps[k][i] = math.Sqrt(re*re+im*im) / float64(n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxBin)
	for k := range out {
		out[k] = amps[k].Variance()
	}
	return out, nil
}

// ComponentStats summarises the distribution of one spectral component over
// a group of towers (one cell of Figure 16). Phase statistics are circular.
type ComponentStats struct {
	AmpMean, AmpStd     float64
	PhaseMean, PhaseStd float64
}

// GroupStats computes per-group statistics of the three principal
// components. groups maps a group index to the feature indices belonging to
// it (typically the members of each traffic-pattern cluster). The result is
// indexed [group][component] with components ordered week, day, half-day.
func GroupStats(features []Features, groups [][]int) ([][3]ComponentStats, error) {
	out := make([][3]ComponentStats, len(groups))
	for g, members := range groups {
		if len(members) == 0 {
			continue
		}
		amps := [3]linalg.Vector{}
		phases := [3]linalg.Vector{}
		for c := 0; c < 3; c++ {
			amps[c] = make(linalg.Vector, 0, len(members))
			phases[c] = make(linalg.Vector, 0, len(members))
		}
		for _, idx := range members {
			if idx < 0 || idx >= len(features) {
				return nil, fmt.Errorf("freqdomain: feature index %d out of range [0,%d)", idx, len(features))
			}
			f := features[idx]
			amps[0] = append(amps[0], f.AmpWeek)
			amps[1] = append(amps[1], f.AmpDay)
			amps[2] = append(amps[2], f.AmpHalfDay)
			phases[0] = append(phases[0], f.PhaseWeek)
			phases[1] = append(phases[1], f.PhaseDay)
			phases[2] = append(phases[2], f.PhaseHalfDay)
		}
		for c := 0; c < 3; c++ {
			pm, ps := linalg.CircularMeanStd(phases[c])
			out[g][c] = ComponentStats{
				AmpMean:   amps[c].Mean(),
				AmpStd:    amps[c].Std(),
				PhaseMean: pm,
				PhaseStd:  ps,
			}
		}
	}
	return out, nil
}

// RepOptions tune the representative-tower search.
type RepOptions struct {
	// DensityRadius is the feature-space radius used to measure local
	// density (non-noise check). Zero selects 15 % of the median pairwise
	// feature distance.
	DensityRadius float64
	// MinDensity is the minimum number of same-cluster towers (excluding
	// the candidate) that must lie within DensityRadius for a candidate to
	// be considered non-noise. Zero selects max(2, 1 % of the cluster).
	MinDensity int
}

// RepresentativeTowers finds, for each cluster, the most representative
// tower in the sense of Section 5.2 of the paper: not the centroid but the
// non-noise point farthest from the towers of every other cluster in the
// three-dimensional feature space. It returns one feature index per cluster
// (-1 for empty clusters).
func RepresentativeTowers(features []Features, assign *cluster.Assignment, opts RepOptions) ([]int, error) {
	if len(features) == 0 {
		return nil, ErrNoVectors
	}
	if len(assign.Labels) != len(features) {
		return nil, fmt.Errorf("freqdomain: %d labels for %d features", len(assign.Labels), len(features))
	}
	points := make([]linalg.Vector, len(features))
	for i, f := range features {
		points[i] = f.Vector3()
	}
	radius := opts.DensityRadius
	if radius <= 0 {
		radius = 0.15 * medianPairwiseDistance(points)
		if radius <= 0 {
			radius = 1e-9
		}
	}

	members := assign.Members()
	out := make([]int, assign.K)
	for c := range out {
		out[c] = -1
	}
	for c, mem := range members {
		if len(mem) == 0 {
			continue
		}
		minDensity := opts.MinDensity
		if minDensity <= 0 {
			minDensity = len(mem) / 100
			if minDensity < 2 {
				minDensity = 2
			}
		}
		bestIdx, bestScore := -1, math.Inf(-1)
		var fallbackIdx int = mem[0]
		var fallbackScore = math.Inf(-1)
		for _, i := range mem {
			// Density within the own cluster.
			density := 0
			for _, j := range mem {
				if i == j {
					continue
				}
				d, err := linalg.Distance(points[i], points[j])
				if err != nil {
					return nil, err
				}
				if d <= radius {
					density++
				}
			}
			// Distance to the nearest tower of any other cluster.
			nearestOther := math.Inf(1)
			for j := range points {
				if assign.Labels[j] == c {
					continue
				}
				d, err := linalg.Distance(points[i], points[j])
				if err != nil {
					return nil, err
				}
				if d < nearestOther {
					nearestOther = d
				}
			}
			if math.IsInf(nearestOther, 1) {
				// Single-cluster corner case: fall back to density.
				nearestOther = float64(density)
			}
			if nearestOther > fallbackScore {
				fallbackScore, fallbackIdx = nearestOther, i
			}
			if density < minDensity {
				continue
			}
			if nearestOther > bestScore {
				bestScore, bestIdx = nearestOther, i
			}
		}
		if bestIdx == -1 {
			// No candidate passed the density filter (tiny cluster); use
			// the unfiltered best so the caller still gets a representative.
			bestIdx = fallbackIdx
		}
		out[c] = bestIdx
	}
	return out, nil
}

// medianPairwiseDistance estimates the scale of the feature space. For
// large inputs it subsamples to bound the O(N²) cost. The sampled points
// run through the blocked condensed distance kernel and the median comes
// from a quickselect over the squared distances — no full sort, no
// per-pair appends. Because sqrt is monotone, selecting the middle order
// statistics of the squared distances and interpolating their roots is
// exactly Quantile(dists, 0.5) over the per-pair form, up to the
// Gram-trick's ≤1e-9 relative error on each distance.
func medianPairwiseDistance(points []linalg.Vector) float64 {
	const maxSample = 300
	step := 1
	if len(points) > maxSample {
		step = len(points) / maxSample
	}
	sampled := make([]linalg.Vector, 0, (len(points)+step-1)/step)
	for i := 0; i < len(points); i += step {
		sampled = append(sampled, points[i])
	}
	m := len(sampled)
	if m < 2 {
		return 0
	}
	x, err := linalg.RowsMatrix(sampled)
	if err != nil {
		return 0
	}
	d2 := make([]float64, m*(m-1)/2)
	norms := make(linalg.Vector, m)
	// The sample is ≤ 300 points of 3-dimensional features: the kernel's
	// serial path is already instant, so no fan-out.
	if err := linalg.PairwiseSquaredCondensed(d2, x, norms, 1); err != nil {
		return 0
	}
	pos := 0.5 * float64(len(d2)-1)
	lo := int(math.Floor(pos))
	vlo := linalg.SelectKth(d2, lo)
	if lo == int(math.Ceil(pos)) {
		return math.Sqrt(vlo)
	}
	// The upper order statistic is the minimum of the partition's tail.
	vhi := d2[lo+1]
	for _, v := range d2[lo+1:] {
		if v < vhi {
			vhi = v
		}
	}
	frac := pos - float64(lo)
	return math.Sqrt(vlo)*(1-frac) + math.Sqrt(vhi)*frac
}
