package freqdomain

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// medianPairwiseOracle is the per-pair, fully-sorting implementation the
// quickselect-over-condensed-kernel version replaced.
func medianPairwiseOracle(points []linalg.Vector) float64 {
	const maxSample = 300
	step := 1
	if len(points) > maxSample {
		step = len(points) / maxSample
	}
	var dists linalg.Vector
	for i := 0; i < len(points); i += step {
		for j := i + step; j < len(points); j += step {
			d, err := linalg.Distance(points[i], points[j])
			if err != nil {
				return 0
			}
			dists = append(dists, d)
		}
	}
	if len(dists) == 0 {
		return 0
	}
	return linalg.Quantile(dists, 0.5)
}

// Property: the kernel+quickselect median agrees with the sort-everything
// per-pair oracle — including the subsampled large-input path, both
// interpolation parities, and the degenerate sizes.
func TestMedianPairwiseDistanceMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{0, 1, 2, 3, 4, 17, 50, 299, 301, 1200} {
		points := make([]linalg.Vector, n)
		for i := range points {
			points[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64() * 3, rng.Float64()}
		}
		got := medianPairwiseDistance(points)
		want := medianPairwiseOracle(points)
		if diff := math.Abs(got - want); diff > 1e-9*(1+want) {
			t.Errorf("n=%d: median %g, oracle %g", n, got, want)
		}
	}
}

// The median must not allocate one slice per pair: a single condensed
// buffer plus the sample slice is the whole working set.
func TestMedianPairwiseDistanceAllocsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	points := make([]linalg.Vector, 200)
	for i := range points {
		points[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	allocs := testing.AllocsPerRun(5, func() {
		medianPairwiseDistance(points)
	})
	// Sample slice + packed matrix + condensed buffer + norms, not O(N²).
	if allocs > 10 {
		t.Errorf("medianPairwiseDistance allocated %v times, want a small constant", allocs)
	}
}
