package freqdomain

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/linalg"
)

// tone builds an nDays-day signal at slotsPerDay resolution containing a
// daily component with the given amplitude and phase plus a half-day
// component.
func tone(nDays, slotsPerDay int, dayAmp, dayPhase, halfAmp float64) linalg.Vector {
	n := nDays * slotsPerDay
	out := make(linalg.Vector, n)
	dayBin := float64(nDays)
	halfBin := float64(2 * nDays)
	for i := 0; i < n; i++ {
		t := float64(i)
		out[i] = dayAmp*math.Cos(2*math.Pi*dayBin*t/float64(n)+dayPhase) +
			halfAmp*math.Cos(2*math.Pi*halfBin*t/float64(n))
	}
	return out
}

func TestExtractKnownTone(t *testing.T) {
	const nDays, perDay = 7, 144
	// cos(2π·k·n/N + φ) has DFT value (N/2)·e^{iφ} at bin k, so the
	// normalised amplitude is dayAmp/2 and the phase is φ.
	v := tone(nDays, perDay, 2.0, 0.7, 0.5)
	feats, err := Extract([]linalg.Vector{v}, nDays)
	if err != nil {
		t.Fatal(err)
	}
	f := feats[0]
	if math.Abs(f.AmpDay-1.0) > 1e-6 {
		t.Errorf("AmpDay = %g, want 1.0", f.AmpDay)
	}
	if math.Abs(f.PhaseDay-0.7) > 1e-6 {
		t.Errorf("PhaseDay = %g, want 0.7", f.PhaseDay)
	}
	if math.Abs(f.AmpHalfDay-0.25) > 1e-6 {
		t.Errorf("AmpHalfDay = %g, want 0.25", f.AmpHalfDay)
	}
	if f.AmpWeek > 1e-6 {
		t.Errorf("AmpWeek = %g, want ~0 (no weekly component)", f.AmpWeek)
	}
	if f.Index != 0 {
		t.Errorf("Index = %d, want 0", f.Index)
	}
	v3 := f.Vector3()
	if len(v3) != 3 || v3[0] != f.AmpDay || v3[1] != f.PhaseDay || v3[2] != f.AmpHalfDay {
		t.Errorf("Vector3 = %v", v3)
	}
	if len(f.Vector6()) != 6 {
		t.Error("Vector6 should have six entries")
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(nil, 7); !errors.Is(err, ErrNoVectors) {
		t.Errorf("no vectors: %v", err)
	}
	ok := tone(7, 144, 1, 0, 0)
	ragged := []linalg.Vector{ok, ok[:100]}
	if _, err := Extract(ragged, 7); !errors.Is(err, ErrBadShape) {
		t.Errorf("ragged: %v", err)
	}
	if _, err := Extract([]linalg.Vector{ok}, 6); err == nil {
		t.Error("non-whole-week coverage should fail")
	}
}

func TestAmplitudeVariancePeaksAtPrincipalBins(t *testing.T) {
	const nDays, perDay = 7, 144
	rng := rand.New(rand.NewSource(61))
	// Towers differ strongly in their daily and half-day components but
	// share everything else, so the variance must spike at bins 7 and 14.
	var vectors []linalg.Vector
	for i := 0; i < 20; i++ {
		v := tone(nDays, perDay, rng.Float64()*3, 0, rng.Float64())
		vectors = append(vectors, v)
	}
	variance, err := AmplitudeVariance(vectors, 30)
	if err != nil {
		t.Fatal(err)
	}
	dayBin, halfBin := nDays, 2*nDays
	for k, v := range variance {
		if k == dayBin || k == halfBin || k == 0 {
			continue
		}
		if v > variance[dayBin] {
			t.Errorf("variance at bin %d (%g) exceeds daily bin (%g)", k, v, variance[dayBin])
		}
	}
	if variance[halfBin] <= 0 {
		t.Error("half-day variance should be positive")
	}
	if _, err := AmplitudeVariance(nil, 10); !errors.Is(err, ErrNoVectors) {
		t.Errorf("no vectors: %v", err)
	}
	if _, err := AmplitudeVariance(vectors, 0); err == nil {
		t.Error("maxBin 0 should fail")
	}
	if _, err := AmplitudeVariance(vectors, 1e6); err == nil {
		t.Error("huge maxBin should fail")
	}
	if _, err := AmplitudeVariance([]linalg.Vector{vectors[0], vectors[1][:10]}, 10); err == nil {
		t.Error("ragged vectors should fail")
	}
}

func TestGroupStats(t *testing.T) {
	const nDays, perDay = 7, 144
	// Group 0: strong daily amplitude, phase ~0. Group 1: weaker amplitude,
	// phase ~π/2.
	var vectors []linalg.Vector
	for i := 0; i < 5; i++ {
		vectors = append(vectors, tone(nDays, perDay, 2.0, 0.02*float64(i), 0.2))
	}
	for i := 0; i < 5; i++ {
		vectors = append(vectors, tone(nDays, perDay, 0.6, math.Pi/2+0.02*float64(i), 0.2))
	}
	feats, err := Extract(vectors, nDays)
	if err != nil {
		t.Fatal(err)
	}
	groups := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}, {}}
	stats, err := GroupStats(feats, groups)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0][1].AmpMean <= stats[1][1].AmpMean {
		t.Errorf("group 0 daily amplitude (%g) should exceed group 1 (%g)", stats[0][1].AmpMean, stats[1][1].AmpMean)
	}
	if linalg.PhaseDistance(stats[1][1].PhaseMean, math.Pi/2) > 0.1 {
		t.Errorf("group 1 daily phase mean = %g, want ~π/2", stats[1][1].PhaseMean)
	}
	if stats[0][1].PhaseStd > 0.2 {
		t.Errorf("group 0 daily phase std = %g, want small", stats[0][1].PhaseStd)
	}
	// Empty group stays zero-valued.
	if stats[2][0].AmpMean != 0 {
		t.Error("empty group stats should be zero")
	}
	if _, err := GroupStats(feats, [][]int{{99}}); err == nil {
		t.Error("out-of-range index should fail")
	}
}

// clusteredFeatures builds two tight feature clusters plus one outlier that
// belongs to cluster 0 but sits far away from everything.
func clusteredFeatures() ([]Features, *cluster.Assignment) {
	var feats []Features
	var labels []int
	add := func(amp, phase, half float64, label int) {
		feats = append(feats, Features{Index: len(feats), AmpDay: amp, PhaseDay: phase, AmpHalfDay: half})
		labels = append(labels, label)
	}
	// Cluster 0 around (0.8, 1.0, 0.1); the member farthest from cluster 1
	// is the one with the largest amplitude.
	for i := 0; i < 6; i++ {
		add(0.78+0.01*float64(i), 1.0, 0.1, 0)
	}
	// Cluster 1 around (0.3, -1.0, 0.4).
	for i := 0; i < 6; i++ {
		add(0.29+0.01*float64(i), -1.0, 0.4, 1)
	}
	// Outlier assigned to cluster 0, extremely far from cluster 1 but
	// isolated (density 0) — must NOT be chosen as representative.
	add(30, 1.0, 0.1, 0)
	return feats, &cluster.Assignment{Labels: labels, K: 2}
}

func TestRepresentativeTowersSkipsNoise(t *testing.T) {
	feats, assign := clusteredFeatures()
	reps, err := RepresentativeTowers(feats, assign, RepOptions{DensityRadius: 0.2, MinDensity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("reps = %v", reps)
	}
	// The outlier is index 12; it must be skipped despite being farthest.
	if reps[0] == 12 {
		t.Error("noise point selected as representative")
	}
	// The chosen representative of cluster 0 should be its member with the
	// largest daily amplitude (farthest from cluster 1): index 5.
	if reps[0] != 5 {
		t.Errorf("cluster 0 representative = %d, want 5", reps[0])
	}
	// Cluster 1's representative should be the member farthest from
	// cluster 0, i.e. the one with the smallest amplitude: index 6.
	if reps[1] != 6 {
		t.Errorf("cluster 1 representative = %d, want 6", reps[1])
	}
}

func TestRepresentativeTowersDefaultsAndErrors(t *testing.T) {
	feats, assign := clusteredFeatures()
	reps, err := RepresentativeTowers(feats, assign, RepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reps[0] < 0 || reps[1] < 0 {
		t.Errorf("default options produced invalid reps %v", reps)
	}
	if _, err := RepresentativeTowers(nil, assign, RepOptions{}); !errors.Is(err, ErrNoVectors) {
		t.Errorf("no features: %v", err)
	}
	bad := &cluster.Assignment{Labels: []int{0}, K: 1}
	if _, err := RepresentativeTowers(feats, bad, RepOptions{}); err == nil {
		t.Error("label count mismatch should fail")
	}
	// A cluster so small that nothing passes the density filter still gets
	// a (fallback) representative.
	tiny := []Features{{Index: 0, AmpDay: 1}, {Index: 1, AmpDay: 2}}
	tinyAssign := &cluster.Assignment{Labels: []int{0, 1}, K: 2}
	reps, err = RepresentativeTowers(tiny, tinyAssign, RepOptions{MinDensity: 5})
	if err != nil {
		t.Fatal(err)
	}
	if reps[0] != 0 || reps[1] != 1 {
		t.Errorf("fallback reps = %v", reps)
	}
	// Empty cluster gets -1.
	withEmpty := &cluster.Assignment{Labels: []int{0, 0}, K: 2}
	reps, err = RepresentativeTowers(tiny, withEmpty, RepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reps[1] != -1 {
		t.Errorf("empty cluster representative = %d, want -1", reps[1])
	}
}

func TestDecomposeVertexAndMixture(t *testing.T) {
	primaries := []Features{
		{AmpDay: 0.9, PhaseDay: 1.3, AmpHalfDay: 0.05},
		{AmpDay: 0.4, PhaseDay: 2.8, AmpHalfDay: 0.60},
		{AmpDay: 0.7, PhaseDay: 2.0, AmpHalfDay: 0.10},
		{AmpDay: 0.5, PhaseDay: -2.0, AmpHalfDay: 0.20},
	}
	// A target equal to primary 2 decomposes onto that vertex.
	d, err := Decompose(primaries[2], primaries)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Coefficients[2]-1) > 1e-3 || d.Residual > 1e-3 {
		t.Errorf("vertex decomposition = %+v", d)
	}
	// A known interior mixture is recovered.
	want := linalg.Vector{0.5, 0.2, 0.2, 0.1}
	var mix Features
	for i, w := range want {
		mix.AmpDay += w * primaries[i].AmpDay
		mix.PhaseDay += w * primaries[i].PhaseDay
		mix.AmpHalfDay += w * primaries[i].AmpHalfDay
	}
	d, err = Decompose(mix, primaries)
	if err != nil {
		t.Fatal(err)
	}
	if d.Residual > 1e-6 {
		t.Errorf("interior residual = %g", d.Residual)
	}
	for i := range want {
		if math.Abs(d.Coefficients[i]-want[i]) > 0.02 {
			t.Errorf("coefficient[%d] = %g, want %g", i, d.Coefficients[i], want[i])
		}
	}
	if _, err := Decompose(mix, nil); !errors.Is(err, ErrNoPrimaries) {
		t.Errorf("no primaries: %v", err)
	}
}

func TestDecomposeAll(t *testing.T) {
	primaries := []Features{
		{AmpDay: 1, PhaseDay: 0, AmpHalfDay: 0},
		{AmpDay: 0, PhaseDay: 1, AmpHalfDay: 0},
	}
	targets := []Features{primaries[0], primaries[1]}
	ds, err := DecomposeAll(targets, primaries)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("len = %d", len(ds))
	}
	if math.Abs(ds[0].Coefficients[0]-1) > 1e-3 || math.Abs(ds[1].Coefficients[1]-1) > 1e-3 {
		t.Errorf("decompositions = %+v, %+v", ds[0], ds[1])
	}
}

func TestCombineTimeDomain(t *testing.T) {
	const nDays, perDay = 7, 144
	s1 := tone(nDays, perDay, 2, 0, 0)
	s2 := tone(nDays, perDay, 0, 0, 1)
	d := &Decomposition{Coefficients: linalg.Vector{0.25, 0.75}}
	tc, err := CombineTimeDomain(d, []linalg.Vector{s1, s2}, nDays)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Components) != 2 || len(tc.Combined) != nDays*perDay {
		t.Fatalf("shape = %d components × %d", len(tc.Components), len(tc.Combined))
	}
	// Components are the scaled originals (the signals are pure tones so
	// the band-limited reconstruction is lossless).
	for i := 0; i < 10; i++ {
		if math.Abs(tc.Components[0][i]-0.25*s1[i]) > 1e-6 {
			t.Errorf("component 0 slot %d = %g, want %g", i, tc.Components[0][i], 0.25*s1[i])
		}
		want := 0.25*s1[i] + 0.75*s2[i]
		if math.Abs(tc.Combined[i]-want) > 1e-6 {
			t.Errorf("combined slot %d = %g, want %g", i, tc.Combined[i], want)
		}
	}
	// Errors.
	if _, err := CombineTimeDomain(nil, nil, 7); err == nil {
		t.Error("nil decomposition should fail")
	}
	if _, err := CombineTimeDomain(d, []linalg.Vector{s1}, nDays); err == nil {
		t.Error("series/coefficient count mismatch should fail")
	}
	if _, err := CombineTimeDomain(&Decomposition{Coefficients: linalg.Vector{}}, nil, nDays); !errors.Is(err, ErrNoPrimaries) {
		t.Errorf("empty primaries: %v", err)
	}
	if _, err := CombineTimeDomain(d, []linalg.Vector{s1, s2[:10]}, nDays); err == nil {
		t.Error("ragged series should fail")
	}
	if _, err := CombineTimeDomain(d, []linalg.Vector{s1, s2}, 6); err == nil {
		t.Error("non-whole-week coverage should fail")
	}
}

func BenchmarkExtract100Towers7Days(b *testing.B) {
	rng := rand.New(rand.NewSource(63))
	var vectors []linalg.Vector
	for i := 0; i < 100; i++ {
		vectors = append(vectors, tone(7, 144, rng.Float64(), rng.Float64(), rng.Float64()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(vectors, 7); err != nil {
			b.Fatal(err)
		}
	}
}
