package freqdomain

import (
	"errors"
	"fmt"

	"repro/internal/dsp"
	"repro/internal/linalg"
	"repro/internal/qp"
)

// Decomposition is the convex-combination representation of one tower's
// traffic in terms of the four primary components (Section 5.3, Table 6).
type Decomposition struct {
	// Coefficients[i] is the weight of primary component i; the weights are
	// non-negative and sum to one.
	Coefficients linalg.Vector
	// Residual is the feature-space distance between the tower and its
	// projection onto the polygon spanned by the primary components.
	Residual float64
}

// ErrNoPrimaries is returned when no primary components are supplied.
var ErrNoPrimaries = errors.New("freqdomain: no primary components")

// Decompose expresses the target tower's three-dimensional feature as a
// convex combination of the primary towers' features by solving the
// quadratic program of Section 5.3:
//
//	minimise ‖F − Σ x_i F⁰_i‖²  s.t.  Σ x_i = 1,  x_i ≥ 0
func Decompose(target Features, primaries []Features) (*Decomposition, error) {
	if len(primaries) == 0 {
		return nil, ErrNoPrimaries
	}
	comps := make([]linalg.Vector, len(primaries))
	for i, p := range primaries {
		comps[i] = p.Vector3()
	}
	res, err := qp.SolveSimplexLS(target.Vector3(), comps, qp.Options{})
	if err != nil {
		return nil, fmt.Errorf("freqdomain: decomposing tower %d: %w", target.Index, err)
	}
	return &Decomposition{Coefficients: res.Coefficients, Residual: res.Residual}, nil
}

// DecomposeAll decomposes every target tower against the same primaries.
func DecomposeAll(targets []Features, primaries []Features) ([]*Decomposition, error) {
	out := make([]*Decomposition, len(targets))
	for i, t := range targets {
		d, err := Decompose(t, primaries)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// TimeCombination is the Figure 19 view of a decomposition: the traffic of
// a comprehensive-area tower split into the time-domain contributions of
// the four primary patterns.
type TimeCombination struct {
	// Components[i] is coefficient_i × the band-limited reconstruction of
	// primary pattern i's traffic, in the primary order passed in.
	Components []linalg.Vector
	// Combined is the element-wise sum of the components.
	Combined linalg.Vector
}

// CombineTimeDomain reconstructs each primary tower's traffic from its
// three principal frequency components, scales it by the decomposition
// coefficient and stacks the results. primarySeries[i] must be the
// (normalised) traffic vector of primary tower i; nDays is the number of
// whole days it covers.
func CombineTimeDomain(d *Decomposition, primarySeries []linalg.Vector, nDays int) (*TimeCombination, error) {
	if d == nil {
		return nil, errors.New("freqdomain: nil decomposition")
	}
	if len(primarySeries) != len(d.Coefficients) {
		return nil, fmt.Errorf("freqdomain: %d primary series for %d coefficients", len(primarySeries), len(d.Coefficients))
	}
	if len(primarySeries) == 0 {
		return nil, ErrNoPrimaries
	}
	n := len(primarySeries[0])
	week, day, half, err := dsp.PrincipalBins(n, nDays)
	if err != nil {
		return nil, err
	}
	plan, err := dsp.AcquirePlan(n)
	if err != nil {
		return nil, err
	}
	defer plan.Release()
	out := &TimeCombination{
		Components: make([]linalg.Vector, len(primarySeries)),
		Combined:   make(linalg.Vector, n),
	}
	for i, series := range primarySeries {
		if len(series) != n {
			return nil, fmt.Errorf("%w: series %d has %d samples, want %d", ErrBadShape, i, len(series), n)
		}
		comp := make(linalg.Vector, n)
		if _, err := plan.ReconstructInto(comp, series, week, day, half); err != nil {
			return nil, err
		}
		comp.ScaleInPlace(d.Coefficients[i])
		out.Components[i] = comp
		if err := out.Combined.AddInPlace(comp); err != nil {
			return nil, err
		}
	}
	return out, nil
}
