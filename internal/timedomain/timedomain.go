// Package timedomain quantifies the time-domain characteristics of traffic
// patterns studied in Section 4 of the paper: weekday/weekend traffic
// amount ratios (Figure 10a), peak and valley traffic values and their
// ratio (Table 4, Figure 10b), the time of day at which peaks and valleys
// occur (Table 5), and the interrelationships between patterns (Figure 11).
//
// All functions operate on a traffic vector together with a Clock that
// knows how vector slots map to wall-clock time, so the same code serves
// per-tower vectors, cluster aggregates and the city-wide aggregate.
package timedomain

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/linalg"
)

// Clock describes how the slots of a traffic vector map onto wall-clock
// time.
type Clock struct {
	// Start is the time of the first slot.
	Start time.Time
	// SlotMinutes is the slot width in minutes.
	SlotMinutes int
}

// Errors returned by the analysis functions.
var (
	ErrEmptySignal = errors.New("timedomain: empty signal")
	ErrBadClock    = errors.New("timedomain: invalid clock")
)

// Validate checks the clock.
func (c Clock) Validate() error {
	if c.Start.IsZero() || c.SlotMinutes <= 0 || 1440%c.SlotMinutes != 0 {
		return fmt.Errorf("%w: start=%v slotMinutes=%d", ErrBadClock, c.Start, c.SlotMinutes)
	}
	return nil
}

// SlotsPerDay returns the number of slots in one day.
func (c Clock) SlotsPerDay() int { return 1440 / c.SlotMinutes }

// SlotTime returns the start time of slot i.
func (c Clock) SlotTime(i int) time.Time {
	return c.Start.Add(time.Duration(i) * time.Duration(c.SlotMinutes) * time.Minute)
}

// IsWeekend reports whether slot i falls on Saturday or Sunday.
func (c Clock) IsWeekend(i int) bool {
	wd := c.SlotTime(i).Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// HourOfSlot returns the hour-of-day (fractional) at the middle of the
// slot-of-day index.
func (c Clock) HourOfSlot(slotOfDay int) float64 {
	return (float64(slotOfDay) + 0.5) * float64(c.SlotMinutes) / 60
}

// DailyProfile is a traffic profile folded onto a single day: one value per
// slot-of-day, averaged over the days that contributed.
type DailyProfile struct {
	// Values[s] is the average traffic of slot-of-day s.
	Values linalg.Vector
	// Days is the number of days averaged.
	Days int
	// Clock describes the slot width (Start is the fold origin).
	Clock Clock
}

// FoldDaily folds the traffic vector onto a single day, averaging
// separately over weekdays and weekend days.
func FoldDaily(traffic linalg.Vector, clock Clock) (weekday, weekend DailyProfile, err error) {
	if err := clock.Validate(); err != nil {
		return DailyProfile{}, DailyProfile{}, err
	}
	if len(traffic) == 0 {
		return DailyProfile{}, DailyProfile{}, ErrEmptySignal
	}
	perDay := clock.SlotsPerDay()
	if len(traffic)%perDay != 0 {
		return DailyProfile{}, DailyProfile{}, fmt.Errorf("timedomain: %d slots is not a whole number of %d-slot days", len(traffic), perDay)
	}
	wdSum := make(linalg.Vector, perDay)
	weSum := make(linalg.Vector, perDay)
	var wdDays, weDays int
	days := len(traffic) / perDay
	for d := 0; d < days; d++ {
		isWE := clock.IsWeekend(d * perDay)
		if isWE {
			weDays++
		} else {
			wdDays++
		}
		for s := 0; s < perDay; s++ {
			v := traffic[d*perDay+s]
			if isWE {
				weSum[s] += v
			} else {
				wdSum[s] += v
			}
		}
	}
	if wdDays > 0 {
		wdSum.ScaleInPlace(1 / float64(wdDays))
	}
	if weDays > 0 {
		weSum.ScaleInPlace(1 / float64(weDays))
	}
	weekday = DailyProfile{Values: wdSum, Days: wdDays, Clock: clock}
	weekend = DailyProfile{Values: weSum, Days: weDays, Clock: clock}
	return weekday, weekend, nil
}

// Smooth returns a copy of the profile smoothed with a centred moving
// average of the given window (in slots, forced odd), wrapping around
// midnight. Smoothing stabilises peak/valley detection against slot noise.
func (p DailyProfile) Smooth(window int) DailyProfile {
	n := len(p.Values)
	if n == 0 || window <= 1 {
		return DailyProfile{Values: p.Values.Clone(), Days: p.Days, Clock: p.Clock}
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make(linalg.Vector, n)
	for i := 0; i < n; i++ {
		var s float64
		for d := -half; d <= half; d++ {
			s += p.Values[((i+d)%n+n)%n]
		}
		out[i] = s / float64(window)
	}
	return DailyProfile{Values: out, Days: p.Days, Clock: p.Clock}
}

// Peak returns the maximum value of the profile and the hour of day at
// which it occurs.
func (p DailyProfile) Peak() (value, hour float64) {
	v, idx := p.Values.Max()
	if idx < 0 {
		return 0, 0
	}
	return v, p.Clock.HourOfSlot(idx)
}

// Valley returns the minimum value of the profile and the hour of day at
// which it occurs.
func (p DailyProfile) Valley() (value, hour float64) {
	v, idx := p.Values.Min()
	if idx < 0 {
		return 0, 0
	}
	return v, p.Clock.HourOfSlot(idx)
}

// PeakValleyFeatures are the Table 4 / Table 5 statistics for one day type.
type PeakValleyFeatures struct {
	MaxTraffic      float64 // peak traffic value
	MinTraffic      float64 // valley traffic value
	PeakValleyRatio float64 // MaxTraffic / MinTraffic (Inf if the valley is zero)
	PeakHour        float64 // hour of day of the peak
	ValleyHour      float64 // hour of day of the valley
}

// Features extracts the peak/valley statistics of a (possibly smoothed)
// profile.
func (p DailyProfile) Features() PeakValleyFeatures {
	maxV, maxH := p.Peak()
	minV, minH := p.Valley()
	ratio := 0.0
	if minV > 0 {
		ratio = maxV / minV
	} else if maxV > 0 {
		ratio = math.Inf(1)
	}
	return PeakValleyFeatures{
		MaxTraffic:      maxV,
		MinTraffic:      minV,
		PeakValleyRatio: ratio,
		PeakHour:        maxH,
		ValleyHour:      minH,
	}
}

// WeekdayWeekendRatio returns the ratio between the average traffic carried
// in one weekday and the average traffic carried in one weekend day — the
// statistic of Figure 10(a). It returns an error if the window contains no
// weekday or no weekend day.
func WeekdayWeekendRatio(traffic linalg.Vector, clock Clock) (float64, error) {
	if err := clock.Validate(); err != nil {
		return 0, err
	}
	if len(traffic) == 0 {
		return 0, ErrEmptySignal
	}
	perDay := clock.SlotsPerDay()
	if len(traffic)%perDay != 0 {
		return 0, fmt.Errorf("timedomain: %d slots is not a whole number of days", len(traffic))
	}
	var wdTotal, weTotal float64
	var wdDays, weDays int
	days := len(traffic) / perDay
	for d := 0; d < days; d++ {
		var dayTotal float64
		for s := 0; s < perDay; s++ {
			dayTotal += traffic[d*perDay+s]
		}
		if clock.IsWeekend(d * perDay) {
			weTotal += dayTotal
			weDays++
		} else {
			wdTotal += dayTotal
			wdDays++
		}
	}
	if wdDays == 0 || weDays == 0 {
		return 0, fmt.Errorf("timedomain: window has %d weekdays and %d weekend days; both required", wdDays, weDays)
	}
	wdAvg := wdTotal / float64(wdDays)
	weAvg := weTotal / float64(weDays)
	if weAvg == 0 {
		return 0, errors.New("timedomain: weekend traffic is zero")
	}
	return wdAvg / weAvg, nil
}

// PatternSummary bundles every time-domain statistic of one traffic pattern
// (one row of Tables 4 and 5 plus the Figure 10 bars).
type PatternSummary struct {
	WeekdayWeekendRatio float64
	Weekday             PeakValleyFeatures
	Weekend             PeakValleyFeatures
}

// Summarize computes the full time-domain summary of a traffic vector.
// The profiles are smoothed with the given window (in slots) before
// extracting peaks and valleys; a window of 0 disables smoothing.
func Summarize(traffic linalg.Vector, clock Clock, smoothWindow int) (PatternSummary, error) {
	ratio, err := WeekdayWeekendRatio(traffic, clock)
	if err != nil {
		return PatternSummary{}, err
	}
	weekday, weekend, err := FoldDaily(traffic, clock)
	if err != nil {
		return PatternSummary{}, err
	}
	return PatternSummary{
		WeekdayWeekendRatio: ratio,
		Weekday:             weekday.Smooth(smoothWindow).Features(),
		Weekend:             weekend.Smooth(smoothWindow).Features(),
	}, nil
}

// PeakLagHours returns the circular lag, in hours, from profile a's peak to
// profile b's peak (positive when b peaks later in the day). It is the
// quantitative form of Figure 11's observation that the residential peak
// trails the evening transport peak by about three hours.
func PeakLagHours(a, b DailyProfile) float64 {
	_, ha := a.Peak()
	_, hb := b.Peak()
	lag := hb - ha
	for lag > 12 {
		lag -= 24
	}
	for lag < -12 {
		lag += 24
	}
	return lag
}

// ProfileCorrelation returns the Pearson correlation between two daily
// profiles, used to verify that the comprehensive pattern closely tracks
// the all-tower average (third row of Figure 11).
func ProfileCorrelation(a, b DailyProfile) (float64, error) {
	return linalg.Pearson(a.Values, b.Values)
}
