package timedomain

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/linalg"
)

// clock7 starts on a Monday with 10-minute slots.
var clock7 = Clock{Start: time.Date(2014, 8, 4, 0, 0, 0, 0, time.UTC), SlotMinutes: 10}

// synthWeek builds a 7-day traffic vector from an hourly shape function
// that may differ between weekdays and weekends.
func synthWeek(shape func(hour float64, weekend bool) float64) linalg.Vector {
	perDay := clock7.SlotsPerDay()
	out := make(linalg.Vector, 7*perDay)
	for d := 0; d < 7; d++ {
		weekend := clock7.IsWeekend(d * perDay)
		for s := 0; s < perDay; s++ {
			out[d*perDay+s] = shape(clock7.HourOfSlot(s), weekend)
		}
	}
	return out
}

func TestClockValidate(t *testing.T) {
	if err := clock7.Validate(); err != nil {
		t.Fatalf("valid clock rejected: %v", err)
	}
	bad := []Clock{
		{},
		{Start: clock7.Start, SlotMinutes: 0},
		{Start: clock7.Start, SlotMinutes: 7},
		{SlotMinutes: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadClock) {
			t.Errorf("bad clock %d accepted: %v", i, err)
		}
	}
}

func TestClockHelpers(t *testing.T) {
	if clock7.SlotsPerDay() != 144 {
		t.Errorf("SlotsPerDay = %d", clock7.SlotsPerDay())
	}
	if !clock7.SlotTime(144).Equal(clock7.Start.Add(24 * time.Hour)) {
		t.Error("SlotTime(144) should be one day after start")
	}
	if clock7.IsWeekend(0) {
		t.Error("Monday should not be weekend")
	}
	if !clock7.IsWeekend(5 * 144) {
		t.Error("Saturday should be weekend")
	}
	if got := clock7.HourOfSlot(0); math.Abs(got-10.0/120) > 1e-9 {
		t.Errorf("HourOfSlot(0) = %g", got)
	}
	if got := clock7.HourOfSlot(72); math.Abs(got-12.0833333) > 1e-3 {
		t.Errorf("HourOfSlot(72) = %g, want ~12.08", got)
	}
}

func TestFoldDaily(t *testing.T) {
	// Weekdays carry 10 units at noon; weekends carry 20.
	traffic := synthWeek(func(hour float64, weekend bool) float64 {
		v := 1.0
		if hour >= 12 && hour < 13 {
			v = 10
			if weekend {
				v = 20
			}
		}
		return v
	})
	weekday, weekend, err := FoldDaily(traffic, clock7)
	if err != nil {
		t.Fatal(err)
	}
	if weekday.Days != 5 || weekend.Days != 2 {
		t.Errorf("day counts = %d/%d, want 5/2", weekday.Days, weekend.Days)
	}
	noonSlot := 73 // 12:10
	if weekday.Values[noonSlot] != 10 {
		t.Errorf("weekday noon = %g, want 10", weekday.Values[noonSlot])
	}
	if weekend.Values[noonSlot] != 20 {
		t.Errorf("weekend noon = %g, want 20", weekend.Values[noonSlot])
	}
	if weekday.Values[0] != 1 {
		t.Errorf("weekday midnight = %g, want 1", weekday.Values[0])
	}
}

func TestFoldDailyErrors(t *testing.T) {
	if _, _, err := FoldDaily(nil, clock7); !errors.Is(err, ErrEmptySignal) {
		t.Errorf("empty: %v", err)
	}
	if _, _, err := FoldDaily(make(linalg.Vector, 100), clock7); err == nil {
		t.Error("non-whole-day signal should fail")
	}
	if _, _, err := FoldDaily(make(linalg.Vector, 144), Clock{}); !errors.Is(err, ErrBadClock) {
		t.Error("bad clock should fail")
	}
}

func TestPeakValleyAndFeatures(t *testing.T) {
	traffic := synthWeek(func(hour float64, weekend bool) float64 {
		// Peak at 21:00-22:00 with value 100, valley of 5 everywhere else.
		if hour >= 21 && hour < 22 {
			return 100
		}
		return 5
	})
	weekday, _, err := FoldDaily(traffic, clock7)
	if err != nil {
		t.Fatal(err)
	}
	f := weekday.Features()
	if f.MaxTraffic != 100 || f.MinTraffic != 5 {
		t.Errorf("max/min = %g/%g", f.MaxTraffic, f.MinTraffic)
	}
	if math.Abs(f.PeakValleyRatio-20) > 1e-9 {
		t.Errorf("ratio = %g, want 20", f.PeakValleyRatio)
	}
	if f.PeakHour < 21 || f.PeakHour >= 22 {
		t.Errorf("peak hour = %g, want in [21,22)", f.PeakHour)
	}
	// Zero valley → infinite ratio.
	zeroValley := DailyProfile{Values: linalg.Vector{0, 5, 10}, Clock: clock7}
	if !math.IsInf(zeroValley.Features().PeakValleyRatio, 1) {
		t.Error("zero valley should give +Inf ratio")
	}
	allZero := DailyProfile{Values: linalg.Vector{0, 0}, Clock: clock7}
	if allZero.Features().PeakValleyRatio != 0 {
		t.Error("all-zero profile should give ratio 0")
	}
	var empty DailyProfile
	v, h := empty.Peak()
	if v != 0 || h != 0 {
		t.Error("empty profile peak should be zero")
	}
	v, h = empty.Valley()
	if v != 0 || h != 0 {
		t.Error("empty profile valley should be zero")
	}
}

func TestSmooth(t *testing.T) {
	p := DailyProfile{Values: linalg.Vector{0, 0, 12, 0, 0, 0}, Clock: clock7}
	s := p.Smooth(3)
	// Moving average of window 3 spreads the spike.
	if math.Abs(s.Values[2]-4) > 1e-9 || math.Abs(s.Values[1]-4) > 1e-9 || math.Abs(s.Values[3]-4) > 1e-9 {
		t.Errorf("smoothed = %v", s.Values)
	}
	// Mass is preserved.
	if math.Abs(s.Values.Sum()-p.Values.Sum()) > 1e-9 {
		t.Errorf("smoothing changed total mass: %g vs %g", s.Values.Sum(), p.Values.Sum())
	}
	// Window ≤ 1 is a no-op copy.
	same := p.Smooth(0)
	for i := range p.Values {
		if same.Values[i] != p.Values[i] {
			t.Error("window 0 should copy unchanged")
		}
	}
	// Even windows are promoted to odd.
	even := p.Smooth(2)
	if math.Abs(even.Values.Sum()-p.Values.Sum()) > 1e-9 {
		t.Error("even window smoothing should preserve mass")
	}
	// Wrap-around: spike at slot 0 spreads to the last slot.
	wrap := DailyProfile{Values: linalg.Vector{12, 0, 0, 0, 0, 0}, Clock: clock7}
	sw := wrap.Smooth(3)
	if math.Abs(sw.Values[5]-4) > 1e-9 {
		t.Errorf("wrap-around smoothing failed: %v", sw.Values)
	}
}

func TestWeekdayWeekendRatio(t *testing.T) {
	// Weekdays carry twice the weekend traffic uniformly.
	traffic := synthWeek(func(hour float64, weekend bool) float64 {
		if weekend {
			return 1
		}
		return 2
	})
	r, err := WeekdayWeekendRatio(traffic, clock7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("ratio = %g, want 2", r)
	}
	if _, err := WeekdayWeekendRatio(nil, clock7); !errors.Is(err, ErrEmptySignal) {
		t.Errorf("empty: %v", err)
	}
	if _, err := WeekdayWeekendRatio(make(linalg.Vector, 100), clock7); err == nil {
		t.Error("non-whole-day should fail")
	}
	// Only weekdays in the window → error.
	short := make(linalg.Vector, 144)
	if _, err := WeekdayWeekendRatio(short, clock7); err == nil {
		t.Error("window without weekend days should fail")
	}
	// Zero weekend traffic → error.
	zeroWE := synthWeek(func(hour float64, weekend bool) float64 {
		if weekend {
			return 0
		}
		return 1
	})
	if _, err := WeekdayWeekendRatio(zeroWE, clock7); err == nil {
		t.Error("zero weekend traffic should fail")
	}
}

func TestSummarize(t *testing.T) {
	traffic := synthWeek(func(hour float64, weekend bool) float64 {
		base := 2.0
		if hour >= 10 && hour < 12 {
			base = 50
		}
		if weekend {
			return base * 0.5
		}
		return base
	})
	s, err := Summarize(traffic, clock7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.WeekdayWeekendRatio-2) > 1e-6 {
		t.Errorf("ratio = %g, want 2", s.WeekdayWeekendRatio)
	}
	if s.Weekday.PeakHour < 9.5 || s.Weekday.PeakHour > 12.5 {
		t.Errorf("weekday peak hour = %g, want ~10-12", s.Weekday.PeakHour)
	}
	if s.Weekday.MaxTraffic <= s.Weekend.MaxTraffic {
		t.Error("weekday peak should exceed weekend peak")
	}
	if _, err := Summarize(nil, clock7, 3); err == nil {
		t.Error("empty summarize should fail")
	}
}

func TestPeakLagHours(t *testing.T) {
	mk := func(peakHour float64) DailyProfile {
		v := make(linalg.Vector, 144)
		v[int(peakHour*6)] = 10
		return DailyProfile{Values: v, Clock: clock7}
	}
	// Residential peak at 21:30 trails a transport evening peak at 18:00
	// by 3.5 hours.
	lag := PeakLagHours(mk(18), mk(21.5))
	if math.Abs(lag-3.5) > 0.2 {
		t.Errorf("lag = %g, want ~3.5", lag)
	}
	// Circular wrap: 23:00 → 1:00 is +2 hours, not -22.
	lag = PeakLagHours(mk(23), mk(1))
	if math.Abs(lag-2) > 0.2 {
		t.Errorf("wrapped lag = %g, want ~2", lag)
	}
	lag = PeakLagHours(mk(1), mk(23))
	if math.Abs(lag+2) > 0.2 {
		t.Errorf("wrapped negative lag = %g, want ~-2", lag)
	}
}

func TestProfileCorrelation(t *testing.T) {
	a := DailyProfile{Values: linalg.Vector{1, 2, 3, 4}, Clock: clock7}
	b := DailyProfile{Values: linalg.Vector{2, 4, 6, 8}, Clock: clock7}
	r, err := ProfileCorrelation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("correlation = %g, want 1", r)
	}
	c := DailyProfile{Values: linalg.Vector{4, 3, 2, 1}, Clock: clock7}
	r, _ = ProfileCorrelation(a, c)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("anticorrelation = %g, want -1", r)
	}
}
