package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func TestBatchedAdapterFillsAndTerminates(t *testing.T) {
	records := make([]Record, 5)
	for i := range records {
		records[i] = validRecord()
		records[i].UserID = i
	}
	// Wrap in a SourceFunc so Batched cannot take the sliceSource fast
	// path and must exercise the scalar adapter.
	pos := 0
	scalar := SourceFunc(func() (Record, error) {
		if pos >= len(records) {
			return Record{}, io.EOF
		}
		r := records[pos]
		pos++
		return r, nil
	})
	bs := Batched(scalar)
	dst := make([]Record, 3)
	n, err := bs.NextBatch(dst)
	if n != 3 || err != nil {
		t.Fatalf("first batch: n=%d err=%v", n, err)
	}
	n, err = bs.NextBatch(dst)
	if n != 2 || !errors.Is(err, io.EOF) {
		t.Fatalf("final batch: n=%d err=%v, want 2 records with io.EOF", n, err)
	}
	for i, want := range []int{3, 4} {
		if dst[i].UserID != want {
			t.Errorf("record %d user %d, want %d", i, dst[i].UserID, want)
		}
	}
}

func TestBatchedReturnsBatchCapableSourceAsIs(t *testing.T) {
	src := SliceSource(nil)
	if bs := Batched(src); bs != src.(BatchSource) {
		t.Error("Batched should pass a BatchSource through unchanged")
	}
}

func TestBatchedPropagatesSourceError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	src := SourceFunc(func() (Record, error) {
		calls++
		if calls > 2 {
			return Record{}, boom
		}
		return validRecord(), nil
	})
	n, err := Batched(src).NextBatch(make([]Record, 8))
	if n != 2 || !errors.Is(err, boom) {
		t.Fatalf("n=%d err=%v, want 2 records then boom", n, err)
	}
}

func TestSliceSourceSizeHintAndBatch(t *testing.T) {
	records := make([]Record, 10)
	for i := range records {
		records[i] = validRecord()
		records[i].UserID = i
	}
	src := SliceSource(records).(interface {
		Source
		BatchSource
		SizeHinter
	})
	if h := src.SizeHint(); h != 10 {
		t.Errorf("SizeHint = %d, want 10", h)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if h := src.SizeHint(); h != 9 {
		t.Errorf("SizeHint after one Next = %d, want 9", h)
	}
	dst := make([]Record, 4)
	n, err := src.NextBatch(dst)
	if n != 4 || err != nil || dst[0].UserID != 1 {
		t.Fatalf("NextBatch: n=%d err=%v first=%d", n, err, dst[0].UserID)
	}
}

// hintedSource wraps a Source with a fixed size hint, to check Collect's
// preallocation path.
type hintedSource struct {
	Source
	hint int
}

func (h hintedSource) SizeHint() int { return h.hint }

func TestCollectPreallocatesFromSizeHint(t *testing.T) {
	records := make([]Record, 100)
	for i := range records {
		records[i] = validRecord()
		records[i].UserID = i
	}
	out, err := Collect(hintedSource{Source: SliceSource(records), hint: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 || cap(out) != 100 {
		t.Errorf("len=%d cap=%d, want exactly the hinted 100", len(out), cap(out))
	}
	// An under-hint must not truncate the stream.
	out, err = Collect(hintedSource{Source: SliceSource(records), hint: 3})
	if err != nil || len(out) != 100 {
		t.Errorf("under-hinted Collect: len=%d err=%v", len(out), err)
	}
	for i := range out {
		if out[i].UserID != i {
			t.Fatalf("record %d out of order: user %d", i, out[i].UserID)
		}
	}
}

func TestForEachBatchDrainsAndStops(t *testing.T) {
	records := make([]Record, 3000)
	for i := range records {
		records[i] = validRecord()
		records[i].UserID = i
	}
	seen := 0
	err := ForEachBatch(Batched(SliceSource(records)), func(batch []Record) error {
		for _, r := range batch {
			if r.UserID != seen {
				t.Fatalf("record %d out of order: user %d", seen, r.UserID)
			}
			seen++
		}
		return nil
	})
	if err != nil || seen != 3000 {
		t.Fatalf("seen=%d err=%v", seen, err)
	}

	boom := errors.New("boom")
	calls := 0
	err = ForEachBatch(Batched(SliceSource(records)), func([]Record) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Errorf("callback error: err=%v after %d calls", err, calls)
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if len(*b) != DefaultBatchSize {
		t.Fatalf("pooled batch has %d records, want %d", len(*b), DefaultBatchSize)
	}
	(*b)[0] = validRecord()
	PutBatch(b)
	PutBatch(nil) // must not panic
}

// TestCleanedSourceBatchMatchesScalar verifies that draining a cleaned
// stream batch-wise forwards exactly the records and stats of the
// scalar path.
func TestCleanedSourceBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		records := randomRecords(rng, 60)

		wantSrc := CleanSource(SliceSource(records))
		var want []Record
		if err := ForEach(wantSrc, func(r Record) error {
			want = append(want, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		gotSrc := CleanSource(SliceSource(records))
		var got []Record
		// Vary the batch size to hit partial-batch boundaries.
		dst := make([]Record, 1+rng.Intn(17))
		for {
			n, err := gotSrc.NextBatch(dst)
			got = append(got, dst[:n]...)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatal(err)
				}
				break
			}
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: batch path %d records, scalar path %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d differs: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
		if gotSrc.Stats() != wantSrc.Stats() {
			t.Fatalf("trial %d: stats %+v vs %+v", trial, gotSrc.Stats(), wantSrc.Stats())
		}
	}
}

// TestCleanedSourceOverScanner runs the full batched chain — scanner
// into cleaner — against the PR 1 scalar chain over the same CSV bytes.
func TestCleanedSourceOverScanner(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	records := randomRecords(rng, 200)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cr, err := NewCSVReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(CleanSource(cr))
	if err != nil {
		t.Fatal(err)
	}

	sc, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(CleanSource(sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batched chain %d records, scalar chain %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
