// Package trace models the raw cellular connection logs (CDR-style
// records) and implements the preprocessing stage of Section 2.2 of the
// paper: eliminating redundant and conflicting logs, completing tower
// location information through the geocoder, and computing spatial traffic
// density.
//
// Ingestion is batched and allocation-free: NewIngestSource returns
// either the byte-level Scanner or the order-preserving parallel chunk
// parser (ParallelCSVSource), both equivalence-tested against the
// encoding/csv CSVReader; records move downstream through the
// BatchSource interface. The write path (WriteCSV, CSVWriter,
// WriteTowersCSV) is symmetric, serialising rows into reused buffers.
//
// Fault tolerance: every ingestion constructor has a context-aware form
// (NewIngestSourceContext, NewParallelCSVSourceContext,
// CleanSourceContext, WithContext) taking an ErrorPolicy that selects
// skip / fail-fast / budget handling of malformed rows, per-category
// skip accounting (SkipStats) and bounded retry of transient read errors
// (RetryPolicy). The legacy names — NewIngestSource, NewParallelCSVSource,
// CleanSource — remain as context.Background() wrappers with the
// historical skip-everything policy, so existing callers keep their exact
// behaviour. Terminal errors from the readers carry the failing row's
// line number and byte offset via *PosError.
package trace

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"repro/internal/geo"
)

// Technology is the radio access technology of a connection.
type Technology string

// Supported technologies.
const (
	Tech3G  Technology = "3G"
	TechLTE Technology = "LTE"
)

// Record is a single connection log entry, mirroring the fields of the
// paper's dataset: anonymised device ID, start and end time of the data
// connection, base-station ID and address, and the bytes transferred.
type Record struct {
	UserID  int
	Start   time.Time
	End     time.Time
	TowerID int
	Address string
	Bytes   int64
	Tech    Technology
}

// Validate checks the record for structurally impossible values.
func (r Record) Validate() error {
	switch {
	case r.UserID < 0:
		return fmt.Errorf("trace: negative user id %d", r.UserID)
	case r.TowerID < 0:
		return fmt.Errorf("trace: negative tower id %d", r.TowerID)
	case r.Bytes < 0:
		return fmt.Errorf("trace: negative byte count %d", r.Bytes)
	case r.Start.IsZero() || r.End.IsZero():
		return errors.New("trace: zero timestamp")
	case r.End.Before(r.Start):
		return fmt.Errorf("trace: end %v before start %v", r.End, r.Start)
	case r.Tech != Tech3G && r.Tech != TechLTE:
		return fmt.Errorf("trace: unknown technology %q", r.Tech)
	}
	return nil
}

// key identifies the logical connection a record describes. Two records
// with the same key are either duplicates (same bytes) or conflicting
// copies (different bytes).
type key struct {
	userID  int
	towerID int
	start   int64
	end     int64
}

func (r Record) key() key {
	return key{userID: r.UserID, towerID: r.TowerID, start: r.Start.UnixNano(), end: r.End.UnixNano()}
}

const timeLayout = time.RFC3339

// csvHeader is the column layout used by WriteCSV and ReadCSV.
var csvHeader = []string{"user_id", "start", "end", "tower_id", "address", "bytes", "tech"}

// csvHeaderLine is the serialised header row.
const csvHeaderLine = "user_id,start,end,tower_id,address,bytes,tech\n"

// WriteCSV writes the records to w as CSV with a header row. Rows are
// serialised with time.AppendFormat / strconv.Append* into one reused
// buffer — byte-identical output to the encoding/csv path it replaces,
// without the per-field string churn.
func WriteCSV(w io.Writer, records []Record) error {
	cw := NewCSVWriter(w)
	if err := cw.WriteBatch(records); err != nil {
		return err
	}
	if len(records) == 0 {
		// Preserve the historical behaviour of emitting the header even
		// for an empty trace.
		if err := cw.writeHeader(); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// fieldNeedsQuotes mirrors encoding/csv's quoting rule (Comma == ',',
// UseCRLF == false) so the append writers emit byte-identical files.
func fieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		// Postgres COPY protocol end-of-data marker, quoted by csv.Writer.
		return true
	}
	for i := 0; i < len(field); i++ {
		switch field[i] {
		case ',', '"', '\r', '\n':
			return true
		}
	}
	r, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r)
}

// appendCSVField appends one CSV field, quoting exactly when csv.Writer
// would and doubling embedded quotes.
func appendCSVField(buf []byte, field string) []byte {
	if !fieldNeedsQuotes(field) {
		return append(buf, field...)
	}
	buf = append(buf, '"')
	for {
		i := strings.IndexByte(field, '"')
		if i < 0 {
			buf = append(buf, field...)
			break
		}
		buf = append(buf, field[:i+1]...)
		buf = append(buf, '"')
		field = field[i+1:]
	}
	return append(buf, '"')
}

// appendRecord appends one serialised record row (with trailing newline)
// to buf. Numeric and timestamp columns never need quoting; the address
// and technology columns go through the csv-compatible quoter.
func appendRecord(buf []byte, r Record) []byte {
	buf = strconv.AppendInt(buf, int64(r.UserID), 10)
	buf = append(buf, ',')
	buf = r.Start.AppendFormat(buf, timeLayout)
	buf = append(buf, ',')
	buf = r.End.AppendFormat(buf, timeLayout)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.TowerID), 10)
	buf = append(buf, ',')
	buf = appendCSVField(buf, r.Address)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, r.Bytes, 10)
	buf = append(buf, ',')
	buf = appendCSVField(buf, string(r.Tech))
	return append(buf, '\n')
}

// ReadCSV parses records written by WriteCSV. Rows that fail to parse are
// returned as a count of skipped rows rather than aborting the whole read,
// mirroring how a production pipeline tolerates malformed log lines. I/O
// errors from the underlying reader, by contrast, abort the read.
//
// ReadCSV materialises the whole trace; large traces should stream through
// NewCSVReader instead.
func ReadCSV(r io.Reader) (records []Record, skipped int, err error) {
	cr, err := NewCSVReader(r)
	if err != nil {
		return nil, 0, err
	}
	records, err = Collect(cr)
	if err != nil {
		return nil, cr.Skipped(), err
	}
	return records, cr.Skipped(), nil
}

func parseRow(row []string) (Record, error) {
	rec, _, err := parseRowCat(row)
	return rec, err
}

// parseRowCat is parseRow with the drop category attached, feeding the
// per-category SkipStats of CSVReader. Categories mirror the Scanner's
// classification (same field order), so all three ingestion paths report
// identical stats for the same input.
func parseRowCat(row []string) (Record, skipCategory, error) {
	userID, err := strconv.Atoi(row[0])
	if err != nil {
		return Record{}, skipBadField, fmt.Errorf("trace: user id: %w", err)
	}
	start, err := time.Parse(timeLayout, row[1])
	if err != nil {
		return Record{}, skipBadTimestamp, fmt.Errorf("trace: start: %w", err)
	}
	end, err := time.Parse(timeLayout, row[2])
	if err != nil {
		return Record{}, skipBadTimestamp, fmt.Errorf("trace: end: %w", err)
	}
	towerID, err := strconv.Atoi(row[3])
	if err != nil {
		return Record{}, skipBadField, fmt.Errorf("trace: tower id: %w", err)
	}
	bytes, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return Record{}, skipBadField, fmt.Errorf("trace: bytes: %w", err)
	}
	rec := Record{
		UserID:  userID,
		Start:   start,
		End:     end,
		TowerID: towerID,
		Address: row[4],
		Bytes:   bytes,
		Tech:    Technology(row[6]),
	}
	if err := rec.Validate(); err != nil {
		return Record{}, skipBadField, err
	}
	return rec, skipNone, nil
}

// TowerInfo is the per-tower metadata recovered during preprocessing.
type TowerInfo struct {
	TowerID  int
	Address  string
	Location geo.Point
	// Resolved reports whether the address was successfully geocoded.
	Resolved bool
}
