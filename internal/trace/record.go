// Package trace models the raw cellular connection logs (CDR-style
// records) and implements the preprocessing stage of Section 2.2 of the
// paper: eliminating redundant and conflicting logs, completing tower
// location information through the geocoder, and computing spatial traffic
// density.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
)

// Technology is the radio access technology of a connection.
type Technology string

// Supported technologies.
const (
	Tech3G  Technology = "3G"
	TechLTE Technology = "LTE"
)

// Record is a single connection log entry, mirroring the fields of the
// paper's dataset: anonymised device ID, start and end time of the data
// connection, base-station ID and address, and the bytes transferred.
type Record struct {
	UserID  int
	Start   time.Time
	End     time.Time
	TowerID int
	Address string
	Bytes   int64
	Tech    Technology
}

// Validate checks the record for structurally impossible values.
func (r Record) Validate() error {
	switch {
	case r.UserID < 0:
		return fmt.Errorf("trace: negative user id %d", r.UserID)
	case r.TowerID < 0:
		return fmt.Errorf("trace: negative tower id %d", r.TowerID)
	case r.Bytes < 0:
		return fmt.Errorf("trace: negative byte count %d", r.Bytes)
	case r.Start.IsZero() || r.End.IsZero():
		return errors.New("trace: zero timestamp")
	case r.End.Before(r.Start):
		return fmt.Errorf("trace: end %v before start %v", r.End, r.Start)
	case r.Tech != Tech3G && r.Tech != TechLTE:
		return fmt.Errorf("trace: unknown technology %q", r.Tech)
	}
	return nil
}

// key identifies the logical connection a record describes. Two records
// with the same key are either duplicates (same bytes) or conflicting
// copies (different bytes).
type key struct {
	userID  int
	towerID int
	start   int64
	end     int64
}

func (r Record) key() key {
	return key{userID: r.UserID, towerID: r.TowerID, start: r.Start.UnixNano(), end: r.End.UnixNano()}
}

const timeLayout = time.RFC3339

// csvHeader is the column layout used by WriteCSV and ReadCSV.
var csvHeader = []string{"user_id", "start", "end", "tower_id", "address", "bytes", "tech"}

// WriteCSV writes the records to w as CSV with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for i, r := range records {
		row[0] = strconv.Itoa(r.UserID)
		row[1] = r.Start.Format(timeLayout)
		row[2] = r.End.Format(timeLayout)
		row[3] = strconv.Itoa(r.TowerID)
		row[4] = r.Address
		row[5] = strconv.FormatInt(r.Bytes, 10)
		row[6] = string(r.Tech)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV. Rows that fail to parse are
// returned as a count of skipped rows rather than aborting the whole read,
// mirroring how a production pipeline tolerates malformed log lines. I/O
// errors from the underlying reader, by contrast, abort the read.
//
// ReadCSV materialises the whole trace; large traces should stream through
// NewCSVReader instead.
func ReadCSV(r io.Reader) (records []Record, skipped int, err error) {
	cr, err := NewCSVReader(r)
	if err != nil {
		return nil, 0, err
	}
	records, err = Collect(cr)
	if err != nil {
		return nil, cr.Skipped(), err
	}
	return records, cr.Skipped(), nil
}

func parseRow(row []string) (Record, error) {
	userID, err := strconv.Atoi(row[0])
	if err != nil {
		return Record{}, fmt.Errorf("trace: user id: %w", err)
	}
	start, err := time.Parse(timeLayout, row[1])
	if err != nil {
		return Record{}, fmt.Errorf("trace: start: %w", err)
	}
	end, err := time.Parse(timeLayout, row[2])
	if err != nil {
		return Record{}, fmt.Errorf("trace: end: %w", err)
	}
	towerID, err := strconv.Atoi(row[3])
	if err != nil {
		return Record{}, fmt.Errorf("trace: tower id: %w", err)
	}
	bytes, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bytes: %w", err)
	}
	rec := Record{
		UserID:  userID,
		Start:   start,
		End:     end,
		TowerID: towerID,
		Address: row[4],
		Bytes:   bytes,
		Tech:    Technology(row[6]),
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// TowerInfo is the per-tower metadata recovered during preprocessing.
type TowerInfo struct {
	TowerID  int
	Address  string
	Location geo.Point
	// Resolved reports whether the address was successfully geocoded.
	Resolved bool
}
