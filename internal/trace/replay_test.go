package trace

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/testutil"
)

// replayRecords builds n valid records whose Start timestamps advance by
// step each.
func replayRecords(n int, step time.Duration) []Record {
	base := time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		start := base.Add(time.Duration(i) * step)
		out[i] = Record{
			UserID:  i,
			Start:   start,
			End:     start.Add(time.Minute),
			TowerID: i % 7,
			Address: "No.1 Century Road",
			Bytes:   int64(1000 + i),
			Tech:    Tech3G,
		}
	}
	return out
}

func TestReplayUnpacedPassthrough(t *testing.T) {
	recs := replayRecords(5000, time.Minute)
	rs := NewReplaySource(context.Background(), SliceSource(recs), 0)
	if got := rs.SizeHint(); got != len(recs) {
		t.Errorf("SizeHint = %d, want %d", got, len(recs))
	}
	got, err := Collect(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("collected %d of %d records", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReplayPacesDeliveries(t *testing.T) {
	// 20 records, 1 s of trace time apart, replayed at 100x: the last
	// record is due 19 s / 100 = 190 ms after the first.
	recs := replayRecords(20, time.Second)
	rs := NewReplaySource(context.Background(), SliceSource(recs), 100)
	start := time.Now()
	n := 0
	var buf [1]Record
	for {
		k, err := rs.NextBatch(buf[:])
		n += k
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if n != len(recs) {
		t.Fatalf("delivered %d of %d records", n, len(recs))
	}
	if elapsed < 150*time.Millisecond {
		t.Errorf("paced replay finished in %v, want >= ~190ms", elapsed)
	}
}

func TestReplayCancellationWakesSleep(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	// Real-time replay of records an hour apart: the second pull would
	// sleep for an hour; cancellation must wake it promptly.
	recs := replayRecords(10, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	rs := NewReplaySource(ctx, SliceSource(recs), 1)
	var buf [1]Record
	if _, err := rs.NextBatch(buf[:]); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// The pull that hits the pacing sleep may still deliver its record
	// (already consumed from the source); the call after that must fail.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = rs.NextBatch(buf[:]); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancellation took %v to wake the pacing sleep", waited)
	}
}

func TestReplayNegativeSpeedPassthrough(t *testing.T) {
	// Negative speed, like zero, disables pacing entirely rather than
	// reversing time or dividing by a negative factor.
	recs := replayRecords(2000, time.Hour)
	rs := NewReplaySource(context.Background(), SliceSource(recs), -3)
	start := time.Now()
	got, err := Collect(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("collected %d of %d records", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("negative-speed replay paced anyway: took %v", elapsed)
	}
}

func TestReplayOutOfOrderTimestampsNoExtraDelay(t *testing.T) {
	// Timestamps that jump backwards (or are missing entirely) must be
	// delivered without delay and without rewinding the replay clock —
	// at real-time speed, none of these may trigger an hour-long sleep.
	base := time.Date(2014, 8, 1, 12, 0, 0, 0, time.UTC)
	recs := replayRecords(6, 0)
	recs[0].Start = base
	recs[1].Start = base.Add(-time.Hour)   // before the anchor
	recs[2].Start = base.Add(-time.Minute) // still behind
	recs[3].Start = time.Time{}            // no timestamp at all
	recs[4].Start = base                   // back to the anchor exactly
	recs[5].Start = base.Add(-2 * time.Hour)
	rs := NewReplaySource(context.Background(), SliceSource(recs), 1)
	start := time.Now()
	got, err := Collect(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("collected %d of %d records", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d reordered or altered", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("out-of-order records slept anyway: took %v", elapsed)
	}
}

func TestReplayCancelDuringFirstPacingSleep(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	// The very first pacing sleep: the anchor record never sleeps, so the
	// second delivery is the first call that can block — cancel while it
	// is blocked there and the scalar path must fail promptly and stay
	// failed.
	recs := replayRecords(3, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	rs := NewReplaySource(ctx, SliceSource(recs), 1)
	if _, err := rs.Next(); err != nil { // the anchor: no sleep
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := rs.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancellation took %v to wake the first pacing sleep", waited)
	}
	// The error is sticky: later pulls fail without touching the source.
	if _, err := rs.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel err = %v, want sticky context.Canceled", err)
	}
}

func TestReplayCancelledBeforeFirstPull(t *testing.T) {
	// A context cancelled before any delivery fails the very first call
	// without consuming anything from the wrapped source.
	recs := replayRecords(3, time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := NewReplaySource(ctx, SliceSource(recs), 1)
	if _, err := rs.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next err = %v, want context.Canceled", err)
	}
	var buf [4]Record
	if n, err := rs.NextBatch(buf[:]); n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("NextBatch = (%d, %v), want (0, context.Canceled)", n, err)
	}
}

func TestReplayScalarNext(t *testing.T) {
	recs := replayRecords(8, time.Second)
	rs := NewReplaySource(context.Background(), SliceSource(recs), 1000)
	for i := range recs {
		r, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r != recs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if _, err := rs.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
