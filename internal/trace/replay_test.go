package trace

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/testutil"
)

// replayRecords builds n valid records whose Start timestamps advance by
// step each.
func replayRecords(n int, step time.Duration) []Record {
	base := time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		start := base.Add(time.Duration(i) * step)
		out[i] = Record{
			UserID:  i,
			Start:   start,
			End:     start.Add(time.Minute),
			TowerID: i % 7,
			Address: "No.1 Century Road",
			Bytes:   int64(1000 + i),
			Tech:    Tech3G,
		}
	}
	return out
}

func TestReplayUnpacedPassthrough(t *testing.T) {
	recs := replayRecords(5000, time.Minute)
	rs := NewReplaySource(context.Background(), SliceSource(recs), 0)
	if got := rs.SizeHint(); got != len(recs) {
		t.Errorf("SizeHint = %d, want %d", got, len(recs))
	}
	got, err := Collect(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("collected %d of %d records", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReplayPacesDeliveries(t *testing.T) {
	// 20 records, 1 s of trace time apart, replayed at 100x: the last
	// record is due 19 s / 100 = 190 ms after the first.
	recs := replayRecords(20, time.Second)
	rs := NewReplaySource(context.Background(), SliceSource(recs), 100)
	start := time.Now()
	n := 0
	var buf [1]Record
	for {
		k, err := rs.NextBatch(buf[:])
		n += k
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if n != len(recs) {
		t.Fatalf("delivered %d of %d records", n, len(recs))
	}
	if elapsed < 150*time.Millisecond {
		t.Errorf("paced replay finished in %v, want >= ~190ms", elapsed)
	}
}

func TestReplayCancellationWakesSleep(t *testing.T) {
	testutil.CheckNoGoroutineLeak(t)
	// Real-time replay of records an hour apart: the second pull would
	// sleep for an hour; cancellation must wake it promptly.
	recs := replayRecords(10, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	rs := NewReplaySource(ctx, SliceSource(recs), 1)
	var buf [1]Record
	if _, err := rs.NextBatch(buf[:]); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// The pull that hits the pacing sleep may still deliver its record
	// (already consumed from the source); the call after that must fail.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = rs.NextBatch(buf[:]); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancellation took %v to wake the pacing sleep", waited)
	}
}

func TestReplayScalarNext(t *testing.T) {
	recs := replayRecords(8, time.Second)
	rs := NewReplaySource(context.Background(), SliceSource(recs), 1000)
	for i := range recs {
		r, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r != recs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if _, err := rs.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
