package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

// oracleScan is the reference ingestion path: the encoding/csv-backed
// CSVReader. It returns the records, the skip count and whether
// construction succeeded, for differential comparison with the Scanner.
func oracleScan(data []byte) (records []Record, skipped int, ok bool, err error) {
	cr, cerr := NewCSVReader(bytes.NewReader(data))
	if cerr != nil {
		return nil, 0, false, nil
	}
	records, err = Collect(cr)
	return records, cr.Skipped(), true, err
}

// scannerScan runs the custom Scanner over the same bytes.
func scannerScan(data []byte) (records []Record, skipped int, ok bool, err error) {
	sc, serr := NewScanner(bytes.NewReader(data))
	if serr != nil {
		return nil, 0, false, nil
	}
	records, err = Collect(sc)
	return records, sc.Skipped(), true, err
}

// recordsEquivalent compares two records field by field. Times must be
// the same instant at the same zone offset (offsets may come from
// distinct FixedZone allocations, so Time values are not ==-comparable).
func recordsEquivalent(a, b Record) error {
	if !a.Start.Equal(b.Start) || !a.End.Equal(b.End) {
		return fmt.Errorf("instants differ: %v/%v vs %v/%v", a.Start, a.End, b.Start, b.End)
	}
	_, ao := a.Start.Zone()
	_, bo := b.Start.Zone()
	if ao != bo {
		return fmt.Errorf("start zone offset %d vs %d", ao, bo)
	}
	_, ao = a.End.Zone()
	_, bo = b.End.Zone()
	if ao != bo {
		return fmt.Errorf("end zone offset %d vs %d", ao, bo)
	}
	if a.UserID != b.UserID || a.TowerID != b.TowerID || a.Bytes != b.Bytes ||
		a.Address != b.Address || a.Tech != b.Tech {
		return fmt.Errorf("fields differ: %+v vs %+v", a, b)
	}
	return nil
}

// compareScan runs both paths on data and fails on any divergence.
func compareScan(t *testing.T, data []byte) {
	t.Helper()
	wantRecs, wantSkip, wantOK, wantErr := oracleScan(data)
	gotRecs, gotSkip, gotOK, gotErr := scannerScan(data)
	if wantOK != gotOK {
		t.Fatalf("construction: oracle ok=%v, scanner ok=%v\ninput: %q", wantOK, gotOK, data)
	}
	if !wantOK {
		return
	}
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("terminal error: oracle %v, scanner %v\ninput: %q", wantErr, gotErr, data)
	}
	if wantErr != nil {
		return
	}
	if gotSkip != wantSkip {
		t.Fatalf("skipped: oracle %d, scanner %d\ninput: %q", wantSkip, gotSkip, data)
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("records: oracle %d, scanner %d\ninput: %q", len(wantRecs), len(gotRecs), data)
	}
	for i := range wantRecs {
		if err := recordsEquivalent(wantRecs[i], gotRecs[i]); err != nil {
			t.Fatalf("record %d: %v\ninput: %q", i, err, data)
		}
	}
}

const scanHeader = "user_id,start,end,tower_id,address,bytes,tech\n"

// TestScannerMatchesCSVReader pits the custom scanner against the
// encoding/csv oracle on the structured corner cases: quoting, CRLF,
// truncated final lines, multi-line fields, blank lines and every kind
// of malformed row.
func TestScannerMatchesCSVReader(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"header-only", scanHeader},
		{"header-no-newline", strings.TrimSuffix(scanHeader, "\n")},
		{"plain", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE\n"},
		{"no-final-newline", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,3G"},
		{"crlf", strings.ReplaceAll(scanHeader, "\n", "\r\n") + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE\r\n"},
		{"trailing-cr-at-eof", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE\r"},
		{"blank-lines", scanHeader + "\n\r\n1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE\n\n"},
		{"quoted-address", scanHeader + `1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,"No.500 Century Road, Pudong",100,LTE` + "\n"},
		{"escaped-quotes", scanHeader + `1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,"say ""hi"", ok",100,LTE` + "\n"},
		{"multiline-field", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,\"line one\nline two\",100,LTE\n2,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,5,3G\n"},
		{"multiline-crlf-field", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,\"a\r\nb\",100,LTE\r\n"},
		{"bare-quote", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,ad\"dr,100,LTE\n2,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,5,3G\n"},
		{"unterminated-quote", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,\"addr,100,LTE\n"},
		{"quote-then-junk", scanHeader + `1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,"addr"x,100,LTE` + "\n2,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,5,3G\n"},
		{"too-few-fields", scanHeader + "1,2,3\n5,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,3G\n"},
		{"too-many-fields", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE,extra\n"},
		{"bad-int", scanHeader + "x,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE\n"},
		{"plus-signed-int", scanHeader + "+1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,+7,addr,+100,LTE\n"},
		{"overflow-int", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,99999999999999999999,LTE\n"},
		{"huge-but-valid-int", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,9223372036854775807,LTE\n"},
		{"negative-bytes", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,-5,LTE\n"},
		{"bad-tech", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,5G\n"},
		{"bad-time", scanHeader + "1,not-a-time,2014-08-01T08:05:00Z,7,addr,100,LTE\n"},
		{"offset-time", scanHeader + "1,2014-08-01T08:00:00+08:00,2014-08-01T08:05:00+08:00,7,addr,100,LTE\n"},
		{"negative-offset-time", scanHeader + "1,2014-08-01T08:00:00-05:30,2014-08-01T09:05:00-05:30,7,addr,100,LTE\n"},
		{"fractional-seconds", scanHeader + "1,2014-08-01T08:00:00.25Z,2014-08-01T08:05:00.75Z,7,addr,100,LTE\n"},
		{"lowercase-z", scanHeader + "1,2014-08-01T08:00:00z,2014-08-01T08:05:00z,7,addr,100,LTE\n"},
		{"single-digit-hour", scanHeader + "1,2014-08-01T8:00:00Z,2014-08-01T8:05:00Z,7,addr,100,LTE\n"},
		{"leap-day", scanHeader + "1,2016-02-29T08:00:00Z,2016-02-29T08:05:00Z,7,addr,100,LTE\n"},
		{"bad-leap-day", scanHeader + "1,2015-02-29T08:00:00Z,2015-02-29T08:05:00Z,7,addr,100,LTE\n"},
		{"hour-24", scanHeader + "1,2014-08-01T24:00:00Z,2014-08-01T24:05:00Z,7,addr,100,LTE\n"},
		{"end-before-start", scanHeader + "1,2014-08-01T08:05:00Z,2014-08-01T08:00:00Z,7,addr,100,LTE\n"},
		{"empty-fields", scanHeader + ",,,,,,\n"},
		{"quoted-empty", scanHeader + `1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,"",100,LTE` + "\n"},
		{"quoted-numeric", scanHeader + `"1","2014-08-01T08:00:00Z","2014-08-01T08:05:00Z","7","addr","100","LTE"` + "\n"},
		{"bad-header", "foo,bar\n1,2\n"},
		{"bad-header-count", "user_id,start,end\n"},
		{"wrong-first-column", "uid,start,end,tower_id,address,bytes,tech\n"},
		{"cr-inside-field", scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,ad\rdr,100,LTE\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			compareScan(t, []byte(c.data))
		})
	}
}

// TestScannerMatchesCSVReaderRandom cross-checks the two paths over
// randomly corrupted synthetic traces.
func TestScannerMatchesCSVReaderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		records := randomRecords(rng, 40)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, records); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		// Corrupt a few random bytes to exercise the malformed-row paths.
		for i := 0; i < trial%5; i++ {
			pos := rng.Intn(len(data))
			data[pos] = byte(`",x01Z-`[rng.Intn(7)])
		}
		compareScan(t, data)
	}
}

// TestScannerSmallReads re-runs the scanner with a one-byte reader so
// every buffer refill path is exercised.
func TestScannerSmallReads(t *testing.T) {
	records := []Record{validRecord()}
	r2 := validRecord()
	r2.Address = "quoted, \"address\"\nwith newline"
	r2.UserID = 9
	records = append(records, r2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(iotest{r: &buf})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Address != r2.Address {
		t.Fatalf("round trip through 1-byte reads failed: %+v", back)
	}
}

// iotest yields one byte per Read.
type iotest struct {
	r io.Reader
}

func (t iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return t.r.Read(p)
}

// TestScannerAbortsOnIOError mirrors the CSVReader regression test: a
// non-EOF error from the underlying reader must abort the stream.
func TestScannerAbortsOnIOError(t *testing.T) {
	broken := errors.New("read: connection reset")
	payload := scanHeader + "1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE\n"
	sc, err := NewScanner(&flakyReader{payload: strings.NewReader(payload), err: broken})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Next(); err != nil {
		t.Fatalf("first record should parse, got %v", err)
	}
	if _, err := sc.Next(); !errors.Is(err, broken) {
		t.Fatalf("I/O error should abort the stream, got %v", err)
	}
	if _, err := sc.Next(); !errors.Is(err, broken) {
		t.Fatalf("error should be sticky, got %v", err)
	}
}

// dataWithErrReader returns a non-EOF error together with the final
// chunk of its payload, as the io.Reader contract permits.
type dataWithErrReader struct {
	data []byte
	err  error
}

func (r *dataWithErrReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	if len(r.data) == 0 {
		return n, r.err
	}
	return n, nil
}

// TestScannerServesBufferedRecordsBeforeReadError pins the latched-error
// behaviour: when a Read returns data together with a non-EOF error, the
// complete records in that data are yielded before the error surfaces —
// exactly what the bufio-backed CSVReader does.
func TestScannerServesBufferedRecordsBeforeReadError(t *testing.T) {
	broken := errors.New("read: disk gone")
	var buf bytes.Buffer
	records := make([]Record, 50)
	for i := range records {
		records[i] = validRecord()
		records[i].UserID = i
	}
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	drain := func(src Source) ([]Record, error) {
		var out []Record
		for {
			r, err := src.Next()
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	cr, err := NewCSVReader(&dataWithErrReader{data: data, err: broken})
	if err != nil {
		t.Fatal(err)
	}
	want, werr := drain(cr)
	if !errors.Is(werr, broken) || len(want) != len(records) {
		t.Fatalf("oracle: %d records, err %v — expected all %d then the read error",
			len(want), werr, len(records))
	}

	sc, err := NewScanner(&dataWithErrReader{data: data, err: broken})
	if err != nil {
		t.Fatalf("scanner must construct from buffered data, got %v", err)
	}
	got, gerr := drain(sc)
	if !errors.Is(gerr, broken) {
		t.Fatalf("scanner terminal error = %v, want the read error", gerr)
	}
	if len(got) != len(want) {
		t.Fatalf("scanner yielded %d buffered records before the error, oracle %d", len(got), len(want))
	}
	for i := range want {
		if err := recordsEquivalent(want[i], got[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

// TestScannerZeroAlloc asserts the headline property of the tentpole:
// once the scanner has warmed its buffers and address intern table,
// batch scanning allocates nothing per record.
func TestScannerZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	records := make([]Record, 4096)
	for i := range records {
		r := validRecord()
		r.UserID = i % 97
		r.TowerID = i % 13
		r.Bytes = int64(i)
		records[i] = r
	}
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	sc, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Record, 512)
	// Warm-up: buffers grow, the address interns, the time cache fills.
	if _, err := sc.NextBatch(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := sc.NextBatch(batch); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state NextBatch allocates %.1f times per 512-record batch, want ~0", allocs)
	}
}

// TestParseIntFieldMatchesStrconv differentially validates the fast
// integer parser.
func TestParseIntFieldMatchesStrconv(t *testing.T) {
	cases := []string{
		"", "0", "1", "-1", "+1", "007", "-007", "123456789", "-123456789",
		"999999999999999999", "1000000000000000000", "9223372036854775807",
		"9223372036854775808", "-9223372036854775808", "-9223372036854775809",
		"99999999999999999999", "1x", "x1", "--1", "+-1", "1.5", " 1", "1 ",
		"1_000", "0x10",
	}
	for _, c := range cases {
		want, werr := strconv.ParseInt(c, 10, 64)
		got, ok := parseIntField([]byte(c))
		if ok != (werr == nil) {
			t.Errorf("%q: ok=%v, strconv err=%v", c, ok, werr)
			continue
		}
		if ok && got != want {
			t.Errorf("%q: got %d, want %d", c, got, want)
		}
	}
}

// TestParseTimeFieldMatchesTimeParse differentially validates the fast
// timestamp parser, including zone offsets and instants. Canonical UTC
// forms must be bit-identical (==) to time.Parse's result — the parallel
// equivalence tests compare whole Records with != — including through
// the scanner's single-entry date cache.
func TestParseTimeFieldMatchesTimeParse(t *testing.T) {
	cases := []string{
		"2014-08-01T08:00:00Z", "2016-02-29T23:59:59Z", "2015-02-29T00:00:00Z",
		"2014-12-31T23:59:59Z", "0000-01-01T00:00:00Z", "9999-12-31T23:59:59Z",
		"2014-08-01T08:00:00+08:00", "2014-08-01T08:00:00-05:30",
		"2014-08-01T08:00:00.123Z", "2014-08-01T08:00:00z",
		"2014-08-01T24:00:00Z", "2014-08-01T08:60:00Z", "2014-08-01T08:00:60Z",
		"2014-13-01T08:00:00Z", "2014-00-01T08:00:00Z", "2014-08-00T08:00:00Z",
		"2014-08-32T08:00:00Z", "2014-08-1T08:00:00Z", "2014-8-01T08:00:00Z",
		"2014-08-01 08:00:00Z", "2014-08-01T8:00:00Z", "not-a-time", "",
		"2014-08-01T08:00:00", "2014-08-01T08:00:00+0800",
	}
	sc := newChunkScanner()
	for pass := 0; pass < 2; pass++ { // second pass hits the date cache
		for _, c := range cases {
			want, werr := time.Parse(timeLayout, c)
			got, ok := sc.parseTime([]byte(c))
			if ok != (werr == nil) {
				t.Errorf("%q: ok=%v, time.Parse err=%v", c, ok, werr)
				continue
			}
			if !ok {
				continue
			}
			if !got.Equal(want) {
				t.Errorf("%q: got %v, want %v", c, got, want)
			}
			_, goff := got.Zone()
			_, woff := want.Zone()
			if goff != woff {
				t.Errorf("%q: zone offset %d, want %d", c, goff, woff)
			}
			if strings.HasSuffix(c, "Z") && werr == nil && got != want {
				t.Errorf("%q: fast path not bit-identical to time.Parse", c)
			}
		}
	}
}

// TestWriteCSVMatchesEncodingCSV pins the append-based writer to the
// exact byte output of the encoding/csv implementation it replaced.
func TestWriteCSVMatchesEncodingCSV(t *testing.T) {
	records := []Record{validRecord()}
	r2 := validRecord()
	r2.Address = `Tricky "quoted", address`
	r2.Tech = Tech3G
	r3 := validRecord()
	r3.Address = "multi\nline\raddr"
	r4 := validRecord()
	r4.Address = " leading space"
	r5 := validRecord()
	r5.Address = `\.`
	r6 := validRecord()
	r6.Address = ""
	records = append(records, r2, r3, r4, r5, r6)

	var got bytes.Buffer
	if err := WriteCSV(&got, records); err != nil {
		t.Fatal(err)
	}
	want := oracleWriteCSV(t, records)
	if got.String() != want {
		t.Errorf("append writer output differs from encoding/csv:\ngot:  %q\nwant: %q", got.String(), want)
	}

	// The streaming writer emits the same bytes record by record.
	var streamed bytes.Buffer
	cw := NewCSVWriter(&streamed)
	for _, r := range records {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != want {
		t.Errorf("streaming writer output differs from encoding/csv")
	}
}

// oracleWriteCSV is the PR 1 write path — encoding/csv plus per-field
// strconv/Format — kept as the byte-exactness oracle for the append
// writers.
func oracleWriteCSV(t *testing.T, records []Record) string {
	t.Helper()
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	if err := cw.Write(csvHeader); err != nil {
		t.Fatal(err)
	}
	row := make([]string, len(csvHeader))
	for _, r := range records {
		row[0] = strconv.Itoa(r.UserID)
		row[1] = r.Start.Format(timeLayout)
		row[2] = r.End.Format(timeLayout)
		row[3] = strconv.Itoa(r.TowerID)
		row[4] = r.Address
		row[5] = strconv.FormatInt(r.Bytes, 10)
		row[6] = string(r.Tech)
		if err := cw.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
