package trace

// batch.go is the batched face of the ingestion layer. PR 1 moved the
// pipeline from slices to one-record-at-a-time Sources; at millions of
// records per second the per-record interface call itself becomes the
// bottleneck, so the engine now moves records in batches: producers that
// can fill a slice in one call implement BatchSource, everything else is
// adapted with Batched, and consumers drain through pooled batch buffers
// so the steady state recycles a fixed set of slices.

import (
	"errors"
	"io"
	"sync"
)

// DefaultBatchSize is the record count of pooled batch buffers: large
// enough to amortise interface calls and channel handoffs down to noise,
// small enough (~250 KiB of records) to stay cache- and pool-friendly.
const DefaultBatchSize = 2048

// BatchSource is a pull-based stream of record batches. NextBatch fills
// dst with up to len(dst) records and returns how many were produced;
// dst[:n] is always valid. A non-nil error is terminal and may accompany
// the stream's final records: io.EOF for the normal end of stream,
// anything else a producer failure. After a non-nil error the source
// must not be used again. Calling NextBatch with an empty dst returns
// (0, nil) and makes no progress.
type BatchSource interface {
	NextBatch(dst []Record) (int, error)
}

// SizeHinter is implemented by sources that can estimate how many
// records remain. The hint is approximate — collectors use it to
// preallocate, never to bound the stream.
type SizeHinter interface {
	SizeHint() int
}

// Batched adapts src to the batch interface. Sources that already
// implement BatchSource (the Scanner, ParallelCSVSource, CleanedSource,
// synthetic log streams) are returned as-is; anything else is wrapped in
// an adapter that fills batches one Next call at a time, which still
// amortises the downstream handoffs even when the producer is scalar.
func Batched(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batchAdapter{src: src}
}

type batchAdapter struct {
	src Source
}

func (a *batchAdapter) NextBatch(dst []Record) (int, error) {
	for i := range dst {
		r, err := a.src.Next()
		if err != nil {
			return i, err
		}
		dst[i] = r
	}
	return len(dst), nil
}

// batchPool recycles batch buffers across sources and consumers.
// Pointers to slices avoid the allocation a plain []Record interface
// conversion would cost on every Put.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]Record, DefaultBatchSize)
		return &b
	},
}

// GetBatch returns a pooled batch buffer of DefaultBatchSize records.
// Return it with PutBatch when drained.
func GetBatch() *[]Record {
	return batchPool.Get().(*[]Record)
}

// PutBatch returns a buffer obtained from GetBatch to the pool.
func PutBatch(b *[]Record) {
	if b != nil && cap(*b) >= DefaultBatchSize {
		*b = (*b)[:cap(*b)]
		batchPool.Put(b)
	}
}

// ForEachBatch drains src through a pooled batch buffer, invoking fn for
// every non-empty batch. The batch slice is reused between calls: fn
// must not retain it. It stops at the first error from either side
// (io.EOF from the source is the normal end of stream and yields nil).
func ForEachBatch(src BatchSource, fn func([]Record) error) error {
	bp := GetBatch()
	defer PutBatch(bp)
	buf := *bp
	for {
		n, err := src.NextBatch(buf)
		if n > 0 {
			if ferr := fn(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}
