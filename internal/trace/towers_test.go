package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

func TestTowersCSVRoundTrip(t *testing.T) {
	towers := []TowerInfo{
		{TowerID: 1, Address: "No.500 Century Road, Pudong District, Shanghai (BS-00001)", Location: geo.Point{Lat: 31.2304, Lon: 121.4737}, Resolved: true},
		{TowerID: 7, Address: "No.12 Nanjing Road, Huangpu District, Shanghai (BS-00007)", Location: geo.Point{Lat: 31.2400, Lon: 121.4800}, Resolved: true},
	}
	var buf bytes.Buffer
	if err := WriteTowersCSV(&buf, towers); err != nil {
		t.Fatal(err)
	}
	back, geocoder, err := ReadTowersCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range towers {
		if back[i].TowerID != towers[i].TowerID || back[i].Address != towers[i].Address {
			t.Errorf("tower %d metadata differs", i)
		}
		if geo.DistanceMeters(back[i].Location, towers[i].Location) > 1 {
			t.Errorf("tower %d location drifted", i)
		}
		if !back[i].Resolved {
			t.Errorf("tower %d should be marked resolved", i)
		}
	}
	// The geocoder is populated with the addresses.
	p, err := geocoder.Resolve(towers[0].Address)
	if err != nil {
		t.Fatalf("geocoder missing address: %v", err)
	}
	if geo.DistanceMeters(p, towers[0].Location) > 1 {
		t.Error("geocoder returned wrong location")
	}
}

func TestReadTowersCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"foo,bar,baz,qux\n",
		"tower_id,address,lat,lon\nnot-a-number,addr,31,121\n",
		"tower_id,address,lat,lon\n1,addr,bad,121\n",
		"tower_id,address,lat,lon\n1,addr,31,bad\n",
		"tower_id,address,lat,lon\n1,addr,99,121\n", // invalid latitude for geocoder
	}
	for i, c := range cases {
		if _, _, err := ReadTowersCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCSVWriterStreaming(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	if w.Count() != 0 {
		t.Error("fresh writer should have count 0")
	}
	rec := Record{
		UserID:  1,
		Start:   time.Date(2014, 8, 1, 8, 0, 0, 0, time.UTC),
		End:     time.Date(2014, 8, 1, 8, 5, 0, 0, time.UTC),
		TowerID: 3,
		Address: "addr",
		Bytes:   42,
		Tech:    Tech3G,
	}
	for i := 0; i < 3; i++ {
		r := rec
		r.UserID = i
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d, want 3", w.Count())
	}
	// The streamed output parses back with the batch reader.
	records, skipped, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(records) != 3 {
		t.Errorf("parsed %d records (%d skipped)", len(records), skipped)
	}
	if records[2].UserID != 2 || records[2].Bytes != 42 {
		t.Errorf("record content wrong: %+v", records[2])
	}
}
