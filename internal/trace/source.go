package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
)

// Source is a pull-based stream of connection records: the unit of
// composition of the ingestion layer. Next returns the next record, or
// io.EOF once the stream is exhausted. Any other error is a terminal
// failure of the underlying producer; after a non-nil error the source
// must not be used again.
//
// Sources let the pipeline process traces far larger than memory: the
// CSV reader, the streaming cleaner and the streaming vectorizer all
// speak Source, so a trace flows from disk (or the synthetic generator)
// to per-tower traffic vectors one record at a time.
type Source interface {
	Next() (Record, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (Record, error)

// Next calls f.
func (f SourceFunc) Next() (Record, error) { return f() }

// sliceSource streams an in-memory record slice.
type sliceSource struct {
	records []Record
	pos     int
}

// SliceSource returns a Source that yields the records in order. It is
// the bridge from the legacy slice-based APIs to the streaming core.
func SliceSource(records []Record) Source {
	return &sliceSource{records: records}
}

func (s *sliceSource) Next() (Record, error) {
	if s.pos >= len(s.records) {
		return Record{}, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// NextBatch copies the next run of records into dst.
func (s *sliceSource) NextBatch(dst []Record) (int, error) {
	if s.pos >= len(s.records) {
		return 0, io.EOF
	}
	n := copy(dst, s.records[s.pos:])
	s.pos += n
	return n, nil
}

// SizeHint reports exactly how many records remain.
func (s *sliceSource) SizeHint() int { return len(s.records) - s.pos }

// ForEach drains the source, invoking fn for every record. It stops at
// the first error from either the source or fn and returns it (io.EOF
// from the source is the normal end of stream and yields nil).
func ForEach(src Source, fn func(Record) error) error {
	for {
		r, err := src.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// Collect drains the source into a slice. Prefer streaming consumers for
// large traces; Collect exists for tests and the slice-based wrappers.
// Sources implementing SizeHinter get their slice preallocated instead
// of grown from nil, and batch-capable sources are drained batch-wise.
func Collect(src Source) ([]Record, error) {
	var out []Record
	if h, ok := src.(SizeHinter); ok {
		if n := h.SizeHint(); n > 0 {
			out = make([]Record, 0, n)
		}
	}
	bs := Batched(src)
	bp := GetBatch()
	defer PutBatch(bp)
	for {
		n, err := bs.NextBatch(*bp)
		out = append(out, (*bp)[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, err
		}
	}
}

// CSVReader is a streaming Source over the CSV format written by
// WriteCSV / CSVWriter. Structurally broken rows (*csv.ParseError) and
// rows whose fields fail to parse or validate are skipped and counted;
// I/O errors from the underlying reader abort the stream.
type CSVReader struct {
	cr    *csv.Reader
	stats SkipStats
	line  int64 // physical lines consumed; best-effort for multi-line rows
	err   error
}

// NewCSVReader wraps r, reads and checks the header row, and returns a
// Source yielding one record per data row.
func NewCSVReader(r io.Reader) (*CSVReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != csvHeader[0] {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	return &CSVReader{cr: cr, line: 1}, nil
}

// Next returns the next well-formed record. Malformed rows are skipped
// (see Skipped); the error is io.EOF at end of input, or the underlying
// I/O error, both sticky. I/O errors are wrapped in a PosError carrying
// the line number and byte offset at which the read failed, so a corrupt
// region of a multi-gigabyte trace is locatable from the error alone.
func (r *CSVReader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	for {
		row, err := r.cr.Read()
		if err != nil {
			var perr *csv.ParseError
			if errors.As(err, &perr) {
				// Structurally broken CSV row: count and continue.
				// ParseError tracks physical lines exactly; resync so
				// multi-line rows before this point don't skew positions.
				r.stats.MalformedRows++
				r.line = int64(perr.Line)
				continue
			}
			if !errors.Is(err, io.EOF) {
				err = fmt.Errorf("trace: reading row: %w", &PosError{
					Line:   r.line + 1,
					Offset: r.cr.InputOffset(),
					Err:    err,
				})
			}
			r.err = err
			return Record{}, err
		}
		r.line++
		rec, cat, _ := parseRowCat(row)
		if cat != skipNone {
			r.stats.count(cat)
			continue
		}
		return rec, nil
	}
}

// Skipped returns the number of malformed rows skipped so far.
func (r *CSVReader) Skipped() int { return int(r.stats.SkippedRows()) }

// Stats returns the per-category skip accounting so far.
func (r *CSVReader) Stats() SkipStats { return r.stats }
