package trace

// policy.go defines the ingestion error policy: what an IngestSource
// does when it meets a row it cannot turn into a Record. Historically
// every reader silently skipped malformed rows and exposed a bare count;
// a production ingest needs the choice to be explicit — fail on the
// first bad row (a schema change upstream), tolerate everything (ad-hoc
// exploration), or tolerate a bounded amount (the steady state: CDR
// exports are noisy, but a sudden flood of garbage should stop the run,
// not silently hollow out the dataset). The skip accounting is
// structured per category so the run footer can say *why* rows were
// dropped, not just how many.

import (
	"errors"
	"fmt"
)

// PolicyMode selects how an ingestion source treats rows that fail to
// parse or validate.
type PolicyMode uint8

const (
	// PolicySkip drops and counts malformed rows — the historical
	// behaviour and the zero value.
	PolicySkip PolicyMode = iota
	// PolicyFailFast aborts the stream on the first malformed row with a
	// positioned error (line + byte offset) identifying it.
	PolicyFailFast
	// PolicyBudget drops and counts malformed rows until the Budget is
	// exceeded, then aborts the stream with ErrBudgetExceeded.
	PolicyBudget
)

// String names the mode for logs and error text.
func (m PolicyMode) String() string {
	switch m {
	case PolicySkip:
		return "skip"
	case PolicyFailFast:
		return "fail-fast"
	case PolicyBudget:
		return "budget"
	default:
		return fmt.Sprintf("policy(%d)", uint8(m))
	}
}

// Budget bounds how many malformed rows PolicyBudget tolerates. A zero
// field disables that bound; a Budget with both fields zero tolerates
// everything, like PolicySkip.
type Budget struct {
	// MaxRows is the largest acceptable number of skipped rows; the
	// stream aborts on the row that exceeds it. <= 0 means unlimited.
	MaxRows int
	// MaxFraction is the largest acceptable skipped/seen row fraction.
	// To keep one early bad row from tripping a ratio over a tiny
	// denominator, the fraction is only evaluated once
	// budgetFractionMinRows rows have been seen. <= 0 means unlimited.
	MaxFraction float64
}

// budgetFractionMinRows is the minimum number of observed data rows
// before Budget.MaxFraction is evaluated.
const budgetFractionMinRows = 1024

// ErrorPolicy configures an ingestion source's tolerance for malformed
// rows and transient I/O errors. The zero value is the historical
// behaviour: skip and count bad rows, never retry reads.
type ErrorPolicy struct {
	// Mode selects skip / fail-fast / budget handling of bad rows.
	Mode PolicyMode
	// Budget bounds the tolerated bad rows when Mode is PolicyBudget.
	Budget Budget
	// Retry enables bounded retry-with-backoff for transient errors from
	// the underlying reader (see RetryPolicy); the zero value disables
	// retrying.
	Retry RetryPolicy
}

// exceeded reports whether the accumulated skip count breaks the budget.
// rows counts all data rows observed so far, skipped included.
func (p ErrorPolicy) exceeded(skipped, rows int64) bool {
	if p.Mode != PolicyBudget {
		return false
	}
	if p.Budget.MaxRows > 0 && skipped > int64(p.Budget.MaxRows) {
		return true
	}
	if p.Budget.MaxFraction > 0 && rows >= budgetFractionMinRows &&
		float64(skipped) > p.Budget.MaxFraction*float64(rows) {
		return true
	}
	return false
}

// ErrBudgetExceeded is wrapped into the terminal error of a source whose
// PolicyBudget ran out of tolerance.
var ErrBudgetExceeded = errors.New("ingestion error budget exceeded")

// ErrRowRejected is wrapped into the terminal error of a PolicyFailFast
// source that met a malformed row.
var ErrRowRejected = errors.New("row rejected by fail-fast ingestion policy")

// SkipStats breaks the dropped-row accounting of an ingestion source
// down by cause. Skipped() remains the backwards-compatible total.
type SkipStats struct {
	// MalformedRows counts structurally broken CSV rows: quoting errors,
	// wrong field counts — rows encoding/csv itself would reject.
	MalformedRows int64
	// BadTimestamps counts well-formed rows whose start or end column
	// failed to parse as a timestamp.
	BadTimestamps int64
	// BadFields counts well-formed rows with an unparseable numeric
	// column, an unknown radio technology, or values failing Record
	// validation (negative counts, reversed intervals).
	BadFields int64
	// UnknownTowers counts records dropped downstream because their
	// tower has no usable metadata; ingestion readers leave it zero.
	UnknownTowers int64
	// IORetries counts transient read errors absorbed by retry-with-
	// backoff (see RetryPolicy). Retried reads drop no rows; the counter
	// exists so a degrading input device is visible before it fails hard.
	IORetries int64
}

// SkippedRows is the total number of dropped rows across all categories.
func (s SkipStats) SkippedRows() int64 {
	return s.MalformedRows + s.BadTimestamps + s.BadFields + s.UnknownTowers
}

// Add accumulates o into s.
func (s *SkipStats) Add(o SkipStats) {
	s.MalformedRows += o.MalformedRows
	s.BadTimestamps += o.BadTimestamps
	s.BadFields += o.BadFields
	s.UnknownTowers += o.UnknownTowers
	s.IORetries += o.IORetries
}

// String renders the non-zero counters, for error text and log lines.
func (s SkipStats) String() string {
	return fmt.Sprintf("malformed=%d bad_timestamp=%d bad_field=%d unknown_tower=%d io_retries=%d",
		s.MalformedRows, s.BadTimestamps, s.BadFields, s.UnknownTowers, s.IORetries)
}

// skipCategory classifies why one row was dropped; skipNone means the
// row produced a record.
type skipCategory uint8

const (
	skipNone skipCategory = iota
	skipMalformed
	skipBadTimestamp
	skipBadField
)

// String names the category for positioned fail-fast errors.
func (c skipCategory) String() string {
	switch c {
	case skipMalformed:
		return "malformed CSV row"
	case skipBadTimestamp:
		return "bad timestamp"
	case skipBadField:
		return "bad field"
	default:
		return "ok"
	}
}

// count bumps the counter for one dropped row of category c.
func (s *SkipStats) count(c skipCategory) {
	switch c {
	case skipMalformed:
		s.MalformedRows++
	case skipBadTimestamp:
		s.BadTimestamps++
	case skipBadField:
		s.BadFields++
	}
}

// PosError locates an ingestion error in the input stream: the 1-based
// physical line and the byte offset at which the offending row (or the
// failed read) starts. The header row is line 1. It wraps the underlying
// cause for errors.Is / errors.As.
//
// Line numbers from the encoding/csv-backed CSVReader are best-effort
// for quoted rows spanning physical lines (each record counts as one
// line); the byte-level Scanner and ParallelCSVSource count physical
// lines exactly.
type PosError struct {
	// Line is the 1-based line number of the failing row's first line.
	Line int64
	// Offset is the byte offset of that line's start (Scanner paths) or
	// of the reader's position when the error surfaced (CSVReader paths).
	Offset int64
	// Err is the underlying cause.
	Err error
}

// Error formats the position ahead of the cause.
func (e *PosError) Error() string {
	return fmt.Sprintf("line %d (byte offset %d): %v", e.Line, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *PosError) Unwrap() error { return e.Err }
