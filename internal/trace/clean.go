package trace

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// CleanStats summarises what the preprocessing stage removed or repaired.
type CleanStats struct {
	// Input is the number of records before cleaning.
	Input int
	// Invalid is the number of records dropped for failing validation
	// (negative bytes, reversed intervals, unknown technology, ...).
	Invalid int
	// Duplicates is the number of exact duplicate records removed.
	Duplicates int
	// Conflicts is the number of conflicting records merged (same user,
	// tower and interval but different byte counts).
	Conflicts int
	// Output is the number of records that survive cleaning.
	Output int
}

// Cleaner is the single-pass streaming form of the preprocessing step of
// Section 2.2: it drops structurally invalid records, removes exact
// duplicates and resolves conflicting logs, one record at a time. Its
// per-connection state is just the largest byte count seen for each
// connection key — not the full record — so memory is O(distinct keys)
// with a small constant, not O(records).
//
// Conflict resolution keeps the largest byte count, the conservative
// choice an operator makes when the same session was exported twice with
// partial counters. Because a larger copy can arrive after the first copy
// has already been forwarded downstream, the Cleaner resolves such late
// conflicts by forwarding an amendment record carrying only the byte
// delta (the technique of retraction/correction deltas in streaming
// systems): for every connection key, the byte counts forwarded downstream
// always sum to exactly the largest copy observed. Additive consumers —
// the vectorizer, traffic density — therefore see exactly the same totals
// as the batch Clean.
type Cleaner struct {
	stats  CleanStats
	max    map[key]cleanEntry
	window uint64
	seq    uint64
}

// cleanEntry is the per-connection dedup state: the largest byte count
// seen and the stream position of the last copy, used for window
// eviction.
type cleanEntry struct {
	bytes int64
	seq   uint64
}

// NewCleaner returns a streaming cleaner with unbounded dedup state:
// exact for arbitrarily reordered input, at ~40 bytes per distinct
// connection key. For traces whose distinct-connection count exceeds
// memory, use NewCleanerWindow.
func NewCleaner() *Cleaner {
	return NewCleanerWindow(0)
}

// NewCleanerWindow returns a streaming cleaner whose dedup state is
// bounded: state for a connection is guaranteed to be retained while the
// last copy of that connection is within the most recent `window`
// observed records, and the total state never exceeds 2×window entries.
// A duplicate or conflicting copy arriving more than `window` records
// after the previous copy of the same connection may be forwarded again
// as if new — so the window must exceed the maximum reorder distance
// between copies of one connection. CDR exports emit redundant copies
// adjacently, so a modest window (say 2^20) keeps cleaning exact while
// capping memory regardless of trace length. window 0 means unbounded.
func NewCleanerWindow(window int) *Cleaner {
	if window < 0 {
		window = 0
	}
	return &Cleaner{max: make(map[key]cleanEntry), window: uint64(window)}
}

// Observe processes one record and reports whether (and what) to forward
// downstream. The forwarded record is the input record itself for the
// first copy of a connection, or an amendment carrying the byte delta
// when a later copy raises the connection's byte count.
func (c *Cleaner) Observe(r Record) (Record, bool) {
	c.stats.Input++
	if err := r.Validate(); err != nil {
		c.stats.Invalid++
		return Record{}, false
	}
	c.seq++
	if c.window > 0 && uint64(len(c.max)) > 2*c.window {
		c.evict()
	}
	k := r.key()
	prev, seen := c.max[k]
	if !seen {
		c.max[k] = cleanEntry{bytes: r.Bytes, seq: c.seq}
		c.stats.Output++
		return r, true
	}
	if r.Bytes == prev.bytes {
		c.stats.Duplicates++
		c.max[k] = cleanEntry{bytes: prev.bytes, seq: c.seq}
		return Record{}, false
	}
	c.stats.Conflicts++
	if r.Bytes < prev.bytes {
		c.max[k] = cleanEntry{bytes: prev.bytes, seq: c.seq}
		return Record{}, false
	}
	delta := r.Bytes - prev.bytes
	c.max[k] = cleanEntry{bytes: r.Bytes, seq: c.seq}
	r.Bytes = delta
	c.stats.Output++
	return r, true
}

// evict drops dedup state whose connection was last seen more than
// `window` records ago. It runs once per `window` inserts at most, so the
// amortised cost per record is O(1).
func (c *Cleaner) evict() {
	cut := c.seq - c.window
	for k, e := range c.max {
		if e.seq < cut {
			delete(c.max, k)
		}
	}
}

// Stats returns the counters accumulated so far. Output counts forwarded
// records, including amendments.
func (c *Cleaner) Stats() CleanStats { return c.stats }

// CleanedSource filters a Source through a streaming Cleaner. It speaks
// both the scalar and the batch interface: when the wrapped source is
// batch-capable (a Scanner, ParallelCSVSource or synthetic log stream),
// records flow through the cleaner a batch at a time and are compacted
// in place, so the per-record interface call of the PR 1 design
// disappears from the ingestion hot path.
type CleanedSource struct {
	src     BatchSource
	cleaner *Cleaner
}

// CleanSource wraps src so that every record pulled from the returned
// source has passed the streaming cleaner (unbounded, exact dedup
// state). Stats are available at any time (typically after the stream is
// drained).
func CleanSource(src Source) *CleanedSource {
	return CleanSourceWindow(src, 0)
}

// CleanSourceWindow is CleanSource with a bounded dedup window (see
// NewCleanerWindow): memory stays O(window) regardless of trace length,
// provided copies of one connection arrive within `window` records of
// each other. window 0 means unbounded.
func CleanSourceWindow(src Source, window int) *CleanedSource {
	return &CleanedSource{src: Batched(src), cleaner: NewCleanerWindow(window)}
}

// Next pulls records from the underlying source until one survives
// cleaning, and returns it. Do not interleave Next and NextBatch calls
// with records still buffered downstream; both draw from the same
// underlying stream.
func (s *CleanedSource) Next() (Record, error) {
	var one [1]Record
	for {
		n, err := s.NextBatch(one[:])
		if n == 1 {
			return one[0], nil
		}
		if err != nil {
			return Record{}, err
		}
	}
}

// NextBatch fills dst with up to len(dst) records that survived
// cleaning, compacting each underlying batch in place. See BatchSource
// for the error contract.
func (s *CleanedSource) NextBatch(dst []Record) (int, error) {
	out := 0
	for out == 0 && len(dst) > 0 {
		n, err := s.src.NextBatch(dst)
		for i := 0; i < n; i++ {
			if r, ok := s.cleaner.Observe(dst[i]); ok {
				dst[out] = r
				out++
			}
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Stats returns the cleaning counters accumulated so far.
func (s *CleanedSource) Stats() CleanStats { return s.cleaner.Stats() }

// Clean is the batch wrapper over the streaming Cleaner: it drops
// structurally invalid records, removes exact duplicates and resolves
// conflicting logs, keeping the largest byte count of each conflicting
// pair. Amendment deltas emitted by the streaming core are folded back
// into the first copy of their connection, so the output carries exactly
// one record per logical connection (fields other than Bytes are taken
// from the first copy seen). The returned slice is sorted by start time,
// then tower, then user, giving the pipeline a deterministic order.
func Clean(records []Record) ([]Record, CleanStats) {
	c := NewCleaner()
	out := make([]Record, 0, len(records))
	at := make(map[key]int, len(records))
	for _, r := range records {
		fwd, ok := c.Observe(r)
		if !ok {
			continue
		}
		k := fwd.key()
		if i, seen := at[k]; seen {
			out[i].Bytes += fwd.Bytes
		} else {
			at[k] = len(out)
			out = append(out, fwd)
		}
	}
	stats := c.Stats()
	stats.Output = len(out)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].TowerID != out[j].TowerID {
			return out[i].TowerID < out[j].TowerID
		}
		if out[i].UserID != out[j].UserID {
			return out[i].UserID < out[j].UserID
		}
		return out[i].Bytes < out[j].Bytes
	})
	return out, stats
}

// ResolveTowers performs the second preprocessing step: it collects the
// distinct towers appearing in the records and resolves their addresses to
// coordinates through the geocoder (the offline stand-in for the Baidu Map
// API). Towers whose address cannot be resolved are reported with
// Resolved=false so the caller can decide whether to drop them.
func ResolveTowers(records []Record, geocoder *geo.Geocoder) ([]TowerInfo, error) {
	if geocoder == nil {
		return nil, fmt.Errorf("trace: nil geocoder")
	}
	addr := make(map[int]string)
	for _, r := range records {
		if _, ok := addr[r.TowerID]; !ok {
			addr[r.TowerID] = r.Address
		}
	}
	ids := make([]int, 0, len(addr))
	for id := range addr {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]TowerInfo, 0, len(ids))
	for _, id := range ids {
		info := TowerInfo{TowerID: id, Address: addr[id]}
		if p, err := geocoder.Resolve(info.Address); err == nil {
			info.Location = p
			info.Resolved = true
		}
		out = append(out, info)
	}
	return out, nil
}

// TrafficDensity performs the third preprocessing step: it rasterises the
// per-tower traffic onto a grid over the city bounding box and returns the
// grid populated with bytes, from which Densities() yields bytes per km².
// Records belonging to towers without a resolved location are skipped and
// counted.
func TrafficDensity(records []Record, towers []TowerInfo, box geo.BoundingBox, rows, cols int) (*geo.Grid, int, error) {
	grid, err := geo.NewGrid(box, rows, cols)
	if err != nil {
		return nil, 0, err
	}
	loc := make(map[int]geo.Point, len(towers))
	for _, t := range towers {
		if t.Resolved {
			loc[t.TowerID] = t.Location
		}
	}
	skipped := 0
	for _, r := range records {
		p, ok := loc[r.TowerID]
		if !ok {
			skipped++
			continue
		}
		if !grid.Add(p, float64(r.Bytes)) {
			skipped++
		}
	}
	return grid, skipped, nil
}
