package trace

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// CleanStats summarises what the preprocessing stage removed or repaired.
type CleanStats struct {
	// Input is the number of records before cleaning.
	Input int
	// Invalid is the number of records dropped for failing validation
	// (negative bytes, reversed intervals, unknown technology, ...).
	Invalid int
	// Duplicates is the number of exact duplicate records removed.
	Duplicates int
	// Conflicts is the number of conflicting records merged (same user,
	// tower and interval but different byte counts).
	Conflicts int
	// Output is the number of records that survive cleaning.
	Output int
}

// Clean performs the first preprocessing step of Section 2.2: it drops
// structurally invalid records, removes exact duplicates and resolves
// conflicting logs. Conflicting copies of the same logical connection are
// merged by keeping the largest byte count, the conservative choice an
// operator makes when the same session was exported twice with partial
// counters. The returned slice is sorted by start time, then tower, then
// user, giving the pipeline a deterministic order.
func Clean(records []Record) ([]Record, CleanStats) {
	stats := CleanStats{Input: len(records)}
	best := make(map[key]Record, len(records))
	for _, r := range records {
		if err := r.Validate(); err != nil {
			stats.Invalid++
			continue
		}
		k := r.key()
		prev, seen := best[k]
		if !seen {
			best[k] = r
			continue
		}
		if prev.Bytes == r.Bytes {
			stats.Duplicates++
			continue
		}
		stats.Conflicts++
		if r.Bytes > prev.Bytes {
			best[k] = r
		}
	}
	out := make([]Record, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].TowerID != out[j].TowerID {
			return out[i].TowerID < out[j].TowerID
		}
		if out[i].UserID != out[j].UserID {
			return out[i].UserID < out[j].UserID
		}
		return out[i].Bytes < out[j].Bytes
	})
	stats.Output = len(out)
	return out, stats
}

// ResolveTowers performs the second preprocessing step: it collects the
// distinct towers appearing in the records and resolves their addresses to
// coordinates through the geocoder (the offline stand-in for the Baidu Map
// API). Towers whose address cannot be resolved are reported with
// Resolved=false so the caller can decide whether to drop them.
func ResolveTowers(records []Record, geocoder *geo.Geocoder) ([]TowerInfo, error) {
	if geocoder == nil {
		return nil, fmt.Errorf("trace: nil geocoder")
	}
	addr := make(map[int]string)
	for _, r := range records {
		if _, ok := addr[r.TowerID]; !ok {
			addr[r.TowerID] = r.Address
		}
	}
	ids := make([]int, 0, len(addr))
	for id := range addr {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]TowerInfo, 0, len(ids))
	for _, id := range ids {
		info := TowerInfo{TowerID: id, Address: addr[id]}
		if p, err := geocoder.Resolve(info.Address); err == nil {
			info.Location = p
			info.Resolved = true
		}
		out = append(out, info)
	}
	return out, nil
}

// TrafficDensity performs the third preprocessing step: it rasterises the
// per-tower traffic onto a grid over the city bounding box and returns the
// grid populated with bytes, from which Densities() yields bytes per km².
// Records belonging to towers without a resolved location are skipped and
// counted.
func TrafficDensity(records []Record, towers []TowerInfo, box geo.BoundingBox, rows, cols int) (*geo.Grid, int, error) {
	grid, err := geo.NewGrid(box, rows, cols)
	if err != nil {
		return nil, 0, err
	}
	loc := make(map[int]geo.Point, len(towers))
	for _, t := range towers {
		if t.Resolved {
			loc[t.TowerID] = t.Location
		}
	}
	skipped := 0
	for _, r := range records {
		p, ok := loc[r.TowerID]
		if !ok {
			skipped++
			continue
		}
		if !grid.Add(p, float64(r.Bytes)) {
			skipped++
		}
	}
	return grid, skipped, nil
}
