package trace

// retry.go gives file/stream sources bounded tolerance for transient
// I/O errors. Network filesystems and object-store gateways routinely
// surface timeouts or ECONNRESET-shaped errors that succeed on the next
// attempt; without retrying, one blip aborts a multi-hour ingest. The
// RetryReader sits under the CSV readers, replays failed Reads with
// exponential backoff, and counts every absorbed failure so the skip
// stats make a degrading device visible long before it fails hard.

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"time"
)

// Default retry timing, used when a RetryPolicy enables retrying but
// leaves the knobs zero.
const (
	defaultRetryBackoff    = time.Millisecond
	defaultRetryMaxBackoff = 250 * time.Millisecond
)

// RetryPolicy bounds retry-with-backoff for transient errors from an
// underlying reader. The zero value disables retrying.
type RetryPolicy struct {
	// MaxAttempts is the number of retries allowed for one failing Read
	// (consecutive failures; the counter resets on success). <= 0
	// disables retrying.
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling on every
	// consecutive failure. 0 means defaultRetryBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling. 0 means defaultRetryMaxBackoff.
	MaxBackoff time.Duration
	// IsTransient classifies errors worth retrying; nil means the
	// package-level IsTransient.
	IsTransient func(error) bool
}

// IsTransient is the default transient-error classifier: an error is
// retriable when anything in its chain declares itself Temporary() or
// Timeout() — the convention of net.Error and of the fault-injection
// harness. io.EOF and io.ErrUnexpectedEOF are never transient.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return false
	}
	var temp interface{ Temporary() bool }
	if errors.As(err, &temp) && temp.Temporary() {
		return true
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	return false
}

// RetryReader retries transient failures of the wrapped reader with
// exponential backoff, observing ctx while it waits. Reads that return
// data are passed through untouched (the error, if any, resurfaces on
// the next call per io.Reader convention). Safe for the single-consumer
// use of the ingestion readers; Retries is safe to call concurrently.
type RetryReader struct {
	r       io.Reader
	ctx     context.Context
	policy  RetryPolicy
	retries atomic.Int64
}

// NewRetryReader wraps r with the given retry policy. A nil ctx means
// context.Background(). With a zero policy the reader is a pass-through.
func NewRetryReader(ctx context.Context, r io.Reader, policy RetryPolicy) *RetryReader {
	if ctx == nil {
		ctx = context.Background()
	}
	if policy.Backoff <= 0 {
		policy.Backoff = defaultRetryBackoff
	}
	if policy.MaxBackoff <= 0 {
		policy.MaxBackoff = defaultRetryMaxBackoff
	}
	if policy.IsTransient == nil {
		policy.IsTransient = IsTransient
	}
	return &RetryReader{r: r, ctx: ctx, policy: policy}
}

// Retries returns how many transient read failures have been absorbed.
func (r *RetryReader) Retries() int64 { return r.retries.Load() }

// Read reads from the wrapped reader, retrying transient zero-byte
// failures up to MaxAttempts times with doubling backoff. Cancellation
// of ctx during a backoff wait returns ctx.Err() immediately.
func (r *RetryReader) Read(p []byte) (int, error) {
	backoff := r.policy.Backoff
	for attempt := 0; ; attempt++ {
		n, err := r.r.Read(p)
		if n > 0 || err == nil || !r.policy.IsTransient(err) || attempt >= r.policy.MaxAttempts {
			return n, err
		}
		r.retries.Add(1)
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-r.ctx.Done():
			t.Stop()
			return 0, r.ctx.Err()
		}
		if backoff *= 2; backoff > r.policy.MaxBackoff {
			backoff = r.policy.MaxBackoff
		}
	}
}
