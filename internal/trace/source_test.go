package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSliceSourceAndCollect(t *testing.T) {
	records := []Record{validRecord()}
	r2 := validRecord()
	r2.UserID = 99
	records = append(records, r2)

	src := SliceSource(records)
	back, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != records[0] || back[1] != records[1] {
		t.Errorf("collect = %+v", back)
	}
	// Exhausted sources keep returning io.EOF.
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted source: %v", err)
	}
	if got, err := Collect(SliceSource(nil)); err != nil || len(got) != 0 {
		t.Errorf("empty source: %v, %v", got, err)
	}
}

func TestForEachStopsOnCallbackError(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	err := ForEach(SliceSource([]Record{validRecord(), validRecord()}), func(Record) error {
		n++
		return boom
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Errorf("err = %v after %d records", err, n)
	}
}

func TestCSVReaderStreamingRoundTrip(t *testing.T) {
	records := []Record{validRecord()}
	r2 := validRecord()
	r2.UserID = 43
	r2.Tech = Tech3G
	r2.Address = `Tricky "quoted", address`
	records = append(records, r2)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	cr, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Collect(cr)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Skipped() != 0 {
		t.Errorf("skipped = %d, want 0", cr.Skipped())
	}
	if len(back) != len(records) {
		t.Fatalf("round trip length %d, want %d", len(back), len(records))
	}
	for i := range records {
		if !back[i].Start.Equal(records[i].Start) || !back[i].End.Equal(records[i].End) {
			t.Errorf("record %d times differ", i)
		}
		if back[i].UserID != records[i].UserID || back[i].Address != records[i].Address ||
			back[i].Bytes != records[i].Bytes || back[i].Tech != records[i].Tech {
			t.Errorf("record %d differs: %+v vs %+v", i, back[i], records[i])
		}
	}
}

func TestCSVReaderSkipAccounting(t *testing.T) {
	csvData := strings.Join([]string{
		"user_id,start,end,tower_id,address,bytes,tech",
		"1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE",
		"not-a-number,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE",
		"too,few,fields",
		"1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE,extra-field",
		"3,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,-5,LTE",
		"5,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,3G",
	}, "\n")
	cr, err := NewCSVReader(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Collect(cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Errorf("parsed %d records, want 2", len(back))
	}
	if cr.Skipped() != 4 {
		t.Errorf("skipped = %d, want 4", cr.Skipped())
	}
}

// flakyReader yields its payload and then fails with a non-EOF I/O error,
// modelling a broken pipe mid-trace.
type flakyReader struct {
	payload io.Reader
	err     error
}

func (r *flakyReader) Read(p []byte) (int, error) {
	n, err := r.payload.Read(p)
	if errors.Is(err, io.EOF) {
		return n, r.err
	}
	return n, err
}

// Regression test for the ReadCSV infinite loop: an I/O error from the
// underlying reader must abort the read, not be counted as a skipped row
// forever.
func TestCSVReaderAbortsOnIOError(t *testing.T) {
	broken := errors.New("read: connection reset")
	header := "user_id,start,end,tower_id,address,bytes,tech\n" +
		"1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE\n"
	cr, err := NewCSVReader(&flakyReader{payload: strings.NewReader(header), err: broken})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Next(); err != nil {
		t.Fatalf("first record should parse, got %v", err)
	}
	if _, err := cr.Next(); !errors.Is(err, broken) {
		t.Fatalf("I/O error should abort the stream, got %v", err)
	}
	// The error is sticky.
	if _, err := cr.Next(); !errors.Is(err, broken) {
		t.Fatalf("error should be sticky, got %v", err)
	}

	records, _, err := ReadCSV(&flakyReader{payload: strings.NewReader(header), err: broken})
	if !errors.Is(err, broken) {
		t.Fatalf("ReadCSV should surface the I/O error, got %v (records=%v)", err, records)
	}
}

// randomRecords builds a record batch with duplicate and conflicting
// copies in random positions, plus some invalid records.
func randomRecords(rng *rand.Rand, n int) []Record {
	out := make([]Record, 0, 2*n)
	for i := 0; i < n; i++ {
		r := validRecord()
		r.UserID = rng.Intn(6)
		r.TowerID = rng.Intn(4)
		r.Start = t0.Add(time.Duration(rng.Intn(8)) * time.Minute)
		r.End = r.Start.Add(time.Minute)
		r.Bytes = int64(1 + rng.Intn(1000))
		out = append(out, r)
		switch rng.Intn(4) {
		case 0: // exact duplicate
			out = append(out, r)
		case 1: // conflicting smaller copy
			c := r
			c.Bytes = r.Bytes/2 + 1
			out = append(out, c)
		case 2: // invalid record
			c := r
			c.Bytes = -1
			out = append(out, c)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Property: for every connection key, the bytes forwarded by the
// streaming Cleaner sum to exactly what the batch Clean keeps, and the
// removal counters agree.
func TestCleanerStreamEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomRecords(rng, 30)

		cleaned, batchStats := Clean(records)
		wantBytes := make(map[key]int64)
		for _, r := range cleaned {
			wantBytes[r.key()] += r.Bytes
		}

		src := CleanSource(SliceSource(records))
		gotBytes := make(map[key]int64)
		if err := ForEach(src, func(r Record) error {
			gotBytes[r.key()] += r.Bytes
			return nil
		}); err != nil {
			t.Logf("streaming clean failed: %v", err)
			return false
		}
		streamStats := src.Stats()

		if len(gotBytes) != len(wantBytes) {
			return false
		}
		for k, want := range wantBytes {
			if gotBytes[k] != want {
				return false
			}
		}
		return streamStats.Input == batchStats.Input &&
			streamStats.Invalid == batchStats.Invalid &&
			streamStats.Duplicates == batchStats.Duplicates &&
			streamStats.Conflicts == batchStats.Conflicts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCleanerWindowBoundsState(t *testing.T) {
	const window = 1000
	c := NewCleanerWindow(window)
	r := validRecord()
	for i := 0; i < 50*window; i++ {
		// Every record is a distinct connection; adjacent duplicate every
		// third record must still be caught despite eviction.
		r.UserID = i
		if _, ok := c.Observe(r); !ok {
			t.Fatalf("fresh record %d dropped", i)
		}
		if i%3 == 0 {
			if _, ok := c.Observe(r); ok {
				t.Fatalf("adjacent duplicate of record %d not deduplicated", i)
			}
		}
		if len(c.max) > 2*window+1 {
			t.Fatalf("dedup state grew to %d entries, want ≤ %d", len(c.max), 2*window+1)
		}
	}
	if c.Stats().Duplicates == 0 {
		t.Error("expected duplicates to be counted")
	}
}

func TestCleanerWindowEvictsFarApartCopies(t *testing.T) {
	// With a tiny window, a duplicate arriving far after the original is
	// (by documented design) treated as new again.
	c := NewCleanerWindow(2)
	dup := validRecord()
	if _, ok := c.Observe(dup); !ok {
		t.Fatal("first copy dropped")
	}
	filler := validRecord()
	for i := 0; i < 50; i++ {
		filler.UserID = 1000 + i
		c.Observe(filler)
	}
	if _, ok := c.Observe(dup); !ok {
		t.Error("evicted connection should be forwarded as new")
	}
}

func TestCleanerLateLargerConflictAmends(t *testing.T) {
	small := validRecord()
	small.Bytes = 10
	big := small
	big.Bytes = 100

	c := NewCleaner()
	first, ok := c.Observe(small)
	if !ok || first.Bytes != 10 {
		t.Fatalf("first copy should be forwarded unchanged, got %+v (%v)", first, ok)
	}
	amend, ok := c.Observe(big)
	if !ok || amend.Bytes != 90 {
		t.Fatalf("late larger conflict should forward the delta 90, got %+v (%v)", amend, ok)
	}
	if _, ok := c.Observe(big); ok {
		t.Error("replay of the largest copy should be dropped")
	}
	stats := c.Stats()
	if stats.Conflicts != 1 || stats.Duplicates != 1 || stats.Output != 2 {
		t.Errorf("stats = %+v", stats)
	}
}
