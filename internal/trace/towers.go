package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
)

// towersHeader is the column layout of the tower metadata file.
var towersHeader = []string{"tower_id", "address", "lat", "lon"}

// towersHeaderLine is the serialised tower metadata header row.
const towersHeaderLine = "tower_id,address,lat,lon\n"

// WriteTowersCSV writes tower metadata (ID, address, coordinates) as CSV.
// It is the on-disk form of the base-station registry the paper obtained by
// geocoding addresses. Rows are appended into one reused buffer with
// strconv.Append* — no per-field strings — and flushed in large writes.
func WriteTowersCSV(w io.Writer, towers []TowerInfo) error {
	buf := make([]byte, 0, writerFlushSize+512)
	buf = append(buf, towersHeaderLine...)
	for _, t := range towers {
		buf = strconv.AppendInt(buf, int64(t.TowerID), 10)
		buf = append(buf, ',')
		buf = appendCSVField(buf, t.Address)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, t.Location.Lat, 'f', 6, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, t.Location.Lon, 'f', 6, 64)
		buf = append(buf, '\n')
		if len(buf) >= writerFlushSize {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("trace: writing towers: %w", err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("trace: writing towers: %w", err)
		}
	}
	return nil
}

// ReadTowersCSV parses tower metadata written by WriteTowersCSV and returns
// the towers plus a geocoder populated with their addresses (so the
// preprocessing stage can resolve addresses exactly as it would against the
// online map service).
func ReadTowersCSV(r io.Reader) ([]TowerInfo, *geo.Geocoder, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(towersHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("trace: reading towers header: %w", err)
	}
	if len(header) != len(towersHeader) || header[0] != towersHeader[0] {
		return nil, nil, fmt.Errorf("trace: unexpected towers header %v", header)
	}
	geocoder := geo.NewGeocoder()
	var out []TowerInfo
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("trace: reading tower row: %w", err)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, nil, fmt.Errorf("trace: tower id %q: %w", row[0], err)
		}
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: tower %d latitude: %w", id, err)
		}
		lon, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: tower %d longitude: %w", id, err)
		}
		info := TowerInfo{
			TowerID:  id,
			Address:  row[1],
			Location: geo.Point{Lat: lat, Lon: lon},
			Resolved: true,
		}
		if err := geocoder.Register(info.Address, info.Location); err != nil {
			return nil, nil, fmt.Errorf("trace: registering tower %d: %w", id, err)
		}
		out = append(out, info)
	}
	return out, geocoder, nil
}

// writerFlushSize is the buffered-output threshold of the append-based
// CSV writers: rows accumulate in one reused byte buffer and reach the
// underlying writer in large slabs.
const writerFlushSize = 32 << 10

// CSVWriter streams records to CSV without holding them in memory, for
// full-scale trace generation. Rows are serialised with
// time.AppendFormat / strconv.Append* into a reused buffer — zero
// allocations per record in the steady state, byte-identical output to
// the encoding/csv writer it replaces.
type CSVWriter struct {
	w      io.Writer
	buf    []byte
	wrote  int
	header bool
	err    error
}

// NewCSVWriter returns a streaming CSV writer targeting w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: w, buf: make([]byte, 0, writerFlushSize+1024)}
}

// writeHeader emits the header row if it has not been written yet.
func (w *CSVWriter) writeHeader() error {
	if w.err != nil {
		return w.err
	}
	if !w.header {
		w.buf = append(w.buf, csvHeaderLine...)
		w.header = true
	}
	return nil
}

// Write appends one record, emitting the header first if needed. Write
// errors are sticky.
func (w *CSVWriter) Write(r Record) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	w.buf = appendRecord(w.buf, r)
	w.wrote++
	if len(w.buf) >= writerFlushSize {
		return w.flush()
	}
	return nil
}

// WriteBatch appends a batch of records, the write-side counterpart of
// BatchSource.NextBatch (and directly usable as a ForEachBatch sink).
func (w *CSVWriter) WriteBatch(records []Record) error {
	if len(records) == 0 {
		return w.err
	}
	if err := w.writeHeader(); err != nil {
		return err
	}
	for _, r := range records {
		w.buf = appendRecord(w.buf, r)
		w.wrote++
		if len(w.buf) >= writerFlushSize {
			if err := w.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush hands the buffered rows to the underlying writer.
func (w *CSVWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = fmt.Errorf("trace: writing record: %w", err)
		return w.err
	}
	w.buf = w.buf[:0]
	return nil
}

// Count returns the number of records written so far.
func (w *CSVWriter) Count() int { return w.wrote }

// Flush flushes buffered rows and returns any write error.
func (w *CSVWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.flush()
}
