package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
)

// towersHeader is the column layout of the tower metadata file.
var towersHeader = []string{"tower_id", "address", "lat", "lon"}

// WriteTowersCSV writes tower metadata (ID, address, coordinates) as CSV.
// It is the on-disk form of the base-station registry the paper obtained by
// geocoding addresses.
func WriteTowersCSV(w io.Writer, towers []TowerInfo) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(towersHeader); err != nil {
		return fmt.Errorf("trace: writing towers header: %w", err)
	}
	for _, t := range towers {
		row := []string{
			strconv.Itoa(t.TowerID),
			t.Address,
			strconv.FormatFloat(t.Location.Lat, 'f', 6, 64),
			strconv.FormatFloat(t.Location.Lon, 'f', 6, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing tower %d: %w", t.TowerID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTowersCSV parses tower metadata written by WriteTowersCSV and returns
// the towers plus a geocoder populated with their addresses (so the
// preprocessing stage can resolve addresses exactly as it would against the
// online map service).
func ReadTowersCSV(r io.Reader) ([]TowerInfo, *geo.Geocoder, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(towersHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("trace: reading towers header: %w", err)
	}
	if len(header) != len(towersHeader) || header[0] != towersHeader[0] {
		return nil, nil, fmt.Errorf("trace: unexpected towers header %v", header)
	}
	geocoder := geo.NewGeocoder()
	var out []TowerInfo
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("trace: reading tower row: %w", err)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, nil, fmt.Errorf("trace: tower id %q: %w", row[0], err)
		}
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: tower %d latitude: %w", id, err)
		}
		lon, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: tower %d longitude: %w", id, err)
		}
		info := TowerInfo{
			TowerID:  id,
			Address:  row[1],
			Location: geo.Point{Lat: lat, Lon: lon},
			Resolved: true,
		}
		if err := geocoder.Register(info.Address, info.Location); err != nil {
			return nil, nil, fmt.Errorf("trace: registering tower %d: %w", id, err)
		}
		out = append(out, info)
	}
	return out, geocoder, nil
}

// CSVWriter streams records to CSV without holding them in memory, for
// full-scale trace generation.
type CSVWriter struct {
	cw     *csv.Writer
	row    []string
	wrote  int
	header bool
}

// NewCSVWriter returns a streaming CSV writer targeting w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w), row: make([]string, len(csvHeader))}
}

// Write appends one record, emitting the header first if needed.
func (w *CSVWriter) Write(r Record) error {
	if !w.header {
		if err := w.cw.Write(csvHeader); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
		w.header = true
	}
	w.row[0] = strconv.Itoa(r.UserID)
	w.row[1] = r.Start.Format(timeLayout)
	w.row[2] = r.End.Format(timeLayout)
	w.row[3] = strconv.Itoa(r.TowerID)
	w.row[4] = r.Address
	w.row[5] = strconv.FormatInt(r.Bytes, 10)
	w.row[6] = string(r.Tech)
	if err := w.cw.Write(w.row); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.wrote++
	return nil
}

// Count returns the number of records written so far.
func (w *CSVWriter) Count() int { return w.wrote }

// Flush flushes buffered rows and returns any write error.
func (w *CSVWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}
