package trace

// scan.go is the zero-allocation ingestion scanner: a byte-level CSV
// reader that replaces the encoding/csv + strconv + time.Parse stack of
// CSVReader on the hot path. Field bytes never become intermediate
// strings: fields of single-line rows are borrowed as views straight out
// of the read buffer, integers and the fixed RFC 3339 timestamp layout
// are parsed in place (with a per-scanner date cache so the calendar
// arithmetic runs once per distinct day, not once per record), tower
// addresses are interned (one string per distinct address, not per
// record) and the radio technology maps onto the two package constants.
// In the steady state a warmed Scanner performs zero allocations per
// record.
//
// Row classification is kept bit-compatible with the CSVReader oracle
// (encoding/csv + parseRow): rows that leave the single-line fast path —
// quoted fields spanning newlines — are restarted through a slow parser
// that follows the same state machine as csv.Reader.readRecord (""
// escapes, \r\n normalisation, blank-line skipping, bare-quote,
// unterminated-quote and field-count errors), and the typed field
// parsers fall back to strconv/time.Parse for any input outside the
// canonical shapes they fully validate, so a row is skipped by the
// Scanner exactly when the oracle would skip it. FuzzScanRecords
// enforces this differentially.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

const (
	// scanBufSize is the initial size of the Scanner's read buffer. Lines
	// longer than the buffer grow it geometrically.
	scanBufSize = 128 << 10
	// maxInternedAddresses bounds the address intern table so adversarial
	// input (every row a distinct address) cannot hold unbounded memory;
	// beyond the cap addresses are allocated per record like parseRow does.
	maxInternedAddresses = 1 << 16
)

// errRow marks a row the Scanner skips — either structurally broken CSV
// (the equivalent of *csv.ParseError) or well-formed CSV whose fields
// fail to parse or validate. errMultiline diverts a row whose quoted
// field runs past its first line to the slow parser. Neither escapes the
// Scanner.
var (
	errRow       = errors.New("trace: malformed row")
	errMultiline = errors.New("trace: row spans lines")
)

// Scanner is a streaming Source and BatchSource over the CSV format
// written by WriteCSV / CSVWriter, drop-in compatible with CSVReader but
// allocation-free per record in the steady state. Malformed rows are
// skipped and counted (see Skipped); I/O errors from the underlying
// reader abort the stream. Not safe for concurrent use.
type Scanner struct {
	r       io.Reader
	buf     []byte
	start   int   // parse position in buf
	end     int   // end of valid data in buf
	eof     bool  // underlying reader reported io.EOF
	readErr error // latched non-EOF read error, surfaced once the buffer drains
	err     error

	stats  SkipStats
	rows   int64 // data rows observed so far, skipped rows included
	policy ErrorPolicy

	// Stream position, maintained by readLine: physical lines and raw
	// bytes consumed (the header counts), plus the position at which the
	// current row starts — what a positioned fail-fast error reports.
	// Chunk scanners run with chunk-relative positions that the parallel
	// consumer rebases.
	line      int64
	offset    int64
	lineStart int64
	rowLine   int64
	rowOffset int64

	// Per-row scratch, reused across records. fields holds the current
	// row's field views: into the read buffer for borrowed fields, into
	// fieldBuf for unescaped or multi-line fields. contBuf carries a
	// row's first line into the slow parser, where buffer refills would
	// otherwise invalidate it. fieldEnds is the slow parser's field
	// boundary list (views are materialised only once it finishes, so
	// fieldBuf growth cannot dangle them).
	fields    [][]byte
	fieldBuf  []byte
	fieldEnds []int
	contBuf   []byte

	// Single-entry date cache: traces are near-chronological, so almost
	// every timestamp shares one calendar day and the time.Date call
	// collapses to one Duration add.
	dateKey  [10]byte
	dateBase time.Time
	dateOK   bool

	intern map[string]string
}

// NewScanner wraps r, reads and checks the header row, and returns a
// scanner yielding one record per data row. It replaces NewCSVReader on
// performance-sensitive paths; NewIngestSource picks between the serial
// and parallel layouts.
func NewScanner(r io.Reader) (*Scanner, error) {
	return NewScannerPolicy(r, ErrorPolicy{})
}

// NewScannerPolicy is NewScanner with an explicit ingestion error policy
// (the zero policy skips and counts malformed rows, the historical
// behaviour). Policy violations surface as terminal errors wrapping
// ErrRowRejected or ErrBudgetExceeded; fail-fast errors carry a PosError
// locating the offending row.
func NewScannerPolicy(r io.Reader, policy ErrorPolicy) (*Scanner, error) {
	s := newChunkScanner()
	s.r = r
	s.policy = policy
	s.buf = make([]byte, scanBufSize)
	s.eof = false
	if err := s.readRow(); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(s.fields) != len(csvHeader) || string(s.fields[0]) != csvHeader[0] {
		return nil, fmt.Errorf("trace: unexpected header")
	}
	return s, nil
}

// newChunkScanner returns a Scanner shell without a reader or buffer,
// for resetBytes-driven chunk parsing by ParallelCSVSource workers.
func newChunkScanner() *Scanner {
	return &Scanner{
		fields:    make([][]byte, 0, len(csvHeader)+1),
		fieldEnds: make([]int, 0, len(csvHeader)+1),
		intern:    make(map[string]string),
	}
}

// resetBytes points the scanner at an in-memory chunk with no header.
// The intern table, date cache and scratch buffers survive resets so a
// pooled worker scanner stays allocation-free across chunks.
func (s *Scanner) resetBytes(data []byte) {
	s.r = nil
	s.buf = data
	s.start, s.end = 0, len(data)
	s.eof = true
	s.err = nil
	s.stats = SkipStats{}
	s.rows = 0
	s.line, s.offset, s.lineStart = 0, 0, 0
	s.rowLine, s.rowOffset = 0, 0
}

// Skipped returns the number of malformed rows skipped so far.
func (s *Scanner) Skipped() int { return int(s.stats.SkippedRows()) }

// Stats returns the per-category skip accounting so far.
func (s *Scanner) Stats() SkipStats { return s.stats }

// Close is a no-op: the serial Scanner holds no background resources.
// It exists so Scanner satisfies IngestSource's cleanup contract.
func (s *Scanner) Close() {}

// Next returns the next well-formed record; the error is io.EOF at end
// of input or the underlying I/O error, both sticky.
func (s *Scanner) Next() (Record, error) {
	var one [1]Record
	n, err := s.NextBatch(one[:])
	if n == 1 {
		return one[0], nil
	}
	return Record{}, err
}

// NextBatch fills dst with up to len(dst) records and returns how many
// were produced. A non-nil error is terminal and may accompany the final
// records of the stream: io.EOF for normal end of input, anything else
// an I/O failure. Records dst[:n] are always valid.
func (s *Scanner) NextBatch(dst []Record) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(dst) {
		if err := s.readRow(); err != nil {
			if err == errRow {
				if ferr := s.reject(skipMalformed); ferr != nil {
					s.err = ferr
					return n, ferr
				}
				continue
			}
			if !errors.Is(err, io.EOF) {
				err = fmt.Errorf("trace: reading row: %w", &PosError{Line: s.line, Offset: s.offset, Err: err})
			}
			s.err = err
			return n, err
		}
		if cat := s.toRecord(&dst[n]); cat == skipNone {
			s.rows++
			n++
		} else if ferr := s.reject(cat); ferr != nil {
			s.err = ferr
			return n, ferr
		}
	}
	return n, nil
}

// reject accounts one dropped row and applies the error policy: a nil
// return keeps streaming; otherwise the returned error is terminal. The
// records already in dst stay valid — a fail-fast stream delivers every
// good row before the offending one.
func (s *Scanner) reject(cat skipCategory) error {
	s.rows++
	s.stats.count(cat)
	switch s.policy.Mode {
	case PolicyFailFast:
		return fmt.Errorf("trace: %w", &PosError{
			Line:   s.rowLine,
			Offset: s.rowOffset,
			Err:    fmt.Errorf("%v: %w", cat, ErrRowRejected),
		})
	case PolicyBudget:
		if s.policy.exceeded(s.stats.SkippedRows(), s.rows) {
			return fmt.Errorf("trace: %w: %d of %d rows dropped (%v)",
				ErrBudgetExceeded, s.stats.SkippedRows(), s.rows, s.stats)
		}
	}
	return nil
}

// fill compacts the buffer and reads more data. It only returns
// I/O errors; io.EOF is latched into s.eof. A non-EOF error arriving
// together with data (legal for io.Reader) is latched into s.readErr so
// the complete lines already buffered are served first — exactly how
// the bufio-backed CSVReader behaves.
func (s *Scanner) fill() error {
	if s.readErr != nil {
		return s.readErr
	}
	if s.start > 0 {
		copy(s.buf, s.buf[s.start:s.end])
		s.end -= s.start
		s.start = 0
	}
	if s.end == len(s.buf) {
		grown := make([]byte, 2*len(s.buf))
		copy(grown, s.buf[:s.end])
		s.buf = grown
	}
	n, err := s.r.Read(s.buf[s.end:])
	s.end += n
	if err == io.EOF {
		s.eof = true
		return nil
	}
	if err != nil && n > 0 {
		s.readErr = err
		return nil
	}
	return err
}

// lengthNL reports the number of trailing newline bytes (0 or 1),
// mirroring encoding/csv.
func lengthNL(b []byte) int {
	if len(b) > 0 && b[len(b)-1] == '\n' {
		return 1
	}
	return 0
}

// readLine returns the next line including its trailing newline, with
// \r\n normalised to \n and a lone trailing \r before EOF dropped —
// byte for byte what csv.Reader.readLine yields. The returned slice
// aliases the read buffer and is only valid until the next readLine.
func (s *Scanner) readLine() ([]byte, error) {
	searched := 0
	for {
		if i := bytes.IndexByte(s.buf[s.start+searched:s.end], '\n'); i >= 0 {
			n := searched + i + 1
			line := s.buf[s.start : s.start+n]
			s.start += n
			s.lineStart = s.offset
			s.offset += int64(n)
			s.line++
			if ll := len(line); ll >= 2 && line[ll-2] == '\r' {
				line[ll-2] = '\n'
				line = line[:ll-1]
			}
			return line, nil
		}
		searched = s.end - s.start
		if s.eof {
			if searched == 0 {
				return nil, io.EOF
			}
			line := s.buf[s.start:s.end]
			s.start = s.end
			s.lineStart = s.offset
			s.offset += int64(len(line))
			s.line++
			if line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			return line, nil
		}
		if err := s.fill(); err != nil {
			return nil, err
		}
	}
}

// readRow parses the next CSV record into s.fields. It returns errRow
// for structurally broken rows, io.EOF at end of input, or an I/O
// error.
func (s *Scanner) readRow() error {
	var line []byte
	for {
		l, err := s.readLine()
		if err != nil {
			return err
		}
		if len(l) == lengthNL(l) {
			continue // blank line
		}
		line = l
		// The row starts on this line; multi-line quoted rows keep the
		// first line's position.
		s.rowLine, s.rowOffset = s.line, s.lineStart
		break
	}
	err := s.parseRowFast(line)
	if err == errMultiline {
		err = s.parseRowSlow(line)
	}
	if err != nil {
		return err
	}
	if len(s.fields) != len(csvHeader) {
		return errRow // csv's ErrFieldCount
	}
	return nil
}

// parseRowFast parses a record that lies entirely within line, borrowing
// field views out of the read buffer and unescaping quoted fields with
// "" escapes into the pre-sized scratch buffer. It returns errMultiline
// when a quoted field runs past the end of the line (including the
// unterminated-at-EOF case, which the slow parser classifies).
func (s *Scanner) parseRowFast(line []byte) error {
	// Pre-size the unescape buffer so in-row appends can never
	// reallocate: views into it must stay valid for the whole row.
	if cap(s.fieldBuf) < len(line) {
		s.fieldBuf = make([]byte, 0, len(line)+64)
	}
	fb := s.fieldBuf[:0]
	fields := s.fields[:0]
	var err error
	rest := line
parseField:
	for {
		if len(rest) == 0 || rest[0] != '"' {
			// Non-quoted field: up to the comma or end of line, with a
			// bare quote anywhere inside making the row structurally
			// invalid (csv's ErrBareQuote). One fused manual scan beats
			// two vectorised IndexByte calls at typical field lengths.
			i := -1
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == ',' {
					i = j
					break
				}
				if c == '"' {
					err = errRow
					break parseField
				}
			}
			if i >= 0 {
				fields = append(fields, rest[:i])
				rest = rest[i+1:]
				continue parseField
			}
			fields = append(fields, rest[:len(rest)-lengthNL(rest)])
			break parseField
		}
		// Quoted field.
		rest = rest[1:]
		i := bytes.IndexByte(rest, '"')
		if i < 0 {
			err = errMultiline
			break parseField
		}
		if after := rest[i+1:]; len(after) == 0 || after[0] == ',' || lengthNL(after) == len(after) {
			// No "" escapes: borrow the content between the quotes.
			fields = append(fields, rest[:i])
			if len(after) > 0 && after[0] == ',' {
				rest = after[1:]
				continue parseField
			}
			break parseField // closing quote at end of record
		} else if after[0] != '"' {
			err = errRow // quote followed by junk (csv's ErrQuote)
			break parseField
		}
		// "" escapes: unescape into fb (stable: pre-sized above).
		start := len(fb)
		cur := rest
		for {
			fb = append(fb, cur[:i]...)
			after := cur[i+1:]
			if len(after) > 0 && after[0] == '"' {
				fb = append(fb, '"')
				cur = after[1:]
				i = bytes.IndexByte(cur, '"')
				if i < 0 {
					err = errMultiline
					break parseField
				}
				continue
			}
			// Closing quote.
			fields = append(fields, fb[start:])
			switch {
			case len(after) > 0 && after[0] == ',':
				rest = after[1:]
			case lengthNL(after) == len(after):
				break parseField
			default:
				err = errRow
				break parseField
			}
			break
		}
	}
	s.fields = fields
	s.fieldBuf = fb
	return err
}

// parseRowSlow handles rows whose quoted fields span lines, tracking
// csv.Reader.readRecord case by case. The first line is copied into
// contBuf (buffer refills while reading continuation lines would
// invalidate it); fields are assembled in fieldBuf and materialised as
// views only after the parse completes, so growth cannot dangle them.
func (s *Scanner) parseRowSlow(first []byte) error {
	s.contBuf = append(s.contBuf[:0], first...)
	line := s.contBuf
	fb := s.fieldBuf[:0]
	ends := s.fieldEnds[:0]
	var rowErr error
parseField:
	for {
		if len(line) == 0 || line[0] != '"' {
			i := bytes.IndexByte(line, ',')
			field := line
			if i >= 0 {
				field = field[:i]
			} else {
				field = field[:len(field)-lengthNL(field)]
			}
			if bytes.IndexByte(field, '"') >= 0 {
				rowErr = errRow // bare quote
				break parseField
			}
			fb = append(fb, field...)
			ends = append(ends, len(fb))
			if i >= 0 {
				line = line[i+1:]
				continue parseField
			}
			break parseField
		}
		// Quoted field.
		line = line[1:]
		for {
			i := bytes.IndexByte(line, '"')
			switch {
			case i >= 0:
				fb = append(fb, line[:i]...)
				line = line[i+1:]
				switch {
				case len(line) > 0 && line[0] == '"':
					// "" escape: literal quote.
					fb = append(fb, '"')
					line = line[1:]
				case len(line) > 0 && line[0] == ',':
					line = line[1:]
					ends = append(ends, len(fb))
					continue parseField
				case lengthNL(line) == len(line):
					// Closing quote at end of line (or end of input).
					ends = append(ends, len(fb))
					break parseField
				default:
					// Quote followed by anything else (csv's ErrQuote).
					rowErr = errRow
					break parseField
				}
			case len(line) > 0:
				// Field continues past the end of the line: keep the
				// newline and read on.
				fb = append(fb, line...)
				nl, err := s.readLine()
				if err != nil {
					if errors.Is(err, io.EOF) {
						// Unterminated quote at end of input.
						rowErr = errRow
						break parseField
					}
					s.fieldBuf, s.fieldEnds = fb, ends
					return err
				}
				line = nl
			default:
				// Line exhausted with the quote still open.
				rowErr = errRow
				break parseField
			}
		}
	}
	s.fieldBuf, s.fieldEnds = fb, ends
	if rowErr != nil {
		return rowErr
	}
	// Materialise the field views now that fieldBuf is final.
	s.fields = s.fields[:0]
	start := 0
	for _, end := range ends {
		s.fields = append(s.fields, fb[start:end])
		start = end
	}
	return nil
}

// toRecord converts the current row's fields into rec, returning
// skipNone on success or the drop category otherwise. Acceptance
// matches parseRow + Validate; the category order follows the oracle's
// field order so serial, parallel and encoding/csv ingestion report
// identical per-category stats.
func (s *Scanner) toRecord(rec *Record) skipCategory {
	f := s.fields
	userID, ok := parseIntField(f[0])
	if !ok {
		return skipBadField
	}
	start, ok := s.parseTime(f[1])
	if !ok {
		return skipBadTimestamp
	}
	end, ok := s.parseTime(f[2])
	if !ok {
		return skipBadTimestamp
	}
	towerID, ok := parseIntField(f[3])
	if !ok {
		return skipBadField
	}
	byteCount, ok := parseIntField(f[5])
	if !ok {
		return skipBadField
	}
	tech := f[6]
	var technology Technology
	switch {
	case len(tech) == 2 && tech[0] == '3' && tech[1] == 'G':
		technology = Tech3G
	case len(tech) == 3 && tech[0] == 'L' && tech[1] == 'T' && tech[2] == 'E':
		technology = TechLTE
	default:
		// Validate rejects every other technology; skip without building
		// the string.
		return skipBadField
	}
	// Validate, inlined to avoid copying the record through the method
	// value. The checks and their outcomes match Record.Validate, plus
	// the int range check strconv.Atoi applies on 32-bit platforms (the
	// comparisons are constant-false on 64-bit).
	if userID < math.MinInt || userID > math.MaxInt ||
		towerID < math.MinInt || towerID > math.MaxInt {
		return skipBadField
	}
	if userID < 0 || towerID < 0 || byteCount < 0 ||
		start.IsZero() || end.IsZero() || end.Before(start) {
		return skipBadField
	}
	rec.UserID = int(userID)
	rec.Start = start
	rec.End = end
	rec.TowerID = int(towerID)
	rec.Bytes = byteCount
	rec.Address = s.internAddress(f[4])
	rec.Tech = technology
	return skipNone
}

// internAddress returns a string for the address bytes, reusing one
// allocation per distinct address. The map lookup on a []byte key
// compiles to a no-alloc string conversion.
func (s *Scanner) internAddress(b []byte) string {
	if v, ok := s.intern[string(b)]; ok {
		return v
	}
	v := string(b)
	if len(s.intern) < maxInternedAddresses {
		s.intern[v] = v
	}
	return v
}

// parseIntField parses a decimal integer with strconv.ParseInt(s, 10, 64)
// semantics. The fast path covers an optional leading minus and up to 18
// digits — guaranteed overflow-free — and anything else (plus signs,
// longer digit runs, stray bytes, empty input) falls back to strconv so
// acceptance matches the oracle exactly.
func parseIntField(b []byte) (int64, bool) {
	d := b
	neg := false
	if len(d) > 0 && d[0] == '-' {
		neg = true
		d = d[1:]
	}
	if len(d) == 0 || len(d) > 18 {
		return parseIntSlow(b)
	}
	var v int64
	for _, c := range d {
		if c < '0' || c > '9' {
			return parseIntSlow(b)
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

func parseIntSlow(b []byte) (int64, bool) {
	v, err := strconv.ParseInt(string(b), 10, 64)
	return v, err == nil
}

// parseTime parses the canonical UTC RFC 3339 form
// "2006-01-02T15:04:05Z" without allocating, memoising the calendar
// computation per distinct day. Any other shape — offsets, fractional
// seconds, out-of-range components, single-digit hours the lenient
// stdlib parser tolerates — falls back to time.Parse so the Scanner
// accepts and rejects rows exactly as parseRow does. The fast path's
// result is bit-identical (==) to time.Parse's.
func (s *Scanner) parseTime(b []byte) (time.Time, bool) {
	if len(b) != 20 || b[10] != 'T' || b[13] != ':' || b[16] != ':' || b[19] != 'Z' {
		return parseTimeSlow(b)
	}
	hour, ok := twoDigits(b[11], b[12])
	if !ok || hour > 23 {
		return parseTimeSlow(b)
	}
	minute, ok := twoDigits(b[14], b[15])
	if !ok || minute > 59 {
		return parseTimeSlow(b)
	}
	sec, ok := twoDigits(b[17], b[18])
	if !ok || sec > 59 {
		return parseTimeSlow(b)
	}
	if !s.dateOK || string(s.dateKey[:]) != string(b[:10]) {
		base, ok := parseDateUTC(b[:10])
		if !ok {
			return parseTimeSlow(b)
		}
		copy(s.dateKey[:], b[:10])
		s.dateBase = base
		s.dateOK = true
	}
	// Midnight + in-range h/m/s is exactly time.Date(y, mo, d, h, m,
	// sec, 0, UTC): no rollover, same wall/ext encoding, same UTC loc.
	return s.dateBase.Add(time.Duration(hour*3600+minute*60+sec) * time.Second), true
}

// parseDateUTC parses and validates a canonical "2006-01-02" day,
// returning its midnight UTC.
func parseDateUTC(b []byte) (time.Time, bool) {
	if b[4] != '-' || b[7] != '-' {
		return time.Time{}, false
	}
	y1, ok := twoDigits(b[0], b[1])
	if !ok {
		return time.Time{}, false
	}
	y2, ok := twoDigits(b[2], b[3])
	if !ok {
		return time.Time{}, false
	}
	year := y1*100 + y2
	month, ok := twoDigits(b[5], b[6])
	if !ok || month < 1 || month > 12 {
		return time.Time{}, false
	}
	day, ok := twoDigits(b[8], b[9])
	if !ok || day < 1 || day > daysInMonth(year, month) {
		return time.Time{}, false
	}
	return time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC), true
}

func parseTimeSlow(b []byte) (time.Time, bool) {
	t, err := time.Parse(timeLayout, string(b))
	return t, err == nil
}

// twoDigits parses a 2-byte digit pair.
func twoDigits(b0, b1 byte) (int, bool) {
	d0 := uint(b0) - '0'
	d1 := uint(b1) - '0'
	if d0 > 9 || d1 > 9 {
		return 0, false
	}
	return int(d0*10 + d1), true
}

func daysInMonth(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	}
}
