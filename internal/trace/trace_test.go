package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
)

var t0 = time.Date(2014, 8, 1, 8, 0, 0, 0, time.UTC)

func validRecord() Record {
	return Record{
		UserID:  42,
		Start:   t0,
		End:     t0.Add(5 * time.Minute),
		TowerID: 7,
		Address: "No.500 Century Road, Pudong District, Shanghai (BS-00007)",
		Bytes:   123456,
		Tech:    TechLTE,
	}
}

func TestRecordValidate(t *testing.T) {
	if err := validRecord().Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(*Record)
	}{
		{"negative user", func(r *Record) { r.UserID = -1 }},
		{"negative tower", func(r *Record) { r.TowerID = -2 }},
		{"negative bytes", func(r *Record) { r.Bytes = -5 }},
		{"zero start", func(r *Record) { r.Start = time.Time{} }},
		{"zero end", func(r *Record) { r.End = time.Time{} }},
		{"end before start", func(r *Record) { r.End = r.Start.Add(-time.Minute) }},
		{"bad tech", func(r *Record) { r.Tech = "5G" }},
	}
	for _, m := range mutations {
		r := validRecord()
		m.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := []Record{validRecord()}
	r2 := validRecord()
	r2.UserID = 43
	r2.Tech = Tech3G
	r2.Address = `Tricky "quoted", address`
	records = append(records, r2)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip length %d, want %d", len(back), len(records))
	}
	for i := range records {
		if !back[i].Start.Equal(records[i].Start) || !back[i].End.Equal(records[i].End) {
			t.Errorf("record %d times differ", i)
		}
		if back[i].UserID != records[i].UserID || back[i].TowerID != records[i].TowerID ||
			back[i].Bytes != records[i].Bytes || back[i].Tech != records[i].Tech ||
			back[i].Address != records[i].Address {
			t.Errorf("record %d differs: %+v vs %+v", i, back[i], records[i])
		}
	}
}

func TestReadCSVMalformedRows(t *testing.T) {
	csvData := strings.Join([]string{
		"user_id,start,end,tower_id,address,bytes,tech",
		"1,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE",
		"not-a-number,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,LTE",
		"2,bad-time,2014-08-01T08:05:00Z,7,addr,100,LTE",
		"3,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,-5,LTE",
		"4,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,5G",
		"5,2014-08-01T08:00:00Z,2014-08-01T08:05:00Z,7,addr,100,3G",
	}, "\n")
	records, skipped, err := ReadCSV(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Errorf("parsed %d records, want 2", len(records))
	}
	if skipped != 4 {
		t.Errorf("skipped = %d, want 4", skipped)
	}
}

func TestReadCSVBadHeader(t *testing.T) {
	if _, _, err := ReadCSV(strings.NewReader("foo,bar\n1,2\n")); err == nil {
		t.Error("bad header should fail")
	}
	if _, _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestCleanRemovesDuplicatesAndConflicts(t *testing.T) {
	base := validRecord()
	dup := base
	conflictSmall := base
	conflictSmall.Bytes = base.Bytes / 2
	other := base
	other.UserID = 99
	other.Bytes = 777
	invalid := base
	invalid.Bytes = -1

	cleaned, stats := Clean([]Record{base, dup, conflictSmall, other, invalid})
	if stats.Input != 5 {
		t.Errorf("Input = %d, want 5", stats.Input)
	}
	if stats.Invalid != 1 {
		t.Errorf("Invalid = %d, want 1", stats.Invalid)
	}
	if stats.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", stats.Duplicates)
	}
	if stats.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", stats.Conflicts)
	}
	if stats.Output != 2 || len(cleaned) != 2 {
		t.Fatalf("Output = %d (%d records), want 2", stats.Output, len(cleaned))
	}
	// The conflicting pair keeps the larger byte count.
	var keptBase bool
	for _, r := range cleaned {
		if r.UserID == base.UserID && r.Bytes == base.Bytes {
			keptBase = true
		}
	}
	if !keptBase {
		t.Error("conflict resolution should keep the larger byte count")
	}
}

func TestCleanKeepsLargerConflictRegardlessOfOrder(t *testing.T) {
	big := validRecord()
	small := big
	small.Bytes = 10
	for _, order := range [][]Record{{big, small}, {small, big}} {
		cleaned, stats := Clean(order)
		if len(cleaned) != 1 || cleaned[0].Bytes != big.Bytes {
			t.Errorf("order %v: kept %v", order, cleaned)
		}
		if stats.Conflicts != 1 {
			t.Errorf("Conflicts = %d, want 1", stats.Conflicts)
		}
	}
}

func TestCleanSortsOutput(t *testing.T) {
	r1 := validRecord()
	r2 := validRecord()
	r2.Start = r1.Start.Add(time.Hour)
	r2.End = r2.Start.Add(time.Minute)
	r3 := validRecord()
	r3.UserID = 1
	cleaned, _ := Clean([]Record{r2, r1, r3})
	if len(cleaned) != 3 {
		t.Fatalf("cleaned = %d records", len(cleaned))
	}
	for i := 1; i < len(cleaned); i++ {
		if cleaned[i].Start.Before(cleaned[i-1].Start) {
			t.Error("output not sorted by start time")
		}
	}
	if cleaned[0].UserID != 1 {
		t.Error("ties should be broken by user id")
	}
}

// Property: Clean is idempotent — cleaning an already-clean log changes
// nothing.
func TestCleanIdempotentProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%20) + 1
		records := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			r := validRecord()
			r.UserID = i % 5
			r.TowerID = i % 3
			r.Start = t0.Add(time.Duration(i%4) * time.Minute)
			r.End = r.Start.Add(time.Minute)
			r.Bytes = int64(100 + i)
			records = append(records, r)
		}
		once, _ := Clean(records)
		twice, stats := Clean(once)
		if stats.Duplicates != 0 || stats.Conflicts != 0 || stats.Invalid != 0 {
			return false
		}
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResolveTowers(t *testing.T) {
	geocoder := geo.NewGeocoder()
	loc := geo.Point{Lat: 31.23, Lon: 121.47}
	if err := geocoder.Register(validRecord().Address, loc); err != nil {
		t.Fatal(err)
	}
	known := validRecord()
	unknown := validRecord()
	unknown.TowerID = 8
	unknown.Address = "Unknown Alley 3"
	infos, err := ResolveTowers([]Record{known, unknown, known}, geocoder)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %d, want 2", len(infos))
	}
	if !infos[0].Resolved || infos[0].Location != loc {
		t.Errorf("tower 7 should resolve to %v: %+v", loc, infos[0])
	}
	if infos[1].Resolved {
		t.Error("unknown address should not resolve")
	}
	if _, err := ResolveTowers(nil, nil); err == nil {
		t.Error("nil geocoder should fail")
	}
}

func TestTrafficDensity(t *testing.T) {
	box := geo.BoundingBox{MinLat: 31, MaxLat: 32, MinLon: 121, MaxLon: 122}
	towers := []TowerInfo{
		{TowerID: 7, Location: geo.Point{Lat: 31.1, Lon: 121.1}, Resolved: true},
		{TowerID: 8, Resolved: false},
	}
	recA := validRecord() // tower 7
	recB := validRecord()
	recB.TowerID = 8 // unresolved tower → skipped
	recC := validRecord()
	recC.TowerID = 99 // unknown tower → skipped
	grid, skipped, err := TrafficDensity([]Record{recA, recB, recC}, towers, box, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if grid.Total() != float64(recA.Bytes) {
		t.Errorf("grid total = %g, want %d", grid.Total(), recA.Bytes)
	}
	if _, _, err := TrafficDensity(nil, nil, box, 0, 10); err == nil {
		t.Error("invalid grid size should fail")
	}
}
